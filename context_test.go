package bagsched

import (
	"context"
	"errors"
	"testing"
	"time"

	"repro/internal/workload"
)

// TestSolveEPTASContextCancel checks the public cancellation contract: a
// canceled context aborts the solve from the API entry point all the way
// into the branch-and-bound loop and surfaces ctx.Err().
func TestSolveEPTASContextCancel(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Bimodal, Machines: 6, Jobs: 24, Bags: 8, Seed: 1,
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveEPTASContext(ctx, in, 0.5); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveEPTASContext returned %v, want context.Canceled", err)
	}

	// Without cancellation the same call must succeed and match the
	// context-free entry point.
	res, err := SolveEPTASContext(context.Background(), in, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := SolveEPTAS(in, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != plain.Makespan {
		t.Errorf("context and plain solves disagree: %v vs %v", res.Makespan, plain.Makespan)
	}
}

// TestSolveBatchContextCancel checks that a canceled context fails every
// unfinished batch outcome with ctx.Err() instead of hanging or panicking.
func TestSolveBatchContextCancel(t *testing.T) {
	var ins []*Instance
	for seed := int64(1); seed <= 6; seed++ {
		ins = append(ins, workload.MustGenerate(workload.Spec{
			Family: workload.Uniform, Machines: 4, Jobs: 16, Bags: 6, Seed: seed,
		}))
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	outs := SolveBatchContext(ctx, ins, 0.5)
	if len(outs) != len(ins) {
		t.Fatalf("got %d outcomes for %d instances", len(outs), len(ins))
	}
	for i, o := range outs {
		if !errors.Is(o.Err, context.Canceled) {
			t.Errorf("outcome %d: err = %v, want context.Canceled", i, o.Err)
		}
	}
}

// TestSolveDasWieseContextCancel covers the remaining public context
// entry point.
func TestSolveDasWieseContextCancel(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Bimodal, Machines: 4, Jobs: 12, Bags: 4, Seed: 23,
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Nanosecond)
	defer cancel()
	if _, err := SolveDasWieseContext(ctx, in, 0.5); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SolveDasWieseContext returned %v, want context.DeadlineExceeded", err)
	}
}
