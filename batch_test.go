package bagsched

import (
	"sync"
	"testing"

	"repro/internal/workload"
)

// bimodalBatch generates n distinct bimodal instances (the EX-T2 family)
// for the batch tests and benchmarks.
func bimodalBatch(tb testing.TB, n int) []*Instance {
	tb.Helper()
	ins := make([]*Instance, n)
	for i := range ins {
		in, err := workload.Generate(workload.Spec{
			Family: workload.Bimodal, Machines: 6, Jobs: 24, Bags: 8, Seed: int64(1000 + i),
		})
		if err != nil {
			tb.Fatal(err)
		}
		ins[i] = in
	}
	return ins
}

// TestSolveBatchOrderAndDeterminism checks the public batch API: outcomes
// arrive in input order and every makespan is byte-identical to the
// sequential path.
func TestSolveBatchOrderAndDeterminism(t *testing.T) {
	ins := bimodalBatch(t, 16)
	outs := SolveBatch(ins, 0.5)
	if len(outs) != len(ins) {
		t.Fatalf("got %d outcomes for %d instances", len(outs), len(ins))
	}
	for i, o := range outs {
		if o.Err != nil {
			t.Fatalf("instance %d: %v", i, o.Err)
		}
		if o.Result.Schedule.Inst != ins[i] {
			t.Errorf("outcome %d is not for instance %d", i, i)
		}
		seq, err := SolveEPTAS(ins[i], 0.5, WithSpeculation(1))
		if err != nil {
			t.Fatal(err)
		}
		if o.Result.Makespan != seq.Makespan {
			t.Errorf("instance %d: batch makespan %v != sequential %v", i, o.Result.Makespan, seq.Makespan)
		}
	}
}

// TestPoolReuse checks a sized pool across repeated calls.
func TestPoolReuse(t *testing.T) {
	p := NewPool(2)
	if p.Workers() != 2 {
		t.Fatalf("Workers() = %d, want 2", p.Workers())
	}
	ins := bimodalBatch(t, 4)
	first := p.SolveEPTAS(ins, 0.5)
	second := p.SolveEPTAS(ins, 0.5)
	for i := range ins {
		if first[i].Err != nil || second[i].Err != nil {
			t.Fatalf("instance %d: %v / %v", i, first[i].Err, second[i].Err)
		}
		if first[i].Result.Makespan != second[i].Result.Makespan {
			t.Errorf("instance %d: pool reuse changed makespan", i)
		}
	}
}

// TestConcurrentSolveEPTASDeterministic checks that concurrent SolveEPTAS
// calls on the same instance are independent and identical (exercised
// under -race).
func TestConcurrentSolveEPTASDeterministic(t *testing.T) {
	in := bimodalBatch(t, 1)[0]
	want, err := SolveEPTAS(in, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	makespans := make([]float64, 8)
	for g := range makespans {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := SolveEPTAS(in, 0.5)
			if err != nil {
				t.Error(err)
				return
			}
			makespans[g] = res.Makespan
		}()
	}
	wg.Wait()
	for g, ms := range makespans {
		if ms != want.Makespan {
			t.Errorf("goroutine %d: makespan %v, want %v", g, ms, want.Makespan)
		}
	}
}
