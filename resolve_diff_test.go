package bagsched

// Resolve-differential tests: the bit-identity contract of the
// incremental re-solve path. Every committed churn trace under
// testdata/churn_*.json is replayed across the full matrix of oracle
// backends (reusing backendCases from the backend differential),
// problem families and oracle worker counts, and at every step the
// incremental ResolveEPTAS answer is checked against a from-scratch
// SolveEPTAS of the post-delta instance:
//
//   - the warm makespan equals the cold makespan bit for bit, and the
//     warm schedule equals the cold schedule job for job — warm-starting
//     moves which guesses the search probes, never which guess it
//     accepts or how the winning guess is placed;
//   - warm-starting saves work: per step the warm solve runs at most one
//     more pipeline execution than cold (the documented worst case when
//     the seed brackets a narrow interval), and over a whole trace the
//     warm total is at most the cold total — strictly below it whenever
//     the cold path did any pipeline work at all (cross-guess memo hits
//     and the seeded bracket both shrink the probe count).
//
// `make resolve-diff` runs this file (plus the core/placer/workload
// resolve tests) under -race in every CI matrix cell.

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/sched"
)

// churnTraces globs the committed churn fixtures; the corpus must hold
// at least the low-churn and high-churn traces pinned by
// TestFixtureShapes.
func churnTraces(t *testing.T) []string {
	t.Helper()
	files, err := filepath.Glob(filepath.Join("testdata", "churn_*.json"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) < 2 {
		t.Fatalf("churn corpus shrank: %d traces under testdata/, want >= 2", len(files))
	}
	return files
}

func readTrace(t *testing.T, path string) *sched.Trace {
	t.Helper()
	f, err := os.Open(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	tr, err := sched.ReadTrace(f)
	if err != nil {
		t.Fatal(err)
	}
	return tr
}

func TestResolveDifferentialCorpus(t *testing.T) {
	families := []struct {
		name string
		fam  Family
	}{
		{"bags", FamilyBags},
		{"identical", FamilyIdentical},
	}
	workers := []int{1, 4}
	for _, path := range churnTraces(t) {
		tr := readTrace(t, path)
		for _, bc := range backendCases {
			for _, fc := range families {
				// The cold from-scratch chain is computed once per trace ×
				// backend × family and shared across worker counts: oracle
				// worker lanes are answer-invisible by the workers-diff
				// contract (bit-identical makespans, schedules and decision
				// stats at every count), so one cold baseline serves every
				// warm lane configuration.
				opts := append([]Option{WithFamily(fc.fam)}, bc.opts...)
				colds := coldChain(t, tr, opts)
				for _, w := range workers {
					name := fmt.Sprintf("%s/%s/%s/w%d", filepath.Base(path), bc.name, fc.name, w)
					t.Run(name, func(t *testing.T) {
						replayTrace(t, tr, colds, append([]Option{WithOracleWorkers(w)}, opts...))
					})
				}
			}
		}
	}
}

// coldChain solves every post-delta instance of the trace from scratch
// — same knobs, no prior, no shared memo — the baseline every warm
// replay must match bit for bit.
func coldChain(t *testing.T, tr *sched.Trace, opts []Option) []*Result {
	t.Helper()
	colds := make([]*Result, len(tr.Steps))
	cur := tr.Base
	for i, d := range tr.Steps {
		post, _, err := d.Apply(cur)
		if err != nil {
			t.Fatalf("step %d does not apply: %v", i, err)
		}
		if colds[i], err = SolveEPTAS(post, 0.5, opts...); err != nil {
			t.Fatalf("step %d: from-scratch: %v", i, err)
		}
		cur = post
	}
	return colds
}

// replayTrace replays one churn trace under one oracle configuration,
// asserting step-wise bit-identity against the precomputed cold chain
// and trace-wide work savings.
func replayTrace(t *testing.T, tr *sched.Trace, colds []*Result, opts []Option) {
	prior, err := SolveEPTAS(tr.Base, 0.5, opts...)
	if err != nil {
		t.Fatal(err)
	}
	cur := tr.Base
	var warmRuns, coldRuns int
	for i, d := range tr.Steps {
		post, _, err := d.Apply(cur)
		if err != nil {
			t.Fatalf("step %d does not apply: %v", i, err)
		}
		warm, err := ResolveEPTAS(prior, d)
		if err != nil {
			t.Fatalf("step %d: resolve: %v", i, err)
		}
		cold := colds[i]
		if warm.Makespan != cold.Makespan {
			t.Fatalf("step %d: warm makespan %.17g differs from cold %.17g",
				i, warm.Makespan, cold.Makespan)
		}
		if !reflect.DeepEqual(warm.Schedule.Machine, cold.Schedule.Machine) {
			t.Fatalf("step %d: warm schedule differs from cold", i)
		}
		if err := warm.Schedule.Validate(); err != nil {
			t.Fatalf("step %d: warm schedule infeasible: %v", i, err)
		}
		// Warm-start worst case per step: the seeded bracket can spend
		// one extra probe on a narrow accept interval; it never spends
		// two.
		if warm.Stats.PipelineRuns > cold.Stats.PipelineRuns+1 {
			t.Fatalf("step %d: warm ran %d pipelines, cold only %d",
				i, warm.Stats.PipelineRuns, cold.Stats.PipelineRuns)
		}
		warmRuns += warm.Stats.PipelineRuns
		coldRuns += cold.Stats.PipelineRuns
		prior, cur = warm, post
	}
	// Trace-wide the warm path must save work: at most the cold total,
	// and strictly below it whenever cold did any pipeline work (equality
	// is only allowed at zero, where both paths short-circuit on ub<=lb).
	if warmRuns > coldRuns {
		t.Fatalf("warm replay ran %d pipelines, from-scratch only %d", warmRuns, coldRuns)
	}
	if coldRuns > 0 && warmRuns >= coldRuns {
		t.Fatalf("warm replay saved nothing: %d pipelines vs %d from scratch", warmRuns, coldRuns)
	}
}

// TestResolveRepairReplay replays the low-churn (resize-only) trace with
// the placement-repair fast path enabled. Repair is a certificate
// trade-off, not a silent approximation: a repaired step must still be a
// valid schedule within the family's 1+eps guarantee of the post-delta
// lower bound, and any step where repair falls back to search must be
// bit-identical to from-scratch.
func TestResolveRepairReplay(t *testing.T) {
	for _, path := range churnTraces(t) {
		tr := readTrace(t, path)
		t.Run(filepath.Base(path), func(t *testing.T) {
			prior, err := SolveEPTAS(tr.Base, 0.5)
			if err != nil {
				t.Fatal(err)
			}
			cur := tr.Base
			var repaired int
			for i, d := range tr.Steps {
				post, _, err := d.Apply(cur)
				if err != nil {
					t.Fatalf("step %d does not apply: %v", i, err)
				}
				warm, err := ResolveEPTAS(prior, d, WithPlacementRepair())
				if err != nil {
					t.Fatalf("step %d: resolve: %v", i, err)
				}
				if err := warm.Schedule.Validate(); err != nil {
					t.Fatalf("step %d: repaired schedule infeasible: %v", i, err)
				}
				if warm.Stats.Repaired {
					repaired++
					// The repair acceptance certificate: within 1+eps of
					// the post-delta lower bound, checked against an
					// independently computed bound.
					if lb := LowerBound(post); warm.Makespan > (1+0.5)*lb+1e-9 {
						t.Fatalf("step %d: repaired makespan %.9f above (1+eps)*lb=%.9f",
							i, warm.Makespan, 1.5*lb)
					}
					if warm.Stats.PipelineRuns != 0 {
						t.Fatalf("step %d: repaired but ran %d pipelines", i, warm.Stats.PipelineRuns)
					}
				} else {
					cold, err := SolveEPTAS(post, 0.5)
					if err != nil {
						t.Fatal(err)
					}
					if warm.Makespan != cold.Makespan {
						t.Fatalf("step %d: fallback makespan %.17g differs from cold %.17g",
							i, warm.Makespan, cold.Makespan)
					}
				}
				prior, cur = warm, post
			}
			// The resize-only low-churn trace is the regime repair exists
			// for; it must fire at least once there.
			if repaired == 0 && filepath.Base(path) == "churn_low_m6_n24.json" {
				t.Fatal("placement repair never fired on the low-churn trace")
			}
		})
	}
}
