package bagsched

// Backend-differential tests of the oracle layer: every committed fixture
// is solved under both cfgmilp modes and all three oracle backends, and
// the outcomes are cross-checked. The contract mirrors the PR 3
// float/fixed differential tests at the level where the backends are
// interchangeable — the per-guess feasibility decision — plus the
// determinism guarantee of the portfolio's logical-time race:
//
//   - on decomposed-mode models (which every backend supports) all
//     backends return bit-identical makespans on the committed corpus,
//     feasible schedules, and the same consumed guess sequence and
//     accepted classification — the backends are exact deciders of the
//     same configuration programs;
//   - each backend is individually deterministic: repeated solves return
//     bit-identical makespans, schedules and decision statistics. For
//     the portfolio this is the non-trivial promise: the race winner is
//     adjudicated in logical time, so repeated races must agree bit for
//     bit even though goroutine scheduling differs between runs;
//   - on paper-mode models cfgdp is documented as unsupported: solo it
//     degrades cleanly to the bag-LPT fallback, and under the portfolio
//     it drops out of the race, which bnb then decides — bit-identically
//     to solo bnb.
//
// Schedules are not contractually identical *between* backends: an
// accepted guess's configuration program usually has many feasible
// multiplicity vectors and each backend deterministically returns its
// own, so final schedules may differ within the shared 1+O(eps)
// guarantee. The corpus-wide makespan equality asserted here is a
// property of the committed fixtures.

import (
	"path/filepath"
	"reflect"
	"testing"
)

// backendCases enumerates the oracle configurations under test.
var backendCases = []struct {
	name string
	opts []Option
}{
	{"bnb", []Option{WithBackend(BackendBnB)}},
	{"cfgdp", []Option{WithBackend(BackendCfgDP)}},
	{"portfolio", []Option{WithBackend(BackendPortfolio)}},
}

// solveDeterministic solves in twice with opts and fails the test unless
// both runs agree bit for bit (makespan, schedule, decision statistics).
func solveDeterministic(t *testing.T, in *Instance, label string, opts ...Option) *Result {
	t.Helper()
	res, err := SolveEPTAS(in, 0.5, opts...)
	if err != nil {
		t.Fatalf("%s: %v", label, err)
	}
	again, err := SolveEPTAS(in, 0.5, opts...)
	if err != nil {
		t.Fatalf("%s: repeat solve: %v", label, err)
	}
	if again.Makespan != res.Makespan {
		t.Fatalf("%s: nondeterministic makespan: %.17g vs %.17g", label, res.Makespan, again.Makespan)
	}
	if !reflect.DeepEqual(again.Schedule.Machine, res.Schedule.Machine) {
		t.Fatalf("%s: nondeterministic schedule", label)
	}
	if !reflect.DeepEqual(again.Stats.Decision(), res.Stats.Decision()) {
		t.Fatalf("%s: nondeterministic decision stats:\n%+v\nvs\n%+v",
			label, res.Stats.Decision(), again.Stats.Decision())
	}
	return res
}

func TestBackendDifferentialCorpus(t *testing.T) {
	files := instanceFixtures(t)
	if len(files) == 0 {
		t.Fatal("no fixtures under testdata/")
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			in := readFixture(t, path)
			if !in.Uniform() {
				// Speed fixtures run the related family, whose backend
				// contract differs (cfgdp is unsupported on related
				// models); they get their own sub-checks.
				testRelatedBackends(t, in)
				return
			}
			ub, err := SolveBagLPT(in)
			if err != nil {
				t.Fatal(err)
			}
			lb := LowerBound(in)
			var ref *Result
			for _, bc := range backendCases {
				label := "decomposed/" + bc.name
				opts := append([]Option{WithMode(ModeDecomposed)}, bc.opts...)
				res := solveDeterministic(t, in, label, opts...)
				if err := res.Schedule.Validate(); err != nil {
					t.Fatalf("%s: infeasible schedule: %v", label, err)
				}
				if res.Makespan < lb-1e-9 {
					t.Fatalf("%s: makespan %.12f below lower bound %.12f", label, res.Makespan, lb)
				}
				if res.Makespan > ub.Makespan()+1e-9 {
					t.Fatalf("%s: makespan %.12f above bag-LPT %.12f", label, res.Makespan, ub.Makespan())
				}
				if res.Stats.Fallback {
					t.Errorf("%s: fell back to bag-LPT; the backend never accepted a guess", label)
				}
				if ref == nil {
					ref = res
					continue
				}
				// Cross-backend agreement: bit-identical makespan on the
				// committed corpus, same consumed guess sequence, same
				// accepted classification.
				if res.Makespan != ref.Makespan {
					t.Errorf("%s: makespan %.17g differs from bnb's %.17g", label, res.Makespan, ref.Makespan)
				}
				if res.Stats.Guesses != ref.Stats.Guesses ||
					res.Stats.FailedGuesses != ref.Stats.FailedGuesses {
					t.Errorf("%s: guess sequence diverged from bnb: guesses %d/%d failed %d/%d",
						label, res.Stats.Guesses, ref.Stats.Guesses,
						res.Stats.FailedGuesses, ref.Stats.FailedGuesses)
				}
				if res.Stats.K != ref.Stats.K || res.Stats.Q != ref.Stats.Q || res.Stats.BPrime != ref.Stats.BPrime {
					t.Errorf("%s: accepted classification diverged: K/Q/B' %d/%d/%d vs %d/%d/%d",
						label, res.Stats.K, res.Stats.Q, res.Stats.BPrime,
						ref.Stats.K, ref.Stats.Q, ref.Stats.BPrime)
				}
			}

			// Paper mode: bnb decides it; the portfolio must agree bit for
			// bit because cfgdp drops out of the race as unsupported. The
			// paper-mode MILP grows disproportionately with machine count
			// (single solves on the m=256 fixture run for seconds where
			// decomposed mode takes milliseconds), so the large-instance
			// scaling class pins only the decomposed contract above and
			// leaves the paper-mode contract to the small corpus.
			if in.Machines >= 64 {
				return
			}
			bnbPaper := solveDeterministic(t, in, "paper/bnb", WithMode(ModePaper), WithBackend(BackendBnB))
			pfPaper := solveDeterministic(t, in, "paper/portfolio", WithMode(ModePaper), WithBackend(BackendPortfolio))
			if pfPaper.Makespan != bnbPaper.Makespan {
				t.Errorf("paper/portfolio makespan %.17g differs from bnb's %.17g", pfPaper.Makespan, bnbPaper.Makespan)
			}
			if !reflect.DeepEqual(pfPaper.Schedule.Machine, bnbPaper.Schedule.Machine) {
				t.Error("paper/portfolio schedule differs from solo bnb despite cfgdp dropping out")
			}
			if pfPaper.Stats.Fallback {
				t.Error("paper/portfolio fell back to bag-LPT")
			}

			// Solo cfgdp on paper mode is documented as unsupported: every
			// guess is rejected and the solver degrades to the bag-LPT
			// fallback — cleanly, with a valid schedule.
			dpPaper := solveDeterministic(t, in, "paper/cfgdp", WithMode(ModePaper), WithBackend(BackendCfgDP))
			if !dpPaper.Stats.Fallback {
				t.Error("paper/cfgdp accepted a guess; expected the documented unsupported fallback")
			}
			if err := dpPaper.Schedule.Validate(); err != nil {
				t.Errorf("paper/cfgdp fallback schedule invalid: %v", err)
			}
		})
	}
}

// testRelatedBackends is the backend contract on related-family models,
// mirroring the paper-mode contract: bnb decides them; cfgdp is
// documented as unsupported (solo it degrades cleanly to the SpeedLPT
// fallback, under the portfolio it drops out of the race and the
// portfolio reproduces solo bnb bit for bit).
func testRelatedBackends(t *testing.T, in *Instance) {
	opts := func(extra ...Option) []Option {
		return append([]Option{WithFamily(FamilyRelated)}, extra...)
	}
	bnb := solveDeterministic(t, in, "related/bnb", opts(WithBackend(BackendBnB))...)
	if err := bnb.Schedule.Validate(); err != nil {
		t.Fatalf("related/bnb: infeasible schedule: %v", err)
	}
	if bnb.Stats.Fallback {
		t.Error("related/bnb fell back to SpeedLPT; bnb never accepted a guess")
	}
	if bnb.Makespan < bnb.LowerBound-1e-9 {
		t.Errorf("related/bnb: makespan %.12f below the family lower bound %.12f", bnb.Makespan, bnb.LowerBound)
	}

	pf := solveDeterministic(t, in, "related/portfolio", opts(WithBackend(BackendPortfolio))...)
	if pf.Makespan != bnb.Makespan {
		t.Errorf("related/portfolio makespan %.17g differs from bnb's %.17g", pf.Makespan, bnb.Makespan)
	}
	if !reflect.DeepEqual(pf.Schedule.Machine, bnb.Schedule.Machine) {
		t.Error("related/portfolio schedule differs from solo bnb despite cfgdp dropping out")
	}

	dp := solveDeterministic(t, in, "related/cfgdp", opts(WithBackend(BackendCfgDP))...)
	if !dp.Stats.Fallback {
		t.Error("related/cfgdp accepted a guess; expected the documented unsupported fallback")
	}
	if err := dp.Schedule.Validate(); err != nil {
		t.Errorf("related/cfgdp fallback schedule invalid: %v", err)
	}
}

// TestBackendStatsAttribution pins the per-backend accounting: the solo
// backends report themselves with their own work unit, and the portfolio
// reports its race winner.
func TestBackendStatsAttribution(t *testing.T) {
	in := readFixture(t, filepath.Join("testdata", "bimodal_m6_n24.json"))

	bnb, err := SolveEPTAS(in, 0.5, WithBackend(BackendBnB))
	if err != nil {
		t.Fatal(err)
	}
	if bnb.Stats.OracleBackend != "bnb" {
		t.Errorf("bnb solve attributed to %q", bnb.Stats.OracleBackend)
	}
	if bnb.Stats.MILPNodes == 0 || bnb.Stats.DPStates != 0 {
		t.Errorf("bnb work accounting: nodes %d, states %d", bnb.Stats.MILPNodes, bnb.Stats.DPStates)
	}
	if bnb.Stats.OracleRaces != 0 {
		t.Errorf("solo bnb reports %d races", bnb.Stats.OracleRaces)
	}

	dp, err := SolveEPTAS(in, 0.5, WithBackend(BackendCfgDP))
	if err != nil {
		t.Fatal(err)
	}
	if dp.Stats.OracleBackend != "cfgdp" {
		t.Errorf("cfgdp solve attributed to %q", dp.Stats.OracleBackend)
	}
	if dp.Stats.DPStates == 0 || dp.Stats.MILPNodes != 0 {
		t.Errorf("cfgdp work accounting: nodes %d, states %d", dp.Stats.MILPNodes, dp.Stats.DPStates)
	}

	pf, err := SolveEPTAS(in, 0.5, WithBackend(BackendPortfolio))
	if err != nil {
		t.Fatal(err)
	}
	if pf.Stats.OracleBackend != "bnb" && pf.Stats.OracleBackend != "cfgdp" {
		t.Errorf("portfolio winner is %q, want a raced backend", pf.Stats.OracleBackend)
	}
	if pf.Stats.OracleRaces == 0 {
		t.Error("portfolio solve reports no races")
	}
}

// TestPortfolioMatchesLogicalWinner triangulates the determinism of the
// race on the DP-favoring fixture: cfgdp must win the race there, and the
// portfolio must reproduce the solo cfgdp result exactly — adjudication
// in logical time means racing cannot change the content of the answer.
func TestPortfolioMatchesLogicalWinner(t *testing.T) {
	in := readFixture(t, filepath.Join("testdata", "fewpatterns_m12_n32.json"))
	pf, err := SolveEPTAS(in, 0.5, WithBackend(BackendPortfolio))
	if err != nil {
		t.Fatal(err)
	}
	if pf.Stats.OracleBackend != "cfgdp" {
		t.Fatalf("race winner on the few-patterns fixture is %q, want cfgdp", pf.Stats.OracleBackend)
	}
	solo, err := SolveEPTAS(in, 0.5, WithBackend(BackendCfgDP))
	if err != nil {
		t.Fatal(err)
	}
	if pf.Makespan != solo.Makespan {
		t.Errorf("portfolio (cfgdp won) makespan %.17g differs from solo cfgdp %.17g", pf.Makespan, solo.Makespan)
	}
	if !reflect.DeepEqual(pf.Schedule.Machine, solo.Schedule.Machine) {
		t.Error("portfolio (cfgdp won) schedule differs from solo cfgdp")
	}
	if pf.Stats.DPStates != solo.Stats.DPStates {
		t.Errorf("portfolio winner expanded %d states, solo cfgdp %d — the race changed the winner's work",
			pf.Stats.DPStates, solo.Stats.DPStates)
	}
}
