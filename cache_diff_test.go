package bagsched

// Cache-differential tests of the serving-layer shared memo: solving
// through a shared bounded Cache must be invisible in every result. For
// each committed fixture and each oracle backend, the uncached solve
// (memo off), the default private-memo solve, a cold shared-cache solve
// and a fully warm shared-cache solve must agree bit for bit — makespan,
// schedule and decision statistics. The warm solve additionally must be
// served entirely from the cache (zero pipeline runs), which is the
// cross-request reuse the solver service is built on.

import (
	"path/filepath"
	"reflect"
	"testing"
)

// assertSameOutcome fails unless two results agree bit for bit on
// makespan, schedule and the deterministic decision projection.
func assertSameOutcome(t *testing.T, label string, want, got *Result) {
	t.Helper()
	if got.Makespan != want.Makespan {
		t.Fatalf("%s: makespan %.17g, want %.17g", label, got.Makespan, want.Makespan)
	}
	if !reflect.DeepEqual(got.Schedule.Machine, want.Schedule.Machine) {
		t.Fatalf("%s: schedule differs", label)
	}
	if !reflect.DeepEqual(got.Stats.Decision(), want.Stats.Decision()) {
		t.Fatalf("%s: decision stats differ:\n%+v\nvs want\n%+v",
			label, got.Stats.Decision(), want.Stats.Decision())
	}
}

func TestSharedCacheDifferentialCorpus(t *testing.T) {
	files := instanceFixtures(t)
	if len(files) == 0 {
		t.Fatal("no fixtures under testdata/")
	}
	const eps = 0.5
	for _, bc := range backendCases {
		bc := bc
		t.Run(bc.name, func(t *testing.T) {
			// One cache shared across every fixture of this backend, as
			// the solver service would share it across requests.
			shared := NewCache(64 << 20)
			for _, path := range files {
				path := path
				t.Run(filepath.Base(path), func(t *testing.T) {
					in := readFixture(t, path)
					base := append(famOpts(in), bc.opts...)

					uncached, err := SolveEPTAS(in, eps, append([]Option{WithMemo(false)}, base...)...)
					if err != nil {
						t.Fatalf("uncached: %v", err)
					}
					private, err := SolveEPTAS(in, eps, base...)
					if err != nil {
						t.Fatalf("private memo: %v", err)
					}
					assertSameOutcome(t, "private memo vs uncached", uncached, private)

					cold, err := SolveEPTAS(in, eps, append([]Option{WithSharedCache(shared)}, base...)...)
					if err != nil {
						t.Fatalf("shared cache (cold): %v", err)
					}
					assertSameOutcome(t, "shared cache (cold) vs uncached", uncached, cold)

					warm, err := SolveEPTAS(in, eps, append([]Option{WithSharedCache(shared)}, base...)...)
					if err != nil {
						t.Fatalf("shared cache (warm): %v", err)
					}
					assertSameOutcome(t, "shared cache (warm) vs uncached", uncached, warm)
					if warm.Stats.PipelineRuns != 0 {
						t.Errorf("warm shared-cache solve ran %d pipelines, want 0 (all guesses served from cache)",
							warm.Stats.PipelineRuns)
					}
					if warm.Stats.Guesses > 0 && warm.Stats.CacheHits == 0 {
						t.Errorf("warm shared-cache solve reported no cache hits over %d guesses", warm.Stats.Guesses)
					}
				})
			}
			st := shared.Stats()
			if st.Hits == 0 || st.Misses == 0 {
				t.Errorf("shared cache saw no traffic: %+v", st)
			}
			if st.Cost > st.MaxCost {
				t.Errorf("shared cache over budget: %+v", st)
			}
		})
	}
}

// TestSharedCacheNoFalseSharing solves one instance under two different
// accuracies through one shared cache: the key's config hash must keep
// the option sets apart, so each result still matches its uncached
// counterpart.
func TestSharedCacheNoFalseSharing(t *testing.T) {
	in := readFixture(t, filepath.Join("testdata", "bimodal_m6_n24.json"))
	shared := NewCache(0)
	for _, eps := range []float64{0.5, 0.3} {
		uncached, err := SolveEPTAS(in, eps, WithMemo(false))
		if err != nil {
			t.Fatalf("eps %g uncached: %v", eps, err)
		}
		cached, err := SolveEPTAS(in, eps, WithSharedCache(shared))
		if err != nil {
			t.Fatalf("eps %g shared: %v", eps, err)
		}
		assertSameOutcome(t, "shared vs uncached", uncached, cached)
	}
}

// TestSharedCacheTinyBudget forces constant eviction (a budget far below
// one result's footprint keeps only the newest entry) and checks results
// are still bit-identical — the bound affects hit rate, never answers.
func TestSharedCacheTinyBudget(t *testing.T) {
	files := instanceFixtures(t)
	if len(files) < 2 {
		t.Fatalf("need at least two fixtures, got %d", len(files))
	}
	tiny := NewCache(1)
	for _, path := range files {
		in := readFixture(t, path)
		base := famOpts(in)
		uncached, err := SolveEPTAS(in, 0.5, append([]Option{WithMemo(false)}, base...)...)
		if err != nil {
			t.Fatalf("%s uncached: %v", path, err)
		}
		for i := 0; i < 2; i++ {
			res, err := SolveEPTAS(in, 0.5, append([]Option{WithSharedCache(tiny)}, base...)...)
			if err != nil {
				t.Fatalf("%s solve %d: %v", path, i, err)
			}
			assertSameOutcome(t, "tiny-budget shared cache "+path, uncached, res)
		}
	}
	if st := tiny.Stats(); st.Evictions == 0 {
		t.Errorf("tiny budget caused no evictions: %+v", st)
	}
}
