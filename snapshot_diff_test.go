package bagsched

// Snapshot-differential tests of the shippable memo tier: exporting a
// warm shared cache with the versioned snapshot codec and importing it
// into a fresh cache must be invisible in every result. For each
// committed fixture and each oracle backend, a solve against the
// imported cache must agree bit for bit with the solve that populated
// the donor — and must be served entirely from the cache (zero pipeline
// runs), which is the warm-start contract `bagsched serve -snapshot`
// and the shard fleet's cache shipping rely on.

import (
	"bytes"
	"path/filepath"
	"testing"
)

func TestSnapshotRoundTripDifferentialCorpus(t *testing.T) {
	files := instanceFixtures(t)
	if len(files) == 0 {
		t.Fatal("no fixtures under testdata/")
	}
	const eps = 0.5
	for _, bc := range backendCases {
		bc := bc
		t.Run(bc.name, func(t *testing.T) {
			// Populate one donor cache across the whole corpus, as a
			// long-running replica would.
			donor := NewCache(64 << 20)
			type coldCase struct {
				path string
				in   *Instance
				base []Option
				res  *Result
			}
			var cases []coldCase
			for _, path := range files {
				in := readFixture(t, path)
				base := append(famOpts(in), bc.opts...)
				res, err := SolveEPTAS(in, eps, append([]Option{WithSharedCache(donor)}, base...)...)
				if err != nil {
					t.Fatalf("%s: cold solve: %v", path, err)
				}
				cases = append(cases, coldCase{path, in, base, res})
			}

			var buf bytes.Buffer
			written, err := ExportCacheSnapshot(donor, &buf)
			if err != nil {
				t.Fatalf("export: %v", err)
			}
			if written != donor.Len() {
				t.Fatalf("export wrote %d entries, donor holds %d — the codec must cover every entry kind", written, donor.Len())
			}

			recipient := NewCache(64 << 20)
			st, err := ImportCacheSnapshot(recipient, bytes.NewReader(buf.Bytes()))
			if err != nil {
				t.Fatalf("import: %v", err)
			}
			if st.Loaded != written {
				t.Fatalf("import loaded %d of %d exported entries (stats %+v)", st.Loaded, written, st)
			}
			if recipient.Len() != donor.Len() {
				t.Fatalf("recipient holds %d entries, donor %d", recipient.Len(), donor.Len())
			}

			for _, c := range cases {
				c := c
				t.Run(filepath.Base(c.path), func(t *testing.T) {
					warm, err := SolveEPTAS(c.in, eps, append([]Option{WithSharedCache(recipient)}, c.base...)...)
					if err != nil {
						t.Fatalf("warm solve on imported cache: %v", err)
					}
					assertSameOutcome(t, "imported snapshot vs donor cold", c.res, warm)
					if warm.Stats.PipelineRuns != 0 {
						t.Errorf("solve on imported cache ran %d pipelines, want 0 (every guess shipped in the snapshot)",
							warm.Stats.PipelineRuns)
					}
					if warm.Stats.Guesses > 0 && warm.Stats.CacheHits == 0 {
						t.Errorf("solve on imported cache reported no hits over %d guesses", warm.Stats.Guesses)
					}
				})
			}
		})
	}
}

// TestSnapshotImportTinyBudget imports a full-corpus snapshot into a
// cache whose budget holds almost nothing: the import must respect the
// bound (dropping coldest entries, never failing) and solves against
// the starved cache must still be bit-identical to uncached truth.
func TestSnapshotImportTinyBudget(t *testing.T) {
	in := readFixture(t, filepath.Join("testdata", "bimodal_m6_n24.json"))
	const eps = 0.5
	donor := NewCache(64 << 20)
	cold, err := SolveEPTAS(in, eps, WithSharedCache(donor))
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if _, err := ExportCacheSnapshot(donor, &buf); err != nil {
		t.Fatal(err)
	}

	tiny := NewCache(1) // one byte: nothing fits
	st, err := ImportCacheSnapshot(tiny, bytes.NewReader(buf.Bytes()))
	if err != nil {
		t.Fatalf("tiny-budget import must not fail: %v", err)
	}
	if st.SkippedBudget == 0 {
		t.Fatalf("tiny-budget import skipped nothing: %+v", st)
	}
	got, err := SolveEPTAS(in, eps, WithSharedCache(tiny))
	if err != nil {
		t.Fatal(err)
	}
	assertSameOutcome(t, "starved import vs donor cold", cold, got)
}
