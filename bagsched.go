// Package bagsched is a library for machine scheduling with
// bag-constraints (P | bags | Cmax): schedule jobs on identical machines,
// minimizing the makespan, where the jobs are partitioned into bags and no
// machine may run two jobs of the same bag.
//
// The centerpiece is SolveEPTAS, an implementation of the efficient
// polynomial-time approximation scheme of Grage, Jansen and Klein ("An
// EPTAS for machine scheduling with bag-constraints", SPAA 2019): for any
// accuracy eps it returns a feasible schedule with makespan within
// 1+O(eps) of optimal, in time f(1/eps)*poly(n) — in particular the cost
// does not grow with the number of bags, unlike the earlier PTAS of Das
// and Wiese (available here as SolveDasWiese for comparison).
//
// Quick start:
//
//	in := bagsched.NewInstance(4)      // 4 machines
//	in.AddJob(0.8, 0)                  // size 0.8, bag 0
//	in.AddJob(0.7, 0)
//	in.AddJob(0.3, 1)
//	res, err := bagsched.SolveEPTAS(in, 0.5)
//	if err != nil { ... }
//	fmt.Println(res.Makespan, res.Schedule.Loads())
//
// Heuristics (SolveBagLPT, SolveLPT, SolveGreedy, SolveRoundRobin) and an
// exact branch-and-bound solver for small instances (SolveExact) are also
// provided, along with JSON input/output and deterministic workload
// generators under internal/workload for the experiment suite.
//
// # Batch and parallel solving
//
// The solver is deterministic and CPU-bound, which makes it trivially
// parallel at two levels, both result-transparent:
//
//   - SolveBatch (and NewPool for a reusable pool with a fixed worker
//     count) solves many instances concurrently and returns outcomes in
//     input order; every per-instance result matches a sequential
//     SolveEPTAS call (see WithSpeculation for the wall-clock caveat
//     that bounds this guarantee).
//
//   - Within one solve, the dual-approximation binary search evaluates
//     up to three speculative makespan guesses concurrently (on
//     multi-core machines, by default). The consumed guess sequence,
//     Stats and schedule are identical to the sequential search;
//     WithSpeculation tunes or disables it.
//
// For example:
//
//	outs := bagsched.SolveBatch(instances, 0.5)
//	for i, o := range outs {
//	    if o.Err != nil { ... }
//	    fmt.Println(i, o.Result.Makespan)
//	}
//
// # Incremental re-solve
//
// Dynamic workloads edit a solved instance instead of replacing it.
// ResolveEPTAS takes a prior Result plus a Delta (jobs added, removed,
// resized, re-bagged; machines added or removed) and re-solves
// warm-started: the search is seeded at the prior accepted guess, the
// prior solve's memo serves signature-preserving guesses, and with
// WithPlacementRepair a small delta can be absorbed by moving only the
// churned jobs. Without repair the answer is bit-identical to a
// from-scratch SolveEPTAS on the edited instance.
//
// # Oracle backends
//
// The integer-programming oracle at the heart of each makespan guess is
// pluggable (WithBackend): LP-simplex branch-and-bound (BackendBnB, the
// default), an exact configuration dynamic program in fixed-point
// integer arithmetic (BackendCfgDP, strongest on small pattern spaces),
// or a deterministic portfolio race of both (BackendPortfolio) that
// returns the first definitive outcome adjudicated in logical work units
// — reproducible regardless of machine load.
//
// # Cancellation
//
// Every solver entry point has a Context variant (SolveEPTASContext,
// SolveBatchContext, Pool.SolveEPTASContext, SolveDasWieseContext).
// Cancellation reaches every layer — between binary-search guesses,
// between pipeline stages, inside pattern enumeration and inside the
// MILP branch-and-bound loop — so a canceled or expired context aborts
// a solve promptly with ctx.Err().
package bagsched

import (
	"context"
	"io"
	"time"

	"repro/internal/baselines"
	"repro/internal/batch"
	"repro/internal/cfgmilp"
	"repro/internal/core"
	"repro/internal/family"
	"repro/internal/memo"
	"repro/internal/oracle"
	"repro/internal/pipeline"
	"repro/internal/plan"
	"repro/internal/sched"
)

// Instance is a bag-constrained scheduling instance. See NewInstance.
type Instance = sched.Instance

// Job is a single unit of work with a size and a bag.
type Job = sched.Job

// JobID identifies a job within an instance.
type JobID = sched.JobID

// Schedule assigns every job of an instance to a machine.
type Schedule = sched.Schedule

// Conflict is a bag-constraint violation (two jobs of one bag on one
// machine).
type Conflict = sched.Conflict

// Delta is an incremental edit to a previously solved instance: jobs
// added, removed, resized or moved between bags, and machines added or
// removed. Apply it with ResolveEPTAS, which re-solves the edited
// instance warm-started from the prior result.
type Delta = sched.Delta

// Resize changes the size of one existing job in a Delta.
type Resize = sched.Resize

// Rebag moves one existing job to a different bag in a Delta.
type Rebag = sched.Rebag

// NewInstance returns an empty instance with the given machine count.
func NewInstance(machines int) *Instance { return sched.NewInstance(machines) }

// NewRelatedInstance returns an empty uniformly-related-machines
// instance with one machine per speed. Solve it with
// WithFamily(FamilyRelated).
func NewRelatedInstance(speeds []float64) *Instance { return sched.NewRelatedInstance(speeds) }

// LowerBound returns a combinatorial lower bound on the optimal makespan.
func LowerBound(in *Instance) float64 { return sched.LowerBound(in) }

// Result is the outcome of an approximation solve.
type Result = core.Result

// Stats describes the EPTAS search effort.
type Stats = core.Stats

// MILPMode selects the configuration-program flavour used by the EPTAS.
type MILPMode = cfgmilp.Mode

const (
	// ModeDecomposed (default) solves an integer program over pattern
	// multiplicities only and distributes small jobs greedily.
	ModeDecomposed = cfgmilp.ModeDecomposed
	// ModePaper materializes the paper's y variables, including the
	// integral subset of constraint (7). Exponentially larger; use on
	// small instances only.
	ModePaper = cfgmilp.ModePaper
)

// OracleBackend selects the integer-programming oracle engine that
// decides each makespan guess's configuration program. See the package
// documentation of internal/oracle for the backend contract.
type OracleBackend = oracle.Kind

const (
	// BackendBnB (default) decides guesses with LP-simplex
	// branch-and-bound over the materialized configuration MILP. It
	// handles both MILP modes and arbitrary pattern spaces.
	BackendBnB = oracle.KindBnB
	// BackendCfgDP decides guesses with an exact dynamic program over
	// machine-configuration multiplicities in int64 fixed-point
	// arithmetic — no LP and no floating-point tolerance anywhere in the
	// decision. Strongest when pattern counts are small; decomposed mode
	// only.
	BackendCfgDP = oracle.KindCfgDP
	// BackendPortfolio races cfgdp and bnb concurrently per guess and
	// returns the first definitive outcome, adjudicated in deterministic
	// logical time so results stay bit-for-bit reproducible.
	BackendPortfolio = oracle.KindPortfolio
)

// ParseBackend parses a CLI backend name ("bnb", "cfgdp", "portfolio").
func ParseBackend(s string) (OracleBackend, error) { return oracle.ParseKind(s) }

// Family is one load-balancing problem family the solver pipeline can
// run as. See the package documentation of internal/family for the
// seam's contract and WithFamily to select one.
type Family = family.Family

var (
	// FamilyBags (the default) is the paper's bag-constrained
	// identical-machines problem (P | bags | Cmax); results are
	// byte-for-byte those of the pre-family API.
	FamilyBags = family.Bags
	// FamilyIdentical is plain identical-machines makespan scheduling
	// (P || Cmax): bag structure is ignored (every job its own bag) and
	// the bags pipeline runs on the degenerate instance.
	FamilyIdentical = family.Identical
	// FamilyRelated is uniformly related machines with few distinct
	// speeds (Q || Cmax): configurations are enumerated per speed class
	// against speed-scaled capacities, decided by the same oracle seam.
	FamilyRelated = family.Related
)

// ParseFamily parses a CLI/API family name ("bags", "identical",
// "related"); the empty string selects FamilyBags.
func ParseFamily(s string) (Family, error) { return family.Parse(s) }

// Option customizes SolveEPTAS. Options compose left to right; the
// zero value of every knob selects the documented default. Spec is the
// consolidated struct form of the same knobs — the two styles are
// interchangeable (Spec.Options bridges), and neither is deprecated.
type Option func(*core.Options)

// Spec is the consolidated, self-documenting form of every solver
// option: one struct mirroring the serving layer's request spec, so a
// configuration can be stored, logged, or diffed as a value instead of
// an opaque option list. The zero value of every field selects the same
// default the corresponding With* option documents; bridge into the
// variadic API with Spec.Options.
//
// The functional options remain fully supported — nothing is
// deprecated. Use whichever reads better at the call site; use Spec
// when the configuration crosses an API boundary.
type Spec struct {
	// Family selects the problem family (nil = FamilyBags). See
	// WithFamily.
	Family Family
	// Mode selects the MILP flavour. See WithMode.
	Mode MILPMode
	// Backend selects the oracle backend (zero = BackendBnB). See
	// WithBackend.
	Backend OracleBackend
	// Portfolio, when non-nil, races these backends per guess in
	// tie-break order (implies BackendPortfolio). See WithPortfolio.
	Portfolio []OracleBackend
	// PatternLimit bounds pattern enumeration (0 = default 20000). See
	// WithPatternLimit.
	PatternLimit int
	// MILPNodes bounds branch-and-bound nodes per guess (0 = default).
	// See WithMILPNodes.
	MILPNodes int
	// MaxGuesses bounds binary-search decisions (0 = default 40). See
	// WithMaxGuesses.
	MaxGuesses int
	// PriorityCap caps the Definition 2 constant b' (0 = theoretical
	// value). See WithPriorityCap.
	PriorityCap int
	// OracleWorkers sets concurrent lanes per oracle solve (0 or 1 =
	// sequential). See WithOracleWorkers.
	OracleWorkers int
	// Speculation controls speculative guess evaluation (0 = auto, 1 =
	// sequential). See WithSpeculation.
	Speculation int
	// Cache, when non-nil, shares per-guess outcomes across solves. See
	// WithSharedCache.
	Cache *Cache
	// DisableMemo turns cross-guess memoization off (kept for ablation;
	// results are identical either way). See WithMemo.
	DisableMemo bool
	// Repair enables the placement-repair fast path of ResolveEPTAS.
	// See WithPlacementRepair.
	Repair bool

	// Adaptive enables SLO-aware planning: with a Planner attached, the
	// solve may coarsen eps, switch the backend, or answer with a
	// bounded heuristic to meet Deadline, reporting what it did in
	// Result.Quality. See WithAdaptive.
	Adaptive bool
	// Planner is the latency cost model consulted by adaptive solves
	// and fed by every successful solve. See WithPlanner.
	Planner *PlanModel
	// Deadline is the latency budget an adaptive solve plans against
	// (and a hard context timeout for the solve). See WithDeadline.
	Deadline time.Duration
	// MinQuality is the worst acceptable approximation bound; an
	// adaptive solve refuses with ErrUnattainable instead of degrading
	// past it. See WithQualityFloor.
	MinQuality float64
}

// Options bridges the struct form into the variadic option API:
// SolveEPTAS(in, eps, spec.Options()...).
func (s Spec) Options() []Option {
	opts := []Option{func(o *core.Options) {
		if s.Family != nil {
			o.Family = s.Family
		}
		o.Mode = s.Mode
		o.Oracle.Backend = s.Backend
		if s.Portfolio != nil {
			o.Oracle.Backend = BackendPortfolio
			o.Oracle.Portfolio = s.Portfolio
		}
		o.PatternLimit = s.PatternLimit
		o.MILP.MaxNodes = s.MILPNodes
		o.MaxGuesses = s.MaxGuesses
		o.BPrimeOverride = s.PriorityCap
		o.OracleWorkers = s.OracleWorkers
		o.Speculate = s.Speculation
		o.Cache = s.Cache
		o.DisableMemo = s.DisableMemo
		o.Repair = s.Repair
		o.Adaptive = s.Adaptive
		o.Planner = s.Planner
		o.Deadline = s.Deadline
		o.MinQuality = s.MinQuality
	}}
	return opts
}

// WithMode selects the MILP flavour.
func WithMode(m MILPMode) Option {
	return func(o *core.Options) { o.Mode = m }
}

// WithFamily selects the problem family the solver runs as (default
// FamilyBags). The family owns instance validation, the lower bound,
// the fallback heuristic and the per-guess decision path; everything
// else — binary search, memoization, batching, the serving layer — is
// shared. Solves under different families never share cache entries
// (the memo fingerprint covers the family).
func WithFamily(f Family) Option {
	return func(o *core.Options) { o.Family = f }
}

// WithBackend selects the oracle backend (default BackendBnB). The
// backend changes how each guess's configuration program is decided —
// and, for accepted guesses, which of the feasible pattern-multiplicity
// plans the placer realizes — so schedules may legitimately differ
// between backends; every backend is individually deterministic, exact,
// and covered by the same 1+O(eps) guarantee.
func WithBackend(b OracleBackend) Option {
	return func(o *core.Options) { o.Oracle.Backend = b }
}

// WithPortfolio selects the portfolio backend over an explicit set of
// raced backends (in tie-break order). With no arguments the default
// race (cfgdp, then bnb) is used.
func WithPortfolio(backends ...OracleBackend) Option {
	return func(o *core.Options) {
		o.Oracle.Backend = oracle.KindPortfolio
		o.Oracle.Portfolio = backends
	}
}

// WithPatternLimit bounds pattern enumeration (default 20000). Makespan
// guesses whose pattern space exceeds the limit are rejected, degrading
// gracefully toward the bag-LPT fallback.
func WithPatternLimit(limit int) Option {
	return func(o *core.Options) { o.PatternLimit = limit }
}

// WithMILPNodes bounds branch-and-bound nodes per makespan guess.
func WithMILPNodes(nodes int) Option {
	return func(o *core.Options) { o.MILP.MaxNodes = nodes }
}

// WithMaxGuesses bounds the binary-search decisions (default 40).
func WithMaxGuesses(g int) Option {
	return func(o *core.Options) { o.MaxGuesses = g }
}

// WithPriorityCap caps the Definition 2 priority-bag constant b' below
// its theoretical value. The theoretical constant exceeds any moderate
// bag count for practical eps, so without a cap the instance
// transformation never triggers; capping exercises the full machinery at
// the cost of the formal (worst-case) guarantee.
func WithPriorityCap(bprime int) Option {
	return func(o *core.Options) { o.BPrimeOverride = bprime }
}

// WithOracleWorkers sets the number of concurrent lanes a single oracle
// solve may use (default 1, sequential): helper lanes speculatively
// solve LP relaxations ahead of the branch-and-bound loop and explore
// root subtrees ahead of the configuration DP, and the main lane adopts
// their results only when provably identical to what it would have
// computed itself. Results — the schedule, the makespan, and every
// decision statistic — are bit-for-bit identical at any worker count;
// the knob trades CPU for latency on large single instances. It
// composes with WithSpeculation (parallelism across guesses) and with
// batching (parallelism across instances); on a saturated batch
// workload extra oracle workers mostly add contention, so prefer it for
// interactive or few-instance workloads.
func WithOracleWorkers(n int) Option {
	return func(o *core.Options) { o.OracleWorkers = n }
}

// WithSpeculation controls speculative parallel guess evaluation in the
// binary search: 1 forces the strictly sequential search; any larger
// value (all treated alike) evaluates the current midpoint plus its two
// possible successors concurrently. The default (0) speculates whenever
// more than one CPU is available. Speculation does not change the result
// — only wall-clock time — as long as per-guess MILP solves stay within
// their deterministic node budgets rather than the wall-clock time-limit
// backstop (see Stats; on the instances of this repo's experiment suite
// the node budget always binds first).
func WithSpeculation(n int) Option {
	return func(o *core.Options) { o.Speculate = n }
}

// Cache is a concurrency-safe, bounded, cost-aware memo for pipeline
// outcomes, shared across solves: guesses whose scaled-rounded instances
// (and solver options) coincide are decided once and reused, within a
// solve and across requests. See NewCache, WithSharedCache and the
// documentation of internal/memo for the exact semantics (in-flight
// deduplication, committed negative entries, LRU eviction by estimated
// bytes). A Cache's Stats method reports hit/miss/eviction counters.
type Cache = memo.Cache

// CacheStats is a snapshot of a Cache's counters.
type CacheStats = memo.Stats

// NewCache returns a shared solve cache bounded to approximately
// maxBytes of retained results (estimated, not exact). maxBytes <= 0
// means unbounded. Pass it to any number of concurrent solves with
// WithSharedCache; the long-running solver service keeps one Cache for
// its whole lifetime.
func NewCache(maxBytes int64) *Cache { return memo.New(maxBytes) }

// WithSharedCache makes the solve store per-guess pipeline outcomes in
// (and serve hits from) c instead of a private per-solve memo, so
// repeated or overlapping workloads skip the guess-enumeration cost
// entirely. Solves under different options or instances never share
// entries falsely (the memo key covers both), and results are
// bit-identical to uncached solves — the cache changes latency, never
// answers. A nil c restores the private per-solve memo.
func WithSharedCache(c *Cache) Option {
	return func(o *core.Options) { o.Cache = c }
}

// SnapshotImportStats reports what ImportCacheSnapshot loaded and what
// it skipped (and why).
type SnapshotImportStats = memo.ImportStats

// ExportCacheSnapshot writes a versioned, checksummed snapshot of c to
// w: every committed entry — positive plans and memoized rejections —
// in recency order, with the plan payloads serialized by the exact
// integer result codec. The export reads the cache without perturbing
// its LRU order or counters and never holds the cache lock across I/O,
// so it is safe to call on a cache serving live traffic. It returns the
// number of entries written. Because solves are fully determined by
// their scaled-rounded signature, a snapshot is location-independent:
// importing it on any replica yields bit-identical warm results.
func ExportCacheSnapshot(c *Cache, w io.Writer) (int, error) {
	written, _, err := c.Export(w, pipeline.SnapshotEncoder())
	return written, err
}

// ImportCacheSnapshot loads a snapshot written by ExportCacheSnapshot
// into c, warm-starting it. Entries already live in c are kept (the
// import never overwrites), entries beyond c's cost budget are dropped
// coldest-first, and individually undecodable entries are skipped; a
// snapshot whose container is corrupt or of an unknown version is
// rejected as a whole with memo.ErrSnapshotCorrupt or
// memo.ErrSnapshotVersion, leaving c unchanged.
func ImportCacheSnapshot(c *Cache, r io.Reader) (SnapshotImportStats, error) {
	return c.Import(r, pipeline.SnapshotDecoder())
}

// WithMemo toggles the cross-guess memoization of the per-guess pipeline
// (default on). Geometric rounding collapses adjacent makespan guesses
// into equivalence classes, and the solver decides each class once;
// results are bit-for-bit identical with the memo on or off — disabling
// it only repeats work (kept for tests and ablation experiments). See
// Stats.CacheHits.
func WithMemo(on bool) Option {
	return func(o *core.Options) { o.DisableMemo = !on }
}

// SolveEPTAS schedules in with the EPTAS at accuracy eps in (0,1). The
// result is always a feasible schedule; its makespan is within 1+O(eps)
// of optimal.
func SolveEPTAS(in *Instance, eps float64, opts ...Option) (*Result, error) {
	return SolveEPTASContext(context.Background(), in, eps, opts...)
}

// SolveEPTASContext is SolveEPTAS under a context. Cancellation reaches
// every layer of the solver — between binary-search guesses, between
// pipeline stages, inside pattern enumeration and inside the MILP
// branch-and-bound loop — so a canceled or expired context aborts the
// solve promptly and returns ctx.Err().
func SolveEPTASContext(ctx context.Context, in *Instance, eps float64, opts ...Option) (*Result, error) {
	return core.SolveContext(ctx, in, buildOptions(eps, opts))
}

// ResolveEPTAS applies delta to the instance of a prior SolveEPTAS (or
// ResolveEPTAS) result and re-solves incrementally: the binary search is
// warm-started at the prior result's accepted makespan guess, guesses
// whose scaled-rounded signature the delta left unchanged are served
// from the prior solve's memo without re-running the pipeline, and with
// WithPlacementRepair a small delta may be absorbed by re-placing only
// the churned jobs, skipping the search entirely.
//
// Without WithPlacementRepair the returned schedule is bit-identical to
// SolveEPTAS on the post-delta instance under the same options — the
// warm start is a latency optimization, never a semantic one. With
// repair, an accepted repaired schedule instead carries the certificate
// makespan <= (1+eps)*LowerBound, at least as strong as the search's
// own guarantee.
//
// Options default to the prior solve's (prior.Options); opts override
// on top. The returned Result carries everything the next ResolveEPTAS
// needs, so deltas chain.
func ResolveEPTAS(prior *Result, delta Delta, opts ...Option) (*Result, error) {
	return ResolveEPTASContext(context.Background(), prior, delta, opts...)
}

// ResolveEPTASContext is ResolveEPTAS under a context; cancellation
// reaches every layer exactly as in SolveEPTASContext.
func ResolveEPTASContext(ctx context.Context, prior *Result, delta Delta, opts ...Option) (*Result, error) {
	var o core.Options
	if prior != nil {
		o = prior.Options
	}
	for _, fn := range opts {
		fn(&o)
	}
	return core.ResolveContext(ctx, prior, delta, o)
}

// WithPlacementRepair enables the placement-repair fast path of
// ResolveEPTAS: before searching at all, carry every unchanged job's
// machine over from the prior schedule and greedily re-place only the
// churned jobs. The repaired schedule is returned only when its makespan
// stays within (1+eps) of the post-delta lower bound; otherwise the
// warm-started search runs as if repair were off. Repair trades
// bit-identity with the from-scratch solve for near-zero latency, which
// is why it is opt-in; Stats.Repaired reports whether it engaged.
// SolveEPTAS ignores the option.
func WithPlacementRepair() Option {
	return func(o *core.Options) { o.Repair = true }
}

// Quality reports what a Result actually guarantees: which rung of the
// degradation ladder answered (a full EPTAS search, a bounded
// heuristic, or the resolve repair path), the accuracy it ran at, and
// the worst-case approximation bound of the returned schedule. Every
// Result carries one, adaptive or not.
type Quality = core.Quality

// PlanModel is the online latency cost model behind adaptive solving:
// every successful solve feeds it one (configuration -> latency)
// observation, and adaptive solves consult it at admission to pick the
// cheapest configuration predicted to meet their deadline. Observation
// never changes answers — attaching a model to a non-adaptive solve is
// result-transparent. A PlanModel is safe for concurrent use; share one
// across solves, pools and servers.
type PlanModel = plan.Model

// NewPlanModel returns an empty cost model. It predicts nothing until
// fed (by solves with WithPlanner, or by ImportPlanModel), and a cold
// model never degrades a request — adaptive solves keep their requested
// configuration until evidence says it will miss the deadline.
func NewPlanModel() *PlanModel { return plan.NewModel() }

// ExportPlanModel writes a byte-stable JSON snapshot of the model to w,
// shippable alongside the cache snapshot: import it on another replica
// (or the next process) to warm-start its planner.
func ExportPlanModel(m *PlanModel, w io.Writer) error { return m.Export(w) }

// ImportPlanModel merges a snapshot written by ExportPlanModel into m.
// Live cells win — the import only fills configurations m has no
// evidence for — so importing a stale snapshot never clobbers fresher
// observations.
func ImportPlanModel(m *PlanModel, r io.Reader) error { return m.Import(r) }

// ErrUnattainable is returned (wrapped) by adaptive solves whose
// quality floor no ladder rung can meet within the deadline; match it
// with errors.Is.
var ErrUnattainable = plan.ErrUnattainable

// WithPlanner attaches a latency cost model to the solve: the solve's
// observed latency feeds m, and with WithAdaptive the model is
// consulted at admission. Attaching a planner alone never changes the
// result.
func WithPlanner(m *PlanModel) Option {
	return func(o *core.Options) { o.Planner = m }
}

// WithAdaptive enables SLO-aware planning (it needs WithPlanner to have
// any effect): at admission the solve picks the cheapest configuration
// the model predicts to fit WithDeadline's budget, walking the
// degradation ladder — requested eps, coarser eps, then the family's
// bounded heuristics — and Result.Quality reports the rung that
// answered and its approximation bound. With a cold or unhelpful model
// the requested configuration runs unchanged.
func WithAdaptive() Option {
	return func(o *core.Options) { o.Adaptive = true }
}

// WithDeadline gives the solve a latency budget: the context is bounded
// by d, and an adaptive solve additionally plans its configuration to
// fit within d (with headroom). Zero means no deadline.
func WithDeadline(d time.Duration) Option {
	return func(o *core.Options) { o.Deadline = d }
}

// WithQualityFloor sets the worst acceptable approximation bound q
// (e.g. 1.5 for "within 50% of optimal"). An adaptive solve refuses
// with ErrUnattainable instead of degrading to any rung whose bound
// exceeds q; zero means no floor, i.e. best-effort degradation all the
// way down the ladder.
func WithQualityFloor(q float64) Option {
	return func(o *core.Options) { o.MinQuality = q }
}

func buildOptions(eps float64, opts []Option) core.Options {
	o := core.Options{Eps: eps}
	for _, fn := range opts {
		fn(&o)
	}
	return o
}

// BatchOutcome pairs the result of one batched instance with its error;
// exactly one of the two fields is non-nil.
type BatchOutcome = batch.Outcome

// Pool solves batches of instances concurrently on a fixed number of
// workers. A Pool is stateless between calls and safe for concurrent
// use.
type Pool struct{ inner *batch.Pool }

// NewPool returns a pool with the given worker count; values <= 0 select
// GOMAXPROCS workers.
func NewPool(workers int) *Pool { return &Pool{inner: batch.NewPool(workers)} }

// Workers reports the pool's worker count.
func (p *Pool) Workers() int { return p.inner.Workers() }

// SolveEPTAS solves every instance with the EPTAS at accuracy eps,
// distributing the solves over the pool's workers. Outcomes are returned
// in input order, and each matches a sequential SolveEPTAS call on that
// instance (see WithSpeculation for the wall-clock caveat that bounds
// this guarantee).
func (p *Pool) SolveEPTAS(ins []*Instance, eps float64, opts ...Option) []BatchOutcome {
	return p.SolveEPTASContext(context.Background(), ins, eps, opts...)
}

// SolveEPTASContext is Pool.SolveEPTAS under a context shared by the
// whole batch: when it is canceled or expires, unfinished solves abort
// promptly (their Outcome.Err is ctx.Err()) while finished outcomes are
// kept, so a deadline caps the batch's wall-clock time.
func (p *Pool) SolveEPTASContext(ctx context.Context, ins []*Instance, eps float64, opts ...Option) []BatchOutcome {
	tasks := make([]batch.Task, len(ins))
	for i, in := range ins {
		tasks[i] = batch.Task{Instance: in, Options: buildOptions(eps, opts)}
	}
	return p.inner.SolveContext(ctx, tasks)
}

// SolveBatch solves every instance with the EPTAS at accuracy eps on a
// fresh GOMAXPROCS-sized pool. See Pool.SolveEPTAS.
func SolveBatch(ins []*Instance, eps float64, opts ...Option) []BatchOutcome {
	return NewPool(0).SolveEPTAS(ins, eps, opts...)
}

// SolveBatchContext is SolveBatch under a context; see
// Pool.SolveEPTASContext.
func SolveBatchContext(ctx context.Context, ins []*Instance, eps float64, opts ...Option) []BatchOutcome {
	return NewPool(0).SolveEPTASContext(ctx, ins, eps, opts...)
}

// SolveDasWiese schedules in with the configuration-program scheme with
// every bag treated as priority (no instance transformation) — the
// PTAS-style approach whose cost grows with the number of bags.
func SolveDasWiese(in *Instance, eps float64) (*Result, error) {
	return baselines.DasWieseConfig(in, eps)
}

// SolveDasWieseContext is SolveDasWiese under a context; a canceled or
// expired context aborts the solve and returns ctx.Err().
func SolveDasWieseContext(ctx context.Context, in *Instance, eps float64) (*Result, error) {
	return baselines.DasWieseConfigContext(ctx, in, eps)
}

// SolveBagLPT schedules in with the paper's bag-LPT heuristic.
func SolveBagLPT(in *Instance) (*Schedule, error) { return baselines.BagLPT(in) }

// SolveLPT schedules in with longest-processing-time list scheduling
// restricted to conflict-free machines.
func SolveLPT(in *Instance) (*Schedule, error) { return baselines.LPT(in) }

// SolveGreedy schedules in by least-loaded feasible list scheduling in
// input order.
func SolveGreedy(in *Instance) (*Schedule, error) { return baselines.Greedy(in) }

// SolveRoundRobin schedules in by static cyclic assignment (conflict-free
// but load-oblivious).
func SolveRoundRobin(in *Instance) (*Schedule, error) { return baselines.RoundRobin(in) }

// ExactResult is the outcome of SolveExact.
type ExactResult = baselines.ExactResult

// SolveExact computes an optimal schedule by branch and bound within the
// time limit (0 means 30s). Intended for small instances.
func SolveExact(in *Instance, timeLimit time.Duration) (*ExactResult, error) {
	return baselines.Exact(in, baselines.ExactOptions{TimeLimit: timeLimit})
}
