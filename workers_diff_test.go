package bagsched

// Worker-count differential tests: the parallel oracle's core contract
// is that WithOracleWorkers is a pure throughput knob — every observable
// result (makespan, schedule, decision statistics) is bit-identical at
// every worker count, because speculation is adjudicated in logical time
// and adopted work is replayed through the sequential accounting. This
// suite enforces that contract corpus-wide: every committed fixture,
// every oracle backend, every problem family the fixture supports, at
// workers 1, 2, 4 and 8, against the sequential (workers<=1) baseline
// that is the exact pre-parallelism code path. CI runs it under the race
// detector, so it doubles as the data-race gate for the speculative
// machinery.
//
// Stats.Decision() is the comparison projection: it clears the
// load-dependent utilization telemetry (worker lane count, speculative
// claims and adoptions, race-loser counters) that legitimately varies
// with scheduling, leaving exactly the fields the determinism contract
// covers.

import (
	"path/filepath"
	"reflect"
	"testing"
	"time"

	"repro/internal/core"
)

// workerCounts are the lane counts the differential sweep compares; 1 is
// the sequential baseline the others must reproduce bit for bit.
var workerCounts = []int{1, 2, 4, 8}

// withSlowWallClock raises the MILP's wall-clock backstop far beyond
// anything this suite can hit. The determinism contract is conditioned
// on the *logical* budgets (node, pivot and DP-state counts) binding:
// the 2s wall-clock backstop is documented as the pipeline's only
// load-dependent limit, and under the race detector on a loaded runner
// the large fixtures can trip it at some worker counts and not others,
// legitimately steering the classification ladder down different rungs.
// Disabling it here makes the suite assert exactly the contract the
// parallel oracle promises — identical results whenever the same
// logical budgets decide — instead of flaking on machine speed.
func withSlowWallClock() Option {
	return func(o *core.Options) { o.MILP.TimeLimit = 10 * time.Minute }
}

// familyCasesFor returns every family/solve-option combination a fixture
// supports: uniform fixtures run as bags (the default) and as identical
// machines (which ignores the bag structure), speed-carrying fixtures as
// related machines.
func familyCasesFor(in *Instance) []struct {
	name string
	opts []Option
} {
	type fc = struct {
		name string
		opts []Option
	}
	if !in.Uniform() {
		return []fc{{"related", []Option{WithFamily(FamilyRelated)}}}
	}
	return []fc{
		{"bags", nil},
		{"identical", []Option{WithFamily(FamilyIdentical)}},
	}
}

func TestOracleWorkersDifferentialCorpus(t *testing.T) {
	files := instanceFixtures(t)
	if len(files) == 0 {
		t.Fatal("no fixtures under testdata/")
	}
	for _, path := range files {
		path := path
		t.Run(filepath.Base(path), func(t *testing.T) {
			in := readFixture(t, path)
			for _, fam := range familyCasesFor(in) {
				for _, bc := range backendCases {
					label := fam.name + "/" + bc.name
					var base *Result
					for _, w := range workerCounts {
						opts := append(append([]Option{}, fam.opts...), bc.opts...)
						opts = append(opts, WithOracleWorkers(w), withSlowWallClock())
						res, err := SolveEPTAS(in, 0.5, opts...)
						if err != nil {
							t.Fatalf("%s workers=%d: %v", label, w, err)
						}
						if w == 1 {
							base = res
							continue
						}
						if res.Makespan != base.Makespan {
							t.Errorf("%s workers=%d: makespan %.17g differs from sequential %.17g",
								label, w, res.Makespan, base.Makespan)
						}
						if !reflect.DeepEqual(res.Schedule.Machine, base.Schedule.Machine) {
							t.Errorf("%s workers=%d: schedule differs from sequential", label, w)
						}
						if !reflect.DeepEqual(res.Stats.Decision(), base.Stats.Decision()) {
							t.Errorf("%s workers=%d: decision stats differ from sequential:\n%+v\nvs\n%+v",
								label, w, res.Stats.Decision(), base.Stats.Decision())
						}
					}
				}
			}
		})
	}
}

// TestOracleWorkersUtilizationTelemetry pins the shape of the worker
// telemetry: parallel solves report the lane count they ran with, and
// the Decision projection really does strip it (the differential test
// above would silently weaken if Decision started passing utilization
// fields through).
func TestOracleWorkersUtilizationTelemetry(t *testing.T) {
	in := readFixture(t, filepath.Join("testdata", "large_bimodal_m256_n384.json"))
	res, err := SolveEPTAS(in, 0.5, WithOracleWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.OracleWorkers != 4 {
		t.Errorf("parallel solve reports %d worker lanes, want 4", res.Stats.OracleWorkers)
	}
	d := res.Stats.Decision()
	if d.OracleWorkers != 0 || d.OracleSteals != 0 || d.OracleSpecUsed != 0 {
		t.Errorf("Decision() leaks utilization telemetry: workers=%d steals=%d adopted=%d",
			d.OracleWorkers, d.OracleSteals, d.OracleSpecUsed)
	}
}
