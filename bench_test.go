package bagsched

// Benchmark harness: one benchmark per experiment of the EX suite defined
// in DESIGN.md (the paper has no experimental tables of its own — these
// regenerate the synthetic evaluation), plus micro-benchmarks for every
// substrate the EPTAS depends on. Run with:
//
//	go test -bench=. -benchmem
import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"os"
	"runtime"
	"testing"
	"time"

	"repro/internal/baselines"
	"repro/internal/cfgmilp"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/flow"
	"repro/internal/greedy"
	"repro/internal/lp"
	"repro/internal/milp"
	"repro/internal/oracle"
	"repro/internal/pattern"
	"repro/internal/plan"
	"repro/internal/round"
	"repro/internal/sched"
	"repro/internal/transform"
	"repro/internal/wire"
	"repro/internal/workload"
)

// --- EX-F1: Figure 1 adversarial family ---

func BenchmarkExF1AdversarialEPTAS(b *testing.B) {
	in := workload.MustGenerate(workload.Spec{Family: workload.Adversarial, Machines: 8})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := SolveEPTAS(in, 0.3, WithSpeculation(1))
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Makespan
	}
}

// --- EX-T1: quality per eps (cost of one full EPTAS solve) ---

func benchEPTASQuality(b *testing.B, eps float64) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Bimodal, Machines: 3, Jobs: 11, Bags: 4, Seed: 100,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SolveEPTAS(in, eps, WithSpeculation(1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExT1Quality_Eps075(b *testing.B) { benchEPTASQuality(b, 0.75) }
func BenchmarkExT1Quality_Eps050(b *testing.B) { benchEPTASQuality(b, 0.5) }
func BenchmarkExT1Quality_Eps033(b *testing.B) { benchEPTASQuality(b, 0.33) }

// --- EX-T2: runtime scaling in n and in the bag count ---

func benchEPTASSize(b *testing.B, n int) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Bimodal, Machines: n / 5, Jobs: n, Bags: n / 4, Seed: 5,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SolveEPTAS(in, 0.5, WithSpeculation(1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExT2ScaleN020(b *testing.B) { benchEPTASSize(b, 20) }
func BenchmarkExT2ScaleN040(b *testing.B) { benchEPTASSize(b, 40) }
func BenchmarkExT2ScaleN080(b *testing.B) { benchEPTASSize(b, 80) }

func benchBags(b *testing.B, bags int, dasWiese bool) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Bimodal, Machines: 8, Jobs: 16, Bags: bags, Seed: 5,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		if dasWiese {
			_, err = SolveDasWiese(in, 0.5)
		} else {
			_, err = SolveEPTAS(in, 0.5, WithSpeculation(1))
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExT2Bags04_EPTAS(b *testing.B)    { benchBags(b, 4, false) }
func BenchmarkExT2Bags08_EPTAS(b *testing.B)    { benchBags(b, 8, false) }
func BenchmarkExT2Bags08_DasWiese(b *testing.B) { benchBags(b, 8, true) }

// --- EX-S1: batch solving throughput (sequential loop vs worker pool) ---

// BenchmarkExS1Batch16_Sequential is the baseline: a plain loop of
// sequential solves over the 16-instance bimodal fleet (bimodalBatch in
// batch_test.go). Compare its per-op wall-clock against
// BenchmarkExS1Batch16_Pool on a multi-core machine to see the pool's
// speedup; on one core the two coincide.
func BenchmarkExS1Batch16_Sequential(b *testing.B) {
	ins := bimodalBatch(b, 16)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, in := range ins {
			if _, err := SolveEPTAS(in, 0.5, WithSpeculation(1)); err != nil {
				b.Fatal(err)
			}
		}
	}
}

func BenchmarkExS1Batch16_Pool(b *testing.B) {
	ins := bimodalBatch(b, 16)
	pool := NewPool(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, o := range pool.SolveEPTAS(ins, 0.5) {
			if o.Err != nil {
				b.Fatal(o.Err)
			}
		}
	}
}

// --- EX-S2: speculative guess evaluation inside one solve ---

func benchSpeculate(b *testing.B, speculate int) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Bimodal, Machines: 8, Jobs: 40, Bags: 10, Seed: 77,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SolveEPTAS(in, 0.4, WithSpeculation(speculate)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExS2SpeculationOff(b *testing.B) { benchSpeculate(b, 1) }
func BenchmarkExS2SpeculationOn(b *testing.B)  { benchSpeculate(b, 3) }

// --- EX-L6: pattern enumeration cost per eps ---

func benchPatternEnum(b *testing.B, eps float64) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Bimodal, Machines: 8, Jobs: 48, Bags: 10, Seed: 9,
	})
	ub, err := greedy.BagLPT(in)
	if err != nil {
		b.Fatal(err)
	}
	scaled, _ := round.ScaleRound(in, ub.Makespan(), eps)
	info, err := classify.Classify(scaled, eps, classify.Options{})
	if err != nil {
		b.Fatal(err)
	}
	tr := transform.Apply(scaled, info)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp, err := pattern.Enumerate(context.Background(), tr.Inst, tr.View, tr.Priority, pattern.Options{Limit: 2_000_000})
		if err != nil {
			b.Fatal(err)
		}
		_ = len(sp.Patterns)
	}
}

func BenchmarkExL6PatternEnum_Eps050(b *testing.B) { benchPatternEnum(b, 0.5) }
func BenchmarkExL6PatternEnum_Eps040(b *testing.B) { benchPatternEnum(b, 0.4) }

// --- EX-L8: bag-LPT primitive ---

func BenchmarkExL8BagLPT(b *testing.B) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.SmallHeavy, Machines: 64, Jobs: 2048, Bags: 64, Seed: 3,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		s, err := greedy.BagLPT(in)
		if err != nil {
			b.Fatal(err)
		}
		_ = s.Makespan()
	}
}

// --- EX-L7/L11: full pipeline with active transformation and repairs ---

func BenchmarkExL7PipelineWithRepairs(b *testing.B) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Skewed, Machines: 16, Jobs: 50, Bags: 25, Seed: 41,
	})
	ub, err := greedy.BagLPT(in)
	if err != nil {
		b.Fatal(err)
	}
	guess := ub.Makespan()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := core.RunPipeline(in, guess, core.Options{Eps: 0.5, BPrimeOverride: 2}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- EX-B1: algorithm comparison per family ---

func benchAlgo(b *testing.B, fam workload.Family, algo string) {
	in := workload.MustGenerate(workload.Spec{
		Family: fam, Machines: 8, Jobs: 40, Bags: 10, Seed: 200,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		var err error
		switch algo {
		case "eptas":
			_, err = SolveEPTAS(in, 0.5, WithSpeculation(1))
		case "baglpt":
			_, err = SolveBagLPT(in)
		case "greedy":
			_, err = SolveGreedy(in)
		}
		if err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExB1Uniform_EPTAS(b *testing.B)    { benchAlgo(b, workload.Uniform, "eptas") }
func BenchmarkExB1Uniform_BagLPT(b *testing.B)   { benchAlgo(b, workload.Uniform, "baglpt") }
func BenchmarkExB1Bimodal_EPTAS(b *testing.B)    { benchAlgo(b, workload.Bimodal, "eptas") }
func BenchmarkExB1Bimodal_BagLPT(b *testing.B)   { benchAlgo(b, workload.Bimodal, "baglpt") }
func BenchmarkExB1SmallHeavy_EPTAS(b *testing.B) { benchAlgo(b, workload.SmallHeavy, "eptas") }
func BenchmarkExB1Geometric_Greedy(b *testing.B) { benchAlgo(b, workload.Geometric, "greedy") }

// --- EX-A1: MILP mode ablation ---

func benchMode(b *testing.B, mode MILPMode) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Bimodal, Machines: 4, Jobs: 16, Bags: 5, Seed: 300,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SolveEPTAS(in, 0.5, WithMode(mode), WithMILPNodes(4000), WithSpeculation(1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExA1ModeDecomposed(b *testing.B) { benchMode(b, ModeDecomposed) }
func BenchmarkExA1ModePaper(b *testing.B)      { benchMode(b, ModePaper) }

// --- EX-A2: rounding-heuristic ablation ---

func benchRounding(b *testing.B, disable bool) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Uniform, Machines: 7, Jobs: 35, Bags: 12, Seed: 401,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := core.Solve(in, core.Options{
			Eps:       0.5,
			MILP:      milp.Options{DisableRounding: disable},
			Speculate: 1,
		})
		if err != nil {
			b.Fatal(err)
		}
		_ = res.Makespan
	}
}

func BenchmarkExA2RoundingOn(b *testing.B)  { benchRounding(b, false) }
func BenchmarkExA2RoundingOff(b *testing.B) { benchRounding(b, true) }

// --- substrate micro-benchmarks ---

func BenchmarkLPSolveDense(b *testing.B) {
	// A 30x60 LP with a transportation-like structure.
	build := func() *lp.Problem {
		p := lp.NewProblem()
		const rows, cols = 15, 60
		for v := 0; v < cols; v++ {
			p.AddVar(float64(v%7) - 3)
		}
		for r := 0; r < rows; r++ {
			var terms []lp.Term
			for v := r; v < cols; v += rows {
				terms = append(terms, lp.Term{Var: v, Coef: 1 + float64((r+v)%3)})
			}
			p.AddConstraint(terms, lp.LE, float64(10+r))
		}
		for v := 0; v < cols; v++ {
			p.AddConstraint([]lp.Term{{Var: v, Coef: 1}}, lp.LE, 4)
		}
		return p
	}
	prob := build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := prob.Solve(lp.Options{})
		if err != nil || res.Status != lp.StatusOptimal {
			b.Fatalf("status %v err %v", res.Status, err)
		}
	}
}

func BenchmarkMILPKnapsack(b *testing.B) {
	build := func() *milp.Model {
		p := lp.NewProblem()
		n := 12
		ints := make([]int, n)
		var terms []lp.Term
		for i := 0; i < n; i++ {
			p.AddVar(-float64(1 + i%5))
			ints[i] = i
			terms = append(terms, lp.Term{Var: i, Coef: float64(1 + i%4)})
			p.AddConstraint([]lp.Term{{Var: i, Coef: 1}}, lp.LE, 1)
		}
		p.AddConstraint(terms, lp.LE, 9)
		return &milp.Model{Prob: p, Integer: ints}
	}
	m := build()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := milp.Solve(context.Background(), m, milp.Options{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMaxFlowDinic(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		// Layered graph: 2+3*40 nodes.
		const layers, width = 3, 40
		g := flow.NewGraph(2 + layers*width)
		node := func(l, w int) int { return 2 + l*width + w }
		for w := 0; w < width; w++ {
			g.AddEdge(0, node(0, w), 3)
			g.AddEdge(node(layers-1, w), 1, 3)
		}
		for l := 0; l+1 < layers; l++ {
			for w := 0; w < width; w++ {
				g.AddEdge(node(l, w), node(l+1, w), 2)
				g.AddEdge(node(l, w), node(l+1, (w+1)%width), 2)
			}
		}
		if _, err := g.MaxFlow(0, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkExactSolverN12(b *testing.B) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Uniform, Machines: 3, Jobs: 12, Bags: 4, Seed: 1,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := baselines.Exact(in, baselines.ExactOptions{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTransformApplyLift(b *testing.B) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Uniform, Machines: 16, Jobs: 64, Bags: 32, Seed: 2,
	})
	ub, err := greedy.BagLPT(in)
	if err != nil {
		b.Fatal(err)
	}
	scaled, _ := round.ScaleRound(in, ub.Makespan(), 0.5)
	info, err := classify.Classify(scaled, 0.5, classify.Options{BPrimeOverride: 2})
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr := transform.Apply(scaled, info)
		sPrime, err := greedy.BagLPT(tr.Inst)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := tr.Lift(sPrime); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkWorkloadGenerate(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		for _, fam := range workload.Families() {
			workload.MustGenerate(workload.Spec{
				Family: fam, Machines: 16, Jobs: 128, Bags: 32, Seed: int64(i),
			})
		}
	}
}

func BenchmarkScheduleConflictScan(b *testing.B) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Uniform, Machines: 32, Jobs: 1024, Bags: 64, Seed: 4,
	})
	s, err := greedy.BagLPT(in)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if cs := s.Conflicts(); len(cs) != 0 {
			b.Fatal("unexpected conflicts")
		}
	}
}

// sanity check that the benchmark instances are as described.
func TestBenchmarkInstancesFeasible(t *testing.T) {
	specs := []workload.Spec{
		{Family: workload.Adversarial, Machines: 8},
		{Family: workload.Bimodal, Machines: 3, Jobs: 11, Bags: 4, Seed: 100},
		{Family: workload.Skewed, Machines: 16, Jobs: 50, Bags: 25, Seed: 41},
	}
	for _, spec := range specs {
		in := workload.MustGenerate(spec)
		if err := in.Feasible(); err != nil {
			t.Errorf("%s: %v", spec.Name(), err)
		}
	}
}

// --- Oracle backends: one IP-oracle solve per engine ---
//
// All three decide the identical feasible configuration program: the
// committed few-patterns fixture (testdata/fewpatterns_m12_n32.json —
// 12 machines, 32 jobs of two distinct sizes in 4 bags, a small pattern
// space) at its accepted bag-LPT guess, under the pipeline's default
// limits. This is the oracle seam in isolation, the stage the backends
// actually compete on. Tracked by cmd/benchjson: cfgdp should win here,
// and the portfolio must stay close to the best single backend (its
// loser aborts on the race clock at simplex-pivot granularity).

// benchOracleModel builds the few-patterns configuration program once,
// as the pipeline would at the bag-LPT guess.
func benchOracleModel(b *testing.B) *cfgmilp.Built {
	return benchOracleModelFrom(b, "testdata/fewpatterns_m12_n32.json")
}

// benchOracleModelFrom builds the configuration program of a committed
// fixture at its accepted bag-LPT guess, as the pipeline would.
func benchOracleModelFrom(b *testing.B, path string) *cfgmilp.Built {
	b.Helper()
	f, err := os.Open(path)
	if err != nil {
		b.Fatal(err)
	}
	in, err := sched.ReadInstance(f)
	f.Close()
	if err != nil {
		b.Fatal(err)
	}
	ub, err := greedy.BagLPT(in)
	if err != nil {
		b.Fatal(err)
	}
	pr, err := core.RunPipeline(in, ub.Makespan(), core.Options{Eps: 0.5})
	if err != nil {
		b.Fatal(err)
	}
	built, err := cfgmilp.Build(context.Background(), pr.Transformed.Inst, pr.Transformed.View,
		pr.Transformed.Priority, pr.Space, cfgmilp.BuildOptions{})
	if err != nil {
		b.Fatal(err)
	}
	return built
}

func benchOracleBackend(b *testing.B, kind oracle.Kind) {
	built := benchOracleModel(b)
	backend := oracle.For(oracle.Selection{Backend: kind})
	lim := oracle.Limits{MILP: milp.Options{MaxNodes: 500, StopAtFirst: true}}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, _, err := backend.Solve(ctx, built, lim)
		if err != nil {
			b.Fatal(err)
		}
		_ = plan
	}
}

func BenchmarkOracleBnB(b *testing.B)       { benchOracleBackend(b, oracle.KindBnB) }
func BenchmarkOracleCfgDP(b *testing.B)     { benchOracleBackend(b, oracle.KindCfgDP) }
func BenchmarkOraclePortfolio(b *testing.B) { benchOracleBackend(b, oracle.KindPortfolio) }

// --- Parallel oracle: intra-solve worker lanes on the large corpus ---
//
// The BenchmarkOracleParallel family is the scaling curve of the
// speculative worker lanes (internal/milp parallel.go, internal/oracle
// cfgdp_parallel.go) on the large-instance fixture class. The lane count
// follows GOMAXPROCS, so
//
//	go test -bench BenchmarkOracleParallel -cpu 1,2,4,8
//
// sweeps workers 1, 2, 4 and 8 — the -N suffix on each benchmark line is
// the lane count, and cmd/benchjson records it in the result identity.
// The -cpu 1 leg runs the exact sequential code path (workers<=1 never
// touches the speculation machinery), so the curve's first point doubles
// as the no-regression baseline. Results are bit-identical at every
// point on the curve (TestOracleWorkersDifferentialCorpus); only the
// wall clock may move. On a single-core machine the curve is flat to
// slightly negative — speculative lanes can only trade spare cores for
// latency.

// benchOracleParallel solves one prebuilt configuration program with as
// many worker lanes as GOMAXPROCS allows.
func benchOracleParallel(b *testing.B, path string, kind oracle.Kind) {
	built := benchOracleModelFrom(b, path)
	backend := oracle.For(oracle.Selection{Backend: kind})
	lim := oracle.Limits{
		MILP:    milp.Options{MaxNodes: 500, StopAtFirst: true, TimeLimit: 10 * time.Minute},
		Workers: runtime.GOMAXPROCS(0),
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		plan, _, err := backend.Solve(ctx, built, lim)
		if err != nil {
			b.Fatal(err)
		}
		_ = plan
	}
}

// BenchmarkOracleParallelBnBLarge is the headline scaling benchmark: the
// m=256 bimodal fixture's configuration program has 466 patterns, so
// every simplex solve in the branch-and-bound is expensive and the
// speculative sibling-LP lanes have real work to steal.
func BenchmarkOracleParallelBnBLarge(b *testing.B) {
	benchOracleParallel(b, "testdata/large_bimodal_m256_n384.json", oracle.KindBnB)
}

// BenchmarkOracleParallelCfgDPLarge sweeps the same program through the
// configuration DP's speculative root-subtree lanes.
func BenchmarkOracleParallelCfgDPLarge(b *testing.B) {
	benchOracleParallel(b, "testdata/large_bimodal_m256_n384.json", oracle.KindCfgDP)
}

// BenchmarkOracleParallelSolveLarge is the end-to-end view: a full EPTAS
// solve of the large bimodal fixture with the per-solve worker knob set
// from GOMAXPROCS, amortizing the oracle speedup over the sequential
// pipeline stages around it.
func BenchmarkOracleParallelSolveLarge(b *testing.B) {
	f, err := os.Open("testdata/large_bimodal_m256_n384.json")
	if err != nil {
		b.Fatal(err)
	}
	in, err := sched.ReadInstance(f)
	f.Close()
	if err != nil {
		b.Fatal(err)
	}
	workers := runtime.GOMAXPROCS(0)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveEPTAS(in, 0.5, WithOracleWorkers(workers), WithSpeculation(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Problem families: one full solve per sibling family ---
//
// Tracked by cmd/benchjson. BenchmarkFamilyRelated runs the
// speed-scaled pipeline end-to-end on the committed relatedfew fixture;
// BenchmarkFamilyIdentical runs the same engine on a bag-free workload
// through the identical family (the singleton-bag degenerate). Compare
// against BenchmarkExT1Quality_Eps050 to see what the family seam
// itself costs the bags path: nothing — bags solves are bit-identical
// to pre-seam (TestFamilyBagsBitIdentical).

func BenchmarkFamilyRelated(b *testing.B) {
	f, err := os.Open("testdata/related_few_m6_n20.json")
	if err != nil {
		b.Fatal(err)
	}
	in, err := sched.ReadInstance(f)
	f.Close()
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := SolveEPTAS(in, 0.5, WithFamily(FamilyRelated), WithSpeculation(1)); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkFamilyIdentical(b *testing.B) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Bimodal, Machines: 3, Jobs: 11, Bags: 4, Seed: 100,
	})
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := SolveEPTAS(in, 0.5, WithFamily(FamilyIdentical), WithSpeculation(1)); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Codec benchmarks: the shippable memo tier and the wire documents ---

// benchSnapshotCache populates one shared cache with cold solves of a
// few committed fixtures — the donor a replica would snapshot on
// shutdown.
func benchSnapshotCache(b *testing.B) *Cache {
	b.Helper()
	cache := NewCache(64 << 20)
	for _, name := range []string{
		"testdata/adversarial_m8_n24.json",
		"testdata/bimodal_m6_n24.json",
		"testdata/fewpatterns_m12_n32.json",
	} {
		f, err := os.Open(name)
		if err != nil {
			b.Fatal(err)
		}
		in, err := sched.ReadInstance(f)
		f.Close()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := SolveEPTAS(in, 0.5, WithSharedCache(cache)); err != nil {
			b.Fatal(err)
		}
	}
	return cache
}

func BenchmarkCodecSnapshotExport(b *testing.B) {
	cache := benchSnapshotCache(b)
	var buf bytes.Buffer
	if _, err := ExportCacheSnapshot(cache, &buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ExportCacheSnapshot(cache, io.Discard); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecSnapshotImport(b *testing.B) {
	cache := benchSnapshotCache(b)
	var buf bytes.Buffer
	if _, err := ExportCacheSnapshot(cache, &buf); err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(buf.Len()))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fresh := NewCache(64 << 20)
		if _, err := ImportCacheSnapshot(fresh, bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCodecWireDecodeSolveRequest(b *testing.B) {
	f, err := os.Open("testdata/adversarial_m8_n24.json")
	if err != nil {
		b.Fatal(err)
	}
	in, err := sched.ReadInstance(f)
	f.Close()
	if err != nil {
		b.Fatal(err)
	}
	body, err := json.Marshal(wire.SolveRequest{Instance: in, SolveSpec: wire.SolveSpec{Eps: 0.5, Family: "bags"}})
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(body)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var req wire.SolveRequest
		if err := wire.Unmarshal(body, &req); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Incremental re-solve: churn-trace replay ---
//
// The Resolve benchmarks replay the committed churn traces
// (testdata/churn_*.json, pinned by TestFixtureShapes). The warm pair
// measures a full trace replay through ResolveEPTAS — seeded binary
// search plus cross-guess memo reuse chained step to step — while
// FromScratch replays the same low-churn trace through cold SolveEPTAS
// calls on each post-delta instance, the baseline the warm path is
// contractually bit-identical to (see resolve_diff_test.go).

// benchTrace loads a committed churn trace and precomputes the prior
// solve of the base plus every post-delta instance, so the timed loops
// measure only the replay.
func benchTrace(b *testing.B, name string) (*Result, []sched.Delta, []*Instance) {
	b.Helper()
	f, err := os.Open("testdata/" + name)
	if err != nil {
		b.Fatal(err)
	}
	tr, err := sched.ReadTrace(f)
	f.Close()
	if err != nil {
		b.Fatal(err)
	}
	prior, err := SolveEPTAS(tr.Base, 0.5)
	if err != nil {
		b.Fatal(err)
	}
	posts := make([]*Instance, len(tr.Steps))
	cur := tr.Base
	for i, d := range tr.Steps {
		post, _, err := d.Apply(cur)
		if err != nil {
			b.Fatal(err)
		}
		posts[i], cur = post, post
	}
	return prior, tr.Steps, posts
}

func benchResolveReplay(b *testing.B, name string) {
	base, steps, _ := benchTrace(b, name)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		prior := base
		for _, d := range steps {
			res, err := ResolveEPTAS(prior, d)
			if err != nil {
				b.Fatal(err)
			}
			prior = res
		}
	}
}

func BenchmarkResolveLowChurn(b *testing.B) {
	benchResolveReplay(b, "churn_low_m6_n24.json")
}

func BenchmarkResolveHighChurn(b *testing.B) {
	benchResolveReplay(b, "churn_high_m8_n24.json")
}

func BenchmarkResolveFromScratch(b *testing.B) {
	_, _, posts := benchTrace(b, "churn_low_m6_n24.json")
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, post := range posts {
			if _, err := SolveEPTAS(post, 0.5); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Adaptive solving: admission-time planner overhead ---
//
// BenchmarkPlannerDecision measures one plan.Decide call against a
// trained cost model — the per-request overhead every adaptive solve
// pays at admission, which the SLO replay reports as "planner p50".

func BenchmarkPlannerDecision(b *testing.B) {
	m := NewPlanModel()
	for _, o := range []struct {
		eps float64
		d   time.Duration
	}{
		{0.1, 800 * time.Millisecond},
		{0.2, 200 * time.Millisecond},
		{0.3, 80 * time.Millisecond},
		{0.5, 20 * time.Millisecond},
		{0.9, 5 * time.Millisecond},
	} {
		m.Observe(plan.Key{Family: "bags", Size: plan.SizeClass(24), Rung: plan.RungEPTAS,
			EpsIdx: plan.EpsIndex(o.eps), Backend: "bnb", Workers: 1}, o.d)
	}
	m.Observe(plan.Key{Family: "bags", Size: plan.SizeClass(24), Rung: plan.RungLPT}, 300*time.Microsecond)
	req := plan.Request{Family: "bags", Jobs: 24, Machines: 8, Eps: 0.1,
		Backend: "bnb", Workers: 1, Budget: 150 * time.Millisecond}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Decide(req); err != nil {
			b.Fatal(err)
		}
	}
}
