// Package plan closes the serving layer's quality/latency loop: an
// online cost model that learns (family, instance-size bucket, eps,
// backend, workers) → latency from observed solves, and an
// admission-time planner that, given a deadline and a quality floor,
// picks the cheapest configuration predicted to finish in budget —
// walking the degradation ladder from the requested eps through coarser
// eps rungs down to the constant-factor heuristics, and refusing
// (ErrUnattainable) when even the floor cannot be met.
//
// The planner is deterministic given a frozen model: Decide reads only
// the model's cells and the request, never the clock or a random
// source, and reports the model version its decision was keyed by.
// Observing never changes an already-returned result, so running with a
// model attached is bit-identical to running without one whenever
// adaptive mode is off — the plan-diff gate enforces exactly that.
package plan

import (
	"errors"
	"fmt"
	"sync"
	"time"
)

// ErrUnattainable is the planner's hard refusal: no ladder rung meets
// both the quality floor and the deadline. Serving layers map it to a
// 422-style "unattainable" response. Errors returned by Decide wrap it;
// test with errors.Is.
var ErrUnattainable = errors.New("plan: unattainable")

// maxSizeRelax bounds how far Predict walks neighboring size buckets
// when the exact bucket has no observations.
const maxSizeRelax = 6

// headroom scales a budget before comparing predictions against it:
// a rung "fits" when its predicted latency is at most 4/5 of the
// deadline, leaving slack for planner overhead, queueing and variance.
func headroom(budget time.Duration) time.Duration { return budget / 5 * 4 }

// Key identifies one cost-model cell.
type Key struct {
	// Family is the problem-family name ("bags", "identical", "related").
	Family string `json:"family"`
	// Size is the SizeClass bucket of the instance's job count.
	Size int `json:"size"`
	// Rung is the executed rung name (RungEPTAS or a heuristic).
	Rung string `json:"rung"`
	// EpsIdx is the EpsGrid bucket of an eptas rung; -1 for heuristics.
	EpsIdx int `json:"eps_idx"`
	// Backend is the requested oracle backend name; "" for heuristics.
	Backend string `json:"backend"`
	// Workers is the oracle lane count (sequential solves use 1).
	Workers int `json:"workers"`
}

// cell is one learned latency estimate: an exponentially weighted
// moving average in microseconds plus the observation count.
type cell struct {
	meanUS float64
	count  uint64
}

// ewmaAlpha is the weight of a new observation; 1/4 adapts within a few
// requests without letting one outlier dominate.
const ewmaAlpha = 0.25

// Model is the online cost model. The zero value is not usable; call
// NewModel. All methods are safe for concurrent use.
type Model struct {
	mu           sync.RWMutex
	cells        map[Key]*cell
	version      uint64
	observations uint64
}

// NewModel returns an empty cost model. A cold model predicts nothing,
// so the planner optimistically keeps the requested configuration —
// exactly the fixed-eps behavior — until observations arrive.
func NewModel() *Model {
	return &Model{cells: make(map[Key]*cell)}
}

// Normalize canonicalizes a key: empty family means bags, worker counts
// below 1 mean sequential, heuristic rungs drop eps and backend.
func (k Key) Normalize() Key {
	if k.Family == "" {
		k.Family = "bags"
	}
	if k.Workers < 1 {
		k.Workers = 1
	}
	if k.Rung != RungEPTAS {
		k.EpsIdx, k.Backend = -1, ""
	}
	return k
}

// Observe folds one measured solve latency into the model. Call it only
// for solves that ran to completion — a latency truncated by a deadline
// or cancellation would poison the estimate low.
func (m *Model) Observe(k Key, d time.Duration) {
	if d < 0 {
		return
	}
	k = k.Normalize()
	us := float64(d.Microseconds())
	m.mu.Lock()
	defer m.mu.Unlock()
	c := m.cells[k]
	if c == nil {
		c = &cell{meanUS: us}
		m.cells[k] = c
	} else {
		c.meanUS += ewmaAlpha * (us - c.meanUS)
	}
	c.count++
	m.version++
	m.observations++
}

// Predict returns the model's latency estimate for a key. When the
// exact cell has no observations it relaxes deterministically: first
// across neighboring size buckets (nearer first, larger before smaller)
// at the key's own eps bucket, then — for eptas keys — borrowing from
// strictly finer (more expensive) eps buckets. Borrowing only ever
// overestimates, so relaxation never talks the planner into a rung the
// model hasn't earned evidence for. ok is false when nothing relevant
// has been observed — callers treat an unknown configuration
// optimistically so a cold model changes nothing.
func (m *Model) Predict(k Key) (time.Duration, bool) {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return m.predictLocked(k.Normalize())
}

func (m *Model) predictLocked(k Key) (time.Duration, bool) {
	for pass := 0; pass < 2; pass++ {
		for d := 0; d <= maxSizeRelax; d++ {
			for i, size := range [2]int{k.Size + d, k.Size - d} {
				if size < 0 || (d == 0 && i == 1) {
					continue
				}
				probe := k
				probe.Size = size
				if pass == 0 {
					if c := m.cells[probe]; c != nil {
						return time.Duration(c.meanUS) * time.Microsecond, true
					}
					continue
				}
				if k.Rung != RungEPTAS {
					continue
				}
				for idx := k.EpsIdx - 1; idx >= 0; idx-- {
					probe.EpsIdx = idx
					if c := m.cells[probe]; c != nil {
						return time.Duration(c.meanUS) * time.Microsecond, true
					}
				}
			}
		}
	}
	return 0, false
}

// Stats is a point-in-time summary of the model.
type Stats struct {
	// Cells is the number of distinct learned configurations.
	Cells int
	// Version counts observations folded in since the model was built
	// or imported; Decide stamps it on every decision.
	Version uint64
	// Observations is the total Observe calls absorbed.
	Observations uint64
}

// Snapshot returns the model's current summary.
func (m *Model) Snapshot() Stats {
	m.mu.RLock()
	defer m.mu.RUnlock()
	return Stats{Cells: len(m.cells), Version: m.version, Observations: m.observations}
}

// Request is one admission-time planning question.
type Request struct {
	// Family is the problem-family name; empty means bags.
	Family string
	// Jobs and Machines size the instance.
	Jobs, Machines int
	// Eps is the requested accuracy; the ladder starts there.
	Eps float64
	// Backend pins the oracle backend when non-empty; when empty the
	// planner chooses among Candidates (falling back to the model's
	// default when that is empty too).
	Backend string
	// Candidates are the backend names the planner may choose among for
	// eptas rungs when Backend is empty, in deterministic preference
	// order (ties and unknowns resolve to the first).
	Candidates []string
	// Workers is the oracle lane count the solve will run with.
	Workers int
	// Budget is the latency budget; 0 means no deadline (the requested
	// rung always fits).
	Budget time.Duration
	// MinQuality is the quality floor: the worst acceptable
	// approximation bound. 0 means no floor. Rungs whose bound exceeds
	// it are never chosen; a floor below 1 is rejected by callers.
	MinQuality float64
}

// Decision is the planner's answer.
type Decision struct {
	// Rung is the chosen ladder rung (its Bound is the reported
	// guarantee).
	Rung Rung
	// Backend is the chosen oracle backend for eptas rungs ("" when the
	// rung is a heuristic or no candidate was given).
	Backend string
	// Predicted is the model's latency estimate for the choice; Known
	// is false when the model had no relevant observation (the planner
	// then chose optimistically).
	Predicted time.Duration
	Known     bool
	// ModelVersion is the model version the decision was keyed by —
	// decisions are a pure function of (request, model version).
	ModelVersion uint64
	// Degraded reports that the chosen rung is not the requested one.
	Degraded bool
	// BestEffort reports that no rung was predicted to fit the budget
	// and — because no quality floor demanded a refusal — the planner
	// answered with the cheapest-predicted rung anyway.
	BestEffort bool
}

// Decide walks the degradation ladder front to back and returns the
// first rung — with its cheapest predicted backend — that satisfies the
// quality floor and is predicted to finish within the budget's
// headroom. Unknown configurations are treated as fitting (a cold model
// must not change behavior); pinned backends are never second-guessed.
// When no rung fits and a quality floor is set, the deadline and the
// floor are jointly unsatisfiable and Decide fails with
// ErrUnattainable — the hard 422-style refusal. Without a floor there
// is nothing to refuse on behalf of, so Decide answers best-effort: the
// cheapest-predicted rung, flagged Decision.BestEffort. Decide never
// runs anything — it only picks.
func (m *Model) Decide(req Request) (Decision, error) {
	if req.Workers < 1 {
		req.Workers = 1
	}
	rungs := Ladder(req.Family, req.Machines, req.Eps)
	size := SizeClass(req.Jobs)
	fit := headroom(req.Budget)

	m.mu.RLock()
	defer m.mu.RUnlock()
	version := m.version
	sawFeasible := false
	best := Decision{ModelVersion: version}
	bestIdx := -1
	for i, r := range rungs {
		if req.MinQuality > 0 && r.Bound > req.MinQuality {
			continue
		}
		sawFeasible = true
		var (
			backend string
			pred    time.Duration
			known   bool
		)
		if r.Heuristic() {
			pred, known = m.predictLocked(Key{Family: req.Family, Size: size, Rung: r.Name}.Normalize())
		} else {
			backend, pred, known = m.bestBackendLocked(req, size, r)
		}
		if req.Budget > 0 && known && pred > fit {
			if bestIdx < 0 || pred < best.Predicted {
				best = Decision{Rung: r, Backend: backend, Predicted: pred, Known: true,
					ModelVersion: version, Degraded: i > 0, BestEffort: true}
				bestIdx = i
			}
			continue
		}
		return Decision{
			Rung:         r,
			Backend:      backend,
			Predicted:    pred,
			Known:        known,
			ModelVersion: version,
			Degraded:     i > 0,
		}, nil
	}
	if !sawFeasible {
		return Decision{}, fmt.Errorf("%w: quality floor %g excludes every rung of the ladder (finest available bound %g)",
			ErrUnattainable, req.MinQuality, 1+req.Eps)
	}
	if req.MinQuality > 0 {
		return Decision{}, fmt.Errorf("%w: no configuration meeting quality floor %g is predicted to finish within %s",
			ErrUnattainable, req.MinQuality, req.Budget)
	}
	return best, nil
}

// bestBackendLocked picks the backend for one eptas rung: the pinned
// one when the request names it, otherwise the candidate with the
// lowest observed prediction (evidence beats optimism for backend
// choice — an unobserved backend is only picked when nothing has been
// observed at all, in which case the first candidate wins).
func (m *Model) bestBackendLocked(req Request, size int, r Rung) (string, time.Duration, bool) {
	key := Key{Family: req.Family, Size: size, Rung: RungEPTAS,
		EpsIdx: EpsIndex(r.Eps), Workers: req.Workers}.Normalize()
	if req.Backend != "" {
		key.Backend = req.Backend
		pred, known := m.predictLocked(key)
		return req.Backend, pred, known
	}
	if len(req.Candidates) == 0 {
		pred, known := m.predictLocked(key)
		return "", pred, known
	}
	best, bestPred, bestKnown := req.Candidates[0], time.Duration(0), false
	for _, cand := range req.Candidates {
		key.Backend = cand
		pred, known := m.predictLocked(key)
		if known && (!bestKnown || pred < bestPred) {
			best, bestPred, bestKnown = cand, pred, true
		}
	}
	if !bestKnown {
		key.Backend = best
		pred, known := m.predictLocked(key)
		return best, pred, known
	}
	return best, bestPred, true
}
