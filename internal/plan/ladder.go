// The degradation ladder: the ordered menu of configurations the
// planner may answer a request with, from the requested accuracy through
// coarser eps rungs down to the constant-factor heuristics, each rung
// carrying the worst-case approximation bound it guarantees.
package plan

import "math/bits"

// Rung names. RungEPTAS covers every eps rung (the Eps field
// disambiguates); the heuristic rungs name which baseline answered.
// RungRepair is not a ladder rung the planner picks — it labels the
// placement-repair fast path of an incremental re-solve, whose explicit
// (1+eps)·lb certificate matches the eptas bound.
const (
	// RungEPTAS is a full dual-approximation search at some eps;
	// bound 1+eps.
	RungEPTAS = "eptas"
	// RungLPT is the family's LPT fallback: bag-LPT for the bags and
	// identical families (paper Lemma 8), speed-scaled LPT for related.
	RungLPT = "baglpt"
	// RungGreedy is the input-order list schedule of
	// internal/baselines.Greedy.
	RungGreedy = "greedy"
	// RungRepair labels a placement-repaired re-solve (never planned).
	RungRepair = "repair"
)

// Rung is one step of the degradation ladder.
type Rung struct {
	// Name is RungEPTAS or a heuristic rung name.
	Name string
	// Eps is the accuracy parameter of an eptas rung; 0 for heuristics.
	Eps float64
	// Bound is the worst-case approximation ratio the rung guarantees
	// for the family the ladder was built for.
	Bound float64
}

// Heuristic reports whether the rung answers without running the EPTAS.
func (r Rung) Heuristic() bool { return r.Name != RungEPTAS }

// EpsGrid is the fixed menu of coarser accuracies the ladder degrades
// through, finest first. It doubles as the cost model's eps bucketing:
// observations index into this grid (nearest value), so latencies
// learned at one requested eps inform predictions for nearby ones.
var EpsGrid = []float64{0.05, 0.10, 0.15, 0.20, 0.30, 0.40, 0.50, 0.65, 0.80, 0.90}

// EpsIndex maps an eps to its nearest EpsGrid bucket (ties toward the
// coarser value). Purely a model-bucketing concern: the solver always
// runs the exact eps of the rung, never the bucket value.
func EpsIndex(eps float64) int {
	best, bestDist := 0, -1.0
	for i, g := range EpsGrid {
		d := g - eps
		if d < 0 {
			d = -d
		}
		if bestDist < 0 || d < bestDist || (d == bestDist && g > EpsGrid[best]) {
			best, bestDist = i, d
		}
	}
	return best
}

// SizeClass buckets a job count for the cost model: the bit length of
// n, so bucket k covers [2^(k-1), 2^k). Solve latency is dominated by
// instance size at fixed (family, eps, backend); power-of-two buckets
// keep the model small while separating the corpus's n=16 fixtures from
// its n=384 ones.
func SizeClass(jobs int) int {
	if jobs < 0 {
		jobs = 0
	}
	return bits.Len(uint(jobs))
}

// HeuristicBound is the approximation bound the named heuristic rung
// guarantees for a family, as documented in the README bound table:
//
//	family    baglpt              greedy
//	bags      2   (Lemma 8)       max(2, m)  (area bound: Cmax ≤ Σp ≤ m·lb)
//	identical 4/3 (Graham LPT)    2          (Graham list scheduling)
//	related   2   (uniform LPT)   —          (no defensible bound; excluded)
//
// Unknown rung/family pairs report 0 (no guarantee).
func HeuristicBound(familyName string, machines int, rung string) float64 {
	if familyName == "" {
		familyName = "bags"
	}
	switch rung {
	case RungLPT:
		if familyName == "identical" {
			return 4.0 / 3.0
		}
		return 2
	case RungGreedy:
		switch familyName {
		case "identical":
			return 2
		case "bags":
			if machines < 2 {
				return 2
			}
			return float64(machines)
		}
	}
	return 0
}

// Ladder builds the degradation ladder for one request: the requested
// eps first (bound 1+eps), then every strictly coarser EpsGrid rung,
// then the family's heuristic rungs, cheapest-last. The planner walks
// it front to back and picks the first rung predicted to fit the
// budget, so order is the latency order and the walk is monotone: a
// tighter deadline can only move the choice later (coarser), never
// earlier (finer).
func Ladder(familyName string, machines int, eps float64) []Rung {
	if familyName == "" {
		familyName = "bags"
	}
	rungs := []Rung{{Name: RungEPTAS, Eps: eps, Bound: 1 + eps}}
	for _, g := range EpsGrid {
		if g > eps*(1+1e-9) {
			rungs = append(rungs, Rung{Name: RungEPTAS, Eps: g, Bound: 1 + g})
		}
	}
	rungs = append(rungs, Rung{Name: RungLPT, Bound: HeuristicBound(familyName, machines, RungLPT)})
	if b := HeuristicBound(familyName, machines, RungGreedy); b > 0 {
		rungs = append(rungs, Rung{Name: RungGreedy, Bound: b})
	}
	return rungs
}
