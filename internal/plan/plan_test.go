package plan

import (
	"bytes"
	"errors"
	"math"
	"reflect"
	"testing"
	"time"
)

// frozen builds a model with a fixed set of observations and returns
// it; tests freeze it by simply not observing afterwards.
func frozen() *Model {
	m := NewModel()
	obs := []struct {
		eps     float64
		backend string
		d       time.Duration
	}{
		{0.1, "bnb", 800 * time.Millisecond},
		{0.2, "bnb", 200 * time.Millisecond},
		{0.3, "bnb", 80 * time.Millisecond},
		{0.5, "bnb", 20 * time.Millisecond},
		{0.9, "bnb", 5 * time.Millisecond},
		{0.5, "cfgdp", 60 * time.Millisecond},
	}
	for _, o := range obs {
		m.Observe(Key{Family: "bags", Size: SizeClass(24), Rung: RungEPTAS,
			EpsIdx: EpsIndex(o.eps), Backend: o.backend, Workers: 1}, o.d)
	}
	m.Observe(Key{Family: "bags", Size: SizeClass(24), Rung: RungLPT}, 300*time.Microsecond)
	m.Observe(Key{Family: "bags", Size: SizeClass(24), Rung: RungGreedy}, 100*time.Microsecond)
	return m
}

func baseReq(budget time.Duration) Request {
	return Request{Family: "bags", Jobs: 24, Machines: 8, Eps: 0.1,
		Backend: "bnb", Workers: 1, Budget: budget}
}

func TestLadderShape(t *testing.T) {
	rungs := Ladder("bags", 8, 0.3)
	if rungs[0].Name != RungEPTAS || rungs[0].Eps != 0.3 || rungs[0].Bound != 1.3 {
		t.Fatalf("first rung must be the requested eps: %+v", rungs[0])
	}
	for i, r := range rungs[1:] {
		prev := rungs[i]
		if r.Name == RungEPTAS && prev.Name == RungEPTAS && r.Eps <= prev.Eps {
			t.Fatalf("eps rungs must coarsen monotonically: %+v", rungs)
		}
	}
	last := rungs[len(rungs)-1]
	if last.Name != RungGreedy || last.Bound != 8 {
		t.Fatalf("bags ladder must end at greedy with the area bound m: %+v", last)
	}
	if lpt := rungs[len(rungs)-2]; lpt.Name != RungLPT || lpt.Bound != 2 {
		t.Fatalf("bags baglpt rung must carry the Lemma 8 bound 2: %+v", lpt)
	}

	rel := Ladder("related", 8, 0.3)
	for _, r := range rel {
		if r.Name == RungGreedy {
			t.Fatalf("related ladder must exclude the greedy rung (no bound): %+v", rel)
		}
	}
	id := Ladder("identical", 8, 0.3)
	if lpt := id[len(id)-2]; lpt.Name != RungLPT || math.Abs(lpt.Bound-4.0/3.0) > 1e-12 {
		t.Fatalf("identical baglpt rung must carry the Graham LPT bound 4/3: %+v", lpt)
	}
}

func TestEpsIndexBuckets(t *testing.T) {
	for i, g := range EpsGrid {
		if got := EpsIndex(g); got != i {
			t.Fatalf("EpsIndex(%g) = %d, want %d", g, got, i)
		}
	}
	if EpsIndex(0.12) != EpsIndex(0.10) {
		t.Fatalf("0.12 must bucket with 0.10")
	}
	if EpsIndex(0.001) != 0 || EpsIndex(0.99) != len(EpsGrid)-1 {
		t.Fatalf("extremes must clamp to the grid ends")
	}
}

// TestDecideDeterministic: identical requests against a frozen model
// yield byte-identical decisions, and the decision is a pure function
// of the model version.
func TestDecideDeterministic(t *testing.T) {
	m := frozen()
	req := baseReq(150 * time.Millisecond)
	first, err := m.Decide(req)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		d, err := m.Decide(req)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(d, first) {
			t.Fatalf("decision %d diverged: %+v vs %+v", i, d, first)
		}
	}
	if first.ModelVersion != m.Snapshot().Version {
		t.Fatalf("decision must be stamped with the model version")
	}
}

// TestDecideMonotone: sweeping the deadline downward, the chosen eps
// never gets finer and heuristic choices never revert to eptas.
func TestDecideMonotone(t *testing.T) {
	m := frozen()
	prevEps := math.Inf(-1)
	sawHeuristic := false
	for budget := 2 * time.Second; budget >= time.Millisecond; budget -= time.Millisecond {
		d, err := m.Decide(baseReq(budget))
		if err != nil {
			t.Fatalf("budget %s: %v", budget, err)
		}
		if d.Rung.Heuristic() {
			sawHeuristic = true
			continue
		}
		if sawHeuristic {
			t.Fatalf("budget %s: reverted from heuristic to eptas", budget)
		}
		if d.Rung.Eps < prevEps {
			t.Fatalf("budget %s: eps got finer (%g after %g) as the deadline tightened",
				budget, d.Rung.Eps, prevEps)
		}
		prevEps = d.Rung.Eps
	}
	if !sawHeuristic {
		t.Fatalf("sweep never reached the heuristic rungs")
	}
}

// Table cases for the ladder walk against the frozen model.
func TestDecideTable(t *testing.T) {
	m := frozen()
	cases := []struct {
		name     string
		budget   time.Duration
		minQ     float64
		wantRung string
		wantEps  float64
		degraded bool
	}{
		{"generous keeps requested eps", 2 * time.Second, 0, RungEPTAS, 0.1, false},
		{"no deadline keeps requested eps", 0, 0, RungEPTAS, 0.1, false},
		{"mid budget degrades one rung", 300 * time.Millisecond, 0, RungEPTAS, 0.2, true},
		{"tight budget reaches coarse eps", 30 * time.Millisecond, 0, RungEPTAS, 0.5, true},
		{"very tight budget goes heuristic", 2 * time.Millisecond, 0, RungLPT, 0, true},
		{"floor stops at last eps rung", 8 * time.Millisecond, 1.95, RungEPTAS, 0.9, true},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			req := baseReq(tc.budget)
			req.MinQuality = tc.minQ
			d, err := m.Decide(req)
			if err != nil {
				t.Fatal(err)
			}
			if d.Rung.Name != tc.wantRung || d.Rung.Eps != tc.wantEps || d.Degraded != tc.degraded {
				t.Fatalf("got rung %q eps %g degraded %v, want %q %g %v",
					d.Rung.Name, d.Rung.Eps, d.Degraded, tc.wantRung, tc.wantEps, tc.degraded)
			}
		})
	}
}

func TestDecideUnattainable(t *testing.T) {
	m := frozen()

	// Floor below the requested bound and below every other rung.
	req := baseReq(0)
	req.MinQuality = 1.05
	if _, err := m.Decide(req); !errors.Is(err, ErrUnattainable) {
		t.Fatalf("floor 1.05 with eps 0.1 must be unattainable, got %v", err)
	}

	// Floor admits eps rungs only, but the deadline rules them all out.
	req = baseReq(time.Microsecond)
	req.MinQuality = 1.95
	if _, err := m.Decide(req); !errors.Is(err, ErrUnattainable) {
		t.Fatalf("1µs budget under an eps-only floor must be unattainable, got %v", err)
	}

	// Without a floor there is no refusal: an impossible deadline gets
	// the cheapest-predicted rung, flagged best-effort.
	req = baseReq(time.Microsecond)
	if d, err := m.Decide(req); err != nil || !d.Rung.Heuristic() || !d.BestEffort {
		t.Fatalf("floorless tight budget must answer best-effort with a heuristic, got %+v, %v", d, err)
	}
}

// A cold model must change nothing: the requested configuration wins.
func TestDecideColdModelKeepsRequest(t *testing.T) {
	m := NewModel()
	d, err := m.Decide(baseReq(1 * time.Millisecond))
	if err != nil {
		t.Fatal(err)
	}
	if d.Degraded || d.Rung.Name != RungEPTAS || d.Rung.Eps != 0.1 || d.Known {
		t.Fatalf("cold model must keep the requested rung optimistically: %+v", d)
	}
}

func TestDecideBackendChoice(t *testing.T) {
	m := frozen()
	req := baseReq(2 * time.Second)
	req.Eps = 0.5
	req.Backend = ""
	req.Candidates = []string{"cfgdp", "bnb"}
	d, err := m.Decide(req)
	if err != nil {
		t.Fatal(err)
	}
	if d.Backend != "bnb" {
		t.Fatalf("planner must pick the cheapest observed backend, got %q", d.Backend)
	}

	// With no observations for any candidate, the first candidate wins.
	cold := NewModel()
	d, err = cold.Decide(req)
	if err != nil {
		t.Fatal(err)
	}
	if d.Backend != "cfgdp" || d.Known {
		t.Fatalf("cold backend choice must be the first candidate, got %+v", d)
	}
}

func TestPredictSizeRelaxation(t *testing.T) {
	m := NewModel()
	k := Key{Family: "bags", Size: SizeClass(24), Rung: RungEPTAS,
		EpsIdx: EpsIndex(0.2), Backend: "bnb", Workers: 1}
	m.Observe(k, 40*time.Millisecond)

	near := k
	near.Size = SizeClass(40) // one bucket up
	if pred, ok := m.Predict(near); !ok || pred != 40*time.Millisecond {
		t.Fatalf("neighbor bucket must borrow the estimate: %v %v", pred, ok)
	}
	far := k
	far.Size = k.Size + maxSizeRelax + 1
	if _, ok := m.Predict(far); ok {
		t.Fatalf("buckets beyond the relaxation radius must stay unknown")
	}
}

func TestObserveEWMA(t *testing.T) {
	m := NewModel()
	k := Key{Family: "bags", Size: 5, Rung: RungEPTAS, EpsIdx: 2, Backend: "bnb", Workers: 1}
	m.Observe(k, 100*time.Millisecond)
	m.Observe(k, 200*time.Millisecond)
	pred, ok := m.Predict(k)
	if !ok {
		t.Fatal("observed key must predict")
	}
	want := 125 * time.Millisecond // 100 + 0.25*(200-100)
	if diff := pred - want; diff < -time.Millisecond || diff > time.Millisecond {
		t.Fatalf("EWMA got %v, want ~%v", pred, want)
	}
	if st := m.Snapshot(); st.Cells != 1 || st.Observations != 2 || st.Version != 2 {
		t.Fatalf("stats %+v", st)
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	m := frozen()
	var buf bytes.Buffer
	if err := m.Export(&buf); err != nil {
		t.Fatal(err)
	}
	first := buf.String()

	warm := NewModel()
	if err := warm.Import(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	// The warm model must decide exactly like the donor.
	for _, budget := range []time.Duration{0, 2 * time.Second, 300 * time.Millisecond, 2 * time.Millisecond} {
		a, errA := m.Decide(baseReq(budget))
		b, errB := warm.Decide(baseReq(budget))
		if (errA == nil) != (errB == nil) {
			t.Fatalf("budget %s: error mismatch %v vs %v", budget, errA, errB)
		}
		if errA == nil && (a.Rung != b.Rung || a.Backend != b.Backend) {
			t.Fatalf("budget %s: warm model diverged: %+v vs %+v", budget, a, b)
		}
	}

	// Stable export: re-exporting the donor yields the same bytes.
	var again bytes.Buffer
	if err := m.Export(&again); err != nil {
		t.Fatal(err)
	}
	if again.String() != first {
		t.Fatalf("export must be byte-stable")
	}

	// Live cells beat shipped ones on import.
	live := NewModel()
	k := Key{Family: "bags", Size: SizeClass(24), Rung: RungLPT}.Normalize()
	live.Observe(k, 42*time.Microsecond)
	if err := live.Import(bytes.NewReader(buf.Bytes())); err != nil {
		t.Fatal(err)
	}
	if pred, ok := live.Predict(k); !ok || pred != 42*time.Microsecond {
		t.Fatalf("import must not clobber live cells: %v %v", pred, ok)
	}

	if err := NewModel().Import(bytes.NewReader([]byte(`{"format":99,"cells":[]}`))); err == nil {
		t.Fatal("unknown snapshot format must be rejected")
	}
}

// BenchmarkPlannerDecision tracks the admission-time overhead of one
// planning decision against a warm model; it must stay far below 1% of
// a cold solve (cold corpus solves are milliseconds to seconds).
func BenchmarkPlannerDecision(b *testing.B) {
	m := frozen()
	req := baseReq(150 * time.Millisecond)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := m.Decide(req); err != nil {
			b.Fatal(err)
		}
	}
}
