// Cost-model snapshots: a versioned JSON document so a model can
// persist across restarts and ship to warm replicas alongside the memo
// snapshot (`bagsched serve -plan-snapshot`).
package plan

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// SnapshotFormat is the snapshot document version this package writes
// and the only one it reads.
const SnapshotFormat = 1

type snapshotDoc struct {
	Format       int        `json:"format"`
	Version      uint64     `json:"version"`
	Observations uint64     `json:"observations"`
	Cells        []snapCell `json:"cells"`
}

type snapCell struct {
	Key
	MeanUS float64 `json:"mean_us"`
	Count  uint64  `json:"count"`
}

// Export writes the model as a stable JSON snapshot: cells in sorted
// key order, so equal models export byte-identical documents.
func (m *Model) Export(w io.Writer) error {
	m.mu.RLock()
	doc := snapshotDoc{Format: SnapshotFormat, Version: m.version, Observations: m.observations}
	for k, c := range m.cells {
		doc.Cells = append(doc.Cells, snapCell{Key: k, MeanUS: c.meanUS, Count: c.count})
	}
	m.mu.RUnlock()
	sort.Slice(doc.Cells, func(i, j int) bool { return doc.Cells[i].less(doc.Cells[j].Key) })
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(doc); err != nil {
		return fmt.Errorf("plan: export: %w", err)
	}
	return nil
}

func (k Key) less(o Key) bool {
	switch {
	case k.Family != o.Family:
		return k.Family < o.Family
	case k.Size != o.Size:
		return k.Size < o.Size
	case k.Rung != o.Rung:
		return k.Rung < o.Rung
	case k.EpsIdx != o.EpsIdx:
		return k.EpsIdx < o.EpsIdx
	case k.Backend != o.Backend:
		return k.Backend < o.Backend
	default:
		return k.Workers < o.Workers
	}
}

// Import merges a snapshot into the model: cells the model has not
// observed yet are adopted verbatim, cells it has are kept (live
// observations beat shipped history). The model version advances so
// post-import decisions are distinguishable from pre-import ones.
func (m *Model) Import(r io.Reader) error {
	var doc snapshotDoc
	dec := json.NewDecoder(r)
	if err := dec.Decode(&doc); err != nil {
		return fmt.Errorf("plan: import: %w", err)
	}
	if doc.Format != SnapshotFormat {
		return fmt.Errorf("plan: import: unsupported snapshot format %d (want %d)", doc.Format, SnapshotFormat)
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, sc := range doc.Cells {
		if sc.Count == 0 {
			continue
		}
		k := sc.Key.Normalize()
		if _, exists := m.cells[k]; !exists {
			m.cells[k] = &cell{meanUS: sc.MeanUS, count: sc.Count}
			m.observations += sc.Count
		}
	}
	m.version++
	return nil
}
