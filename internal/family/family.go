// Package family defines the problem-family seam of the solver: the
// interface behind which everything specific to one load-balancing
// variant lives — instance validation, the combinatorial lower bound,
// the polynomial fallback heuristic, the instance preparation step that
// normalizes a family's constraints into the bag-constrained core
// representation, and the memo fingerprint that keeps the cross-request
// cache from sharing entries between families.
//
// The per-guess pipeline of internal/pipeline is family-generic: it
// scales and rounds, classifies, enumerates machine configurations,
// decides a configuration integer program through internal/oracle and
// places jobs. Which concrete stage implementations run is selected by
// the family's Shape; the stage logic itself lives next to the
// machinery it extends (classify.Related, pattern.EnumerateRelated,
// cfgmilp.BuildRelated, placer.PlaceRelated).
//
// Three families ship:
//
//   - Bags: machine scheduling with bag-constraints on identical
//     machines (P | bags | Cmax), the Grage–Jansen–Klein EPTAS this
//     repository reproduces. The seam dispatches to exactly the
//     pre-refactor code paths, so results are bit-identical to the
//     un-seamed pipeline (the family differential tests assert it
//     corpus-wide).
//
//   - Identical: plain identical-machines makespan (P || Cmax), the
//     degenerate every-job-its-own-bag case. Prepare rewrites the
//     instance with singleton bags and the bags pipeline runs verbatim;
//     it doubles as a refactor oracle against Bags.
//
//   - Related: uniformly related machines with few distinct speeds
//     (Q || Cmax), after Epstein–Levin (arXiv:1202.4072). Machine
//     configurations are enumerated per speed class against
//     speed-scaled capacities, decided by the same oracle seam, and
//     small jobs are placed by a capacity-respecting greedy.
//
// # Exactness contract
//
// A family inherits the exactness requirement of the fixed-point
// numeric core (internal/numeric): every capacity a family hands to
// enumeration or to the oracle must be a numeric.Cap-folded integer
// bound, so that all downstream feasibility checks are exact int64
// comparisons. New variants implement Family plus whatever
// shape-specific stage entry points they need; the pipeline engine,
// memoization, the binary search, batching and the serving layer are
// reused unchanged.
package family

import (
	"fmt"
	"math"

	"repro/internal/greedy"
	"repro/internal/sched"
)

// Shape selects the per-guess stage sequence the pipeline engine runs
// for a family. Families whose Prepare normalizes into the
// bag-constrained representation share ShapeBags; families that need
// their own decision path declare a distinct shape.
type Shape int

const (
	// ShapeBags is the bag-constrained pipeline:
	// classify → transform → enumerate → oracle → place → lift.
	ShapeBags Shape = iota
	// ShapeRelated is the uniformly-related-machines pipeline: per
	// speed-class configuration enumeration against speed-scaled
	// capacities, one oracle feasibility program, greedy small-job
	// placement. It runs a single priority-cap ladder rung (priority
	// bags do not exist in this family).
	ShapeRelated
)

// Family is one load-balancing problem variant solvable by the staged
// EPTAS pipeline. Implementations must be stateless and safe for
// concurrent use; the batch pool and the serving layer share them
// across solves.
type Family interface {
	// Name is the stable CLI/API identifier ("bags", "identical",
	// "related").
	Name() string
	// Validate checks family-specific structural well-formedness of an
	// input instance (on top of nothing: it subsumes
	// sched.Instance.Validate).
	Validate(in *sched.Instance) error
	// Feasible reports whether any feasible schedule exists under the
	// family's constraints.
	Feasible(in *sched.Instance) error
	// LowerBound returns a combinatorial lower bound on the family's
	// optimal makespan.
	LowerBound(in *sched.Instance) float64
	// Prepare returns the instance the pipeline actually runs on. Bags
	// returns its input unchanged; families without bag-constraints
	// return a clone with singleton bags so the core schedule
	// validation (which enforces bag-constraints) holds vacuously.
	// Schedules of the prepared instance are position-compatible with
	// the input (same jobs, same order, same machines).
	Prepare(in *sched.Instance) *sched.Instance
	// Fallback returns the family's polynomial upper-bound schedule of
	// a prepared instance; the binary search falls back to it when no
	// guess is accepted.
	Fallback(in *sched.Instance) (*sched.Schedule, error)
	// Fingerprint folds the family identity and every family-relevant
	// part of the instance that the post-Scale pipeline stages read
	// (the bag partition for Bags, the speed vector for Related) into
	// the memo aux hash h. Two solves whose scaled instances share a
	// numeric signature but whose fingerprints differ never share memo
	// entries.
	Fingerprint(h uint64, in *sched.Instance) uint64
	// Shape selects the stage sequence the pipeline runs.
	Shape() Shape
}

// Family tags folded into memo fingerprints. Distinct per family and
// never reused, so a cache shared across families cannot alias entries.
const (
	tagBags      = 0x6261677331 // "bags1"
	tagIdentical = 0x6964656e74 // "ident"
	tagRelated   = 0x72656c6174 // "relat"
)

// Bags is the bag-constrained identical-machines family of the paper.
var Bags Family = bagsFamily{}

// Identical is the plain identical-machines makespan family.
var Identical Family = identicalFamily{}

// Related is the uniformly-related-machines family.
var Related Family = relatedFamily{}

// List returns all built-in families in a stable order.
func List() []Family { return []Family{Bags, Identical, Related} }

// Parse resolves a family name; the empty string selects Bags (the
// default, preserving the pre-seam API behaviour).
func Parse(name string) (Family, error) {
	switch name {
	case "", "bags":
		return Bags, nil
	case "identical":
		return Identical, nil
	case "related":
		return Related, nil
	default:
		return nil, fmt.Errorf("family: unknown problem family %q (want bags, identical or related)", name)
	}
}

// Mix folds x into h with the SplitMix64 permutation; families use it
// to build their memo fingerprints (same permutation as the pipeline
// engine's config hash).
func Mix(h, x uint64) uint64 {
	h += x + 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// --- bags ---

type bagsFamily struct{}

func (bagsFamily) Name() string { return "bags" }

func (bagsFamily) Validate(in *sched.Instance) error {
	if err := in.Validate(); err != nil {
		return err
	}
	if in.Speeds != nil && !in.Uniform() {
		return fmt.Errorf("family: bags solves identical machines; instance has machine speeds (use the related family)")
	}
	return nil
}

func (bagsFamily) Feasible(in *sched.Instance) error { return in.Feasible() }

func (bagsFamily) LowerBound(in *sched.Instance) float64 { return sched.LowerBound(in) }

func (bagsFamily) Prepare(in *sched.Instance) *sched.Instance { return in }

func (bagsFamily) Fallback(in *sched.Instance) (*sched.Schedule, error) { return greedy.BagLPT(in) }

func (bagsFamily) Fingerprint(h uint64, in *sched.Instance) uint64 {
	h = Mix(h, tagBags)
	h = Mix(h, uint64(int64(in.NumBags)))
	for _, j := range in.Jobs {
		h = Mix(h, uint64(int64(j.Bag)))
	}
	return h
}

func (bagsFamily) Shape() Shape { return ShapeBags }

// --- identical ---

type identicalFamily struct{}

func (identicalFamily) Name() string { return "identical" }

func (identicalFamily) Validate(in *sched.Instance) error {
	if err := in.Validate(); err != nil {
		return err
	}
	if in.Speeds != nil && !in.Uniform() {
		return fmt.Errorf("family: identical requires equal machine speeds; instance has distinct speeds (use the related family)")
	}
	return nil
}

// Feasible always succeeds: without bag-constraints any assignment is
// a schedule.
func (identicalFamily) Feasible(*sched.Instance) error { return nil }

// LowerBound reuses the identical-machines bounds of the bags family
// (largest job, average area, the pairing bound) — all three are valid
// without bag-constraints.
func (identicalFamily) LowerBound(in *sched.Instance) float64 { return sched.LowerBound(in) }

// Prepare clones the instance with every job in its own bag: the
// bag-constraint (at most one job of a bag per machine) then holds
// vacuously and the bags pipeline solves plain makespan scheduling.
func (identicalFamily) Prepare(in *sched.Instance) *sched.Instance { return singletonBags(in) }

func (identicalFamily) Fallback(in *sched.Instance) (*sched.Schedule, error) {
	// Bag-LPT on singleton bags degenerates to classic LPT.
	return greedy.BagLPT(in)
}

// Fingerprint is the family tag alone: with singleton bags the bag
// partition is a function of the job count, which the numeric
// signature already covers.
func (identicalFamily) Fingerprint(h uint64, _ *sched.Instance) uint64 {
	return Mix(h, tagIdentical)
}

func (identicalFamily) Shape() Shape { return ShapeBags }

// --- related ---

type relatedFamily struct{}

func (relatedFamily) Name() string { return "related" }

func (relatedFamily) Validate(in *sched.Instance) error {
	// Nil Speeds is accepted and treated as all-ones (the degenerate
	// identical case); sched.Instance.Validate covers positivity and
	// length when Speeds is present.
	return in.Validate()
}

// Feasible always succeeds: related machines carry no combinatorial
// constraint.
func (relatedFamily) Feasible(*sched.Instance) error { return nil }

// LowerBound is the classical Q||Cmax bound: the largest job on the
// fastest machine, and the total area against the total speed.
func (relatedFamily) LowerBound(in *sched.Instance) float64 {
	if len(in.Jobs) == 0 {
		return 0
	}
	sMax, sSum := 0.0, 0.0
	for m := 0; m < in.Machines; m++ {
		s := in.Speed(m)
		if s > sMax {
			sMax = s
		}
		sSum += s
	}
	lb := in.MaxJobSize() / sMax
	if avg := in.TotalArea() / sSum; avg > lb {
		lb = avg
	}
	return lb
}

// Prepare clones the instance with singleton bags (speeds are copied by
// Clone), normalizing into the core representation whose schedule
// validation enforces only vacuous constraints.
func (relatedFamily) Prepare(in *sched.Instance) *sched.Instance { return singletonBags(in) }

func (relatedFamily) Fallback(in *sched.Instance) (*sched.Schedule, error) {
	return greedy.SpeedLPT(in)
}

// Fingerprint folds the family tag and the exact bits of every machine
// speed: the numeric signature covers machine count and job exponents
// only, and two instances that scale-round identically but run on
// different speed profiles have different outcomes.
func (relatedFamily) Fingerprint(h uint64, in *sched.Instance) uint64 {
	h = Mix(h, tagRelated)
	for m := 0; m < in.Machines; m++ {
		h = Mix(h, math.Float64bits(in.Speed(m)))
	}
	return h
}

func (relatedFamily) Shape() Shape { return ShapeRelated }

// singletonBags returns a clone of in with job i in bag i.
func singletonBags(in *sched.Instance) *sched.Instance {
	out := in.Clone()
	out.NumBags = len(out.Jobs)
	for i := range out.Jobs {
		out.Jobs[i].Bag = i
	}
	return out
}
