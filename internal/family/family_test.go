package family

import (
	"math"
	"strings"
	"testing"

	"repro/internal/sched"
)

// bagsInstance is a small uniform instance with genuine (non-singleton)
// bags.
func bagsInstance() *sched.Instance {
	in := sched.NewInstance(3)
	in.AddJob(0.9, 0)
	in.AddJob(0.8, 0)
	in.AddJob(0.7, 1)
	in.AddJob(0.4, 1)
	in.AddJob(0.3, 2)
	return in
}

// speedInstance is a small related-machines instance with singleton
// bags.
func speedInstance() *sched.Instance {
	in := sched.NewRelatedInstance([]float64{4, 1, 1})
	for i, size := range []float64{2.5, 1.2, 0.9, 0.4, 0.2} {
		in.AddJob(size, i)
	}
	return in
}

func TestParse(t *testing.T) {
	for name, want := range map[string]Family{
		"": Bags, "bags": Bags, "identical": Identical, "related": Related,
	} {
		f, err := Parse(name)
		if err != nil {
			t.Fatalf("Parse(%q): %v", name, err)
		}
		if f != want {
			t.Errorf("Parse(%q) = %s, want %s", name, f.Name(), want.Name())
		}
	}
	if _, err := Parse("nope"); err == nil || !strings.Contains(err.Error(), "nope") {
		t.Errorf("Parse(nope) err = %v, want error naming the input", err)
	}
}

func TestListStable(t *testing.T) {
	got := List()
	want := []string{"bags", "identical", "related"}
	if len(got) != len(want) {
		t.Fatalf("List() has %d families, want %d", len(got), len(want))
	}
	for i, f := range got {
		if f.Name() != want[i] {
			t.Errorf("List()[%d] = %s, want %s", i, f.Name(), want[i])
		}
	}
}

func TestMix(t *testing.T) {
	if Mix(1, 2) != Mix(1, 2) {
		t.Error("Mix is not deterministic")
	}
	seen := map[uint64]bool{}
	for _, h := range []uint64{Mix(0, 0), Mix(0, 1), Mix(0, tagBags), Mix(0, tagIdentical), Mix(0, tagRelated)} {
		if seen[h] {
			t.Fatalf("Mix collision at %#x", h)
		}
		seen[h] = true
	}
}

func TestShapes(t *testing.T) {
	if Bags.Shape() != ShapeBags || Identical.Shape() != ShapeBags {
		t.Error("bags/identical must run the bags-shaped pipeline")
	}
	if Related.Shape() != ShapeRelated {
		t.Error("related must declare its own shape")
	}
}

func TestValidateSpeedRejection(t *testing.T) {
	sp := speedInstance()
	for _, f := range []Family{Bags, Identical} {
		if err := f.Validate(sp); err == nil || !strings.Contains(err.Error(), "related") {
			t.Errorf("%s.Validate(speed instance) = %v, want an error pointing at the related family", f.Name(), err)
		}
		if err := f.Validate(bagsInstance()); err != nil {
			t.Errorf("%s.Validate(uniform instance): %v", f.Name(), err)
		}
	}
	if err := Related.Validate(sp); err != nil {
		t.Errorf("Related.Validate(speed instance): %v", err)
	}
	// Uniform non-nil speeds are the degenerate identical case — every
	// family accepts them.
	uni := sched.NewRelatedInstance([]float64{2, 2})
	uni.AddJob(1, 0)
	for _, f := range List() {
		if err := f.Validate(uni); err != nil {
			t.Errorf("%s.Validate(uniform speeds): %v", f.Name(), err)
		}
	}
}

func TestFeasible(t *testing.T) {
	// More jobs of one bag than machines: infeasible for bags, fine for
	// the bag-free families.
	in := sched.NewInstance(2)
	for i := 0; i < 3; i++ {
		in.AddJob(0.5, 0)
	}
	if err := Bags.Feasible(in); err == nil {
		t.Error("Bags.Feasible accepted 3 same-bag jobs on 2 machines")
	}
	if err := Identical.Feasible(in); err != nil {
		t.Errorf("Identical.Feasible: %v", err)
	}
	if err := Related.Feasible(in); err != nil {
		t.Errorf("Related.Feasible: %v", err)
	}
}

func TestLowerBounds(t *testing.T) {
	in := bagsInstance()
	if got, want := Bags.LowerBound(in), sched.LowerBound(in); got != want {
		t.Errorf("Bags.LowerBound = %g, want sched.LowerBound = %g", got, want)
	}
	if got, want := Identical.LowerBound(in), sched.LowerBound(in); got != want {
		t.Errorf("Identical.LowerBound = %g, want %g", got, want)
	}

	// Related: max(maxJob/sMax, area/sumSpeeds), hand-computed.
	sp := speedInstance() // speeds 4,1,1; sizes 2.5 1.2 0.9 0.4 0.2
	area := 2.5 + 1.2 + 0.9 + 0.4 + 0.2
	want := math.Max(2.5/4, area/6)
	if got := Related.LowerBound(sp); math.Abs(got-want) > 1e-12 {
		t.Errorf("Related.LowerBound = %g, want %g", got, want)
	}
	// Nil speeds degenerate to unit speeds.
	uni := sched.NewInstance(2)
	uni.AddJob(3, 0)
	uni.AddJob(1, 1)
	if got := Related.LowerBound(uni); got != 3 {
		t.Errorf("Related.LowerBound(unit speeds) = %g, want 3 (max job)", got)
	}
	if got := Related.LowerBound(sched.NewInstance(2)); got != 0 {
		t.Errorf("Related.LowerBound(empty) = %g, want 0", got)
	}
}

func TestPrepare(t *testing.T) {
	in := bagsInstance()
	if Bags.Prepare(in) != in {
		t.Error("Bags.Prepare must return its input unchanged (bit-identity contract)")
	}
	for _, f := range []Family{Identical, Related} {
		got := f.Prepare(in)
		if got == in {
			t.Fatalf("%s.Prepare must clone", f.Name())
		}
		if got.NumBags != len(in.Jobs) {
			t.Errorf("%s.Prepare: NumBags = %d, want %d singleton bags", f.Name(), got.NumBags, len(in.Jobs))
		}
		for i := range got.Jobs {
			if got.Jobs[i].Bag != i || got.Jobs[i].Size != in.Jobs[i].Size {
				t.Fatalf("%s.Prepare: job %d not position-compatible", f.Name(), i)
			}
		}
		// The input's bag partition must be untouched.
		if in.Jobs[1].Bag != 0 {
			t.Fatalf("%s.Prepare mutated its input", f.Name())
		}
	}
	// Speeds survive the clone.
	sp := speedInstance()
	if got := Related.Prepare(sp); got.Speed(0) != 4 {
		t.Error("Related.Prepare dropped the speed vector")
	}
}

func TestFallback(t *testing.T) {
	for _, f := range List() {
		in := f.Prepare(speedInstanceFor(f))
		s, err := f.Fallback(in)
		if err != nil {
			t.Fatalf("%s.Fallback: %v", f.Name(), err)
		}
		if err := s.Validate(); err != nil {
			t.Errorf("%s.Fallback schedule invalid: %v", f.Name(), err)
		}
	}
}

// speedInstanceFor picks an instance the family accepts.
func speedInstanceFor(f Family) *sched.Instance {
	if f.Shape() == ShapeRelated {
		return speedInstance()
	}
	return bagsInstance()
}

func TestFingerprintSeparation(t *testing.T) {
	in := bagsInstance()
	const h0 = 42
	hs := map[uint64]string{}
	for _, f := range List() {
		h := f.Fingerprint(h0, in)
		if prev, dup := hs[h]; dup {
			t.Fatalf("%s and %s share a fingerprint", f.Name(), prev)
		}
		hs[h] = f.Name()
	}

	// Bags: sensitive to the bag partition.
	rebagged := in.Clone()
	rebagged.Jobs[0].Bag = 2
	if Bags.Fingerprint(h0, in) == Bags.Fingerprint(h0, rebagged) {
		t.Error("Bags.Fingerprint ignores the bag partition")
	}
	// Related: sensitive to the speed vector.
	a := sched.NewRelatedInstance([]float64{4, 1})
	b := sched.NewRelatedInstance([]float64{2, 1})
	if Related.Fingerprint(h0, a) == Related.Fingerprint(h0, b) {
		t.Error("Related.Fingerprint ignores the speed vector")
	}
	// Identical: a pure tag (the signature covers the rest).
	if Identical.Fingerprint(h0, in) != Identical.Fingerprint(h0, rebagged) {
		t.Error("Identical.Fingerprint should not depend on the bag partition")
	}
}
