package baselines

import (
	"math"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/workload"
)

func smallInstance(seed int64) *sched.Instance {
	return workload.MustGenerate(workload.Spec{
		Family: workload.Uniform, Machines: 3, Jobs: 10, Bags: 4, Seed: seed,
	})
}

func TestAllHeuristicsFeasible(t *testing.T) {
	algos := map[string]func(*sched.Instance) (*sched.Schedule, error){
		"greedy":     Greedy,
		"lpt":        LPT,
		"baglpt":     BagLPT,
		"roundrobin": RoundRobin,
	}
	for _, fam := range workload.Families() {
		in := workload.MustGenerate(workload.Spec{
			Family: fam, Machines: 6, Jobs: 30, Bags: 10, Seed: 3,
		})
		for name, algo := range algos {
			s, err := algo(in)
			if err != nil {
				t.Fatalf("%s on %s: %v", name, fam, err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("%s on %s: %v", name, fam, err)
			}
		}
	}
}

func TestHeuristicsRejectInfeasible(t *testing.T) {
	in := sched.NewInstance(1)
	in.AddJob(1, 0)
	in.AddJob(1, 0)
	for name, algo := range map[string]func(*sched.Instance) (*sched.Schedule, error){
		"greedy": Greedy, "lpt": LPT, "baglpt": BagLPT, "roundrobin": RoundRobin,
	} {
		if _, err := algo(in); err == nil {
			t.Errorf("%s accepted an infeasible instance", name)
		}
	}
}

func TestLPTGrahamBound(t *testing.T) {
	// Without bag constraints binding (one bag per job), LPT respects
	// the classical 4/3 bound against the combinatorial lower bound.
	for seed := int64(1); seed <= 10; seed++ {
		in := workload.MustGenerate(workload.Spec{
			Family: workload.Uniform, Machines: 4, Jobs: 20, Bags: 20, Seed: seed,
		})
		s, err := LPT(in)
		if err != nil {
			t.Fatal(err)
		}
		lb := sched.LowerBound(in)
		if s.Makespan() > lb*4.0/3.0+in.MaxJobSize()/3+1e-9 {
			t.Errorf("seed %d: LPT %.4f vs LB %.4f exceeds Graham-style bound", seed, s.Makespan(), lb)
		}
	}
}

func TestExactTinyKnownOptimum(t *testing.T) {
	// 4 jobs {3,3,2,2}, 2 machines, no binding bags: OPT = 5.
	in := sched.NewInstance(2)
	in.AddJob(3, 0)
	in.AddJob(3, 1)
	in.AddJob(2, 2)
	in.AddJob(2, 3)
	res, err := Exact(in, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Proven || math.Abs(res.Makespan-5) > 1e-9 {
		t.Errorf("exact = %.4f proven=%v, want 5", res.Makespan, res.Proven)
	}
}

func TestExactRespectsBags(t *testing.T) {
	// Two jobs of one bag cannot share the single fast assignment: with
	// 2 machines and jobs {3 (bag0), 3 (bag0), 1 (bag1)}, OPT = 4
	// (3|3+1), whereas without bags it would still be 4; make bags bind:
	// jobs {2,2} bag 0 and {2,2} bag 1 on 2 machines: OPT = 4 with one
	// of each bag per machine.
	in := sched.NewInstance(2)
	in.AddJob(2, 0)
	in.AddJob(2, 0)
	in.AddJob(2, 1)
	in.AddJob(2, 1)
	res, err := Exact(in, ExactOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Makespan-4) > 1e-9 {
		t.Errorf("exact = %.4f, want 4", res.Makespan)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestExactMatchesBruteForce(t *testing.T) {
	// Compare against explicit enumeration on tiny instances.
	for seed := int64(1); seed <= 6; seed++ {
		in := workload.MustGenerate(workload.Spec{
			Family: workload.Uniform, Machines: 2, Jobs: 7, Bags: 3, Seed: seed,
		})
		res, err := Exact(in, ExactOptions{})
		if err != nil {
			t.Fatal(err)
		}
		want := bruteForce(in)
		if math.Abs(res.Makespan-want) > 1e-9 {
			t.Errorf("seed %d: exact %.6f, brute force %.6f", seed, res.Makespan, want)
		}
	}
}

func bruteForce(in *sched.Instance) float64 {
	n := len(in.Jobs)
	m := in.Machines
	best := math.Inf(1)
	asg := make([]int, n)
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			loads := make([]float64, m)
			for j, mm := range asg {
				loads[mm] += in.Jobs[j].Size
			}
			bags := map[[2]int]int{}
			for j, mm := range asg {
				bags[[2]int{mm, in.Jobs[j].Bag}]++
			}
			for _, c := range bags {
				if c > 1 {
					return
				}
			}
			mk := 0.0
			for _, l := range loads {
				mk = math.Max(mk, l)
			}
			if mk < best {
				best = mk
			}
			return
		}
		for mm := 0; mm < m; mm++ {
			asg[i] = mm
			rec(i + 1)
		}
	}
	rec(0)
	return best
}

func TestExactNeverWorseThanHeuristics(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		in := smallInstance(seed)
		res, err := Exact(in, ExactOptions{TimeLimit: 10 * time.Second})
		if err != nil {
			t.Fatal(err)
		}
		for name, algo := range map[string]func(*sched.Instance) (*sched.Schedule, error){
			"greedy": Greedy, "lpt": LPT, "baglpt": BagLPT,
		} {
			s, err := algo(in)
			if err != nil {
				t.Fatal(err)
			}
			if res.Makespan > s.Makespan()+1e-9 {
				t.Errorf("seed %d: exact %.4f worse than %s %.4f", seed, res.Makespan, name, s.Makespan())
			}
		}
	}
}

func TestExactTimeLimitReturnsIncumbent(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Uniform, Machines: 5, Jobs: 40, Bags: 10, Seed: 1,
	})
	res, err := Exact(in, ExactOptions{TimeLimit: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if res.Schedule == nil {
		t.Fatal("no incumbent returned")
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDasWieseConfigSmall(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Bimodal, Machines: 4, Jobs: 12, Bags: 4, Seed: 9,
	})
	res, err := DasWieseConfig(in, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRoundRobinSpreadsBags(t *testing.T) {
	in := sched.NewInstance(4)
	for i := 0; i < 4; i++ {
		in.AddJob(1, 0)
	}
	s, err := RoundRobin(in)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, m := range s.Machine {
		if seen[m] {
			t.Fatal("round robin reused a machine for one bag")
		}
		seen[m] = true
	}
}
