// Package baselines provides the comparison algorithms the experiment
// suite measures the EPTAS against:
//
//   - Greedy: least-loaded feasible list scheduling in input order;
//   - LPT: the same in decreasing size order (Graham's rule with bags);
//   - BagLPT: the paper's bag-LPT applied globally (Lemma 8);
//   - RoundRobin: a static cyclic-shift assignment (conflict-free by
//     construction, load-oblivious — the naive strawman);
//   - DasWieseConfig: the configuration program with every bag treated as
//     priority and no instance transformation — the PTAS-style approach
//     whose cost grows with the number of bags (EX-T2);
//   - Exact: a branch-and-bound optimal solver used as the OPT oracle on
//     small instances (EX-T1).
package baselines

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/core"
	"repro/internal/greedy"
	"repro/internal/sched"
)

// Greedy schedules jobs in input order on the least-loaded conflict-free
// machine.
func Greedy(in *sched.Instance) (*sched.Schedule, error) {
	if err := in.Feasible(); err != nil {
		return nil, err
	}
	order := make([]int, len(in.Jobs))
	for i := range order {
		order[i] = i
	}
	return greedy.ListSchedule(in, order)
}

// LPT schedules jobs in decreasing size order on the least-loaded
// conflict-free machine.
func LPT(in *sched.Instance) (*sched.Schedule, error) {
	if err := in.Feasible(); err != nil {
		return nil, err
	}
	return greedy.ListSchedule(in, in.SortedJobIdxDesc())
}

// BagLPT is the paper's bag-LPT heuristic applied globally.
func BagLPT(in *sched.Instance) (*sched.Schedule, error) {
	return greedy.BagLPT(in)
}

// RoundRobin assigns the j-th job of each bag to machine (offset+j) mod m
// with a rotating offset. It is conflict-free whenever every bag has at
// most m jobs, but ignores loads entirely.
func RoundRobin(in *sched.Instance) (*sched.Schedule, error) {
	if err := in.Feasible(); err != nil {
		return nil, err
	}
	s := sched.NewSchedule(in)
	byBag := in.JobsByBag()
	offset := 0
	for b := 0; b < in.NumBags; b++ {
		jobs := append([]int(nil), byBag[b]...)
		sort.SliceStable(jobs, func(a, c int) bool {
			if in.Jobs[jobs[a]].Size != in.Jobs[jobs[c]].Size {
				return in.Jobs[jobs[a]].Size > in.Jobs[jobs[c]].Size
			}
			return jobs[a] < jobs[c]
		})
		for j, ji := range jobs {
			s.Machine[ji] = (offset + j) % in.Machines
		}
		offset = (offset + len(jobs)) % in.Machines
	}
	return s, nil
}

// DasWieseConfig runs the configuration-program scheme with every bag
// treated as a priority bag and no instance transformation. Its pattern
// space grows with the number of bags, reproducing the PTAS-vs-EPTAS
// running-time separation of the paper. Speculation is pinned off so
// the baseline's timing is the sequential algorithm's, comparable with
// the pinned EPTAS timing experiments and benchmarks.
func DasWieseConfig(in *sched.Instance, eps float64) (*core.Result, error) {
	return DasWieseConfigContext(context.Background(), in, eps)
}

// DasWieseConfigContext is DasWieseConfig under a context; a canceled or
// expired context aborts the solve and returns ctx.Err().
func DasWieseConfigContext(ctx context.Context, in *sched.Instance, eps float64) (*core.Result, error) {
	return core.SolveContext(ctx, in, core.Options{Eps: eps, AllPriority: true, Speculate: 1})
}

// ExactOptions tunes the exact solver.
type ExactOptions struct {
	// TimeLimit aborts the search; the best incumbent is returned with
	// Proven=false. Zero means 30 seconds.
	TimeLimit time.Duration
	// MaxNodes bounds search nodes. Zero means 50 million.
	MaxNodes int64
}

// ExactResult is the outcome of Exact.
type ExactResult struct {
	// Schedule is the best schedule found.
	Schedule *sched.Schedule
	// Makespan is its makespan.
	Makespan float64
	// Proven reports whether optimality was proven.
	Proven bool
	// Nodes is the number of search nodes expanded.
	Nodes int64
}

// Exact computes an optimal schedule by branch and bound over job
// assignments (jobs in decreasing size order, machine-symmetry breaking,
// area and incumbent pruning). Intended for small instances (n <~ 24).
func Exact(in *sched.Instance, opt ExactOptions) (*ExactResult, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := in.Feasible(); err != nil {
		return nil, err
	}
	if opt.TimeLimit <= 0 {
		opt.TimeLimit = 30 * time.Second
	}
	if opt.MaxNodes <= 0 {
		opt.MaxNodes = 50_000_000
	}
	// Start from the best heuristic schedule as incumbent.
	best, err := bestHeuristic(in)
	if err != nil {
		return nil, err
	}
	e := &exactSearch{
		in:       in,
		order:    in.SortedJobIdxDesc(),
		loads:    make([]float64, in.Machines),
		bagOn:    make([]map[int]bool, in.Machines),
		assign:   make([]int, len(in.Jobs)),
		bestAsg:  append([]int(nil), best.Machine...),
		bestMk:   best.Makespan(),
		deadline: time.Now().Add(opt.TimeLimit),
		maxNodes: opt.MaxNodes,
	}
	for i := range e.bagOn {
		e.bagOn[i] = make(map[int]bool)
	}
	for i := range e.assign {
		e.assign[i] = -1
	}
	// Suffix areas for the area lower bound.
	e.suffix = make([]float64, len(e.order)+1)
	for i := len(e.order) - 1; i >= 0; i-- {
		e.suffix[i] = e.suffix[i+1] + in.Jobs[e.order[i]].Size
	}
	complete := e.dfs(0, 0)
	s := &sched.Schedule{Inst: in, Machine: e.bestAsg}
	if err := s.Validate(); err != nil {
		return nil, fmt.Errorf("baselines: exact produced invalid schedule: %w", err)
	}
	return &ExactResult{Schedule: s, Makespan: s.Makespan(), Proven: complete, Nodes: e.nodes}, nil
}

// bestHeuristic returns the best of the cheap heuristics as an incumbent.
func bestHeuristic(in *sched.Instance) (*sched.Schedule, error) {
	var best *sched.Schedule
	for _, f := range []func(*sched.Instance) (*sched.Schedule, error){BagLPT, LPT, Greedy} {
		s, err := f(in)
		if err != nil {
			return nil, err
		}
		if best == nil || s.Makespan() < best.Makespan() {
			best = s
		}
	}
	return best, nil
}

type exactSearch struct {
	in       *sched.Instance
	order    []int
	loads    []float64
	bagOn    []map[int]bool
	assign   []int
	suffix   []float64
	bestAsg  []int
	bestMk   float64
	nodes    int64
	maxNodes int64
	deadline time.Time
	aborted  bool
}

// dfs returns true when the subtree was fully explored.
func (e *exactSearch) dfs(depth, usedMachines int) bool {
	if e.aborted {
		return false
	}
	e.nodes++
	if e.nodes >= e.maxNodes || (e.nodes%4096 == 0 && time.Now().After(e.deadline)) {
		e.aborted = true
		return false
	}
	if depth == len(e.order) {
		mk := 0.0
		for _, l := range e.loads {
			if l > mk {
				mk = l
			}
		}
		if mk < e.bestMk-1e-12 {
			e.bestMk = mk
			for i, ji := range e.order {
				_ = i
				e.bestAsg[ji] = e.assign[ji]
			}
		}
		return true
	}
	// Area lower bound: remaining jobs spread over all machines.
	maxLoad, totalLoad := 0.0, 0.0
	for _, l := range e.loads {
		if l > maxLoad {
			maxLoad = l
		}
		totalLoad += l
	}
	lbArea := (totalLoad + e.suffix[depth]) / float64(e.in.Machines)
	lb := math.Max(maxLoad, lbArea)
	if lb >= e.bestMk-1e-12 {
		return true
	}

	ji := e.order[depth]
	job := e.in.Jobs[ji]
	limit := usedMachines + 1 // machine symmetry breaking
	if limit > e.in.Machines {
		limit = e.in.Machines
	}
	complete := true
	// Try machines in increasing load order for better incumbents early.
	idx := make([]int, limit)
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool { return e.loads[idx[a]] < e.loads[idx[b]] })
	for _, m := range idx {
		if e.bagOn[m][job.Bag] {
			continue
		}
		if e.loads[m]+job.Size >= e.bestMk-1e-12 {
			continue
		}
		e.loads[m] += job.Size
		e.bagOn[m][job.Bag] = true
		e.assign[ji] = m
		used := usedMachines
		if m == usedMachines {
			used++
		}
		if !e.dfs(depth+1, used) {
			complete = false
		}
		e.loads[m] -= job.Size
		delete(e.bagOn[m], job.Bag)
		e.assign[ji] = -1
		if e.aborted {
			return false
		}
	}
	// Machines skipped by pruning do not make the search incomplete: any
	// schedule using them cannot beat the incumbent. Bag-conflict skips
	// are exact. Only an abort makes the result unproven.
	return complete || !e.aborted
}
