package numeric

// Key is a fixed-size, allocation-free identity of a scaled-rounded
// instance: the machine count, the job count and a 128-bit hash of the
// per-job geometric exponent vector. It replaces the heap-allocated
// string signature previously used as the cross-guess memo key — a Key
// is comparable, fits in four words, hashes cheaply as a map key and
// costs zero allocations to build.
//
// Two guesses whose scaled-rounded instances have equal exponent vectors
// (and machine counts) are the same instance from the Classify stage on,
// so equal Keys may share one memoized pipeline outcome. The converse
// direction relies on the 128-bit hash: distinct exponent vectors of
// equal length collide with probability ~2^-128 per pair, i.e. never in
// practice — a solve sees at most a few dozen distinct signatures, and
// even a fleet of 10^9 solves with 10^3 signatures each stays below a
// ~10^-15 chance of a single collision anywhere.
type Key struct {
	// M is the machine count, N the exponent-vector length.
	M, N int32
	// H0 and H1 are two independent 64-bit hashes of the exponent vector.
	H0, H1 uint64
}

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
	mixSeed     = 0x9e3779b97f4a7c15
)

// mix64 is the SplitMix64 finalizer, a full-avalanche 64-bit permutation.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// KeyOf builds the memo key of a scaled-rounded instance from its
// machine count and per-job geometric exponents. It performs no
// allocations.
func KeyOf(machines int, exps []int) Key {
	h0 := uint64(fnvOffset64)
	h1 := uint64(mixSeed)
	for _, e := range exps {
		x := uint64(int64(e))
		h0 = (h0 ^ x) * fnvPrime64
		h1 = mix64(h1 + x + mixSeed)
	}
	return Key{M: int32(machines), N: int32(len(exps)), H0: h0, H1: h1}
}
