// Package numeric is the numeric core shared by all bagsched packages:
// the float64 tolerance policy for the pre-rounding world, and the exact
// fixed-point representation (Fx, see fixed.go) the post-rounding
// pipeline runs on.
//
// Original job sizes, LP interiors and lower bounds are float64; all
// tolerance-based comparisons between such derived quantities go through
// this package so the policy lives in exactly one place. From the Scale
// stage of the EPTAS pipeline onward, sizes are snapped onto the Fx grid
// (round.ScaleRound) and heights, loads and capacities are exact int64
// fixed-point values — comparisons there need no tolerances at all; the
// float64 tolerance band is folded into integer capacity constants once,
// via Cap.
package numeric

import "math"

// Tol is the default absolute tolerance used when comparing derived
// floating-point quantities (loads, LP activities, rounded sizes).
const Tol = 1e-9

// Eq reports whether a and b are equal within Tol.
func Eq(a, b float64) bool { return math.Abs(a-b) <= Tol }

// EqTol reports whether a and b are equal within the given tolerance.
func EqTol(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

// Leq reports whether a <= b within Tol.
func Leq(a, b float64) bool { return a <= b+Tol }

// Geq reports whether a >= b within Tol.
func Geq(a, b float64) bool { return a >= b-Tol }

// Less reports whether a < b by more than Tol.
func Less(a, b float64) bool { return a < b-Tol }

// Greater reports whether a > b by more than Tol.
func Greater(a, b float64) bool { return a > b+Tol }

// IsInt reports whether x is within tol of an integer.
func IsInt(x, tol float64) bool {
	_, frac := math.Modf(x)
	if frac < 0 {
		frac = -frac
	}
	return frac <= tol || frac >= 1-tol
}

// RoundInt returns the nearest integer to x as an int.
func RoundInt(x float64) int { return int(math.Round(x)) }

// Sum returns the sum of xs using Kahan compensated summation, which keeps
// load accounting stable when many small job sizes are accumulated.
func Sum(xs []float64) float64 {
	var sum, comp float64
	for _, x := range xs {
		y := x - comp
		t := sum + y
		comp = (t - sum) - y
		sum = t
	}
	return sum
}

// Kahan is an incremental compensated accumulator. The zero value is ready
// to use.
type Kahan struct {
	sum  float64
	comp float64
}

// Add accumulates x.
func (k *Kahan) Add(x float64) {
	y := x - k.comp
	t := k.sum + y
	k.comp = (t - k.sum) - y
	k.sum = t
}

// Value returns the current sum.
func (k *Kahan) Value() float64 { return k.sum }

// Clamp limits x to the closed interval [lo, hi].
func Clamp(x, lo, hi float64) float64 {
	if x < lo {
		return lo
	}
	if x > hi {
		return hi
	}
	return x
}

// MaxFloat returns the maximum of xs, or 0 for an empty slice.
func MaxFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x > m {
			m = x
		}
	}
	return m
}

// MinFloat returns the minimum of xs, or 0 for an empty slice.
func MinFloat(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	m := xs[0]
	for _, x := range xs[1:] {
		if x < m {
			m = x
		}
	}
	return m
}

// ArgMin returns the index of the smallest element of xs, breaking ties by
// the lower index. It returns -1 for an empty slice.
func ArgMin(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs[1:] {
		if x < xs[best] {
			best = i + 1
		}
	}
	return best
}

// ArgMax returns the index of the largest element of xs, breaking ties by
// the lower index. It returns -1 for an empty slice.
func ArgMax(xs []float64) int {
	if len(xs) == 0 {
		return -1
	}
	best := 0
	for i, x := range xs[1:] {
		if x > xs[best] {
			best = i + 1
		}
	}
	return best
}
