package numeric

import "math"

// Fixed-point core of the post-rounding pipeline.
//
// After the Scale stage every job size of the EPTAS is a power (1+eps)^e
// snapped onto the dyadic grid of Fx (see round.ScaleRound): sizes,
// pattern heights, machine loads and capacity bounds all become exact
// int64 arithmetic from the Classify stage down to the Lift boundary,
// where they are converted back to float64 losslessly.
//
// # Denominator contract
//
// Fx is a two's-complement fixed-point value with FxFracBits (40)
// fractional bits: the represented number is Fx / 2^40. The denominator
// is a power of two on purpose — it makes the lift back to float64 exact
// (a division by 2^40 only shifts the exponent), and it makes float64
// arithmetic on lifted values exact as long as magnitudes stay small: a
// sum of grid values of magnitude below 2^12 needs at most 52 mantissa
// bits, so accumulating the lifted float64 values yields bit-for-bit the
// same number as accumulating the Fx values and lifting once. This
// exactness is what makes the fixed-point pipeline result-transparent
// against the retained float64 reference path (the differential tests
// assert it end to end). The grid is chosen fine (2^-40 ~ 9e-13, three
// orders of magnitude below the float path's Tol) so that snapping the
// scaled-rounded sizes onto it is far below every tolerance-guarded
// decision boundary.
//
// # Overflow contract
//
// A single value must satisfy |x| < 2^23 (FromFloat panics beyond 2^22
// as a safety margin); sums may use the full int64 range, i.e. up to
// 2^23 values of maximal magnitude. The EPTAS operates on instances
// scaled by a makespan guess of at least the lower bound, so sizes are
// O(1), per-machine loads are O(1) and instance areas are O(machines) —
// far inside the contract for any instance that fits in memory.
type Fx int64

// FxFracBits is the number of fractional bits of Fx.
const FxFracBits = 40

// FxOne is the Fx representation of 1.
const FxOne Fx = 1 << FxFracBits

// fxOneF is 2^FxFracBits as a float64 (exact).
const fxOneF = float64(1 << FxFracBits)

// fxMax is the largest magnitude FromFloat and CeilFromFloat accept; the
// documented contract is 2^23, the guard trips at 2^22 to keep headroom
// for the caller's next few additions.
const fxMax = float64(1 << 22)

// FromFloat converts x to Fx, rounding to the nearest grid value. For x
// already on the grid (every post-Scale quantity) the conversion is
// exact. It panics when |x| exceeds the overflow contract.
func FromFloat(x float64) Fx {
	if x >= fxMax || x <= -fxMax {
		panic("numeric: fixed-point overflow: |value| must be < 2^22")
	}
	return Fx(math.Round(x * fxOneF))
}

// CeilFromFloat converts x to Fx, rounding up to the next grid value. It
// is the quantization used at the Scale boundary: rounding up preserves
// the geometric round-up invariant (the quantized size is never below
// the value it replaces). It panics when |x| exceeds the overflow
// contract.
func CeilFromFloat(x float64) Fx {
	if x >= fxMax || x <= -fxMax {
		panic("numeric: fixed-point overflow: |value| must be < 2^22")
	}
	return Fx(math.Ceil(x * fxOneF))
}

// Cap converts an inclusive float64 upper bound x into its exact
// fixed-point form floor(x * 2^FxFracBits). For any grid value s (an
// exact Fx),
//
//	sFx <= Cap(x)  ⇔  s <= x   and   sFx > Cap(x)  ⇔  s > x,
//
// so a float64 comparison against x with a tolerance already folded in
// (e.g. T + Tol) becomes one exact integer comparison. The product
// x * 2^FxFracBits is computed exactly (multiplying a float64 by a power
// of two only shifts its exponent), so no rounding ambiguity enters
// here.
func Cap(x float64) Fx {
	return Fx(math.Floor(x * fxOneF))
}

// Float lifts f back to float64. The conversion is exact within the
// overflow contract: values there need at most 23+40 = 63 bits of
// magnitude and carry at most 53 significant bits after the int64 to
// float64 conversion of an in-contract sum.
func (f Fx) Float() float64 { return float64(f) / fxOneF }

// MulInt returns f scaled by an integer multiplicity (slot counts).
func (f Fx) MulInt(c int) Fx { return f * Fx(c) }

// Quantize snaps x up to the Fx grid and returns the grid value as a
// float64. It is the single entry point through which job sizes leave
// the float64 world: after Quantize, all sums and comparisons of sizes
// are exact in either representation.
func Quantize(x float64) float64 { return CeilFromFloat(x).Float() }
