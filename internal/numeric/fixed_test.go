package numeric

import (
	"math"
	"math/rand"
	"testing"
)

func TestFxRoundTripExactOnGrid(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 10000; i++ {
		f := Fx(rng.Int63n(1 << 52))
		if got := FromFloat(f.Float()); got != f {
			t.Fatalf("round trip: %d -> %g -> %d", f, f.Float(), got)
		}
	}
}

func TestQuantizeRoundsUp(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for i := 0; i < 10000; i++ {
		x := rng.Float64() * 100
		q := Quantize(x)
		if q < x {
			t.Fatalf("Quantize(%g) = %g below input", x, q)
		}
		if q-x > 1.0/fxOneF {
			t.Fatalf("Quantize(%g) = %g off by more than one grid step", x, q)
		}
		if Quantize(q) != q {
			t.Fatalf("Quantize not idempotent at %g", q)
		}
	}
}

// TestFloatSumMatchesFixedSum is the exactness property the whole
// refactor rests on: for grid values of small magnitude, float64
// accumulation and Fx accumulation agree bit for bit.
func TestFloatSumMatchesFixedSum(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		n := 1 + rng.Intn(500)
		var fsum float64
		var xsum Fx
		for i := 0; i < n; i++ {
			v := Quantize(rng.Float64() * 3)
			fsum += v
			xsum += FromFloat(v)
		}
		if fsum != xsum.Float() {
			t.Fatalf("trial %d: float sum %v != fixed sum %v", trial, fsum, xsum.Float())
		}
	}
}

func TestCapComparisons(t *testing.T) {
	// For grid s: sFx <= Cap(x) iff s <= x, including x on the grid.
	cases := []struct{ s, x float64 }{
		{1.5, 1.5}, {1.5, 1.5 + 1e-9}, {1.5, 1.5 - 1e-9},
		{0.25, 0.75}, {2.25, 2.25}, {1e-9, 2e-9},
	}
	for _, c := range cases {
		s := Quantize(c.s)
		sFx := FromFloat(s)
		if got, want := sFx <= Cap(c.x), s <= c.x; got != want {
			t.Errorf("s=%v x=%v: fixed %v, float %v", s, c.x, got, want)
		}
		if got, want := sFx > Cap(c.x), s > c.x; got != want {
			t.Errorf("strict s=%v x=%v: fixed %v, float %v", s, c.x, got, want)
		}
	}
}

func TestFxOverflowGuard(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("FromFloat accepted an out-of-contract value")
		}
	}()
	FromFloat(math.Ldexp(1, 31))
}

func TestKeyOfDeterministicAndSensitive(t *testing.T) {
	a := []int{0, -3, 5, 5, 12}
	if KeyOf(4, a) != KeyOf(4, a) {
		t.Fatal("KeyOf not deterministic")
	}
	if KeyOf(4, a) == KeyOf(5, a) {
		t.Error("machine count not part of the key")
	}
	b := []int{0, -3, 5, 5, 13}
	if KeyOf(4, a) == KeyOf(4, b) {
		t.Error("exponent change not reflected")
	}
	// Order sensitivity (a permuted vector is a different instance).
	c := []int{-3, 0, 5, 5, 12}
	if KeyOf(4, a) == KeyOf(4, c) {
		t.Error("permutation collided")
	}
	if KeyOf(1, nil) == KeyOf(1, []int{0}) {
		t.Error("length not part of the key")
	}
}

func TestKeyOfNoCollisionsOnRandomVectors(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	seen := make(map[Key][]int)
	for i := 0; i < 20000; i++ {
		n := rng.Intn(40)
		v := make([]int, n)
		for j := range v {
			v[j] = rng.Intn(80) - 40
		}
		k := KeyOf(8, v)
		if prev, ok := seen[k]; ok && !equalInts(prev, v) {
			t.Fatalf("collision: %v vs %v", prev, v)
		}
		seen[k] = v
	}
}

func equalInts(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func BenchmarkKeyOf(b *testing.B) {
	exps := make([]int, 64)
	for i := range exps {
		exps[i] = i % 17
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = KeyOf(16, exps)
	}
}
