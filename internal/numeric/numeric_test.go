package numeric

import (
	"math"
	"testing"
	"testing/quick"
)

func TestEq(t *testing.T) {
	tests := []struct {
		a, b float64
		want bool
	}{
		{1, 1, true},
		{1, 1 + 1e-10, true},
		{1, 1 + 1e-8, false},
		{0, 0, true},
		{-1, 1, false},
		{1e9, 1e9, true},
	}
	for _, tt := range tests {
		if got := Eq(tt.a, tt.b); got != tt.want {
			t.Errorf("Eq(%g,%g) = %v, want %v", tt.a, tt.b, got, tt.want)
		}
	}
}

func TestOrderingHelpers(t *testing.T) {
	if !Leq(1, 1+1e-10) || !Leq(1, 2) || Leq(2, 1) {
		t.Error("Leq misbehaves")
	}
	if !Geq(1+1e-10, 1) || !Geq(2, 1) || Geq(1, 2) {
		t.Error("Geq misbehaves")
	}
	if !Less(1, 2) || Less(1, 1+1e-10) || Less(2, 1) {
		t.Error("Less misbehaves")
	}
	if !Greater(2, 1) || Greater(1+1e-10, 1) || Greater(1, 2) {
		t.Error("Greater misbehaves")
	}
}

func TestIsInt(t *testing.T) {
	tests := []struct {
		x    float64
		tol  float64
		want bool
	}{
		{3, 1e-6, true},
		{3.0000001, 1e-6, true},
		{3.001, 1e-6, false},
		{-2.9999999, 1e-6, true},
		{0.5, 1e-6, false},
		{0, 1e-6, true},
	}
	for _, tt := range tests {
		if got := IsInt(tt.x, tt.tol); got != tt.want {
			t.Errorf("IsInt(%g, %g) = %v, want %v", tt.x, tt.tol, got, tt.want)
		}
	}
}

func TestSumMatchesNaiveOnSmallInputs(t *testing.T) {
	xs := []float64{1, 2, 3, 4.5}
	if got := Sum(xs); got != 10.5 {
		t.Errorf("Sum = %g, want 10.5", got)
	}
	if got := Sum(nil); got != 0 {
		t.Errorf("Sum(nil) = %g, want 0", got)
	}
}

func TestSumCompensation(t *testing.T) {
	// 1 + 1e-16 repeated: naive summation loses the small terms.
	xs := make([]float64, 1_000_001)
	xs[0] = 1
	for i := 1; i < len(xs); i++ {
		xs[i] = 1e-16
	}
	got := Sum(xs)
	want := 1 + 1e-10
	if math.Abs(got-want) > 1e-13 {
		t.Errorf("Sum = %.17g, want %.17g", got, want)
	}
}

func TestKahanMatchesSum(t *testing.T) {
	prop := func(xs []float64) bool {
		clean := make([]float64, 0, len(xs))
		for _, x := range xs {
			if !math.IsNaN(x) && !math.IsInf(x, 0) && math.Abs(x) < 1e12 {
				clean = append(clean, x)
			}
		}
		var k Kahan
		for _, x := range clean {
			k.Add(x)
		}
		return EqTol(k.Value(), Sum(clean), 1e-6*(1+math.Abs(Sum(clean))))
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Error("Clamp misbehaves")
	}
}

func TestMinMaxArg(t *testing.T) {
	xs := []float64{3, 1, 4, 1, 5}
	if MaxFloat(xs) != 5 {
		t.Errorf("MaxFloat = %g", MaxFloat(xs))
	}
	if MinFloat(xs) != 1 {
		t.Errorf("MinFloat = %g", MinFloat(xs))
	}
	if ArgMin(xs) != 1 { // first minimum wins
		t.Errorf("ArgMin = %d", ArgMin(xs))
	}
	if ArgMax(xs) != 4 {
		t.Errorf("ArgMax = %d", ArgMax(xs))
	}
	if MaxFloat(nil) != 0 || MinFloat(nil) != 0 || ArgMin(nil) != -1 || ArgMax(nil) != -1 {
		t.Error("empty-slice behaviour wrong")
	}
}

func TestRoundInt(t *testing.T) {
	if RoundInt(2.5) != 3 || RoundInt(2.4) != 2 || RoundInt(-2.5) != -3 {
		t.Error("RoundInt misbehaves")
	}
}
