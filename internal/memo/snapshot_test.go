package memo

import (
	"bytes"
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"strconv"
	"testing"
)

// testEnc/testDec round-trip string values, the stand-in for the
// pipeline's result codec in these container-level tests.
func testEnc(v any) ([]byte, bool) {
	s, ok := v.(string)
	if !ok {
		return nil, false
	}
	return []byte(s), true
}

func testDec(p []byte) (any, error) {
	return string(p), nil
}

func keyOf(i int) Key {
	return Key{Sig: Sig{M: int32(i), N: int32(i + 1), H0: uint64(i) * 77, H1: uint64(i) * 131}, Aux: uint64(i)}
}

// fill commits n positive entries ("v0".."v<n-1>", cost 100 each) in
// key order, so key n-1 is the most recently used.
func fill(t *testing.T, c *Cache, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		v := "v" + strconv.Itoa(i)
		if _, _, err := c.Do(context.Background(), keyOf(i), func() (any, int64, error) {
			return v, 100, nil
		}); err != nil {
			t.Fatal(err)
		}
	}
}

func TestSnapshotRoundTrip(t *testing.T) {
	src := New(0)
	fill(t, src, 5)
	rejection := errors.New("oracle: configuration program infeasible")
	if _, _, err := src.Do(context.Background(), keyOf(100), func() (any, int64, error) {
		return nil, 64, rejection
	}); err == nil {
		t.Fatal("expected the negative compute to return its error")
	}

	var buf bytes.Buffer
	written, skipped, err := src.Export(&buf, testEnc)
	if err != nil {
		t.Fatal(err)
	}
	if written != 6 || skipped != 0 {
		t.Fatalf("export wrote %d entries (skipped %d), want 6 (0)", written, skipped)
	}

	dst := New(0)
	st, err := dst.Import(bytes.NewReader(buf.Bytes()), testDec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Loaded != 6 || st.LoadedNegative != 1 || st.Skipped() != 0 {
		t.Fatalf("import stats %+v, want 6 loaded (1 negative), 0 skipped", st)
	}
	if dst.Len() != 6 || dst.CostUsed() != src.CostUsed() {
		t.Fatalf("imported cache has %d entries / cost %d, want 6 / %d", dst.Len(), dst.CostUsed(), src.CostUsed())
	}
	// Every positive entry must serve a hit with the original value.
	for i := 0; i < 5; i++ {
		v, hit, err := dst.Do(context.Background(), keyOf(i), func() (any, int64, error) {
			t.Fatalf("key %d recomputed after import", i)
			return nil, 0, nil
		})
		if err != nil || !hit || v != "v"+strconv.Itoa(i) {
			t.Fatalf("key %d: v=%v hit=%v err=%v", i, v, hit, err)
		}
	}
	// The negative entry must serve its rejection text without recompute.
	_, hit, err := dst.Do(context.Background(), keyOf(100), func() (any, int64, error) {
		t.Fatal("negative key recomputed after import")
		return nil, 0, nil
	})
	if !hit || err == nil || err.Error() != rejection.Error() {
		t.Fatalf("negative key: hit=%v err=%v", hit, err)
	}
	// Import must count hits like any committed entry did.
	if s := dst.Stats(); s.Hits != 6 || s.Misses != 0 {
		t.Fatalf("post-import stats %+v, want 6 hits / 0 misses", s)
	}
}

// TestSnapshotPreservesRecency checks the LRU order survives a
// round-trip: importing into a smaller budget must keep the most
// recently used entries and drop the cold ones.
func TestSnapshotPreservesRecency(t *testing.T) {
	src := New(0)
	fill(t, src, 10)
	// Touch key 0 so it becomes the most recent — the snapshot order is
	// recency, not insertion.
	if _, hit, _ := src.Do(context.Background(), keyOf(0), nil); !hit {
		t.Fatal("touch of key 0 missed")
	}

	var buf bytes.Buffer
	if _, _, err := src.Export(&buf, testEnc); err != nil {
		t.Fatal(err)
	}
	// Budget for 3 of the 10 entries: must keep the 3 hottest
	// (0 — just touched — then 9, then 8).
	dst := New(300)
	st, err := dst.Import(bytes.NewReader(buf.Bytes()), testDec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Loaded != 3 || st.SkippedBudget != 7 {
		t.Fatalf("import stats %+v, want 3 loaded / 7 budget-skipped", st)
	}
	for _, want := range []int{0, 9, 8} {
		if _, hit, _ := dst.Do(context.Background(), keyOf(want), nil); !hit {
			t.Errorf("hot key %d missing after budget-limited import", want)
		}
	}
	for _, cold := range []int{1, 2, 3} {
		recomputed := false
		dst.Do(context.Background(), keyOf(cold), func() (any, int64, error) { //nolint:errcheck
			recomputed = true
			return "fresh", 100, nil
		})
		if !recomputed {
			t.Errorf("cold key %d unexpectedly survived the budget cut", cold)
		}
	}
}

// TestExportDoesNotPerturb is the mid-traffic contract: exporting must
// change neither the counters nor the LRU eviction order of the live
// cache.
func TestExportDoesNotPerturb(t *testing.T) {
	c := New(500) // exactly 5 entries of cost 100
	fill(t, c, 5)
	before := c.Stats()

	var buf bytes.Buffer
	if _, _, err := c.Export(&buf, testEnc); err != nil {
		t.Fatal(err)
	}
	if after := c.Stats(); after != before {
		t.Fatalf("export perturbed stats: %+v -> %+v", before, after)
	}

	// One more commit must evict key 0 — the LRU victim an untouched
	// cache would pick. If Export had touched entries, the victim would
	// differ.
	if _, _, err := c.Do(context.Background(), keyOf(50), func() (any, int64, error) {
		return "new", 100, nil
	}); err != nil {
		t.Fatal(err)
	}
	evicted := false
	c.Do(context.Background(), keyOf(0), func() (any, int64, error) { //nolint:errcheck
		evicted = true
		return "v0", 100, nil
	})
	if !evicted {
		t.Fatal("post-export commit did not evict the pre-export LRU victim")
	}
	if s := c.Stats(); s.Evictions != before.Evictions+2 {
		// key 0 for the new commit, then key 1 for key 0's recompute.
		t.Fatalf("evictions %d, want %d", s.Evictions, before.Evictions+2)
	}
}

func TestImportSkipsExisting(t *testing.T) {
	src := New(0)
	fill(t, src, 3)
	var buf bytes.Buffer
	if _, _, err := src.Export(&buf, testEnc); err != nil {
		t.Fatal(err)
	}

	dst := New(0)
	// Pre-commit key 1 with a different value; the live entry must win.
	if _, _, err := dst.Do(context.Background(), keyOf(1), func() (any, int64, error) {
		return "live", 100, nil
	}); err != nil {
		t.Fatal(err)
	}
	st, err := dst.Import(bytes.NewReader(buf.Bytes()), testDec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Loaded != 2 || st.SkippedExisting != 1 {
		t.Fatalf("import stats %+v, want 2 loaded / 1 existing-skipped", st)
	}
	v, hit, _ := dst.Do(context.Background(), keyOf(1), nil)
	if !hit || v != "live" {
		t.Fatalf("live entry overwritten by import: v=%v hit=%v", v, hit)
	}
}

func TestImportRejectsDamage(t *testing.T) {
	src := New(0)
	fill(t, src, 3)
	var buf bytes.Buffer
	if _, _, err := src.Export(&buf, testEnc); err != nil {
		t.Fatal(err)
	}
	good := buf.Bytes()

	cases := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrSnapshotCorrupt},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, ErrSnapshotCorrupt},
		{"future version", func(b []byte) []byte {
			binary.LittleEndian.PutUint32(b[4:8], snapshotVersion+7)
			return b
		}, ErrSnapshotVersion},
		{"flipped payload byte", func(b []byte) []byte { b[len(b)/2] ^= 0x01; return b }, ErrSnapshotCorrupt},
		{"truncated", func(b []byte) []byte { return b[:len(b)-3] }, ErrSnapshotCorrupt},
		{"trailing garbage", func(b []byte) []byte { return append(b, 0xAB) }, ErrSnapshotCorrupt},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mut(append([]byte(nil), good...))
			dst := New(0)
			_, err := dst.Import(bytes.NewReader(data), testDec)
			if !errors.Is(err, tc.want) {
				t.Fatalf("got %v, want %v", err, tc.want)
			}
			if dst.Len() != 0 {
				t.Fatalf("damaged snapshot loaded %d entries into the cache", dst.Len())
			}
		})
	}
	// A version-flip breaks the checksum too; rewrite the CRC so the
	// version check is what actually fires.
	bad := append([]byte(nil), good...)
	binary.LittleEndian.PutUint32(bad[4:8], snapshotVersion+1)
	binary.LittleEndian.PutUint64(bad[len(bad)-8:], crc64.Checksum(bad[:len(bad)-8], crcTable))
	if _, err := New(0).Import(bytes.NewReader(bad), testDec); !errors.Is(err, ErrSnapshotVersion) {
		t.Fatalf("version mismatch reported %v, want ErrSnapshotVersion", err)
	}
}

// TestImportSkipsUndecodableValues: one bad payload must not poison the
// rest of the snapshot.
func TestImportSkipsUndecodableValues(t *testing.T) {
	src := New(0)
	fill(t, src, 4)
	var buf bytes.Buffer
	if _, _, err := src.Export(&buf, testEnc); err != nil {
		t.Fatal(err)
	}
	n := 0
	pickyDec := func(p []byte) (any, error) {
		n++
		if n == 2 {
			return nil, fmt.Errorf("codec: unsupported payload")
		}
		return string(p), nil
	}
	dst := New(0)
	st, err := dst.Import(bytes.NewReader(buf.Bytes()), pickyDec)
	if err != nil {
		t.Fatal(err)
	}
	if st.Loaded != 3 || st.SkippedDecode != 1 {
		t.Fatalf("import stats %+v, want 3 loaded / 1 decode-skipped", st)
	}
}

// FuzzImport: arbitrary bytes must never panic, over-allocate, or load
// entries into the cache unless the container round-trips its checksum.
func FuzzImport(f *testing.F) {
	src := New(0)
	for i := 0; i < 3; i++ {
		v := "v" + strconv.Itoa(i)
		src.Do(context.Background(), keyOf(i), func() (any, int64, error) { //nolint:errcheck
			return v, 100, nil
		})
	}
	var seed bytes.Buffer
	if _, _, err := src.Export(&seed, testEnc); err != nil {
		f.Fatal(err)
	}
	f.Add(seed.Bytes())
	f.Add(snapshotMagic[:])
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		c := New(0)
		st, err := c.Import(bytes.NewReader(data), testDec)
		if err != nil && c.Len() != 0 {
			t.Fatalf("failed import left %d entries in the cache", c.Len())
		}
		if err == nil && c.Len() != st.Loaded {
			t.Fatalf("import reported %d loaded but cache holds %d", st.Loaded, c.Len())
		}
	})
}

// TestExportSkipsUnencodableValues: values outside the caller codec drop
// out with a count, everything else still snapshots.
func TestExportSkipsUnencodableValues(t *testing.T) {
	c := New(0)
	fill(t, c, 2)
	if _, _, err := c.Do(context.Background(), keyOf(9), func() (any, int64, error) {
		return 12345, 100, nil // an int; testEnc only handles strings
	}); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	written, skipped, err := c.Export(&buf, testEnc)
	if err != nil {
		t.Fatal(err)
	}
	if written != 2 || skipped != 1 {
		t.Fatalf("export wrote %d / skipped %d, want 2 / 1", written, skipped)
	}
}
