// Package memo is a concurrency-safe, bounded, cost-aware result cache
// with in-flight deduplication — the serving-layer generalization of the
// per-solve guess memo that used to live inside the pipeline engine.
//
// A Cache maps fixed-size Keys to committed outcomes. An outcome is
// either positive (a value) or negative (a non-cancellation error);
// both are cached, because for the EPTAS guess pipeline a rejection is
// as deterministic — and as expensive to recompute — as an acceptance.
// The one kind of result that is never cached is a context
// cancellation: it describes the caller's impatience, not the key.
//
// # Singleflight
//
// Do deduplicates concurrent computations of one key: the first caller
// claims the key and runs the compute function, every later caller
// waits for that in-flight execution instead of starting a duplicate.
// If the claimant is canceled, the claim is abandoned and one of the
// waiters claims afresh, so a transient cancellation never poisons a
// key. These are exactly the wait semantics of the old engine slot,
// made explicit and tested here:
//
//   - commit: a completed compute (value or rejection error) is
//     published to all waiters and cached;
//   - abandon: a canceled compute wakes all waiters, each of which
//     retries the claim under its own context;
//   - waiters that observe a commit count as cache hits — they got an
//     outcome without paying for a pipeline run.
//
// # Bounding
//
// The cache is bounded by total cost (a caller-estimated byte count,
// see Do) rather than entry count, because pipeline results vary by
// orders of magnitude in footprint. When a commit pushes the total
// over MaxCost, least-recently-used committed entries are evicted
// until the cache fits; the entry being committed is never evicted by
// its own insertion, so the most recent result is always served.
// In-flight claims hold no cost and are never evicted (they are
// bounded by caller concurrency, not by the budget). A MaxCost <= 0
// disables bounding — that is the per-solve private configuration,
// where lifetime bounds the footprint instead.
//
// # Result transparency
//
// The cache stores outcomes by value and never mutates them; callers
// must treat cached values as immutable (the pipeline layer clones the
// one mutable slice before handing a cached schedule out). Under that
// contract a cache hit is bit-identical to the compute it replaced —
// the differential tests at the repository root prove it corpus-wide.
package memo

import (
	"context"
	"errors"
	"sync"
)

// Key identifies one cached outcome. Sig is the scaled-rounded instance
// signature (the per-guess identity within one solve context) and Aux
// is a hash of everything else that determines the outcome — the solver
// configuration and the instance's bag structure — so that one shared
// Cache can serve requests with different options without false
// sharing. Two keys are the same cache line iff both parts are equal.
type Key struct {
	// Sig identifies the scaled-rounded instance; see numeric.KeyOf.
	Sig Sig
	// Aux folds in the solve context: solver options and the bag vector.
	Aux uint64
}

// Sig is the fixed-size instance-signature half of a Key. It mirrors
// numeric.Key structurally so that the memo package does not import the
// numeric package (keys flow in from the pipeline layer, which owns the
// conversion).
type Sig struct {
	M, N   int32
	H0, H1 uint64
}

// Stats is a snapshot of the cache counters.
type Stats struct {
	// Hits counts Do calls served without running the compute function —
	// from a committed entry or by waiting out an in-flight twin.
	Hits int64
	// Misses counts Do calls that claimed their key and ran the compute
	// function (including claims later abandoned on cancellation).
	Misses int64
	// Waits counts the subset of Hits that waited for an in-flight
	// compute rather than finding a committed entry.
	Waits int64
	// Evictions counts committed entries evicted to fit MaxCost.
	Evictions int64
	// Entries is the current number of committed entries; Negative is
	// the subset caching a rejection error.
	Entries  int
	Negative int
	// Cost is the current total cost of committed entries; MaxCost is
	// the budget (0 = unbounded).
	Cost    int64
	MaxCost int64
}

// entry is one key's cache cell. The claimant that created it runs the
// compute; everyone else waits on done. All fields other than done are
// written by the claimant under the cache mutex before done is closed,
// and read under the mutex after done is closed. committed=false after
// done closes means the claimant was canceled and the cell abandoned
// (and removed from the map): the outcome is undecided and a waiter
// should claim afresh. A waiter holds the *entry across the wait, so a
// committed cell stays readable even if eviction removes it from the
// map in between.
type entry struct {
	key       Key
	done      chan struct{}
	committed bool
	value     any
	err       error
	cost      int64

	// LRU links; linked is true while the entry is on the eviction list
	// (committed and still in the map).
	prev, next *entry
	linked     bool
}

// Cache is a bounded memo; see the package documentation. The zero
// value is not usable — use New.
type Cache struct {
	mu      sync.Mutex
	maxCost int64
	cost    int64
	entries map[Key]*entry
	// LRU list of committed entries: head is most recently used, tail
	// is the eviction candidate.
	head, tail *entry
	stats      Stats
}

// New returns a cache bounded to maxCost total estimated bytes.
// maxCost <= 0 disables bounding (a private per-solve memo).
func New(maxCost int64) *Cache {
	if maxCost < 0 {
		maxCost = 0
	}
	return &Cache{
		maxCost: maxCost,
		entries: make(map[Key]*entry),
	}
}

// MaxCost reports the configured budget (0 = unbounded).
func (c *Cache) MaxCost() int64 { return c.maxCost }

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() Stats {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := c.stats
	s.Cost = c.cost
	s.MaxCost = c.maxCost
	return s
}

// Do returns the outcome for k, computing it at most once across all
// concurrent callers. fn computes the outcome and reports its retention
// cost in estimated bytes; fn's error is cached as a committed negative
// entry unless it is a context cancellation, in which case the claim is
// abandoned and the next caller recomputes. hit reports that the
// outcome was served without running fn in this call (committed entry
// or in-flight wait). A caller whose own ctx dies while waiting returns
// ctx.Err() without disturbing the in-flight compute.
//
// fn runs outside the cache lock; it must not call back into the same
// Cache with the same key.
func (c *Cache) Do(ctx context.Context, k Key, fn func() (value any, cost int64, err error)) (value any, hit bool, err error) {
	for {
		c.mu.Lock()
		e, ok := c.entries[k]
		if !ok {
			// Claim the key and compute. If fn panics (the claim branch
			// always returns, so this defer can only fire then), abandon
			// the claim exactly like a cancellation before repanicking —
			// otherwise an HTTP layer that recovers the panic would leave
			// the key claimed forever and every later caller wedged on
			// e.done.
			e = &entry{key: k, done: make(chan struct{})}
			c.entries[k] = e
			c.stats.Misses++
			c.mu.Unlock()
			finished := false
			defer func() {
				if finished {
					return
				}
				c.mu.Lock()
				delete(c.entries, k)
				c.mu.Unlock()
				close(e.done)
			}()
			v, cost, err := fn()
			finished = true
			c.mu.Lock()
			if IsCancellation(err) {
				// Abandon: wake waiters so one of them can claim afresh.
				delete(c.entries, k)
				c.mu.Unlock()
				close(e.done)
				return v, false, err
			}
			e.committed = true
			e.value, e.err, e.cost = v, err, cost
			c.link(e)
			c.cost += e.cost
			c.stats.Entries++
			if e.err != nil {
				c.stats.Negative++
			}
			c.evict(e)
			c.mu.Unlock()
			close(e.done)
			return v, false, err
		}
		if e.committed {
			c.stats.Hits++
			c.touch(e)
			v, err := e.value, e.err
			c.mu.Unlock()
			return v, true, err
		}
		c.mu.Unlock()

		// An execution is in flight; wait for its outcome instead of
		// running a duplicate.
		select {
		case <-e.done:
		case <-ctx.Done():
			return nil, false, ctx.Err()
		}
		c.mu.Lock()
		if e.committed {
			c.stats.Hits++
			c.stats.Waits++
			// The entry may have been evicted while we woke up; it is
			// still readable through our pointer either way.
			c.touch(e)
			v, err := e.value, e.err
			c.mu.Unlock()
			return v, true, err
		}
		c.mu.Unlock()
		// The claimant was canceled; try to claim afresh.
	}
}

// link inserts a committed entry at the LRU head.
func (c *Cache) link(e *entry) {
	e.linked = true
	e.prev = nil
	e.next = c.head
	if c.head != nil {
		c.head.prev = e
	}
	c.head = e
	if c.tail == nil {
		c.tail = e
	}
}

// unlink removes e from the LRU list.
func (c *Cache) unlink(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		c.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		c.tail = e.prev
	}
	e.prev, e.next = nil, nil
	e.linked = false
}

// touch moves a (possibly already evicted) committed entry to the LRU
// head.
func (c *Cache) touch(e *entry) {
	if !e.linked {
		return
	}
	if c.head == e {
		return
	}
	c.unlink(e)
	c.link(e)
}

// remove drops a committed entry from the map, the list and the cost
// account.
func (c *Cache) remove(e *entry) {
	c.unlink(e)
	delete(c.entries, e.key)
	c.cost -= e.cost
	c.stats.Entries--
	if e.err != nil {
		c.stats.Negative--
	}
}

// evict drops least-recently-used committed entries until the cache
// fits its budget, never evicting keep (the entry whose commit
// triggered the pass): the newest result is always served at least
// once.
func (c *Cache) evict(keep *entry) {
	if c.maxCost <= 0 {
		return
	}
	for c.cost > c.maxCost && c.tail != nil {
		victim := c.tail
		if victim == keep {
			return
		}
		c.remove(victim)
		c.stats.Evictions++
	}
}

// IsCancellation reports whether err came from a canceled or expired
// context; such outcomes describe the caller, not the key, and are
// never cached. It is exported because the serving layer's request
// coalescing applies the identical abandonment rule one layer up and
// the two predicates must stay in lockstep.
func IsCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}
