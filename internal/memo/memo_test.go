package memo

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
)

func key(i int) Key {
	return Key{Sig: Sig{M: 1, N: int32(i), H0: uint64(i), H1: ^uint64(i)}, Aux: 7}
}

// value wraps an int so cached values are pointers (like pipeline
// results) and identity can be asserted.
type value struct{ n int }

// mustDo runs Do and fails the test on error. A nil fn asserts the call
// must be served from cache (the compute path reports a test failure).
func mustDo(t *testing.T, c *Cache, k Key, fn func() (any, int64, error)) (*value, bool) {
	t.Helper()
	if fn == nil {
		fn = func() (any, int64, error) {
			t.Errorf("Do(%v) ran the compute function, expected a cache hit", k)
			return &value{-1}, 0, nil
		}
	}
	v, hit, err := c.Do(context.Background(), k, fn)
	if err != nil {
		t.Fatalf("Do(%v): unexpected error %v", k, err)
	}
	return v.(*value), hit
}

func TestDoMissThenHit(t *testing.T) {
	c := New(0)
	calls := 0
	fn := func() (any, int64, error) { calls++; return &value{42}, 100, nil }

	v1, hit := mustDo(t, c, key(1), fn)
	if hit {
		t.Fatalf("first Do reported a hit")
	}
	v2, hit := mustDo(t, c, key(1), fn)
	if !hit {
		t.Fatalf("second Do reported a miss")
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	if v1 != v2 {
		t.Fatalf("hit returned a different value pointer")
	}
	st := c.Stats()
	if st.Hits != 1 || st.Misses != 1 || st.Entries != 1 || st.Cost != 100 {
		t.Fatalf("stats = %+v, want 1 hit / 1 miss / 1 entry / cost 100", st)
	}
}

// TestNegativeEntryCommitted pins the error-path contract: a rejection
// (non-cancellation error) is cached as a committed negative entry and
// served to later callers without recomputing — it is not deleted.
func TestNegativeEntryCommitted(t *testing.T) {
	c := New(0)
	rejected := errors.New("guess rejected")
	calls := 0
	fn := func() (any, int64, error) { calls++; return nil, 16, rejected }

	_, hit, err := c.Do(context.Background(), key(1), fn)
	if !errors.Is(err, rejected) || hit {
		t.Fatalf("first Do = (%v, hit=%v), want the rejection as a miss", err, hit)
	}
	_, hit, err = c.Do(context.Background(), key(1), fn)
	if !errors.Is(err, rejected) {
		t.Fatalf("second Do error = %v, want the cached rejection", err)
	}
	if !hit {
		t.Fatalf("second Do recomputed a committed negative entry")
	}
	if calls != 1 {
		t.Fatalf("compute ran %d times, want 1", calls)
	}
	st := c.Stats()
	if st.Negative != 1 || st.Entries != 1 {
		t.Fatalf("stats = %+v, want exactly one (negative) entry", st)
	}
}

// TestCancellationNotCached pins the other half of the error-path
// contract: a cancellation outcome is abandoned, so the next caller
// recomputes under its own context.
func TestCancellationNotCached(t *testing.T) {
	c := New(0)
	calls := 0
	_, hit, err := c.Do(context.Background(), key(1), func() (any, int64, error) {
		calls++
		return nil, 0, context.Canceled
	})
	if !errors.Is(err, context.Canceled) || hit {
		t.Fatalf("canceled Do = (%v, hit=%v)", err, hit)
	}
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("canceled compute left %d entries", st.Entries)
	}
	v, hit := mustDo(t, c, key(1), func() (any, int64, error) {
		calls++
		return &value{7}, 8, nil
	})
	if hit || v.n != 7 || calls != 2 {
		t.Fatalf("recompute after abandonment: hit=%v v=%v calls=%d", hit, v, calls)
	}
}

func TestEvictionLRU(t *testing.T) {
	c := New(100)
	put := func(i int) { mustDo(t, c, key(i), func() (any, int64, error) { return &value{i}, 40, nil }) }
	put(1)
	put(2) // cost 80
	// Touch 1 so 2 becomes the LRU victim.
	if _, hit := mustDo(t, c, key(1), nil); !hit {
		t.Fatalf("touching key 1 missed")
	}
	put(3) // cost 120 > 100: evict 2
	st := c.Stats()
	if st.Evictions != 1 || st.Entries != 2 || st.Cost != 80 {
		t.Fatalf("stats after eviction = %+v, want 1 eviction, 2 entries, cost 80", st)
	}
	// Re-probe key 2 at zero cost so the probe itself cannot evict.
	if _, hit := mustDo(t, c, key(2), func() (any, int64, error) { return &value{2}, 0, nil }); hit {
		t.Fatalf("evicted key 2 still hit")
	}
	if _, hit := mustDo(t, c, key(1), nil); !hit {
		t.Fatalf("key 1 was evicted, want key 2")
	}
}

// TestEvictionNeverDropsNewest: an entry larger than the whole budget is
// still committed and served; eviction clears everything else instead.
func TestEvictionNeverDropsNewest(t *testing.T) {
	c := New(100)
	mustDo(t, c, key(1), func() (any, int64, error) { return &value{1}, 60, nil })
	mustDo(t, c, key(2), func() (any, int64, error) { return &value{2}, 500, nil })
	st := c.Stats()
	if st.Entries != 1 || st.Cost != 500 {
		t.Fatalf("stats = %+v, want only the oversized newest entry", st)
	}
	if _, hit := mustDo(t, c, key(2), nil); !hit {
		t.Fatalf("oversized newest entry was evicted by its own insertion")
	}
}

// TestPanicAbandonsClaim: a compute that panics must not leave the key
// claimed forever — the claim is abandoned (like a cancellation) before
// the panic propagates, so the next caller recomputes instead of
// wedging on the in-flight wait.
func TestPanicAbandonsClaim(t *testing.T) {
	c := New(0)
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate out of Do")
			}
		}()
		c.Do(context.Background(), key(1), func() (any, int64, error) { panic("solver bug") })
	}()
	if st := c.Stats(); st.Entries != 0 {
		t.Fatalf("panicked compute left %d entries", st.Entries)
	}
	v, hit := mustDo(t, c, key(1), func() (any, int64, error) { return &value{3}, 1, nil })
	if hit || v.n != 3 {
		t.Fatalf("recompute after panic: hit=%v v=%+v", hit, v)
	}
}

// TestSingleflight hammers one key from many goroutines: the compute
// must run exactly once, and every caller must observe the same value.
func TestSingleflight(t *testing.T) {
	c := New(0)
	var calls atomic.Int64
	gate := make(chan struct{})
	const workers = 32
	var wg sync.WaitGroup
	results := make([]*value, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			<-gate
			v, _, err := c.Do(context.Background(), key(1), func() (any, int64, error) {
				calls.Add(1)
				return &value{99}, 1, nil
			})
			if err != nil {
				t.Errorf("worker %d: %v", w, err)
				return
			}
			results[w] = v.(*value)
		}(w)
	}
	close(gate)
	wg.Wait()
	if n := calls.Load(); n != 1 {
		t.Fatalf("compute ran %d times under contention, want 1", n)
	}
	for w, v := range results {
		if v != results[0] {
			t.Fatalf("worker %d observed a different value", w)
		}
	}
	st := c.Stats()
	if st.Hits+st.Misses != workers || st.Misses != 1 {
		t.Fatalf("stats = %+v, want %d lookups with exactly 1 miss", st, workers)
	}
}

// TestWaiterReclaimsAbandonedSlot: a waiter blocked on a claimant that
// gets canceled must claim afresh and compute, not observe the
// cancellation.
func TestWaiterReclaimsAbandonedSlot(t *testing.T) {
	c := New(0)
	claimed := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.Do(context.Background(), key(1), func() (any, int64, error) {
			close(claimed)
			<-release
			return nil, 0, context.Canceled
		})
	}()
	<-claimed
	done := make(chan *value)
	go func() {
		v, _, err := c.Do(context.Background(), key(1), func() (any, int64, error) {
			return &value{5}, 1, nil
		})
		if err != nil {
			t.Errorf("waiter: %v", err)
		}
		done <- v.(*value)
	}()
	close(release)
	if v := <-done; v == nil || v.n != 5 {
		t.Fatalf("waiter got %v, want recomputed value 5", v)
	}
}

// TestWaiterContextCancel: a waiter whose own context dies returns its
// ctx error promptly and leaves the in-flight compute untouched.
func TestWaiterContextCancel(t *testing.T) {
	c := New(0)
	claimed := make(chan struct{})
	release := make(chan struct{})
	go func() {
		c.Do(context.Background(), key(1), func() (any, int64, error) {
			close(claimed)
			<-release
			return &value{1}, 1, nil
		})
	}()
	<-claimed
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, hit, err := c.Do(ctx, key(1), nil)
	if !errors.Is(err, context.Canceled) || hit {
		t.Fatalf("canceled waiter = (%v, hit=%v), want ctx.Canceled miss", err, hit)
	}
	close(release)
	if v, hit := mustDo(t, c, key(1), nil); !hit || v.n != 1 {
		t.Fatalf("claimant's commit lost after waiter cancellation")
	}
}

// TestConcurrentDistinctKeys exercises the LRU under racing inserts and
// evictions; run with -race.
func TestConcurrentDistinctKeys(t *testing.T) {
	c := New(50 * 16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				k := key(i % 100)
				v, _, err := c.Do(context.Background(), k, func() (any, int64, error) {
					return &value{i % 100}, 16, nil
				})
				if err != nil {
					t.Errorf("worker %d: %v", w, err)
					return
				}
				if got := v.(*value).n; got != i%100 {
					t.Errorf("worker %d: key %d returned value %d", w, i%100, got)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := c.Stats()
	if st.Cost > c.MaxCost() {
		t.Fatalf("cost %d exceeds budget %d", st.Cost, st.MaxCost)
	}
	if st.Evictions == 0 {
		t.Fatalf("expected evictions under a tight budget, stats %+v", st)
	}
}

func TestNewClampsNegativeBudget(t *testing.T) {
	if got := New(-5).MaxCost(); got != 0 {
		t.Fatalf("MaxCost = %d, want 0 (unbounded)", got)
	}
}

func ExampleCache_Do() {
	c := New(1 << 20)
	k := Key{Aux: 1}
	compute := func() (any, int64, error) { return "expensive", 9, nil }
	v, hit, _ := c.Do(context.Background(), k, compute)
	fmt.Println(v, hit)
	v, hit, _ = c.Do(context.Background(), k, compute)
	fmt.Println(v, hit)
	// Output:
	// expensive false
	// expensive true
}
