package memo

// Snapshot format: a versioned, checksummed serialization of a cache's
// committed entries (positive and negative), so a replica can persist
// its warm state on graceful shutdown, warm-start on boot, or ship the
// file to a peer. Entries are location-independent by construction —
// a Key is a pure function of the scaled-rounded instance signature and
// the solve configuration, never of the process that computed it — so a
// snapshot written by one replica is valid input for any other replica
// running the same code.
//
// The cache stores values as opaque `any`, so serialization is split:
// this package owns the container (header, per-entry framing, ordering,
// checksum) and the caller supplies the value codec (the pipeline layer
// encodes its Result in exact fixed-point/integer payloads). Negative
// entries need no caller codec — the error text is the payload.
//
// # Layout
//
//	magic   "bgms" (4 bytes)
//	version uint32 little-endian (currently 1)
//	count   uint32 little-endian
//	count records:
//	  key     M, N int32; H0, H1, Aux uint64 (little-endian)
//	  cost    int64
//	  kind    byte (0 positive, 1 negative)
//	  payload uint32 length + bytes (codec output, or error text)
//	crc     uint64 little-endian CRC-64/ECMA of everything before it
//
// Records are ordered least-recently-used first, so an importer that
// links each record at the LRU head reproduces the exporter's recency
// order, and an importer with a smaller budget keeps the hottest
// suffix.
//
// # Versioning contract
//
// The container version changes only when this layout changes; value
// payloads carry their own codec version (first payload byte, owned by
// the caller's codec). A reader rejects unknown container versions with
// ErrSnapshotVersion and any framing or checksum damage with
// ErrSnapshotCorrupt — callers treat both as "skip the snapshot and
// start cold", never as fatal. An entry whose payload the value codec
// rejects is skipped individually; the rest of the snapshot still
// loads.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc64"
	"io"
)

// snapshotMagic and snapshotVersion identify the container format.
var snapshotMagic = [4]byte{'b', 'g', 'm', 's'}

const snapshotVersion = 1

// Sanity bounds applied while parsing untrusted snapshot bytes; both are
// far above anything a real cache produces but keep a corrupt or
// adversarial length field from driving huge allocations before the
// checksum verdict is in.
const (
	maxSnapshotEntries = 1 << 24
	maxPayloadBytes    = 1 << 28
)

// ErrSnapshotVersion reports a snapshot written by an unknown container
// version; ErrSnapshotCorrupt reports framing or checksum damage.
// Callers are expected to log and start cold on either.
var (
	ErrSnapshotVersion = errors.New("memo: unsupported snapshot version")
	ErrSnapshotCorrupt = errors.New("memo: corrupt snapshot")
)

var crcTable = crc64.MakeTable(crc64.ECMA)

// Len reports the number of committed entries (in-flight claims are not
// counted).
func (c *Cache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.stats.Entries
}

// CostUsed reports the current total cost of committed entries.
func (c *Cache) CostUsed() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.cost
}

// exported is the under-lock copy of one committed entry taken by
// Export: everything needed to serialize the entry after the lock is
// released. value is referenced, not copied — cached values are
// immutable by the package contract, so reading them outside the lock
// is safe.
type exported struct {
	key   Key
	cost  int64
	value any
	err   error
}

// Export writes a snapshot of every committed entry to w. enc encodes a
// positive entry's value; returning ok=false skips that entry (a value
// the caller's codec does not cover), which is counted in the returned
// skipped total. Negative entries are serialized as their error text
// and need no codec.
//
// Export observes the cache under its lock only long enough to copy the
// entry list (keys, costs and value references) — encoding and I/O all
// happen outside the lock, so a snapshot of a large cache never stalls
// concurrent solvers. Exporting is read-only: it does not touch LRU
// recency order and perturbs no counter, so a mid-traffic export is
// invisible to cache behaviour (unit-tested).
func (c *Cache) Export(w io.Writer, enc func(value any) ([]byte, bool)) (written, skipped int, err error) {
	c.mu.Lock()
	entries := make([]exported, 0, c.stats.Entries)
	// Tail (least recently used) first; see the layout notes above.
	for e := c.tail; e != nil; e = e.prev {
		entries = append(entries, exported{key: e.key, cost: e.cost, value: e.value, err: e.err})
	}
	c.mu.Unlock()

	// Encode values first: entries the codec cannot express drop out of
	// the count before the header is written.
	type record struct {
		exported
		payload []byte
		neg     bool
	}
	records := make([]record, 0, len(entries))
	for _, e := range entries {
		r := record{exported: e}
		if e.err != nil {
			r.neg = true
			r.payload = []byte(e.err.Error())
		} else {
			p, ok := enc(e.value)
			if !ok {
				skipped++
				continue
			}
			r.payload = p
		}
		if len(r.payload) > maxPayloadBytes {
			skipped++
			continue
		}
		records = append(records, r)
	}

	cw := &crcWriter{w: w}
	buf := make([]byte, 0, 64)
	buf = append(buf, snapshotMagic[:]...)
	buf = binary.LittleEndian.AppendUint32(buf, snapshotVersion)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(records)))
	if _, err := cw.Write(buf); err != nil {
		return 0, skipped, err
	}
	for _, r := range records {
		buf = buf[:0]
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.key.Sig.M))
		buf = binary.LittleEndian.AppendUint32(buf, uint32(r.key.Sig.N))
		buf = binary.LittleEndian.AppendUint64(buf, r.key.Sig.H0)
		buf = binary.LittleEndian.AppendUint64(buf, r.key.Sig.H1)
		buf = binary.LittleEndian.AppendUint64(buf, r.key.Aux)
		buf = binary.LittleEndian.AppendUint64(buf, uint64(r.cost))
		if r.neg {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r.payload)))
		if _, err := cw.Write(buf); err != nil {
			return 0, skipped, err
		}
		if _, err := cw.Write(r.payload); err != nil {
			return 0, skipped, err
		}
	}
	var foot [8]byte
	binary.LittleEndian.PutUint64(foot[:], cw.sum)
	if _, err := w.Write(foot[:]); err != nil {
		return 0, skipped, err
	}
	return len(records), skipped, nil
}

// crcWriter forwards to w while accumulating a CRC-64/ECMA of every
// byte written through it.
type crcWriter struct {
	w   io.Writer
	sum uint64
}

func (c *crcWriter) Write(p []byte) (int, error) {
	n, err := c.w.Write(p)
	c.sum = crc64.Update(c.sum, crcTable, p[:n])
	return n, err
}

// ImportStats reports what Import did with a snapshot.
type ImportStats struct {
	// Loaded is the number of entries committed into the cache;
	// LoadedNegative is the subset caching a rejection.
	Loaded         int
	LoadedNegative int
	// SkippedExisting counts entries whose key was already present (the
	// live entry wins), SkippedBudget entries dropped because the cache
	// budget could not fit them (the coldest entries drop first), and
	// SkippedDecode entries whose payload the value codec rejected.
	SkippedExisting int
	SkippedBudget   int
	SkippedDecode   int
}

// Skipped is the total number of snapshot entries not loaded.
func (s ImportStats) Skipped() int {
	return s.SkippedExisting + s.SkippedBudget + s.SkippedDecode
}

// Import loads a snapshot written by Export into the cache. dec decodes
// a positive entry's payload back into a cache value; an entry dec
// rejects is skipped, not fatal. A snapshot from an unknown container
// version fails with ErrSnapshotVersion, framing or checksum damage
// with ErrSnapshotCorrupt; in both cases the cache is left untouched.
//
// Entries already present in the cache are skipped (the live state
// wins). When the snapshot does not fit the cache budget the
// least-recently-used entries are dropped first, so a replica with a
// smaller budget inherits the hottest slice of a bigger one's state.
// Like Export, Import never holds the cache lock across I/O or
// decoding: the snapshot is parsed and decoded first, then committed
// under one short critical section.
func (c *Cache) Import(r io.Reader, dec func(payload []byte) (value any, err error)) (ImportStats, error) {
	var st ImportStats
	data, err := io.ReadAll(r)
	if err != nil {
		return st, err
	}
	if len(data) < 20 {
		return st, fmt.Errorf("%w: truncated header (%d bytes)", ErrSnapshotCorrupt, len(data))
	}
	if [4]byte(data[:4]) != snapshotMagic {
		return st, fmt.Errorf("%w: bad magic", ErrSnapshotCorrupt)
	}
	if v := binary.LittleEndian.Uint32(data[4:8]); v != snapshotVersion {
		return st, fmt.Errorf("%w: got %d, want %d", ErrSnapshotVersion, v, snapshotVersion)
	}
	body, foot := data[:len(data)-8], data[len(data)-8:]
	if crc64.Checksum(body, crcTable) != binary.LittleEndian.Uint64(foot) {
		return st, fmt.Errorf("%w: checksum mismatch", ErrSnapshotCorrupt)
	}
	count := binary.LittleEndian.Uint32(body[8:12])
	if count > maxSnapshotEntries {
		return st, fmt.Errorf("%w: implausible entry count %d", ErrSnapshotCorrupt, count)
	}

	type record struct {
		key   Key
		cost  int64
		value any
		err   error
	}
	records := make([]record, 0, count)
	off := 12
	for i := uint32(0); i < count; i++ {
		// key (32) + cost (8) + kind (1) + payload length (4).
		if len(body)-off < 45 {
			return st, fmt.Errorf("%w: truncated record %d", ErrSnapshotCorrupt, i)
		}
		var rec record
		rec.key.Sig.M = int32(binary.LittleEndian.Uint32(body[off:]))
		rec.key.Sig.N = int32(binary.LittleEndian.Uint32(body[off+4:]))
		rec.key.Sig.H0 = binary.LittleEndian.Uint64(body[off+8:])
		rec.key.Sig.H1 = binary.LittleEndian.Uint64(body[off+16:])
		rec.key.Aux = binary.LittleEndian.Uint64(body[off+24:])
		rec.cost = int64(binary.LittleEndian.Uint64(body[off+32:]))
		kind := body[off+40]
		plen := binary.LittleEndian.Uint32(body[off+41:])
		off += 45
		if plen > maxPayloadBytes || len(body)-off < int(plen) {
			return st, fmt.Errorf("%w: truncated payload in record %d", ErrSnapshotCorrupt, i)
		}
		payload := body[off : off+int(plen)]
		off += int(plen)
		switch kind {
		case 0:
			v, err := dec(payload)
			if err != nil {
				st.SkippedDecode++
				continue
			}
			rec.value = v
		case 1:
			// Reconstructed rejections lose their concrete error type but
			// keep their text; the solver layers only branch on nil-ness
			// (and on cancellation, which is never snapshotted), so this
			// is behaviour-preserving.
			rec.err = errors.New(string(payload))
		default:
			return st, fmt.Errorf("%w: unknown entry kind %d in record %d", ErrSnapshotCorrupt, kind, i)
		}
		if rec.cost < 0 {
			st.SkippedDecode++
			continue
		}
		records = append(records, rec)
	}
	if off != len(body) {
		return st, fmt.Errorf("%w: %d trailing bytes", ErrSnapshotCorrupt, len(body)-off)
	}

	// Budget pass: records are coldest-first, so when they cannot all
	// fit, drop the leading (cold) prefix and keep the hot suffix.
	start := 0
	if c.maxCost > 0 {
		var need int64
		for _, rec := range records {
			need += rec.cost
		}
		for start < len(records) && need > c.maxCost {
			need -= records[start].cost
			st.SkippedBudget++
			start++
		}
	}

	c.mu.Lock()
	for _, rec := range records[start:] {
		if _, ok := c.entries[rec.key]; ok {
			st.SkippedExisting++
			continue
		}
		e := &entry{
			key:       rec.key,
			done:      closedChan,
			committed: true,
			value:     rec.value,
			err:       rec.err,
			cost:      rec.cost,
		}
		c.entries[rec.key] = e
		c.link(e)
		c.cost += e.cost
		c.stats.Entries++
		if e.err != nil {
			c.stats.Negative++
		}
		st.Loaded++
		if rec.err != nil {
			st.LoadedNegative++
		}
	}
	// Imported entries count toward the budget like any commit; if live
	// traffic raced a concurrent commit past the budget, trim back to it
	// (the entries just linked at the head are the last to go).
	if c.maxCost > 0 {
		c.evict(nil)
	}
	c.mu.Unlock()
	return st, nil
}

// closedChan is the done channel of entries that were never in flight:
// imported entries are born committed.
var closedChan = func() chan struct{} {
	ch := make(chan struct{})
	close(ch)
	return ch
}()
