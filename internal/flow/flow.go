// Package flow implements Dinic's maximum-flow algorithm with integer
// capacities and per-edge flow readout.
//
// The EPTAS uses it to realize Lemma 3 of the paper constructively: the
// dropped medium jobs of non-priority bags are inserted back into a
// schedule by computing an integral maximum flow on a bag-to-machine
// assignment network, which is exactly the integral flow whose existence
// the paper's proof invokes.
package flow

import "fmt"

// Edge is one directed arc of the network.
type Edge struct {
	From, To int
	Cap      int
	flow     int
	rev      int // index of reverse edge in adj[To]
	idx      int // index in edges list
}

// Flow returns the current flow on the edge (after MaxFlow).
func (e *Edge) Flow() int { return e.flow }

// Graph is a flow network. Create with NewGraph, add edges, then call
// MaxFlow once.
type Graph struct {
	n     int
	adj   [][]*Edge
	edges []*Edge
}

// NewGraph returns a network with n nodes labelled 0..n-1.
func NewGraph(n int) *Graph {
	return &Graph{n: n, adj: make([][]*Edge, n)}
}

// NumNodes returns the number of nodes.
func (g *Graph) NumNodes() int { return g.n }

// AddEdge adds a directed edge with the given capacity and returns its
// handle, which can be queried for flow after MaxFlow.
func (g *Graph) AddEdge(from, to, capacity int) (*Edge, error) {
	if from < 0 || from >= g.n || to < 0 || to >= g.n {
		return nil, fmt.Errorf("flow: edge (%d,%d) outside [0,%d)", from, to, g.n)
	}
	if capacity < 0 {
		return nil, fmt.Errorf("flow: negative capacity %d", capacity)
	}
	fwd := &Edge{From: from, To: to, Cap: capacity}
	bwd := &Edge{From: to, To: from, Cap: 0}
	fwd.rev = len(g.adj[to])
	bwd.rev = len(g.adj[from])
	g.adj[from] = append(g.adj[from], fwd)
	g.adj[to] = append(g.adj[to], bwd)
	fwd.idx = len(g.edges)
	g.edges = append(g.edges, fwd)
	return fwd, nil
}

// MaxFlow computes the maximum s-t flow and returns its value. Edge flows
// are available afterwards via Edge.Flow.
func (g *Graph) MaxFlow(s, t int) (int, error) {
	if s < 0 || s >= g.n || t < 0 || t >= g.n {
		return 0, fmt.Errorf("flow: terminal outside [0,%d)", g.n)
	}
	if s == t {
		return 0, fmt.Errorf("flow: source equals sink")
	}
	total := 0
	level := make([]int, g.n)
	iter := make([]int, g.n)
	queue := make([]int, 0, g.n)
	for g.bfs(s, t, level, &queue) {
		for i := range iter {
			iter[i] = 0
		}
		for {
			f := g.dfs(s, t, int(^uint(0)>>1), level, iter)
			if f == 0 {
				break
			}
			total += f
		}
	}
	return total, nil
}

// bfs builds the level graph; returns whether t is reachable.
func (g *Graph) bfs(s, t int, level []int, queue *[]int) bool {
	for i := range level {
		level[i] = -1
	}
	q := (*queue)[:0]
	level[s] = 0
	q = append(q, s)
	for len(q) > 0 {
		u := q[0]
		q = q[1:]
		for _, e := range g.adj[u] {
			if e.Cap-e.flow > 0 && level[e.To] < 0 {
				level[e.To] = level[u] + 1
				q = append(q, e.To)
			}
		}
	}
	*queue = q
	return level[t] >= 0
}

// dfs sends a blocking-flow augmenting path.
func (g *Graph) dfs(u, t, f int, level, iter []int) int {
	if u == t {
		return f
	}
	for ; iter[u] < len(g.adj[u]); iter[u]++ {
		e := g.adj[u][iter[u]]
		if e.Cap-e.flow <= 0 || level[e.To] != level[u]+1 {
			continue
		}
		d := g.dfs(e.To, t, min(f, e.Cap-e.flow), level, iter)
		if d > 0 {
			e.flow += d
			g.adj[e.To][e.rev].flow -= d
			return d
		}
	}
	return 0
}

// Edges returns all forward edges in insertion order.
func (g *Graph) Edges() []*Edge { return g.edges }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
