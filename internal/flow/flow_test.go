package flow

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func mustEdge(t *testing.T, g *Graph, u, v, c int) *Edge {
	t.Helper()
	e, err := g.AddEdge(u, v, c)
	if err != nil {
		t.Fatal(err)
	}
	return e
}

func TestSimplePath(t *testing.T) {
	g := NewGraph(3)
	mustEdge(t, g, 0, 1, 5)
	mustEdge(t, g, 1, 2, 3)
	got, err := g.MaxFlow(0, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 {
		t.Errorf("flow = %d, want 3", got)
	}
}

func TestClassicDiamond(t *testing.T) {
	// s=0, t=3; two paths with a cross edge.
	g := NewGraph(4)
	mustEdge(t, g, 0, 1, 10)
	mustEdge(t, g, 0, 2, 10)
	mustEdge(t, g, 1, 3, 10)
	mustEdge(t, g, 2, 3, 10)
	mustEdge(t, g, 1, 2, 1)
	got, err := g.MaxFlow(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 20 {
		t.Errorf("flow = %d, want 20", got)
	}
}

func TestDisconnected(t *testing.T) {
	g := NewGraph(4)
	mustEdge(t, g, 0, 1, 5)
	mustEdge(t, g, 2, 3, 5)
	got, err := g.MaxFlow(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if got != 0 {
		t.Errorf("flow = %d, want 0", got)
	}
}

func TestEdgeFlowsDecompose(t *testing.T) {
	g := NewGraph(4)
	e1 := mustEdge(t, g, 0, 1, 7)
	e2 := mustEdge(t, g, 0, 2, 4)
	e3 := mustEdge(t, g, 1, 3, 5)
	e4 := mustEdge(t, g, 2, 3, 9)
	total, err := g.MaxFlow(0, 3)
	if err != nil {
		t.Fatal(err)
	}
	if total != 9 {
		t.Fatalf("flow = %d, want 9", total)
	}
	if e1.Flow()+e2.Flow() != total || e3.Flow()+e4.Flow() != total {
		t.Errorf("edge flows inconsistent: %d %d %d %d", e1.Flow(), e2.Flow(), e3.Flow(), e4.Flow())
	}
	if e1.Flow() > 7 || e2.Flow() > 4 || e3.Flow() > 5 || e4.Flow() > 9 {
		t.Error("capacity violated")
	}
}

func TestBipartiteMatching(t *testing.T) {
	// 3x3 bipartite; perfect matching exists.
	// Left 1..3, right 4..6, s=0, t=7.
	g := NewGraph(8)
	for l := 1; l <= 3; l++ {
		mustEdge(t, g, 0, l, 1)
		mustEdge(t, g, l+3, 7, 1)
	}
	pairs := [][2]int{{1, 4}, {1, 5}, {2, 4}, {3, 6}}
	for _, p := range pairs {
		mustEdge(t, g, p[0], p[1], 1)
	}
	got, err := g.MaxFlow(0, 7)
	if err != nil {
		t.Fatal(err)
	}
	if got != 3 { // 1-5, 2-4, 3-6
		t.Errorf("matching = %d, want 3", got)
	}
}

func TestErrors(t *testing.T) {
	g := NewGraph(2)
	if _, err := g.AddEdge(0, 5, 1); err == nil {
		t.Error("expected out-of-range error")
	}
	if _, err := g.AddEdge(0, 1, -1); err == nil {
		t.Error("expected negative-capacity error")
	}
	if _, err := g.MaxFlow(0, 0); err == nil {
		t.Error("expected s==t error")
	}
	if _, err := g.MaxFlow(0, 9); err == nil {
		t.Error("expected terminal range error")
	}
}

// TestRandomVsBruteForceMinCut verifies max-flow == min-cut on random
// small graphs by enumerating all s-t cuts.
func TestRandomVsBruteForceMinCut(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 4 + rng.Intn(3) // 4..6 nodes
		g := NewGraph(n)
		type edge struct{ u, v, c int }
		var edges []edge
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.45 {
					c := rng.Intn(8)
					if _, err := g.AddEdge(u, v, c); err != nil {
						return false
					}
					edges = append(edges, edge{u, v, c})
				}
			}
		}
		s, tt := 0, n-1
		got, err := g.MaxFlow(s, tt)
		if err != nil {
			return false
		}
		// Min cut by enumerating subsets containing s but not t.
		best := 1 << 30
		for mask := 0; mask < 1<<n; mask++ {
			if mask&(1<<s) == 0 || mask&(1<<tt) != 0 {
				continue
			}
			cut := 0
			for _, e := range edges {
				if mask&(1<<e.u) != 0 && mask&(1<<e.v) == 0 {
					cut += e.c
				}
			}
			if cut < best {
				best = cut
			}
		}
		return got == best
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestFlowConservation checks that after MaxFlow every internal node has
// balanced in/out flow.
func TestFlowConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 50; trial++ {
		n := 5 + rng.Intn(4)
		g := NewGraph(n)
		for u := 0; u < n; u++ {
			for v := 0; v < n; v++ {
				if u != v && rng.Float64() < 0.4 {
					if _, err := g.AddEdge(u, v, rng.Intn(10)); err != nil {
						t.Fatal(err)
					}
				}
			}
		}
		if _, err := g.MaxFlow(0, n-1); err != nil {
			t.Fatal(err)
		}
		net := make([]int, n)
		for _, e := range g.Edges() {
			net[e.From] -= e.Flow()
			net[e.To] += e.Flow()
			if e.Flow() < 0 || e.Flow() > e.Cap {
				t.Fatalf("edge flow %d outside [0,%d]", e.Flow(), e.Cap)
			}
		}
		for v := 1; v < n-1; v++ {
			if net[v] != 0 {
				t.Fatalf("node %d unbalanced: %d", v, net[v])
			}
		}
	}
}
