package round

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sched"
)

func TestUpGeometricBasics(t *testing.T) {
	tests := []struct {
		size, eps float64
	}{
		{1, 0.5}, {0.3, 0.5}, {2.7, 0.5}, {1e-4, 0.5}, {1, 0.1}, {7.3, 0.25},
	}
	for _, tt := range tests {
		v, e := UpGeometric(tt.size, tt.eps)
		if v < tt.size-1e-12 {
			t.Errorf("UpGeometric(%g,%g) = %g below input", tt.size, tt.eps, v)
		}
		if v > tt.size*(1+tt.eps)+1e-9 {
			t.Errorf("UpGeometric(%g,%g) = %g exceeds (1+eps)*size", tt.size, tt.eps, v)
		}
		if math.Abs(Value(e, tt.eps)-v) > 1e-12 {
			t.Errorf("exponent mismatch for %g", tt.size)
		}
	}
}

func TestUpGeometricExactPower(t *testing.T) {
	// An exact power of (1+eps) must round to itself.
	eps := 0.5
	for e := -5; e <= 5; e++ {
		p := Value(e, eps)
		v, ge := UpGeometric(p, eps)
		if ge != e || math.Abs(v-p) > 1e-12 {
			t.Errorf("power %g rounded to %g (exp %d, want %d)", p, v, ge, e)
		}
	}
}

// Property: size <= rounded <= size*(1+eps), and rounding is monotone.
func TestUpGeometricProperty(t *testing.T) {
	prop := func(rawA, rawB float64, rawEps float64) bool {
		a := math.Abs(rawA)
		b := math.Abs(rawB)
		if a < 1e-9 || a > 1e9 || b < 1e-9 || b > 1e9 {
			return true
		}
		eps := 0.05 + math.Mod(math.Abs(rawEps), 0.9)
		va, _ := UpGeometric(a, eps)
		vb, _ := UpGeometric(b, eps)
		if va < a-1e-12 || va > a*(1+eps)*(1+1e-9) {
			return false
		}
		if a <= b && va > vb+1e-12 {
			return false // monotone
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestScaleRoundPreservesStructure(t *testing.T) {
	in := sched.NewInstance(3)
	in.AddJob(3, 0)
	in.AddJob(1.2, 1)
	in.AddJob(0.4, 1)
	out, exps := ScaleRound(in, 3, 0.5)
	if len(out.Jobs) != 3 || out.Machines != 3 || out.NumBags != in.NumBags {
		t.Fatal("structure changed")
	}
	if len(exps) != 3 {
		t.Fatal("exponents missing")
	}
	for i, j := range out.Jobs {
		want := in.Jobs[i].Size / 3
		if j.Size < want-1e-12 || j.Size > want*1.5+1e-9 {
			t.Errorf("job %d: scaled size %g not in [%g, %g]", i, j.Size, want, want*1.5)
		}
		if j.Bag != in.Jobs[i].Bag || j.ID != in.Jobs[i].ID {
			t.Errorf("job %d identity changed", i)
		}
	}
	// Original untouched.
	if in.Jobs[0].Size != 3 {
		t.Error("ScaleRound mutated its input")
	}
}

func TestSearchFindsThreshold(t *testing.T) {
	// Decision succeeds iff guess >= 7.3; search should converge there.
	calls := 0
	dec := func(g float64) (*sched.Schedule, bool) {
		calls++
		if g >= 7.3 {
			in := sched.NewInstance(1)
			in.AddJob(g, 0) // makespan equals the guess for bookkeeping
			s := sched.NewSchedule(in)
			s.Machine[0] = 0
			return s, true
		}
		return nil, false
	}
	res := Search(1, 20, 0.01, 100, dec)
	if res.Schedule == nil {
		t.Fatal("no schedule found")
	}
	if res.FinalGuess < 7.3-1e-9 || res.FinalGuess > 7.5 {
		t.Errorf("final guess = %g, want ~7.3", res.FinalGuess)
	}
	if calls != res.Guesses {
		t.Errorf("guesses = %d, calls = %d", res.Guesses, calls)
	}
}

func TestSearchKeepsBestSchedule(t *testing.T) {
	// Decision returns schedules whose makespan improves as the guess
	// drops; the best (smallest) must be kept.
	best := math.Inf(1)
	dec := func(g float64) (*sched.Schedule, bool) {
		in := sched.NewInstance(1)
		in.AddJob(g, 0)
		s := sched.NewSchedule(in)
		s.Machine[0] = 0
		if g < best {
			best = g
		}
		return s, true
	}
	res := Search(2, 10, 0.01, 100, dec)
	if math.Abs(res.Makespan-best) > 1e-9 {
		t.Errorf("kept makespan %g, best seen %g", res.Makespan, best)
	}
}

func TestSearchAllReject(t *testing.T) {
	dec := func(g float64) (*sched.Schedule, bool) { return nil, false }
	res := Search(1, 2, 0.1, 20, dec)
	if res.Schedule != nil {
		t.Error("expected nil schedule when every guess is rejected")
	}
}

func TestSearchRespectsMaxGuesses(t *testing.T) {
	calls := 0
	dec := func(g float64) (*sched.Schedule, bool) {
		calls++
		return nil, false
	}
	Search(1, 1e9, 1e-12, 5, dec)
	if calls > 5 {
		t.Errorf("calls = %d, want <= 5", calls)
	}
}

func TestSearchConvergesWithinSteps(t *testing.T) {
	// Interval length 16, step 1: at most ~5 bisections after the UB probe.
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 20; trial++ {
		threshold := 1 + rng.Float64()*15
		dec := func(g float64) (*sched.Schedule, bool) {
			if g >= threshold {
				in := sched.NewInstance(1)
				in.AddJob(g, 0)
				s := sched.NewSchedule(in)
				s.Machine[0] = 0
				return s, true
			}
			return nil, false
		}
		res := Search(1, 17, 1, 100, dec)
		if res.Schedule == nil {
			t.Fatalf("trial %d: no schedule", trial)
		}
		if res.FinalGuess > threshold+1+1e-9 {
			t.Errorf("trial %d: final %g, threshold %g (not within step)", trial, res.FinalGuess, threshold)
		}
	}
}
