package round

import (
	"context"
	"math"

	"repro/internal/sched"
)

// This file implements the guess-grid binary search the solver core
// drives since the incremental re-solve work. Makespan guesses are
// quantized onto an absolute geometric grid
//
//	g(k) = ratio^k,  ratio = GridRatio(eps) = 1 + eps/4
//
// anchored at 1 and independent of the instance's [lb, ub] interval.
// The quantization buys two properties the float-interval driver in
// spec.go cannot offer:
//
//   - Canonical guesses. Every solve of every instance evaluates the
//     same guess values, so cross-solve memo entries (internal/memo)
//     can be reused by an incremental re-solve: a delta that leaves a
//     guess's scaled-rounded signature unchanged turns that guess into
//     a pure cache hit instead of a near-miss at a shifted midpoint.
//
//   - Order-independent results. The search returns the schedule of
//     the smallest accepted grid index (the acceptance boundary), not
//     the best-by-makespan over whichever guesses a particular probing
//     strategy happened to consume. Under the pipeline's monotone
//     acceptance this boundary is a property of the instance alone, so
//     a warm-started search (SearchWarm) that consumes a different —
//     and much shorter — guess sequence converges to the bit-identical
//     schedule the cold bisection finds.
//
// The grid step mirrors the retired additive step eps*lb/4 at g ~ lb:
// the accepted guess overshoots the acceptance boundary by at most a
// factor 1+eps/4, which is the same slack the additive step granted at
// the lower bound, keeping the Theorem 1 constant intact.

// GridRatio returns the guess-grid ratio for accuracy parameter eps.
func GridRatio(eps float64) float64 { return 1 + eps/4 }

// GridValue returns the guess value of grid index k: ratio^k.
func GridValue(k int, ratio float64) float64 {
	return math.Pow(ratio, float64(k))
}

// GridIndex returns the smallest k with ratio^k >= x (x and ratio-1
// must be positive). Like Exponent it nudges before the ceil so a
// representable power maps to its own index.
func GridIndex(x, ratio float64) int {
	k := int(math.Ceil(math.Log(x)/math.Log(ratio) - 1e-9))
	if GridValue(k, ratio) < x { // floating point slack
		k++
	}
	return k
}

// gridBounds quantizes a search interval: klo is the virtual-rejected
// floor (the largest index whose value is at or below lb — the search
// evaluates guesses strictly above the lower bound, matching the open
// interval (lb, ub] of the retired float driver) and khi the first
// index at or above ub. ub > lb > 0 implies khi >= klo+1, so the khi
// probe always exists.
func gridBounds(lb, ub, ratio float64) (klo, khi int) {
	klo = GridIndex(lb, ratio)
	if GridValue(klo, ratio) > lb {
		klo-- // lb between grid points: its index is the first above it
	}
	return klo, GridIndex(ub, ratio)
}

// SearchGridSeq runs the grid-quantized dual-approximation binary
// search, evaluating one guess at a time on the calling goroutine. It
// is the same driver as SearchGridSpec with speculation disabled, so
// the two consume identical guess sequences by construction.
func SearchGridSeq[T any](ctx context.Context, lb, ub, ratio float64, maxGuesses int,
	eval func(ctx context.Context, guess float64) (T, bool),
	commit func(guess float64, v T, ok bool) *sched.Schedule,
) SearchResult {
	return searchGrid(ctx, lb, ub, ratio, maxGuesses, eval, commit, false)
}

// SearchGridSpec is SearchGridSeq with speculative parallel guess
// evaluation: each round launches the current midpoint and both
// possible successor midpoints concurrently and abandons the branch
// not taken, exactly like SearchSpec. commit runs once per consumed
// guess in sequential order; the consumed sequence and the returned
// result are bit-identical to SearchGridSeq.
func SearchGridSpec[T any](ctx context.Context, lb, ub, ratio float64, maxGuesses int,
	eval func(ctx context.Context, guess float64) (T, bool),
	commit func(guess float64, v T, ok bool) *sched.Schedule,
) SearchResult {
	return searchGrid(ctx, lb, ub, ratio, maxGuesses, eval, commit, true)
}

// gridDriver carries the state shared by the cold and warm grid
// searches: the result under construction, the smallest accepted index
// seen, and the abandoned-evaluation ledger.
type gridDriver[T any] struct {
	ctx       context.Context
	ratio     float64
	max       int
	eval      func(ctx context.Context, guess float64) (T, bool)
	commit    func(guess float64, v T, ok bool) *sched.Schedule
	res       SearchResult
	bestK     int
	abandoned []*inflight[T]
}

func newGridDriver[T any](ctx context.Context, ratio float64, maxGuesses int,
	eval func(ctx context.Context, guess float64) (T, bool),
	commit func(guess float64, v T, ok bool) *sched.Schedule,
) *gridDriver[T] {
	if maxGuesses <= 0 {
		maxGuesses = 40
	}
	return &gridDriver[T]{
		ctx:    ctx,
		ratio:  ratio,
		max:    maxGuesses,
		eval:   eval,
		commit: commit,
		res:    newSearchResult(),
		bestK:  math.MaxInt,
	}
}

// discard abandons an evaluation whose result will not be consumed.
func (d *gridDriver[T]) discard(f *inflight[T]) {
	if f != nil {
		f.abandon()
		d.abandoned = append(d.abandoned, f)
	}
}

// consume commits the evaluation of grid index k and reports whether
// the guess was accepted. The winner is the smallest accepted index,
// not the best observed makespan: acceptance is a function of the
// guess's rounding class, so the smallest accepted index is the same
// boundary no matter which guess sequence discovered it — that is what
// makes warm and cold searches return bit-identical schedules.
func (d *gridDriver[T]) consume(f *inflight[T], k int) bool {
	<-f.done
	if f.cancel != nil {
		// Release the child context of a completed evaluation.
		f.cancel()
	}
	s := d.commit(f.guess, f.val, f.ok)
	d.res.Guesses++
	if f.ok && s != nil {
		if k < d.bestK {
			d.bestK = k
			d.res.Schedule, d.res.Makespan, d.res.FinalGuess = s, s.Makespan(), f.guess
		}
		return true
	}
	return false
}

// evalK launches and immediately consumes grid index k (the sequential
// warm path).
func (d *gridDriver[T]) evalK(k int) bool {
	f := launch(d.ctx, GridValue(k, d.ratio), d.eval, false)
	return d.consume(f, k)
}

// exhausted reports that the search must stop: guess budget spent or
// context dead.
func (d *gridDriver[T]) exhausted() bool {
	return d.res.Guesses >= d.max || d.ctx.Err() != nil
}

// searchGrid is the cold driver: probe khi (it supplies the fallback
// schedule), then integer bisection over (klo, khi] maintaining the
// invariant that lo is rejected (klo virtually — the lower bound
// proves it) and hi accepted whenever anything is, terminating at
// hi-lo == 1.
func searchGrid[T any](ctx context.Context, lb, ub, ratio float64, maxGuesses int,
	eval func(ctx context.Context, guess float64) (T, bool),
	commit func(guess float64, v T, ok bool) *sched.Schedule,
	speculate bool,
) SearchResult {
	d := newGridDriver(ctx, ratio, maxGuesses, eval, commit)
	defer func() { drain(d.abandoned) }()
	lo, hi := gridBounds(lb, ub, ratio)

	// Probe the top of the grid first and speculate on the first
	// midpoint while it runs: consuming the probe never narrows the
	// interval, so the midpoint is consumed next whenever the loop runs
	// at all.
	probe := launch(ctx, GridValue(hi, ratio), eval, speculate)
	var next *inflight[T]
	nextK := 0
	if speculate && hi-lo > 1 && d.max > 1 {
		nextK = lo + (hi-lo)/2
		next = launch(ctx, GridValue(nextK, ratio), eval, true)
	}
	d.consume(probe, hi)

	for hi-lo > 1 && !d.exhausted() {
		mid := lo + (hi-lo)/2
		cur := next
		next = nil
		if cur == nil || nextK != mid {
			d.discard(cur)
			cur = launch(ctx, GridValue(mid, ratio), eval, speculate)
		}
		// Launch both possible successors while cur evaluates — unless
		// cur already finished, in which case the next iteration starts
		// the right midpoint directly. The guards mirror the loop
		// conditions at the next iteration, so a successor is only
		// skipped when the loop could not consume it anyway.
		var onAccept, onReject *inflight[T]
		var onAcceptK, onRejectK int
		curDone := false
		select {
		case <-cur.done:
			curDone = true
		default:
		}
		if !curDone && d.res.Guesses+1 < d.max {
			if mid-lo > 1 {
				onAcceptK = lo + (mid-lo)/2
				onAccept = launch(ctx, GridValue(onAcceptK, ratio), eval, true)
			}
			if hi-mid > 1 {
				onRejectK = mid + (hi-mid)/2
				onReject = launch(ctx, GridValue(onRejectK, ratio), eval, true)
			}
		}
		if d.consume(cur, mid) {
			hi = mid
			next, nextK = onAccept, onAcceptK
			d.discard(onReject)
		} else {
			lo = mid
			next, nextK = onReject, onRejectK
			d.discard(onAccept)
		}
	}
	// A successor speculated for an iteration that never ran.
	d.discard(next)
	return d.res
}

// SearchWarm runs the warm-started grid search of an incremental
// re-solve: instead of bisecting the full (lb, ub] interval it seeds
// the search at the grid index of a prior solve's makespan and probes
// outward geometrically (stride doubling) until the acceptance
// boundary is bracketed, then bisects the bracket. Under monotone
// guess acceptance it converges to the same smallest accepted grid
// index as the cold search over the same interval — and therefore to
// the bit-identical schedule — while consuming a guess sequence whose
// length scales with the distance between the seed and the boundary,
// not with the width of (lb, ub]. A seed at or outside the interval is
// clamped onto it, degrading gracefully to a near-cold bisection.
//
// Evaluation is strictly sequential: each probe depends on the
// previous outcome, so there is no speculation tree to race down.
func SearchWarm[T any](ctx context.Context, lb, ub, seed, ratio float64, maxGuesses int,
	eval func(ctx context.Context, guess float64) (T, bool),
	commit func(guess float64, v T, ok bool) *sched.Schedule,
) SearchResult {
	d := newGridDriver(ctx, ratio, maxGuesses, eval, commit)
	lo, hi := gridBounds(lb, ub, ratio)
	ks := GridIndex(seed, ratio)
	if ks <= lo {
		ks = lo + 1
	}
	if ks > hi {
		ks = hi
	}

	// Bracket the boundary: rej is the largest known-rejected index
	// (lo counts, virtually), acc the smallest known-accepted one.
	rej, acc := lo, hi+1 // acc = hi+1 means "nothing accepted yet"
	if d.evalK(ks) {
		acc = ks
		// Probe downward with doubling stride from the seed.
		for stride := 1; acc-rej > 1 && !d.exhausted(); stride *= 2 {
			p := ks - stride
			if p <= rej {
				break // bisection finishes the remaining gap
			}
			if d.evalK(p) {
				acc = p
			} else {
				rej = p
				break
			}
		}
	} else {
		rej = ks
		// Probe upward with doubling stride until something accepts;
		// if even the top of the interval rejects, no guess is
		// accepted (the caller falls back), matching the cold search
		// under monotone acceptance.
		for stride := 1; !d.exhausted(); stride *= 2 {
			p := ks + stride
			if p >= hi {
				if hi > rej && d.evalK(hi) {
					acc = hi
				}
				break
			}
			if d.evalK(p) {
				acc = p
				break
			}
			rej = p
		}
		if acc > hi {
			return d.res
		}
	}

	// Bisect the bracket down to a gap of one.
	for acc-rej > 1 && !d.exhausted() {
		mid := rej + (acc-rej)/2
		if d.evalK(mid) {
			acc = mid
		} else {
			rej = mid
		}
	}
	return d.res
}
