package round

import "repro/internal/sched"

// inflight is one speculative guess evaluation running in its own
// goroutine. val and ok are written exactly once, before done is closed.
// Closing cancel tells the evaluation its result will never be consumed,
// so it may abort early.
type inflight[T any] struct {
	guess  float64
	done   chan struct{}
	cancel chan struct{}
	val    T
	ok     bool
}

func start[T any](guess float64, eval func(guess float64, cancel <-chan struct{}) (T, bool)) *inflight[T] {
	f := &inflight[T]{
		guess:  guess,
		done:   make(chan struct{}),
		cancel: make(chan struct{}),
	}
	go func() {
		f.val, f.ok = eval(guess, f.cancel)
		close(f.done)
	}()
	return f
}

// abandon cancels an evaluation whose result will not be consumed. Nil
// receivers are allowed (no speculation was launched for that branch).
func (f *inflight[T]) abandon() {
	if f != nil {
		close(f.cancel)
	}
}

// drain blocks until every abandoned evaluation has actually returned,
// so no eval goroutine — which reads the caller's instance — outlives
// the search.
func drain[T any](abandoned []*inflight[T]) {
	for _, f := range abandoned {
		<-f.done
	}
}

// SearchSpec runs the same dual-approximation binary search as Search but
// evaluates makespan guesses speculatively in parallel. The sequential
// search's future guesses form a binary tree rooted at the current
// midpoint: if the midpoint is accepted the next guess is the lower-half
// midpoint, otherwise the upper-half midpoint. Each round therefore
// launches the current guess and both possible successors concurrently —
// up to three live evaluations at a time (two in the opening round,
// where the first midpoint runs alongside the upper-bound probe), plus
// any abandoned evaluations still winding down — and abandons the
// successor on the branch not taken.
//
// eval evaluates one guess and must be safe for concurrent use and pure
// (independent of evaluation order); ok=false means the guess was
// rejected. When the search abandons a speculative evaluation it closes
// cancel, after which eval may give up early; its result is discarded
// either way. commit is invoked exactly once per *consumed* guess, in
// the precise order the sequential search would have evaluated them, and
// returns the schedule for accepted guesses (nil rejects the guess).
// Abandoned evaluations are never committed, so the consumed guess
// sequence, the commit order and the returned result are all bit-for-bit
// identical to Search over the equivalent sequential decision, regardless
// of completion order of the concurrent evaluations. Before returning,
// SearchSpec waits for every abandoned evaluation to wind down, so no
// eval goroutine outlives the call.
func SearchSpec[T any](lb, ub, step float64, maxGuesses int,
	eval func(guess float64, cancel <-chan struct{}) (T, bool),
	commit func(guess float64, v T, ok bool) *sched.Schedule,
) SearchResult {
	res := newSearchResult()
	if maxGuesses <= 0 {
		maxGuesses = 40
	}
	if step <= 0 {
		step = 1e-9
	}
	lo, hi := lb, ub

	// Abandoned evaluations are cancelled immediately but drained only at
	// return, so they wind down concurrently with the remaining rounds.
	var abandoned []*inflight[T]
	discard := func(f *inflight[T]) {
		if f != nil {
			f.abandon()
			abandoned = append(abandoned, f)
		}
	}
	defer func() { drain(abandoned) }()

	consume := func(f *inflight[T]) bool {
		<-f.done
		s := commit(f.guess, f.val, f.ok)
		res.Guesses++
		if f.ok && s != nil {
			if ms := s.Makespan(); ms < res.Makespan {
				res.Schedule, res.Makespan, res.FinalGuess = s, ms, f.guess
			}
			return true
		}
		return false
	}

	// Probe the upper bound first (it supplies the fallback schedule) and
	// speculate on the first midpoint while it runs: consuming the probe
	// never narrows the interval, so the midpoint is consumed next
	// whenever the loop runs at all.
	probe := start(hi, eval)
	var next *inflight[T]
	if hi-lo > step && maxGuesses > 1 {
		next = start((lo+hi)/2, eval)
	}
	consume(probe)

	for hi-lo > step && res.Guesses < maxGuesses {
		mid := (lo + hi) / 2
		cur := next
		next = nil
		if cur == nil || cur.guess != mid {
			discard(cur)
			cur = start(mid, eval)
		}
		// Launch both possible successors while cur evaluates — unless
		// cur has already finished, in which case its branch is known
		// the moment we consume it and the next iteration starts the
		// right midpoint directly; speculating would only create an
		// instantly-abandoned pipeline. The guards mirror the loop
		// conditions at the next iteration ((lo+mid)/2 and (mid+hi)/2
		// are the exact midpoints the halved intervals produce), so a
		// successor is only skipped when the loop could not consume it
		// anyway.
		var onAccept, onReject *inflight[T]
		curDone := false
		select {
		case <-cur.done:
			curDone = true
		default:
		}
		if !curDone && res.Guesses+1 < maxGuesses {
			if mid-lo > step {
				onAccept = start((lo+mid)/2, eval)
			}
			if hi-mid > step {
				onReject = start((mid+hi)/2, eval)
			}
		}
		if consume(cur) {
			hi = mid
			next = onAccept
			discard(onReject)
		} else {
			lo = mid
			next = onReject
			discard(onAccept)
		}
	}
	// A successor speculated for an iteration that never ran.
	discard(next)
	return res
}
