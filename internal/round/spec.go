package round

import (
	"context"

	"repro/internal/sched"
)

// inflight is one guess evaluation. Speculative evaluations run in their
// own goroutine under a child context; sequential evaluations run inline
// on the search goroutine (done is closed before launch returns). val and
// ok are written exactly once, before done is closed. Calling cancel
// tells a speculative evaluation its result will never be consumed, so it
// may abort early.
type inflight[T any] struct {
	guess  float64
	done   chan struct{}
	cancel context.CancelFunc
	val    T
	ok     bool
}

// launch starts the evaluation of one guess. With speculate=false the
// evaluation runs synchronously under the search's own context — this is
// the degenerate sequential case, sharing every other line of the driver
// with the speculative search so the two cannot drift.
func launch[T any](ctx context.Context, guess float64,
	eval func(ctx context.Context, guess float64) (T, bool), speculate bool) *inflight[T] {
	f := &inflight[T]{guess: guess, done: make(chan struct{})}
	if !speculate {
		f.val, f.ok = eval(ctx, guess)
		close(f.done)
		return f
	}
	child, cancel := context.WithCancel(ctx)
	f.cancel = cancel
	go func() {
		f.val, f.ok = eval(child, guess)
		close(f.done)
	}()
	return f
}

// abandon cancels an evaluation whose result will not be consumed. Nil
// receivers are allowed (no speculation was launched for that branch);
// sequential inflights have no cancel and nothing to abandon.
func (f *inflight[T]) abandon() {
	if f != nil && f.cancel != nil {
		f.cancel()
	}
}

// drain blocks until every abandoned evaluation has actually returned,
// so no eval goroutine — which reads the caller's instance — outlives
// the search.
func drain[T any](abandoned []*inflight[T]) {
	for _, f := range abandoned {
		<-f.done
	}
}

// SearchSeq runs the dual-approximation binary search, evaluating one
// makespan guess at a time on the calling goroutine. It shares the
// eval/commit contract and every line of interval logic with SearchSpec
// (it is literally the same driver with speculation disabled), so the
// consumed guess sequence of the two is identical by construction.
//
// The context is passed to every eval; when it is canceled or expires the
// search stops before the next guess and returns the best result so far
// (callers detect the abort via ctx.Err()).
func SearchSeq[T any](ctx context.Context, lb, ub, step float64, maxGuesses int,
	eval func(ctx context.Context, guess float64) (T, bool),
	commit func(guess float64, v T, ok bool) *sched.Schedule,
) SearchResult {
	return search(ctx, lb, ub, step, maxGuesses, eval, commit, false)
}

// SearchSpec runs the same dual-approximation binary search as SearchSeq
// but evaluates makespan guesses speculatively in parallel. The
// sequential search's future guesses form a binary tree rooted at the
// current midpoint: if the midpoint is accepted the next guess is the
// lower-half midpoint, otherwise the upper-half midpoint. Each round
// therefore launches the current guess and both possible successors
// concurrently — up to three live evaluations at a time (two in the
// opening round, where the first midpoint runs alongside the upper-bound
// probe), plus any abandoned evaluations still winding down — and
// abandons the successor on the branch not taken.
//
// eval evaluates one guess and must be safe for concurrent use and pure
// (independent of evaluation order); ok=false means the guess was
// rejected. Each speculative eval receives a child context of ctx that is
// canceled when the search abandons the evaluation, after which eval may
// give up early; its result is discarded either way. commit is invoked
// exactly once per *consumed* guess, in the precise order the sequential
// search would have evaluated them, and returns the schedule for accepted
// guesses (nil rejects the guess). Abandoned evaluations are never
// committed, so the consumed guess sequence, the commit order and the
// returned result are all bit-for-bit identical to SearchSeq over the
// equivalent decision, regardless of completion order of the concurrent
// evaluations. Before returning, SearchSpec waits for every abandoned
// evaluation to wind down, so no eval goroutine outlives the call.
func SearchSpec[T any](ctx context.Context, lb, ub, step float64, maxGuesses int,
	eval func(ctx context.Context, guess float64) (T, bool),
	commit func(guess float64, v T, ok bool) *sched.Schedule,
) SearchResult {
	return search(ctx, lb, ub, step, maxGuesses, eval, commit, true)
}

// search is the single driver behind Search, SearchSeq and SearchSpec.
// speculate=false degenerates it to the strictly sequential search: every
// launch evaluates inline (so cur is always done) and no successors are
// speculated.
func search[T any](ctx context.Context, lb, ub, step float64, maxGuesses int,
	eval func(ctx context.Context, guess float64) (T, bool),
	commit func(guess float64, v T, ok bool) *sched.Schedule,
	speculate bool,
) SearchResult {
	res := newSearchResult()
	if maxGuesses <= 0 {
		maxGuesses = 40
	}
	if step <= 0 {
		step = 1e-9
	}
	lo, hi := lb, ub

	// Abandoned evaluations are cancelled immediately but drained only at
	// return, so they wind down concurrently with the remaining rounds.
	var abandoned []*inflight[T]
	discard := func(f *inflight[T]) {
		if f != nil {
			f.abandon()
			abandoned = append(abandoned, f)
		}
	}
	defer func() { drain(abandoned) }()

	consume := func(f *inflight[T]) bool {
		<-f.done
		if f.cancel != nil {
			// Release the child context of a completed evaluation.
			f.cancel()
		}
		s := commit(f.guess, f.val, f.ok)
		res.Guesses++
		if f.ok && s != nil {
			if ms := s.Makespan(); ms < res.Makespan {
				res.Schedule, res.Makespan, res.FinalGuess = s, ms, f.guess
			}
			return true
		}
		return false
	}

	// Probe the upper bound first (it supplies the fallback schedule) and
	// speculate on the first midpoint while it runs: consuming the probe
	// never narrows the interval, so the midpoint is consumed next
	// whenever the loop runs at all.
	probe := launch(ctx, hi, eval, speculate)
	var next *inflight[T]
	if speculate && hi-lo > step && maxGuesses > 1 {
		next = launch(ctx, (lo+hi)/2, eval, true)
	}
	consume(probe)

	for hi-lo > step && res.Guesses < maxGuesses && ctx.Err() == nil {
		mid := (lo + hi) / 2
		cur := next
		next = nil
		if cur == nil || cur.guess != mid {
			discard(cur)
			cur = launch(ctx, mid, eval, speculate)
		}
		// Launch both possible successors while cur evaluates — unless
		// cur has already finished, in which case its branch is known
		// the moment we consume it and the next iteration starts the
		// right midpoint directly; speculating would only create an
		// instantly-abandoned pipeline. (In sequential mode cur is always
		// already done, so no successor is ever speculated.) The guards
		// mirror the loop conditions at the next iteration ((lo+mid)/2
		// and (mid+hi)/2 are the exact midpoints the halved intervals
		// produce), so a successor is only skipped when the loop could
		// not consume it anyway.
		var onAccept, onReject *inflight[T]
		curDone := false
		select {
		case <-cur.done:
			curDone = true
		default:
		}
		if !curDone && res.Guesses+1 < maxGuesses {
			if mid-lo > step {
				onAccept = launch(ctx, (lo+mid)/2, eval, true)
			}
			if hi-mid > step {
				onReject = launch(ctx, (mid+hi)/2, eval, true)
			}
		}
		if consume(cur) {
			hi = mid
			next = onAccept
			discard(onReject)
		} else {
			lo = mid
			next = onReject
			discard(onAccept)
		}
	}
	// A successor speculated for an iteration that never ran.
	discard(next)
	return res
}
