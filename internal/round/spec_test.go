package round

import (
	"context"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sched"
)

// guessSchedule builds a fresh one-job schedule whose makespan equals ms,
// letting tests control the makespan the search observes per guess.
func guessSchedule(ms float64) *sched.Schedule {
	in := sched.NewInstance(1)
	in.AddJob(ms, 0)
	return &sched.Schedule{Inst: in, Machine: []int{0}}
}

// searchPair runs Search and SearchSpec over the same accept predicate
// and records the committed guess order of each.
func searchPair(t *testing.T, lb, ub, step float64, maxGuesses int, accept func(float64) bool) (seq, spec SearchResult, seqOrder, specOrder []float64) {
	t.Helper()
	dec := func(g float64) (*sched.Schedule, bool) {
		seqOrder = append(seqOrder, g)
		if accept(g) {
			return guessSchedule(g), true
		}
		return nil, false
	}
	seq = Search(lb, ub, step, maxGuesses, dec)

	var mu sync.Mutex
	eval := func(_ context.Context, g float64) (float64, bool) { return g, accept(g) }
	commit := func(g float64, v float64, ok bool) *sched.Schedule {
		mu.Lock()
		specOrder = append(specOrder, g)
		mu.Unlock()
		if !ok {
			return nil
		}
		return guessSchedule(v)
	}
	spec = SearchSpec(context.Background(), lb, ub, step, maxGuesses, eval, commit)
	return seq, spec, seqOrder, specOrder
}

func checkIdentical(t *testing.T, seq, spec SearchResult, seqOrder, specOrder []float64) {
	t.Helper()
	if seq.Guesses != spec.Guesses {
		t.Errorf("guess counts differ: seq=%d spec=%d", seq.Guesses, spec.Guesses)
	}
	if seq.FinalGuess != spec.FinalGuess {
		t.Errorf("final guesses differ: seq=%v spec=%v", seq.FinalGuess, spec.FinalGuess)
	}
	if (seq.Schedule == nil) != (spec.Schedule == nil) {
		t.Fatalf("schedule presence differs: seq=%v spec=%v", seq.Schedule != nil, spec.Schedule != nil)
	}
	if seq.Schedule != nil && seq.Makespan != spec.Makespan {
		t.Errorf("makespans differ: seq=%v spec=%v", seq.Makespan, spec.Makespan)
	}
	if len(seqOrder) != len(specOrder) {
		t.Fatalf("commit orders differ in length: seq=%v spec=%v", seqOrder, specOrder)
	}
	for i := range seqOrder {
		if seqOrder[i] != specOrder[i] {
			t.Fatalf("commit order diverges at %d: seq=%v spec=%v", i, seqOrder, specOrder)
		}
	}
}

// TestSearchSpecMatchesSequential checks that the speculative search
// consumes the exact guess sequence of the sequential search — same
// guesses, same order, same result — across thresholds that exercise
// accept-heavy, reject-heavy and mixed paths.
func TestSearchSpecMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name      string
		lb, ub    float64
		step      float64
		maxG      int
		threshold float64
	}{
		{"accept-all", 1, 2, 1e-6, 40, 0},
		{"reject-below-mid", 1, 2, 1e-6, 40, 1.5},
		{"accept-high-only", 1, 2, 1e-6, 40, 1.97},
		{"tight-threshold", 1, 2, 1e-6, 40, 1.2345},
		{"few-guesses", 1, 2, 1e-6, 3, 1.3},
		{"two-guesses", 1, 2, 1e-6, 2, 1.3},
		{"one-guess", 1, 2, 1e-6, 1, 1.3},
		{"wide-step", 1, 2, 0.3, 40, 1.4},
		{"degenerate-interval", 1.5, 1.5, 1e-6, 40, 1.0},
		{"default-params", 1, 8, 0, 0, 3.21},
	} {
		t.Run(tc.name, func(t *testing.T) {
			accept := func(g float64) bool { return g >= tc.threshold }
			seq, spec, so, po := searchPair(t, tc.lb, tc.ub, tc.step, tc.maxG, accept)
			checkIdentical(t, seq, spec, so, po)
		})
	}
}

// TestSearchSpecRejectAll checks the no-accepted-guess path: both
// searches report a nil schedule and +Inf makespan.
func TestSearchSpecRejectAll(t *testing.T) {
	seq, spec, so, po := searchPair(t, 1, 2, 1e-6, 10, func(float64) bool { return false })
	checkIdentical(t, seq, spec, so, po)
	if spec.Schedule != nil || !math.IsInf(spec.Makespan, 1) {
		t.Errorf("reject-all produced a schedule: %+v", spec)
	}
}

// TestSearchSpecCommitSeesValue checks that commit receives the value the
// concurrent eval produced for that exact guess.
func TestSearchSpecCommitSeesValue(t *testing.T) {
	eval := func(_ context.Context, g float64) (float64, bool) { return 3 * g, true }
	commit := func(g float64, v float64, ok bool) *sched.Schedule {
		if v != 3*g {
			t.Errorf("commit for guess %v got value %v, want %v", g, v, 3*g)
		}
		if !ok {
			return nil
		}
		return guessSchedule(g)
	}
	res := SearchSpec(context.Background(), 1, 2, 1e-3, 20, eval, commit)
	if res.Schedule == nil {
		t.Fatal("no schedule from accept-all search")
	}
}

// TestSearchSeqContextStopsEarly checks that canceling the context stops
// the sequential driver before the next guess: the search returns what it
// has instead of running out its guess budget.
func TestSearchSeqContextStopsEarly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	evals := 0
	eval := func(_ context.Context, g float64) (float64, bool) {
		evals++
		if evals == 2 {
			cancel()
		}
		return g, true
	}
	commit := func(_ float64, v float64, ok bool) *sched.Schedule {
		if !ok {
			return nil
		}
		return guessSchedule(v)
	}
	res := SearchSeq(ctx, 1, 2, 1e-6, 40, eval, commit)
	if res.Guesses != 2 {
		t.Errorf("canceled search consumed %d guesses, want 2 (probe + first midpoint)", res.Guesses)
	}
	if res.Schedule == nil {
		t.Error("canceled search dropped the best-so-far schedule")
	}
}

// TestSearchSpecDrainsAbandoned checks that no eval goroutine outlives
// SearchSpec: abandoned evaluations are cancelled and awaited before the
// search returns, even when they are slow to notice the cancellation.
func TestSearchSpecDrainsAbandoned(t *testing.T) {
	var active atomic.Int32
	eval := func(ctx context.Context, g float64) (float64, bool) {
		active.Add(1)
		defer active.Add(-1)
		select {
		case <-ctx.Done():
		case <-time.After(2 * time.Millisecond):
		}
		return g, g >= 1.5
	}
	commit := func(g float64, v float64, ok bool) *sched.Schedule {
		if !ok {
			return nil
		}
		return guessSchedule(v)
	}
	res := SearchSpec(context.Background(), 1, 2, 1e-3, 20, eval, commit)
	if res.Schedule == nil {
		t.Fatal("no schedule")
	}
	if n := active.Load(); n != 0 {
		t.Errorf("%d eval goroutines still running after SearchSpec returned", n)
	}
}

// TestSearchSpecAbandonsLosers checks that every speculative evaluation
// is either committed or canceled — no evaluation is silently left
// running after the search returns.
func TestSearchSpecAbandonsLosers(t *testing.T) {
	var mu sync.Mutex
	committed := map[float64]bool{}
	cancels := map[float64]<-chan struct{}{}
	eval := func(ctx context.Context, g float64) (float64, bool) {
		mu.Lock()
		cancels[g] = ctx.Done()
		mu.Unlock()
		return g, g >= 1.3
	}
	commit := func(g float64, v float64, ok bool) *sched.Schedule {
		mu.Lock()
		committed[g] = true
		mu.Unlock()
		if !ok {
			return nil
		}
		return guessSchedule(v)
	}
	res := SearchSpec(context.Background(), 1, 2, 1e-2, 40, eval, commit)
	if res.Schedule == nil {
		t.Fatal("no schedule")
	}
	mu.Lock()
	defer mu.Unlock()
	for g, cancel := range cancels {
		if committed[g] {
			continue
		}
		select {
		case <-cancel:
		default:
			t.Errorf("speculative eval of guess %v was neither committed nor canceled", g)
		}
	}
	if len(cancels) <= len(committed) {
		t.Logf("note: every eval was consumed (%d evals, %d commits)", len(cancels), len(committed))
	}
}
