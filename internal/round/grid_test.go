package round

import (
	"context"
	"math"
	"sync"
	"testing"

	"repro/internal/sched"
)

func TestGridIndexBasics(t *testing.T) {
	for _, tc := range []struct {
		x, ratio float64
	}{
		{1, 1.125}, {0.3, 1.125}, {7.3, 1.125}, {1e-4, 1.0625}, {1e4, 1.25}, {2.5, 1.1},
	} {
		k := GridIndex(tc.x, tc.ratio)
		v := GridValue(k, tc.ratio)
		if v < tc.x-1e-12 {
			t.Errorf("GridValue(GridIndex(%g,%g)) = %g below input", tc.x, tc.ratio, v)
		}
		if below := GridValue(k-1, tc.ratio); below >= tc.x*(1+1e-9) {
			t.Errorf("GridIndex(%g,%g) = %d not minimal: value(k-1) = %g", tc.x, tc.ratio, k, below)
		}
	}
}

func TestGridIndexExactPower(t *testing.T) {
	// An exact grid value must map to its own index.
	ratio := 1.125
	for k := -20; k <= 20; k++ {
		v := GridValue(k, ratio)
		if got := GridIndex(v, ratio); got != k {
			t.Errorf("GridIndex(GridValue(%d)) = %d", k, got)
		}
	}
}

// gridPair runs the sequential and speculative cold grid searches over
// the same accept predicate and records each one's committed guess
// order.
func gridPair(t *testing.T, lb, ub, ratio float64, maxGuesses int, accept func(float64) bool) (seq, spec SearchResult, seqOrder, specOrder []float64) {
	t.Helper()
	eval := func(_ context.Context, g float64) (float64, bool) { return g, accept(g) }
	seqCommit := func(g float64, v float64, ok bool) *sched.Schedule {
		seqOrder = append(seqOrder, g)
		if !ok {
			return nil
		}
		return guessSchedule(v)
	}
	seq = SearchGridSeq(context.Background(), lb, ub, ratio, maxGuesses, eval, seqCommit)

	var mu sync.Mutex
	specCommit := func(g float64, v float64, ok bool) *sched.Schedule {
		mu.Lock()
		specOrder = append(specOrder, g)
		mu.Unlock()
		if !ok {
			return nil
		}
		return guessSchedule(v)
	}
	spec = SearchGridSpec(context.Background(), lb, ub, ratio, maxGuesses, eval, specCommit)
	return seq, spec, seqOrder, specOrder
}

// TestSearchGridSpecMatchesSequential checks that the speculative grid
// search consumes the exact guess sequence of the sequential one —
// same guesses, same order, same result — across accept-heavy,
// reject-heavy and mixed paths.
func TestSearchGridSpecMatchesSequential(t *testing.T) {
	for _, tc := range []struct {
		name      string
		lb, ub    float64
		ratio     float64
		maxG      int
		threshold float64
	}{
		{"accept-all", 1, 4, 1.125, 40, 0},
		{"reject-below-mid", 1, 4, 1.125, 40, 2},
		{"accept-high-only", 1, 4, 1.125, 40, 3.9},
		{"tight-threshold", 1, 4, 1.0625, 40, 1.2345},
		{"few-guesses", 1, 4, 1.125, 3, 1.3},
		{"two-guesses", 1, 4, 1.125, 2, 1.3},
		{"one-guess", 1, 4, 1.125, 1, 1.3},
		{"coarse-grid", 1, 4, 1.25, 40, 1.4},
		{"narrow-interval", 1.5, 1.6, 1.125, 40, 1.55},
		{"default-params", 1, 8, 1.1, 0, 3.21},
		{"sub-one-interval", 0.01, 0.5, 1.125, 40, 0.07},
	} {
		t.Run(tc.name, func(t *testing.T) {
			accept := func(g float64) bool { return g >= tc.threshold }
			seq, spec, so, po := gridPair(t, tc.lb, tc.ub, tc.ratio, tc.maxG, accept)
			checkIdentical(t, seq, spec, so, po)
		})
	}
}

// TestSearchWarmMatchesCold checks the load-bearing property of the
// incremental re-solve: for a monotone accept predicate the warm
// search converges to the same smallest accepted grid index — hence
// the same FinalGuess and makespan — as the cold bisection, from any
// seed.
func TestSearchWarmMatchesCold(t *testing.T) {
	ratio := 1.125
	lb, ub := 1.0, 20.0
	for _, threshold := range []float64{0, 1.01, 2.5, 7.3, 12.0, 19.9, 25.0} {
		accept := func(g float64) bool { return g >= threshold }
		eval := func(_ context.Context, g float64) (float64, bool) { return g, accept(g) }
		commit := func(g float64, v float64, ok bool) *sched.Schedule {
			if !ok {
				return nil
			}
			return guessSchedule(v)
		}
		cold := SearchGridSeq(context.Background(), lb, ub, ratio, 0, eval, commit)
		for _, seed := range []float64{0.5, 1.0, 2.0, 7.3, 12.0, 19.0, 40.0} {
			warm := SearchWarm(context.Background(), lb, ub, seed, ratio, 0, eval, commit)
			if (cold.Schedule == nil) != (warm.Schedule == nil) {
				t.Fatalf("threshold=%g seed=%g: schedule presence differs (cold=%v warm=%v)",
					threshold, seed, cold.Schedule != nil, warm.Schedule != nil)
			}
			if cold.Schedule == nil {
				continue
			}
			if cold.FinalGuess != warm.FinalGuess {
				t.Errorf("threshold=%g seed=%g: final guess differs: cold=%v warm=%v",
					threshold, seed, cold.FinalGuess, warm.FinalGuess)
			}
			if cold.Makespan != warm.Makespan {
				t.Errorf("threshold=%g seed=%g: makespan differs: cold=%v warm=%v",
					threshold, seed, cold.Makespan, warm.Makespan)
			}
		}
	}
}

// TestSearchWarmFewerGuessesNearSeed checks the warm search's point: a
// seed at the boundary consumes fewer decisions than the cold
// bisection over a wide interval.
func TestSearchWarmFewerGuessesNearSeed(t *testing.T) {
	ratio := 1.0625
	lb, ub := 1.0, 100.0
	threshold := 7.3
	eval := func(_ context.Context, g float64) (float64, bool) { return g, g >= threshold }
	commit := func(g float64, v float64, ok bool) *sched.Schedule {
		if !ok {
			return nil
		}
		return guessSchedule(v)
	}
	cold := SearchGridSeq(context.Background(), lb, ub, ratio, 0, eval, commit)
	warm := SearchWarm(context.Background(), lb, ub, cold.FinalGuess, ratio, 0, eval, commit)
	if warm.Guesses >= cold.Guesses {
		t.Errorf("warm search consumed %d guesses, cold %d — warm start bought nothing",
			warm.Guesses, cold.Guesses)
	}
	if warm.FinalGuess != cold.FinalGuess {
		t.Errorf("warm final guess %v != cold %v", warm.FinalGuess, cold.FinalGuess)
	}
}

// TestSearchWarmRejectAll checks the no-accepted-guess path: the warm
// search walks up to the top of the interval, sees it reject, and
// reports no schedule — the caller then falls back exactly as after a
// cold all-reject search.
func TestSearchWarmRejectAll(t *testing.T) {
	eval := func(_ context.Context, g float64) (float64, bool) { return g, false }
	commit := func(g float64, v float64, ok bool) *sched.Schedule { return nil }
	res := SearchWarm(context.Background(), 1, 4, 2, 1.125, 0, eval, commit)
	if res.Schedule != nil || !math.IsInf(res.Makespan, 1) {
		t.Errorf("reject-all warm search produced a schedule: %+v", res)
	}
}

// TestSearchGridRespectsMaxGuesses bounds both drivers.
func TestSearchGridRespectsMaxGuesses(t *testing.T) {
	evals := 0
	eval := func(_ context.Context, g float64) (float64, bool) { evals++; return g, false }
	commit := func(g float64, v float64, ok bool) *sched.Schedule { return nil }
	SearchGridSeq(context.Background(), 1, 1e9, 1.0001, 5, eval, commit)
	if evals > 5 {
		t.Errorf("cold grid search evaluated %d guesses, want <= 5", evals)
	}
	evals = 0
	SearchWarm(context.Background(), 1, 1e9, 17, 1.0001, 5, eval, commit)
	if evals > 5 {
		t.Errorf("warm grid search evaluated %d guesses, want <= 5", evals)
	}
}

// TestSearchWarmContextStopsEarly checks that cancellation stops the
// warm driver between probes.
func TestSearchWarmContextStopsEarly(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	evals := 0
	eval := func(_ context.Context, g float64) (float64, bool) {
		evals++
		if evals == 2 {
			cancel()
		}
		return g, true
	}
	commit := func(g float64, v float64, ok bool) *sched.Schedule {
		if !ok {
			return nil
		}
		return guessSchedule(v)
	}
	res := SearchWarm(ctx, 1, 100, 50, 1.125, 0, eval, commit)
	if res.Guesses > 3 {
		t.Errorf("canceled warm search consumed %d guesses, want <= 3", res.Guesses)
	}
	if res.Schedule == nil {
		t.Error("canceled warm search dropped the best-so-far schedule")
	}
}

// TestSearchWarmSeedOutsideInterval clamps seeds onto the interval.
func TestSearchWarmSeedOutsideInterval(t *testing.T) {
	ratio := 1.125
	threshold := 2.0
	eval := func(_ context.Context, g float64) (float64, bool) { return g, g >= threshold }
	commit := func(g float64, v float64, ok bool) *sched.Schedule {
		if !ok {
			return nil
		}
		return guessSchedule(v)
	}
	cold := SearchGridSeq(context.Background(), 1, 4, ratio, 0, eval, commit)
	for _, seed := range []float64{1e-6, 1e6} {
		warm := SearchWarm(context.Background(), 1, 4, seed, ratio, 0, eval, commit)
		if warm.Schedule == nil || warm.FinalGuess != cold.FinalGuess {
			t.Errorf("seed=%g: warm final %v, cold final %v", seed, warm.FinalGuess, cold.FinalGuess)
		}
	}
}
