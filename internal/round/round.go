// Package round implements the standard scaling and rounding machinery of
// the EPTAS (Section 2 of the paper): scaling an instance by a makespan
// guess, geometric rounding of job sizes to powers of (1+eps), and the
// dual-approximation binary-search driver over makespan guesses.
package round

import (
	"context"
	"math"

	"repro/internal/numeric"
	"repro/internal/sched"
)

// Exponent returns the smallest integer e with (1+eps)^e >= size.
// size must be positive.
func Exponent(size, eps float64) int {
	e := math.Log(size) / math.Log1p(eps)
	// Guard against size being an exact power: nudge before the ceil so
	// representable powers map to themselves.
	return int(math.Ceil(e - 1e-9))
}

// Value returns (1+eps)^e.
func Value(e int, eps float64) float64 {
	return math.Pow(1+eps, float64(e))
}

// UpGeometric rounds size up to the next power of (1+eps) and returns the
// rounded value together with its exponent.
func UpGeometric(size, eps float64) (float64, int) {
	e := Exponent(size, eps)
	v := Value(e, eps)
	if v < size { // floating point slack
		e++
		v = Value(e, eps)
	}
	return v, e
}

// ScaleRound returns a copy of in with every job size divided by target,
// rounded up to a power of (1+eps), and snapped up onto the fixed-point
// grid of numeric.Fx. Job IDs, bags, order and machine count are
// preserved, so a schedule of the result is a schedule of in. The second
// result holds the geometric exponent of each job.
//
// The grid snap is where float64 ends in the EPTAS pipeline: every size
// of the returned instance is an exact fixed-point grid value, so all downstream
// sums and comparisons of sizes — whether performed on int64 fixed-point
// values or on the lifted float64s — are exact and agree bit for bit
// (see the numeric package's denominator contract). Snapping up keeps
// the round-up invariant: the stored size is never below Size/target.
func ScaleRound(in *sched.Instance, target, eps float64) (*sched.Instance, []int) {
	out := in.Clone()
	exps := make([]int, len(out.Jobs))
	for i := range out.Jobs {
		v, e := UpGeometric(out.Jobs[i].Size/target, eps)
		out.Jobs[i].Size = numeric.Quantize(v)
		exps[i] = e
	}
	return out, exps
}

// Decision builds a schedule for a makespan guess. It returns the schedule
// (on the original instance) and whether the guess was accepted. A nil
// schedule with ok=true is invalid.
type Decision func(guess float64) (*sched.Schedule, bool)

// SearchResult reports the outcome of the binary search.
type SearchResult struct {
	// Schedule is the best schedule produced by any accepted guess, or
	// nil if no guess was accepted.
	Schedule *sched.Schedule
	// Makespan is the true makespan of Schedule.
	Makespan float64
	// Guesses is the number of decision invocations.
	Guesses int
	// FinalGuess is the last accepted guess value.
	FinalGuess float64
}

func newSearchResult() SearchResult {
	return SearchResult{Makespan: math.Inf(1)}
}

// Search runs dual-approximation binary search for the smallest accepted
// makespan guess in [lb, ub], stopping when the interval is narrower than
// step or after maxGuesses decisions. The best schedule over all accepted
// guesses (by true makespan) is returned.
//
// Search is a convenience wrapper over SearchSeq — and therefore over the
// exact driver SearchSpec uses — for callers with a plain Decision and no
// cancellation needs.
func Search(lb, ub, step float64, maxGuesses int, dec Decision) SearchResult {
	eval := func(_ context.Context, guess float64) (*sched.Schedule, bool) {
		return dec(guess)
	}
	commit := func(_ float64, s *sched.Schedule, ok bool) *sched.Schedule {
		if !ok {
			return nil
		}
		return s
	}
	return SearchSeq(context.Background(), lb, ub, step, maxGuesses, eval, commit)
}
