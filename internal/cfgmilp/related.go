package cfgmilp

import (
	"context"

	"repro/internal/classify"
	"repro/internal/lp"
	"repro/internal/milp"
	"repro/internal/numeric"
	"repro/internal/pattern"
	"repro/internal/sched"
)

// RelatedLayout is the variable layout of a related-family
// configuration program. Its presence on Built marks the model as
// related-shaped: Decode fills Plan.RelCounts from it, and backends
// that only understand the bag-constrained demand block (the
// configuration DP) return ErrUnsupported.
type RelatedLayout struct {
	// Info is the related classification the model was built from.
	Info *classify.RelInfo
	// Space is the per-speed-class configuration space.
	Space *pattern.RelSpace
	// XVar[k][p] is the LP variable index of the multiplicity of
	// pattern p on speed class k.
	XVar [][]int
}

// BuildRelated constructs the related-family feasibility program over
// the per-class configuration space sp: one integral multiplicity
// variable per (class, pattern), machine-count rows per class, a
// coverage row per large size, and one aggregate area row whose
// headroom coefficients come from the exact fixed-point capacities.
// The context is polled between constraint blocks.
func BuildRelated(ctx context.Context, in *sched.Instance, info *classify.RelInfo, sp *pattern.RelSpace) (*Built, error) {
	b := &Built{Mode: ModeDecomposed, Related: &RelatedLayout{Info: info, Space: sp}}
	prob := lp.NewProblem()

	var integers []int
	b.Related.XVar = make([][]int, len(sp.Classes))
	for k, ps := range sp.Classes {
		b.Related.XVar[k] = make([]int, len(ps))
		for p := range ps {
			v := prob.AddVar(0)
			b.Related.XVar[k][p] = v
			integers = append(integers, v)
		}
	}

	// Per class: pattern multiplicities cover the class's machines
	// exactly (the empty pattern absorbs idle machines).
	for k, ps := range sp.Classes {
		terms := make([]lp.Term, len(ps))
		for p := range ps {
			terms[p] = lp.Term{Var: b.Related.XVar[k][p], Coef: 1}
		}
		prob.AddConstraint(terms, lp.EQ, float64(info.ClassCount[k]))
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Per large size: enough slots across all classes.
	for si, demand := range info.SizeCount {
		var terms []lp.Term
		for k, ps := range sp.Classes {
			for p := range ps {
				if c := ps[p].Count[si]; c > 0 {
					terms = append(terms, lp.Term{Var: b.Related.XVar[k][p], Coef: float64(c)})
				}
			}
		}
		if len(terms) == 0 {
			return nil, infeasibleErr("no configuration offers slots of large size idx %d", si)
		}
		prob.AddConstraint(terms, lp.GE, float64(demand))
	}

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Aggregate area: capacity headroom across all machines covers the
	// small jobs. Headrooms are exact fixed-point differences lifted to
	// float64 (lossless for grid values).
	if info.SmallArea > 0 {
		var terms []lp.Term
		for k, ps := range sp.Classes {
			for p := range ps {
				headroom := info.CapFx[k] - ps[p].HeightFx
				if headroom < 0 {
					headroom = 0
				}
				terms = append(terms, lp.Term{Var: b.Related.XVar[k][p], Coef: headroom.Float()})
			}
		}
		prob.AddConstraint(terms, lp.GE, info.SmallArea)
	}

	b.Demand = Demand{Machines: in.Machines, SmallAreaFx: info.SmallAreaFx, SmallArea: info.SmallArea}
	b.Model = &milp.Model{Prob: prob, Integer: integers}
	b.IntegerVars = len(integers)
	return b, nil
}

// decodeRelated fills the related half of a plan from a solution.
func (b *Built) decodeRelated(sol milp.Solution) *Plan {
	rel := b.Related
	plan := &Plan{RelCounts: make([][]int, len(rel.XVar))}
	for k, vars := range rel.XVar {
		plan.RelCounts[k] = make([]int, len(vars))
		for p, v := range vars {
			plan.RelCounts[k][p] = numeric.RoundInt(sol.X[v])
		}
	}
	return plan
}
