package cfgmilp

import (
	"context"
	"testing"

	"repro/internal/classify"
	"repro/internal/greedy"
	"repro/internal/milp"
	"repro/internal/pattern"
	"repro/internal/round"
	"repro/internal/sched"
	"repro/internal/transform"
	"repro/internal/workload"
)

// setup builds the full pre-MILP pipeline on an instance scaled by its
// bag-LPT makespan.
func setup(t *testing.T, in *sched.Instance, eps float64, bprime int) (*sched.Instance, *classify.View, []bool, *pattern.Space) {
	t.Helper()
	ub, err := greedy.BagLPT(in)
	if err != nil {
		t.Fatal(err)
	}
	scaled, _ := round.ScaleRound(in, ub.Makespan(), eps)
	info, err := classify.Classify(scaled, eps, classify.Options{BPrimeOverride: bprime})
	if err != nil {
		t.Fatal(err)
	}
	tr := transform.Apply(scaled, info)
	sp, err := pattern.Enumerate(context.Background(), tr.Inst, tr.View, tr.Priority, pattern.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return tr.Inst, tr.View, tr.Priority, sp
}

func solvePlan(t *testing.T, tInst *sched.Instance, view *classify.View, prio []bool, sp *pattern.Space, mode Mode) *Plan {
	t.Helper()
	built, err := Build(context.Background(), tInst, view, prio, sp, BuildOptions{Mode: mode})
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	sol, err := milp.Solve(context.Background(), built.Model, milp.Options{StopAtFirst: true, MaxNodes: 4000})
	if err != nil {
		t.Fatalf("milp.Solve: %v", err)
	}
	if sol.Status != milp.StatusOptimal && sol.Status != milp.StatusFeasible {
		t.Fatalf("MILP status = %v", sol.Status)
	}
	return built.Decode(sol)
}

func TestDecomposedFeasibleAtUpperBound(t *testing.T) {
	// Lemma 5 analogue: at a guess that certainly admits a schedule (the
	// bag-LPT makespan), the MILP must be feasible.
	for seed := int64(1); seed <= 5; seed++ {
		in := workload.MustGenerate(workload.Spec{
			Family: workload.Bimodal, Machines: 6, Jobs: 24, Bags: 12, Seed: seed,
		})
		tInst, view, prio, sp := setup(t, in, 0.5, 2)
		plan := solvePlan(t, tInst, view, prio, sp, ModeDecomposed)
		checkPlanStructure(t, tInst, view, prio, sp, plan)
	}
}

func TestPaperModeFeasibleAtUpperBound(t *testing.T) {
	for seed := int64(1); seed <= 3; seed++ {
		in := workload.MustGenerate(workload.Spec{
			Family: workload.Bimodal, Machines: 4, Jobs: 14, Bags: 6, Seed: seed,
		})
		tInst, view, prio, sp := setup(t, in, 0.5, 2)
		plan := solvePlan(t, tInst, view, prio, sp, ModePaper)
		if !plan.HasY {
			t.Fatal("paper mode plan lacks Y")
		}
		checkPlanStructure(t, tInst, view, prio, sp, plan)
		checkYStructure(t, tInst, view, prio, sp, plan)
	}
}

// checkPlanStructure verifies constraints (1) and (2) on the decoded plan.
func checkPlanStructure(t *testing.T, tInst *sched.Instance, view *classify.View, prio []bool, sp *pattern.Space, plan *Plan) {
	t.Helper()
	total := 0
	for _, c := range plan.XCount {
		if c < 0 {
			t.Fatalf("negative pattern count")
		}
		total += c
	}
	if total != tInst.Machines {
		t.Errorf("sum x_p = %d, want %d (constraint 1)", total, tInst.Machines)
	}
	// Coverage per priority (bag, ML size).
	type key struct{ bag, si int }
	need := make(map[key]int)
	needX := make(map[int]int)
	for j, job := range tInst.Jobs {
		cls := view.Class(j)
		if cls == classify.Small {
			continue
		}
		si := view.JobIdx[j]
		if prio[job.Bag] {
			need[key{job.Bag, si}]++
		} else {
			needX[si]++
		}
	}
	for k, n := range need {
		have := 0
		for p, c := range plan.XCount {
			have += c * sp.Patterns[p].ChiPrio(k.bag, k.si)
		}
		if have < n {
			t.Errorf("coverage (bag %d,size %d): %d slots < %d jobs (constraint 2)", k.bag, k.si, have, n)
		}
	}
	for si, n := range needX {
		have := 0
		for p, c := range plan.XCount {
			have += c * sp.XMult(&sp.Patterns[p], si)
		}
		if have < n {
			t.Errorf("X coverage size %d: %d slots < %d jobs", si, have, n)
		}
	}
}

// checkYStructure verifies constraints (3)-(5) on the decoded y values.
func checkYStructure(t *testing.T, tInst *sched.Instance, view *classify.View, prio []bool, sp *pattern.Space, plan *Plan) {
	t.Helper()
	info := view.Info
	// (3): coverage of priority small jobs.
	type key struct{ bag, si int }
	counts := make(map[key]int)
	for j, job := range tInst.Jobs {
		if view.Class(j) == classify.Small && prio[job.Bag] {
			counts[key{job.Bag, view.JobIdx[j]}]++
		}
	}
	for k, n := range counts {
		got := 0.0
		for p := range sp.Patterns {
			got += plan.Y[YKey{Pattern: p, Bag: k.bag, SizeIdx: k.si}]
		}
		if got < float64(n)-1e-6 {
			t.Errorf("y coverage (bag %d,size %d) = %.3f < %d", k.bag, k.si, got, n)
		}
	}
	// (5): per-pattern per-bag count caps and chi exclusion.
	perPB := make(map[[2]int]float64)
	for k, v := range plan.Y {
		if sp.Patterns[k.Pattern].ChiBag(k.Bag) {
			t.Errorf("y > 0 on pattern containing bag %d", k.Bag)
		}
		perPB[[2]int{k.Pattern, k.Bag}] += v
	}
	for pb, v := range perPB {
		if v > float64(plan.XCount[pb[0]])+1e-6 {
			t.Errorf("pattern %d bag %d: y total %.3f > x %d (constraint 5)", pb[0], pb[1], v, plan.XCount[pb[0]])
		}
	}
	// (4): per-pattern area.
	area := make(map[int]float64)
	for k, v := range plan.Y {
		area[k.Pattern] += v * info.Sizes[k.SizeIdx]
	}
	for p, a := range area {
		head := (info.T - sp.Patterns[p].Height) * float64(plan.XCount[p])
		if a > head+1e-6 {
			t.Errorf("pattern %d: priority small area %.3f > headroom %.3f (constraint 4)", p, a, head)
		}
	}
}

func TestInfeasibleWhenNoSlotFits(t *testing.T) {
	// A guess far below OPT: scaling by a tiny makespan makes every job
	// bigger than T, so no pattern can host them and Build reports a
	// structurally infeasible model.
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Uniform, Machines: 2, Jobs: 8, Bags: 4, Seed: 1,
	})
	scaled, _ := round.ScaleRound(in, 0.01, 0.5) // absurd guess
	info, err := classify.Classify(scaled, 0.5, classify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := transform.Apply(scaled, info)
	sp, err := pattern.Enumerate(context.Background(), tr.Inst, tr.View, tr.Priority, pattern.Options{})
	if err != nil {
		t.Fatal(err)
	}
	_, err = Build(context.Background(), tr.Inst, tr.View, tr.Priority, sp, BuildOptions{Mode: ModeDecomposed})
	if err == nil {
		t.Fatal("expected structural infeasibility")
	}
	if _, ok := err.(InfeasibleError); !ok {
		t.Fatalf("error type = %T: %v", err, err)
	}
}

func TestMILPInfeasibleAtLowGuess(t *testing.T) {
	// A guess moderately below OPT: patterns exist but counts cannot be
	// covered within m machines; the solver must report infeasible.
	in := sched.NewInstance(2)
	for i := 0; i < 4; i++ {
		in.AddJob(1, i) // 4 unit jobs, 2 machines: OPT = 2
	}
	scaled, _ := round.ScaleRound(in, 1.1, 0.5) // guess 1.1 < 2
	info, err := classify.Classify(scaled, 0.5, classify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := transform.Apply(scaled, info)
	sp, err := pattern.Enumerate(context.Background(), tr.Inst, tr.View, tr.Priority, pattern.Options{})
	if err != nil {
		t.Fatal(err)
	}
	built, err := Build(context.Background(), tr.Inst, tr.View, tr.Priority, sp, BuildOptions{Mode: ModeDecomposed})
	if err != nil {
		return // structural infeasibility is also acceptable
	}
	sol, err := milp.Solve(context.Background(), built.Model, milp.Options{StopAtFirst: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != milp.StatusInfeasible {
		// Each machine fits at most 2 unit jobs under T=2.25*1.1, so it
		// may be feasible; what matters is that a schedule of height
		// <= T*guess exists iff the MILP is feasible. Verify by bound:
		// 4 jobs of size ~0.909 (scaled) need 2 per machine = 1.82 <=
		// T=2.25, so feasible is actually correct here.
		if sol.Status != milp.StatusOptimal && sol.Status != milp.StatusFeasible {
			t.Errorf("status = %v", sol.Status)
		}
	}
}

func TestModeString(t *testing.T) {
	if ModeDecomposed.String() != "decomposed" || ModePaper.String() != "paper" {
		t.Error("mode names wrong")
	}
	if Mode(9).String() == "" {
		t.Error("unknown mode must still format")
	}
}

func TestIntegerVarCounts(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Bimodal, Machines: 4, Jobs: 12, Bags: 6, Seed: 2,
	})
	tInst, view, prio, sp := setup(t, in, 0.5, 2)
	dec, err := Build(context.Background(), tInst, view, prio, sp, BuildOptions{Mode: ModeDecomposed})
	if err != nil {
		t.Fatal(err)
	}
	if dec.IntegerVars != len(sp.Patterns) {
		t.Errorf("decomposed integer vars = %d, want %d", dec.IntegerVars, len(sp.Patterns))
	}
	pap, err := Build(context.Background(), tInst, view, prio, sp, BuildOptions{Mode: ModePaper})
	if err != nil {
		t.Fatal(err)
	}
	if pap.IntegerVars < dec.IntegerVars {
		t.Errorf("paper integer vars = %d < decomposed %d", pap.IntegerVars, dec.IntegerVars)
	}
}
