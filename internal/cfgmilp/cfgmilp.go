// Package cfgmilp builds and decodes the paper's configuration MILP
// (Section 3, constraints (1)-(9)) over an enumerated pattern space.
//
// Two model flavours are provided:
//
//   - ModePaper materializes the y variables: per pattern, priority bag
//     and small size a (mostly fractional) assignment variable, integral
//     for sizes above sigma = eps^(2k+11) exactly as constraint (7)
//     demands. Non-priority small jobs are aggregated per (pattern, size)
//     — their per-bag caps are not needed because the placer redistributes
//     them globally with group-bag-LPT (Lemma 9 works with area bounds).
//
//   - ModeDecomposed keeps only the integral x variables and replaces the
//     y block by aggregate area and per-bag counting rows ((4)/(5) summed
//     over patterns). The small-job distribution is then computed by the
//     placer's capacity-respecting greedy. This is the default: it keeps
//     the LP dimension small while the repair lemmas absorb the same
//     rounding error, which the experiment suite verifies against exact
//     optima (EX-A1 compares both modes).
package cfgmilp

import (
	"context"
	"fmt"
	"sort"

	"repro/internal/classify"
	"repro/internal/lp"
	"repro/internal/milp"
	"repro/internal/numeric"
	"repro/internal/pattern"
	"repro/internal/sched"
)

// Mode selects the model flavour.
type Mode int

const (
	// ModeDecomposed is the x-only model with aggregated small-job rows.
	ModeDecomposed Mode = iota
	// ModePaper is the faithful model with y variables per constraint
	// (3)-(9).
	ModePaper
)

// String returns the mode name.
func (m Mode) String() string {
	switch m {
	case ModeDecomposed:
		return "decomposed"
	case ModePaper:
		return "paper"
	default:
		return fmt.Sprintf("mode(%d)", int(m))
	}
}

// YKey identifies a priority small-job variable y^{B^s_l}_p.
type YKey struct {
	Pattern int
	Bag     int
	SizeIdx int
}

// BagSizeCount is one (bag, size index) demand row.
type BagSizeCount struct{ Bag, SizeIdx, Count int }

// SizeCount is one per-size demand row.
type SizeCount struct{ SizeIdx, Count int }

// BagCount is one per-bag demand row.
type BagCount struct{ Bag, Count int }

// Demand is the backend-neutral statement of the configuration program:
// the exact integer demand statistics of the transformed instance that
// every constraint of the MILP is derived from. It is what non-LP oracle
// backends (the configuration DP) solve against directly, without going
// through the materialized LP rows. All slices are sorted by their key
// fields, so iteration is deterministic.
type Demand struct {
	// Machines is the machine count (the sum of pattern multiplicities).
	Machines int
	// MLPrio lists the priority (bag, medium/large size) slot demands
	// (constraint (2)).
	MLPrio []BagSizeCount
	// XTotals lists the anonymous large-slot demands per size ((2x)).
	XTotals []SizeCount
	// SmallPrioBags lists, per priority bag with small jobs, how many
	// machines must avoid the bag (the aggregated (3)+(5) rows).
	SmallPrioBags []BagCount
	// SmallAreaFx is the exact fixed-point total size of all small jobs
	// (the aggregate area right-hand side); SmallArea is its float64 lift
	// (or the seed's float accumulation under BuildOptions.Float64Ref).
	SmallAreaFx numeric.Fx
	SmallArea   float64
}

// Built is a constructed oracle model: the backend-neutral demand block
// plus the materialized MILP with its variable maps.
type Built struct {
	Mode  Mode
	Space *pattern.Space
	// View is the exact numeric view of the transformed instance the
	// model was built from; Prio flags its priority bags.
	View *classify.View
	Prio []bool
	// Demand is the backend-neutral demand block (see Demand).
	Demand Demand
	Model  *milp.Model
	// XVar[p] is the LP variable index of pattern p's multiplicity.
	XVar []int
	// YVar maps priority small keys to variable indices (ModePaper).
	YVar map[YKey]int
	// ZVar maps (pattern, small size idx) to the aggregated non-priority
	// variable indices (ModePaper).
	ZVar map[[2]int]int
	// IntegerVars is the number of integral variables in the model.
	IntegerVars int
	// Related, when non-nil, marks a related-family model (see
	// BuildRelated); Space, View and Prio are nil on such models and
	// backends that require the bag-constrained demand block must
	// return oracle's ErrUnsupported.
	Related *RelatedLayout
}

// Plan is the decoded MILP solution consumed by the placer.
type Plan struct {
	Space *pattern.Space
	// XCount[p] is the number of machines running pattern p.
	XCount []int
	// Y holds the priority small-job assignment (ModePaper only).
	Y map[YKey]float64
	// HasY reports whether Y is populated.
	HasY bool
	// RelCounts[k][p] is the number of class-k machines running
	// configuration p (related-family models only; Space and XCount are
	// nil on such plans).
	RelCounts [][]int
}

// BuildOptions selects the model flavour and the numeric path.
type BuildOptions struct {
	// Mode selects the model flavour.
	Mode Mode
	// Float64Ref accumulates the small-job area and applies the
	// constraint (7) integrality threshold with the retained float64
	// reference arithmetic (the pre-fixed-point seed path). The produced
	// model is bit-identical either way; the flag exists for differential
	// testing.
	Float64Ref bool
}

// Build constructs the MILP for the transformed instance in (with
// numeric view, see classify.View) with bag priority flags prio over the
// pattern space sp. Coverage coefficients and right-hand sides are exact
// integers derived from the view; the small-job area right-hand side is
// an exact fixed-point sum lifted to float64 once. Only the LP interior
// stays float64. The context is polled between constraint blocks (the
// per-pattern loops of ModePaper can be large); a canceled or expired
// ctx aborts the build and returns ctx.Err().
func Build(ctx context.Context, in *sched.Instance, view *classify.View, prio []bool, sp *pattern.Space, opt BuildOptions) (*Built, error) {
	info := view.Info
	mode := opt.Mode
	b := &Built{Mode: mode, Space: sp, View: view, Prio: prio}
	prob := lp.NewProblem()

	// x variables, one per pattern, all integral.
	b.XVar = make([]int, len(sp.Patterns))
	var integers []int
	for p := range sp.Patterns {
		v := prob.AddVar(0)
		b.XVar[p] = v
		integers = append(integers, v)
	}

	// Instance statistics, resolved through the exact view (no per-job
	// float64 searches).
	mlPrio := make(map[bagSize]int) // priority (bag, ML size) counts
	xTotals := make(map[int]int)    // large size -> non-priority count
	smallPrio := make(map[bagSize]int)
	smallX := make(map[int]int) // small size -> non-priority count
	smallCountByBag := make(map[int]int)
	var smallAreaFx numeric.Fx
	smallAreaRef := 0.0
	for j, job := range in.Jobs {
		si := view.JobIdx[j]
		cls := info.SizeClass[si]
		switch {
		case cls != classify.Small && prio[job.Bag]:
			mlPrio[bagSize{job.Bag, si}]++
		case cls == classify.Large:
			xTotals[si]++
		case cls == classify.Medium:
			return nil, fmt.Errorf("cfgmilp: medium job %d in non-priority bag %d; transform first", j, job.Bag)
		case cls == classify.Small:
			smallAreaFx += view.JobFx[j]
			if opt.Float64Ref {
				smallAreaRef += job.Size
			}
			smallCountByBag[job.Bag]++
			if prio[job.Bag] {
				smallPrio[bagSize{job.Bag, si}]++
			} else {
				smallX[si]++
			}
		}
	}
	// Exact lift: for grid sizes the fixed sum and the float sum agree
	// bit for bit (numeric package contract); the reference path keeps
	// the seed's float accumulation for the differential tests.
	smallArea := smallAreaFx.Float()
	if opt.Float64Ref {
		smallArea = smallAreaRef
	}

	// Record the backend-neutral demand block before materializing any LP
	// rows: non-LP backends solve against exactly these statistics.
	b.Demand = Demand{
		Machines:    in.Machines,
		SmallAreaFx: smallAreaFx,
		SmallArea:   smallArea,
	}
	for _, ks := range bagSizeKeys(mlPrio) {
		b.Demand.MLPrio = append(b.Demand.MLPrio, BagSizeCount{Bag: ks.bag, SizeIdx: ks.si, Count: mlPrio[ks]})
	}
	for _, si := range intKeys(xTotals) {
		b.Demand.XTotals = append(b.Demand.XTotals, SizeCount{SizeIdx: si, Count: xTotals[si]})
	}
	for _, bag := range intKeys(smallCountByBag) {
		if prio[bag] {
			b.Demand.SmallPrioBags = append(b.Demand.SmallPrioBags, BagCount{Bag: bag, Count: smallCountByBag[bag]})
		}
	}

	// (1) sum_p x_p = m (the empty pattern absorbs idle machines).
	allX := make([]lp.Term, len(sp.Patterns))
	for p := range sp.Patterns {
		allX[p] = lp.Term{Var: b.XVar[p], Coef: 1}
	}
	prob.AddConstraint(allX, lp.EQ, float64(in.Machines))

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// (2) priority coverage: per (priority bag, ML size) enough slots.
	for _, ks := range bagSizeKeys(mlPrio) {
		var terms []lp.Term
		for p := range sp.Patterns {
			if c := sp.Patterns[p].ChiPrio(ks.bag, ks.si); c > 0 {
				terms = append(terms, lp.Term{Var: b.XVar[p], Coef: float64(c)})
			}
		}
		if len(terms) == 0 {
			return nil, infeasibleErr("no pattern offers slot (bag %d, size idx %d)", ks.bag, ks.si)
		}
		prob.AddConstraint(terms, lp.GE, float64(mlPrio[ks]))
	}

	// (2x) X coverage per large size.
	for _, si := range intKeys(xTotals) {
		var terms []lp.Term
		for p := range sp.Patterns {
			if c := sp.XMult(&sp.Patterns[p], si); c > 0 {
				terms = append(terms, lp.Term{Var: b.XVar[p], Coef: float64(c)})
			}
		}
		if len(terms) == 0 {
			return nil, infeasibleErr("no pattern offers X slots of size idx %d", si)
		}
		prob.AddConstraint(terms, lp.GE, float64(xTotals[si]))
	}

	switch mode {
	case ModeDecomposed:
		// (A) aggregate area: free space across all machines covers the
		// small jobs. The right-hand side is read back from the demand
		// block so the materialized row and the backend-neutral statement
		// are one value by construction.
		var areaTerms []lp.Term
		for p := range sp.Patterns {
			headroom := info.T - sp.Patterns[p].Height
			if headroom < 0 {
				headroom = 0
			}
			areaTerms = append(areaTerms, lp.Term{Var: b.XVar[p], Coef: headroom})
		}
		if b.Demand.SmallArea > 0 {
			prob.AddConstraint(areaTerms, lp.GE, b.Demand.SmallArea)
		}
		// (C) per priority bag with small jobs: enough machines whose
		// pattern avoids the bag ((3)+(5) aggregated over patterns).
		for _, bag := range intKeys(smallCountByBag) {
			if !prio[bag] {
				// Non-priority bags can use any machine; feasibility is
				// |B_l| <= m, checked by the caller.
				continue
			}
			var terms []lp.Term
			for p := range sp.Patterns {
				if !sp.Patterns[p].ChiBag(bag) {
					terms = append(terms, lp.Term{Var: b.XVar[p], Coef: 1})
				}
			}
			if len(terms) == 0 {
				return nil, infeasibleErr("no pattern avoids bag %d for its small jobs", bag)
			}
			prob.AddConstraint(terms, lp.GE, float64(smallCountByBag[bag]))
		}

	case ModePaper:
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		b.YVar = make(map[YKey]int)
		b.ZVar = make(map[[2]int]int)
		// y variables: per (pattern, priority bag, small size) where the
		// pattern avoids the bag (constraint (5) zeroes the rest, so we
		// never materialize them). Integral when size > sigma ((7)-(8)).
		for _, ks := range bagSizeKeys(smallPrio) {
			// Constraint (7) integrality: exact integer compare against
			// the folded Sigma+Tol capacity (reference: the seed's float
			// compare — identical by the numeric.Cap equivalence).
			integral := info.SizesFx[ks.si] > info.SigmaCapFx
			if opt.Float64Ref {
				integral = info.Sizes[ks.si] > info.Sigma+numeric.Tol
			}
			for p := range sp.Patterns {
				if sp.Patterns[p].ChiBag(ks.bag) {
					continue
				}
				v := prob.AddVar(0)
				b.YVar[YKey{Pattern: p, Bag: ks.bag, SizeIdx: ks.si}] = v
				if integral {
					integers = append(integers, v)
				}
			}
		}
		// z variables: aggregated non-priority small jobs per size ((9)).
		for _, si := range intKeys(smallX) {
			for p := range sp.Patterns {
				v := prob.AddVar(0)
				b.ZVar[[2]int{p, si}] = v
			}
		}
		// (3) coverage.
		for _, ks := range bagSizeKeys(smallPrio) {
			var terms []lp.Term
			for p := range sp.Patterns {
				if v, ok := b.YVar[YKey{p, ks.bag, ks.si}]; ok {
					terms = append(terms, lp.Term{Var: v, Coef: 1})
				}
			}
			if len(terms) == 0 {
				return nil, infeasibleErr("no pattern can host small jobs of bag %d", ks.bag)
			}
			prob.AddConstraint(terms, lp.GE, float64(smallPrio[ks]))
		}
		for _, si := range intKeys(smallX) {
			var terms []lp.Term
			for p := range sp.Patterns {
				terms = append(terms, lp.Term{Var: b.ZVar[[2]int{p, si}], Coef: 1})
			}
			prob.AddConstraint(terms, lp.GE, float64(smallX[si]))
		}
		// (4) per-pattern area.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		for p := range sp.Patterns {
			headroom := info.T - sp.Patterns[p].Height
			if headroom < 0 {
				headroom = 0
			}
			terms := []lp.Term{{Var: b.XVar[p], Coef: -headroom}}
			for _, ks := range bagSizeKeys(smallPrio) {
				if v, ok := b.YVar[YKey{p, ks.bag, ks.si}]; ok {
					terms = append(terms, lp.Term{Var: v, Coef: info.Sizes[ks.si]})
				}
			}
			for _, si := range intKeys(smallX) {
				terms = append(terms, lp.Term{Var: b.ZVar[[2]int{p, si}], Coef: info.Sizes[si]})
			}
			if len(terms) > 1 {
				prob.AddConstraint(terms, lp.LE, 0)
			}
		}
		// (5) per (pattern, priority bag): at most x_p small jobs.
		perBagSizes := make(map[int][]int)
		var bagList []int
		for _, ks := range bagSizeKeys(smallPrio) {
			if _, ok := perBagSizes[ks.bag]; !ok {
				bagList = append(bagList, ks.bag)
			}
			perBagSizes[ks.bag] = append(perBagSizes[ks.bag], ks.si)
		}
		for _, bag := range bagList {
			for p := range sp.Patterns {
				terms := []lp.Term{{Var: b.XVar[p], Coef: -1}}
				n := 0
				for _, si := range perBagSizes[bag] {
					if v, ok := b.YVar[YKey{p, bag, si}]; ok {
						terms = append(terms, lp.Term{Var: v, Coef: 1})
						n++
					}
				}
				if n > 0 {
					prob.AddConstraint(terms, lp.LE, 0)
				}
			}
		}
	}

	b.Model = &milp.Model{Prob: prob, Integer: integers}
	b.IntegerVars = len(integers)
	return b, nil
}

// PatternCount returns the number of configurations in the model's
// space across both shapes (the enumerated pattern space for bag
// models, the per-speed-class spaces for related models); the oracle
// portfolio uses it to size the race.
func (b *Built) PatternCount() int {
	if b.Related != nil {
		return b.Related.Space.TotalPatterns()
	}
	return len(b.Space.Patterns)
}

// Decode converts a MILP solution into a Plan.
func (b *Built) Decode(sol milp.Solution) *Plan {
	if b.Related != nil {
		return b.decodeRelated(sol)
	}
	plan := &Plan{Space: b.Space, XCount: make([]int, len(b.XVar))}
	for p, v := range b.XVar {
		plan.XCount[p] = numeric.RoundInt(sol.X[v])
	}
	if b.Mode == ModePaper {
		plan.HasY = true
		plan.Y = make(map[YKey]float64, len(b.YVar))
		for k, v := range b.YVar {
			if sol.X[v] > 1e-9 {
				plan.Y[k] = sol.X[v]
			}
		}
	}
	return plan
}

// InfeasibleError marks a structurally infeasible model (a required slot
// type has no supplying pattern), distinguishing it from solver failures.
type InfeasibleError struct{ msg string }

func (e InfeasibleError) Error() string { return "cfgmilp: " + e.msg }

func infeasibleErr(format string, args ...interface{}) error {
	return InfeasibleError{msg: fmt.Sprintf(format, args...)}
}

// --- deterministic map-iteration helpers ---

// bagSize keys the per-(bag, size-index) statistics maps.
type bagSize struct{ bag, si int }

func bagSizeKeys(m map[bagSize]int) []bagSize {
	keys := make([]bagSize, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a].bag != keys[b].bag {
			return keys[a].bag < keys[b].bag
		}
		return keys[a].si < keys[b].si
	})
	return keys
}

func intKeys(m map[int]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}
