package cfgmilp

import (
	"context"
	"testing"

	"repro/internal/classify"
	"repro/internal/milp"
	"repro/internal/pattern"
	"repro/internal/sched"
)

// buildRelatedModel classifies, enumerates and builds the related
// feasibility program of a small scaled speed instance (speeds 2,1,1 at
// eps 0.5: caps 3 and 1.5, large sizes 1.0 x2 and 0.6 x2, small area
// 0.2).
func buildRelatedModel(t *testing.T) (*sched.Instance, *classify.RelInfo, *pattern.RelSpace, *Built) {
	t.Helper()
	in := sched.NewRelatedInstance([]float64{2, 1, 1})
	for i, size := range []float64{1.0, 1.0, 0.6, 0.6, 0.2} {
		in.AddJob(size, i)
	}
	info, err := classify.Related(in, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := pattern.EnumerateRelated(context.Background(), info, pattern.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := BuildRelated(context.Background(), in, info, sp)
	if err != nil {
		t.Fatal(err)
	}
	return in, info, sp, b
}

func TestBuildRelated(t *testing.T) {
	in, info, sp, b := buildRelatedModel(t)

	if b.Related == nil || b.Related.Info != info || b.Related.Space != sp {
		t.Fatal("Built.Related does not carry the layout it was built from")
	}
	if b.PatternCount() != sp.TotalPatterns() {
		t.Errorf("PatternCount = %d, want %d", b.PatternCount(), sp.TotalPatterns())
	}
	if b.IntegerVars != sp.TotalPatterns() {
		t.Errorf("IntegerVars = %d, want one multiplicity per (class, pattern) = %d",
			b.IntegerVars, sp.TotalPatterns())
	}
	if b.Demand.Machines != in.Machines || b.Demand.SmallArea != info.SmallArea {
		t.Error("Demand block does not mirror the instance")
	}

	// The program must be integer-feasible, and its decoded plan must
	// cover every class's machines and every large size's demand.
	sol, err := milp.Solve(context.Background(), b.Model, milp.Options{StopAtFirst: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != milp.StatusOptimal && sol.Status != milp.StatusFeasible {
		t.Fatalf("status %v, want an integer solution (the caps admit a feasible layout)", sol.Status)
	}
	plan := b.Decode(sol)
	if plan.RelCounts == nil {
		t.Fatal("Decode of a related model did not fill RelCounts")
	}
	slots := make([]int, len(info.Sizes))
	for k, counts := range plan.RelCounts {
		machines := 0
		for p, c := range counts {
			if c < 0 {
				t.Fatalf("negative multiplicity %d (class %d)", c, k)
			}
			machines += c
			for si, n := range sp.Classes[k][p].Count {
				slots[si] += c * n
			}
		}
		if machines != info.ClassCount[k] {
			t.Errorf("class %d uses %d machines, has %d", k, machines, info.ClassCount[k])
		}
	}
	for si, demand := range info.SizeCount {
		if slots[si] < demand {
			t.Errorf("size %d: %d slots for %d jobs", si, slots[si], demand)
		}
	}
}

// TestBuildRelatedInfeasibleSize: a large size no configuration can
// host (bigger than every capacity) must fail at build time with the
// documented infeasibility error.
func TestBuildRelatedInfeasibleSize(t *testing.T) {
	in := sched.NewRelatedInstance([]float64{1, 1})
	in.AddJob(5.0, 0) // cap is 1.5; no pattern offers a slot
	info, err := classify.Related(in, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := pattern.EnumerateRelated(context.Background(), info, pattern.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := BuildRelated(context.Background(), in, info, sp); err == nil {
		t.Fatal("BuildRelated accepted a size with no slots anywhere")
	}
}
