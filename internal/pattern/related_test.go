package pattern

import (
	"context"
	"errors"
	"testing"

	"repro/internal/classify"
	"repro/internal/sched"
)

// relatedSpace classifies and enumerates a small scaled speed instance:
// speeds 2,1 (eps 0.5 → caps 3 and 1.5, large threshold 0.5), large
// sizes 1.0 (x2) and 0.6 (x2).
func relatedSpace(t *testing.T, limit int) (*classify.RelInfo, *RelSpace, error) {
	t.Helper()
	in := sched.NewRelatedInstance([]float64{2, 1})
	for i, size := range []float64{1.0, 1.0, 0.6, 0.6, 0.2} {
		in.AddJob(size, i)
	}
	info, err := classify.Related(in, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := EnumerateRelated(context.Background(), info, Options{Limit: limit})
	return info, sp, err
}

func TestEnumerateRelated(t *testing.T) {
	info, sp, err := relatedSpace(t, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Classes) != len(info.Speeds) {
		t.Fatalf("%d classes, want one per speed (%d)", len(sp.Classes), len(info.Speeds))
	}
	if sp.TotalPatterns() != len(sp.Classes[0])+len(sp.Classes[1]) {
		t.Error("TotalPatterns does not sum the classes")
	}
	for k, ps := range sp.Classes {
		if len(ps) == 0 || ps[0].NumJobs != 0 || ps[0].HeightFx != 0 {
			t.Fatalf("class %d: first pattern must be empty, got %+v", k, ps[0])
		}
		for pi, p := range ps {
			if p.HeightFx > info.CapFx[k] {
				t.Errorf("class %d pattern %d exceeds the class capacity", k, pi)
			}
			jobs, height := 0, 0.0
			for i, c := range p.Count {
				if c > info.SizeCount[i] {
					t.Errorf("class %d pattern %d: %d slots of size %d, only %d jobs exist",
						k, pi, c, i, info.SizeCount[i])
				}
				jobs += c
				height += float64(c) * info.Sizes[i]
			}
			if jobs != p.NumJobs {
				t.Errorf("class %d pattern %d: NumJobs %d, counts sum to %d", k, pi, p.NumJobs, jobs)
			}
		}
	}
	// The faster class (cap 3) must admit strictly more configurations
	// than the slower one (cap 1.5).
	if len(sp.Classes[0]) <= len(sp.Classes[1]) {
		t.Errorf("class sizes %d vs %d: faster class should admit more patterns",
			len(sp.Classes[0]), len(sp.Classes[1]))
	}
	// Determinism: a second enumeration is identical.
	_, sp2, err := relatedSpace(t, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sp2.TotalPatterns() != sp.TotalPatterns() {
		t.Error("enumeration is not deterministic")
	}
}

func TestEnumerateRelatedLimit(t *testing.T) {
	_, _, err := relatedSpace(t, 2)
	var tooMany ErrTooManyPatterns
	if !errors.As(err, &tooMany) {
		t.Fatalf("err = %v, want ErrTooManyPatterns", err)
	}
}

func TestEnumerateRelatedCanceled(t *testing.T) {
	in := sched.NewRelatedInstance([]float64{2, 1})
	in.AddJob(1.0, 0)
	info, err := classify.Related(in, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := EnumerateRelated(ctx, info, Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}
