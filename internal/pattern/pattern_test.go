package pattern

import (
	"context"
	"math"
	"testing"

	"repro/internal/classify"
	"repro/internal/numeric"
	"repro/internal/round"
	"repro/internal/sched"
)

// build makes a rounded instance and classification for tests.
func build(t *testing.T, eps float64, machines int, jobs []struct {
	size float64
	bag  int
}, opt classify.Options) (*sched.Instance, *classify.View) {
	t.Helper()
	in := sched.NewInstance(machines)
	for _, j := range jobs {
		v, _ := round.UpGeometric(j.size, eps)
		in.AddJob(numeric.Quantize(v), j.bag)
	}
	info, err := classify.Classify(in, eps, opt)
	if err != nil {
		t.Fatal(err)
	}
	view, err := info.ViewOf(in)
	if err != nil {
		t.Fatal(err)
	}
	return in, view
}

type jb = struct {
	size float64
	bag  int
}

func TestEnumerateEmptyInstance(t *testing.T) {
	in := sched.NewInstance(2)
	info, err := classify.Classify(in, 0.5, classify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sp, err := Enumerate(context.Background(), in, infoView(t, info, in), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Patterns) != 1 {
		t.Fatalf("patterns = %d, want 1 (the empty pattern)", len(sp.Patterns))
	}
	if sp.Patterns[0].NumJobs != 0 || sp.Patterns[0].Height != 0 {
		t.Error("pattern 0 is not empty")
	}
}

func TestEnumerateValidity(t *testing.T) {
	in, view := build(t, 0.5, 4, []jb{
		{1.0, 0}, {0.6, 0}, {1.0, 1}, {0.3, 1}, {0.1, 2},
	}, classify.Options{AllPriority: true})
	prio := view.Info.Priority
	sp, err := Enumerate(context.Background(), in, view, prio, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Patterns) == 0 || sp.Patterns[0].NumJobs != 0 {
		t.Fatal("missing empty pattern at index 0")
	}
	for pi, p := range sp.Patterns {
		if p.Height > sp.T+1e-9 {
			t.Errorf("pattern %d height %g > T %g", pi, p.Height, sp.T)
		}
		if p.NumJobs > sp.Q {
			t.Errorf("pattern %d has %d slots > q %d", pi, p.NumJobs, sp.Q)
		}
		seen := map[int]bool{}
		for _, s := range p.Prio {
			if seen[s.Bag] {
				t.Errorf("pattern %d has two slots of bag %d", pi, s.Bag)
			}
			seen[s.Bag] = true
		}
		// Height must equal the sum of slot sizes.
		h := 0.0
		n := 0
		for _, s := range p.Prio {
			h += view.Info.Sizes[s.SizeIdx]
			n++
		}
		for i, c := range p.XCount {
			h += float64(c) * view.Info.Sizes[sp.XSizes[i]]
			n += c
		}
		if math.Abs(h-p.Height) > 1e-9 || n != p.NumJobs {
			t.Errorf("pattern %d bookkeeping wrong: h=%g vs %g, n=%d vs %d", pi, h, p.Height, n, p.NumJobs)
		}
	}
}

func TestEnumerateCompletenessTiny(t *testing.T) {
	// One priority bag with one large size s=1.0 (rounded), T=2.25, q=9:
	// patterns: empty, {bag slot}. Expect exactly 2.
	in, view := build(t, 0.5, 2, []jb{{1.0, 0}}, classify.Options{AllPriority: true})
	sp, err := Enumerate(context.Background(), in, view, view.Info.Priority, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Patterns) != 2 {
		t.Fatalf("patterns = %d, want 2", len(sp.Patterns))
	}
}

func TestEnumerateXMultiplicities(t *testing.T) {
	// Two non-priority bags each with one large job of (rounded) size 1:
	// X entry with availability 2, T=2.25 -> multiplicities 0,1,2.
	in, view := build(t, 0.5, 4, []jb{{1.0, 0}, {1.0, 1}}, classify.Options{})
	prio := []bool{false, false}
	sp, err := Enumerate(context.Background(), in, view, prio, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.XSizes) != 1 {
		t.Fatalf("XSizes = %v, want one entry", sp.XSizes)
	}
	if len(sp.Patterns) != 3 {
		t.Fatalf("patterns = %d, want 3 (x in {0,1,2})", len(sp.Patterns))
	}
}

func TestEnumerateXCappedByAvailability(t *testing.T) {
	// One non-priority large job of size ~0.5: height-wise 4 slots fit
	// (T=2.25), but only 1 job exists, so multiplicities are 0,1.
	in, view := build(t, 0.5, 4, []jb{{0.51, 0}}, classify.Options{})
	prio := []bool{false}
	sp, err := Enumerate(context.Background(), in, view, prio, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Patterns) != 2 {
		t.Fatalf("patterns = %d, want 2 (availability cap)", len(sp.Patterns))
	}
}

func TestEnumerateHeightPruning(t *testing.T) {
	// Two priority bags with large jobs of (rounded) size 1.5: two
	// together exceed T=2.25, so the combination must be pruned.
	in, view := build(t, 0.5, 2, []jb{{1.4, 0}, {1.4, 1}}, classify.Options{AllPriority: true})
	sp, err := Enumerate(context.Background(), in, view, view.Info.Priority, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sp.Patterns {
		if len(p.Prio) > 1 {
			t.Errorf("pattern with both oversized slots: %+v", p)
		}
	}
	// empty, {bag0}, {bag1}.
	if len(sp.Patterns) != 3 {
		t.Errorf("patterns = %d, want 3", len(sp.Patterns))
	}
}

func TestEnumerateLimit(t *testing.T) {
	var jobs []jb
	for b := 0; b < 12; b++ {
		jobs = append(jobs, jb{1.0, b}, jb{0.6, b})
	}
	in, view := build(t, 0.5, 24, jobs, classify.Options{AllPriority: true})
	_, err := Enumerate(context.Background(), in, view, view.Info.Priority, Options{Limit: 10})
	if err == nil {
		t.Fatal("expected ErrTooManyPatterns")
	}
	if _, ok := err.(ErrTooManyPatterns); !ok {
		t.Fatalf("error type = %T", err)
	}
}

func TestEnumerateRejectsUntransformedMediums(t *testing.T) {
	// A medium job in a non-priority bag means the caller forgot the
	// transformation.
	in, view := build(t, 0.5, 4, []jb{{0.3, 0}, {1.0, 1}}, classify.Options{})
	if view.Info.ClassOf(in.Jobs[0].Size) != classify.Medium {
		t.Skip("size did not land in the medium band under this rounding")
	}
	prio := []bool{false, true}
	if _, err := Enumerate(context.Background(), in, view, prio, Options{}); err == nil {
		t.Error("expected medium-in-non-priority-bag error")
	}
}

func TestChiFunctions(t *testing.T) {
	in, view := build(t, 0.5, 4, []jb{{1.0, 0}, {0.6, 1}}, classify.Options{AllPriority: true})
	sp, err := Enumerate(context.Background(), in, view, view.Info.Priority, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range sp.Patterns {
		for _, s := range p.Prio {
			if p.ChiPrio(s.Bag, s.SizeIdx) != 1 {
				t.Error("ChiPrio(slot) != 1")
			}
			if !p.ChiBag(s.Bag) {
				t.Error("ChiBag(slot bag) false")
			}
		}
		if p.ChiBag(99) {
			t.Error("ChiBag(absent bag) true")
		}
		if p.ChiPrio(0, 9999) != 0 {
			t.Error("ChiPrio(absent size) != 0")
		}
	}
}

func TestXMultLookup(t *testing.T) {
	in, view := build(t, 0.5, 4, []jb{{1.0, 0}, {1.0, 1}}, classify.Options{})
	sp, err := Enumerate(context.Background(), in, view, []bool{false, false}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	si := sp.XSizes[0]
	found2 := false
	for i := range sp.Patterns {
		m := sp.XMult(&sp.Patterns[i], si)
		if m == 2 {
			found2 = true
		}
		if sp.XMult(&sp.Patterns[i], 9999) != 0 {
			t.Error("XMult(absent size) != 0")
		}
	}
	if !found2 {
		t.Error("no pattern with X multiplicity 2")
	}
}

func TestDefaultLimitApplied(t *testing.T) {
	in := sched.NewInstance(2)
	info, err := classify.Classify(in, 0.5, classify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Enumerate(context.Background(), in, infoView(t, info, in), nil, Options{Limit: 0}); err != nil {
		t.Fatalf("default limit should allow the empty space: %v", err)
	}
}

// infoView builds the numeric view of in under info for tests.
func infoView(t *testing.T, info *classify.Info, in *sched.Instance) *classify.View {
	t.Helper()
	v, err := info.ViewOf(in)
	if err != nil {
		t.Fatal(err)
	}
	return v
}
