// Package pattern implements the machine configurations ("patterns") of
// Definition 3 of the paper: multisets of job slots for medium and large
// sizes, with at most one slot per priority bag, arbitrary multiplicities
// of anonymous X-slots for non-priority large jobs, total height at most
// T = 1+2eps+eps^2 and at most q slots overall.
package pattern

import (
	"context"
	"fmt"
	"math"

	"repro/internal/classify"
	"repro/internal/numeric"
	"repro/internal/sched"
)

// PrioSlot is a slot reserved for one job of a specific priority bag with
// a specific (medium or large) size.
type PrioSlot struct {
	// Bag is the bag id in the transformed instance.
	Bag int
	// SizeIdx indexes classify.Info.Sizes.
	SizeIdx int
}

// Pattern is one valid machine configuration.
type Pattern struct {
	// Prio lists the selected priority slots, sorted by bag id; at most
	// one per bag (Definition 3).
	Prio []PrioSlot
	// XCount[i] is the multiplicity of the i-th X entry type (see
	// Space.XSizes) on this pattern.
	XCount []int
	// Height is the total size of all slots.
	Height float64
	// NumJobs is the total number of slots.
	NumJobs int
}

// chiBag reports whether the pattern contains a slot of the given bag
// (the paper's characteristic function on full bags).
func (p *Pattern) chiBag(bag int) bool {
	for _, s := range p.Prio {
		if s.Bag == bag {
			return true
		}
	}
	return false
}

// ChiBag reports whether the pattern holds a slot of the given bag.
func (p *Pattern) ChiBag(bag int) bool { return p.chiBag(bag) }

// ChiPrio returns the multiplicity (0 or 1) of the (bag, sizeIdx) slot.
func (p *Pattern) ChiPrio(bag, sizeIdx int) int {
	for _, s := range p.Prio {
		if s.Bag == bag && s.SizeIdx == sizeIdx {
			return 1
		}
	}
	return 0
}

// Space is the enumerated pattern space for one transformed instance.
type Space struct {
	// T is the height bound of valid patterns.
	T float64
	// Q is the slot-count bound of valid patterns.
	Q int
	// XSizes lists the size indices available as X entries (large sizes
	// present in non-priority bags), in decreasing size order.
	XSizes []int
	// PrioBags lists the priority bags holding medium or large jobs, in
	// increasing id order.
	PrioBags []int
	// PrioSizes[i] lists the medium/large size indices present in
	// PrioBags[i], in decreasing size order.
	PrioSizes [][]int
	// Patterns is the enumerated set of valid patterns. Patterns[0] is
	// always the empty pattern.
	Patterns []Pattern
	// Sizes is the shared size table (classify.Info.Sizes).
	Sizes []float64
}

// ErrTooManyPatterns reports that enumeration exceeded the limit; callers
// should increase eps or the limit.
type ErrTooManyPatterns struct{ Limit int }

func (e ErrTooManyPatterns) Error() string {
	return fmt.Sprintf("pattern: enumeration exceeded limit of %d patterns (reduce accuracy or raise Options.PatternLimit)", e.Limit)
}

// DefaultLimit is the default pattern-enumeration bound. It is sized so
// that the downstream MILP (whose LP has one column per pattern) stays
// tractable for the dense simplex solver; guesses whose pattern space
// exceeds it are rejected quickly and the driver degrades gracefully.
const DefaultLimit = 4000

// Options tunes enumeration.
type Options struct {
	// Limit bounds the number of enumerated patterns; zero means
	// DefaultLimit.
	Limit int
}

// Enumerate builds the pattern space for the transformed instance in,
// whose bag priority flags are given by prio (length in.NumBags) and
// whose job classes follow info's thresholds. The context is polled once
// per emitted pattern; a canceled or expired ctx aborts the enumeration
// and returns ctx.Err(), so abandoned speculative pipelines stop burning
// CPU on large spaces.
func Enumerate(ctx context.Context, in *sched.Instance, info *classify.Info, prio []bool, opt Options) (*Space, error) {
	limit := opt.Limit
	if limit <= 0 {
		limit = DefaultLimit
	}
	sp := &Space{T: info.T, Q: info.Q, Sizes: info.Sizes}

	// Per-bag medium/large size counts on the transformed instance.
	counts := make([]map[int]int, in.NumBags)
	for b := range counts {
		counts[b] = make(map[int]int)
	}
	for _, job := range in.Jobs {
		cls := info.ClassOf(job.Size)
		if cls == classify.Small {
			continue
		}
		si := sizeIndex(info.Sizes, job.Size)
		if si < 0 {
			return nil, fmt.Errorf("pattern: job size %g not in size table", job.Size)
		}
		counts[job.Bag][si]++
	}

	// X entries: large sizes present in non-priority bags. (Medium jobs
	// of non-priority bags were removed by the transformation.) The
	// available job count caps the slot multiplicity: slots beyond the
	// job supply can never be filled, so enumerating them only inflates
	// the pattern space.
	xAvail := make(map[int]int)
	for b := 0; b < in.NumBags; b++ {
		if prio[b] {
			continue
		}
		for si, c := range counts[b] {
			if info.SizeClass[si] == classify.Large {
				xAvail[si] += c
			} else if info.SizeClass[si] == classify.Medium {
				return nil, fmt.Errorf("pattern: medium job in non-priority bag %d; instance not transformed", b)
			}
		}
	}
	var xCaps []int
	for si := range info.Sizes { // decreasing size order
		if xAvail[si] > 0 {
			sp.XSizes = append(sp.XSizes, si)
			xCaps = append(xCaps, xAvail[si])
		}
	}

	// Priority bags with medium/large jobs.
	for b := 0; b < in.NumBags; b++ {
		if !prio[b] || len(counts[b]) == 0 {
			continue
		}
		var sizes []int
		for si := range info.Sizes {
			if counts[b][si] > 0 {
				sizes = append(sizes, si)
			}
		}
		if len(sizes) > 0 {
			sp.PrioBags = append(sp.PrioBags, b)
			sp.PrioSizes = append(sp.PrioSizes, sizes)
		}
	}

	// DFS over priority bag choices then X multiplicities.
	var (
		cur    Pattern
		xs     = make([]int, len(sp.XSizes))
		emitEr error
	)
	emit := func(height float64, jobs int) bool {
		if err := ctx.Err(); err != nil {
			emitEr = err
			return false
		}
		if len(sp.Patterns) >= limit {
			emitEr = ErrTooManyPatterns{Limit: limit}
			return false
		}
		p := Pattern{
			Prio:    append([]PrioSlot(nil), cur.Prio...),
			XCount:  append([]int(nil), xs...),
			Height:  height,
			NumJobs: jobs,
		}
		sp.Patterns = append(sp.Patterns, p)
		return true
	}

	var enumX func(i int, height float64, jobs int) bool
	enumX = func(i int, height float64, jobs int) bool {
		if i == len(sp.XSizes) {
			return emit(height, jobs)
		}
		size := info.Sizes[sp.XSizes[i]]
		maxC := jobsLeft(sp.Q, jobs)
		if c := int(math.Floor((sp.T - height + numeric.Tol) / size)); c < maxC {
			maxC = c
		}
		if xCaps[i] < maxC {
			maxC = xCaps[i]
		}
		for c := 0; c <= maxC; c++ {
			xs[i] = c
			if !enumX(i+1, height+float64(c)*size, jobs+c) {
				return false
			}
		}
		xs[i] = 0
		return true
	}

	var enumPrio func(i int, height float64, jobs int) bool
	enumPrio = func(i int, height float64, jobs int) bool {
		if i == len(sp.PrioBags) {
			return enumX(0, height, jobs)
		}
		// Option: no slot of this bag.
		if !enumPrio(i+1, height, jobs) {
			return false
		}
		if jobs >= sp.Q {
			return true
		}
		for _, si := range sp.PrioSizes[i] {
			h := height + info.Sizes[si]
			if h > sp.T+numeric.Tol {
				continue
			}
			cur.Prio = append(cur.Prio, PrioSlot{Bag: sp.PrioBags[i], SizeIdx: si})
			ok := enumPrio(i+1, h, jobs+1)
			cur.Prio = cur.Prio[:len(cur.Prio)-1]
			if !ok {
				return false
			}
		}
		return true
	}

	enumPrio(0, 0, 0)
	if emitEr != nil {
		return nil, emitEr
	}
	return sp, nil
}

// XMult returns the multiplicity of X slots of size index si on pattern p.
func (sp *Space) XMult(p *Pattern, si int) int {
	for i, xsi := range sp.XSizes {
		if xsi == si {
			return p.XCount[i]
		}
	}
	return 0
}

func jobsLeft(q, jobs int) int {
	if q > jobs {
		return q - jobs
	}
	return 0
}

// sizeIndex locates size in the decreasing size table within tolerance.
func sizeIndex(sizes []float64, size float64) int {
	lo, hi := 0, len(sizes)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		switch {
		case numeric.Eq(sizes[mid], size):
			return mid
		case sizes[mid] > size:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	for i, s := range sizes {
		if numeric.Eq(s, size) {
			return i
		}
	}
	return -1
}
