// Package pattern implements the machine configurations ("patterns") of
// Definition 3 of the paper: multisets of job slots for medium and large
// sizes, with at most one slot per priority bag, arbitrary multiplicities
// of anonymous X-slots for non-priority large jobs, total height at most
// T = 1+2eps+eps^2 and at most q slots overall.
//
// Enumeration runs on the exact fixed-point representation of the
// scaled-rounded instance (see internal/numeric): slot heights are int64
// grid values, the capacity bound T+Tol is folded into one integer
// constant (classify.Info.TCapFx), and the innermost DFS loops perform
// integer adds and compares only. The pre-fixed-point float64 enumeration
// is retained behind Options.Float64Ref as the reference path; the two
// are bit-for-bit result-identical (the differential tests assert it)
// because every enumerated height is an exact grid value in either
// representation.
package pattern

import (
	"context"
	"fmt"
	"math"

	"repro/internal/classify"
	"repro/internal/numeric"
	"repro/internal/sched"
)

// PrioSlot is a slot reserved for one job of a specific priority bag with
// a specific (medium or large) size.
type PrioSlot struct {
	// Bag is the bag id in the transformed instance.
	Bag int
	// SizeIdx indexes classify.Info.Sizes.
	SizeIdx int
}

// Pattern is one valid machine configuration.
type Pattern struct {
	// Prio lists the selected priority slots, sorted by bag id; at most
	// one per bag (Definition 3).
	Prio []PrioSlot
	// XCount[i] is the multiplicity of the i-th X entry type (see
	// Space.XSizes) on this pattern.
	XCount []int
	// HeightFx is the exact total size of all slots on the numeric.Fx
	// grid.
	HeightFx numeric.Fx
	// Height is HeightFx lifted to float64 (exact; consumed by the LP
	// layer, whose interior stays float64).
	Height float64
	// NumJobs is the total number of slots.
	NumJobs int
}

// chiBag reports whether the pattern contains a slot of the given bag
// (the paper's characteristic function on full bags).
func (p *Pattern) chiBag(bag int) bool {
	for _, s := range p.Prio {
		if s.Bag == bag {
			return true
		}
	}
	return false
}

// ChiBag reports whether the pattern holds a slot of the given bag.
func (p *Pattern) ChiBag(bag int) bool { return p.chiBag(bag) }

// ChiPrio returns the multiplicity (0 or 1) of the (bag, sizeIdx) slot.
func (p *Pattern) ChiPrio(bag, sizeIdx int) int {
	for _, s := range p.Prio {
		if s.Bag == bag && s.SizeIdx == sizeIdx {
			return 1
		}
	}
	return 0
}

// Space is the enumerated pattern space for one transformed instance.
type Space struct {
	// T is the height bound of valid patterns.
	T float64
	// Q is the slot-count bound of valid patterns.
	Q int
	// XSizes lists the size indices available as X entries (large sizes
	// present in non-priority bags), in decreasing size order.
	XSizes []int
	// PrioBags lists the priority bags holding medium or large jobs, in
	// increasing id order.
	PrioBags []int
	// PrioSizes[i] lists the medium/large size indices present in
	// PrioBags[i], in decreasing size order.
	PrioSizes [][]int
	// Patterns is the enumerated set of valid patterns. Patterns[0] is
	// always the empty pattern.
	Patterns []Pattern
	// Sizes is the shared size table (classify.Info.Sizes).
	Sizes []float64
}

// ErrTooManyPatterns reports that enumeration exceeded the limit; callers
// should increase eps or the limit.
type ErrTooManyPatterns struct{ Limit int }

func (e ErrTooManyPatterns) Error() string {
	return fmt.Sprintf("pattern: enumeration exceeded limit of %d patterns (reduce accuracy or raise Options.PatternLimit)", e.Limit)
}

// DefaultLimit is the default pattern-enumeration bound. It is sized so
// that the downstream MILP (whose LP has one column per pattern) stays
// tractable for the dense simplex solver; guesses whose pattern space
// exceeds it are rejected quickly and the driver degrades gracefully.
const DefaultLimit = 4000

// Options tunes enumeration.
type Options struct {
	// Limit bounds the number of enumerated patterns; zero means
	// DefaultLimit.
	Limit int
	// Float64Ref selects the retained float64 reference enumeration (the
	// pre-fixed-point seed path). Results are bit-for-bit identical to
	// the default integer enumeration; the flag exists for differential
	// tests and benchmarks.
	Float64Ref bool
}

// enumState carries the shared DFS inputs of both enumeration paths.
type enumState struct {
	sp    *Space
	info  *classify.Info
	limit int
	xCaps []int
	xs    []int
	cur   Pattern
	err   error
	slots slotArena
	ints  intArena
}

// slotArena and intArena bulk-allocate the per-pattern Prio and XCount
// slices in chunks: emitting a pattern costs amortized zero allocations
// instead of two. Handed-out slices are capped (three-index slicing) and
// chunks are never grown in place, so earlier patterns are never
// clobbered; Pattern slices are read-only downstream.
// arenaChunk doubles the chunk size from 64 entries up to 8192, so tiny
// spaces stay cheap while huge ones amortize to near-zero allocations.
func arenaChunk(prev, need int) int {
	n := prev * 2
	if n < 64 {
		n = 64
	}
	if n > 8192 {
		n = 8192
	}
	if need > n {
		n = need
	}
	return n
}

type slotArena struct {
	buf   []PrioSlot
	chunk int
}

func (a *slotArena) clone(s []PrioSlot) []PrioSlot {
	if len(s) == 0 {
		return nil
	}
	if cap(a.buf)-len(a.buf) < len(s) {
		a.chunk = arenaChunk(a.chunk, len(s))
		a.buf = make([]PrioSlot, 0, a.chunk)
	}
	start := len(a.buf)
	a.buf = append(a.buf, s...)
	return a.buf[start:len(a.buf):len(a.buf)]
}

type intArena struct {
	buf   []int
	chunk int
}

func (a *intArena) clone(s []int) []int {
	if len(s) == 0 {
		return nil
	}
	if cap(a.buf)-len(a.buf) < len(s) {
		a.chunk = arenaChunk(a.chunk, len(s))
		a.buf = make([]int, 0, a.chunk)
	}
	start := len(a.buf)
	a.buf = append(a.buf, s...)
	return a.buf[start:len(a.buf):len(a.buf)]
}

// Enumerate builds the pattern space for the transformed instance in,
// whose numeric view (per-job size indices and classes) is view and
// whose bag priority flags are given by prio (length in.NumBags). The
// context is polled once per emitted pattern; a canceled or expired ctx
// aborts the enumeration and returns ctx.Err(), so abandoned speculative
// pipelines stop burning CPU on large spaces.
func Enumerate(ctx context.Context, in *sched.Instance, view *classify.View, prio []bool, opt Options) (*Space, error) {
	info := view.Info
	limit := opt.Limit
	if limit <= 0 {
		limit = DefaultLimit
	}
	sp := &Space{T: info.T, Q: info.Q, Sizes: info.Sizes}

	// Per-bag medium/large size counts on the transformed instance,
	// resolved through the exact view (no per-job float searches).
	counts := make([]map[int]int, in.NumBags)
	for b := range counts {
		counts[b] = make(map[int]int)
	}
	for j, job := range in.Jobs {
		if view.Class(j) == classify.Small {
			continue
		}
		counts[job.Bag][view.JobIdx[j]]++
	}

	// X entries: large sizes present in non-priority bags. (Medium jobs
	// of non-priority bags were removed by the transformation.) The
	// available job count caps the slot multiplicity: slots beyond the
	// job supply can never be filled, so enumerating them only inflates
	// the pattern space.
	xAvail := make(map[int]int)
	for b := 0; b < in.NumBags; b++ {
		if prio[b] {
			continue
		}
		for si, c := range counts[b] {
			if info.SizeClass[si] == classify.Large {
				xAvail[si] += c
			} else if info.SizeClass[si] == classify.Medium {
				return nil, fmt.Errorf("pattern: medium job in non-priority bag %d; instance not transformed", b)
			}
		}
	}
	var xCaps []int
	for si := range info.Sizes { // decreasing size order
		if xAvail[si] > 0 {
			sp.XSizes = append(sp.XSizes, si)
			xCaps = append(xCaps, xAvail[si])
		}
	}

	// Priority bags with medium/large jobs.
	for b := 0; b < in.NumBags; b++ {
		if !prio[b] || len(counts[b]) == 0 {
			continue
		}
		var sizes []int
		for si := range info.Sizes {
			if counts[b][si] > 0 {
				sizes = append(sizes, si)
			}
		}
		if len(sizes) > 0 {
			sp.PrioBags = append(sp.PrioBags, b)
			sp.PrioSizes = append(sp.PrioSizes, sizes)
		}
	}

	st := &enumState{
		sp:    sp,
		info:  info,
		limit: limit,
		xCaps: xCaps,
		xs:    make([]int, len(sp.XSizes)),
	}
	if opt.Float64Ref {
		st.enumPrioFloat(ctx, 0, 0, 0)
	} else {
		st.enumPrioFixed(ctx, 0, 0, 0)
	}
	if st.err != nil {
		return nil, st.err
	}
	return sp, nil
}

// emit appends the current pattern. heightFx is exact; the float64
// Height is its lossless lift.
func (st *enumState) emit(ctx context.Context, heightFx numeric.Fx, jobs int) bool {
	if err := ctx.Err(); err != nil {
		st.err = err
		return false
	}
	if len(st.sp.Patterns) >= st.limit {
		st.err = ErrTooManyPatterns{Limit: st.limit}
		return false
	}
	p := Pattern{
		Prio:     st.slots.clone(st.cur.Prio),
		XCount:   st.ints.clone(st.xs),
		HeightFx: heightFx,
		Height:   heightFx.Float(),
		NumJobs:  jobs,
	}
	st.sp.Patterns = append(st.sp.Patterns, p)
	return true
}

// --- exact integer enumeration (default path) ---
//
// The innermost loops do int64 adds, one integer compare against the
// precomputed capacity TCapFx, and one integer division for the X slot
// multiplicity cap. No tolerances: the T+Tol band is already inside
// TCapFx (see numeric.Cap), so the accepted pattern set is exactly the
// float reference's.

func (st *enumState) enumXFixed(ctx context.Context, i int, height numeric.Fx, jobs int) bool {
	if i == len(st.sp.XSizes) {
		return st.emit(ctx, height, jobs)
	}
	size := st.info.SizesFx[st.sp.XSizes[i]]
	maxC := jobsLeft(st.sp.Q, jobs)
	rem := st.info.TCapFx - height
	if rem < 0 {
		// Unreachable from Enumerate (callers never exceed the capacity),
		// but mirror the float reference exactly: a negative remainder
		// yields a negative multiplicity bound there, which emits nothing.
		st.xs[i] = 0
		return true
	}
	if c := int(rem / size); c < maxC {
		maxC = c
	}
	if st.xCaps[i] < maxC {
		maxC = st.xCaps[i]
	}
	for c := 0; c <= maxC; c++ {
		st.xs[i] = c
		if !st.enumXFixed(ctx, i+1, height+size.MulInt(c), jobs+c) {
			return false
		}
	}
	st.xs[i] = 0
	return true
}

func (st *enumState) enumPrioFixed(ctx context.Context, i int, height numeric.Fx, jobs int) bool {
	if i == len(st.sp.PrioBags) {
		return st.enumXFixed(ctx, 0, height, jobs)
	}
	// Option: no slot of this bag.
	if !st.enumPrioFixed(ctx, i+1, height, jobs) {
		return false
	}
	if jobs >= st.sp.Q {
		return true
	}
	for _, si := range st.sp.PrioSizes[i] {
		h := height + st.info.SizesFx[si]
		if h > st.info.TCapFx {
			continue
		}
		st.cur.Prio = append(st.cur.Prio, PrioSlot{Bag: st.sp.PrioBags[i], SizeIdx: si})
		ok := st.enumPrioFixed(ctx, i+1, h, jobs+1)
		st.cur.Prio = st.cur.Prio[:len(st.cur.Prio)-1]
		if !ok {
			return false
		}
	}
	return true
}

// --- retained float64 reference enumeration (seed path) ---
//
// Kept verbatim (modulo the shared emit) for differential testing and as
// the benchmark baseline of the fixed-point refactor. Heights are exact
// grid values here too, so converting the accumulated float64 height to
// Fx at emit time is lossless and the produced Space is bit-identical.

func (st *enumState) enumXFloat(ctx context.Context, i int, height float64, jobs int) bool {
	if i == len(st.sp.XSizes) {
		return st.emit(ctx, numeric.FromFloat(height), jobs)
	}
	size := st.info.Sizes[st.sp.XSizes[i]]
	maxC := jobsLeft(st.sp.Q, jobs)
	if c := int(floorDiv(st.sp.T-height+numeric.Tol, size)); c < maxC {
		maxC = c
	}
	if st.xCaps[i] < maxC {
		maxC = st.xCaps[i]
	}
	for c := 0; c <= maxC; c++ {
		st.xs[i] = c
		if !st.enumXFloat(ctx, i+1, height+float64(c)*size, jobs+c) {
			return false
		}
	}
	st.xs[i] = 0
	return true
}

func (st *enumState) enumPrioFloat(ctx context.Context, i int, height float64, jobs int) bool {
	if i == len(st.sp.PrioBags) {
		return st.enumXFloat(ctx, 0, height, jobs)
	}
	if !st.enumPrioFloat(ctx, i+1, height, jobs) {
		return false
	}
	if jobs >= st.sp.Q {
		return true
	}
	for _, si := range st.sp.PrioSizes[i] {
		h := height + st.info.Sizes[si]
		if h > st.sp.T+numeric.Tol {
			continue
		}
		st.cur.Prio = append(st.cur.Prio, PrioSlot{Bag: st.sp.PrioBags[i], SizeIdx: si})
		ok := st.enumPrioFloat(ctx, i+1, h, jobs+1)
		st.cur.Prio = st.cur.Prio[:len(st.cur.Prio)-1]
		if !ok {
			return false
		}
	}
	return true
}

// XMult returns the multiplicity of X slots of size index si on pattern p.
func (sp *Space) XMult(p *Pattern, si int) int {
	for i, xsi := range sp.XSizes {
		if xsi == si {
			return p.XCount[i]
		}
	}
	return 0
}

func jobsLeft(q, jobs int) int {
	if q > jobs {
		return q - jobs
	}
	return 0
}

// floorDiv is the float reference's slot-multiplicity bound.
func floorDiv(a, b float64) float64 { return math.Floor(a / b) }
