package pattern

import (
	"context"
	"testing"

	"repro/internal/classify"
	"repro/internal/greedy"
	"repro/internal/round"
	"repro/internal/transform"
	"repro/internal/workload"
)

// benchSetup builds the pre-enumeration pipeline once per benchmark.
func benchSetup(b *testing.B, eps float64) (*transform.Transformed, Options) {
	b.Helper()
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Bimodal, Machines: 8, Jobs: 48, Bags: 10, Seed: 9,
	})
	ub, err := greedy.BagLPT(in)
	if err != nil {
		b.Fatal(err)
	}
	scaled, _ := round.ScaleRound(in, ub.Makespan(), eps)
	// A small priority cap keeps non-priority bags around, so the X-slot
	// multiplicity loops (the integer-division hot path) are exercised.
	info, err := classify.Classify(scaled, eps, classify.Options{BPrimeOverride: 2})
	if err != nil {
		b.Fatal(err)
	}
	return transform.Apply(scaled, info), Options{Limit: 2_000_000}
}

// BenchmarkEnumerateFixed measures the default integer enumeration;
// BenchmarkEnumerateFloat64Ref the retained pre-refactor float64 path on
// the identical instance. The delta is the fixed-point core's win in the
// hottest loop of the EPTAS.
func benchEnumerate(b *testing.B, eps float64, float64Ref bool) {
	tr, opt := benchSetup(b, eps)
	opt.Float64Ref = float64Ref
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sp, err := Enumerate(context.Background(), tr.Inst, tr.View, tr.Priority, opt)
		if err != nil {
			b.Fatal(err)
		}
		_ = len(sp.Patterns)
	}
}

func BenchmarkEnumerateFixed_Eps050(b *testing.B)      { benchEnumerate(b, 0.5, false) }
func BenchmarkEnumerateFloat64Ref_Eps050(b *testing.B) { benchEnumerate(b, 0.5, true) }
func BenchmarkEnumerateFixed_Eps040(b *testing.B)      { benchEnumerate(b, 0.4, false) }
func BenchmarkEnumerateFloat64Ref_Eps040(b *testing.B) { benchEnumerate(b, 0.4, true) }
