package pattern

// Differential test at the representation boundary: the integer
// enumeration and the retained float64 reference enumeration must emit
// bit-identical pattern spaces — same patterns in the same order, same
// float64 heights, same fixed-point heights.

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/classify"
	"repro/internal/greedy"
	"repro/internal/round"
	"repro/internal/transform"
	"repro/internal/workload"
)

func TestEnumerateFixedMatchesFloat64Reference(t *testing.T) {
	epsSweep := []float64{0.5, 0.4}
	if !testing.Short() {
		// eps=0.33 drives the largest spaces (hundreds of thousands of
		// patterns per family); keep it out of the quick loop.
		epsSweep = append(epsSweep, 0.33)
	}
	for _, fam := range workload.Families() {
		for _, eps := range epsSweep {
			in := workload.MustGenerate(workload.Spec{
				Family: fam, Machines: 8, Jobs: 48, Bags: 10, Seed: 9,
			})
			ub, err := greedy.BagLPT(in)
			if err != nil {
				t.Fatal(err)
			}
			scaled, _ := round.ScaleRound(in, ub.Makespan(), eps)
			info, err := classify.Classify(scaled, eps, classify.Options{BPrimeOverride: 2})
			if err != nil {
				t.Fatal(err)
			}
			tr := transform.Apply(scaled, info)
			opt := Options{Limit: 2_000_000}
			fixed, err := Enumerate(context.Background(), tr.Inst, tr.View, tr.Priority, opt)
			if err != nil {
				t.Fatalf("%s eps=%g fixed: %v", fam, eps, err)
			}
			opt.Float64Ref = true
			ref, err := Enumerate(context.Background(), tr.Inst, tr.View, tr.Priority, opt)
			if err != nil {
				t.Fatalf("%s eps=%g float ref: %v", fam, eps, err)
			}
			if len(fixed.Patterns) != len(ref.Patterns) {
				t.Fatalf("%s eps=%g: %d patterns (fixed) vs %d (float)",
					fam, eps, len(fixed.Patterns), len(ref.Patterns))
			}
			for i := range fixed.Patterns {
				if !reflect.DeepEqual(fixed.Patterns[i], ref.Patterns[i]) {
					t.Fatalf("%s eps=%g: pattern %d differs:\nfixed %+v\nfloat %+v",
						fam, eps, i, fixed.Patterns[i], ref.Patterns[i])
				}
			}
			if !reflect.DeepEqual(fixed.XSizes, ref.XSizes) ||
				!reflect.DeepEqual(fixed.PrioBags, ref.PrioBags) ||
				!reflect.DeepEqual(fixed.PrioSizes, ref.PrioSizes) {
				t.Fatalf("%s eps=%g: space metadata differs", fam, eps)
			}
		}
	}
}
