package pattern

import (
	"context"

	"repro/internal/classify"
	"repro/internal/numeric"
)

// RelPattern is one machine configuration of the related family: a
// multiset of large-job slots, anonymous (related machines have no
// bag-constraints, so slots carry sizes only, like the X slots of the
// bags family).
type RelPattern struct {
	// Count[i] is the multiplicity of large size index i (into
	// RelSpace.Sizes) on this configuration.
	Count []int
	// HeightFx is the exact total slot size; Height its lossless lift.
	HeightFx numeric.Fx
	Height   float64
	// NumJobs is the total slot count.
	NumJobs int
}

// RelSpace is the enumerated configuration space of the related
// family: one pattern list per speed class, each bounded by the
// class's exact capacity. Classes[k][0] is always the empty pattern.
type RelSpace struct {
	// Sizes is the shared large-size table (classify.RelInfo.Sizes,
	// decreasing); SizesFx mirrors it on the exact grid.
	Sizes   []float64
	SizesFx []numeric.Fx
	// Classes[k] lists the valid configurations of speed class k.
	Classes [][]RelPattern
}

// TotalPatterns returns the pattern count summed over all classes.
func (sp *RelSpace) TotalPatterns() int {
	n := 0
	for _, ps := range sp.Classes {
		n += len(ps)
	}
	return n
}

// EnumerateRelated builds the per-speed-class configuration space for
// a classified related instance. Slot multiplicities are bounded by
// the class capacity (exact integer division on the grid) and by the
// number of large jobs actually present per size — slots beyond the
// job supply can never be filled. Options.Limit bounds the total
// pattern count across classes (zero means DefaultLimit); the context
// is polled once per emitted pattern.
func EnumerateRelated(ctx context.Context, info *classify.RelInfo, opt Options) (*RelSpace, error) {
	limit := opt.Limit
	if limit <= 0 {
		limit = DefaultLimit
	}
	sp := &RelSpace{Sizes: info.Sizes, SizesFx: info.SizesFx}
	st := &relEnumState{sp: sp, info: info, limit: limit, counts: make([]int, len(info.Sizes))}
	for k := range info.Speeds {
		st.capFx = info.CapFx[k]
		st.class = nil
		if !st.enum(ctx, 0, 0, 0) {
			return nil, st.err
		}
		sp.Classes = append(sp.Classes, st.class)
	}
	return sp, nil
}

type relEnumState struct {
	sp     *RelSpace
	info   *classify.RelInfo
	limit  int
	capFx  numeric.Fx
	counts []int
	class  []RelPattern
	ints   intArena
	err    error
}

// enum walks size indices in decreasing-size order choosing a
// multiplicity per size; the all-zero branch recurses first, so the
// first emitted pattern of every class is the empty one.
func (st *relEnumState) enum(ctx context.Context, i int, height numeric.Fx, jobs int) bool {
	if i == len(st.info.Sizes) {
		return st.emit(ctx, height, jobs)
	}
	size := st.info.SizesFx[i]
	maxC := st.info.SizeCount[i]
	if rem := st.capFx - height; int(rem/size) < maxC {
		maxC = int(rem / size)
	}
	for c := 0; c <= maxC; c++ {
		st.counts[i] = c
		if !st.enum(ctx, i+1, height+size.MulInt(c), jobs+c) {
			return false
		}
	}
	st.counts[i] = 0
	return true
}

func (st *relEnumState) emit(ctx context.Context, heightFx numeric.Fx, jobs int) bool {
	if err := ctx.Err(); err != nil {
		st.err = err
		return false
	}
	if st.sp.TotalPatterns()+len(st.class) >= st.limit {
		st.err = ErrTooManyPatterns{Limit: st.limit}
		return false
	}
	st.class = append(st.class, RelPattern{
		Count:    st.ints.clone(st.counts),
		HeightFx: heightFx,
		Height:   heightFx.Float(),
		NumJobs:  jobs,
	})
	return true
}
