package core

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/sched"
	"repro/internal/workload"
)

func resolveOpts() Options {
	return Options{Eps: 0.33, Speculate: 1}
}

// TestResolveMatchesFromScratch is the resolve contract in miniature:
// without Repair, ResolveContext on a delta returns the bit-identical
// schedule of a from-scratch SolveContext on the post-delta instance,
// while consuming no more guesses.
func TestResolveMatchesFromScratch(t *testing.T) {
	base := workload.MustGenerate(workload.Spec{
		Family: workload.Bimodal, Machines: 6, Jobs: 24, Bags: 8, Seed: 11,
	})
	for name, delta := range map[string]sched.Delta{
		"resize-two": {Resize: []sched.Resize{
			{ID: base.Jobs[3].ID, Size: base.Jobs[3].Size * 1.02},
			{ID: base.Jobs[9].ID, Size: base.Jobs[9].Size * 0.97},
		}},
		"add-remove": {
			Remove: []sched.JobID{base.Jobs[5].ID},
			Add:    []sched.Job{{ID: 1000, Size: 0.42, Bag: 2}},
		},
		"rebag":        {Rebag: []sched.Rebag{{ID: base.Jobs[7].ID, Bag: 0}}},
		"add-machines": {Machines: 2},
		"empty":        {},
	} {
		t.Run(name, func(t *testing.T) {
			prior, err := Solve(base, resolveOpts())
			if err != nil {
				t.Fatal(err)
			}
			warm, err := Resolve(prior, delta, prior.Options)
			if err != nil {
				t.Fatal(err)
			}
			post, _, err := delta.Apply(base)
			if err != nil {
				t.Fatal(err)
			}
			cold, err := Solve(post, resolveOpts())
			if err != nil {
				t.Fatal(err)
			}
			if warm.Makespan != cold.Makespan {
				t.Errorf("warm makespan %.17g != cold %.17g", warm.Makespan, cold.Makespan)
			}
			if !reflect.DeepEqual(warm.Schedule.Machine, cold.Schedule.Machine) {
				t.Error("warm schedule differs from from-scratch solve on the post-delta instance")
			}
			// On this instance the guess interval is only a few grid
			// steps wide, so the warm bracketing walk may visit one
			// grid point the cold bisection happens to skip; anything
			// beyond that is a warm-start regression. The strict
			// warm-below-cold property is pinned on the wide-interval
			// churn fixtures by the resolve-diff gate.
			if warm.Stats.PipelineRuns > cold.Stats.PipelineRuns+1 {
				t.Errorf("warm resolve ran the pipeline %d times, cold %d",
					warm.Stats.PipelineRuns, cold.Stats.PipelineRuns)
			}
		})
	}
}

// TestResolveEmptyDeltaSkipsPipeline pins the memo carry-over: an empty
// delta leaves every guess's signature unchanged, so the warm search is
// served entirely from the prior solve's memo.
func TestResolveEmptyDeltaSkipsPipeline(t *testing.T) {
	base := workload.MustGenerate(workload.Spec{
		Family: workload.Adversarial, Machines: 5, Jobs: 20, Bags: 8, Seed: 4,
	})
	prior, err := Solve(base, resolveOpts())
	if err != nil {
		t.Fatal(err)
	}
	if prior.Memo == nil {
		t.Fatal("prior result carries no memo")
	}
	warm, err := Resolve(prior, sched.Delta{}, prior.Options)
	if err != nil {
		t.Fatal(err)
	}
	if warm.Stats.PipelineRuns != 0 {
		t.Errorf("empty-delta resolve ran the pipeline %d times, want 0 (hits %d)",
			warm.Stats.PipelineRuns, warm.Stats.CacheHits)
	}
	if warm.Makespan != prior.Makespan {
		t.Errorf("empty-delta resolve changed the makespan: %.17g != %.17g",
			warm.Makespan, prior.Makespan)
	}
}

// TestResolveRepairFastPath: on a roomy instance a small resize is
// absorbed by the repair without any search, within the (1+eps)*lb
// certificate.
func TestResolveRepairFastPath(t *testing.T) {
	// Bag-LPT is suboptimal here (it reaches 7 where the optimum splits
	// {3,3} | {2,2,2} at 6), so neither the prior solve nor the resolve
	// short-circuits on a provably optimal fallback and the repair path
	// actually runs.
	base := sched.NewInstance(2)
	base.AddJob(3, 0)
	base.AddJob(3, 1)
	base.AddJob(2, 2)
	base.AddJob(2, 3)
	base.AddJob(2, 4)
	opt := resolveOpts()
	prior, err := Solve(base, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Repair = true
	res, err := Resolve(prior, sched.Delta{
		Resize: []sched.Resize{{ID: base.Jobs[4].ID, Size: 2.1}},
	}, opt)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stats.Repaired {
		t.Fatalf("repair fast path did not engage: makespan=%g lb=%g", res.Makespan, res.LowerBound)
	}
	if res.Stats.Guesses != 0 || res.Stats.PipelineRuns != 0 {
		t.Errorf("repair ran the search anyway: guesses=%d runs=%d",
			res.Stats.Guesses, res.Stats.PipelineRuns)
	}
	if res.Stats.RepairStats.Kept != 4 || res.Stats.RepairStats.Moved != 1 {
		t.Errorf("repair stats = %+v, want Kept=4 Moved=1", res.Stats.RepairStats)
	}
	if res.Makespan > (1+opt.Eps)*res.LowerBound {
		t.Errorf("repaired makespan %.17g above certificate %.17g",
			res.Makespan, (1+opt.Eps)*res.LowerBound)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestResolveRepairFallsBack: a delta that concentrates load forces the
// repaired makespan past the certificate, so the resolve falls back to
// the warm search and stays bit-identical to from-scratch.
func TestResolveRepairFallsBack(t *testing.T) {
	base := sched.NewInstance(3)
	base.AddJob(1, 0)
	base.AddJob(1, 1)
	base.AddJob(1, 2)
	opt := resolveOpts()
	prior, err := Solve(base, opt)
	if err != nil {
		t.Fatal(err)
	}
	opt.Repair = true
	// Tripling one job's size moves lb to 3 only if... it moves lb to 3
	// (max job), and the repair trivially achieves it — so instead add
	// three same-bag jobs that crowd an existing bag: the greedy repair
	// still succeeds but lands above (1+eps)*lb when sizes force
	// imbalance.
	delta := sched.Delta{Add: []sched.Job{
		{ID: 10, Size: 2.0, Bag: 3},
		{ID: 11, Size: 2.0, Bag: 4},
		{ID: 12, Size: 2.0, Bag: 5},
		{ID: 13, Size: 0.1, Bag: 6},
	}}
	res, err := Resolve(prior, delta, opt)
	if err != nil {
		t.Fatal(err)
	}
	post, _, err := delta.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	cold, err := Solve(post, resolveOpts())
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Repaired {
		// The repair may legitimately absorb this delta too; the test
		// only demands the certificate holds in that case.
		if res.Makespan > (1+opt.Eps)*res.LowerBound {
			t.Errorf("repaired makespan %.17g above certificate", res.Makespan)
		}
		return
	}
	if res.Makespan != cold.Makespan {
		t.Errorf("fallback resolve makespan %.17g != cold %.17g", res.Makespan, cold.Makespan)
	}
}

// TestResolveErrors covers the input-validation paths.
func TestResolveErrors(t *testing.T) {
	base := sched.NewInstance(2)
	base.AddJob(1, 0)
	prior, err := Solve(base, resolveOpts())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Resolve(nil, sched.Delta{}, resolveOpts()); err == nil {
		t.Error("nil prior must fail")
	}
	if _, err := Resolve(&Result{}, sched.Delta{}, resolveOpts()); err == nil {
		t.Error("prior without input must fail")
	}
	if _, err := Resolve(prior, sched.Delta{Remove: []sched.JobID{99}}, prior.Options); err == nil {
		t.Error("invalid delta must fail")
	}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ResolveContext(ctx, prior, sched.Delta{}, prior.Options); err == nil {
		t.Error("canceled context must fail")
	}
}
