package core

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/greedy"
	"repro/internal/plan"
	"repro/internal/sched"
	"repro/internal/workload"
)

func adaptiveInstance(t testing.TB, seed int64) *sched.Instance {
	t.Helper()
	return workload.MustGenerate(workload.Spec{
		Family: "geometric", Machines: 4, Jobs: 16, Bags: 6, Seed: seed,
	})
}

// TestAdaptiveColdModelIsTransparent: adaptive mode against a cold
// model must keep the requested configuration and return the
// bit-identical schedule and decision stats of a plain solve.
func TestAdaptiveColdModelIsTransparent(t *testing.T) {
	in := adaptiveInstance(t, 7)
	plain, err := Solve(in, Options{Eps: 0.25})
	if err != nil {
		t.Fatal(err)
	}
	adaptive, err := Solve(in, Options{
		Eps: 0.25, Adaptive: true, Planner: plan.NewModel(),
		Deadline: 500 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plain.Schedule.Machine, adaptive.Schedule.Machine) {
		t.Fatal("cold-model adaptive solve diverged from the plain solve")
	}
	if !reflect.DeepEqual(plain.Stats.Decision(), adaptive.Stats.Decision()) {
		t.Fatal("cold-model adaptive decision stats diverged")
	}
	if adaptive.Quality.Degraded || adaptive.Quality.Rung != plan.RungEPTAS {
		t.Fatalf("cold-model adaptive solve must not degrade: %+v", adaptive.Quality)
	}
}

// TestAdaptiveTightDeadlineDegradesToHeuristic: once the model knows
// the eps rungs are too slow, a tight deadline lands on the bag-LPT
// rung and the answer is bit-identical to the baseline heuristic, with
// its bound reported.
func TestAdaptiveTightDeadlineDegradesToHeuristic(t *testing.T) {
	in := adaptiveInstance(t, 7)

	m := plan.NewModel()
	size := plan.SizeClass(len(in.Jobs))
	// Teach the model that every eps rung takes ~100ms at this size.
	for _, eps := range append([]float64{0.25}, plan.EpsGrid...) {
		m.Observe(plan.Key{Family: "bags", Size: size, Rung: plan.RungEPTAS,
			EpsIdx: plan.EpsIndex(eps), Backend: "bnb", Workers: 1}, 100*time.Millisecond)
	}

	res, err := Solve(in, Options{
		Eps: 0.25, Adaptive: true, Planner: m, Deadline: 5 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	q := res.Quality
	if q.Rung != plan.RungLPT || !q.Degraded {
		t.Fatalf("tight deadline must degrade to the LPT rung: %+v", q)
	}
	wantBound := plan.HeuristicBound("bags", in.Machines, plan.RungLPT)
	if q.Bound != wantBound && q.Bound != 1 {
		t.Fatalf("degraded response must carry the heuristic bound %g (or 1 if optimal), got %g", wantBound, q.Bound)
	}
	base, err := greedy.BagLPT(in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res.Schedule.Machine, base.Machine) {
		t.Fatal("LPT-rung schedule must match the bag-LPT baseline")
	}
	if res.Makespan > wantBound*res.LowerBound {
		t.Fatalf("heuristic answer violates its own bound: %g > %g*%g", res.Makespan, wantBound, res.LowerBound)
	}
}

// TestAdaptiveUnattainable: a quality floor that excludes every rung
// meeting the deadline refuses with plan.ErrUnattainable.
func TestAdaptiveUnattainable(t *testing.T) {
	in := adaptiveInstance(t, 3)
	m := plan.NewModel()
	size := plan.SizeClass(len(in.Jobs))
	for _, eps := range append([]float64{0.25}, plan.EpsGrid...) {
		m.Observe(plan.Key{Family: "bags", Size: size, Rung: plan.RungEPTAS,
			EpsIdx: plan.EpsIndex(eps), Backend: "bnb", Workers: 1}, time.Second)
	}
	_, err := Solve(in, Options{
		Eps: 0.25, Adaptive: true, Planner: m,
		Deadline: 2 * time.Millisecond, MinQuality: 1.95,
	})
	if !errors.Is(err, plan.ErrUnattainable) {
		t.Fatalf("want ErrUnattainable, got %v", err)
	}
	// A contradictory floor (finer than the request itself) refuses
	// even without a deadline.
	_, err = Solve(in, Options{
		Eps: 0.25, Adaptive: true, Planner: m, MinQuality: 1.1,
	})
	if !errors.Is(err, plan.ErrUnattainable) {
		t.Fatalf("contradictory floor: want ErrUnattainable, got %v", err)
	}
}

// TestQualityOnPlainSolve: every result carries a Quality block, even
// without a planner.
func TestQualityOnPlainSolve(t *testing.T) {
	in := adaptiveInstance(t, 11)
	res, err := Solve(in, Options{Eps: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	q := res.Quality
	if q.Rung != plan.RungEPTAS {
		t.Fatalf("plain solve rung = %q", q.Rung)
	}
	if q.Bound != 1.3 && q.Bound != 1 {
		t.Fatalf("plain solve bound = %g, want 1.3 (or 1 if provably optimal)", q.Bound)
	}
	if q.EpsUsed != 0.3 || q.PlannerTime != 0 {
		t.Fatalf("plain solve quality %+v", q)
	}
}

// TestHeuristicRungsDirect: forcing each heuristic rung reproduces the
// corresponding baseline and reports its documented bound.
func TestHeuristicRungsDirect(t *testing.T) {
	in := adaptiveInstance(t, 5)

	lpt, err := Solve(in, Options{Eps: 0.25, Heuristic: plan.RungLPT})
	if err != nil {
		t.Fatal(err)
	}
	base, err := greedy.BagLPT(in)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(lpt.Schedule.Machine, base.Machine) {
		t.Fatal("forced LPT rung must match the baseline")
	}
	if lpt.Quality.Rung != plan.RungLPT || lpt.Quality.Degraded {
		t.Fatalf("forced rung is the requested rung, not a degradation: %+v", lpt.Quality)
	}

	gr, err := Solve(in, Options{Eps: 0.25, Heuristic: plan.RungGreedy})
	if err != nil {
		t.Fatal(err)
	}
	order := make([]int, len(in.Jobs))
	for i := range order {
		order[i] = i
	}
	gbase, err := greedy.ListSchedule(in, order)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gr.Schedule.Machine, gbase.Machine) {
		t.Fatal("forced greedy rung must match the baseline")
	}
	wantBound := plan.HeuristicBound("bags", in.Machines, plan.RungGreedy)
	if gr.Quality.Bound != wantBound && gr.Quality.Bound != 1 {
		t.Fatalf("greedy bound = %g, want %g", gr.Quality.Bound, wantBound)
	}
	if gr.Makespan > wantBound*gr.LowerBound {
		t.Fatalf("greedy answer violates its bound: %g > %g*%g", gr.Makespan, wantBound, gr.LowerBound)
	}

	if _, err := Solve(in, Options{Eps: 0.25, Heuristic: "nope"}); err == nil {
		t.Fatal("unknown heuristic rung must be rejected")
	}
}

// TestObserveFeedsModel: a solve with a planner attached teaches the
// model, and a later adaptive solve keys its decision by the new
// version.
func TestObserveFeedsModel(t *testing.T) {
	in := adaptiveInstance(t, 9)
	m := plan.NewModel()
	if _, err := Solve(in, Options{Eps: 0.4, Planner: m}); err != nil {
		t.Fatal(err)
	}
	st := m.Snapshot()
	if st.Observations != 1 || st.Cells != 1 {
		t.Fatalf("solve must observe exactly once: %+v", st)
	}
	k := plan.Key{Family: "bags", Size: plan.SizeClass(len(in.Jobs)),
		Rung: plan.RungEPTAS, EpsIdx: plan.EpsIndex(0.4), Backend: "bnb", Workers: 1}
	if _, ok := m.Predict(k); !ok {
		t.Fatalf("observation landed under the wrong key")
	}
}
