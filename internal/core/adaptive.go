// SLO-aware adaptive solving: the admission-time planning hook that
// wraps every solve and re-solve.
//
// When Options.Adaptive is set (and a Planner attached), the solve is
// preceded by one plan.Decide call: the planner walks the degradation
// ladder from the requested eps through coarser rungs down to the
// heuristics and rewrites the options to the cheapest configuration
// predicted to meet Options.Deadline under Options.MinQuality,
// refusing with plan.ErrUnattainable when the floor cannot be met.
// Whatever rung ran, Result.Quality reports what the response actually
// guarantees.
//
// When Adaptive is off nothing about the solve changes — no option is
// rewritten, no context is derived (unless a Deadline is set), and
// observing latencies into an attached Planner never feeds back into
// the answer — so adaptive-off runs stay bit-identical to a build
// without this file (the plan-diff gate enforces it).
package core

import (
	"context"
	"time"

	"repro/internal/oracle"
	"repro/internal/plan"
	"repro/internal/sched"
)

// Quality reports what the solve actually delivered: which rung of the
// degradation ladder answered and the approximation bound it
// guarantees. It is populated on every Result, adaptive or not.
type Quality struct {
	// Rung names what produced the schedule: plan.RungEPTAS for a full
	// search, plan.RungLPT / plan.RungGreedy for heuristic answers
	// (planned or via the search's fallback guard), plan.RungRepair for
	// the placement-repair fast path.
	Rung string
	// EpsUsed is the accuracy the search ran at (0 for heuristic rungs).
	// Under adaptive solving it may be coarser than the requested eps.
	EpsUsed float64
	// BackendUsed is the oracle backend that decided the last accepted
	// guess ("" when no search ran).
	BackendUsed string
	// Bound is the worst-case approximation guarantee of the answer:
	// 1+eps for eptas and repair rungs, the family's heuristic bound
	// otherwise, and exactly 1 when the answer is provably optimal
	// (makespan at the lower bound).
	Bound float64
	// Degraded reports that the answer is coarser than the request —
	// either the planner chose a lower rung or the search fell back to
	// the heuristic upper bound.
	Degraded bool
	// PlannerTime is the admission-time planning overhead (0 when
	// adaptive was off).
	PlannerTime time.Duration
	// Predicted is the planner's latency estimate for the chosen
	// configuration (0 when unknown or adaptive was off); compare with
	// the measured solve time for predicted-vs-actual telemetry.
	Predicted time.Duration
	// ModelVersion is the cost-model version the decision was keyed by.
	ModelVersion uint64
	// BestEffort reports that no configuration was predicted to meet
	// the deadline and, absent a quality floor, the planner answered
	// with the cheapest-predicted rung anyway.
	BestEffort bool
}

// runAdaptive wraps a solve body with the admission-time planner,
// deadline enforcement, quality sealing and cost-model observation.
// body receives the (possibly rewritten) options and the
// (possibly deadline-bounded) context.
func runAdaptive(ctx context.Context, in *sched.Instance, opt Options,
	body func(context.Context, Options) (*Result, error)) (*Result, error) {

	start := time.Now()
	dec, planTime, err := planAdmission(ctx, in, &opt)
	if err != nil {
		return nil, err
	}
	if opt.Deadline > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, opt.Deadline)
		defer cancel()
	}
	res, err := body(ctx, opt)
	if err != nil {
		return nil, err
	}
	elapsed := time.Since(start)
	if dec != nil {
		q := &res.Quality
		q.Degraded = q.Degraded || dec.Degraded
		q.PlannerTime = planTime
		q.Predicted = dec.Predicted
		q.ModelVersion = dec.ModelVersion
		q.BestEffort = dec.BestEffort
	}
	observeSolve(opt, in, res, elapsed)
	return res, nil
}

// planAdmission runs the planner when opt asks for adaptive solving,
// rewriting opt in place to the chosen rung: eps and backend for an
// eptas rung, Heuristic for a heuristic one. It reports the decision
// (nil when adaptive is off) and the planning overhead.
func planAdmission(ctx context.Context, in *sched.Instance, opt *Options) (*plan.Decision, time.Duration, error) {
	if !opt.Adaptive || opt.Planner == nil {
		return nil, 0, nil
	}
	start := time.Now()
	budget := opt.Deadline
	if budget == 0 {
		if dl, ok := ctx.Deadline(); ok {
			budget = time.Until(dl)
		}
	}
	req := plan.Request{
		Family:     familyName(*opt),
		Jobs:       len(in.Jobs),
		Machines:   in.Machines,
		Eps:        opt.Eps,
		Workers:    normWorkers(opt.OracleWorkers),
		Budget:     budget,
		MinQuality: opt.MinQuality,
	}
	if len(opt.PlanBackends) > 0 {
		// The caller left the backend to the planner.
		for _, k := range opt.PlanBackends {
			req.Candidates = append(req.Candidates, k.String())
		}
	} else {
		req.Backend = opt.Oracle.Backend.String()
	}
	dec, err := opt.Planner.Decide(req)
	if err != nil {
		return nil, time.Since(start), err
	}
	if dec.Rung.Heuristic() {
		opt.Heuristic = dec.Rung.Name
	} else {
		opt.Eps = dec.Rung.Eps
		if req.Backend == "" && dec.Backend != "" {
			if k, perr := oracle.ParseKind(dec.Backend); perr == nil {
				opt.Oracle.Backend = k
			}
		}
	}
	return &dec, time.Since(start), nil
}

// observeSolve folds the measured latency of a completed solve into
// the attached cost model (when there is one), keyed by the
// configuration that ran. Only successful solves observe — a latency
// truncated by cancellation would poison the estimate — and repaired
// re-solves don't (repair latency says nothing about search cost).
func observeSolve(opt Options, in *sched.Instance, res *Result, elapsed time.Duration) {
	if opt.Planner == nil || res == nil || res.Quality.Rung == plan.RungRepair {
		return
	}
	k := plan.Key{Family: familyName(opt), Size: plan.SizeClass(len(in.Jobs))}
	if opt.Heuristic != "" {
		k.Rung = opt.Heuristic
	} else {
		// Keyed by the *requested* backend (a portfolio's per-guess race
		// winners vary), the eps the search actually ran at, and the
		// lane count.
		k.Rung = plan.RungEPTAS
		k.EpsIdx = plan.EpsIndex(opt.Eps)
		k.Backend = opt.Oracle.Backend.String()
		k.Workers = normWorkers(opt.OracleWorkers)
	}
	opt.Planner.Observe(k, elapsed)
}

// setQuality records which rung answered and the bound it guarantees.
// rung is what actually produced res.Schedule; the requested rung (for
// the Degraded flag) is opt.Heuristic when a heuristic was forced,
// eptas otherwise.
func (env *solveEnv) setQuality(rung string) {
	res := env.res
	q := &res.Quality
	q.Rung = rung
	q.BackendUsed = res.Stats.OracleBackend
	requested := env.opt.Heuristic
	if requested == "" {
		requested = plan.RungEPTAS
	}
	q.Degraded = rung != requested && rung != plan.RungRepair
	switch rung {
	case plan.RungEPTAS, plan.RungRepair:
		q.EpsUsed = env.opt.Eps
		q.Bound = 1 + env.opt.Eps
	default:
		q.Bound = plan.HeuristicBound(familyName(env.opt), env.work.Machines, rung)
	}
	// A makespan at the lower bound is provably optimal whatever
	// produced it.
	if res.Schedule != nil && res.Makespan <= res.LowerBound {
		q.Bound = 1
	}
}

func familyName(opt Options) string {
	if opt.Family == nil {
		return "bags"
	}
	return opt.Family.Name()
}

func normWorkers(w int) int {
	if w < 1 {
		return 1
	}
	return w
}
