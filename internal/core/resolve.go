// Incremental re-solve: ResolveContext answers a delta against a prior
// Result without paying the full from-scratch search.
//
// Three mechanisms stack, each independently result-transparent with
// respect to the EPTAS contract:
//
//  1. Warm-started search. Makespan guesses live on an absolute
//     geometric grid (round.GridRatio), so the acceptance boundary is a
//     property of the instance alone. The re-solve seeds the search at
//     the prior makespan's grid index and probes outward geometrically
//     (round.SearchWarm) instead of bisecting the full [lb, ub]
//     interval; under the pipeline's monotone acceptance it converges
//     to the bit-identical schedule a from-scratch solve of the
//     post-delta instance returns, in a number of guesses that scales
//     with how far the delta moved the optimum, not with the interval.
//
//  2. Memo carry-over. The prior solve's cross-guess memo rides along
//     on Result.Memo; guesses whose scaled-rounded signature is
//     unchanged by the delta (for example, resizes within a rounding
//     class) are served from it without re-running the pipeline.
//
//  3. Placement repair (opt-in, Options.Repair). Before searching at
//     all, carry every unchanged job's assignment over from the prior
//     schedule and greedily re-place only the churned jobs
//     (placer.Repair). The repaired schedule is accepted only when its
//     makespan stays within (1+Eps) of the post-delta lower bound — a
//     certificate at least as strong as the search's own guarantee —
//     and otherwise the warm search runs. Repair trades bit-identity
//     with the from-scratch solve for near-zero latency, which is why
//     it is off by default.
package core

import (
	"context"
	"fmt"

	"repro/internal/placer"
	"repro/internal/plan"
	"repro/internal/round"
	"repro/internal/sched"
)

// Resolve applies delta to the prior result's instance and re-solves
// incrementally. See ResolveContext.
func Resolve(prior *Result, delta sched.Delta, opt Options) (*Result, error) {
	return ResolveContext(context.Background(), prior, delta, opt)
}

// ResolveContext applies delta to prior.Input and solves the post-delta
// instance, warm-starting from the prior result: the search is seeded
// at the prior makespan, the prior solve's memo serves
// signature-preserving guesses, and (when opt.Repair is set) a
// placement repair may answer without searching at all. Without Repair
// the returned schedule is bit-identical to SolveContext on the
// post-delta instance under the same options.
//
// The prior result must come from SolveContext or ResolveContext (it
// carries the input instance and the memo); opt is typically
// prior.Options, possibly with resolve-only knobs flipped. A nil
// opt.Cache defaults to prior.Memo.
func ResolveContext(ctx context.Context, prior *Result, delta sched.Delta, opt Options) (*Result, error) {
	if prior == nil || prior.Input == nil {
		return nil, fmt.Errorf("eptas: resolve needs a prior result carrying its input instance (run Solve first)")
	}
	post, churn, err := delta.Apply(prior.Input)
	if err != nil {
		return nil, err
	}
	if opt.Cache == nil {
		opt.Cache = prior.Memo
	}
	return runAdaptive(ctx, post, opt, func(ctx context.Context, opt Options) (*Result, error) {
		return resolveSearch(ctx, prior, post, churn, opt)
	})
}

// resolveSearch is the planning-free incremental re-solve: repair fast
// path, then the warm-started search.
func resolveSearch(ctx context.Context, prior *Result, post *sched.Instance, churn *sched.Churn, opt Options) (*Result, error) {
	env, err := prepareSolve(ctx, post, opt)
	if err != nil {
		return nil, err
	}
	if env.done {
		return env.res, nil
	}

	if opt.Repair && prior.Schedule != nil {
		if res, ok := env.tryRepair(prior.Schedule, churn); ok {
			return res, nil
		}
	}

	eval, commit := env.searchFuncs()
	// Seed at the prior accepted grid point — the boundary itself when
	// the delta left it unmoved. The makespan is the fallback seed (a
	// prior that returned its fallback schedule has no final guess);
	// either way the warm search clamps the seed onto (lb, ub].
	seed := prior.Stats.FinalGuess
	if seed <= 0 {
		seed = prior.Makespan
	}
	if seed <= 0 {
		seed = env.lb
	}
	search := round.SearchWarm(ctx, env.lb, env.ub, seed, round.GridRatio(opt.Eps),
		opt.MaxGuesses, eval, commit)
	return env.finish(ctx, search)
}

// tryRepair runs the placement-repair fast path: carry unchanged
// assignments from prior onto the post-delta work instance, re-place
// churned jobs greedily, and accept iff the repaired makespan is within
// (1+Eps) of the post-delta lower bound. Reports ok=false — and leaves
// env untouched for the warm search — when the repair fails or the
// certificate does not hold.
func (env *solveEnv) tryRepair(prior *sched.Schedule, churn *sched.Churn) (*Result, bool) {
	s, rst, err := placer.Repair(prior, env.work, churn)
	if err != nil {
		return nil, false
	}
	ms := s.Makespan()
	if ms > (1+env.opt.Eps)*env.lb {
		return nil, false
	}
	res := env.res
	res.Schedule = s
	res.Makespan = ms
	res.Stats.Repaired = true
	res.Stats.RepairStats = rst
	res.Memo = env.engine.Cache()
	// The repair certificate ms <= (1+eps)*lb is exactly the eptas
	// bound.
	env.setQuality(plan.RungRepair)
	return res, true
}
