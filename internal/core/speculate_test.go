package core

import (
	"reflect"
	"testing"

	"repro/internal/workload"
)

// TestSpeculativeSolveMatchesSequential checks the tentpole determinism
// guarantee: speculative parallel guess evaluation must be
// result-transparent — makespan, schedule and every Stats field identical
// to the strictly sequential search, for every workload family.
func TestSpeculativeSolveMatchesSequential(t *testing.T) {
	for _, fam := range workload.Families() {
		for _, eps := range []float64{0.75, 0.5} {
			in := workload.MustGenerate(workload.Spec{
				Family: fam, Machines: 4, Jobs: 18, Bags: 6, Seed: 7,
			})
			seq, err := Solve(in, Options{Eps: eps, Speculate: 1})
			if err != nil {
				t.Fatalf("%s eps=%g sequential: %v", fam, eps, err)
			}
			spec, err := Solve(in, Options{Eps: eps, Speculate: 3})
			if err != nil {
				t.Fatalf("%s eps=%g speculative: %v", fam, eps, err)
			}
			if spec.Makespan != seq.Makespan {
				t.Errorf("%s eps=%g: makespan %v (speculative) != %v (sequential)",
					fam, eps, spec.Makespan, seq.Makespan)
			}
			// Engine-level work counters (pipeline runs, cache traffic,
			// stage timings) legitimately differ between the two modes;
			// every decision-level statistic must not.
			if !reflect.DeepEqual(spec.Stats.Decision(), seq.Stats.Decision()) {
				t.Errorf("%s eps=%g: stats diverge:\nspec %+v\nseq  %+v",
					fam, eps, spec.Stats.Decision(), seq.Stats.Decision())
			}
			if len(spec.Schedule.Machine) != len(seq.Schedule.Machine) {
				t.Fatalf("%s eps=%g: schedule lengths differ", fam, eps)
			}
			for j := range spec.Schedule.Machine {
				if spec.Schedule.Machine[j] != seq.Schedule.Machine[j] {
					t.Errorf("%s eps=%g: job %d on machine %d (speculative) vs %d (sequential)",
						fam, eps, j, spec.Schedule.Machine[j], seq.Schedule.Machine[j])
					break
				}
			}
		}
	}
}

// TestSpeculativeDefault checks the Speculate knob's auto/explicit
// interpretation.
func TestSpeculativeDefault(t *testing.T) {
	if speculative(Options{Speculate: 1}) {
		t.Error("Speculate=1 must force the sequential search")
	}
	if !speculative(Options{Speculate: 2}) || !speculative(Options{Speculate: 4}) {
		t.Error("Speculate>1 must enable speculation")
	}
}
