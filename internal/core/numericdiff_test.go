package core

// Differential tests of the fixed-point numeric core: the post-rounding
// pipeline runs on exact int64 fixed-point arithmetic by default, with
// the pre-refactor float64 arithmetic retained behind Options.Float64Ref.
// Result transparency is non-negotiable — both paths must return
// bit-identical makespans, schedules and decision statistics over the
// full workload corpus, in both MILP modes and with the transformation
// active (priority cap) and inactive.

import (
	"reflect"
	"testing"
	"time"

	"repro/internal/cfgmilp"
	"repro/internal/milp"
	"repro/internal/workload"
)

// slowMILP raises the per-guess MILP wall-clock backstop far above
// anything these instances need, so every guess is decided by its
// deterministic node budget (capped below the default to keep the -race
// CI job fast). Without this, a heavily loaded runner can trip the 2s
// backstop on one path but not the other and legitimately diverge in
// ladder statistics — the documented load-dependence caveat, not a
// numeric difference.
var slowMILP = milp.Options{TimeLimit: 5 * time.Minute, MaxNodes: 200}

// diffPatternLimit keeps the LP dimension of the differential corpus
// small: guesses whose spaces explode are rejected identically on both
// paths and the ladder degrades — itself a path worth diffing.
const diffPatternLimit = 1000

func TestFixedPointMatchesFloat64Reference(t *testing.T) {
	type variant struct {
		name string
		opt  Options
	}
	variants := []variant{
		{"default", Options{Eps: 0.5, Speculate: 1, MILP: slowMILP, PatternLimit: diffPatternLimit}},
		{"eps033", Options{Eps: 0.33, Speculate: 1, MILP: slowMILP, PatternLimit: diffPatternLimit}},
		{"prioritycap", Options{Eps: 0.5, Speculate: 1, BPrimeOverride: 2, MILP: slowMILP, PatternLimit: diffPatternLimit}},
		// Paper mode materializes the y block, so its LP dimension is the
		// pattern count times the small-size/bag diversity — a much
		// tighter pattern budget keeps it a model-shape diff rather than
		// a scale test.
		{"papermode", Options{Eps: 0.5, Speculate: 1, Mode: cfgmilp.ModePaper, BPrimeOverride: 2,
			MILP: milp.Options{TimeLimit: 5 * time.Minute, MaxNodes: 80}, PatternLimit: 250}},
	}
	// Every family runs the default variant plus one rotating special
	// variant; the full cross product would quadruple the -race CI cost
	// without adding a numeric path the rotation misses.
	for fi, fam := range workload.Families() {
		for _, v := range []variant{variants[0], variants[1+fi%(len(variants)-1)]} {
			in := workload.MustGenerate(workload.Spec{
				Family: fam, Machines: 6, Jobs: 24, Bags: 8, Seed: 7,
			})
			fixed, err := Solve(in, v.opt)
			if err != nil {
				t.Fatalf("%s/%s fixed: %v", fam, v.name, err)
			}
			ref := v.opt
			ref.Float64Ref = true
			float, err := Solve(in, ref)
			if err != nil {
				t.Fatalf("%s/%s float ref: %v", fam, v.name, err)
			}
			if fixed.Makespan != float.Makespan {
				t.Errorf("%s/%s: makespan %v (fixed) vs %v (float): not bit-identical",
					fam, v.name, fixed.Makespan, float.Makespan)
			}
			if !reflect.DeepEqual(fixed.Schedule.Machine, float.Schedule.Machine) {
				t.Errorf("%s/%s: schedules diverge", fam, v.name)
			}
			if !reflect.DeepEqual(fixed.Stats.Decision(), float.Stats.Decision()) {
				t.Errorf("%s/%s: decision stats diverge:\nfixed %+v\nfloat %+v",
					fam, v.name, fixed.Stats.Decision(), float.Stats.Decision())
			}
			if fixed.LowerBound != float.LowerBound {
				t.Errorf("%s/%s: lower bounds diverge", fam, v.name)
			}
		}
	}
}

// TestFixedPointMatchesFloat64ReferenceLarger pushes one bigger instance
// per family through both paths to catch divergence that only appears
// with deeper pattern spaces and more binary-search guesses.
func TestFixedPointMatchesFloat64ReferenceLarger(t *testing.T) {
	if testing.Short() {
		t.Skip("larger differential corpus")
	}
	for _, fam := range workload.Families() {
		in := workload.MustGenerate(workload.Spec{
			Family: fam, Machines: 8, Jobs: 40, Bags: 10, Seed: 77,
		})
		fixed, err := Solve(in, Options{Eps: 0.4, Speculate: 1, BPrimeOverride: 4, MILP: slowMILP, PatternLimit: diffPatternLimit})
		if err != nil {
			t.Fatalf("%s fixed: %v", fam, err)
		}
		float, err := Solve(in, Options{Eps: 0.4, Speculate: 1, BPrimeOverride: 4, MILP: slowMILP, PatternLimit: diffPatternLimit, Float64Ref: true})
		if err != nil {
			t.Fatalf("%s float ref: %v", fam, err)
		}
		if fixed.Makespan != float.Makespan {
			t.Errorf("%s: makespan %v (fixed) vs %v (float)", fam, fixed.Makespan, float.Makespan)
		}
		if !reflect.DeepEqual(fixed.Schedule.Machine, float.Schedule.Machine) {
			t.Errorf("%s: schedules diverge", fam)
		}
		if !reflect.DeepEqual(fixed.Stats.Decision(), float.Stats.Decision()) {
			t.Errorf("%s: decision stats diverge", fam)
		}
	}
}
