// Package core implements the paper's main result: the efficient
// polynomial-time approximation scheme (EPTAS) for machine scheduling
// with bag-constraints on identical machines (Theorem 1).
//
// Solve runs a dual-approximation binary search over makespan guesses;
// each guess is decided by the staged per-guess pipeline of
// internal/pipeline (scale → classify → transform → enumerate → MILP →
// place → lift), driven through one shared pipeline.Engine so that
// guesses falling into the same geometric-rounding equivalence class are
// decided once and memoized. Cancellation flows through context.Context
// from SolveContext down to the branch-and-bound loop.
package core

import (
	"context"
	"fmt"
	"runtime"
	"time"

	"repro/internal/cfgmilp"
	"repro/internal/family"
	"repro/internal/greedy"
	"repro/internal/memo"
	"repro/internal/milp"
	"repro/internal/oracle"
	"repro/internal/pipeline"
	"repro/internal/placer"
	"repro/internal/plan"
	"repro/internal/round"
	"repro/internal/sched"
	"repro/internal/transform"
)

// Options configures the scheme.
type Options struct {
	// Eps is the accuracy parameter in (0, 1). The schedule is within
	// 1+O(Eps) of optimal; smaller values are slower.
	Eps float64
	// Family selects the problem family the solver runs as. Nil (the
	// default) is family.Bags — the paper's bag-constrained EPTAS,
	// byte-for-byte the pre-seam behavior. family.Identical drops the
	// bag structure (every job its own bag); family.Related solves
	// uniformly related machines with few distinct speeds. See
	// internal/family.
	Family family.Family
	// Mode selects the MILP flavour; the default is ModeDecomposed.
	Mode cfgmilp.Mode
	// PatternLimit bounds pattern enumeration (default
	// pattern.DefaultLimit); a guess whose pattern space exceeds the
	// limit is rejected.
	PatternLimit int
	// MILP tunes the branch-and-bound solver; StopAtFirst is forced on
	// (the configuration program is a feasibility problem).
	MILP milp.Options
	// Oracle selects the integer-programming oracle backend that decides
	// each guess's configuration program: branch-and-bound (the default),
	// the exact configuration DP, or a deterministic portfolio race of
	// both. See internal/oracle.
	Oracle oracle.Selection
	// OracleWorkers is the number of concurrent lanes a single oracle
	// solve may use (speculative LP relaxations in branch-and-bound,
	// speculative root subtrees in the configuration DP); <= 1 means
	// sequential. Unlike Speculate it parallelizes *inside* one guess,
	// and the two compose. Results are bit-identical at any value — the
	// oracle's parallel schemes are result-transparent by construction —
	// so this is a throughput knob, never a result knob.
	OracleWorkers int
	// MaxGuesses bounds the binary-search decisions (default 40).
	MaxGuesses int
	// AllPriority disables priority-bag selection and the instance
	// transformation, yielding the Das–Wiese-style configuration program
	// whose cost grows with the number of bags (baseline for EX-T2).
	AllPriority bool
	// BPrimeOverride caps the Definition 2 priority constant b'; see
	// classify.Options.BPrimeOverride.
	BPrimeOverride int
	// Speculate controls speculative parallel guess evaluation in the
	// binary search. 1 evaluates guesses strictly sequentially; any
	// larger value (all treated alike) evaluates the current midpoint
	// and its two possible successor midpoints concurrently (up to
	// three live pipelines per round). 0 picks automatically:
	// speculative when more than one CPU is available. Speculation is
	// result-transparent — the consumed guess sequence, the accepted
	// schedule and all decision statistics are bit-for-bit identical to
	// the sequential search — provided per-guess outcomes are
	// load-independent, i.e. the MILP's deterministic node budget rather
	// than its wall-clock backstop (Options.MILP.TimeLimit) is what
	// binds; a solve close enough to the time limit can flip a guess
	// under CPU contention, sequentially or not. The cache-hit/miss
	// split in Stats (but not any result) can also vary under
	// speculation.
	Speculate int
	// Cache, when non-nil, is a shared cross-request memo the pipeline
	// engine stores guess outcomes in (and serves hits from) instead of
	// a private per-solve one — the serving layer passes one bounded
	// cache here for every request. Results are bit-identical with and
	// without a shared cache (the differential tests enforce this);
	// sharing only avoids repeated work. See internal/memo.
	Cache *memo.Cache
	// DisableMemo turns off the cross-guess memoization of the pipeline
	// engine, including a shared Cache. Results are identical with and
	// without the memo (the differential tests enforce this); disabling
	// it only repeats work.
	DisableMemo bool
	// Float64Ref runs the post-rounding pipeline on the retained float64
	// reference arithmetic instead of the exact int64 fixed-point
	// representation. Results are bit-for-bit identical (the differential
	// tests assert it across the workload corpus); the flag exists only
	// for those tests and for benchmark baselines.
	Float64Ref bool
	// Adaptive enables SLO-aware admission-time planning: before the
	// search runs, the attached Planner walks the degradation ladder
	// (requested eps → coarser eps → heuristics) and rewrites Eps,
	// Oracle.Backend and Heuristic to the cheapest configuration
	// predicted to finish within Deadline while honoring MinQuality.
	// Ignored when Planner is nil. Off by default: adaptive-off solves
	// are bit-identical to a build without the planner (the plan-diff
	// gate enforces it).
	Adaptive bool
	// Planner is the online cost model adaptive solving plans against.
	// When non-nil it also *observes*: every completed solve folds its
	// measured latency into the model, keyed by (family, size bucket,
	// eps, backend, workers) — observation never changes an answer, so
	// attaching a model is result-transparent. See internal/plan.
	Planner *plan.Model
	// Deadline is this solve's latency budget. When positive it bounds
	// the solve context (exceeding it aborts with DeadlineExceeded) and
	// is the budget adaptive planning fits configurations into; 0 means
	// no deadline (adaptive planning then falls back to the context's
	// own deadline, if any).
	Deadline time.Duration
	// MinQuality is the adaptive quality floor: the worst acceptable
	// approximation bound (e.g. 1.5 admits eps rungs up to 0.5 and
	// nothing coarser). When no ladder rung meets both the floor and
	// the deadline the solve refuses with plan.ErrUnattainable instead
	// of degrading further. 0 means no floor — the planner then
	// answers best-effort rather than refuse.
	MinQuality float64
	// PlanBackends, when non-empty, are the oracle backends the planner
	// may choose among (preference order) for eptas rungs; empty pins
	// the planner to Oracle.Backend. Only consulted when Adaptive is
	// set.
	PlanBackends []oracle.Kind
	// Heuristic forces a heuristic rung instead of the EPTAS search:
	// plan.RungLPT answers with the family's LPT fallback schedule,
	// plan.RungGreedy with the input-order least-loaded list schedule.
	// Adaptive planning sets it when the deadline only affords a
	// heuristic; callers may also set it directly. Result.Quality
	// carries the rung's approximation bound.
	Heuristic string
	// Repair enables the placement-repair fast path of ResolveContext:
	// when set, a re-solve first tries to carry the prior schedule's
	// unchanged assignments over and greedily re-place only the churned
	// jobs, accepting the repaired schedule when its makespan stays
	// within (1+Eps) of the post-delta lower bound — a certificate at
	// least as strong as the search's own guarantee. Repaired schedules
	// may legitimately differ from what a from-scratch solve returns
	// (the makespan bound is the contract, not bit-identity), so the
	// flag is off by default and ignored by Solve.
	Repair bool
}

// Stats describes the EPTAS search effort.
type Stats struct {
	// Guesses is the number of makespan guesses tried.
	Guesses int
	// FinalGuess is the smallest accepted makespan guess of the search
	// (0 when no guess was accepted). Guesses live on an absolute
	// geometric grid (see round.GridRatio), so the final guess of a
	// solve marks the acceptance boundary and seeds the warm-started
	// search of an incremental re-solve — even when the bag-LPT
	// fallback beat the accepted schedule and was returned instead.
	FinalGuess float64
	// FailedGuesses counts guesses rejected (MILP infeasible, pattern
	// explosion or placement failure).
	FailedGuesses int
	// Patterns is the pattern count of the last accepted guess.
	Patterns int
	// IntegerVars is the MILP integer dimension of the last accepted
	// guess.
	IntegerVars int
	// MILPNodes is the total branch-and-bound nodes over all accepted
	// guesses (cache-served guesses count the nodes of the pipeline run
	// that produced their outcome, so the total matches an unmemoized
	// search). Only winning-backend work counts: guesses decided by the
	// configuration DP contribute to DPStates instead.
	MILPNodes int
	// DPStates is the total configuration-DP states expanded by winning
	// cfgdp solves over all accepted guesses.
	DPStates int64
	// OracleBackend is the backend that decided the last accepted guess
	// (the race winner under the portfolio).
	OracleBackend string
	// OracleRaces counts accepted guesses decided by a portfolio race.
	OracleRaces int
	// OracleLoserNodes, OracleLoserStates and OracleLoserTime account the
	// work burned by outraced portfolio backends before cancellation over
	// all accepted guesses. How far a loser gets before it observes the
	// winner's logical deadline is load-dependent, so these three fields
	// are excluded from the Decision projection.
	OracleLoserNodes  int
	OracleLoserStates int64
	OracleLoserTime   time.Duration
	// OracleWorkers is the lane count oracle solves ran with (1 when
	// sequential); OracleSteals and OracleSpecUsed total, over all
	// accepted guesses, the speculative work units claimed by helper
	// lanes and the subset the main lane adopted. Utilization telemetry:
	// load-dependent like the Loser* fields, excluded from the Decision
	// projection.
	OracleWorkers  int
	OracleSteals   int64
	OracleSpecUsed int64
	// K, Q, BPrime are the classification parameters of the last
	// accepted guess.
	K, Q, BPrime int
	// PriorityBags is the number of priority bags of the last accepted
	// guess.
	PriorityBags int
	// Place reports placement repairs of the last accepted guess.
	Place placer.Stats
	// Lift reports lift work of the last accepted guess.
	Lift transform.LiftStats
	// Fallback is true when no guess was accepted and the returned
	// schedule is the bag-LPT upper bound.
	Fallback bool
	// Repaired is true when ResolveContext's placement-repair fast path
	// produced the returned schedule without running the search (see
	// Options.Repair); RepairStats then reports the repair work.
	Repaired    bool
	RepairStats placer.RepairStats

	// PipelineRuns counts full pipeline executions, including rejected
	// guesses and abandoned speculative evaluations.
	PipelineRuns int
	// CacheHits and CacheMisses report the cross-guess memo traffic of
	// the pipeline engine: a hit is a guess decided without re-running
	// the pipeline because an earlier guess scaled-rounded to the same
	// instance. Under speculative evaluation the split can vary between
	// runs; results never do.
	CacheHits   int
	CacheMisses int
	// StageTime is total wall-clock time per pipeline stage (keyed by
	// pipeline.StageNames()) over every execution of this solve,
	// including rejected and abandoned speculative pipelines.
	StageTime map[string]time.Duration
}

// Decision returns a copy of s with the engine-level work counters
// (PipelineRuns, CacheHits, CacheMisses, StageTime) and the load-dependent
// portfolio loser accounting (OracleLoserNodes, OracleLoserStates,
// OracleLoserTime) cleared. What remains is determined solely by the
// consumed guess sequence, so it is bit-for-bit reproducible across
// sequential, speculative, batched, memoized and unmemoized runs — the
// determinism tests compare exactly this projection.
func (s Stats) Decision() Stats {
	s.PipelineRuns, s.CacheHits, s.CacheMisses, s.StageTime = 0, 0, 0, nil
	s.OracleLoserNodes, s.OracleLoserStates, s.OracleLoserTime = 0, 0, 0
	s.OracleWorkers, s.OracleSteals, s.OracleSpecUsed = 0, 0, 0
	return s
}

// Result is the outcome of Solve.
type Result struct {
	// Schedule is a feasible schedule of the input instance.
	Schedule *sched.Schedule
	// Makespan is the schedule's makespan.
	Makespan float64
	// LowerBound is the combinatorial lower bound on OPT.
	LowerBound float64
	// Stats describes the search.
	Stats Stats
	// Quality reports which rung of the degradation ladder answered and
	// the approximation bound the answer guarantees; populated on every
	// result, adaptive or not.
	Quality Quality

	// Input is the instance the solve ran on — the caller's instance,
	// before any family preparation. ResolveContext applies deltas to
	// it.
	Input *sched.Instance
	// Options records the options the solve ran with, so an incremental
	// re-solve reuses the exact configuration (family, backend, eps)
	// that produced the prior result.
	Options Options
	// Memo is the cross-guess memo the solve stored pipeline outcomes
	// in: the shared cache when one was passed, the solve's private memo
	// otherwise (nil when memoization was disabled or the solve returned
	// early). ResolveContext defaults its cache to it, so guesses whose
	// scaled-rounded signature is unchanged by the delta are served
	// without re-running the pipeline.
	Memo *memo.Cache
}

// PipelineResult exposes every intermediate artifact of one makespan
// guess; see pipeline.Result.
type PipelineResult = pipeline.Result

// Solve runs the EPTAS. The input instance is not modified.
func Solve(in *sched.Instance, opt Options) (*Result, error) {
	return SolveContext(context.Background(), in, opt)
}

// SolveContext runs the EPTAS under a context. Cancellation reaches every
// layer — between binary-search guesses, between pipeline stages, inside
// pattern enumeration and inside the MILP branch-and-bound loop — so a
// canceled or expired context aborts the solve promptly and returns
// ctx.Err(). With Options.Adaptive set the solve is preceded by an
// admission-time planning step that may coarsen eps, switch the
// backend, or answer with a heuristic rung to meet Options.Deadline;
// see Options.Adaptive and internal/plan.
func SolveContext(ctx context.Context, in *sched.Instance, opt Options) (*Result, error) {
	return runAdaptive(ctx, in, opt, func(ctx context.Context, opt Options) (*Result, error) {
		return solveSearch(ctx, in, opt)
	})
}

// solveSearch is the planning-free solve: validate, prepare, binary
// search, finish.
func solveSearch(ctx context.Context, in *sched.Instance, opt Options) (*Result, error) {
	env, err := prepareSolve(ctx, in, opt)
	if err != nil {
		return nil, err
	}
	if env.done {
		return env.res, nil
	}
	eval, commit := env.searchFuncs()
	var search round.SearchResult
	ratio := round.GridRatio(opt.Eps)
	if speculative(opt) {
		search = round.SearchGridSpec(ctx, env.lb, env.ub, ratio, opt.MaxGuesses, eval, commit)
	} else {
		search = round.SearchGridSeq(ctx, env.lb, env.ub, ratio, opt.MaxGuesses, eval, commit)
	}
	return env.finish(ctx, search)
}

// solveEnv is the shared scaffolding of a solve or re-solve: the
// validated, family-prepared instance, its bounds, the fallback
// schedule and the pipeline engine the search drives. SolveContext and
// ResolveContext differ only in the search strategy they run on it.
type solveEnv struct {
	opt     Options
	fam     family.Family
	work    *sched.Instance
	lb, ub  float64
	ubSched *sched.Schedule
	engine  *pipeline.Engine
	res     *Result
	done    bool // res is complete; no search needed
}

// prepareSolve validates in under opt and builds the search
// environment. When done is set on the returned env, its res is a
// complete early result (empty instance, or a provably optimal
// fallback) and no search runs.
func prepareSolve(ctx context.Context, in *sched.Instance, opt Options) (*solveEnv, error) {
	if err := ctx.Err(); err != nil {
		// An already-dead context aborts before any work — including the
		// early-return paths (empty instance, provably optimal bag-LPT)
		// that never reach the search loop's own ctx checks.
		return nil, err
	}
	fam := opt.Family
	if fam == nil {
		fam = family.Bags
	}
	if err := fam.Validate(in); err != nil {
		return nil, err
	}
	if err := fam.Feasible(in); err != nil {
		return nil, err
	}
	if opt.Eps <= 0 || opt.Eps >= 1 {
		return nil, fmt.Errorf("eptas: Eps must be in (0,1), got %g", opt.Eps)
	}
	// work is the instance the pipeline runs on: the input itself for
	// Bags (bit-identical pre-seam behaviour), a singleton-bag clone for
	// families without bag-constraints. Schedules are bound to work;
	// its jobs, sizes and machine count match the input position for
	// position, so assignments read back directly.
	env := &solveEnv{
		opt:  opt,
		fam:  fam,
		work: fam.Prepare(in),
		res:  &Result{Input: in, Options: opt},
	}
	if len(in.Jobs) == 0 {
		env.res.Schedule = sched.NewSchedule(env.work)
		env.setQuality(plan.RungEPTAS)
		env.done = true
		return env, nil
	}

	env.lb = fam.LowerBound(in)
	env.res.LowerBound = env.lb
	ubSched, err := fam.Fallback(env.work)
	if err != nil {
		return nil, err
	}
	env.ubSched = ubSched
	env.ub = ubSched.Makespan()

	// The bag-LPT schedule may already be provably optimal.
	if env.ub <= env.lb {
		env.res.Schedule = ubSched
		env.res.Makespan = env.ub
		env.setQuality(plan.RungLPT)
		env.done = true
		return env, nil
	}

	// A forced heuristic rung (planned, or set by the caller) answers
	// without searching: the family's LPT fallback is already in hand,
	// the greedy rung list-schedules in input order.
	if opt.Heuristic != "" {
		sch, err := env.heuristicSchedule(opt.Heuristic)
		if err != nil {
			return nil, err
		}
		env.res.Schedule = sch
		env.res.Makespan = sch.Makespan()
		env.setQuality(opt.Heuristic)
		env.done = true
		return env, nil
	}
	env.engine = pipeline.New(pipelineConfig(opt))
	return env, nil
}

// heuristicSchedule executes one heuristic rung on the prepared work
// instance.
func (env *solveEnv) heuristicSchedule(name string) (*sched.Schedule, error) {
	switch name {
	case plan.RungLPT:
		return env.ubSched, nil
	case plan.RungGreedy:
		order := make([]int, len(env.work.Jobs))
		for i := range order {
			order[i] = i
		}
		return greedy.ListSchedule(env.work, order)
	}
	return nil, fmt.Errorf("eptas: unknown heuristic rung %q", name)
}

// searchFuncs returns the eval/commit pair the binary search drives.
// eval is pure (the engine memo is internally synchronized and
// result-transparent); all Stats mutation happens in commit, which the
// search invokes in deterministic sequential order for consumed guesses
// only (discarded speculative pipelines never report).
func (env *solveEnv) searchFuncs() (
	func(ctx context.Context, guess float64) (*pipeline.Result, bool),
	func(_ float64, pr *pipeline.Result, ok bool) *sched.Schedule,
) {
	eval := func(ctx context.Context, guess float64) (*pipeline.Result, bool) {
		pr, err := env.engine.Run(ctx, env.work, guess)
		return pr, err == nil
	}
	commit := func(_ float64, pr *pipeline.Result, ok bool) *sched.Schedule {
		if !ok {
			env.res.Stats.FailedGuesses++
			return nil
		}
		env.res.Stats.absorb(pr)
		return pr.Final
	}
	return eval, commit
}

// finish folds a finished search into the result: engine metrics, the
// fallback guard and the retained memo.
func (env *solveEnv) finish(ctx context.Context, search round.SearchResult) (*Result, error) {
	res := env.res
	res.Stats.Guesses += search.Guesses
	m := env.engine.Metrics()
	res.Stats.PipelineRuns = m.Runs
	res.Stats.CacheHits = m.CacheHits
	res.Stats.CacheMisses = m.CacheMisses
	res.Stats.StageTime = m.StageTime
	res.Memo = env.engine.Cache()

	if err := ctx.Err(); err != nil {
		return nil, err
	}

	if search.Schedule != nil {
		res.Stats.FinalGuess = search.FinalGuess
	}
	if search.Schedule == nil || env.ub < search.Makespan {
		res.Schedule = env.ubSched
		res.Makespan = env.ub
		res.Stats.Fallback = search.Schedule == nil
		if res.Stats.Fallback {
			// No guess was accepted: the answer is the heuristic upper
			// bound and only its bound is guaranteed.
			env.setQuality(plan.RungLPT)
		} else {
			// A guess was accepted and the fallback merely beat its
			// schedule; the EPTAS guarantee still holds.
			env.setQuality(plan.RungEPTAS)
		}
		return res, nil
	}
	res.Schedule = search.Schedule
	res.Makespan = search.Makespan
	env.setQuality(plan.RungEPTAS)
	return res, nil
}

// RunPipeline executes the full per-guess pipeline of the EPTAS for one
// makespan guess and returns all intermediate artifacts. An error means
// the guess was rejected (MILP infeasible, pattern explosion, placement
// failure) — for a guess at least the optimal makespan this indicates the
// rare solver-limit case, not infeasibility of the instance. See
// pipeline.Engine.Run for the priority-cap degradation ladder.
func RunPipeline(in *sched.Instance, guess float64, opt Options) (*PipelineResult, error) {
	return RunPipelineContext(context.Background(), in, guess, opt)
}

// RunPipelineContext is RunPipeline under a context; a canceled or
// expired context aborts between stages and inside the enumeration and
// branch-and-bound loops.
func RunPipelineContext(ctx context.Context, in *sched.Instance, guess float64, opt Options) (*PipelineResult, error) {
	fam := opt.Family
	if fam == nil {
		fam = family.Bags
	}
	return pipeline.New(pipelineConfig(opt)).Run(ctx, fam.Prepare(in), guess)
}

// pipelineConfig extracts the per-guess pipeline knobs from opt.
func pipelineConfig(opt Options) pipeline.Config {
	return pipeline.Config{
		Eps:            opt.Eps,
		Family:         opt.Family,
		Mode:           opt.Mode,
		PatternLimit:   opt.PatternLimit,
		MILP:           opt.MILP,
		Oracle:         opt.Oracle,
		OracleWorkers:  opt.OracleWorkers,
		AllPriority:    opt.AllPriority,
		BPrimeOverride: opt.BPrimeOverride,
		Cache:          opt.Cache,
		DisableMemo:    opt.DisableMemo,
		Float64Ref:     opt.Float64Ref,
	}
}

// speculative reports whether opt asks for speculative parallel guess
// evaluation; the 0 default enables it whenever a second CPU exists.
func speculative(opt Options) bool {
	if opt.Speculate == 0 {
		return runtime.GOMAXPROCS(0) > 1
	}
	return opt.Speculate > 1
}

// absorb accumulates the per-guess statistics of one accepted pipeline:
// node counts add up, the remaining fields describe the last accepted
// guess.
func (s *Stats) absorb(pr *PipelineResult) {
	s.MILPNodes += pr.MILPNodes
	s.DPStates += pr.OracleStats.States
	s.OracleBackend = pr.OracleStats.Backend
	if pr.OracleStats.Raced > 1 {
		s.OracleRaces++
	}
	s.OracleLoserNodes += pr.OracleStats.LoserNodes
	s.OracleLoserStates += pr.OracleStats.LoserStates
	s.OracleLoserTime += pr.OracleStats.LoserTime
	if pr.OracleStats.Workers > s.OracleWorkers {
		s.OracleWorkers = pr.OracleStats.Workers
	}
	s.OracleSteals += pr.OracleStats.Steals
	s.OracleSpecUsed += pr.OracleStats.SpecUsed
	if pr.Space != nil {
		s.Patterns = len(pr.Space.Patterns)
	} else if pr.RelSpace != nil {
		s.Patterns = pr.RelSpace.TotalPatterns()
	}
	s.IntegerVars = pr.IntegerVars
	if pr.Info != nil {
		s.K, s.Q, s.BPrime = pr.Info.K, pr.Info.Q, pr.Info.BPrime
		prio := pr.Info.Priority
		if pr.Transformed != nil {
			prio = pr.Transformed.Priority
		}
		s.PriorityBags = countTrue(prio)
	} else if pr.RelInfo != nil {
		s.K = len(pr.RelInfo.Sizes)
		s.Q, s.BPrime, s.PriorityBags = 0, 0, 0
	}
	s.Place = pr.PlaceStats
	s.Lift = pr.LiftStats
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}
