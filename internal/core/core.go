// Package core implements the paper's main result: the efficient
// polynomial-time approximation scheme (EPTAS) for machine scheduling
// with bag-constraints on identical machines (Theorem 1).
//
// Solve runs a dual-approximation binary search over makespan guesses; for
// each guess the pipeline scales and rounds the instance (Section 2),
// classifies jobs and bags (Lemma 1, Definition 2), applies the instance
// transformation (Section 2.2), enumerates patterns (Definition 3), solves
// the configuration MILP (Section 3), places all jobs (Sections 3.1 and 4)
// and lifts the solution back to the original instance (Lemmas 3 and 4).
package core

import (
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/cfgmilp"
	"repro/internal/classify"
	"repro/internal/greedy"
	"repro/internal/milp"
	"repro/internal/pattern"
	"repro/internal/placer"
	"repro/internal/round"
	"repro/internal/sched"
	"repro/internal/transform"
)

// Options configures the scheme.
type Options struct {
	// Eps is the accuracy parameter in (0, 1). The schedule is within
	// 1+O(Eps) of optimal; smaller values are slower.
	Eps float64
	// Mode selects the MILP flavour; the default is ModeDecomposed.
	Mode cfgmilp.Mode
	// PatternLimit bounds pattern enumeration (default
	// pattern.DefaultLimit); a guess whose pattern space exceeds the
	// limit is rejected.
	PatternLimit int
	// MILP tunes the branch-and-bound solver; StopAtFirst is forced on
	// (the configuration program is a feasibility problem).
	MILP milp.Options
	// MaxGuesses bounds the binary-search decisions (default 40).
	MaxGuesses int
	// AllPriority disables priority-bag selection and the instance
	// transformation, yielding the Das–Wiese-style configuration program
	// whose cost grows with the number of bags (baseline for EX-T2).
	AllPriority bool
	// BPrimeOverride caps the Definition 2 priority constant b'; see
	// classify.Options.BPrimeOverride.
	BPrimeOverride int
	// Speculate controls speculative parallel guess evaluation in the
	// binary search. 1 evaluates guesses strictly sequentially; any
	// larger value (all treated alike) evaluates the current midpoint
	// and its two possible successor midpoints concurrently (up to
	// three live pipelines per round). 0 picks automatically:
	// speculative when more than one CPU is available. Speculation is
	// result-transparent — the consumed guess sequence, Stats and the
	// accepted schedule are bit-for-bit identical to the sequential
	// search — provided per-guess outcomes are load-independent, i.e.
	// the MILP's deterministic node budget rather than its wall-clock
	// backstop (Options.MILP.TimeLimit) is what binds; a solve close
	// enough to the time limit can flip a guess under CPU contention,
	// sequentially or not.
	Speculate int
}

// Stats aggregates work over the whole binary search.
type Stats struct {
	// Guesses is the number of makespan guesses tried.
	Guesses int
	// FailedGuesses counts guesses rejected (MILP infeasible, pattern
	// explosion or placement failure).
	FailedGuesses int
	// Patterns is the pattern count of the last accepted guess.
	Patterns int
	// IntegerVars is the MILP integer dimension of the last accepted
	// guess.
	IntegerVars int
	// MILPNodes is the total branch-and-bound nodes over all guesses.
	MILPNodes int
	// K, Q, BPrime are the classification parameters of the last
	// accepted guess.
	K, Q, BPrime int
	// PriorityBags is the number of priority bags of the last accepted
	// guess.
	PriorityBags int
	// Place reports placement repairs of the last accepted guess.
	Place placer.Stats
	// Lift reports lift work of the last accepted guess.
	Lift transform.LiftStats
	// Fallback is true when no guess was accepted and the returned
	// schedule is the bag-LPT upper bound.
	Fallback bool
}

// Result is the outcome of Solve.
type Result struct {
	// Schedule is a feasible schedule of the input instance.
	Schedule *sched.Schedule
	// Makespan is the schedule's makespan.
	Makespan float64
	// LowerBound is the combinatorial lower bound on OPT.
	LowerBound float64
	// Stats describes the search.
	Stats Stats
}

// Solve runs the EPTAS. The input instance is not modified.
func Solve(in *sched.Instance, opt Options) (*Result, error) {
	if err := in.Validate(); err != nil {
		return nil, err
	}
	if err := in.Feasible(); err != nil {
		return nil, err
	}
	if opt.Eps <= 0 || opt.Eps >= 1 {
		return nil, fmt.Errorf("eptas: Eps must be in (0,1), got %g", opt.Eps)
	}
	res := &Result{}
	if len(in.Jobs) == 0 {
		res.Schedule = sched.NewSchedule(in)
		return res, nil
	}

	lb := sched.LowerBound(in)
	res.LowerBound = lb
	ubSched, err := greedy.BagLPT(in)
	if err != nil {
		return nil, err
	}
	ub := ubSched.Makespan()

	// The bag-LPT schedule may already be provably optimal.
	if ub <= lb {
		res.Schedule = ubSched
		res.Makespan = ub
		return res, nil
	}

	var search round.SearchResult
	if speculative(opt) {
		// Evaluate pipelines for several candidate guesses concurrently.
		// eval is pure; all Stats mutation happens in commit, which the
		// search invokes in deterministic sequential order for consumed
		// guesses only (discarded speculative pipelines never report).
		eval := func(guess float64, cancel <-chan struct{}) (*PipelineResult, bool) {
			pr, err := runPipeline(in, guess, opt, cancel)
			return pr, err == nil
		}
		commit := func(_ float64, pr *PipelineResult, ok bool) *sched.Schedule {
			if !ok {
				res.Stats.FailedGuesses++
				return nil
			}
			res.Stats.absorb(pr)
			return pr.Final
		}
		search = round.SearchSpec(lb, ub, opt.Eps*lb/4, opt.MaxGuesses, eval, commit)
	} else {
		decision := func(guess float64) (*sched.Schedule, bool) {
			s := decideOnce(in, guess, opt, &res.Stats)
			if s == nil {
				res.Stats.FailedGuesses++
				return nil, false
			}
			return s, true
		}
		search = round.Search(lb, ub, opt.Eps*lb/4, opt.MaxGuesses, decision)
	}
	res.Stats.Guesses = search.Guesses

	if search.Schedule == nil || ub < search.Makespan {
		res.Schedule = ubSched
		res.Makespan = ub
		res.Stats.Fallback = search.Schedule == nil
		return res, nil
	}
	res.Schedule = search.Schedule
	res.Makespan = search.Makespan
	return res, nil
}

// PipelineResult exposes every intermediate artifact of one makespan
// guess; the experiment suite and tests use it to measure per-lemma
// quantities (pattern counts, placement heights, repair work).
type PipelineResult struct {
	// Guess is the makespan guess the pipeline ran with.
	Guess float64
	// Scaled is the instance scaled by 1/Guess and rounded.
	Scaled *sched.Instance
	// Info is the classification of Scaled.
	Info *classify.Info
	// Transformed is the Section 2.2 transformation, nil in AllPriority
	// mode.
	Transformed *transform.Transformed
	// Space is the enumerated pattern space.
	Space *pattern.Space
	// IntegerVars is the MILP's integral dimension.
	IntegerVars int
	// MILPNodes is the branch-and-bound node count.
	MILPNodes int
	// Placed is the schedule of the transformed (scaled) instance.
	Placed *sched.Schedule
	// PlaceStats reports placement repairs.
	PlaceStats placer.Stats
	// LiftStats reports lift work (zero value in AllPriority mode).
	LiftStats transform.LiftStats
	// Final is the feasible schedule of the original instance.
	Final *sched.Schedule
}

// RunPipeline executes the full per-guess pipeline of the EPTAS for one
// makespan guess and returns all intermediate artifacts. An error means
// the guess was rejected (MILP infeasible, pattern explosion, placement
// failure) — for a guess at least the optimal makespan this indicates the
// rare solver-limit case, not infeasibility of the instance.
//
// When the pattern space under the theoretical priority constant b'
// exceeds the enumeration limit, the pipeline retries with progressively
// smaller priority caps (the paper's own degradation mechanism: fewer
// priority bags means more anonymous X slots, a smaller pattern space,
// and more work for the Lemma 7/11 repairs) before giving up.
func RunPipeline(in *sched.Instance, guess float64, opt Options) (*PipelineResult, error) {
	return runPipeline(in, guess, opt, nil)
}

// errCanceled marks a speculative pipeline abandoned by the search.
var errCanceled = errors.New("pipeline canceled")

// runPipeline is RunPipeline with an optional cancellation channel:
// closing cancel aborts the pipeline (between ladder attempts, between
// pipeline stages and, via milp.Options.Cancel, inside the
// branch-and-bound loop) so abandoned speculative evaluations stop
// burning CPU.
func runPipeline(in *sched.Instance, guess float64, opt Options, cancel <-chan struct{}) (*PipelineResult, error) {
	caps := []int{opt.BPrimeOverride}
	if opt.BPrimeOverride == 0 && !opt.AllPriority {
		caps = []int{0, 4, 2, 1}
	}
	var lastErr error
	for i, bp := range caps {
		if canceled(cancel) {
			return nil, errCanceled
		}
		// Non-final ladder attempts get a short node budget: if the
		// theoretical priority constant makes the MILP expensive, a
		// smaller cap is almost always the faster route. The budget is a
		// node count, not wall-clock, so which rung succeeds does not
		// depend on machine load — per-guess outcomes (and hence the
		// whole search) stay deterministic under concurrency.
		nodeBudget := 0
		if i < len(caps)-1 && len(caps) > 1 {
			nodeBudget = ladderNodeBudget
		}
		pr, err := runPipelineWithCap(in, guess, opt, bp, nodeBudget, cancel)
		if err == nil {
			return pr, nil
		}
		lastErr = err
		if !retryWithSmallerCap(err) {
			return nil, err
		}
	}
	return nil, lastErr
}

// retryWithSmallerCap reports whether a pipeline failure may be cured by
// a smaller priority cap: pattern-space explosions and MILP resource
// limits both shrink with fewer priority bags. Genuine infeasibility is
// not retried — reducing the cap relaxes the program further, and the
// binary search treats the guess as too low either way.
func retryWithSmallerCap(err error) bool {
	if _, tooMany := err.(pattern.ErrTooManyPatterns); tooMany {
		return true
	}
	return errors.Is(err, errMILPLimit)
}

// errMILPLimit marks a guess rejected because the MILP solver exhausted
// its node or time budget rather than proving infeasibility.
var errMILPLimit = errors.New("MILP resource limit")

// canceled reports whether the cancellation channel is closed; a nil
// channel never cancels.
func canceled(cancel <-chan struct{}) bool {
	select {
	case <-cancel:
		return true
	default:
		return false
	}
}

// ladderNodeBudget bounds branch-and-bound nodes on non-final ladder
// attempts. Feasibility models are usually solved at the root or after a
// few dives, so this is generous for a rung that is going to succeed,
// while keeping a rung that would blow up cheap to abandon. Unlike a
// wall-clock budget it is load-independent, at the cost of a larger
// worst case: a rung whose individual nodes are slow now runs until the
// node budget or the MILP TimeLimit backstop, whichever comes first.
const ladderNodeBudget = 150

func runPipelineWithCap(in *sched.Instance, guess float64, opt Options, bprime int, nodeBudget int, cancel <-chan struct{}) (*PipelineResult, error) {
	pr := &PipelineResult{Guess: guess}
	pr.Scaled, _ = round.ScaleRound(in, guess, opt.Eps)
	info, err := classify.Classify(pr.Scaled, opt.Eps, classify.Options{
		AllPriority:    opt.AllPriority,
		BPrimeOverride: bprime,
	})
	if err != nil {
		return nil, err
	}
	pr.Info = info

	var (
		tInst *sched.Instance
		prio  []bool
	)
	if opt.AllPriority {
		// Das–Wiese mode: every bag is priority, nothing to transform.
		tInst = pr.Scaled
		prio = info.Priority
	} else {
		pr.Transformed = transform.Apply(pr.Scaled, info)
		tInst = pr.Transformed.Inst
		prio = pr.Transformed.Priority
	}

	if canceled(cancel) {
		return nil, errCanceled
	}
	patOpt := pattern.Options{Limit: opt.PatternLimit}
	if cancel != nil {
		patOpt.Cancel = func() bool { return canceled(cancel) }
	}
	sp, err := pattern.Enumerate(tInst, info, prio, patOpt)
	if err != nil {
		return nil, err
	}
	pr.Space = sp
	if canceled(cancel) {
		return nil, errCanceled
	}
	built, err := cfgmilp.Build(tInst, info, prio, sp, opt.Mode)
	if err != nil {
		return nil, err
	}
	pr.IntegerVars = built.IntegerVars
	milpOpt := opt.MILP
	milpOpt.StopAtFirst = true
	if milpOpt.MaxNodes <= 0 {
		// Feasibility models are usually solved at the root (by the
		// rounding heuristic) or after a few dives; a tight default
		// keeps rejected guesses cheap.
		milpOpt.MaxNodes = 500
	}
	if milpOpt.TimeLimit <= 0 {
		// A guess that cannot be decided quickly is treated as rejected;
		// the binary search then moves on. This bounds the worst case on
		// pathologically large pattern spaces. The node budgets above and
		// below are what normally bind — this wall-clock backstop is the
		// only load-dependent limit in the pipeline.
		milpOpt.TimeLimit = 2 * time.Second
	}
	if nodeBudget > 0 && nodeBudget < milpOpt.MaxNodes {
		milpOpt.MaxNodes = nodeBudget
	}
	if cancel != nil {
		// Chain with any caller-supplied cancel predicate rather than
		// replacing it.
		user := milpOpt.Cancel
		milpOpt.Cancel = func() bool {
			return canceled(cancel) || (user != nil && user())
		}
	}
	sol, err := milp.Solve(built.Model, milpOpt)
	if err != nil {
		return nil, err
	}
	pr.MILPNodes = sol.Nodes
	if sol.Status == milp.StatusLimit {
		return nil, fmt.Errorf("eptas: MILP at guess %g: %w", guess, errMILPLimit)
	}
	if sol.Status != milp.StatusOptimal && sol.Status != milp.StatusFeasible {
		return nil, fmt.Errorf("eptas: MILP %s at guess %g", sol.Status, guess)
	}
	if canceled(cancel) {
		return nil, errCanceled
	}
	plan := built.Decode(sol)
	placed, pstats, err := placer.Place(placer.Input{
		Inst:  tInst,
		Info:  info,
		Prio:  prio,
		Space: sp,
		Plan:  plan,
	})
	if err != nil {
		return nil, err
	}
	pr.Placed = placed
	pr.PlaceStats = pstats

	var machine []int
	if pr.Transformed != nil {
		lifted, ls, err := pr.Transformed.Lift(placed)
		if err != nil {
			return nil, err
		}
		machine = lifted.Machine
		pr.LiftStats = ls
	} else {
		machine = placed.Machine
	}

	final := &sched.Schedule{Inst: in, Machine: append([]int(nil), machine...)}
	if err := final.Validate(); err != nil {
		return nil, fmt.Errorf("eptas: lifted schedule invalid at guess %g: %w", guess, err)
	}
	pr.Final = final
	return pr, nil
}

// speculative reports whether opt asks for speculative parallel guess
// evaluation; the 0 default enables it whenever a second CPU exists.
func speculative(opt Options) bool {
	if opt.Speculate == 0 {
		return runtime.GOMAXPROCS(0) > 1
	}
	return opt.Speculate > 1
}

// absorb accumulates the per-guess statistics of one accepted pipeline,
// exactly as the sequential search does: node counts add up, the
// remaining fields describe the last accepted guess.
func (s *Stats) absorb(pr *PipelineResult) {
	s.MILPNodes += pr.MILPNodes
	s.Patterns = len(pr.Space.Patterns)
	s.IntegerVars = pr.IntegerVars
	s.K, s.Q, s.BPrime = pr.Info.K, pr.Info.Q, pr.Info.BPrime
	prio := pr.Info.Priority
	if pr.Transformed != nil {
		prio = pr.Transformed.Priority
	}
	s.PriorityBags = countTrue(prio)
	s.Place = pr.PlaceStats
	s.Lift = pr.LiftStats
}

// decideOnce runs the per-guess pipeline; a nil result means the guess
// was rejected.
func decideOnce(in *sched.Instance, guess float64, opt Options, stats *Stats) *sched.Schedule {
	pr, err := RunPipeline(in, guess, opt)
	if err != nil {
		return nil
	}
	stats.absorb(pr)
	return pr.Final
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}
