package core

import (
	"testing"

	"repro/internal/cfgmilp"
	"repro/internal/greedy"
	"repro/internal/sched"
	"repro/internal/workload"
)

func TestSolveRejectsBadInput(t *testing.T) {
	in := sched.NewInstance(2)
	in.AddJob(1, 0)
	if _, err := Solve(in, Options{Eps: 0}); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := Solve(in, Options{Eps: 1}); err == nil {
		t.Error("eps=1 accepted")
	}
	bad := sched.NewInstance(0)
	if _, err := Solve(bad, Options{Eps: 0.5}); err == nil {
		t.Error("invalid instance accepted")
	}
	infeasible := sched.NewInstance(1)
	infeasible.AddJob(1, 0)
	infeasible.AddJob(1, 0)
	if _, err := Solve(infeasible, Options{Eps: 0.5}); err == nil {
		t.Error("infeasible instance accepted")
	}
}

func TestSolveEmptyInstance(t *testing.T) {
	in := sched.NewInstance(3)
	res, err := Solve(in, Options{Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 0 {
		t.Errorf("makespan = %g", res.Makespan)
	}
}

func TestSolveSingleJob(t *testing.T) {
	in := sched.NewInstance(2)
	in.AddJob(3.7, 0)
	res, err := Solve(in, Options{Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Makespan != 3.7 {
		t.Errorf("makespan = %g, want 3.7", res.Makespan)
	}
}

func TestSolveAlwaysFeasible(t *testing.T) {
	for _, fam := range workload.Families() {
		for seed := int64(1); seed <= 3; seed++ {
			in := workload.MustGenerate(workload.Spec{
				Family: fam, Machines: 5, Jobs: 20, Bags: 8, Seed: seed,
			})
			res, err := Solve(in, Options{Eps: 0.5})
			if err != nil {
				t.Fatalf("%s/%d: %v", fam, seed, err)
			}
			if err := res.Schedule.Validate(); err != nil {
				t.Fatalf("%s/%d: %v", fam, seed, err)
			}
			if res.Makespan < res.LowerBound-1e-9 {
				t.Errorf("%s/%d: makespan %.4f below lower bound %.4f", fam, seed, res.Makespan, res.LowerBound)
			}
		}
	}
}

func TestSolveNeverWorseThanBagLPT(t *testing.T) {
	// The driver keeps the better of the pipeline result and the bag-LPT
	// upper bound, so it can never lose to bag-LPT.
	for seed := int64(1); seed <= 8; seed++ {
		in := workload.MustGenerate(workload.Spec{
			Family: workload.Uniform, Machines: 4, Jobs: 16, Bags: 6, Seed: seed,
		})
		res, err := Solve(in, Options{Eps: 0.4})
		if err != nil {
			t.Fatal(err)
		}
		ub, err := greedy.BagLPT(in)
		if err != nil {
			t.Fatal(err)
		}
		if res.Makespan > ub.Makespan()+1e-9 {
			t.Errorf("seed %d: EPTAS %.4f worse than bag-LPT %.4f", seed, res.Makespan, ub.Makespan())
		}
	}
}

func TestSolveMonotoneInEps(t *testing.T) {
	// Smaller eps must not give a (significantly) worse schedule on the
	// same instance — binary search keeps the best seen, and smaller eps
	// means finer guesses.
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Bimodal, Machines: 4, Jobs: 16, Bags: 6, Seed: 11,
	})
	coarse, err := Solve(in, Options{Eps: 0.75})
	if err != nil {
		t.Fatal(err)
	}
	fine, err := Solve(in, Options{Eps: 0.33})
	if err != nil {
		t.Fatal(err)
	}
	if fine.Makespan > coarse.Makespan*1.2+1e-9 {
		t.Errorf("eps=0.33 makespan %.4f much worse than eps=0.75 %.4f", fine.Makespan, coarse.Makespan)
	}
}

func TestSolveDeterministic(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Geometric, Machines: 5, Jobs: 20, Bags: 10, Seed: 13,
	})
	a, err := Solve(in, Options{Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Solve(in, Options{Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if a.Makespan != b.Makespan {
		t.Fatalf("non-deterministic: %.6f vs %.6f", a.Makespan, b.Makespan)
	}
	for i := range a.Schedule.Machine {
		if a.Schedule.Machine[i] != b.Schedule.Machine[i] {
			t.Fatalf("assignments differ at job %d", i)
		}
	}
}

func TestSolveWithPriorityCap(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Uniform, Machines: 10, Jobs: 40, Bags: 20, Seed: 17,
	})
	res, err := Solve(in, Options{Eps: 0.5, BPrimeOverride: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSolvePaperMode(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Bimodal, Machines: 3, Jobs: 10, Bags: 4, Seed: 19,
	})
	res, err := Solve(in, Options{Eps: 0.5, Mode: cfgmilp.ModePaper})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSolveAllPriorityMode(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Bimodal, Machines: 4, Jobs: 12, Bags: 4, Seed: 23,
	})
	res, err := Solve(in, Options{Eps: 0.5, AllPriority: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Schedule.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestRunPipelineArtifacts(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Uniform, Machines: 8, Jobs: 32, Bags: 16, Seed: 29,
	})
	ub, err := greedy.BagLPT(in)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := RunPipeline(in, ub.Makespan(), Options{Eps: 0.5, BPrimeOverride: 2})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Scaled == nil || pr.Info == nil || pr.Space == nil || pr.Placed == nil || pr.Final == nil {
		t.Fatal("missing artifacts")
	}
	if pr.Transformed == nil {
		t.Fatal("expected a transformation with BPrimeOverride=2")
	}
	if err := pr.Final.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := pr.Placed.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(pr.Space.Patterns) == 0 {
		t.Error("empty pattern space")
	}
}

func TestRunPipelineRejectsLowGuess(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Unit, Machines: 2, Jobs: 8, Bags: 4, Seed: 31,
	})
	// OPT = 4 (8 unit jobs on 2 machines); guess 1 must be rejected.
	if _, err := RunPipeline(in, 1, Options{Eps: 0.5}); err == nil {
		t.Error("expected rejection of an impossible guess")
	}
}

func TestStatsPopulated(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Bimodal, Machines: 5, Jobs: 20, Bags: 8, Seed: 37,
	})
	res, err := Solve(in, Options{Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Guesses == 0 {
		t.Error("no guesses recorded")
	}
	if !res.Stats.Fallback && res.Stats.Patterns == 0 {
		t.Error("accepted pipeline run but no pattern count recorded")
	}
}
