package core

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/greedy"
	"repro/internal/workload"
)

// TestMemoizedSearchMatchesUnmemoized is the differential guarantee of
// the cross-guess memo: over the workload-generator corpus, the memoized
// search must return bit-identical schedules, makespans and decision
// statistics (guess counts, failed guesses, last-accepted-guess
// parameters — i.e. the consumed guess sequence) to the unmemoized
// search. It also proves the cache is not vacuous: across the corpus at
// least one solve must register a hit.
func TestMemoizedSearchMatchesUnmemoized(t *testing.T) {
	totalHits := 0
	for _, fam := range workload.Families() {
		for seed := int64(1); seed <= 3; seed++ {
			for _, eps := range []float64{0.5, 0.33} {
				in := workload.MustGenerate(workload.Spec{
					Family: fam, Machines: 5, Jobs: 20, Bags: 8, Seed: seed,
				})
				memo, err := Solve(in, Options{Eps: eps, Speculate: 1})
				if err != nil {
					t.Fatalf("%s/%d eps=%g memoized: %v", fam, seed, eps, err)
				}
				raw, err := Solve(in, Options{Eps: eps, Speculate: 1, DisableMemo: true})
				if err != nil {
					t.Fatalf("%s/%d eps=%g unmemoized: %v", fam, seed, eps, err)
				}
				if memo.Makespan != raw.Makespan {
					t.Errorf("%s/%d eps=%g: makespan %v (memo) != %v (raw)",
						fam, seed, eps, memo.Makespan, raw.Makespan)
				}
				if !reflect.DeepEqual(memo.Stats.Decision(), raw.Stats.Decision()) {
					t.Errorf("%s/%d eps=%g: decision stats diverge:\nmemo %+v\nraw  %+v",
						fam, seed, eps, memo.Stats.Decision(), raw.Stats.Decision())
				}
				for j := range raw.Schedule.Machine {
					if memo.Schedule.Machine[j] != raw.Schedule.Machine[j] {
						t.Errorf("%s/%d eps=%g: job %d on machine %d (memo) vs %d (raw)",
							fam, seed, eps, j, memo.Schedule.Machine[j], raw.Schedule.Machine[j])
						break
					}
				}
				if raw.Stats.CacheHits != 0 || raw.Stats.CacheMisses != 0 {
					t.Errorf("%s/%d eps=%g: unmemoized run reports cache traffic %d/%d",
						fam, seed, eps, raw.Stats.CacheHits, raw.Stats.CacheMisses)
				}
				totalHits += memo.Stats.CacheHits
			}
		}
	}
	if totalHits == 0 {
		t.Error("no solve in the corpus registered a cache hit; the memo never engages")
	}
}

// TestMemoizedSpeculativeMatchesUnmemoizedSequential triangulates the two
// transparency guarantees: memoization plus speculation together must
// still reproduce the plain sequential, unmemoized search.
func TestMemoizedSpeculativeMatchesUnmemoizedSequential(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Adversarial, Machines: 5, Jobs: 20, Bags: 8, Seed: 1,
	})
	want, err := Solve(in, Options{Eps: 0.33, Speculate: 1, DisableMemo: true})
	if err != nil {
		t.Fatal(err)
	}
	got, err := Solve(in, Options{Eps: 0.33, Speculate: 3})
	if err != nil {
		t.Fatal(err)
	}
	if got.Makespan != want.Makespan {
		t.Errorf("makespan %v != %v", got.Makespan, want.Makespan)
	}
	if !reflect.DeepEqual(got.Stats.Decision(), want.Stats.Decision()) {
		t.Errorf("decision stats diverge:\ngot  %+v\nwant %+v", got.Stats.Decision(), want.Stats.Decision())
	}
	for j := range want.Schedule.Machine {
		if got.Schedule.Machine[j] != want.Schedule.Machine[j] {
			t.Fatalf("job %d assignment differs", j)
		}
	}
}

// TestCacheHitOnStandardInstance pins a standard instance where the memo
// demonstrably engages: the binary search's later guesses land in the
// rounding equivalence class of earlier ones. (At this eps the guess
// grid is fine enough that adjacent consumed grid points share a
// scaled-rounded signature; coarser settings converge in so few guesses
// that every one lands in a distinct class.)
func TestCacheHitOnStandardInstance(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Adversarial, Machines: 5, Jobs: 20, Bags: 8, Seed: 1,
	})
	res, err := Solve(in, Options{Eps: 0.25, Speculate: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.CacheHits < 1 {
		t.Errorf("CacheHits = %d, want >= 1 (guesses %d, misses %d)",
			res.Stats.CacheHits, res.Stats.Guesses, res.Stats.CacheMisses)
	}
	if res.Stats.PipelineRuns >= res.Stats.Guesses {
		t.Errorf("PipelineRuns = %d not below Guesses = %d despite cache hits",
			res.Stats.PipelineRuns, res.Stats.Guesses)
	}
}

// TestSolveContextCanceled checks that an already-canceled context aborts
// before any real work and surfaces ctx.Err().
func TestSolveContextCanceled(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Bimodal, Machines: 5, Jobs: 20, Bags: 8, Seed: 37,
	})
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := SolveContext(ctx, in, Options{Eps: 0.5}); !errors.Is(err, context.Canceled) {
		t.Fatalf("SolveContext with canceled ctx returned %v, want context.Canceled", err)
	}
}

// TestSolveContextTimeoutMidSolve checks that an expiring deadline aborts
// a solve in flight — the cancellation has to travel from the public
// entry point through the search and the pipeline into the MILP loop.
func TestSolveContextTimeoutMidSolve(t *testing.T) {
	// A chunky instance (a full sequential solve takes >100ms even on
	// fast hardware) with a deadline it cannot meet.
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Bimodal, Machines: 16, Jobs: 96, Bags: 24, Seed: 3,
	})
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err := SolveContext(ctx, in, Options{Eps: 0.25, Speculate: 1})
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("SolveContext returned %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Errorf("canceled solve still took %s", elapsed)
	}
}

// TestPriorityCapLadderDegrades pins the degradation path: an instance
// whose theoretical b' explodes the pattern space must walk down the
// priority-cap ladder and succeed on a smaller rung, with Stats.BPrime
// reporting the rung that actually succeeded.
func TestPriorityCapLadderDegrades(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Uniform, Machines: 10, Jobs: 40, Bags: 20, Seed: 17,
	})
	res, err := Solve(in, Options{Eps: 0.5, Speculate: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.Fallback {
		t.Fatal("solve fell back to bag-LPT; the ladder never succeeded")
	}
	// The theoretical b' ((d*q+1)*q, capped at the 20 bags present)
	// explodes this instance's pattern space, so the accepted guess must
	// have come from one of the degraded rungs (cap 4, 2 or 1) — never
	// the theoretical rung.
	switch res.Stats.BPrime {
	case 4, 2, 1:
	default:
		t.Errorf("Stats.BPrime = %d, want a ladder rung (4, 2 or 1)", res.Stats.BPrime)
	}

	// At the bag-LPT upper-bound guess the first two rungs demonstrably
	// fail: the pipeline needs exactly three attempts and lands on b'=2.
	ub, err := greedy.BagLPT(in)
	if err != nil {
		t.Fatal(err)
	}
	pr, err := RunPipeline(in, ub.Makespan(), Options{Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if pr.Attempts != 3 {
		t.Errorf("pipeline took %d ladder attempts, want 3 (caps 0 and 4 explode, 2 fits)", pr.Attempts)
	}
	if pr.Info.BPrime != 2 {
		t.Errorf("pipeline Info.BPrime = %d, want 2", pr.Info.BPrime)
	}
}
