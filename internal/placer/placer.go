// Package placer turns a decoded MILP plan into a concrete schedule of the
// transformed instance, following Sections 3.1 and 4 of the paper:
//
//  1. priority large/medium jobs go into their reserved pattern slots;
//  2. non-priority large jobs fill the anonymous X slots greedily
//     (most-remaining bag first) and residual conflicts are repaired by
//     the Lemma 7 same-size swap argument, which leaves every machine's
//     load unchanged;
//  3. small jobs of priority bags are distributed over pattern groups —
//     either from the MILP's y variables (paper mode, with the Corollary 1
//     fractional merge and Lemma 10 slotting) or by a capacity-respecting
//     greedy (decomposed mode) — and placed inside each group with
//     bag-LPT (Lemma 8);
//  4. small jobs of non-priority bags are assigned to machine groups of
//     eps-rounded equal height with group-bag-LPT and placed with bag-LPT
//     (Lemma 9);
//  5. conflicts introduced by the step-2 swaps are repaired by chasing the
//     Lemma 11 origin function; a generic, provably terminating repair
//     handles anything left (it only triggers on solver artifacts and is
//     counted in Stats).
//
// Load accounting runs on the exact fixed-point representation
// (internal/numeric): per-machine loads are int64 adds and compares,
// resolved per job through the precomputed classify.View, and lifted back
// to float64 — losslessly — only at the greedy (bag-LPT) boundary. The
// pre-refactor float64 accounting is retained behind Input.Float64Ref for
// the differential tests.
package placer

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/cfgmilp"
	"repro/internal/classify"
	"repro/internal/greedy"
	"repro/internal/numeric"
	"repro/internal/pattern"
	"repro/internal/sched"
	"repro/internal/scratch"
)

// Stats reports the placement work performed.
type Stats struct {
	// MachinesUsed is the number of machines with a non-empty pattern.
	MachinesUsed int
	// EmptySlots counts reserved slots that received no job.
	EmptySlots int
	// XConflicts counts conflicts created while filling X slots.
	XConflicts int
	// SwapRepairs counts successful Lemma 7 swaps.
	SwapRepairs int
	// OriginMoves counts Lemma 11 origin-chasing moves.
	OriginMoves int
	// GenericMoves counts generic fallback repair moves.
	GenericMoves int
}

// Input bundles everything the placer needs.
type Input struct {
	// Inst is the transformed instance I'.
	Inst *sched.Instance
	// View is the exact numeric view of Inst (per-job size indices and
	// fixed-point sizes) under the classification of the original scaled
	// instance.
	View *classify.View
	// Prio flags priority bags of Inst.
	Prio []bool
	// Space is the enumerated pattern space.
	Space *pattern.Space
	// Plan is the decoded MILP solution.
	Plan *cfgmilp.Plan
	// Float64Ref switches machine-load accounting to the retained
	// float64 reference arithmetic (the pre-fixed-point seed path).
	// Results are bit-identical either way; the flag exists for
	// differential testing.
	Float64Ref bool
	// Arena, when non-nil, supplies the placement's scratch arrays (load
	// vectors, the machine→pattern map, greedy load snapshots). The
	// returned Schedule never aliases arena memory.
	Arena *scratch.Arena
}

// loadVec is the per-machine load accumulator. The default pipeline
// accounts in exact int64 fixed-point and lifts to float64 only at the
// greedy (bag-LPT) boundary — the lift is lossless, so the lifted loads
// are bit-identical to the seed's float64 accumulation, which is kept
// alive behind Input.Float64Ref for the differential tests.
type loadVec struct {
	fx  []numeric.Fx
	ref []float64 // non-nil only in Float64Ref mode
}

func newLoadVec(n int, float64Ref bool, arena *scratch.Arena) loadVec {
	l := loadVec{fx: arena.Fxs(n)}
	if float64Ref {
		l.ref = arena.Float64s(n)
	}
	return l
}

func (l *loadVec) add(m int, fx numeric.Fx, size float64) {
	l.fx[m] += fx
	if l.ref != nil {
		l.ref[m] += size
	}
}

func (l *loadVec) sub(m int, fx numeric.Fx, size float64) {
	l.fx[m] -= fx
	if l.ref != nil {
		l.ref[m] -= size
	}
}

// at lifts machine m's load to float64 (exact in fixed-point mode).
func (l *loadVec) at(m int) float64 {
	if l.ref != nil {
		return l.ref[m]
	}
	return l.fx[m].Float()
}

// less orders machines by load (exact integer compare by default).
func (l *loadVec) less(a, b int) bool {
	if l.ref != nil {
		return l.ref[a] < l.ref[b]
	}
	return l.fx[a] < l.fx[b]
}

// state is the mutable placement state.
type state struct {
	in          *sched.Instance
	view        *classify.View
	prio        []bool
	space       *pattern.Space
	sched       *sched.Schedule
	loads       loadVec
	bagsOn      []map[int]int // machine -> bag -> count
	origin      map[int]int   // priority ML job -> MILP machine (Lemma 11)
	machPattern []int         // machine -> pattern index
	arena       *scratch.Arena
	stats       Stats
}

// Place builds a feasible schedule of inp.Inst realizing the plan.
func Place(inp Input) (*sched.Schedule, Stats, error) {
	st := &state{
		in:     inp.Inst,
		view:   inp.View,
		prio:   inp.Prio,
		space:  inp.Space,
		sched:  sched.NewSchedule(inp.Inst),
		loads:  newLoadVec(inp.Inst.Machines, inp.Float64Ref, inp.Arena),
		bagsOn: make([]map[int]int, inp.Inst.Machines),
		origin: make(map[int]int),
		arena:  inp.Arena,
	}
	for i := range st.bagsOn {
		st.bagsOn[i] = make(map[int]int)
	}
	if err := st.expandMachines(inp.Plan); err != nil {
		return nil, st.stats, err
	}
	if err := st.placePrioritySlots(); err != nil {
		return nil, st.stats, err
	}
	if err := st.placeXSlots(); err != nil {
		return nil, st.stats, err
	}
	st.repairLargeConflicts()
	if err := st.placePrioritySmall(inp.Plan); err != nil {
		return nil, st.stats, err
	}
	if err := st.placeNonPrioritySmall(); err != nil {
		return nil, st.stats, err
	}
	st.repairOriginChasing()
	if err := st.repairGeneric(); err != nil {
		return nil, st.stats, err
	}
	if err := st.sched.Validate(); err != nil {
		return nil, st.stats, fmt.Errorf("placer: final schedule invalid: %w", err)
	}
	return st.sched, st.stats, nil
}

// assign puts job j on machine m, maintaining all state.
func (st *state) assign(j, m int) {
	st.sched.Machine[j] = m
	st.loads.add(m, st.view.JobFx[j], st.in.Jobs[j].Size)
	st.bagsOn[m][st.in.Jobs[j].Bag]++
}

// move relocates job j to machine m.
func (st *state) move(j, m int) {
	old := st.sched.Machine[j]
	if old >= 0 {
		st.loads.sub(old, st.view.JobFx[j], st.in.Jobs[j].Size)
		st.bagsOn[old][st.in.Jobs[j].Bag]--
		if st.bagsOn[old][st.in.Jobs[j].Bag] == 0 {
			delete(st.bagsOn[old], st.in.Jobs[j].Bag)
		}
	}
	st.sched.Machine[j] = m
	st.loads.add(m, st.view.JobFx[j], st.in.Jobs[j].Size)
	st.bagsOn[m][st.in.Jobs[j].Bag]++
}

// expandMachines maps machines to patterns according to the counts.
func (st *state) expandMachines(plan *cfgmilp.Plan) error {
	total := 0
	for _, c := range plan.XCount {
		if c < 0 {
			return fmt.Errorf("placer: negative pattern count %d", c)
		}
		total += c
	}
	if total > st.in.Machines {
		return fmt.Errorf("placer: plan uses %d machines, instance has %d", total, st.in.Machines)
	}
	st.machPattern = st.arena.Ints(st.in.Machines)
	mach := 0
	for p, c := range plan.XCount {
		for i := 0; i < c; i++ {
			st.machPattern[mach] = p
			mach++
		}
		if c > 0 && st.space.Patterns[p].NumJobs > 0 {
			st.stats.MachinesUsed += c
		}
	}
	// Machines beyond the plan run the empty pattern (index 0).
	for ; mach < st.in.Machines; mach++ {
		st.machPattern[mach] = 0
	}
	return nil
}

// mlJobsBy returns priority (bag,size)->jobs and per-size non-priority
// job lists, in deterministic order.
func (st *state) mlJobsBy() (map[[2]int][]int, map[int][][2]int) {
	prioJobs := make(map[[2]int][]int)
	xJobs := make(map[int][][2]int) // size idx -> list of (job, bag)
	for j, job := range st.in.Jobs {
		if st.view.Class(j) == classify.Small {
			continue
		}
		si := st.view.JobIdx[j]
		if st.prio[job.Bag] {
			prioJobs[[2]int{job.Bag, si}] = append(prioJobs[[2]int{job.Bag, si}], j)
		} else {
			xJobs[si] = append(xJobs[si], [2]int{j, job.Bag})
		}
	}
	return prioJobs, xJobs
}

// placePrioritySlots fills reserved (bag, size) slots with the actual
// priority jobs, machine by machine.
func (st *state) placePrioritySlots() error {
	prioJobs, _ := st.mlJobsBy()
	next := make(map[[2]int]int)
	for mach := 0; mach < st.in.Machines; mach++ {
		p := &st.space.Patterns[st.machPattern[mach]]
		for _, slot := range p.Prio {
			key := [2]int{slot.Bag, slot.SizeIdx}
			jobs := prioJobs[key]
			if next[key] >= len(jobs) {
				st.stats.EmptySlots++
				continue
			}
			j := jobs[next[key]]
			next[key]++
			st.assign(j, mach)
			st.origin[j] = mach
		}
	}
	for key, jobs := range prioJobs {
		if next[key] < len(jobs) {
			return fmt.Errorf("placer: %d unplaced priority jobs for bag %d size idx %d",
				len(jobs)-next[key], key[0], key[1])
		}
	}
	return nil
}

// placeXSlots fills anonymous X slots with non-priority large jobs,
// choosing for each slot the conflict-free bag with the most remaining
// jobs (the Lemma 7 greedy); unavoidable conflicts are recorded and fixed
// by repairLargeConflicts.
func (st *state) placeXSlots() error {
	_, xJobs := st.mlJobsBy()
	for _, si := range st.space.XSizes {
		// remaining[bag] = queue of jobs of this size.
		remaining := make(map[int][]int)
		for _, jb := range xJobs[si] {
			remaining[jb[1]] = append(remaining[jb[1]], jb[0])
		}
		left := len(xJobs[si])
		for mach := 0; mach < st.in.Machines && left > 0; mach++ {
			p := &st.space.Patterns[st.machPattern[mach]]
			mult := st.space.XMult(p, si)
			for k := 0; k < mult && left > 0; k++ {
				bag := st.pickXBag(remaining, mach)
				if bag < 0 {
					// Every remaining bag conflicts here: take the
					// fullest bag anyway and repair later (Lemma 7).
					bag = st.pickFullestBag(remaining)
					st.stats.XConflicts++
				}
				j := remaining[bag][0]
				remaining[bag] = remaining[bag][1:]
				if len(remaining[bag]) == 0 {
					delete(remaining, bag)
				}
				st.assign(j, mach)
				left--
			}
		}
		if left > 0 {
			return fmt.Errorf("placer: %d non-priority jobs of size idx %d without X slots", left, si)
		}
	}
	return nil
}

// pickXBag returns the bag with the most remaining jobs that is absent
// from machine mach, or -1.
func (st *state) pickXBag(remaining map[int][]int, mach int) int {
	best, bestN := -1, -1
	for _, bag := range sortedKeys(remaining) {
		if st.bagsOn[mach][bag] > 0 {
			continue
		}
		if n := len(remaining[bag]); n > bestN {
			best, bestN = bag, n
		}
	}
	return best
}

func (st *state) pickFullestBag(remaining map[int][]int) int {
	best, bestN := -1, -1
	for _, bag := range sortedKeys(remaining) {
		if n := len(remaining[bag]); n > bestN {
			best, bestN = bag, n
		}
	}
	return best
}

// repairLargeConflicts resolves bag conflicts among medium/large jobs via
// the Lemma 7 swap: exchange a conflicting job with a same-size job on
// another machine so that neither machine's load changes.
func (st *state) repairLargeConflicts() {
	// Jobs grouped by size index for swap candidates.
	bySize := make(map[int][]int)
	for j := range st.in.Jobs {
		if st.view.Class(j) == classify.Small || st.sched.Machine[j] < 0 {
			continue
		}
		bySize[st.view.JobIdx[j]] = append(bySize[st.view.JobIdx[j]], j)
	}
	for pass := 0; pass < 4; pass++ {
		conflicts := st.mlConflictJobs()
		if len(conflicts) == 0 {
			return
		}
		progress := false
		for _, j := range conflicts {
			c := st.sched.Machine[j]
			bagJ := st.in.Jobs[j].Bag
			if st.bagsOn[c][bagJ] < 2 {
				continue // already fixed by an earlier swap
			}
			si := st.view.JobIdx[j]
			if st.trySwap(j, c, bagJ, bySize[si]) {
				st.stats.SwapRepairs++
				progress = true
			}
		}
		if !progress {
			return // leave the rest to the generic repair
		}
	}
}

// mlConflictJobs returns medium/large jobs involved in a same-bag
// conflict with another medium/large job, deterministically ordered,
// preferring non-priority jobs as the ones to move.
func (st *state) mlConflictJobs() []int {
	var out []int
	for j, job := range st.in.Jobs {
		if st.sched.Machine[j] < 0 || st.view.Class(j) == classify.Small {
			continue
		}
		m := st.sched.Machine[j]
		if st.bagsOn[m][job.Bag] >= 2 && !st.prio[job.Bag] {
			out = append(out, j)
		}
	}
	return out
}

// trySwap looks for a same-size job j2 on another machine d such that
// swapping j and j2 removes the conflict on c without creating one on
// either machine. Non-priority partners are preferred so that priority
// slots keep their MILP machines when possible.
func (st *state) trySwap(j, c, bagJ int, candidates []int) bool {
	var fallback = -1
	for _, j2 := range candidates {
		if j2 == j {
			continue
		}
		d := st.sched.Machine[j2]
		if d == c || d < 0 {
			continue
		}
		bag2 := st.in.Jobs[j2].Bag
		if bag2 == bagJ {
			continue // would re-create the conflict on c
		}
		if st.bagsOn[c][bag2] > 0 || st.bagsOn[d][bagJ] > 0 {
			continue
		}
		if !st.prio[bag2] {
			st.swap(j, j2)
			return true
		}
		if fallback < 0 {
			fallback = j2
		}
	}
	if fallback >= 0 {
		st.swap(j, fallback)
		return true
	}
	return false
}

// swap exchanges the machines of two equal-sized jobs.
func (st *state) swap(a, b int) {
	ma, mb := st.sched.Machine[a], st.sched.Machine[b]
	st.move(a, mb)
	st.move(b, ma)
}

// groupOf collects the machines per pattern index.
func (st *state) machinesOfPattern() map[int][]int {
	out := make(map[int][]int)
	for mach, p := range st.machPattern {
		out[p] = append(out[p], mach)
	}
	return out
}

// placePrioritySmall distributes the small jobs of priority bags over the
// pattern groups and runs bag-LPT inside each group.
func (st *state) placePrioritySmall(plan *cfgmilp.Plan) error {
	// Small jobs of priority bags grouped by (bag, size idx).
	jobsBy := make(map[[2]int][]int)
	var keys [][2]int
	for j, job := range st.in.Jobs {
		if st.view.Class(j) != classify.Small || !st.prio[job.Bag] {
			continue
		}
		si := st.view.JobIdx[j]
		key := [2]int{job.Bag, si}
		if _, ok := jobsBy[key]; !ok {
			keys = append(keys, key)
		}
		jobsBy[key] = append(jobsBy[key], j)
	}
	if len(keys) == 0 {
		return nil
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})

	// jobToPattern[j] = pattern group receiving job j.
	jobToPattern := make(map[int]int)
	var err error
	if plan.HasY {
		err = st.distributeSmallFromY(plan, jobsBy, keys, jobToPattern)
	} else {
		err = st.distributeSmallGreedy(plan, jobsBy, keys, jobToPattern)
	}
	if err != nil {
		return err
	}

	// Per pattern group: bag-LPT over its machines.
	groups := st.machinesOfPattern()
	for _, p := range sortedKeys2(groups) {
		machines := groups[p]
		// Bags present in this group.
		byBag := make(map[int][]greedy.Item)
		for j, pp := range jobToPattern {
			if pp != p {
				continue
			}
			byBag[st.in.Jobs[j].Bag] = append(byBag[st.in.Jobs[j].Bag], greedy.Item{Key: j, Size: st.in.Jobs[j].Size})
		}
		if len(byBag) == 0 {
			continue
		}
		var bags [][]greedy.Item
		for _, bag := range sortedKeysItems(byBag) {
			items := byBag[bag]
			sort.Slice(items, func(a, b int) bool { return items[a].Key < items[b].Key })
			if len(items) > len(machines) {
				return fmt.Errorf("placer: bag %d got %d small jobs for %d machines of pattern %d",
					bag, len(items), len(machines), p)
			}
			bags = append(bags, items)
		}
		loads := st.arena.Float64s(len(machines))
		for i, m := range machines {
			loads[i] = st.loads.at(m)
		}
		asg, err := greedy.AssignBagLPT(loads, bags)
		if err != nil {
			return err
		}
		for bi, items := range bags {
			for ii, it := range items {
				st.assign(it.Key, machines[asg[bi][ii]])
			}
		}
	}
	return nil
}

// distributeSmallGreedy is the decomposed-mode distribution: jobs in
// decreasing size order go to the pattern group with the most remaining
// reserved area among those that avoid the bag and have bag capacity.
func (st *state) distributeSmallGreedy(plan *cfgmilp.Plan, jobsBy map[[2]int][]int, keys [][2]int, out map[int]int) error {
	type groupState struct {
		pattern  int
		count    int // machines
		areaCap  float64
		areaUsed float64
		bagUsed  map[int]int
	}
	var groups []*groupState
	for p, c := range plan.XCount {
		if c <= 0 && p != 0 {
			continue
		}
		n := c
		if p == 0 {
			// The empty pattern also covers the padding machines.
			n = st.in.Machines
			for pp, cc := range plan.XCount {
				if pp != 0 {
					n -= cc
				}
			}
			if n <= 0 {
				continue
			}
		}
		h := st.space.Patterns[p].Height
		groups = append(groups, &groupState{
			pattern: p,
			count:   n,
			areaCap: float64(n) * (st.view.Info.T - h),
			bagUsed: make(map[int]int),
		})
	}
	// All jobs, largest first.
	type jobRef struct {
		j    int
		bag  int
		size float64
	}
	var jobs []jobRef
	for _, key := range keys {
		for _, j := range jobsBy[key] {
			jobs = append(jobs, jobRef{j: j, bag: key[0], size: st.in.Jobs[j].Size})
		}
	}
	sort.SliceStable(jobs, func(a, b int) bool {
		if jobs[a].size != jobs[b].size {
			return jobs[a].size > jobs[b].size
		}
		return jobs[a].j < jobs[b].j
	})
	for _, jr := range jobs {
		var best *groupState
		bestFit := false
		for _, g := range groups {
			if g.bagUsed[jr.bag] >= g.count {
				continue
			}
			if st.space.Patterns[g.pattern].ChiBag(jr.bag) {
				continue
			}
			rem := g.areaCap - g.areaUsed
			fits := rem >= jr.size-numeric.Tol
			switch {
			case best == nil,
				fits && !bestFit,
				fits == bestFit && rem > best.areaCap-best.areaUsed:
				best, bestFit = g, fits
			}
		}
		if best == nil {
			return fmt.Errorf("placer: no pattern group can take small job %d of bag %d", jr.j, jr.bag)
		}
		best.areaUsed += jr.size
		best.bagUsed[jr.bag]++
		out[jr.j] = best.pattern
	}
	return nil
}

// distributeSmallFromY is the paper-mode distribution: integral parts of
// the y variables pin whole jobs to patterns; the fractional remainders
// are resolved by assigning each leftover job to the pattern with the
// largest remaining fractional mass for its (bag, size), mirroring the
// Corollary 1 merge plus Lemma 10 slotting (every leftover job is at most
// sigma, each constructed slot takes exactly one of them).
func (st *state) distributeSmallFromY(plan *cfgmilp.Plan, jobsBy map[[2]int][]int, keys [][2]int, out map[int]int) error {
	for _, key := range keys {
		bag, si := key[0], key[1]
		jobs := jobsBy[key]
		// Collect y values for this (bag, size) per pattern.
		type mass struct {
			pattern int
			whole   int
			frac    float64
		}
		var masses []mass
		for p := range plan.Space.Patterns {
			y, ok := plan.Y[cfgmilp.YKey{Pattern: p, Bag: bag, SizeIdx: si}]
			if !ok || y <= 1e-9 {
				continue
			}
			w := int(math.Floor(y + 1e-6))
			masses = append(masses, mass{pattern: p, whole: w, frac: y - float64(w)})
		}
		next := 0
		for mi := range masses {
			for k := 0; k < masses[mi].whole && next < len(jobs); k++ {
				out[jobs[next]] = masses[mi].pattern
				next++
			}
		}
		// Leftovers take the largest remaining fractional masses.
		for next < len(jobs) {
			bestIdx, bestFrac := -1, 0.0
			for mi := range masses {
				if masses[mi].frac > bestFrac+1e-12 {
					bestIdx, bestFrac = mi, masses[mi].frac
				}
			}
			if bestIdx < 0 {
				// y undershoots (solver tolerance): fall back to any
				// pattern avoiding the bag.
				p := st.anyAvoidingPattern(plan, bag)
				if p < 0 {
					return fmt.Errorf("placer: no pattern avoids bag %d for leftover small job", bag)
				}
				out[jobs[next]] = p
				next++
				continue
			}
			out[jobs[next]] = masses[bestIdx].pattern
			masses[bestIdx].frac -= 1
			next++
		}
	}
	return nil
}

// anyAvoidingPattern returns a used pattern that avoids the bag, or -1.
func (st *state) anyAvoidingPattern(plan *cfgmilp.Plan, bag int) int {
	for p, c := range plan.XCount {
		if c > 0 && !plan.Space.Patterns[p].ChiBag(bag) {
			return p
		}
	}
	if !plan.Space.Patterns[0].ChiBag(bag) {
		return 0
	}
	return -1
}

// placeNonPrioritySmall groups machines by eps-rounded height and runs
// group-bag-LPT then bag-LPT (Section 4.1).
func (st *state) placeNonPrioritySmall() error {
	eps := st.view.Info.Eps
	// Bags of non-priority small jobs (includes fillers).
	byBag := make(map[int][]greedy.Item)
	for j, job := range st.in.Jobs {
		if st.sched.Machine[j] >= 0 || st.prio[job.Bag] {
			continue
		}
		if st.view.Class(j) != classify.Small {
			continue
		}
		byBag[job.Bag] = append(byBag[job.Bag], greedy.Item{Key: j, Size: job.Size})
	}
	if len(byBag) == 0 {
		return nil
	}
	// Machine groups by rounded height.
	groupIdx := make(map[int]int)
	var groups []*greedy.Group
	for mach := 0; mach < st.in.Machines; mach++ {
		load := st.loads.at(mach)
		key := int(math.Ceil(load/eps - numeric.Tol))
		gi, ok := groupIdx[key]
		if !ok {
			gi = len(groups)
			groupIdx[key] = gi
			groups = append(groups, &greedy.Group{})
		}
		groups[gi].Machines = append(groups[gi].Machines, mach)
		groups[gi].Area += load
	}
	// Bags ordered by decreasing total area (deterministic).
	bagOrder := sortedKeysItems(byBag)
	sort.SliceStable(bagOrder, func(a, b int) bool {
		aa := itemsArea(byBag[bagOrder[a]])
		ab := itemsArea(byBag[bagOrder[b]])
		if aa != ab {
			return aa > ab
		}
		return bagOrder[a] < bagOrder[b]
	})
	bags := make([][]greedy.Item, len(bagOrder))
	for i, bag := range bagOrder {
		items := byBag[bag]
		sort.Slice(items, func(a, b int) bool { return items[a].Key < items[b].Key })
		bags[i] = items
	}
	asg, err := greedy.AssignGroupBagLPT(groups, bags)
	if err != nil {
		return err
	}
	// Per group, run bag-LPT with the jobs assigned to it.
	perGroup := make([]map[int][]greedy.Item, len(groups))
	for gi := range perGroup {
		perGroup[gi] = make(map[int][]greedy.Item)
	}
	for bi, items := range bags {
		for ii, it := range items {
			gi := asg[bi][ii]
			bag := st.in.Jobs[it.Key].Bag
			perGroup[gi][bag] = append(perGroup[gi][bag], it)
		}
	}
	for gi, g := range groups {
		if len(perGroup[gi]) == 0 {
			continue
		}
		var gBags [][]greedy.Item
		for _, bag := range sortedKeysItems(perGroup[gi]) {
			gBags = append(gBags, perGroup[gi][bag])
		}
		loads := st.arena.Float64s(len(g.Machines))
		for i, m := range g.Machines {
			loads[i] = st.loads.at(m)
		}
		gAsg, err := greedy.AssignBagLPT(loads, gBags)
		if err != nil {
			return err
		}
		for bi, items := range gBags {
			for ii, it := range items {
				st.assign(it.Key, g.Machines[gAsg[bi][ii]])
			}
		}
	}
	return nil
}

// repairOriginChasing resolves conflicts between a priority small job and
// a priority medium/large job of the same bag by following the Lemma 11
// origin function until a free machine is found.
func (st *state) repairOriginChasing() {
	for guard := 0; guard < len(st.in.Jobs); guard++ {
		conflicts := st.sched.Conflicts()
		fixed := false
		for _, c := range conflicts {
			small, big := c.JobA, c.JobB
			if st.in.Jobs[small].Size > st.in.Jobs[big].Size {
				small, big = big, small
			}
			if st.view.Class(small) != classify.Small {
				continue
			}
			if _, ok := st.origin[big]; !ok {
				continue
			}
			if st.chase(small, big, c.Bag) {
				st.stats.OriginMoves++
				fixed = true
				break // conflicts list is stale; recompute
			}
		}
		if !fixed {
			return
		}
	}
}

// chase walks origin pointers from the conflicting large job until a
// machine free of the bag is found, then moves the small job there.
func (st *state) chase(small, big, bag int) bool {
	target := st.origin[big]
	visited := make(map[int]bool)
	for steps := 0; steps <= st.in.Machines; steps++ {
		if visited[target] {
			return false
		}
		visited[target] = true
		if target != st.sched.Machine[small] && st.bagsOn[target][bag] == 0 {
			st.move(small, target)
			return true
		}
		// Find the blocking job of this bag on target.
		blocker := -1
		for j, mach := range st.sched.Machine {
			if mach == target && st.in.Jobs[j].Bag == bag && j != small {
				blocker = j
				break
			}
		}
		if blocker < 0 {
			return false
		}
		next, ok := st.origin[blocker]
		if !ok {
			return false
		}
		target = next
	}
	return false
}

// repairGeneric removes any remaining conflicts by moving the smaller job
// of each conflicting pair to the least-loaded machine without the bag.
// It terminates because each move strictly reduces the number of
// conflicting pairs, and a free machine always exists while any bag has
// at most m jobs.
func (st *state) repairGeneric() error {
	for guard := 0; guard <= 2*len(st.in.Jobs); guard++ {
		conflicts := st.sched.Conflicts()
		if len(conflicts) == 0 {
			return nil
		}
		c := conflicts[0]
		j := c.JobA
		if st.in.Jobs[c.JobB].Size < st.in.Jobs[j].Size {
			j = c.JobB
		}
		target := -1
		for mach := 0; mach < st.in.Machines; mach++ {
			if st.bagsOn[mach][c.Bag] > 0 {
				continue
			}
			if target < 0 || st.loads.less(mach, target) {
				target = mach
			}
		}
		if target < 0 {
			return fmt.Errorf("placer: bag %d saturates all machines; instance infeasible", c.Bag)
		}
		st.move(j, target)
		st.stats.GenericMoves++
	}
	return fmt.Errorf("placer: generic repair did not converge")
}

// --- deterministic helpers ---

func sortedKeys(m map[int][]int) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func sortedKeys2(m map[int][]int) []int { return sortedKeys(m) }

func sortedKeysItems(m map[int][]greedy.Item) []int {
	keys := make([]int, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

func itemsArea(items []greedy.Item) float64 {
	a := 0.0
	for _, it := range items {
		a += it.Size
	}
	return a
}
