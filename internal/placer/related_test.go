package placer

import (
	"context"
	"testing"

	"repro/internal/cfgmilp"
	"repro/internal/classify"
	"repro/internal/milp"
	"repro/internal/numeric"
	"repro/internal/pattern"
	"repro/internal/sched"
)

// solveRelated runs the whole related decision path — classify,
// enumerate, build, decide, place — on a prepared (singleton-bag,
// scaled) speed instance and returns the placed schedule with its
// classification.
func solveRelated(t *testing.T, in *sched.Instance, eps float64) (*sched.Schedule, *classify.RelInfo, Stats) {
	t.Helper()
	info, err := classify.Related(in, eps)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := pattern.EnumerateRelated(context.Background(), info, pattern.Options{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := cfgmilp.BuildRelated(context.Background(), in, info, sp)
	if err != nil {
		t.Fatal(err)
	}
	sol, err := milp.Solve(context.Background(), b.Model, milp.Options{StopAtFirst: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != milp.StatusOptimal && sol.Status != milp.StatusFeasible {
		t.Fatalf("oracle status %v", sol.Status)
	}
	s, stats, err := PlaceRelated(RelatedInput{Inst: in, Info: info, Space: sp, Plan: b.Decode(sol)})
	if err != nil {
		t.Fatal(err)
	}
	return s, info, stats
}

func TestPlaceRelated(t *testing.T) {
	// Prepared scaled instance: speeds 2,1,1 (eps 0.5 → caps 3, 1.5),
	// large jobs 1.0 x2 + 0.6 x2, small 0.2 + 0.1; singleton bags.
	in := sched.NewRelatedInstance([]float64{2, 1, 1})
	for i, size := range []float64{1.0, 1.0, 0.6, 0.6, 0.2, 0.1} {
		in.AddJob(size, i)
	}
	s, info, _ := solveRelated(t, in, 0.5)

	if err := s.Validate(); err != nil {
		t.Fatalf("schedule invalid: %v", err)
	}
	// Every job placed, and every machine's exact load stays within its
	// class capacity plus at most one small-job overshoot (< the large
	// threshold) — the placement's documented contribution to the
	// 1+O(eps) bound.
	loads := make([]numeric.Fx, in.Machines)
	for j, m := range s.Machine {
		if m < 0 || m >= in.Machines {
			t.Fatalf("job %d unplaced (machine %d)", j, m)
		}
		loads[m] += info.JobFx[j]
	}
	slack := numeric.FromFloat(info.LargeThreshold)
	for m, load := range loads {
		cap := info.CapFx[info.MachClass[m]]
		if load > cap+slack {
			t.Errorf("machine %d load %v exceeds cap %v plus one small job", m, load, cap)
		}
	}
}

// TestPlaceRelatedSurplusSlots: more reserved slots than jobs of a size
// must leave slots empty, not fail.
func TestPlaceRelatedSurplusSlots(t *testing.T) {
	// One large job on two fast machines: any feasible plan that spends
	// two non-empty configurations has surplus slots.
	in := sched.NewRelatedInstance([]float64{1, 1})
	for i, size := range []float64{0.9, 0.1} {
		in.AddJob(size, i)
	}
	s, _, _ := solveRelated(t, in, 0.5)
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestPlaceRelatedBadPlan: a plan using more machines than a class has
// must be rejected with a diagnostic, not placed.
func TestPlaceRelatedBadPlan(t *testing.T) {
	in := sched.NewRelatedInstance([]float64{1, 1})
	in.AddJob(0.9, 0)
	info, err := classify.Related(in, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	sp, err := pattern.EnumerateRelated(context.Background(), info, pattern.Options{})
	if err != nil {
		t.Fatal(err)
	}
	over := &cfgmilp.Plan{RelCounts: [][]int{{len(sp.Classes[0]) + 3}}}
	if _, _, err := PlaceRelated(RelatedInput{Inst: in, Info: info, Space: sp, Plan: over}); err == nil {
		t.Fatal("PlaceRelated accepted a plan overusing a class")
	}
	neg := &cfgmilp.Plan{RelCounts: [][]int{{-1}}}
	if _, _, err := PlaceRelated(RelatedInput{Inst: in, Info: info, Space: sp, Plan: neg}); err == nil {
		t.Fatal("PlaceRelated accepted a negative multiplicity")
	}
}
