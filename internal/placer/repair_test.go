package placer

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/classify"
	"repro/internal/sched"
	"repro/internal/workload"
)

// TestGenericRepairProperty injects random (feasibility-preserving)
// corrupted assignments and checks that the generic repair always
// terminates with a feasible schedule whenever one exists.
func TestGenericRepairProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(6)
		in := sched.NewInstance(m)
		nBags := 1 + rng.Intn(6)
		for b := 0; b < nBags; b++ {
			cnt := 1 + rng.Intn(m) // per-bag count <= m: always repairable
			for k := 0; k < cnt; k++ {
				in.AddJob(0.05+rng.Float64(), b)
			}
		}
		info, err := classify.Classify(in, 0.5, classify.Options{})
		if err != nil {
			return false
		}
		view, err := info.ViewOf(in)
		if err != nil {
			return false
		}
		st := &state{
			in:     in,
			view:   view,
			prio:   make([]bool, in.NumBags),
			sched:  sched.NewSchedule(in),
			loads:  newLoadVec(m, false, nil),
			bagsOn: make([]map[int]int, m),
			origin: map[int]int{},
		}
		for i := range st.bagsOn {
			st.bagsOn[i] = make(map[int]int)
		}
		// Adversarial corruption: assign every job to a random machine,
		// bag-constraints be damned.
		for j := range in.Jobs {
			st.assign(j, rng.Intn(m))
		}
		if err := st.repairGeneric(); err != nil {
			return false
		}
		return st.sched.Validate() == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

// TestSwapRepairNeverBreaksFeasibleState: running the Lemma 7 repair on a
// state with no ML conflicts must be a no-op.
func TestSwapRepairNoOpOnCleanState(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.ManyLarge, Machines: 6, Bags: 6, Seed: 4,
	})
	info, err := classify.Classify(in, 0.5, classify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	view, err := info.ViewOf(in)
	if err != nil {
		t.Fatal(err)
	}
	st := &state{
		in:     in,
		view:   view,
		prio:   make([]bool, in.NumBags),
		sched:  sched.NewSchedule(in),
		loads:  newLoadVec(in.Machines, false, nil),
		bagsOn: make([]map[int]int, in.Machines),
		origin: map[int]int{},
	}
	for i := range st.bagsOn {
		st.bagsOn[i] = make(map[int]int)
	}
	// Conflict-free round-robin by construction (2 jobs per bag).
	byBag := in.JobsByBag()
	for b, jobs := range byBag {
		for k, j := range jobs {
			st.assign(j, (b+k*3)%in.Machines)
		}
	}
	if len(st.sched.Conflicts()) != 0 {
		t.Skip("layout unexpectedly conflicting")
	}
	before := append([]int(nil), st.sched.Machine...)
	st.repairLargeConflicts()
	for j := range before {
		if st.sched.Machine[j] != before[j] {
			t.Fatalf("repair moved job %d without any conflict", j)
		}
	}
	if st.stats.SwapRepairs != 0 {
		t.Errorf("SwapRepairs = %d on clean state", st.stats.SwapRepairs)
	}
}

// TestOriginChasingIsBounded: repair must terminate even with dense
// random origin maps.
func TestOriginChasingIsBounded(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		m := 3 + rng.Intn(5)
		in := sched.NewInstance(m)
		// One priority bag with several large jobs and one small.
		for k := 0; k < m-1; k++ {
			in.AddJob(1, 0)
		}
		in.AddJob(0.05, 0)
		info, err := classify.Classify(in, 0.5, classify.Options{AllPriority: true})
		if err != nil {
			t.Fatal(err)
		}
		view, err := info.ViewOf(in)
		if err != nil {
			t.Fatal(err)
		}
		st := &state{
			in:     in,
			view:   view,
			prio:   []bool{true},
			sched:  sched.NewSchedule(in),
			loads:  newLoadVec(m, false, nil),
			bagsOn: make([]map[int]int, m),
			origin: map[int]int{},
		}
		for i := range st.bagsOn {
			st.bagsOn[i] = make(map[int]int)
		}
		perm := rng.Perm(m - 1)
		for k := 0; k < m-1; k++ {
			st.assign(k, perm[k])
			st.origin[k] = rng.Intn(m) // arbitrary, possibly cyclic origins
		}
		st.assign(m-1, perm[0]) // small job conflicts with job 0
		st.repairOriginChasing()
		if err := st.repairGeneric(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		if err := st.sched.Validate(); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}
