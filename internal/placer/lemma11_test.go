package placer

import (
	"testing"

	"repro/internal/classify"
	"repro/internal/round"
	"repro/internal/sched"
)

// mkState builds a bare placement state over the given instance with all
// bags marked priority.
func mkState(t *testing.T, in *sched.Instance) *state {
	t.Helper()
	info, err := classify.Classify(in, 0.5, classify.Options{AllPriority: true})
	if err != nil {
		t.Fatal(err)
	}
	prio := make([]bool, in.NumBags)
	for i := range prio {
		prio[i] = true
	}
	bags := make([]map[int]int, in.Machines)
	for i := range bags {
		bags[i] = make(map[int]int)
	}
	view, err := info.ViewOf(in)
	if err != nil {
		t.Fatal(err)
	}
	return &state{
		in:     in,
		view:   view,
		prio:   prio,
		sched:  sched.NewSchedule(in),
		loads:  newLoadVec(in.Machines, false, nil),
		bagsOn: bags,
		origin: map[int]int{},
	}
}

func sz(t *testing.T, raw float64) float64 {
	t.Helper()
	v, _ := round.UpGeometric(raw, 0.5)
	return v
}

// TestChaseDirectOrigin reproduces the basic Lemma 11 situation: a large
// job was swapped away from its MILP machine, a small job of the same bag
// landed next to it, and the repair moves the small job to the large
// job's origin machine.
func TestChaseDirectOrigin(t *testing.T) {
	in := sched.NewInstance(2)
	large := in.AddJob(sz(t, 1.0), 0)
	small := in.AddJob(sz(t, 0.05), 0)
	st := mkState(t, in)
	// The MILP put the large job on machine 0, a Lemma 7 swap moved it
	// to machine 1; the small job was distributed to machine 1.
	st.assign(large, 1)
	st.origin[large] = 0
	st.assign(small, 1)
	if len(st.sched.Conflicts()) != 1 {
		t.Fatal("setup must conflict")
	}
	st.repairOriginChasing()
	if st.stats.OriginMoves != 1 {
		t.Errorf("OriginMoves = %d, want 1", st.stats.OriginMoves)
	}
	if got := st.sched.Machine[small]; got != 0 {
		t.Errorf("small job on machine %d, want origin machine 0", got)
	}
	if err := st.sched.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestChaseFollowsChain: the origin machine is blocked by another large
// job of the same bag, whose own origin is free — the chase must follow
// the chain.
func TestChaseFollowsChain(t *testing.T) {
	in := sched.NewInstance(3)
	largeA := in.AddJob(sz(t, 1.0), 0)
	largeB := in.AddJob(sz(t, 1.0), 0)
	small := in.AddJob(sz(t, 0.05), 0)
	st := mkState(t, in)
	// MILP: A on 0, B on 1. Swaps moved A to 2 and B to 0.
	st.assign(largeA, 2)
	st.origin[largeA] = 0
	st.assign(largeB, 0)
	st.origin[largeB] = 1
	// Small job of bag 0 lands with A on machine 2.
	st.assign(small, 2)
	st.repairOriginChasing()
	if st.stats.OriginMoves != 1 {
		t.Fatalf("OriginMoves = %d, want 1", st.stats.OriginMoves)
	}
	if got := st.sched.Machine[small]; got != 1 {
		t.Errorf("small job on machine %d, want chained origin 1", got)
	}
	if err := st.sched.Validate(); err != nil {
		t.Fatal(err)
	}
}

// TestChaseCycleFallsBack: if origins form a cycle with every machine
// blocked, the chase gives up and the generic repair resolves it.
func TestChaseCycleFallsBack(t *testing.T) {
	in := sched.NewInstance(3)
	largeA := in.AddJob(sz(t, 1.0), 0)
	largeB := in.AddJob(sz(t, 1.0), 0)
	small := in.AddJob(sz(t, 0.05), 0)
	st := mkState(t, in)
	// A and B point at each other's machines.
	st.assign(largeA, 0)
	st.origin[largeA] = 1
	st.assign(largeB, 1)
	st.origin[largeB] = 0
	st.assign(small, 0)
	st.repairOriginChasing()
	// The chase cannot succeed (0 -> 1 -> 0 cycle); machine 2 is free,
	// so generic repair must finish the job.
	if err := st.repairGeneric(); err != nil {
		t.Fatal(err)
	}
	if err := st.sched.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := st.sched.Machine[small]; got != 2 {
		t.Errorf("small job on machine %d, want 2", got)
	}
}
