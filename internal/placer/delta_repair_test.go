package placer

import (
	"strings"
	"testing"

	"repro/internal/sched"
)

// repairBase returns a 3-machine instance with a valid prior schedule:
// machine 0 = {job0 (4, bag0)}, machine 1 = {job1 (3, bag1)},
// machine 2 = {job2 (2, bag0), job3 (1, bag2)}.
func repairBase(t *testing.T) (*sched.Instance, *sched.Schedule) {
	t.Helper()
	in := sched.NewInstance(3)
	in.AddJob(4, 0)
	in.AddJob(3, 1)
	in.AddJob(2, 0)
	in.AddJob(1, 2)
	s := sched.NewSchedule(in)
	s.Machine = []int{0, 1, 2, 2}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	return in, s
}

func applyDelta(t *testing.T, base *sched.Instance, d sched.Delta) (*sched.Instance, *sched.Churn) {
	t.Helper()
	post, churn, err := d.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	return post, churn
}

func TestRepairKeepsUnchangedAssignments(t *testing.T) {
	base, prior := repairBase(t)
	post, churn := applyDelta(t, base, sched.Delta{
		Resize: []sched.Resize{{ID: 3, Size: 1.5}},
		Add:    []sched.Job{{ID: 10, Size: 0.5, Bag: 1}},
	})
	s, st, err := Repair(prior, post, churn)
	if err != nil {
		t.Fatal(err)
	}
	// Jobs 0, 1, 2 are unchanged and must keep machines 0, 1, 2.
	for i, want := range []int{0, 1, 2} {
		if s.Machine[i] != want {
			t.Errorf("unchanged job %d moved to machine %d, want %d", i, s.Machine[i], want)
		}
	}
	if st.Kept != 3 || st.Moved != 2 || st.Displaced != 0 {
		t.Errorf("stats = %+v, want Kept=3 Moved=2 Displaced=0", st)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if got := s.Makespan(); got != st.Makespan {
		// Fx-lifted makespan and float makespan agree on these sizes
		// (all exactly representable in fixed point).
		t.Errorf("stats makespan %v != schedule makespan %v", st.Makespan, got)
	}
}

func TestRepairGreedyPlacement(t *testing.T) {
	base, prior := repairBase(t)
	// Add a bag-3 job of size 2: loads are m0=4, m1=3, m2=3; no bag
	// conflicts anywhere, so it must land on the least-loaded machine,
	// ties to the lowest index — machine 1.
	post, churn := applyDelta(t, base, sched.Delta{
		Add: []sched.Job{{ID: 10, Size: 2, Bag: 3}},
	})
	s, _, err := Repair(prior, post, churn)
	if err != nil {
		t.Fatal(err)
	}
	if s.Machine[4] != 1 {
		t.Errorf("added job placed on machine %d, want 1 (least load, lowest index)", s.Machine[4])
	}
}

func TestRepairAvoidsBagConflicts(t *testing.T) {
	base, prior := repairBase(t)
	// A new bag-0 job cannot join machines 0 or 2 (bag 0 lives there);
	// machine 1 is the only legal target despite any load.
	post, churn := applyDelta(t, base, sched.Delta{
		Add: []sched.Job{{ID: 10, Size: 10, Bag: 0}},
	})
	s, _, err := Repair(prior, post, churn)
	if err != nil {
		t.Fatal(err)
	}
	if s.Machine[4] != 1 {
		t.Errorf("bag-0 job placed on machine %d, want 1", s.Machine[4])
	}
	if c := s.Conflicts(); len(c) > 0 {
		t.Errorf("repaired schedule has conflicts: %v", c)
	}
}

func TestRepairMachineRemovalDisplaces(t *testing.T) {
	base, prior := repairBase(t)
	post, churn := applyDelta(t, base, sched.Delta{Machines: -1})
	s, st, err := Repair(prior, post, churn)
	if err != nil {
		t.Fatal(err)
	}
	// Jobs 2 and 3 lived on the removed machine 2 and must be re-placed.
	if st.Displaced != 2 || st.Kept != 2 || st.Moved != 0 {
		t.Errorf("stats = %+v, want Kept=2 Displaced=2 Moved=0", st)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	if c := s.Conflicts(); len(c) > 0 {
		t.Errorf("conflicts after displacement: %v", c)
	}
}

func TestRepairFailsWhenBagSaturates(t *testing.T) {
	in := sched.NewInstance(2)
	in.AddJob(1, 0)
	in.AddJob(1, 0)
	prior := sched.NewSchedule(in)
	prior.Machine = []int{0, 1}
	post, churn := applyDelta(t, in, sched.Delta{
		Add: []sched.Job{{ID: 10, Size: 1, Bag: 0}},
	})
	if _, _, err := Repair(prior, post, churn); err == nil ||
		!strings.Contains(err.Error(), "occupies every machine") {
		t.Errorf("expected saturation error, got %v", err)
	}
}

func TestRepairSpeedAware(t *testing.T) {
	base := sched.NewRelatedInstance([]float64{1, 4})
	base.AddJob(2, 0) // completes in 2 on m0, 0.5 on m1
	prior := sched.NewSchedule(base)
	prior.Machine = []int{1}
	// Add a bag-1 job of size 2: m0 done = 2, m1 done = (2+2)/4 = 1 —
	// the fast machine wins despite carrying more load.
	post, churn := applyDelta(t, base, sched.Delta{
		Add: []sched.Job{{ID: 10, Size: 2, Bag: 1}},
	})
	s, _, err := Repair(prior, post, churn)
	if err != nil {
		t.Fatal(err)
	}
	if s.Machine[1] != 1 {
		t.Errorf("speed-aware greedy placed job on machine %d, want 1", s.Machine[1])
	}
}

func TestRepairRejectsMismatchedChurn(t *testing.T) {
	base, prior := repairBase(t)
	post, churn := applyDelta(t, base, sched.Delta{Add: []sched.Job{{ID: 10, Size: 1, Bag: 1}}})
	churn.PriorIndex = churn.PriorIndex[:2]
	if _, _, err := Repair(prior, post, churn); err == nil {
		t.Error("expected error for truncated churn map")
	}
	if _, _, err := Repair(nil, post, &sched.Churn{}); err == nil {
		t.Error("expected error for nil prior")
	}
}

func TestRepairRejectsPriorConflict(t *testing.T) {
	in := sched.NewInstance(2)
	in.AddJob(1, 0)
	in.AddJob(1, 0)
	bad := sched.NewSchedule(in)
	bad.Machine = []int{0, 0} // bag conflict in the prior
	post, churn := applyDelta(t, in, sched.Delta{Add: []sched.Job{{ID: 10, Size: 1, Bag: 1}}})
	if _, _, err := Repair(bad, post, churn); err == nil ||
		!strings.Contains(err.Error(), "conflict") {
		t.Errorf("expected prior-conflict error, got %v", err)
	}
}
