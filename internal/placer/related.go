package placer

import (
	"fmt"
	"sort"

	"repro/internal/cfgmilp"
	"repro/internal/classify"
	"repro/internal/numeric"
	"repro/internal/pattern"
	"repro/internal/sched"
)

// RelatedInput bundles everything the related-family placement needs.
type RelatedInput struct {
	// Inst is the prepared scaled instance (singleton bags, speeds).
	Inst *sched.Instance
	// Info is its related classification.
	Info *classify.RelInfo
	// Space is the per-speed-class configuration space.
	Space *pattern.RelSpace
	// Plan is the decoded oracle solution (RelCounts).
	Plan *cfgmilp.Plan
}

// PlaceRelated realizes a related-family plan as a concrete schedule of
// the scaled instance:
//
//  1. each speed class's machines receive their configurations in
//     index order (leftover machines run the empty configuration);
//  2. large jobs fill the reserved slots of their size, machine by
//     machine in index order — the coverage rows guarantee enough
//     slots, surplus slots stay empty (counted in Stats.EmptySlots);
//  3. small jobs, largest first, each go to the machine with the most
//     remaining exact capacity (CapFx minus current load). The area
//     row guarantees the invariant "total positive remaining capacity
//     covers the unplaced small area", so a machine with positive
//     headroom always exists; a single job may overshoot its machine's
//     capacity by less than the small threshold eps*s_min, which is
//     the placement's contribution to the 1+O(eps) bound.
//
// All load accounting is exact int64 fixed point; the instance has
// singleton bags, so the produced schedule is conflict-free by
// construction.
func PlaceRelated(inp RelatedInput) (*sched.Schedule, Stats, error) {
	in, info, sp := inp.Inst, inp.Info, inp.Space
	var stats Stats

	// 1. Expand configurations onto machines, per speed class.
	byClass := make([][]int, len(info.Speeds))
	for m := 0; m < in.Machines; m++ {
		k := info.MachClass[m]
		byClass[k] = append(byClass[k], m)
	}
	machPattern := make([]int, in.Machines)
	for k, counts := range inp.Plan.RelCounts {
		next := 0
		for p, c := range counts {
			if c < 0 {
				return nil, stats, fmt.Errorf("placer: negative configuration count %d (class %d)", c, k)
			}
			for i := 0; i < c; i++ {
				if next >= len(byClass[k]) {
					return nil, stats, fmt.Errorf("placer: plan uses %d+ machines of class %d, class has %d", next+1, k, len(byClass[k]))
				}
				machPattern[byClass[k][next]] = p
				next++
			}
			if c > 0 && sp.Classes[k][p].NumJobs > 0 {
				stats.MachinesUsed += c
			}
		}
		for ; next < len(byClass[k]); next++ {
			machPattern[byClass[k][next]] = 0
		}
	}

	s := sched.NewSchedule(in)
	loads := make([]numeric.Fx, in.Machines)

	// 2. Large jobs into reserved slots, per size in table order.
	jobsOfSize := make([][]int, len(info.Sizes))
	for j := range in.Jobs {
		if si := info.JobSize[j]; si >= 0 {
			jobsOfSize[si] = append(jobsOfSize[si], j)
		}
	}
	for si, jobs := range jobsOfSize {
		next := 0
		for m := 0; m < in.Machines; m++ {
			pat := &sp.Classes[info.MachClass[m]][machPattern[m]]
			for slot := 0; slot < pat.Count[si]; slot++ {
				if next >= len(jobs) {
					stats.EmptySlots++
					continue
				}
				j := jobs[next]
				next++
				s.Machine[j] = m
				loads[m] += info.JobFx[j]
			}
		}
		if next < len(jobs) {
			return nil, stats, fmt.Errorf("placer: %d large jobs of size idx %d without slots", len(jobs)-next, si)
		}
	}

	// 3. Small jobs, largest first, onto the machine with the most
	// remaining capacity (ties to the lowest index).
	var small []int
	for j := range in.Jobs {
		if info.JobSize[j] < 0 {
			small = append(small, j)
		}
	}
	sort.SliceStable(small, func(a, b int) bool {
		fa, fb := info.JobFx[small[a]], info.JobFx[small[b]]
		if fa != fb {
			return fa > fb
		}
		return small[a] < small[b]
	})
	for _, j := range small {
		best, bestRem := -1, numeric.Fx(0)
		for m := 0; m < in.Machines; m++ {
			rem := info.CapFx[info.MachClass[m]] - loads[m]
			if rem > bestRem {
				best, bestRem = m, rem
			}
		}
		if best < 0 {
			return nil, stats, fmt.Errorf("placer: no remaining capacity for small job %d (area row violated)", j)
		}
		s.Machine[j] = best
		loads[best] += info.JobFx[j]
	}

	if err := s.Validate(); err != nil {
		return nil, stats, fmt.Errorf("placer: related schedule invalid: %w", err)
	}
	return s, stats, nil
}
