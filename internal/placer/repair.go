package placer

import (
	"fmt"
	"sort"

	"repro/internal/numeric"
	"repro/internal/sched"
)

// This file implements the incremental re-solve's placement-repair fast
// path. Given a prior schedule, the post-delta instance and the churn
// map relating them, Repair carries every unchanged job's assignment
// over verbatim and re-places only the churned jobs (added, resized,
// rebagged, or displaced by a machine removal) greedily onto the
// least-completing conflict-free machine. Load accounting runs on the
// exact fixed-point representation (internal/numeric) and the
// incrementally maintained loads are re-verified against a from-scratch
// Fx recomputation before the schedule is returned, so a bookkeeping
// bug can never silently ship a corrupt repair.
//
// Repair is a heuristic, not an approximation scheme: the caller
// (internal/core's resolve path) accepts the repaired schedule only
// when its makespan stays within the EPTAS guarantee on the post-delta
// instance and otherwise falls back to the warm-started search.

// RepairStats reports the repair work performed.
type RepairStats struct {
	// Kept counts assignments carried over from the prior schedule.
	Kept int
	// Moved counts churned jobs re-placed by the greedy.
	Moved int
	// Displaced counts unchanged jobs that lost their machine to a
	// machine removal and were re-placed with the churned jobs.
	Displaced int
	// Makespan is the repaired schedule's makespan, lifted from the
	// exact Fx load accounting.
	Makespan float64
}

// Repair builds a schedule of post by keeping every unchanged job on
// its prior machine and greedily re-placing the churned jobs (largest
// first, ties by job ID; each onto the machine with the smallest
// resulting completion time that avoids a bag conflict, ties to the
// lowest machine index). It fails — and the caller falls back to a
// full solve — when a churned job's bag already occupies every
// machine, when the churn map does not match the instances, or when
// the Fx load verification detects an accounting mismatch.
func Repair(prior *sched.Schedule, post *sched.Instance, churn *sched.Churn) (*sched.Schedule, RepairStats, error) {
	var st RepairStats
	if prior == nil || prior.Inst == nil {
		return nil, st, fmt.Errorf("placer: repair needs a prior schedule")
	}
	if len(churn.PriorIndex) != len(post.Jobs) || len(churn.Changed) != len(post.Jobs) {
		return nil, st, fmt.Errorf("placer: churn map covers %d jobs, post instance has %d",
			len(churn.PriorIndex), len(post.Jobs))
	}

	s := sched.NewSchedule(post)
	loads := make([]numeric.Fx, post.Machines)
	bagsOn := make([]map[int]int, post.Machines)
	for m := range bagsOn {
		bagsOn[m] = make(map[int]int)
	}
	jobFx := make([]numeric.Fx, len(post.Jobs))
	for i, j := range post.Jobs {
		jobFx[i] = numeric.FromFloat(j.Size)
	}

	// Carry unchanged assignments over. A kept job that would conflict
	// means the prior schedule was invalid for its own instance —
	// refuse rather than paper over it.
	var churned []int
	for i := range post.Jobs {
		pi := churn.PriorIndex[i]
		if pi < 0 || churn.Changed[i] {
			churned = append(churned, i)
			continue
		}
		if pi >= len(prior.Machine) {
			return nil, st, fmt.Errorf("placer: churn maps post job %d to prior index %d, prior has %d jobs",
				i, pi, len(prior.Machine))
		}
		m := prior.Machine[pi]
		if m < 0 || m >= post.Machines {
			// Displaced by a machine removal (or never placed).
			churned = append(churned, i)
			st.Displaced++
			continue
		}
		if bagsOn[m][post.Jobs[i].Bag] > 0 {
			return nil, st, fmt.Errorf("placer: prior schedule carries a bag %d conflict onto machine %d",
				post.Jobs[i].Bag, m)
		}
		s.Machine[i] = m
		loads[m] += jobFx[i]
		bagsOn[m][post.Jobs[i].Bag]++
		st.Kept++
	}

	// Re-place churned jobs, largest first (ties by ID, then index, for
	// determinism across job orderings).
	sort.SliceStable(churned, func(a, b int) bool {
		ja, jb := post.Jobs[churned[a]], post.Jobs[churned[b]]
		if ja.Size != jb.Size {
			return ja.Size > jb.Size
		}
		return ja.ID < jb.ID
	})
	speed := func(m int) float64 {
		if post.Speeds == nil {
			return 1
		}
		return post.Speeds[m]
	}
	for _, i := range churned {
		bag := post.Jobs[i].Bag
		best, bestDone := -1, 0.0
		for m := 0; m < post.Machines; m++ {
			if bagsOn[m][bag] > 0 {
				continue
			}
			done := (loads[m] + jobFx[i]).Float() / speed(m)
			if best < 0 || done < bestDone {
				best, bestDone = m, done
			}
		}
		if best < 0 {
			return nil, st, fmt.Errorf("placer: bag %d occupies every machine; repair cannot place job %d", bag, i)
		}
		s.Machine[i] = best
		loads[best] += jobFx[i]
		bagsOn[best][bag]++
		if churn.PriorIndex[i] >= 0 && !churn.Changed[i] {
			continue // displaced job, already counted
		}
		st.Moved++
	}

	// Verify the exact load invariant: the incrementally maintained Fx
	// loads must equal a from-scratch recomputation, and the schedule
	// must be structurally valid and conflict-free.
	check := make([]numeric.Fx, post.Machines)
	for i, m := range s.Machine {
		if m < 0 {
			return nil, st, fmt.Errorf("placer: repair left job %d unplaced", i)
		}
		check[m] += jobFx[i]
	}
	for m := range loads {
		if loads[m] != check[m] {
			return nil, st, fmt.Errorf("placer: repair load mismatch on machine %d: %v != %v",
				m, loads[m], check[m])
		}
	}
	if err := s.Validate(); err != nil {
		return nil, st, fmt.Errorf("placer: repaired schedule invalid: %w", err)
	}
	if c := s.Conflicts(); len(c) > 0 {
		return nil, st, fmt.Errorf("placer: repaired schedule has %d bag conflicts", len(c))
	}
	for m := range loads {
		if done := loads[m].Float() / speed(m); done > st.Makespan {
			st.Makespan = done
		}
	}
	return s, st, nil
}
