package placer

import (
	"context"
	"math"
	"testing"

	"repro/internal/cfgmilp"
	"repro/internal/classify"
	"repro/internal/greedy"
	"repro/internal/milp"
	"repro/internal/pattern"
	"repro/internal/round"
	"repro/internal/sched"
	"repro/internal/transform"
	"repro/internal/workload"
)

// pipeline runs everything up to and including the MILP and returns the
// placer input for the bag-LPT makespan guess.
func pipeline(t *testing.T, in *sched.Instance, eps float64, bprime int, mode cfgmilp.Mode) Input {
	t.Helper()
	ub, err := greedy.BagLPT(in)
	if err != nil {
		t.Fatal(err)
	}
	scaled, _ := round.ScaleRound(in, ub.Makespan(), eps)
	info, err := classify.Classify(scaled, eps, classify.Options{BPrimeOverride: bprime})
	if err != nil {
		t.Fatal(err)
	}
	tr := transform.Apply(scaled, info)
	sp, err := pattern.Enumerate(context.Background(), tr.Inst, tr.View, tr.Priority, pattern.Options{})
	if err != nil {
		t.Fatal(err)
	}
	built, err := cfgmilp.Build(context.Background(), tr.Inst, tr.View, tr.Priority, sp, cfgmilp.BuildOptions{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	sol, err := milp.Solve(context.Background(), built.Model, milp.Options{StopAtFirst: true, MaxNodes: 4000})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != milp.StatusOptimal && sol.Status != milp.StatusFeasible {
		t.Fatalf("MILP status %v", sol.Status)
	}
	return Input{Inst: tr.Inst, View: tr.View, Prio: tr.Priority, Space: sp, Plan: built.Decode(sol)}
}

func TestPlaceProducesFeasibleSchedules(t *testing.T) {
	for _, fam := range workload.Families() {
		fam := fam
		t.Run(string(fam), func(t *testing.T) {
			in := workload.MustGenerate(workload.Spec{
				Family: fam, Machines: 8, Jobs: 32, Bags: 16, Seed: 5,
			})
			inp := pipeline(t, in, 0.5, 2, cfgmilp.ModeDecomposed)
			s, _, err := Place(inp)
			if err != nil {
				t.Fatalf("Place: %v", err)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("invalid: %v", err)
			}
		})
	}
}

func TestPlacePaperMode(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Bimodal, Machines: 4, Jobs: 14, Bags: 6, Seed: 3,
	})
	inp := pipeline(t, in, 0.5, 2, cfgmilp.ModePaper)
	if !inp.Plan.HasY {
		t.Fatal("expected Y in paper mode")
	}
	s, _, err := Place(inp)
	if err != nil {
		t.Fatalf("Place: %v", err)
	}
	if err := s.Validate(); err != nil {
		t.Fatalf("invalid: %v", err)
	}
}

func TestPlaceAllJobsAssigned(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Geometric, Machines: 6, Jobs: 30, Bags: 12, Seed: 7,
	})
	inp := pipeline(t, in, 0.5, 2, cfgmilp.ModeDecomposed)
	s, _, err := Place(inp)
	if err != nil {
		t.Fatal(err)
	}
	for j, m := range s.Machine {
		if m < 0 {
			t.Errorf("job %d unassigned", j)
		}
	}
}

func TestPlaceHeightBounded(t *testing.T) {
	// The placed schedule of the transformed instance should stay within
	// T + O(eps) of the guess (Lemmas 8-11 combined).
	for seed := int64(1); seed <= 6; seed++ {
		in := workload.MustGenerate(workload.Spec{
			Family: workload.Uniform, Machines: 8, Jobs: 32, Bags: 16, Seed: seed,
		})
		inp := pipeline(t, in, 0.5, 2, cfgmilp.ModeDecomposed)
		s, _, err := Place(inp)
		if err != nil {
			t.Fatal(err)
		}
		limit := inp.View.Info.T + 4*inp.View.Info.Eps
		if mk := s.Makespan(); mk > limit+1e-9 {
			t.Errorf("seed %d: transformed makespan %.4f > %.4f", seed, mk, limit)
		}
	}
}

func TestLemma7SwapPreservesLoads(t *testing.T) {
	// Directly exercise the swap repair: craft a state with a conflict
	// and verify loads before/after.
	in := sched.NewInstance(2)
	// Two non-priority bags, equal sizes; bag 0 twice on machine 0.
	in.AddJob(1, 0)
	in.AddJob(1, 0)
	in.AddJob(1, 1)
	info, err := classify.Classify(in, 0.5, classify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	view, err := info.ViewOf(in)
	if err != nil {
		t.Fatal(err)
	}
	st := &state{
		in:     in,
		view:   view,
		prio:   []bool{false, false},
		sched:  sched.NewSchedule(in),
		loads:  newLoadVec(2, false, nil),
		bagsOn: []map[int]int{{}, {}},
		origin: map[int]int{},
	}
	st.assign(0, 0)
	st.assign(1, 0) // conflict: bag 0 twice on machine 0
	st.assign(2, 1)
	before := []float64{st.loads.at(0), st.loads.at(1)}
	st.repairLargeConflicts()
	if len(st.sched.Conflicts()) != 0 {
		t.Fatalf("conflict not repaired")
	}
	for m := range before {
		if math.Abs(st.loads.at(m)-before[m]) > 1e-9 {
			t.Errorf("machine %d load changed: %g -> %g", m, before[m], st.loads.at(m))
		}
	}
	if st.stats.SwapRepairs != 1 {
		t.Errorf("SwapRepairs = %d, want 1", st.stats.SwapRepairs)
	}
}

func TestGenericRepairTerminatesAndFixes(t *testing.T) {
	in := sched.NewInstance(3)
	in.AddJob(1, 0)
	in.AddJob(0.5, 0)
	in.AddJob(0.25, 0)
	info, err := classify.Classify(in, 0.5, classify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	view, err := info.ViewOf(in)
	if err != nil {
		t.Fatal(err)
	}
	st := &state{
		in:     in,
		view:   view,
		prio:   []bool{false},
		sched:  sched.NewSchedule(in),
		loads:  newLoadVec(3, false, nil),
		bagsOn: []map[int]int{{}, {}, {}},
		origin: map[int]int{},
	}
	// All three jobs of bag 0 on machine 0.
	st.assign(0, 0)
	st.assign(1, 0)
	st.assign(2, 0)
	if err := st.repairGeneric(); err != nil {
		t.Fatal(err)
	}
	if err := st.sched.Validate(); err != nil {
		t.Fatalf("still invalid: %v", err)
	}
	if st.stats.GenericMoves == 0 {
		t.Error("expected generic moves")
	}
}

func TestGenericRepairDetectsSaturation(t *testing.T) {
	// Bag with more jobs than machines: repair must fail loudly.
	in := sched.NewInstance(2)
	in.AddJob(1, 0)
	in.AddJob(1, 0)
	in.AddJob(1, 0)
	info, err := classify.Classify(in, 0.5, classify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	view, err := info.ViewOf(in)
	if err != nil {
		t.Fatal(err)
	}
	st := &state{
		in:     in,
		view:   view,
		prio:   []bool{false},
		sched:  sched.NewSchedule(in),
		loads:  newLoadVec(2, false, nil),
		bagsOn: []map[int]int{{}, {}},
		origin: map[int]int{},
	}
	st.assign(0, 0)
	st.assign(1, 0)
	st.assign(2, 1)
	if err := st.repairGeneric(); err == nil {
		t.Error("expected saturation error")
	}
}

func TestPlaceRejectsOversizedPlan(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Unit, Machines: 2, Jobs: 4, Bags: 2, Seed: 1,
	})
	inp := pipeline(t, in, 0.5, 0, cfgmilp.ModeDecomposed)
	// Corrupt the plan: demand more machines than exist.
	inp.Plan.XCount[0] += 10
	if _, _, err := Place(inp); err == nil {
		t.Error("expected error for oversized plan")
	}
}

func TestStatsMachinesUsed(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Bimodal, Machines: 6, Jobs: 18, Bags: 9, Seed: 2,
	})
	inp := pipeline(t, in, 0.5, 2, cfgmilp.ModeDecomposed)
	_, stats, err := Place(inp)
	if err != nil {
		t.Fatal(err)
	}
	if stats.MachinesUsed < 0 || stats.MachinesUsed > in.Machines {
		t.Errorf("MachinesUsed = %d", stats.MachinesUsed)
	}
}
