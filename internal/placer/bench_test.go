package placer

import (
	"context"
	"testing"

	"repro/internal/cfgmilp"
	"repro/internal/classify"
	"repro/internal/greedy"
	"repro/internal/milp"
	"repro/internal/pattern"
	"repro/internal/round"
	"repro/internal/transform"
	"repro/internal/workload"
)

// benchInput runs everything up to the MILP once; the benchmark then
// replays placement (the integer-load accounting hot path) alone.
func benchInput(b *testing.B, float64Ref bool) Input {
	b.Helper()
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Skewed, Machines: 16, Jobs: 50, Bags: 25, Seed: 41,
	})
	ub, err := greedy.BagLPT(in)
	if err != nil {
		b.Fatal(err)
	}
	scaled, _ := round.ScaleRound(in, ub.Makespan(), 0.5)
	info, err := classify.Classify(scaled, 0.5, classify.Options{BPrimeOverride: 2})
	if err != nil {
		b.Fatal(err)
	}
	tr := transform.Apply(scaled, info)
	sp, err := pattern.Enumerate(context.Background(), tr.Inst, tr.View, tr.Priority, pattern.Options{})
	if err != nil {
		b.Fatal(err)
	}
	built, err := cfgmilp.Build(context.Background(), tr.Inst, tr.View, tr.Priority, sp, cfgmilp.BuildOptions{Mode: cfgmilp.ModeDecomposed})
	if err != nil {
		b.Fatal(err)
	}
	sol, err := milp.Solve(context.Background(), built.Model, milp.Options{StopAtFirst: true, MaxNodes: 4000})
	if err != nil {
		b.Fatal(err)
	}
	if sol.Status != milp.StatusOptimal && sol.Status != milp.StatusFeasible {
		b.Fatalf("MILP status %v", sol.Status)
	}
	return Input{
		Inst:       tr.Inst,
		View:       tr.View,
		Prio:       tr.Priority,
		Space:      sp,
		Plan:       built.Decode(sol),
		Float64Ref: float64Ref,
	}
}

func benchPlace(b *testing.B, float64Ref bool) {
	inp := benchInput(b, float64Ref)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Place(inp); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPlaceFixed(b *testing.B)      { benchPlace(b, false) }
func BenchmarkPlaceFloat64Ref(b *testing.B) { benchPlace(b, true) }
