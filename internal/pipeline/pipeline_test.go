package pipeline

import (
	"context"
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/greedy"
	"repro/internal/sched"
	"repro/internal/workload"
)

func testInstanceAndGuess(t *testing.T) (*sched.Instance, float64) {
	t.Helper()
	inst := workload.MustGenerate(workload.Spec{
		Family: workload.Bimodal, Machines: 5, Jobs: 20, Bags: 8, Seed: 37,
	})
	ub, err := greedy.BagLPT(inst)
	if err != nil {
		t.Fatal(err)
	}
	return inst, ub.Makespan()
}

func TestStageNamesOrder(t *testing.T) {
	want := []string{"Scale", "Classify", "Transform", "Enumerate", "SolveOracle", "Place", "Lift"}
	got := StageNames()
	if len(got) != len(want) {
		t.Fatalf("StageNames() = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("StageNames()[%d] = %q, want %q", i, got[i], want[i])
		}
	}
	// The exported list must agree with the stages the engine actually
	// runs.
	if stageScale.Name() != want[0] {
		t.Errorf("scale stage is named %q", stageScale.Name())
	}
	for i, s := range rungStages {
		if s.Name() != want[i+1] {
			t.Errorf("rung stage %d is named %q, want %q", i, s.Name(), want[i+1])
		}
	}
}

func TestEngineMemoHit(t *testing.T) {
	in, guess := testInstanceAndGuess(t)
	e := New(Config{Eps: 0.5})
	ctx := context.Background()

	first, err := e.Run(ctx, in, guess)
	if err != nil {
		t.Fatal(err)
	}
	if first.CacheHit {
		t.Error("first run reported a cache hit")
	}
	second, err := e.Run(ctx, in, guess)
	if err != nil {
		t.Fatal(err)
	}
	if !second.CacheHit {
		t.Fatal("identical guess missed the memo")
	}
	if second.Space != first.Space {
		t.Error("cache hit did not reuse the pattern space")
	}
	if second.Guess != guess {
		t.Errorf("cached result has guess %g, want %g", second.Guess, guess)
	}
	if len(second.Final.Machine) != len(first.Final.Machine) {
		t.Fatal("cached schedule has a different length")
	}
	for j := range first.Final.Machine {
		if second.Final.Machine[j] != first.Final.Machine[j] {
			t.Fatalf("cached schedule differs at job %d", j)
		}
	}
	// The final schedule must not alias the memoized one.
	second.Final.Machine[0] = -999
	if first.Final.Machine[0] == -999 {
		t.Error("cached result aliases the memoized machine slice")
	}

	m := e.Metrics()
	if m.CacheHits != 1 || m.CacheMisses != 1 || m.Runs != 1 {
		t.Errorf("metrics = hits %d misses %d runs %d, want 1/1/1", m.CacheHits, m.CacheMisses, m.Runs)
	}
}

// TestEngineMemoEquivalenceClass checks the point of the memo: two
// *different* guesses whose scaled instances round to the same exponents
// share one pipeline execution.
func TestEngineMemoEquivalenceClass(t *testing.T) {
	in, guess := testInstanceAndGuess(t)
	e := New(Config{Eps: 0.5})
	ctx := context.Background()

	first, err := e.Run(ctx, in, guess)
	if err != nil {
		t.Fatal(err)
	}
	// A hair smaller guess: every size/guess ratio moves by a factor
	// 1+1e-9, far less than a rounding-interval width, so the exponent
	// vector — and with it the signature — is unchanged.
	near, err := e.Run(ctx, in, guess*(1-1e-9))
	if err != nil {
		t.Fatal(err)
	}
	if near.Signature != first.Signature {
		t.Fatalf("signatures differ: %+v vs %+v", near.Signature, first.Signature)
	}
	if !near.CacheHit {
		t.Error("equivalent guess missed the memo")
	}
	if near.Guess == first.Guess {
		t.Error("clone kept the original guess scalar")
	}
}

func TestEngineMemoDisabled(t *testing.T) {
	in, guess := testInstanceAndGuess(t)
	e := New(Config{Eps: 0.5, DisableMemo: true})
	ctx := context.Background()
	for i := 0; i < 2; i++ {
		pr, err := e.Run(ctx, in, guess)
		if err != nil {
			t.Fatal(err)
		}
		if pr.CacheHit {
			t.Fatal("cache hit with the memo disabled")
		}
	}
	if m := e.Metrics(); m.CacheHits != 0 {
		t.Errorf("metrics report %d hits with the memo disabled", m.CacheHits)
	}
}

// TestEngineMemoizesRejections checks that accept and reject outcomes are
// cached alike: a guess far below the lower bound fails identically,
// without a second pipeline execution.
func TestEngineMemoizesRejections(t *testing.T) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Unit, Machines: 2, Jobs: 8, Bags: 4, Seed: 31,
	})
	e := New(Config{Eps: 0.5})
	ctx := context.Background()
	// OPT = 4 (8 unit jobs on 2 machines); guess 1 must be rejected.
	_, err1 := e.Run(ctx, in, 1)
	if err1 == nil {
		t.Fatal("impossible guess accepted")
	}
	_, err2 := e.Run(ctx, in, 1)
	if err2 == nil {
		t.Fatal("impossible guess accepted from cache")
	}
	// The cached rejection is labeled as memoized and wraps the original.
	if !strings.Contains(err2.Error(), err1.Error()) {
		t.Errorf("cached rejection %v does not wrap the original %v", err2, err1)
	}
	if !strings.Contains(err2.Error(), "memoized rejection") {
		t.Errorf("cached rejection %v is not labeled as memoized", err2)
	}
	m := e.Metrics()
	if m.Runs != 1 || m.CacheHits != 1 {
		t.Errorf("metrics = runs %d hits %d, want 1 run and 1 hit", m.Runs, m.CacheHits)
	}
}

// TestEngineCancellationNotMemoized checks that a ctx abort is never
// committed as the guess's outcome.
func TestEngineCancellationNotMemoized(t *testing.T) {
	in, guess := testInstanceAndGuess(t)
	e := New(Config{Eps: 0.5})

	canceled, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := e.Run(canceled, in, guess); !errors.Is(err, context.Canceled) {
		t.Fatalf("canceled run returned %v, want context.Canceled", err)
	}

	pr, err := e.Run(context.Background(), in, guess)
	if err != nil {
		t.Fatalf("run after canceled run: %v", err)
	}
	if pr.CacheHit {
		t.Error("cancellation outcome was memoized")
	}
	m := e.Metrics()
	if m.CacheHits != 0 {
		t.Errorf("cache hits = %d after a canceled and a fresh run, want 0", m.CacheHits)
	}
	if m.Runs != 2 {
		t.Errorf("runs = %d, want 2 (the canceled attempt started a pipeline too)", m.Runs)
	}
}

// TestEngineInflightDedup checks that concurrent evaluations of one
// signature share a single pipeline execution: the first claims it, the
// rest wait for the outcome and report cache hits.
func TestEngineInflightDedup(t *testing.T) {
	in, guess := testInstanceAndGuess(t)
	e := New(Config{Eps: 0.5})
	const n = 8
	results := make([]*Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			results[i], errs[i] = e.Run(context.Background(), in, guess)
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if errs[i] != nil {
			t.Fatalf("run %d: %v", i, errs[i])
		}
		for j := range results[0].Final.Machine {
			if results[i].Final.Machine[j] != results[0].Final.Machine[j] {
				t.Fatalf("run %d schedule differs at job %d", i, j)
			}
		}
	}
	m := e.Metrics()
	if m.Runs != 1 {
		t.Errorf("runs = %d, want 1 (one claimant, %d waiters)", m.Runs, n-1)
	}
	if m.CacheHits != n-1 || m.CacheMisses != 1 {
		t.Errorf("cache = %d hits / %d misses, want %d/1", m.CacheHits, m.CacheMisses, n-1)
	}
}

// TestEngineStageTimes checks that every stage of a successful run is
// accounted for in the metrics.
func TestEngineStageTimes(t *testing.T) {
	in, guess := testInstanceAndGuess(t)
	e := New(Config{Eps: 0.5})
	if _, err := e.Run(context.Background(), in, guess); err != nil {
		t.Fatal(err)
	}
	m := e.Metrics()
	for _, name := range StageNames() {
		if _, ok := m.StageTime[name]; !ok {
			t.Errorf("no stage time recorded for %s", name)
		}
	}
}
