package pipeline

// Snapshot value codec: the serialization of one memoized pipeline
// outcome, used by the memo snapshot tier (internal/memo) to persist a
// replica's warm cache and ship it between replicas.
//
// What is serialized is the *serving projection* of a Result — exactly
// the fields a cache hit feeds back into a solve: the final machine
// assignment (exact integers, rebindable to any signature-equivalent
// instance via Result.cloneFor) plus every counter the solver
// statistics absorb (oracle work, classification constants, placement
// and lift repairs, pattern-space sizes). Heavyweight intermediate
// artifacts (the scaled instance, the enumerated pattern space's
// contents, the transformation) are not shipped: a decoded Result
// serves warm requests bit-identically — the snapshot differential
// test at the repository root proves it corpus-wide — but is not a
// substitute for a fresh RunPipeline when a caller wants to inspect
// intermediates. Everything on the wire is integral (counts, exact
// fixed-point-derived assignments) except the backend name; no floats
// are serialized, so the payload is platform-independent by
// construction.
//
// The payload's first byte is its codec version; DecodeResult rejects
// unknown versions, which the memo importer treats as a per-entry skip
// (never fatal). Bump resultCodecVersion whenever the field set below
// changes.

import (
	"encoding/binary"
	"errors"
	"fmt"
	"time"

	"repro/internal/classify"
	"repro/internal/pattern"
	"repro/internal/sched"
)

const resultCodecVersion = 1

// Decode-side sanity bounds: a corrupt length must not drive a huge
// allocation. Both are far above anything the solver produces.
const (
	maxSnapshotJobs     = 1 << 24
	maxSnapshotPatterns = 1 << 24
)

// ErrSnapshotCodec reports a payload DecodeResult cannot interpret.
var ErrSnapshotCodec = errors.New("pipeline: bad result snapshot payload")

// presence bits of the shape byte.
const (
	hasInfo = 1 << iota
	hasSpace
	hasRelInfo
	hasRelSpace
	hasFinal
)

// EncodeResult serializes the serving projection of r.
func EncodeResult(r *Result) []byte {
	buf := make([]byte, 0, 64+10*len(finalMachine(r)))
	buf = append(buf, resultCodecVersion)
	buf = putUvarint(buf, uint64(r.Attempts))
	buf = putUvarint(buf, uint64(r.IntegerVars))
	buf = putUvarint(buf, uint64(r.MILPNodes))

	os := r.OracleStats
	buf = putString(buf, os.Backend)
	buf = putUvarint(buf, uint64(os.Nodes))
	buf = putUvarint(buf, uint64(os.Pivots))
	buf = putUvarint(buf, uint64(os.States))
	buf = putUvarint(buf, uint64(os.Raced))
	buf = putUvarint(buf, uint64(os.LoserNodes))
	buf = putUvarint(buf, uint64(os.LoserStates))
	buf = putUvarint(buf, uint64(os.LoserTime))
	buf = putUvarint(buf, uint64(os.Workers))
	buf = putUvarint(buf, uint64(os.Steals))
	buf = putUvarint(buf, uint64(os.SpecUsed))

	ps := r.PlaceStats
	for _, v := range []int{ps.MachinesUsed, ps.EmptySlots, ps.XConflicts, ps.SwapRepairs, ps.OriginMoves, ps.GenericMoves} {
		buf = putUvarint(buf, uint64(v))
	}
	ls := r.LiftStats
	for _, v := range []int{ls.MediumInserted, ls.MachineCap, ls.FillerSwaps, ls.FallbackMoves} {
		buf = putUvarint(buf, uint64(v))
	}

	var shape byte
	if r.Info != nil {
		shape |= hasInfo
	}
	if r.Space != nil {
		shape |= hasSpace
	}
	if r.RelInfo != nil {
		shape |= hasRelInfo
	}
	if r.RelSpace != nil {
		shape |= hasRelSpace
	}
	if r.Final != nil {
		shape |= hasFinal
	}
	buf = append(buf, shape)
	if r.Info != nil {
		buf = putUvarint(buf, uint64(r.Info.K))
		buf = putUvarint(buf, uint64(r.Info.Q))
		buf = putUvarint(buf, uint64(r.Info.BPrime))
		// The statistics count priority bags over the transformed vector
		// when a transformation ran; snapshot the effective count.
		prio := r.Info.Priority
		if r.Transformed != nil {
			prio = r.Transformed.Priority
		}
		n := 0
		for _, b := range prio {
			if b {
				n++
			}
		}
		buf = putUvarint(buf, uint64(n))
	}
	if r.Space != nil {
		buf = putUvarint(buf, uint64(len(r.Space.Patterns)))
	}
	if r.RelInfo != nil {
		buf = putUvarint(buf, uint64(len(r.RelInfo.Sizes)))
	}
	if r.RelSpace != nil {
		buf = putUvarint(buf, uint64(r.RelSpace.TotalPatterns()))
	}
	if r.Final != nil {
		buf = putUvarint(buf, uint64(len(r.Final.Machine)))
		for _, m := range r.Final.Machine {
			buf = putVarint(buf, int64(m))
		}
	}
	return buf
}

// DecodeResult reconstructs the serving projection encoded by
// EncodeResult. The returned Result serves memo hits bit-identically to
// the original (final assignment, all absorbed statistics); stand-in
// artifacts carry only the quantities the statistics read (pattern
// counts, classification constants), not the full intermediate state.
func DecodeResult(payload []byte) (*Result, error) {
	d := &decoder{buf: payload}
	if v := d.byte(); v != resultCodecVersion {
		return nil, fmt.Errorf("%w: codec version %d, want %d", ErrSnapshotCodec, v, resultCodecVersion)
	}
	r := &Result{}
	r.Attempts = int(d.uvarint())
	r.IntegerVars = int(d.uvarint())
	r.MILPNodes = int(d.uvarint())

	r.OracleStats.Backend = d.string()
	r.OracleStats.Nodes = int(d.uvarint())
	r.OracleStats.Pivots = int(d.uvarint())
	r.OracleStats.States = int64(d.uvarint())
	r.OracleStats.Raced = int(d.uvarint())
	r.OracleStats.LoserNodes = int(d.uvarint())
	r.OracleStats.LoserStates = int64(d.uvarint())
	r.OracleStats.LoserTime = time.Duration(d.uvarint())
	r.OracleStats.Workers = int(d.uvarint())
	r.OracleStats.Steals = int64(d.uvarint())
	r.OracleStats.SpecUsed = int64(d.uvarint())

	r.PlaceStats.MachinesUsed = int(d.uvarint())
	r.PlaceStats.EmptySlots = int(d.uvarint())
	r.PlaceStats.XConflicts = int(d.uvarint())
	r.PlaceStats.SwapRepairs = int(d.uvarint())
	r.PlaceStats.OriginMoves = int(d.uvarint())
	r.PlaceStats.GenericMoves = int(d.uvarint())
	r.LiftStats.MediumInserted = int(d.uvarint())
	r.LiftStats.MachineCap = int(d.uvarint())
	r.LiftStats.FillerSwaps = int(d.uvarint())
	r.LiftStats.FallbackMoves = int(d.uvarint())

	shape := d.byte()
	if shape&hasInfo != 0 {
		info := &classify.Info{
			K:      int(d.uvarint()),
			Q:      int(d.uvarint()),
			BPrime: int(d.uvarint()),
		}
		prio := d.uvarint()
		if prio > maxSnapshotJobs {
			return nil, fmt.Errorf("%w: implausible priority count %d", ErrSnapshotCodec, prio)
		}
		info.Priority = make([]bool, prio)
		for i := range info.Priority {
			info.Priority[i] = true
		}
		r.Info = info
	}
	if shape&hasSpace != 0 {
		n := d.uvarint()
		if n > maxSnapshotPatterns {
			return nil, fmt.Errorf("%w: implausible pattern count %d", ErrSnapshotCodec, n)
		}
		r.Space = &pattern.Space{Patterns: make([]pattern.Pattern, n)}
	}
	if shape&hasRelInfo != 0 {
		n := d.uvarint()
		if n > maxSnapshotJobs {
			return nil, fmt.Errorf("%w: implausible size count %d", ErrSnapshotCodec, n)
		}
		r.RelInfo = &classify.RelInfo{Sizes: make([]float64, n)}
	}
	if shape&hasRelSpace != 0 {
		n := d.uvarint()
		if n > maxSnapshotPatterns {
			return nil, fmt.Errorf("%w: implausible related pattern count %d", ErrSnapshotCodec, n)
		}
		r.RelSpace = &pattern.RelSpace{Classes: [][]pattern.RelPattern{make([]pattern.RelPattern, n)}}
	}
	if shape&hasFinal != 0 {
		n := d.uvarint()
		if n > maxSnapshotJobs {
			return nil, fmt.Errorf("%w: implausible job count %d", ErrSnapshotCodec, n)
		}
		machine := make([]int, n)
		for i := range machine {
			machine[i] = int(d.varint())
		}
		// Inst is deliberately nil: a cache hit rebinds the schedule to
		// the requesting instance (Result.cloneFor), and the producing
		// instance never crosses the snapshot boundary.
		r.Final = &sched.Schedule{Machine: machine}
	}
	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(d.buf) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrSnapshotCodec, len(d.buf)-d.off)
	}
	return r, nil
}

// SnapshotEncoder adapts EncodeResult to the memo.Cache.Export codec
// contract: values that are not pipeline Results (a cache shared with
// some future layer) are skipped, not errors.
func SnapshotEncoder() func(value any) ([]byte, bool) {
	return func(value any) ([]byte, bool) {
		r, ok := value.(*Result)
		if !ok || r == nil {
			return nil, false
		}
		return EncodeResult(r), true
	}
}

// SnapshotDecoder adapts DecodeResult to the memo.Cache.Import codec
// contract.
func SnapshotDecoder() func(payload []byte) (any, error) {
	return func(payload []byte) (any, error) {
		return DecodeResult(payload)
	}
}

// finalMachine sizes the encoder's buffer hint.
func finalMachine(r *Result) []int {
	if r.Final == nil {
		return nil
	}
	return r.Final.Machine
}

func putUvarint(buf []byte, v uint64) []byte {
	return binary.AppendUvarint(buf, v)
}

func putVarint(buf []byte, v int64) []byte {
	return binary.AppendVarint(buf, v)
}

func putString(buf []byte, s string) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(s)))
	return append(buf, s...)
}

// decoder reads the payload with sticky error state; every accessor
// returns the zero value once an error is latched, so call sites stay
// linear.
type decoder struct {
	buf []byte
	off int
	err error
}

func (d *decoder) fail(format string, args ...any) {
	if d.err == nil {
		d.err = fmt.Errorf("%w: "+format, append([]any{ErrSnapshotCodec}, args...)...)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil {
		return 0
	}
	if d.off >= len(d.buf) {
		d.fail("truncated at byte %d", d.off)
		return 0
	}
	b := d.buf[d.off]
	d.off++
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad uvarint at byte %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf[d.off:])
	if n <= 0 {
		d.fail("bad varint at byte %d", d.off)
		return 0
	}
	d.off += n
	return v
}

func (d *decoder) string() string {
	n := d.uvarint()
	if d.err != nil {
		return ""
	}
	if n > 1<<16 || d.off+int(n) > len(d.buf) {
		d.fail("bad string length %d at byte %d", n, d.off)
		return ""
	}
	s := string(d.buf[d.off : d.off+int(n)])
	d.off += int(n)
	return s
}
