package pipeline

import (
	"errors"
	"testing"
	"time"

	"repro/internal/classify"
	"repro/internal/oracle"
	"repro/internal/pattern"
	"repro/internal/placer"
	"repro/internal/sched"
	"repro/internal/transform"
)

// sampleResult populates every field the serving projection carries,
// with distinct values so a transposed field shows up.
func sampleResult() *Result {
	return &Result{
		Guess:       1.5,
		Attempts:    3,
		IntegerVars: 12,
		MILPNodes:   44,
		OracleStats: oracle.Stats{
			Backend: "portfolio", Nodes: 44, Pivots: 9, States: 12345,
			Raced: 2, LoserNodes: 5, LoserStates: 67, LoserTime: 3 * time.Millisecond,
			Workers: 4, Steals: 11, SpecUsed: 1,
		},
		PlaceStats: placer.Stats{
			MachinesUsed: 6, EmptySlots: 2, XConflicts: 1,
			SwapRepairs: 3, OriginMoves: 4, GenericMoves: 5,
		},
		LiftStats: transform.LiftStats{
			MediumInserted: 7, MachineCap: 8, FillerSwaps: 9, FallbackMoves: 10,
		},
		Info:  &classify.Info{K: 4, Q: 7, BPrime: 2, Priority: []bool{true, false, true, false}},
		Space: &pattern.Space{Patterns: make([]pattern.Pattern, 17)},
		Final: &sched.Schedule{Machine: []int{0, 1, 2, 0, 1, 5}},
	}
}

func countTrue(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

func TestResultCodecRoundTrip(t *testing.T) {
	r := sampleResult()
	got, err := DecodeResult(EncodeResult(r))
	if err != nil {
		t.Fatal(err)
	}
	if got.Attempts != r.Attempts || got.IntegerVars != r.IntegerVars || got.MILPNodes != r.MILPNodes {
		t.Fatalf("counters: got %d/%d/%d", got.Attempts, got.IntegerVars, got.MILPNodes)
	}
	if got.OracleStats != r.OracleStats {
		t.Fatalf("oracle stats: got %+v, want %+v", got.OracleStats, r.OracleStats)
	}
	if got.PlaceStats != r.PlaceStats {
		t.Fatalf("place stats: got %+v, want %+v", got.PlaceStats, r.PlaceStats)
	}
	if got.LiftStats != r.LiftStats {
		t.Fatalf("lift stats: got %+v, want %+v", got.LiftStats, r.LiftStats)
	}
	if got.Info == nil || got.Info.K != 4 || got.Info.Q != 7 || got.Info.BPrime != 2 {
		t.Fatalf("info: got %+v", got.Info)
	}
	// The stand-in priority vector must preserve the *count* the solver
	// statistics read, not the literal bits.
	if want := countTrue(r.Info.Priority); countTrue(got.Info.Priority) != want {
		t.Fatalf("priority count %d, want %d", countTrue(got.Info.Priority), want)
	}
	if got.Space == nil || len(got.Space.Patterns) != len(r.Space.Patterns) {
		t.Fatalf("space: got %+v", got.Space)
	}
	if got.RelInfo != nil || got.RelSpace != nil {
		t.Fatal("related stand-ins materialized for a bags-shaped result")
	}
	if got.Final == nil || got.Final.Inst != nil {
		t.Fatalf("final: got %+v (Inst must stay nil until a hit rebinds it)", got.Final)
	}
	for i, m := range r.Final.Machine {
		if got.Final.Machine[i] != m {
			t.Fatalf("machine[%d] = %d, want %d", i, got.Final.Machine[i], m)
		}
	}
}

// TestResultCodecTransformedPriority: when the Section 2.2
// transformation ran, the effective priority vector is the transformed
// one; the snapshot must carry that count.
func TestResultCodecTransformedPriority(t *testing.T) {
	r := sampleResult()
	r.Transformed = &transform.Transformed{Priority: []bool{true, true, true, true, true}}
	got, err := DecodeResult(EncodeResult(r))
	if err != nil {
		t.Fatal(err)
	}
	if countTrue(got.Info.Priority) != 5 {
		t.Fatalf("priority count %d, want the transformed vector's 5", countTrue(got.Info.Priority))
	}
}

func TestResultCodecRelated(t *testing.T) {
	r := &Result{
		Attempts:    1,
		OracleStats: oracle.Stats{Backend: "cfgdp", States: 9},
		RelInfo:     &classify.RelInfo{Sizes: []float64{1, 2, 3}},
		RelSpace: &pattern.RelSpace{Classes: [][]pattern.RelPattern{
			make([]pattern.RelPattern, 4), make([]pattern.RelPattern, 6),
		}},
		Final: &sched.Schedule{Machine: []int{2, 0, 1}},
	}
	got, err := DecodeResult(EncodeResult(r))
	if err != nil {
		t.Fatal(err)
	}
	if got.RelInfo == nil || len(got.RelInfo.Sizes) != 3 {
		t.Fatalf("relinfo: got %+v", got.RelInfo)
	}
	if got.RelSpace == nil || got.RelSpace.TotalPatterns() != 10 {
		t.Fatalf("relspace total %d, want 10", got.RelSpace.TotalPatterns())
	}
	if got.Info != nil || got.Space != nil {
		t.Fatal("bags stand-ins materialized for a related result")
	}
}

// TestResultCodecRejection: negative entries have no Final and no
// artifacts at all — the zero shape must round-trip.
func TestResultCodecRejection(t *testing.T) {
	r := &Result{Attempts: 2, OracleStats: oracle.Stats{Backend: "bnb", Nodes: 31}, MILPNodes: 31}
	got, err := DecodeResult(EncodeResult(r))
	if err != nil {
		t.Fatal(err)
	}
	if got.Final != nil || got.Info != nil || got.Space != nil || got.RelInfo != nil || got.RelSpace != nil {
		t.Fatalf("artifacts materialized from an empty shape: %+v", got)
	}
	if got.MILPNodes != 31 || got.OracleStats.Backend != "bnb" {
		t.Fatalf("counters lost: %+v", got)
	}
}

func TestResultCodecRejectsDamage(t *testing.T) {
	good := EncodeResult(sampleResult())
	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"empty", func(b []byte) []byte { return nil }},
		{"unknown version", func(b []byte) []byte { b[0] = resultCodecVersion + 1; return b }},
		{"truncated", func(b []byte) []byte { return b[:len(b)-2] }},
		{"trailing bytes", func(b []byte) []byte { return append(b, 0, 0) }},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			data := tc.mut(append([]byte(nil), good...))
			if _, err := DecodeResult(data); !errors.Is(err, ErrSnapshotCodec) {
				t.Fatalf("got %v, want ErrSnapshotCodec", err)
			}
		})
	}
}

func TestSnapshotEncoderSkipsForeignValues(t *testing.T) {
	enc := SnapshotEncoder()
	if _, ok := enc("not a result"); ok {
		t.Fatal("encoder accepted a non-Result value")
	}
	if _, ok := enc((*Result)(nil)); ok {
		t.Fatal("encoder accepted a nil Result")
	}
	if _, ok := enc(sampleResult()); !ok {
		t.Fatal("encoder rejected a real Result")
	}
}

// FuzzDecodeResult: arbitrary payloads must never panic or
// over-allocate; whatever decodes must re-encode decodably (the codec
// is closed over its own output).
func FuzzDecodeResult(f *testing.F) {
	f.Add(EncodeResult(sampleResult()))
	f.Add(EncodeResult(&Result{}))
	f.Add(EncodeResult(&Result{
		RelInfo:  &classify.RelInfo{Sizes: make([]float64, 2)},
		RelSpace: &pattern.RelSpace{Classes: [][]pattern.RelPattern{make([]pattern.RelPattern, 3)}},
		Final:    &sched.Schedule{Machine: []int{-1, 0, 7}},
	}))
	f.Add([]byte{resultCodecVersion})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		r, err := DecodeResult(data)
		if err != nil {
			return
		}
		if _, err := DecodeResult(EncodeResult(r)); err != nil {
			t.Fatalf("decoded result failed to re-decode: %v", err)
		}
	})
}
