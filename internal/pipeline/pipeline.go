// Package pipeline implements the per-guess pipeline of the EPTAS as a
// staged engine: for one makespan guess the instance is scaled and rounded
// (Section 2 of the paper), classified (Lemma 1, Definition 2),
// transformed (Section 2.2), its pattern space enumerated (Definition 3),
// the configuration program decided by an oracle backend (Section 3, via
// internal/oracle), all jobs placed (Sections 3.1 and 4) and the solution
// lifted back to the original instance (Lemmas 3 and 4).
//
// Each step is a Stage with its own wall-clock accounting, run in a fixed
// order by an Engine. The Engine additionally memoizes outcomes across
// guesses: geometric rounding to powers of (1+eps) collapses adjacent
// makespan guesses into rounding equivalence classes — two guesses whose
// scaled-rounded instances have the same per-job exponents are the *same*
// instance from the Classify stage onward, so the second guess can reuse
// the committed accept/reject outcome (including the pattern space, the
// MILP assignment and the final machine assignment) without re-running
// anything. This is result-transparent: the decision and the produced
// schedule are deterministic functions of the signature.
package pipeline

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/cfgmilp"
	"repro/internal/classify"
	"repro/internal/family"
	"repro/internal/memo"
	"repro/internal/milp"
	"repro/internal/oracle"
	"repro/internal/pattern"
	"repro/internal/placer"
	"repro/internal/round"
	"repro/internal/sched"
	"repro/internal/scratch"
	"repro/internal/transform"
)

// Config carries the per-solve knobs the pipeline needs. It is constant
// over all guesses of one solve, which is what makes the cross-guess memo
// sound: the signature only has to capture what varies per guess.
type Config struct {
	// Eps is the accuracy parameter in (0, 1).
	Eps float64
	// Family is the problem family the pipeline solves; nil selects
	// family.Bags (the pre-seam behaviour, bit for bit). It picks the
	// stage sequence (family.Shape) and contributes the family half of
	// the memo aux hash, so a shared cache never aliases entries
	// between families.
	Family family.Family
	// Mode selects the MILP flavour.
	Mode cfgmilp.Mode
	// PatternLimit bounds pattern enumeration (zero means
	// pattern.DefaultLimit).
	PatternLimit int
	// MILP tunes the branch-and-bound solver; StopAtFirst is forced on.
	MILP milp.Options
	// Oracle selects the backend composition the SolveOracle stage
	// dispatches to; the zero value is the bnb backend (bit-identical to
	// the pre-oracle-layer pipeline).
	Oracle oracle.Selection
	// OracleWorkers is the number of concurrent lanes each oracle solve
	// may use (oracle.Limits.Workers); <= 1 means sequential. Results are
	// bit-identical at any value — it is a throughput knob, never a
	// result knob — which is why it is deliberately excluded from the
	// memo config hash: entries cached at one worker count serve solves
	// at any other.
	OracleWorkers int
	// AllPriority disables priority-bag selection and the instance
	// transformation (Das–Wiese mode).
	AllPriority bool
	// BPrimeOverride caps the Definition 2 priority constant b'; zero
	// enables the degradation ladder.
	BPrimeOverride int
	// Cache, when non-nil, is a shared memo the engine stores pipeline
	// outcomes in (and serves hits from) instead of a private per-solve
	// one. The memo key extends the per-guess signature with a hash of
	// this Config and the instance's bag vector, so one cache can serve
	// many solves, instances and option sets concurrently — the serving
	// layer shares a single bounded cache across all requests. Results
	// are bit-identical with any cache configuration; only repeated work
	// changes.
	Cache *memo.Cache
	// DisableMemo turns off cross-guess memoization entirely, including
	// a shared Cache (used by the differential tests and ablation
	// experiments; results are identical either way, only repeated work
	// changes).
	DisableMemo bool
	// Float64Ref runs the stages downstream of Scale on the retained
	// float64 reference arithmetic (the pre-fixed-point seed path)
	// instead of the exact int64 fixed-point representation. Results are
	// bit-for-bit identical; the differential tests assert it.
	Float64Ref bool
}

// State is the mutable blackboard one pipeline execution threads through
// its stages. Earlier stages fill the fields later stages read.
type State struct {
	// In is the original instance (never modified).
	In *sched.Instance
	// Guess is the makespan guess.
	Guess float64
	// Cfg is the engine's configuration.
	Cfg Config
	// BPrime is the priority cap of the current ladder rung (0 =
	// theoretical constant).
	BPrime int
	// NodeBudget bounds MILP nodes on non-final ladder rungs (0 = use
	// Cfg.MILP.MaxNodes).
	NodeBudget int
	// Arena is the run's scratch arena, leased from the engine's pool for
	// the duration of one pipeline execution (nil when the caller runs
	// stages by hand). Single-goroutine; stages hand it to the oracle and
	// the placer, and nothing retained in the Result may alias its
	// memory.
	Arena *scratch.Arena

	// Scaled is In scaled by 1/Guess with sizes rounded up to powers of
	// (1+eps); Exps holds the geometric exponent per job.
	Scaled *sched.Instance
	Exps   []int
	// Info is the classification of Scaled.
	Info *classify.Info
	// RelInfo and RelSpace are the related-family counterparts of Info
	// and Space (family.ShapeRelated only).
	RelInfo  *classify.RelInfo
	RelSpace *pattern.RelSpace
	// Transformed is the Section 2.2 transformation (nil in AllPriority
	// mode); TInst, View and Prio are the instance, its exact numeric
	// view and the priority flags the downstream stages work on either
	// way.
	Transformed *transform.Transformed
	TInst       *sched.Instance
	View        *classify.View
	Prio        []bool
	// Space is the enumerated pattern space.
	Space *pattern.Space
	// IntegerVars is the MILP's integral dimension; OracleStats accounts
	// the oracle solve (MILPNodes mirrors its winner node count for the
	// aggregate statistics); Plan is the decoded solution.
	IntegerVars int
	MILPNodes   int
	OracleStats oracle.Stats
	Plan        *cfgmilp.Plan
	// Placed is the schedule of the transformed (scaled) instance.
	Placed     *sched.Schedule
	PlaceStats placer.Stats
	// LiftStats reports lift work; Final is the feasible schedule of In.
	LiftStats transform.LiftStats
	Final     *sched.Schedule
}

// resetRung clears every artifact the ladder recomputes per priority cap,
// keeping the guess-level Scale output.
func (st *State) resetRung() {
	st.Info = nil
	st.RelInfo = nil
	st.RelSpace = nil
	st.Transformed = nil
	st.TInst = nil
	st.View = nil
	st.Prio = nil
	st.Space = nil
	st.IntegerVars = 0
	st.MILPNodes = 0
	st.OracleStats = oracle.Stats{}
	st.Plan = nil
	st.Placed = nil
	st.PlaceStats = placer.Stats{}
	st.LiftStats = transform.LiftStats{}
	st.Final = nil
}

// Stage is one step of the per-guess pipeline. Run reads its inputs from
// st and writes its outputs back; an error rejects the current attempt
// (ladder rung). Stages must be stateless and safe for concurrent use —
// speculative guess evaluation runs several pipelines at once.
type Stage interface {
	Name() string
	Run(ctx context.Context, st *State) error
}

// The canonical stage sequence. Scale runs once per guess (its output
// determines the memo signature); the remaining stages run once per
// ladder rung. Every family shape uses the same stage names in the
// same order — Stats maps and reports stay comparable across families —
// but the related shape binds its own implementations.
var (
	stageScale       Stage = scaleStage{}
	rungStages             = []Stage{classifyStage{}, transformStage{}, enumerateStage{}, solveOracleStage{}, placeStage{}, liftStage{}}
	relatedRungStage       = []Stage{relClassifyStage{}, relTransformStage{}, relEnumerateStage{}, relSolveOracleStage{}, relPlaceStage{}, relLiftStage{}}
	allStageNames          = []string{"Scale", "Classify", "Transform", "Enumerate", "SolveOracle", "Place", "Lift"}
)

// rungStagesFor selects the per-rung stage sequence of a family shape.
func rungStagesFor(shape family.Shape) []Stage {
	if shape == family.ShapeRelated {
		return relatedRungStage
	}
	return rungStages
}

// StageNames lists the pipeline stages in execution order; Stats maps and
// reports are keyed by these names.
func StageNames() []string {
	return append([]string(nil), allStageNames...)
}

type scaleStage struct{}

func (scaleStage) Name() string { return "Scale" }
func (scaleStage) Run(_ context.Context, st *State) error {
	st.Scaled, st.Exps = round.ScaleRound(st.In, st.Guess, st.Cfg.Eps)
	return nil
}

type classifyStage struct{}

func (classifyStage) Name() string { return "Classify" }
func (classifyStage) Run(_ context.Context, st *State) error {
	info, err := classify.Classify(st.Scaled, st.Cfg.Eps, classify.Options{
		AllPriority:    st.Cfg.AllPriority,
		BPrimeOverride: st.BPrime,
	})
	if err != nil {
		return err
	}
	st.Info = info
	return nil
}

type transformStage struct{}

func (transformStage) Name() string { return "Transform" }
func (transformStage) Run(_ context.Context, st *State) error {
	if st.Cfg.AllPriority {
		// Das–Wiese mode: every bag is priority, nothing to transform.
		st.TInst = st.Scaled
		st.Prio = st.Info.Priority
		view, err := st.Info.ViewOf(st.Scaled)
		if err != nil {
			return err
		}
		st.View = view
		return nil
	}
	st.Transformed = transform.Apply(st.Scaled, st.Info)
	st.TInst = st.Transformed.Inst
	st.View = st.Transformed.View
	st.Prio = st.Transformed.Priority
	return nil
}

type enumerateStage struct{}

func (enumerateStage) Name() string { return "Enumerate" }
func (enumerateStage) Run(ctx context.Context, st *State) error {
	sp, err := pattern.Enumerate(ctx, st.TInst, st.View, st.Prio, pattern.Options{
		Limit:      st.Cfg.PatternLimit,
		Float64Ref: st.Cfg.Float64Ref,
	})
	if err != nil {
		return err
	}
	st.Space = sp
	return nil
}

type solveOracleStage struct{}

func (solveOracleStage) Name() string { return "SolveOracle" }
func (solveOracleStage) Run(ctx context.Context, st *State) error {
	built, err := cfgmilp.Build(ctx, st.TInst, st.View, st.Prio, st.Space, cfgmilp.BuildOptions{
		Mode:       st.Cfg.Mode,
		Float64Ref: st.Cfg.Float64Ref,
	})
	if err != nil {
		return err
	}
	st.IntegerVars = built.IntegerVars
	return st.solveBuilt(ctx, built)
}

// oracleLimits resolves the per-guess oracle budgets from the config
// and the current ladder rung's node budget. Shared by every family
// shape so a family cannot silently run under different limits.
func (st *State) oracleLimits() oracle.Limits {
	lim := oracle.Limits{MILP: st.Cfg.MILP}
	if lim.MILP.MaxNodes <= 0 {
		// Feasibility models are usually solved at the root (by the
		// rounding heuristic) or after a few dives; a tight default
		// keeps rejected guesses cheap. The DP state budget mirrors it
		// at the logical-time exchange rate (see oracle.Limits).
		lim.MILP.MaxNodes = 500
	}
	if lim.MILP.TimeLimit <= 0 {
		// A guess that cannot be decided quickly is treated as rejected;
		// the binary search then moves on. This bounds the worst case on
		// pathologically large pattern spaces. The node budgets above and
		// below are what normally bind — this wall-clock backstop is the
		// only load-dependent limit in the pipeline.
		lim.MILP.TimeLimit = 2 * time.Second
	}
	if st.NodeBudget > 0 && st.NodeBudget < lim.MILP.MaxNodes {
		lim.MILP.MaxNodes = st.NodeBudget
	}
	lim.Workers = st.Cfg.OracleWorkers
	lim.Arena = st.Arena
	return lim
}

// solveBuilt dispatches a constructed model to the configured oracle
// backend and records the outcome on the state.
func (st *State) solveBuilt(ctx context.Context, built *cfgmilp.Built) error {
	plan, ostats, err := oracle.For(st.Cfg.Oracle).Solve(ctx, built, st.oracleLimits())
	st.OracleStats = ostats
	st.MILPNodes = ostats.Nodes
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			return err
		}
		return fmt.Errorf("eptas: oracle at guess %g: %w", st.Guess, err)
	}
	st.Plan = plan
	return nil
}

type placeStage struct{}

func (placeStage) Name() string { return "Place" }
func (placeStage) Run(_ context.Context, st *State) error {
	placed, pstats, err := placer.Place(placer.Input{
		Inst:       st.TInst,
		View:       st.View,
		Prio:       st.Prio,
		Space:      st.Space,
		Plan:       st.Plan,
		Float64Ref: st.Cfg.Float64Ref,
		Arena:      st.Arena,
	})
	if err != nil {
		return err
	}
	st.Placed = placed
	st.PlaceStats = pstats
	return nil
}

type liftStage struct{}

func (liftStage) Name() string { return "Lift" }
func (liftStage) Run(_ context.Context, st *State) error {
	var machine []int
	if st.Transformed != nil {
		lifted, ls, err := st.Transformed.Lift(st.Placed)
		if err != nil {
			return err
		}
		machine = lifted.Machine
		st.LiftStats = ls
	} else {
		machine = st.Placed.Machine
	}
	final := &sched.Schedule{Inst: st.In, Machine: append([]int(nil), machine...)}
	if err := final.Validate(); err != nil {
		return fmt.Errorf("eptas: lifted schedule invalid at guess %g: %w", st.Guess, err)
	}
	st.Final = final
	return nil
}

// --- related-family stages (family.ShapeRelated) ---
//
// Same stage names, related implementations: speed-class
// classification, per-class anonymous configuration enumeration, the
// BuildRelated feasibility program through the same oracle seam, and
// the capacity-greedy placement. There is no instance transformation
// and no priority-cap ladder (related machines have no bags), so
// Transform is a pass-through and the engine runs a single rung.

type relClassifyStage struct{}

func (relClassifyStage) Name() string { return "Classify" }
func (relClassifyStage) Run(_ context.Context, st *State) error {
	info, err := classify.Related(st.Scaled, st.Cfg.Eps)
	if err != nil {
		return err
	}
	st.RelInfo = info
	return nil
}

type relTransformStage struct{}

func (relTransformStage) Name() string { return "Transform" }
func (relTransformStage) Run(_ context.Context, st *State) error {
	st.TInst = st.Scaled
	return nil
}

type relEnumerateStage struct{}

func (relEnumerateStage) Name() string { return "Enumerate" }
func (relEnumerateStage) Run(ctx context.Context, st *State) error {
	sp, err := pattern.EnumerateRelated(ctx, st.RelInfo, pattern.Options{Limit: st.Cfg.PatternLimit})
	if err != nil {
		return err
	}
	st.RelSpace = sp
	return nil
}

type relSolveOracleStage struct{}

func (relSolveOracleStage) Name() string { return "SolveOracle" }
func (relSolveOracleStage) Run(ctx context.Context, st *State) error {
	built, err := cfgmilp.BuildRelated(ctx, st.TInst, st.RelInfo, st.RelSpace)
	if err != nil {
		return err
	}
	st.IntegerVars = built.IntegerVars
	return st.solveBuilt(ctx, built)
}

type relPlaceStage struct{}

func (relPlaceStage) Name() string { return "Place" }
func (relPlaceStage) Run(_ context.Context, st *State) error {
	placed, pstats, err := placer.PlaceRelated(placer.RelatedInput{
		Inst:  st.TInst,
		Info:  st.RelInfo,
		Space: st.RelSpace,
		Plan:  st.Plan,
	})
	if err != nil {
		return err
	}
	st.Placed = placed
	st.PlaceStats = pstats
	return nil
}

type relLiftStage struct{}

func (relLiftStage) Name() string { return "Lift" }
func (relLiftStage) Run(_ context.Context, st *State) error {
	// No transformation to undo: the placed assignment of the scaled
	// instance is position-compatible with the pipeline input (same
	// jobs, same machines), only the sizes differ.
	final := &sched.Schedule{Inst: st.In, Machine: append([]int(nil), st.Placed.Machine...)}
	if err := final.Validate(); err != nil {
		return fmt.Errorf("eptas: related schedule invalid at guess %g: %w", st.Guess, err)
	}
	st.Final = final
	return nil
}

// RetryWithSmallerCap reports whether a pipeline failure may be cured by
// a smaller priority cap: pattern-space explosions and oracle work-budget
// limits both shrink with fewer priority bags. Genuine infeasibility is
// not retried — reducing the cap relaxes the program further, and the
// binary search treats the guess as too low either way.
func RetryWithSmallerCap(err error) bool {
	if _, tooMany := err.(pattern.ErrTooManyPatterns); tooMany {
		return true
	}
	return errors.Is(err, oracle.ErrLimit)
}

// ladderNodeBudget bounds branch-and-bound nodes on non-final ladder
// attempts. Feasibility models are usually solved at the root or after a
// few dives, so this is generous for a rung that is going to succeed,
// while keeping a rung that would blow up cheap to abandon. Unlike a
// wall-clock budget it is load-independent, at the cost of a larger
// worst case: a rung whose individual nodes are slow now runs until the
// node budget or the MILP TimeLimit backstop, whichever comes first.
const ladderNodeBudget = 150
