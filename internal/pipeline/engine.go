package pipeline

import (
	"context"
	"fmt"
	"math"
	"sync"
	"time"

	"repro/internal/classify"
	"repro/internal/family"
	"repro/internal/memo"
	"repro/internal/numeric"
	"repro/internal/oracle"
	"repro/internal/pattern"
	"repro/internal/placer"
	"repro/internal/sched"
	"repro/internal/scratch"
	"repro/internal/transform"
)

// Result exposes every intermediate artifact of one makespan guess; the
// experiment suite and tests use it to measure per-lemma quantities
// (pattern counts, placement heights, repair work).
type Result struct {
	// Guess is the makespan guess the pipeline ran with.
	Guess float64
	// Signature is the memo key of the scaled-rounded instance (see
	// Engine): guesses with equal signatures have identical outcomes. It
	// is a fixed-size binary key (machine count, job count and a 128-bit
	// hash of the exponent vector) built without allocations.
	Signature numeric.Key
	// CacheHit reports that this result was served from the cross-guess
	// memo rather than a fresh pipeline execution.
	CacheHit bool
	// Attempts is the number of priority-cap ladder rungs tried (1 when
	// the first rung succeeded; meaningful only on accepted guesses).
	Attempts int
	// Scaled is the instance scaled by 1/Guess and rounded.
	Scaled *sched.Instance
	// Info is the classification of Scaled (nil for related-family
	// runs, whose classification is RelInfo).
	Info *classify.Info
	// RelInfo and RelSpace are the related-family classification and
	// configuration space (nil for bags-shaped runs).
	RelInfo  *classify.RelInfo
	RelSpace *pattern.RelSpace
	// Transformed is the Section 2.2 transformation, nil in AllPriority
	// mode.
	Transformed *transform.Transformed
	// Space is the enumerated pattern space.
	Space *pattern.Space
	// IntegerVars is the MILP's integral dimension.
	IntegerVars int
	// MILPNodes is the branch-and-bound node count of the oracle's
	// winning backend (0 when the configuration DP decided the guess).
	MILPNodes int
	// OracleStats accounts the oracle solve of the accepted rung: the
	// backend (race winner under the portfolio), its deterministic work,
	// and the work burned by outraced backends.
	OracleStats oracle.Stats
	// Placed is the schedule of the transformed (scaled) instance.
	Placed *sched.Schedule
	// PlaceStats reports placement repairs.
	PlaceStats placer.Stats
	// LiftStats reports lift work (zero value in AllPriority mode).
	LiftStats transform.LiftStats
	// Final is the feasible schedule of the original instance.
	Final *sched.Schedule
}

// Metrics aggregates engine-level work counters over all pipeline
// executions of one solve, including rejected guesses and abandoned
// speculative evaluations.
type Metrics struct {
	// Runs counts started pipeline executions (the Classify..Lift
	// ladder), including executions that were later canceled.
	Runs int
	// CacheHits counts guesses decided without a pipeline execution of
	// their own — either from a committed memo entry or by waiting for
	// an in-flight execution of the same signature; CacheMisses counts
	// guesses that claimed their signature and ran the pipeline. Under
	// speculative evaluation the split can vary between runs (a
	// speculative guess may or may not overlap its twin) — the results
	// never do.
	CacheHits   int
	CacheMisses int
	// StageTime is the total wall-clock time per stage, keyed by
	// StageNames().
	StageTime map[string]time.Duration
}

// Engine runs the staged per-guess pipeline and memoizes outcomes across
// guesses — of one solve by default, or across solves and requests when
// Config.Cache supplies a shared memo.Cache.
//
// The memo key has two parts. The signature half is the canonical
// identity of the scaled-rounded instance: the machine count, the job
// count and the geometric exponent of every job in input order — equal
// exponent vectors mean bit-identical scaled instances. The auxiliary
// half hashes everything else a pipeline outcome depends on: the
// solve-constant Config knobs and the instance's bag vector (job order
// and bags are fixed within one solve, but a shared cache sees many).
// All stages from Classify on are deterministic functions of that
// combined key, so a key's accept/reject outcome, pattern space, oracle
// plan and final machine assignment are all reusable verbatim; only the
// guess scalar (and, across requests, the original-instance binding of
// the final schedule) differs — see Result.cloneFor. Concurrent
// evaluations of equal-key guesses are deduplicated in flight by the
// cache: the first claims the key and runs, later ones wait for its
// outcome instead of running a duplicate pipeline. A rejection is
// committed as a negative entry and served like any other outcome;
// cancellation errors are never memoized (the claim is abandoned and the
// next evaluation recomputes) — see internal/memo for the exact
// semantics. The one caveat mirrors the speculation caveat in core: a
// guess decided by the MILP's wall-clock TimeLimit backstop rather than
// its deterministic node budget could cache a load-dependent outcome.
//
// An Engine is safe for concurrent use; speculative guess evaluation
// shares one engine across its pipelines, and the serving layer shares
// one cache across engines.
type Engine struct {
	cfg     Config
	fam     family.Family
	cache   *memo.Cache
	cfgHash uint64
	// arenas pools scratch arenas, one leased per pipeline execution
	// (speculative guesses run several at once, each with its own). In
	// steady state every run reuses warmed slabs and the per-guess
	// allocation churn of the oracle and the placer disappears.
	arenas sync.Pool

	mu      sync.Mutex
	metrics Metrics
	// lastIn/lastAux memoize the bag-vector hash of the most recent
	// instance: an engine serves one instance per solve, so the O(jobs)
	// hash is paid once, not per guess.
	lastIn  *sched.Instance
	lastAux uint64
}

// New returns an engine for one solve's worth of guesses under cfg.
// When cfg.Cache is non-nil the engine memoizes into that shared cache
// (and serves hits from it) instead of a private per-solve memo. A
// non-nil cfg.MILP.Progress hook makes outcomes caller-dependent in a
// way the memo key cannot capture, so it forces a private memo.
func New(cfg Config) *Engine {
	fam := cfg.Family
	if fam == nil {
		fam = family.Bags
	}
	e := &Engine{
		cfg:     cfg,
		fam:     fam,
		cfgHash: configHash(cfg),
		arenas:  sync.Pool{New: func() any { return new(scratch.Arena) }},
		metrics: Metrics{
			StageTime: make(map[string]time.Duration),
		},
	}
	if !cfg.DisableMemo {
		if cfg.Cache != nil && cfg.MILP.Progress == nil {
			e.cache = cfg.Cache
		} else {
			e.cache = memo.New(0)
		}
	}
	return e
}

// Cache returns the memo the engine stores guess outcomes in — the
// shared cache when one was configured, the private per-solve memo
// otherwise, nil when memoization is disabled. The solver core retains
// it on each Result so an incremental re-solve can warm-start from the
// prior solve's entries.
func (e *Engine) Cache() *memo.Cache { return e.cache }

// Metrics returns a snapshot of the engine's aggregate counters.
func (e *Engine) Metrics() Metrics {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := e.metrics
	m.StageTime = make(map[string]time.Duration, len(e.metrics.StageTime))
	for k, v := range e.metrics.StageTime {
		m.StageTime[k] = v
	}
	return m
}

// Run executes the pipeline for one makespan guess. An error means the
// guess was rejected (MILP infeasible, pattern explosion or placement
// failure) — for a guess at least the optimal makespan this indicates the
// rare solver-limit case, not infeasibility of the instance. A canceled
// or expired ctx aborts the run with ctx.Err().
//
// When the pattern space under the theoretical priority constant b'
// exceeds the enumeration limit, the run retries with progressively
// smaller priority caps (the paper's own degradation mechanism: fewer
// priority bags means more anonymous X slots, a smaller pattern space,
// and more work for the Lemma 7/11 repairs) before giving up.
func (e *Engine) Run(ctx context.Context, in *sched.Instance, guess float64) (*Result, error) {
	st := &State{In: in, Guess: guess, Cfg: e.cfg}
	if err := e.runStage(ctx, stageScale, st); err != nil {
		return nil, err
	}
	sig := signature(st)

	if e.cfg.DisableMemo {
		e.mu.Lock()
		e.metrics.Runs++
		e.mu.Unlock()
		res, err := e.runLadder(ctx, st)
		if res != nil {
			res.Signature = sig
		}
		return res, err
	}

	key := memo.Key{Sig: memo.Sig(sig), Aux: e.auxFor(in)}
	v, hit, err := e.cache.Do(ctx, key, func() (any, int64, error) {
		e.mu.Lock()
		e.metrics.CacheMisses++
		e.metrics.Runs++
		e.mu.Unlock()
		res, err := e.runLadder(ctx, st)
		if err != nil {
			return nil, rejectionCost, err
		}
		res.Signature = sig
		return res, resultCost(res), nil
	})
	if !hit {
		// This call claimed the key: v/err are this engine's own fresh
		// run (or this caller's ctx error from waiting), returned as-is.
		if err != nil {
			return nil, err
		}
		return v.(*Result), nil
	}
	e.mu.Lock()
	e.metrics.CacheHits++
	e.mu.Unlock()
	if err != nil {
		// The memoized error may embed the guess that produced it;
		// label the reuse so a logged rejection of guess A is never
		// mistaken for a fresh evaluation of guess B.
		return nil, fmt.Errorf("eptas: guess %g: memoized rejection: %w", guess, err)
	}
	return v.(*Result).cloneFor(guess, in), nil
}

// auxFor returns the auxiliary key half for in under this engine's
// config: the config hash folded with the problem family's fingerprint
// of the instance — the family tag plus whatever instance structure
// that family's post-Scale stages read (the bag partition for bags,
// the speed vector for related). Two instances with equal signatures
// and equal aux hashes are interchangeable from the Classify stage on;
// distinct families never share entries because their fingerprints
// start from distinct tags.
func (e *Engine) auxFor(in *sched.Instance) uint64 {
	e.mu.Lock()
	if in == e.lastIn {
		a := e.lastAux
		e.mu.Unlock()
		return a
	}
	e.mu.Unlock()
	h := e.fam.Fingerprint(e.cfgHash, in)
	e.mu.Lock()
	e.lastIn, e.lastAux = in, h
	e.mu.Unlock()
	return h
}

// runLadder runs the Classify..Lift stages, degrading the priority cap on
// pattern explosions and MILP resource limits. The run leases a scratch
// arena from the engine pool; it is reset and returned when the ladder
// finishes, which is sound because no Result artifact lives in arena
// memory (plans, schedules and stats are all heap values — see
// scratch.Arena).
func (e *Engine) runLadder(ctx context.Context, st *State) (*Result, error) {
	ar := e.arenas.Get().(*scratch.Arena)
	st.Arena = ar
	defer func() {
		st.Arena = nil
		ar.Reset()
		e.arenas.Put(ar)
	}()
	caps := []int{e.cfg.BPrimeOverride}
	if e.cfg.BPrimeOverride == 0 && !e.cfg.AllPriority {
		caps = []int{0, 4, 2, 1}
	}
	if e.fam.Shape() == family.ShapeRelated {
		// The related pipeline has no priority bags to degrade; its
		// pattern space is bounded by the speed-class structure alone,
		// so the ladder is a single full-budget rung.
		caps = []int{0}
	}
	var lastErr error
	for i, bp := range caps {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		st.resetRung()
		st.BPrime = bp
		// Non-final ladder attempts get a short node budget: if the
		// theoretical priority constant makes the MILP expensive, a
		// smaller cap is almost always the faster route. The budget is a
		// node count, not wall-clock, so which rung succeeds does not
		// depend on machine load — per-guess outcomes (and hence the
		// whole search) stay deterministic under concurrency.
		st.NodeBudget = 0
		if i < len(caps)-1 && len(caps) > 1 {
			st.NodeBudget = ladderNodeBudget
		}
		err := e.runRung(ctx, st)
		if err == nil {
			return st.result(i + 1), nil
		}
		lastErr = err
		if !RetryWithSmallerCap(err) {
			return nil, err
		}
	}
	return nil, lastErr
}

// runRung executes one ladder attempt: every stage after Scale, in order,
// aborting between stages when ctx is done.
func (e *Engine) runRung(ctx context.Context, st *State) error {
	for _, s := range rungStagesFor(e.fam.Shape()) {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := e.runStage(ctx, s, st); err != nil {
			return err
		}
	}
	return nil
}

// runStage times one stage execution into the engine metrics.
func (e *Engine) runStage(ctx context.Context, s Stage, st *State) error {
	start := time.Now()
	err := s.Run(ctx, st)
	elapsed := time.Since(start)
	e.mu.Lock()
	e.metrics.StageTime[s.Name()] += elapsed
	e.mu.Unlock()
	return err
}

// result snapshots the state of a successful run.
func (st *State) result(attempts int) *Result {
	return &Result{
		Guess:       st.Guess,
		Attempts:    attempts,
		Scaled:      st.Scaled,
		Info:        st.Info,
		RelInfo:     st.RelInfo,
		RelSpace:    st.RelSpace,
		Transformed: st.Transformed,
		Space:       st.Space,
		IntegerVars: st.IntegerVars,
		MILPNodes:   st.MILPNodes,
		OracleStats: st.OracleStats,
		Placed:      st.Placed,
		PlaceStats:  st.PlaceStats,
		LiftStats:   st.LiftStats,
		Final:       st.Final,
	}
}

// cloneFor adapts a memoized result to a new guess with the same memo
// key, evaluated on instance in. Read-only artifacts (Info, Space,
// Placed, the transformation) are shared; the final schedule's machine
// slice is copied so callers of different guesses never alias mutable
// state, and its instance is rebound to in — under a shared cache the
// entry may have been produced by a different request whose instance
// merely scale-rounds to the same signature, and the machine assignment
// (a pure function of the memo key) is exactly as valid for in, while
// makespans must be computed from in's own sizes. MILPNodes and
// OracleStats are kept as-is on purpose: the uncached path would re-run
// the identical deterministic oracle solve and count the same work, so
// aggregated statistics match the unmemoized search exactly.
func (r *Result) cloneFor(guess float64, in *sched.Instance) *Result {
	c := *r
	c.Guess = guess
	c.CacheHit = true
	if r.Final != nil {
		c.Final = &sched.Schedule{
			Inst:    in,
			Machine: append([]int(nil), r.Final.Machine...),
		}
	}
	return &c
}

// rejectionCost is the retention cost charged for a committed negative
// entry: a map slot, an entry struct and an error chain.
const rejectionCost = 256

// resultCost estimates the retention footprint of a committed pipeline
// result in bytes, for the shared cache's cost accounting. It walks the
// dominant slices (jobs, patterns, machine assignments) and charges a
// flat overhead for the fixed-size structs; it is an estimate, not an
// exact measurement — the cache budget is a sizing knob, not a hard
// memory limit.
func resultCost(r *Result) int64 {
	const word = 8
	c := int64(1024)
	c += instCost(r.Scaled)
	if r.Info != nil {
		c += 512 + int64(len(r.Info.Sizes))*3*word
	}
	if r.Transformed != nil {
		c += instCost(r.Transformed.Inst)
		// OrigJob, FillerBag, FillerFor, OrigBagOf plus the per-bag
		// slices, all O(jobs + bags) ints.
		c += 6 * int64(len(r.Transformed.Inst.Jobs)+r.Transformed.Inst.NumBags) * word
	}
	if r.Space != nil {
		c += int64(len(r.Space.Sizes))*2*word + int64(len(r.Space.XSizes))*word
		for i := range r.Space.Patterns {
			p := &r.Space.Patterns[i]
			c += 6*word + int64(len(p.Prio))*2*word + int64(len(p.XCount))*word
		}
	}
	if r.RelInfo != nil {
		c += 512 + int64(len(r.RelInfo.Speeds)+len(r.RelInfo.Sizes))*4*word + int64(len(r.RelInfo.JobSize))*3*word
	}
	if r.RelSpace != nil {
		for _, ps := range r.RelSpace.Classes {
			for i := range ps {
				c += 4*word + int64(len(ps[i].Count))*word
			}
		}
	}
	if r.Placed != nil {
		c += 64 + int64(len(r.Placed.Machine))*word
	}
	if r.Final != nil {
		// The final schedule pins the producing request's original
		// instance (hits rebind to their own, but the cached entry keeps
		// the producer's alive), so charge for it too.
		c += 64 + int64(len(r.Final.Machine))*word + instCost(r.Final.Inst)
	}
	return c
}

// instCost estimates the footprint of an instance (jobs are three words
// each).
func instCost(in *sched.Instance) int64 {
	if in == nil {
		return 0
	}
	return 64 + int64(len(in.Jobs))*3*8
}

// hashMix folds x into h with the SplitMix64 permutation; used to build
// the auxiliary half of the memo key.
func hashMix(h, x uint64) uint64 {
	h += x + 0x9e3779b97f4a7c15
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	h ^= h >> 31
	return h
}

// configHash digests every Config knob that can change a pipeline
// outcome, so that one shared cache serves differently-configured
// requests without false sharing. DisableMemo and Cache itself are
// excluded (they select where results are stored, not what they are),
// and so is OracleWorkers: the oracle's parallelism contract makes
// results bit-identical at every worker count, so entries cached at one
// count are valid at any other — hashing it would only fragment the
// cache. MILP.Progress cannot be hashed and instead forces a private
// cache in New.
func configHash(cfg Config) uint64 {
	h := hashMix(0, math.Float64bits(cfg.Eps))
	h = hashMix(h, uint64(cfg.Mode))
	h = hashMix(h, uint64(int64(cfg.PatternLimit)))
	h = hashMix(h, uint64(int64(cfg.MILP.MaxNodes)))
	h = hashMix(h, uint64(cfg.MILP.TimeLimit))
	h = hashMix(h, math.Float64bits(cfg.MILP.IntTol))
	h = hashMix(h, uint64(int64(cfg.MILP.LPMaxIters)))
	h = hashMix(h, boolBit(cfg.MILP.StopAtFirst))
	h = hashMix(h, boolBit(cfg.MILP.DisableRounding))
	h = hashMix(h, uint64(cfg.Oracle.Backend))
	h = hashMix(h, uint64(len(cfg.Oracle.Portfolio)))
	for _, k := range cfg.Oracle.Portfolio {
		h = hashMix(h, uint64(k))
	}
	h = hashMix(h, boolBit(cfg.AllPriority))
	h = hashMix(h, uint64(int64(cfg.BPrimeOverride)))
	h = hashMix(h, boolBit(cfg.Float64Ref))
	return h
}

func boolBit(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// signature builds the canonical memo key of a scaled-rounded instance:
// machine count, job count and a 128-bit hash of the geometric exponents
// of every job in input order. Equal exponent vectors imply bit-identical
// scaled instances (sizes are exact grid-quantized functions of the
// exponents), hence identical pipeline outcomes under a fixed Config; see
// numeric.Key for why hash collisions are not a practical concern. Unlike
// the previous string signature, building the key allocates nothing and
// map operations compare four words instead of O(jobs) bytes.
func signature(st *State) numeric.Key {
	return numeric.KeyOf(st.Scaled.Machines, st.Exps)
}
