package pipeline

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/classify"
	"repro/internal/numeric"
	"repro/internal/oracle"
	"repro/internal/pattern"
	"repro/internal/placer"
	"repro/internal/sched"
	"repro/internal/transform"
)

// Result exposes every intermediate artifact of one makespan guess; the
// experiment suite and tests use it to measure per-lemma quantities
// (pattern counts, placement heights, repair work).
type Result struct {
	// Guess is the makespan guess the pipeline ran with.
	Guess float64
	// Signature is the memo key of the scaled-rounded instance (see
	// Engine): guesses with equal signatures have identical outcomes. It
	// is a fixed-size binary key (machine count, job count and a 128-bit
	// hash of the exponent vector) built without allocations.
	Signature numeric.Key
	// CacheHit reports that this result was served from the cross-guess
	// memo rather than a fresh pipeline execution.
	CacheHit bool
	// Attempts is the number of priority-cap ladder rungs tried (1 when
	// the first rung succeeded; meaningful only on accepted guesses).
	Attempts int
	// Scaled is the instance scaled by 1/Guess and rounded.
	Scaled *sched.Instance
	// Info is the classification of Scaled.
	Info *classify.Info
	// Transformed is the Section 2.2 transformation, nil in AllPriority
	// mode.
	Transformed *transform.Transformed
	// Space is the enumerated pattern space.
	Space *pattern.Space
	// IntegerVars is the MILP's integral dimension.
	IntegerVars int
	// MILPNodes is the branch-and-bound node count of the oracle's
	// winning backend (0 when the configuration DP decided the guess).
	MILPNodes int
	// OracleStats accounts the oracle solve of the accepted rung: the
	// backend (race winner under the portfolio), its deterministic work,
	// and the work burned by outraced backends.
	OracleStats oracle.Stats
	// Placed is the schedule of the transformed (scaled) instance.
	Placed *sched.Schedule
	// PlaceStats reports placement repairs.
	PlaceStats placer.Stats
	// LiftStats reports lift work (zero value in AllPriority mode).
	LiftStats transform.LiftStats
	// Final is the feasible schedule of the original instance.
	Final *sched.Schedule
}

// Metrics aggregates engine-level work counters over all pipeline
// executions of one solve, including rejected guesses and abandoned
// speculative evaluations.
type Metrics struct {
	// Runs counts started pipeline executions (the Classify..Lift
	// ladder), including executions that were later canceled.
	Runs int
	// CacheHits counts guesses decided without a pipeline execution of
	// their own — either from a committed memo entry or by waiting for
	// an in-flight execution of the same signature; CacheMisses counts
	// guesses that claimed their signature and ran the pipeline. Under
	// speculative evaluation the split can vary between runs (a
	// speculative guess may or may not overlap its twin) — the results
	// never do.
	CacheHits   int
	CacheMisses int
	// StageTime is the total wall-clock time per stage, keyed by
	// StageNames().
	StageTime map[string]time.Duration
}

// Engine runs the staged per-guess pipeline and memoizes outcomes across
// guesses of one solve.
//
// The memo key is a canonical signature of the scaled-rounded instance:
// the machine count plus the geometric exponent of every job (job order
// and bags are fixed within a solve, so equal exponent slices mean
// bit-identical scaled instances — and per-bag exponent multisets). All
// stages from Classify on are deterministic functions of that instance
// and the solve-constant Config, so a signature's accept/reject outcome,
// pattern space, MILP assignment and final machine assignment are all
// reusable verbatim; only the guess scalar differs. Concurrent
// evaluations of equal-signature guesses are deduplicated in flight: the
// first claims the signature and runs, later ones wait for its outcome
// instead of running a duplicate pipeline. Cancellation errors are never
// memoized. The one caveat mirrors the speculation caveat in
// core: a guess decided by the MILP's wall-clock TimeLimit backstop
// rather than its deterministic node budget could cache a load-dependent
// outcome.
//
// An Engine is safe for concurrent use; speculative guess evaluation
// shares one engine across its pipelines.
type Engine struct {
	cfg Config

	mu      sync.Mutex
	memo    map[numeric.Key]*slot
	metrics Metrics
}

// memoEntry is a committed outcome: res on accept, err on reject.
type memoEntry struct {
	res *Result
	err error
}

// slot is one signature's cache cell. The claimant that created the slot
// runs the pipeline; everyone else waits on done. All fields other than
// done are written by the claimant under the engine mutex before done is
// closed, and read by waiters under the mutex after done is closed.
// committed=false after done closes means the claimant was canceled and
// the slot abandoned (and removed from the map): the outcome is still
// undecided and a waiter should claim a fresh slot.
type slot struct {
	done      chan struct{}
	committed bool
	entry     memoEntry
}

// New returns an engine for one solve's worth of guesses under cfg.
func New(cfg Config) *Engine {
	return &Engine{
		cfg:  cfg,
		memo: make(map[numeric.Key]*slot),
		metrics: Metrics{
			StageTime: make(map[string]time.Duration),
		},
	}
}

// Metrics returns a snapshot of the engine's aggregate counters.
func (e *Engine) Metrics() Metrics {
	e.mu.Lock()
	defer e.mu.Unlock()
	m := e.metrics
	m.StageTime = make(map[string]time.Duration, len(e.metrics.StageTime))
	for k, v := range e.metrics.StageTime {
		m.StageTime[k] = v
	}
	return m
}

// Run executes the pipeline for one makespan guess. An error means the
// guess was rejected (MILP infeasible, pattern explosion or placement
// failure) — for a guess at least the optimal makespan this indicates the
// rare solver-limit case, not infeasibility of the instance. A canceled
// or expired ctx aborts the run with ctx.Err().
//
// When the pattern space under the theoretical priority constant b'
// exceeds the enumeration limit, the run retries with progressively
// smaller priority caps (the paper's own degradation mechanism: fewer
// priority bags means more anonymous X slots, a smaller pattern space,
// and more work for the Lemma 7/11 repairs) before giving up.
func (e *Engine) Run(ctx context.Context, in *sched.Instance, guess float64) (*Result, error) {
	st := &State{In: in, Guess: guess, Cfg: e.cfg}
	if err := e.runStage(ctx, stageScale, st); err != nil {
		return nil, err
	}
	sig := signature(st)

	if e.cfg.DisableMemo {
		e.mu.Lock()
		e.metrics.Runs++
		e.mu.Unlock()
		res, err := e.runLadder(ctx, st)
		if res != nil {
			res.Signature = sig
		}
		return res, err
	}

	for {
		e.mu.Lock()
		s, ok := e.memo[sig]
		if !ok {
			// Claim the signature and run the pipeline.
			s = &slot{done: make(chan struct{})}
			e.memo[sig] = s
			e.metrics.CacheMisses++
			e.metrics.Runs++
			e.mu.Unlock()
			res, err := e.runLadder(ctx, st)
			if res != nil {
				res.Signature = sig
			}
			e.mu.Lock()
			if isCancellation(err) {
				// A ctx abort describes the caller's impatience, not the
				// guess; abandon the slot so another evaluation can decide
				// this signature.
				delete(e.memo, sig)
			} else {
				s.committed = true
				s.entry = memoEntry{res: res, err: err}
			}
			e.mu.Unlock()
			close(s.done)
			return res, err
		}
		e.mu.Unlock()

		// The signature has a committed outcome or an execution in
		// flight. Waiting for an in-flight twin instead of running a
		// duplicate pipeline is what makes the memo pay off under
		// speculation, where adjacent guesses of the same rounding class
		// are evaluated concurrently.
		select {
		case <-s.done:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
		e.mu.Lock()
		if !s.committed {
			// The claimant was canceled; try to claim a fresh slot.
			e.mu.Unlock()
			continue
		}
		e.metrics.CacheHits++
		entry := s.entry
		e.mu.Unlock()
		if entry.err != nil {
			// The memoized error may embed the guess that produced it;
			// label the reuse so a logged rejection of guess A is never
			// mistaken for a fresh evaluation of guess B.
			return nil, fmt.Errorf("eptas: guess %g: memoized rejection: %w", guess, entry.err)
		}
		return entry.res.cloneFor(guess), nil
	}
}

// runLadder runs the Classify..Lift stages, degrading the priority cap on
// pattern explosions and MILP resource limits.
func (e *Engine) runLadder(ctx context.Context, st *State) (*Result, error) {
	caps := []int{e.cfg.BPrimeOverride}
	if e.cfg.BPrimeOverride == 0 && !e.cfg.AllPriority {
		caps = []int{0, 4, 2, 1}
	}
	var lastErr error
	for i, bp := range caps {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		st.resetRung()
		st.BPrime = bp
		// Non-final ladder attempts get a short node budget: if the
		// theoretical priority constant makes the MILP expensive, a
		// smaller cap is almost always the faster route. The budget is a
		// node count, not wall-clock, so which rung succeeds does not
		// depend on machine load — per-guess outcomes (and hence the
		// whole search) stay deterministic under concurrency.
		st.NodeBudget = 0
		if i < len(caps)-1 && len(caps) > 1 {
			st.NodeBudget = ladderNodeBudget
		}
		err := e.runRung(ctx, st)
		if err == nil {
			return st.result(i + 1), nil
		}
		lastErr = err
		if !RetryWithSmallerCap(err) {
			return nil, err
		}
	}
	return nil, lastErr
}

// runRung executes one ladder attempt: every stage after Scale, in order,
// aborting between stages when ctx is done.
func (e *Engine) runRung(ctx context.Context, st *State) error {
	for _, s := range rungStages {
		if err := ctx.Err(); err != nil {
			return err
		}
		if err := e.runStage(ctx, s, st); err != nil {
			return err
		}
	}
	return nil
}

// runStage times one stage execution into the engine metrics.
func (e *Engine) runStage(ctx context.Context, s Stage, st *State) error {
	start := time.Now()
	err := s.Run(ctx, st)
	elapsed := time.Since(start)
	e.mu.Lock()
	e.metrics.StageTime[s.Name()] += elapsed
	e.mu.Unlock()
	return err
}

// result snapshots the state of a successful run.
func (st *State) result(attempts int) *Result {
	return &Result{
		Guess:       st.Guess,
		Attempts:    attempts,
		Scaled:      st.Scaled,
		Info:        st.Info,
		Transformed: st.Transformed,
		Space:       st.Space,
		IntegerVars: st.IntegerVars,
		MILPNodes:   st.MILPNodes,
		OracleStats: st.OracleStats,
		Placed:      st.Placed,
		PlaceStats:  st.PlaceStats,
		LiftStats:   st.LiftStats,
		Final:       st.Final,
	}
}

// cloneFor adapts a memoized result to a new guess with the same
// signature. Read-only artifacts (Info, Space, Placed, the transformation)
// are shared; the final schedule's machine slice is copied so callers of
// different guesses never alias mutable state. MILPNodes and OracleStats
// are kept as-is on purpose: the uncached path would re-run the identical
// deterministic oracle solve and count the same work, so aggregated
// statistics match the unmemoized search exactly.
func (r *Result) cloneFor(guess float64) *Result {
	c := *r
	c.Guess = guess
	c.CacheHit = true
	if r.Final != nil {
		c.Final = &sched.Schedule{
			Inst:    r.Final.Inst,
			Machine: append([]int(nil), r.Final.Machine...),
		}
	}
	return &c
}

// isCancellation reports whether err came from a canceled or expired
// context anywhere down the stage stack; such outcomes describe the
// caller's impatience, not the guess, and must never be memoized.
func isCancellation(err error) bool {
	return errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)
}

// signature builds the canonical memo key of a scaled-rounded instance:
// machine count, job count and a 128-bit hash of the geometric exponents
// of every job in input order. Equal exponent vectors imply bit-identical
// scaled instances (sizes are exact grid-quantized functions of the
// exponents), hence identical pipeline outcomes under a fixed Config; see
// numeric.Key for why hash collisions are not a practical concern. Unlike
// the previous string signature, building the key allocates nothing and
// map operations compare four words instead of O(jobs) bytes.
func signature(st *State) numeric.Key {
	return numeric.KeyOf(st.Scaled.Machines, st.Exps)
}
