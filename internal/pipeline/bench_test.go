package pipeline

import (
	"context"
	"testing"

	"repro/internal/greedy"
	"repro/internal/workload"
)

// BenchmarkEngineMemoHit measures the cross-guess memo path: the first
// Run claims the signature and executes the pipeline, every subsequent
// equal-signature Run must be served from the memo. This is the path the
// fixed-size binary key (numeric.Key) optimizes — before the refactor
// each hit allocated an O(jobs) signature string; now key construction
// is allocation-free.
func BenchmarkEngineMemoHit(b *testing.B) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Bimodal, Machines: 8, Jobs: 40, Bags: 10, Seed: 77,
	})
	ub, err := greedy.BagLPT(in)
	if err != nil {
		b.Fatal(err)
	}
	guess := ub.Makespan()
	e := New(Config{Eps: 0.5})
	ctx := context.Background()
	if _, err := e.Run(ctx, in, guess); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr, err := e.Run(ctx, in, guess)
		if err != nil {
			b.Fatal(err)
		}
		if !pr.CacheHit {
			b.Fatal("expected a memo hit")
		}
	}
}

// BenchmarkEngineMemoMiss measures one full pipeline execution with the
// memo disabled (the uncached per-guess cost).
func BenchmarkEngineMemoMiss(b *testing.B) {
	in := workload.MustGenerate(workload.Spec{
		Family: workload.Bimodal, Machines: 8, Jobs: 40, Bags: 10, Seed: 77,
	})
	ub, err := greedy.BagLPT(in)
	if err != nil {
		b.Fatal(err)
	}
	guess := ub.Makespan()
	e := New(Config{Eps: 0.5, DisableMemo: true})
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Run(ctx, in, guess); err != nil {
			b.Fatal(err)
		}
	}
}
