package pipeline

import (
	"context"
	"testing"

	"repro/internal/family"
	"repro/internal/memo"
	"repro/internal/sched"
)

// TestFamilyMemoNoFalseSharing pins the family half of the memo key: two
// engines sharing one cache, identical in every Config knob and solving
// the very same singleton-bag instance (identical numeric signature,
// identical config hash), must NOT share entries when they run as
// different families — only the family fingerprint separates them, and a
// collision would serve one family's plan to the other's pipeline.
func TestFamilyMemoNoFalseSharing(t *testing.T) {
	// Singleton bags make the instance valid for every family; unit
	// speeds make Related's scaled instance bit-identical to the others.
	in := sched.NewInstance(3)
	for i, size := range []float64{0.9, 0.8, 0.7, 0.4, 0.3, 0.2} {
		in.AddJob(size, i)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	const guess = 1.2
	ctx := context.Background()
	shared := memo.New(0)
	cfg := func(f family.Family) Config {
		return Config{Eps: 0.5, Cache: shared, Family: f}
	}

	// Same family, second engine: the shared cache must serve the hit
	// (this is the sharing the fingerprint must not break).
	a1 := New(cfg(family.Identical))
	if _, err := a1.Run(ctx, in, guess); err != nil {
		t.Fatal(err)
	}
	a2 := New(cfg(family.Identical))
	res, err := a2.Run(ctx, in, guess)
	if err != nil {
		t.Fatal(err)
	}
	if !res.CacheHit {
		t.Error("same-family engine missed the shared cache")
	}

	// Different families, same signature and config hash: every one must
	// miss the others' entries.
	for _, f := range []family.Family{family.Bags, family.Related} {
		e := New(cfg(f))
		res, err := e.Run(ctx, in, guess)
		if err != nil {
			t.Fatalf("%s: %v", f.Name(), err)
		}
		if res.CacheHit {
			t.Errorf("%s shared a memo entry with another family (false sharing)", f.Name())
		}
		m := e.Metrics()
		if m.CacheMisses != 1 || m.CacheHits != 0 {
			t.Errorf("%s: hits %d misses %d, want 0/1", f.Name(), m.CacheHits, m.CacheMisses)
		}
	}

	// The shapes must also have produced family-appropriate artifacts:
	// a related entry carries RelSpace, a bags entry carries Space — a
	// cross-served entry would have the wrong one.
	rel := New(cfg(family.Related))
	rres, err := rel.Run(ctx, in, guess)
	if err != nil {
		t.Fatal(err)
	}
	if !rres.CacheHit {
		t.Error("second related engine missed the shared cache")
	}
	if rres.RelSpace == nil || rres.Space != nil {
		t.Error("related result carries bags-shaped artifacts")
	}
}
