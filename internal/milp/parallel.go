// Speculative parallelism for the branch-and-bound search.
//
// The configuration MILPs solved by the oracle have a zero objective, so
// every open node shares the same LP bound and the (lpObj, depth) heap
// order makes the search a depth-first dive with sibling backtracking.
// That shape admits a parallel scheme that is bit-identical to the
// sequential search: the main loop still pops, prunes, expands and
// branches in the exact sequential order, while helper goroutines
// speculatively solve the LP relaxations of open frontier nodes — the
// unexplored siblings the dive will backtrack into. An LP relaxation is
// a pure function of the node's bounds chain (the simplex solver is
// deterministic and its Progress hook is observational), so when the
// main loop reaches a node whose relaxation a helper already solved it
// adopts the result and replays the per-pivot Progress sequence the
// inline solve would have produced. Node order, pivot counts, the
// incumbent, and every Progress tick are therefore independent of the
// worker count and of scheduling; only wall-clock time changes.
package milp

import (
	"encoding/binary"
	"errors"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/lp"
)

// errSpecStale is returned by a helper's poll hook when the speculator
// shuts down mid-solve; results carrying it are never observed by the
// main loop (shutdown happens only after the search has returned).
var errSpecStale = errors.New("milp: speculative solve aborted")

// specTask is one speculative LP relaxation. A nil res/err pair under a
// still-open done channel means a helper is working on it.
type specTask struct {
	done chan struct{}
	res  lp.Result
	err  error
}

// mainClaimed marks a bounds chain the main loop solved (or is solving)
// inline, so helpers never duplicate it.
var mainClaimed = &specTask{}

// specItem is a frontier candidate published by the main loop. The
// bounds slice is a private copy: heap nodes are recycled after
// branching, so helpers must not alias them.
type specItem struct {
	key    string
	bounds []boundChange
}

// speculator coordinates the helper goroutines. The main loop publishes
// frontier candidates with refresh, consumes results with take, and
// tears the helpers down with stop before Solve returns.
type speculator struct {
	prob     *lp.Problem
	maxIters int
	maxCand  int

	mu       sync.Mutex
	cond     *sync.Cond
	frontier []specItem
	tasks    map[string]*specTask
	stopped  bool
	steals   int

	halt atomic.Bool
	wg   sync.WaitGroup

	used   int    // helper results adopted by the main loop (main-only)
	keyBuf []byte // scratch for take (main-only)
}

func newSpeculator(prob *lp.Problem, helpers, lpMaxIters int) *speculator {
	s := &speculator{
		prob:     prob,
		maxIters: lpMaxIters,
		maxCand:  4 * helpers,
		tasks:    make(map[string]*specTask),
	}
	s.cond = sync.NewCond(&s.mu)
	s.wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		go s.run()
	}
	return s
}

// appendBoundsKey serializes a bounds chain. Chains are root-to-node
// paths in the branching tree, so distinct nodes have distinct keys.
func appendBoundsKey(buf []byte, bounds []boundChange) []byte {
	for _, bc := range bounds {
		buf = binary.AppendUvarint(buf, uint64(bc.v))
		if bc.upper {
			buf = append(buf, 1)
		} else {
			buf = append(buf, 0)
		}
		buf = binary.AppendUvarint(buf, math.Float64bits(bc.val))
	}
	return buf
}

// refresh publishes the best open nodes as speculation candidates.
// Called by the main loop after each branching step, while the heap's
// nodes are live. The heap array's prefix approximates best-first
// order, which is all the helpers need — any subset of open nodes is a
// valid speculation target.
func (s *speculator) refresh(q *nodeQueue) {
	n := len(q.items)
	if n > s.maxCand {
		n = s.maxCand
	}
	items := make([]specItem, 0, n)
	buf := s.keyBuf
	s.mu.Lock()
	for i := 0; i < n; i++ {
		nd := q.items[i]
		buf = appendBoundsKey(buf[:0], nd.bounds)
		if _, seen := s.tasks[string(buf)]; seen {
			continue
		}
		bounds := make([]boundChange, len(nd.bounds))
		copy(bounds, nd.bounds)
		items = append(items, specItem{key: string(buf), bounds: bounds})
	}
	s.frontier = items
	s.cond.Broadcast()
	s.mu.Unlock()
	s.keyBuf = buf
}

// take hands the main loop the speculative task for a node, or nil when
// none exists — in which case the node is marked main-claimed and must
// be solved inline.
func (s *speculator) take(bounds []boundChange) *specTask {
	s.keyBuf = appendBoundsKey(s.keyBuf[:0], bounds)
	s.mu.Lock()
	t := s.tasks[string(s.keyBuf)]
	if t == nil {
		s.tasks[string(s.keyBuf)] = mainClaimed
		s.mu.Unlock()
		return nil
	}
	s.mu.Unlock()
	if t == mainClaimed {
		return nil
	}
	s.used++
	return t
}

// run is one helper goroutine: claim an unclaimed frontier candidate,
// solve its LP relaxation (no Progress hook — the main loop replays the
// tick sequence on adoption), publish, repeat.
func (s *speculator) run() {
	defer s.wg.Done()
	for {
		s.mu.Lock()
		var it specItem
		for {
			if s.stopped {
				s.mu.Unlock()
				return
			}
			found := false
			for _, cand := range s.frontier {
				if _, claimed := s.tasks[cand.key]; !claimed {
					it = cand
					found = true
					break
				}
			}
			if found {
				break
			}
			s.cond.Wait()
		}
		t := &specTask{done: make(chan struct{})}
		s.tasks[it.key] = t
		s.steals++
		s.mu.Unlock()

		prob := s.prob.Clone()
		for _, bc := range it.bounds {
			if bc.upper {
				prob.AddConstraint([]lp.Term{{Var: bc.v, Coef: 1}}, lp.LE, bc.val)
			} else {
				prob.AddConstraint([]lp.Term{{Var: bc.v, Coef: 1}}, lp.GE, bc.val)
			}
		}
		t.res, t.err = prob.Solve(lp.Options{
			MaxIters: s.maxIters,
			Progress: func(int) error {
				if s.halt.Load() {
					return errSpecStale
				}
				return nil
			},
		})
		close(t.done)
	}
}

// stop halts in-flight speculative solves and joins the helpers. Called
// (via defer) after the search has produced its result, so an aborted
// helper solve is never adopted.
func (s *speculator) stop() {
	s.halt.Store(true)
	s.mu.Lock()
	s.stopped = true
	s.cond.Broadcast()
	s.mu.Unlock()
	s.wg.Wait()
}

// counts reports how many LP relaxations helpers claimed and how many
// of those the main loop adopted.
func (s *speculator) counts() (steals, used int) {
	s.mu.Lock()
	steals = s.steals
	s.mu.Unlock()
	return steals, s.used
}
