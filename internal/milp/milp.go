// Package milp implements a branch-and-bound mixed-integer linear program
// solver on top of the simplex solver in package lp.
//
// It plays the role of the Lenstra/Kannan integer-programming oracle in the
// paper: the EPTAS only needs exact feasibility/optimality for MILPs whose
// integral dimension is a function of 1/epsilon, and branch-and-bound has
// exactly that profile — worst-case cost exponential only in the number of
// integer variables.
package milp

import (
	"container/heap"
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/lp"
)

// Status is the outcome of a solve.
type Status int

const (
	// StatusOptimal means an optimal integer solution was proven.
	StatusOptimal Status = iota
	// StatusFeasible means an integer solution was found but optimality
	// was not proven within the limits.
	StatusFeasible
	// StatusInfeasible means no integer solution exists.
	StatusInfeasible
	// StatusLimit means limits were exhausted with no integer solution.
	StatusLimit
)

// String returns a human-readable status name.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	case StatusLimit:
		return "limit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Model is a mixed-integer program: an LP plus integrality marks.
type Model struct {
	// Prob is the underlying linear program (variables are >= 0).
	Prob *lp.Problem
	// Integer lists the variable indices that must take integer values.
	Integer []int
}

// Options tunes the search.
type Options struct {
	// MaxNodes bounds the number of branch-and-bound nodes. Zero means
	// the default of 20000.
	MaxNodes int
	// TimeLimit aborts the search when exceeded. Zero means no limit.
	TimeLimit time.Duration
	// IntTol is the integrality tolerance. Zero means 1e-6.
	IntTol float64
	// LPMaxIters bounds simplex pivots per node. Zero means the lp default.
	LPMaxIters int
	// StopAtFirst stops at the first integer-feasible solution, which is
	// the right mode for pure feasibility models (zero objective).
	StopAtFirst bool
	// DisableRounding turns off the largest-remainder rounding heuristic
	// (used by the EX-A2 ablation to quantify its effect).
	DisableRounding bool
}

// Solution is the outcome of Solve.
type Solution struct {
	Status Status
	// X holds variable values when Status is StatusOptimal or
	// StatusFeasible; integer variables are snapped to exact integers.
	X []float64
	// Obj is the objective value of X.
	Obj float64
	// Nodes is the number of branch-and-bound nodes expanded.
	Nodes int
	// Bound is the best proven lower bound on the objective.
	Bound float64
}

// bound is one branching decision: var <= val or var >= val.
type boundChange struct {
	v     int
	upper bool
	val   float64
}

type node struct {
	bounds []boundChange
	lpObj  float64 // parent LP bound (priority)
	depth  int
}

type nodeQueue []*node

func (q nodeQueue) Len() int { return len(q) }
func (q nodeQueue) Less(i, j int) bool {
	if q[i].lpObj != q[j].lpObj {
		return q[i].lpObj < q[j].lpObj
	}
	return q[i].depth > q[j].depth // prefer deeper: diving behaviour
}
func (q nodeQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nodeQueue) Push(x interface{}) { *q = append(*q, x.(*node)) }
func (q *nodeQueue) Pop() interface{} {
	old := *q
	n := len(old)
	it := old[n-1]
	*q = old[:n-1]
	return it
}

// Solve runs branch and bound and returns the best solution found. The
// context is polled once per node: a canceled or expired ctx aborts the
// search and returns ctx.Err(), discarding any incumbent — callers that
// cancel a solve no longer want its answer. This is how the EPTAS stops
// speculative solves whose result is no longer needed and how public
// context deadlines reach the innermost loop.
func Solve(ctx context.Context, m *Model, opt Options) (Solution, error) {
	if opt.MaxNodes <= 0 {
		opt.MaxNodes = 20000
	}
	if opt.IntTol <= 0 {
		opt.IntTol = 1e-6
	}
	deadline := time.Time{}
	if opt.TimeLimit > 0 {
		deadline = time.Now().Add(opt.TimeLimit)
	}

	isInt := make(map[int]bool, len(m.Integer))
	for _, v := range m.Integer {
		isInt[v] = true
	}

	var (
		incumbent    []float64
		incumbentObj = math.Inf(1)
		haveInc      bool
		nodes        int
		bestBound    = math.Inf(1)
	)

	q := &nodeQueue{}
	heap.Push(q, &node{lpObj: math.Inf(-1)})

	rootBound := math.Inf(-1)
	for q.Len() > 0 {
		if nodes >= opt.MaxNodes {
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		if err := ctx.Err(); err != nil {
			return Solution{}, err
		}
		nd := heap.Pop(q).(*node)
		if haveInc && nd.lpObj >= incumbentObj-1e-9 {
			continue // pruned by bound
		}
		nodes++

		prob := m.Prob.Clone()
		for _, bc := range nd.bounds {
			if bc.upper {
				prob.AddConstraint([]lp.Term{{Var: bc.v, Coef: 1}}, lp.LE, bc.val)
			} else {
				prob.AddConstraint([]lp.Term{{Var: bc.v, Coef: 1}}, lp.GE, bc.val)
			}
		}
		res, err := prob.Solve(lp.Options{MaxIters: opt.LPMaxIters})
		if err != nil {
			return Solution{}, err
		}
		switch res.Status {
		case lp.StatusInfeasible:
			continue
		case lp.StatusUnbounded:
			// An unbounded relaxation with integer variables present is
			// treated as an error: our models are always bounded.
			return Solution{}, fmt.Errorf("milp: LP relaxation unbounded")
		case lp.StatusIterLimit:
			// Treat as unexplorable; conservatively keep searching.
			continue
		}
		if nd.depth == 0 {
			rootBound = res.Obj
		}
		if haveInc && res.Obj >= incumbentObj-1e-9 {
			continue
		}

		// Rounding heuristic: a sum-preserving largest-remainder round
		// of the integer variables often hits a feasible point directly
		// (configuration LPs are near-integral), avoiding deep search.
		if cand := roundHeuristic(res.X, m.Integer); !opt.DisableRounding && cand != nil && m.Prob.CheckFeasible(cand, 1e-6) {
			obj := m.Prob.Objective(cand)
			if !haveInc || obj < incumbentObj-1e-12 {
				incumbent = cand
				incumbentObj = obj
				haveInc = true
				if opt.StopAtFirst {
					return Solution{Status: StatusFeasible, X: incumbent, Obj: incumbentObj, Nodes: nodes, Bound: rootBound}, nil
				}
			}
		}

		// Find the most fractional integer variable.
		branchVar := -1
		worst := opt.IntTol
		for _, v := range m.Integer {
			x := res.X[v]
			frac := math.Abs(x - math.Round(x))
			if frac > worst {
				worst = frac
				branchVar = v
			}
		}
		if branchVar < 0 {
			// Integer feasible.
			if res.Obj < incumbentObj-1e-12 || !haveInc {
				incumbent = snap(res.X, isInt)
				incumbentObj = res.Obj
				haveInc = true
				if opt.StopAtFirst {
					return Solution{Status: StatusFeasible, X: incumbent, Obj: incumbentObj, Nodes: nodes, Bound: rootBound}, nil
				}
			}
			continue
		}

		xv := res.X[branchVar]
		down := append(append([]boundChange(nil), nd.bounds...), boundChange{v: branchVar, upper: true, val: math.Floor(xv)})
		up := append(append([]boundChange(nil), nd.bounds...), boundChange{v: branchVar, upper: false, val: math.Ceil(xv)})
		heap.Push(q, &node{bounds: down, lpObj: res.Obj, depth: nd.depth + 1})
		heap.Push(q, &node{bounds: up, lpObj: res.Obj, depth: nd.depth + 1})
	}

	if q.Len() == 0 {
		bestBound = incumbentObj // search space exhausted: bound met
	} else {
		bestBound = (*q)[0].lpObj
	}

	if haveInc {
		status := StatusFeasible
		if q.Len() == 0 || bestBound >= incumbentObj-1e-9 {
			status = StatusOptimal
		}
		return Solution{Status: status, X: incumbent, Obj: incumbentObj, Nodes: nodes, Bound: bestBound}, nil
	}
	if q.Len() == 0 {
		return Solution{Status: StatusInfeasible, Nodes: nodes}, nil
	}
	return Solution{Status: StatusLimit, Nodes: nodes, Bound: bestBound}, nil
}

// roundHeuristic rounds the integer components of x while preserving
// their total: all are floored, then the rounded total deficit is
// distributed to the variables with the largest fractional parts. This
// keeps aggregate rows like sum(x)=m satisfied and favours the columns
// the LP already leaned on. Returns nil when x is already integral.
func roundHeuristic(x []float64, integer []int) []float64 {
	type frac struct {
		v int
		f float64
	}
	var fracs []frac
	total := 0.0
	floorSum := 0.0
	for _, v := range integer {
		total += x[v]
		f := x[v] - math.Floor(x[v])
		floorSum += math.Floor(x[v])
		if f > 1e-9 && f < 1-1e-9 {
			fracs = append(fracs, frac{v, f})
		}
	}
	if len(fracs) == 0 {
		return nil
	}
	out := make([]float64, len(x))
	copy(out, x)
	for _, v := range integer {
		out[v] = math.Floor(x[v] + 1e-9)
	}
	deficit := int(math.Round(total - floorSum))
	sort.Slice(fracs, func(i, j int) bool {
		if fracs[i].f != fracs[j].f {
			return fracs[i].f > fracs[j].f
		}
		return fracs[i].v < fracs[j].v
	})
	for i := 0; i < deficit && i < len(fracs); i++ {
		out[fracs[i].v]++
	}
	return out
}

// snap rounds the integer components of x to exact integers.
func snap(x []float64, isInt map[int]bool) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	for v := range isInt {
		out[v] = math.Round(out[v])
	}
	return out
}
