// Package milp implements a branch-and-bound mixed-integer linear program
// solver on top of the simplex solver in package lp.
//
// It plays the role of the Lenstra/Kannan integer-programming oracle in the
// paper: the EPTAS only needs exact feasibility/optimality for MILPs whose
// integral dimension is a function of 1/epsilon, and branch-and-bound has
// exactly that profile — worst-case cost exponential only in the number of
// integer variables.
package milp

import (
	"context"
	"fmt"
	"math"
	"sort"
	"time"

	"repro/internal/lp"
)

// Status is the outcome of a solve.
type Status int

const (
	// StatusOptimal means an optimal integer solution was proven.
	StatusOptimal Status = iota
	// StatusFeasible means an integer solution was found but optimality
	// was not proven within the limits.
	StatusFeasible
	// StatusInfeasible means no integer solution exists.
	StatusInfeasible
	// StatusLimit means limits were exhausted with no integer solution.
	StatusLimit
)

// String returns a human-readable status name.
func (s Status) String() string {
	switch s {
	case StatusOptimal:
		return "optimal"
	case StatusFeasible:
		return "feasible"
	case StatusInfeasible:
		return "infeasible"
	case StatusLimit:
		return "limit"
	default:
		return fmt.Sprintf("status(%d)", int(s))
	}
}

// Model is a mixed-integer program: an LP plus integrality marks.
type Model struct {
	// Prob is the underlying linear program (variables are >= 0).
	Prob *lp.Problem
	// Integer lists the variable indices that must take integer values.
	Integer []int
}

// Options tunes the search.
type Options struct {
	// MaxNodes bounds the number of branch-and-bound nodes. Zero means
	// the default of 20000.
	MaxNodes int
	// TimeLimit aborts the search when exceeded. Zero means no limit.
	TimeLimit time.Duration
	// IntTol is the integrality tolerance. Zero means 1e-6.
	IntTol float64
	// LPMaxIters bounds simplex pivots per node. Zero means the lp default.
	LPMaxIters int
	// StopAtFirst stops at the first integer-feasible solution, which is
	// the right mode for pure feasibility models (zero objective).
	StopAtFirst bool
	// DisableRounding turns off the largest-remainder rounding heuristic
	// (used by the EX-A2 ablation to quantify its effect).
	DisableRounding bool
	// Workers sets the number of concurrent LP-evaluation lanes,
	// including the main search loop; values <= 1 run the plain
	// sequential search. Extra lanes speculatively solve the LP
	// relaxations of open frontier nodes while the main loop keeps the
	// exact sequential pop/prune/branch order and replays each adopted
	// relaxation's per-pivot Progress sequence, so the returned
	// Solution — status, X, Nodes, Pivots, Bound, and every Progress
	// tick — is bit-identical for any worker count. See parallel.go.
	Workers int
	// Progress, when non-nil, is invoked once per expanded node and once
	// per simplex pivot inside each node's LP solve, with the cumulative
	// node and pivot counts so far. A non-nil return aborts the search
	// and is surfaced as Solve's error, discarding any incumbent. The
	// oracle portfolio uses this as its deterministic work clock: node
	// and pivot counts do not depend on machine load, so racing decisions
	// driven by Progress stay reproducible.
	Progress func(nodes, pivots int) error
}

// Solution is the outcome of Solve.
type Solution struct {
	Status Status
	// X holds variable values when Status is StatusOptimal or
	// StatusFeasible; integer variables are snapped to exact integers.
	X []float64
	// Obj is the objective value of X.
	Obj float64
	// Nodes is the number of branch-and-bound nodes expanded.
	Nodes int
	// Pivots is the total number of simplex pivots across all node LP
	// solves — the fine-grained, load-independent work measure of the
	// search (nodes vary hugely in cost; pivots do not).
	Pivots int
	// Bound is the best proven lower bound on the objective.
	Bound float64
	// Steals is the number of LP relaxations claimed by speculative
	// helper lanes, and SpecUsed the subset the main loop adopted.
	// Both are zero for sequential solves, and — unlike every field
	// above — depend on scheduling, so they are utilization telemetry
	// only and must never feed result-affecting decisions.
	Steals int
	// SpecUsed counts adopted speculative LP results; see Steals.
	SpecUsed int
}

// bound is one branching decision: var <= val or var >= val.
type boundChange struct {
	v     int
	upper bool
	val   float64
}

type node struct {
	bounds []boundChange
	lpObj  float64 // parent LP bound (priority)
	depth  int
	free   *node // free-list link, meaningful only while recycled
}

// nodeQueue is a typed binary min-heap of *node ordered by (lpObj, depth)
// — best LP bound first, deeper nodes first on ties (diving behaviour).
// Compared to container/heap it avoids boxing every node through
// interface{} on Push/Pop, and its free-list recycles node structs and
// their bounds backing arrays: once the search is warm, branching
// allocates nothing but the occasional bounds growth.
type nodeQueue struct {
	items []*node
	free  *node
}

func (q *nodeQueue) len() int { return len(q.items) }

func (q *nodeQueue) less(a, b *node) bool {
	if a.lpObj != b.lpObj {
		return a.lpObj < b.lpObj
	}
	return a.depth > b.depth
}

func (q *nodeQueue) push(n *node) {
	q.items = append(q.items, n)
	i := len(q.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !q.less(q.items[i], q.items[parent]) {
			break
		}
		q.items[i], q.items[parent] = q.items[parent], q.items[i]
		i = parent
	}
}

func (q *nodeQueue) pop() *node {
	top := q.items[0]
	last := len(q.items) - 1
	q.items[0] = q.items[last]
	q.items[last] = nil
	q.items = q.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && q.less(q.items[l], q.items[smallest]) {
			smallest = l
		}
		if r < last && q.less(q.items[r], q.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			break
		}
		q.items[i], q.items[smallest] = q.items[smallest], q.items[i]
		i = smallest
	}
	return top
}

// newNode hands out a node carrying the parent's bounds plus one extra
// bound change, reusing a free-listed node (and its bounds capacity) when
// available.
func (q *nodeQueue) newNode(parent []boundChange, extra boundChange, lpObj float64, depth int) *node {
	n := q.free
	if n != nil {
		q.free = n.free
		n.free = nil
		n.bounds = n.bounds[:0]
	} else {
		n = &node{}
	}
	n.bounds = append(n.bounds, parent...)
	n.bounds = append(n.bounds, extra)
	n.lpObj = lpObj
	n.depth = depth
	return n
}

// recycle returns a popped-and-processed node to the free list.
func (q *nodeQueue) recycle(n *node) {
	n.free = q.free
	q.free = n
}

// Solve runs branch and bound and returns the best solution found. The
// context is polled once per node: a canceled or expired ctx aborts the
// search and returns ctx.Err(), discarding any incumbent — callers that
// cancel a solve no longer want its answer. This is how the EPTAS stops
// speculative solves whose result is no longer needed and how public
// context deadlines reach the innermost loop.
func Solve(ctx context.Context, m *Model, opt Options) (Solution, error) {
	if opt.MaxNodes <= 0 {
		opt.MaxNodes = 20000
	}
	if opt.IntTol <= 0 {
		opt.IntTol = 1e-6
	}
	deadline := time.Time{}
	if opt.TimeLimit > 0 {
		deadline = time.Now().Add(opt.TimeLimit)
	}

	isInt := make(map[int]bool, len(m.Integer))
	for _, v := range m.Integer {
		isInt[v] = true
	}

	var (
		incumbent    []float64
		incumbentObj = math.Inf(1)
		haveInc      bool
		nodes        int
		pivots       int
		bestBound    = math.Inf(1)
	)

	q := &nodeQueue{}
	q.push(&node{lpObj: math.Inf(-1)})

	// Workers > 1 spawns speculative LP helpers; attach stamps their
	// utilization counters onto solutions the caller will see. The
	// sequential path (spec == nil) is untouched.
	var spec *speculator
	if opt.Workers > 1 {
		spec = newSpeculator(m.Prob, opt.Workers-1, opt.LPMaxIters)
		defer spec.stop()
	}
	attach := func(s Solution) Solution {
		if spec != nil {
			s.Steals, s.SpecUsed = spec.counts()
		}
		return s
	}

	rootBound := math.Inf(-1)
	for q.len() > 0 {
		if nodes >= opt.MaxNodes {
			break
		}
		if !deadline.IsZero() && time.Now().After(deadline) {
			break
		}
		if err := ctx.Err(); err != nil {
			return Solution{}, err
		}
		nd := q.pop()
		if haveInc && nd.lpObj >= incumbentObj-1e-9 {
			q.recycle(nd)
			continue // pruned by bound
		}
		nodes++
		if opt.Progress != nil {
			if err := opt.Progress(nodes, pivots); err != nil {
				return Solution{}, err
			}
		}

		var t *specTask
		if spec != nil {
			t = spec.take(nd.bounds)
		}
		var res lp.Result
		var err error
		if t != nil {
			// A helper solved this node's relaxation. Adopt it and
			// replay the per-pivot Progress sequence the inline solve
			// would have produced: the simplex is deterministic and its
			// hook observational, so (res, err) and the tick stream are
			// exactly what the sequential path computes.
			<-t.done
			res, err = t.res, t.err
			if opt.Progress != nil {
				base := pivots
				for i := 1; i <= res.Iters; i++ {
					if perr := opt.Progress(nodes, base+i); perr != nil {
						return Solution{}, perr
					}
				}
			}
		} else {
			prob := m.Prob.Clone()
			for _, bc := range nd.bounds {
				if bc.upper {
					prob.AddConstraint([]lp.Term{{Var: bc.v, Coef: 1}}, lp.LE, bc.val)
				} else {
					prob.AddConstraint([]lp.Term{{Var: bc.v, Coef: 1}}, lp.GE, bc.val)
				}
			}
			lpOpt := lp.Options{MaxIters: opt.LPMaxIters}
			if opt.Progress != nil {
				base := pivots
				lpOpt.Progress = func(iters int) error { return opt.Progress(nodes, base+iters) }
			}
			res, err = prob.Solve(lpOpt)
		}
		pivots += res.Iters
		if err != nil {
			return Solution{}, err
		}
		switch res.Status {
		case lp.StatusInfeasible:
			q.recycle(nd)
			continue
		case lp.StatusUnbounded:
			// An unbounded relaxation with integer variables present is
			// treated as an error: our models are always bounded.
			return Solution{}, fmt.Errorf("milp: LP relaxation unbounded")
		case lp.StatusIterLimit:
			// Treat as unexplorable; conservatively keep searching.
			q.recycle(nd)
			continue
		}
		if nd.depth == 0 {
			rootBound = res.Obj
		}
		if haveInc && res.Obj >= incumbentObj-1e-9 {
			q.recycle(nd)
			continue
		}

		// Rounding heuristic: a sum-preserving largest-remainder round
		// of the integer variables often hits a feasible point directly
		// (configuration LPs are near-integral), avoiding deep search.
		if cand := roundHeuristic(res.X, m.Integer); !opt.DisableRounding && cand != nil && m.Prob.CheckFeasible(cand, 1e-6) {
			obj := m.Prob.Objective(cand)
			if !haveInc || obj < incumbentObj-1e-12 {
				incumbent = cand
				incumbentObj = obj
				haveInc = true
				if opt.StopAtFirst {
					return attach(Solution{Status: StatusFeasible, X: incumbent, Obj: incumbentObj, Nodes: nodes, Pivots: pivots, Bound: rootBound}), nil
				}
			}
		}

		// Find the most fractional integer variable.
		branchVar := -1
		worst := opt.IntTol
		for _, v := range m.Integer {
			x := res.X[v]
			frac := math.Abs(x - math.Round(x))
			if frac > worst {
				worst = frac
				branchVar = v
			}
		}
		if branchVar < 0 {
			// Integer feasible.
			if res.Obj < incumbentObj-1e-12 || !haveInc {
				incumbent = snap(res.X, isInt)
				incumbentObj = res.Obj
				haveInc = true
				if opt.StopAtFirst {
					return attach(Solution{Status: StatusFeasible, X: incumbent, Obj: incumbentObj, Nodes: nodes, Pivots: pivots, Bound: rootBound}), nil
				}
			}
			q.recycle(nd)
			continue
		}

		xv := res.X[branchVar]
		q.push(q.newNode(nd.bounds, boundChange{v: branchVar, upper: true, val: math.Floor(xv)}, res.Obj, nd.depth+1))
		q.push(q.newNode(nd.bounds, boundChange{v: branchVar, upper: false, val: math.Ceil(xv)}, res.Obj, nd.depth+1))
		q.recycle(nd)
		if spec != nil {
			spec.refresh(q)
		}
	}

	if q.len() == 0 {
		bestBound = incumbentObj // search space exhausted: bound met
	} else {
		bestBound = q.items[0].lpObj
	}

	if haveInc {
		status := StatusFeasible
		if q.len() == 0 || bestBound >= incumbentObj-1e-9 {
			status = StatusOptimal
		}
		return attach(Solution{Status: status, X: incumbent, Obj: incumbentObj, Nodes: nodes, Pivots: pivots, Bound: bestBound}), nil
	}
	if q.len() == 0 {
		return attach(Solution{Status: StatusInfeasible, Nodes: nodes, Pivots: pivots}), nil
	}
	return attach(Solution{Status: StatusLimit, Nodes: nodes, Pivots: pivots, Bound: bestBound}), nil
}

// roundHeuristic rounds the integer components of x while preserving
// their total: all are floored, then the rounded total deficit is
// distributed to the variables with the largest fractional parts. This
// keeps aggregate rows like sum(x)=m satisfied and favours the columns
// the LP already leaned on. Returns nil when x is already integral.
func roundHeuristic(x []float64, integer []int) []float64 {
	type frac struct {
		v int
		f float64
	}
	var fracs []frac
	total := 0.0
	floorSum := 0.0
	for _, v := range integer {
		total += x[v]
		f := x[v] - math.Floor(x[v])
		floorSum += math.Floor(x[v])
		if f > 1e-9 && f < 1-1e-9 {
			fracs = append(fracs, frac{v, f})
		}
	}
	if len(fracs) == 0 {
		return nil
	}
	out := make([]float64, len(x))
	copy(out, x)
	for _, v := range integer {
		out[v] = math.Floor(x[v] + 1e-9)
	}
	deficit := int(math.Round(total - floorSum))
	sort.Slice(fracs, func(i, j int) bool {
		if fracs[i].f != fracs[j].f {
			return fracs[i].f > fracs[j].f
		}
		return fracs[i].v < fracs[j].v
	})
	for i := 0; i < deficit && i < len(fracs); i++ {
		out[fracs[i].v]++
	}
	return out
}

// snap rounds the integer components of x to exact integers.
func snap(x []float64, isInt map[int]bool) []float64 {
	out := make([]float64, len(x))
	copy(out, x)
	for v := range isInt {
		out[v] = math.Round(out[v])
	}
	return out
}
