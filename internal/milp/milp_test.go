package milp

import (
	"context"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/lp"
)

const tol = 1e-6

func TestPureLPPassThrough(t *testing.T) {
	// No integer variables: identical to the LP optimum.
	p := lp.NewProblem()
	x := p.AddVar(-1)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 1}}, lp.LE, 2.5)
	sol, err := Solve(context.Background(), &Model{Prob: p}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || math.Abs(sol.Obj+2.5) > tol {
		t.Errorf("status=%v obj=%g", sol.Status, sol.Obj)
	}
}

func TestIntegerRoundingDown(t *testing.T) {
	// min -x, x <= 2.5, x integer => x = 2.
	p := lp.NewProblem()
	x := p.AddVar(-1)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 1}}, lp.LE, 2.5)
	sol, err := Solve(context.Background(), &Model{Prob: p, Integer: []int{x}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusOptimal || math.Abs(sol.X[x]-2) > tol {
		t.Errorf("status=%v x=%v", sol.Status, sol.X)
	}
}

func TestKnapsack(t *testing.T) {
	// max 10a+6b+4c st 1a+1b+1c<=2, 3a+2b+1c<=4, binary-ish (0..1 ints).
	p := lp.NewProblem()
	a := p.AddVar(-10)
	b := p.AddVar(-6)
	c := p.AddVar(-4)
	p.AddConstraint([]lp.Term{{Var: a, Coef: 1}, {Var: b, Coef: 1}, {Var: c, Coef: 1}}, lp.LE, 2)
	p.AddConstraint([]lp.Term{{Var: a, Coef: 3}, {Var: b, Coef: 2}, {Var: c, Coef: 1}}, lp.LE, 4)
	for _, v := range []int{a, b, c} {
		p.AddConstraint([]lp.Term{{Var: v, Coef: 1}}, lp.LE, 1)
	}
	sol, err := Solve(context.Background(), &Model{Prob: p, Integer: []int{a, b, c}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Optimum: a=1, c=1 -> 14? check b=1,c=... a+b: 3+2=5 >4 no. a+c: 4<=4 ok val 14. b+c: 3<=4 val 10.
	if sol.Status != StatusOptimal || math.Abs(sol.Obj+14) > tol {
		t.Errorf("status=%v obj=%g x=%v", sol.Status, sol.Obj, sol.X)
	}
}

func TestInfeasibleInteger(t *testing.T) {
	// 0.4 <= x <= 0.6 has no integer point.
	p := lp.NewProblem()
	x := p.AddVar(0)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 1}}, lp.GE, 0.4)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 1}}, lp.LE, 0.6)
	sol, err := Solve(context.Background(), &Model{Prob: p, Integer: []int{x}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestLPInfeasible(t *testing.T) {
	p := lp.NewProblem()
	x := p.AddVar(0)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 1}}, lp.GE, 2)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 1}}, lp.LE, 1)
	sol, err := Solve(context.Background(), &Model{Prob: p, Integer: []int{x}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusInfeasible {
		t.Errorf("status = %v, want infeasible", sol.Status)
	}
}

func TestStopAtFirstFeasibility(t *testing.T) {
	// Zero objective: any integer point in [1.2, 3.8] works.
	p := lp.NewProblem()
	x := p.AddVar(0)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 1}}, lp.GE, 1.2)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 1}}, lp.LE, 3.8)
	sol, err := Solve(context.Background(), &Model{Prob: p, Integer: []int{x}}, Options{StopAtFirst: true})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusFeasible && sol.Status != StatusOptimal {
		t.Fatalf("status = %v", sol.Status)
	}
	v := sol.X[x]
	if v < 2-tol || v > 3+tol || math.Abs(v-math.Round(v)) > tol {
		t.Errorf("x = %g, want integer in [2,3]", v)
	}
}

func TestNodeLimit(t *testing.T) {
	// A model engineered to branch at least once, with MaxNodes=1.
	p := lp.NewProblem()
	x := p.AddVar(-1)
	y := p.AddVar(-1)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 2}, {Var: y, Coef: 2}}, lp.LE, 3)
	sol, err := Solve(context.Background(), &Model{Prob: p, Integer: []int{x, y}}, Options{MaxNodes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if sol.Status != StatusLimit && sol.Status != StatusFeasible && sol.Status != StatusOptimal {
		t.Errorf("status = %v", sol.Status)
	}
	if sol.Nodes > 1 {
		t.Errorf("nodes = %d, want <= 1", sol.Nodes)
	}
}

func TestDisableRoundingStillSolves(t *testing.T) {
	// Same model with and without the heuristic must agree on the
	// optimum; without it the search typically needs more nodes.
	p := lp.NewProblem()
	x := p.AddVar(-3)
	y := p.AddVar(-2)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 2}, {Var: y, Coef: 1}}, lp.LE, 7.5)
	p.AddConstraint([]lp.Term{{Var: x, Coef: 1}, {Var: y, Coef: 3}}, lp.LE, 9.5)
	m := &Model{Prob: p, Integer: []int{x, y}}
	with, err := Solve(context.Background(), m, Options{})
	if err != nil {
		t.Fatal(err)
	}
	without, err := Solve(context.Background(), m, Options{DisableRounding: true})
	if err != nil {
		t.Fatal(err)
	}
	if with.Status != StatusOptimal || without.Status != StatusOptimal {
		t.Fatalf("status %v / %v", with.Status, without.Status)
	}
	if math.Abs(with.Obj-without.Obj) > tol {
		t.Errorf("objectives differ: %g vs %g", with.Obj, without.Obj)
	}
	if without.Nodes < with.Nodes {
		t.Logf("note: heuristic run used more nodes (%d vs %d)", with.Nodes, without.Nodes)
	}
}

// TestAssignmentProblem solves a small integral assignment problem and
// checks against brute force.
func TestAssignmentProblem(t *testing.T) {
	costs := [3][3]float64{{4, 2, 8}, {4, 3, 7}, {3, 1, 6}}
	p := lp.NewProblem()
	var vars [3][3]int
	var ints []int
	for i := 0; i < 3; i++ {
		for j := 0; j < 3; j++ {
			vars[i][j] = p.AddVar(costs[i][j])
			ints = append(ints, vars[i][j])
		}
	}
	for i := 0; i < 3; i++ {
		row := []lp.Term{}
		col := []lp.Term{}
		for j := 0; j < 3; j++ {
			row = append(row, lp.Term{Var: vars[i][j], Coef: 1})
			col = append(col, lp.Term{Var: vars[j][i], Coef: 1})
		}
		p.AddConstraint(row, lp.EQ, 1)
		p.AddConstraint(col, lp.EQ, 1)
	}
	sol, err := Solve(context.Background(), &Model{Prob: p, Integer: ints}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Brute force.
	best := math.Inf(1)
	perms := [][]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	for _, perm := range perms {
		c := 0.0
		for i, j := range perm {
			c += costs[i][j]
		}
		if c < best {
			best = c
		}
	}
	if sol.Status != StatusOptimal || math.Abs(sol.Obj-best) > tol {
		t.Errorf("obj = %g, want %g", sol.Obj, best)
	}
}

// TestRandomIntegerKnapsackVsBruteForce compares branch and bound against
// exhaustive enumeration on random bounded integer programs.
func TestRandomIntegerKnapsackVsBruteForce(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(3) // 2..4 vars, each in 0..3
		p := lp.NewProblem()
		obj := make([]float64, n)
		for i := 0; i < n; i++ {
			obj[i] = math.Round(rng.Float64()*10 - 5)
			p.AddVar(obj[i])
			p.AddConstraint([]lp.Term{{Var: i, Coef: 1}}, lp.LE, 3)
		}
		// One knapsack row keeps it feasible and bounded.
		w := make([]float64, n)
		terms := make([]lp.Term, n)
		for i := range w {
			w[i] = 1 + math.Round(rng.Float64()*3)
			terms[i] = lp.Term{Var: i, Coef: w[i]}
		}
		cap := 2 + math.Round(rng.Float64()*8)
		p.AddConstraint(terms, lp.LE, cap)
		ints := make([]int, n)
		for i := range ints {
			ints[i] = i
		}
		sol, err := Solve(context.Background(), &Model{Prob: p, Integer: ints}, Options{})
		if err != nil || sol.Status != StatusOptimal {
			return false
		}
		// Brute force.
		best := math.Inf(1)
		var rec func(i int, used float64, val float64)
		rec = func(i int, used, val float64) {
			if used > cap {
				return
			}
			if i == n {
				if val < best {
					best = val
				}
				return
			}
			for v := 0; v <= 3; v++ {
				rec(i+1, used+float64(v)*w[i], val+float64(v)*obj[i])
			}
		}
		rec(0, 0, 0)
		return math.Abs(sol.Obj-best) < 1e-5
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}
