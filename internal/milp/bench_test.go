package milp

import (
	"context"
	"testing"

	"repro/internal/lp"
)

// feasibilityModel mimics the shape of the EPTAS configuration program: a
// pure feasibility MILP (zero objective) with coverage (>=) rows over
// integral pattern-count variables and one machine-count equality.
func feasibilityModel(patterns, rows int) *Model {
	p := lp.NewProblem()
	ints := make([]int, patterns)
	var all []lp.Term
	for v := 0; v < patterns; v++ {
		p.AddVar(0)
		ints[v] = v
		all = append(all, lp.Term{Var: v, Coef: 1})
	}
	p.AddConstraint(all, lp.EQ, 12)
	for r := 0; r < rows; r++ {
		var terms []lp.Term
		for v := r % 3; v < patterns; v += 3 {
			terms = append(terms, lp.Term{Var: v, Coef: float64(1 + (r+v)%2)})
		}
		p.AddConstraint(terms, lp.GE, float64(2+r%4))
	}
	return &Model{Prob: p, Integer: ints}
}

func BenchmarkSolveFeasibility(b *testing.B) {
	m := feasibilityModel(36, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := Solve(context.Background(), m, Options{StopAtFirst: true})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != StatusOptimal && sol.Status != StatusFeasible {
			b.Fatalf("status %v", sol.Status)
		}
	}
}

// oddCycleModel is a feasibility MILP whose LP relaxation sits at a
// fractional vertex (x = 1/2 around every odd cycle), so the solver must
// genuinely branch: cover constraints x_i + x_j >= 1 around `cycles`
// disjoint triangles, plus a budget row keeping the all-ones point out
// of reach of trivial rounding.
func oddCycleModel(cycles int) *Model {
	p := lp.NewProblem()
	var ints []int
	var budget []lp.Term
	for c := 0; c < cycles; c++ {
		v := [3]int{}
		for k := 0; k < 3; k++ {
			v[k] = p.AddVar(0)
			ints = append(ints, v[k])
			budget = append(budget, lp.Term{Var: v[k], Coef: 1})
		}
		for k := 0; k < 3; k++ {
			p.AddConstraint([]lp.Term{{Var: v[k], Coef: 1}, {Var: v[(k+1)%3], Coef: 1}}, lp.GE, 1)
		}
	}
	// Exactly two vertices per triangle: keeps the LP optimum fractional
	// and the integer set tight.
	p.AddConstraint(budget, lp.EQ, float64(2*cycles))
	return &Model{Prob: p, Integer: ints}
}

// BenchmarkSolveBranching forces a real tree search (the odd-cycle model
// rejects the rounding heuristic at the root), so it exercises the node
// queue — push/pop/recycle — rather than just one LP. It is the
// benchmark that shows the typed-heap + free-list win over the old
// container/heap queue, which boxed every node through interface{} and
// allocated fresh node structs and bounds slices on every branch.
func BenchmarkSolveBranching(b *testing.B) {
	m := oddCycleModel(8)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := Solve(context.Background(), m, Options{StopAtFirst: true})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != StatusOptimal && sol.Status != StatusFeasible {
			b.Fatalf("status %v", sol.Status)
		}
		if sol.Nodes < 8 {
			b.Fatalf("search finished in %d nodes; the benchmark no longer branches", sol.Nodes)
		}
	}
}
