package milp

import (
	"context"
	"testing"

	"repro/internal/lp"
)

// feasibilityModel mimics the shape of the EPTAS configuration program: a
// pure feasibility MILP (zero objective) with coverage (>=) rows over
// integral pattern-count variables and one machine-count equality.
func feasibilityModel(patterns, rows int) *Model {
	p := lp.NewProblem()
	ints := make([]int, patterns)
	var all []lp.Term
	for v := 0; v < patterns; v++ {
		p.AddVar(0)
		ints[v] = v
		all = append(all, lp.Term{Var: v, Coef: 1})
	}
	p.AddConstraint(all, lp.EQ, 12)
	for r := 0; r < rows; r++ {
		var terms []lp.Term
		for v := r % 3; v < patterns; v += 3 {
			terms = append(terms, lp.Term{Var: v, Coef: float64(1 + (r+v)%2)})
		}
		p.AddConstraint(terms, lp.GE, float64(2+r%4))
	}
	return &Model{Prob: p, Integer: ints}
}

func BenchmarkSolveFeasibility(b *testing.B) {
	m := feasibilityModel(36, 12)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sol, err := Solve(context.Background(), m, Options{StopAtFirst: true})
		if err != nil {
			b.Fatal(err)
		}
		if sol.Status != StatusOptimal && sol.Status != StatusFeasible {
			b.Fatalf("status %v", sol.Status)
		}
	}
}
