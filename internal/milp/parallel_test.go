package milp

import (
	"context"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"repro/internal/lp"
)

// genFeasModel builds a random pure-feasibility model with the oracle's
// shape: zero objective, an aggregate equality row, and covering rows
// that force real branching.
func genFeasModel(rng *rand.Rand, vars, rows int) *Model {
	p := lp.NewProblem()
	for v := 0; v < vars; v++ {
		p.AddVar(0)
	}
	total := 2 + rng.Intn(6)
	terms := make([]lp.Term, 0, vars)
	for v := 0; v < vars; v++ {
		terms = append(terms, lp.Term{Var: v, Coef: 1})
	}
	p.AddConstraint(terms, lp.EQ, float64(total))
	for r := 0; r < rows; r++ {
		rowTerms := make([]lp.Term, 0, vars)
		for v := 0; v < vars; v++ {
			if rng.Intn(2) == 0 {
				continue
			}
			rowTerms = append(rowTerms, lp.Term{Var: v, Coef: float64(1 + rng.Intn(4))})
		}
		if len(rowTerms) == 0 {
			continue
		}
		rhs := float64(rng.Intn(3*total)) / 2
		if rng.Intn(2) == 0 {
			p.AddConstraint(rowTerms, lp.GE, rhs)
		} else {
			p.AddConstraint(rowTerms, lp.LE, rhs)
		}
	}
	integer := make([]int, vars)
	for v := range integer {
		integer[v] = v
	}
	return &Model{Prob: p, Integer: integer}
}

// stripUtilization zeroes the scheduling-dependent telemetry fields so
// the remaining Solution can be compared bit-for-bit.
func stripUtilization(s Solution) Solution {
	s.Steals = 0
	s.SpecUsed = 0
	return s
}

// TestParallelBitIdentical checks that the speculative parallel search
// returns the exact sequential Solution — including node and pivot
// counts and the full Progress tick trace — for every worker count.
func TestParallelBitIdentical(t *testing.T) {
	ctx := context.Background()
	for seed := int64(0); seed < 25; seed++ {
		rng := rand.New(rand.NewSource(seed))
		m := genFeasModel(rng, 4+rng.Intn(5), 3+rng.Intn(5))
		for _, stopAtFirst := range []bool{true, false} {
			var wantTrace [][2]int
			opt := Options{StopAtFirst: stopAtFirst, Progress: func(nodes, pivots int) error {
				wantTrace = append(wantTrace, [2]int{nodes, pivots})
				return nil
			}}
			want, wantErr := Solve(ctx, m, opt)
			for _, workers := range []int{2, 4, 8} {
				var gotTrace [][2]int
				opt := Options{StopAtFirst: stopAtFirst, Workers: workers, Progress: func(nodes, pivots int) error {
					gotTrace = append(gotTrace, [2]int{nodes, pivots})
					return nil
				}}
				got, gotErr := Solve(ctx, m, opt)
				if (wantErr == nil) != (gotErr == nil) {
					t.Fatalf("seed %d stopAtFirst=%v workers=%d: err %v vs %v", seed, stopAtFirst, workers, gotErr, wantErr)
				}
				if !reflect.DeepEqual(stripUtilization(got), stripUtilization(want)) {
					t.Fatalf("seed %d stopAtFirst=%v workers=%d:\n got %+v\nwant %+v", seed, stopAtFirst, workers, got, want)
				}
				if !reflect.DeepEqual(gotTrace, wantTrace) {
					t.Fatalf("seed %d stopAtFirst=%v workers=%d: progress trace diverged (%d vs %d ticks)", seed, stopAtFirst, workers, len(gotTrace), len(wantTrace))
				}
			}
		}
	}
}

// TestParallelProgressAbortIdentical checks that a Progress hook abort
// fires at the identical tick for every worker count: the speculative
// path must replay per-pivot ticks, not batch them.
func TestParallelProgressAbortIdentical(t *testing.T) {
	ctx := context.Background()
	rng := rand.New(rand.NewSource(7))
	m := genFeasModel(rng, 6, 5)

	// Total ticks of an unrestricted sequential solve, to pick abort
	// points that land mid-LP.
	total := 0
	if _, err := Solve(ctx, m, Options{Progress: func(nodes, pivots int) error {
		total++
		return nil
	}}); err != nil {
		t.Fatal(err)
	}
	if total < 4 {
		t.Skipf("model too easy: %d ticks", total)
	}
	for _, cut := range []int{1, total / 3, total / 2, total - 1} {
		abortErr := fmt.Errorf("abort at %d", cut)
		run := func(workers int) ([2]int, error) {
			var last [2]int
			n := 0
			_, err := Solve(ctx, m, Options{Workers: workers, Progress: func(nodes, pivots int) error {
				n++
				last = [2]int{nodes, pivots}
				if n >= cut {
					return abortErr
				}
				return nil
			}})
			return last, err
		}
		wantLast, wantErr := run(1)
		if wantErr != abortErr {
			t.Fatalf("cut %d: sequential err = %v", cut, wantErr)
		}
		for _, workers := range []int{2, 4, 8} {
			gotLast, gotErr := run(workers)
			if gotErr != abortErr || gotLast != wantLast {
				t.Fatalf("cut %d workers %d: last tick %v err %v, want %v %v", cut, workers, gotLast, gotErr, wantLast, wantErr)
			}
		}
	}
}
