// Package oracle is the pluggable integer-programming oracle layer of
// the EPTAS. The scheme itself only needs, per makespan guess, an exact
// answer to one question — "is the configuration program of this guess
// feasible, and if so, with which pattern multiplicities?" — where the
// integral dimension is a function of 1/eps alone (the Lenstra/Kannan
// role in the paper). Everything about *how* that question is answered is
// an implementation detail behind the Backend interface, which is the
// seam every alternative engine (branch-and-bound, the exact
// configuration DP, an external MILP solver, an n-fold IP solver) plugs
// into.
//
// Three backends are provided:
//
//   - BnB: LP-simplex branch-and-bound over the materialized MILP
//     (internal/milp). Handles both cfgmilp modes and large pattern
//     spaces; its per-guess work is bounded by a deterministic node
//     budget.
//
//   - CfgDP: an exact dynamic program over machine-configuration
//     multiplicities, solving the backend-neutral Demand block directly
//     in int64 fixed-point arithmetic (numeric.Fx) — no LP, no floating
//     point, no tolerances. Strongest when the pattern count is small;
//     decomposed mode only.
//
//   - Portfolio: races any set of backends concurrently and returns the
//     first definitive outcome, adjudicated in *logical time* so results
//     stay reproducible (see portfolio.go).
//
// # Exactness requirement
//
// Backend implementations inherit the exactness contract of the
// fixed-point numeric core (numeric.Fx): every quantity of the Demand
// block — slot counts, pattern heights, the small-job area — is an exact
// integer or an exact fixed-point grid value, and a backend must decide
// feasibility of those exact constraints. A backend may run on any
// internal representation (BnB works on the float64 LP whose
// grid-derived coefficients are exact lifts), but it must not introduce
// approximation of its own: an accepted plan must satisfy the integer
// demand rows exactly, because the placer's repair lemmas budget for
// rounding error already spent upstream, not for oracle slack.
package oracle

import (
	"context"
	"errors"
	"fmt"
	"time"

	"repro/internal/cfgmilp"
	"repro/internal/milp"
	"repro/internal/scratch"
)

// Kind names a backend implementation.
type Kind int

const (
	// KindBnB is the LP-simplex branch-and-bound backend (the default).
	KindBnB Kind = iota
	// KindCfgDP is the exact configuration dynamic program.
	KindCfgDP
	// KindPortfolio races a set of backends (DefaultPortfolio unless
	// overridden) with deterministic logical-time adjudication.
	KindPortfolio
)

// String returns the CLI name of the kind.
func (k Kind) String() string {
	switch k {
	case KindBnB:
		return "bnb"
	case KindCfgDP:
		return "cfgdp"
	case KindPortfolio:
		return "portfolio"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// ParseKind parses a CLI backend name.
func ParseKind(s string) (Kind, error) {
	switch s {
	case "bnb":
		return KindBnB, nil
	case "cfgdp":
		return KindCfgDP, nil
	case "portfolio":
		return KindPortfolio, nil
	default:
		return 0, fmt.Errorf("oracle: unknown backend %q (want bnb, cfgdp or portfolio)", s)
	}
}

// Selection picks the backend composition for one solve. The zero value
// selects the branch-and-bound backend, preserving the pre-oracle-layer
// behaviour bit for bit.
type Selection struct {
	// Backend is the backend kind to dispatch to.
	Backend Kind
	// Portfolio lists the raced backends when Backend is KindPortfolio;
	// nil selects DefaultPortfolio. Order matters: it is the
	// deterministic tie-break of the race.
	Portfolio []Kind
}

// DefaultPortfolio is the raced set when none is configured: the exact
// DP first (it wins logical-time ties, and on small pattern spaces it is
// the cheap engine), branch-and-bound second (the general fallback).
func DefaultPortfolio() []Kind { return []Kind{KindCfgDP, KindBnB} }

// Limits carries the per-solve resource budgets. All budgets are
// deterministic work counts (nodes, DP states) except the MILP
// wall-clock backstop, which is the one load-dependent limit in the
// pipeline (see milp.Options.TimeLimit).
type Limits struct {
	// MILP tunes the branch-and-bound backend; StopAtFirst is forced on
	// by the bnb backend (the configuration program is a feasibility
	// problem). MaxNodes and TimeLimit must be resolved by the caller
	// (the pipeline applies its own defaults).
	MILP milp.Options
	// MaxStates bounds the configuration DP's state expansions. Zero
	// means DefaultMaxStates.
	MaxStates int64
	// Workers is the number of concurrent lanes a single backend solve
	// may use (main search loop included); <= 1 means sequential. Both
	// intra-solve schemes — speculative LP relaxations in bnb,
	// speculative root-sibling subtrees in cfgdp — keep the returned
	// plan and all result-affecting stats bit-identical to the
	// sequential solve, so Workers is a throughput knob, never a result
	// knob. Under the portfolio each raced backend receives the same
	// Workers value.
	Workers int
	// Arena, when non-nil, supplies the solve's scratch buffers (the
	// configuration DP's residual vectors and demand tables) so
	// repeated solves on one pipeline run stop allocating. The arena is
	// single-goroutine: it is used only by the backend's main lane, and
	// under the portfolio only by the first raced backend that
	// allocates from it — concurrent racers must not share it, so the
	// portfolio clears it for all but the first backend.
	Arena *scratch.Arena
}

// DefaultMaxStates is the DP state budget when Limits.MaxStates is zero.
// One state is a few dozen integer operations, so the default bounds a
// cfgdp solve to a few milliseconds — the same order as the bnb node
// budget it rides alongside.
const DefaultMaxStates int64 = 1 << 19

// Stats is the per-solve accounting of one oracle call.
type Stats struct {
	// Backend is the backend that produced the result — the race winner
	// under the portfolio.
	Backend string
	// Nodes and Pivots are the winner's branch-and-bound node and
	// simplex-pivot counts (bnb only).
	Nodes  int
	Pivots int
	// States is the winner's DP state count (cfgdp only).
	States int64
	// Raced is the number of backends that started (1 unless portfolio).
	Raced int
	// LoserNodes, LoserStates and LoserTime account the work burned by
	// outraced backends before cancellation. Unlike every field above
	// they are load-dependent (how far a loser got before observing the
	// winner's logical deadline depends on scheduling), so they are
	// excluded from the deterministic decision projection of the solver
	// statistics.
	LoserNodes  int
	LoserStates int64
	LoserTime   time.Duration
	// Workers is the lane count the winning solve ran with (1 when
	// sequential); Steals counts speculative work units claimed by
	// helper lanes (LP relaxations in bnb, root subtrees in cfgdp) and
	// SpecUsed the subset the main lane adopted. Like the Loser*
	// fields these are load-dependent utilization telemetry, excluded
	// from the deterministic decision projection.
	Workers  int
	Steals   int64
	SpecUsed int64
}

// ErrLimit reports that the backend exhausted its deterministic work
// budget (nodes or DP states) without deciding feasibility. The pipeline
// treats it like a pattern-space explosion: the guess is rejected and
// the priority-cap ladder may retry with a smaller cap.
var ErrLimit = errors.New("oracle: work budget exhausted")

// ErrInfeasible reports that the configuration program of this guess has
// no integer solution — the guess is below the transformed optimum.
var ErrInfeasible = errors.New("oracle: configuration program infeasible")

// ErrUnsupported reports that the backend cannot solve this model shape
// (the configuration DP only handles decomposed-mode models). Under the
// portfolio an unsupported backend drops out of the race silently.
var ErrUnsupported = errors.New("oracle: model not supported by this backend")

// Backend is one oracle engine. Solve decides the configuration program
// in b and returns its plan: a nil error means feasible, with the plan
// realizing the demand block; otherwise the error wraps ErrInfeasible,
// ErrLimit or ErrUnsupported (or the context's error on cancellation).
// Implementations must be stateless and safe for concurrent use —
// speculative guess evaluation and the portfolio run several solves at
// once — and deterministic: for a fixed model and limits the returned
// plan and stats must not depend on wall-clock or machine load (the
// MILP TimeLimit backstop is the documented exception).
type Backend interface {
	Name() string
	Solve(ctx context.Context, b *cfgmilp.Built, lim Limits) (*cfgmilp.Plan, Stats, error)
}

// For returns the backend for a selection.
func For(sel Selection) Backend {
	switch sel.Backend {
	case KindCfgDP:
		return CfgDP{}
	case KindPortfolio:
		kinds := sel.Portfolio
		if len(kinds) == 0 {
			kinds = DefaultPortfolio()
		}
		var backends []Backend
		for _, k := range kinds {
			if k == KindPortfolio {
				continue // a portfolio cannot nest itself
			}
			backends = append(backends, For(Selection{Backend: k}))
		}
		if len(backends) == 0 {
			return BnB{}
		}
		return Portfolio{Backends: backends}
	default:
		return BnB{}
	}
}
