package oracle

import (
	"context"
	"encoding/binary"
	"fmt"
	"sort"
	"sync"

	"repro/internal/cfgmilp"
	"repro/internal/numeric"
	"repro/internal/pattern"
	"repro/internal/scratch"
)

// CfgDP is the exact configuration dynamic program: it decides the
// decomposed-mode configuration program by searching over pattern
// multiplicities directly, with all bookkeeping in exact integer and
// numeric.Fx fixed-point arithmetic — no LP, no floating point, no
// tolerance anywhere in the decision. It inherits (and trivially
// satisfies) the exactness requirement of the oracle layer: a returned
// plan meets every demand row of the backend-neutral Demand block as a
// bona fide integer inequality.
//
// The search walks the pattern space in index order and chooses a
// multiplicity per pattern, maintaining the residual demand vector
// (priority slot coverage, anonymous X coverage, per-bag avoidance
// counts, and the fixed-point small-job area) with three prunings that
// make it strong exactly when pattern counts are small:
//
//   - dominance: copies of a pattern beyond what its slot coverage can
//     still contribute are never useful — the empty pattern has at least
//     the headroom and avoids every bag — so multiplicities are capped by
//     the residual demands a pattern covers;
//   - suffix bounds: a state whose residual demand exceeds what the
//     remaining patterns could supply on all remaining machines is
//     abandoned immediately;
//   - memoization: residual states proven infeasible are never
//     re-explored (the residual vector fully determines the subproblem).
//
// The first feasible completion in this fixed exploration order is
// returned, so the produced plan is a deterministic function of the
// model. Work is counted in DP states (one state = one search node) and
// bounded by Limits.MaxStates; exceeding the budget returns ErrLimit.
//
// Paper-mode models (with their per-pattern y variable block) are out of
// scope: Solve returns ErrUnsupported, and under the portfolio the DP
// simply drops out of the race.
//
// One deliberate divergence from bnb: the aggregate small-job area row
// is decided here on the Tol-folded fixed-point capacity (headroom
// TCapFx - height), while bnb decides the materialized float row
// (headroom T - height) through the LP with its own ~1e-6 feasibility
// tolerances. Inside that tolerance band — where the float LP is fuzzy
// by construction — the two backends may legitimately disagree on a
// borderline guess. Each backend is individually deterministic and each
// accepted plan satisfies its stated constraint system; the
// backend-differential test asserts decision equivalence on the
// committed corpus, not in the tolerance band.
type CfgDP struct {
	// tick, when set by the portfolio, is the race clock; it receives the
	// cumulative logical work every dpTickInterval states.
	tick tickFunc
}

// Name returns "cfgdp".
func (CfgDP) Name() string { return "cfgdp" }

// dpTickInterval is how many DP states pass between context polls and
// race-clock ticks.
const dpTickInterval = 64

// Solve decides the decomposed configuration program in b exactly.
func (bk CfgDP) Solve(ctx context.Context, b *cfgmilp.Built, lim Limits) (*cfgmilp.Plan, Stats, error) {
	st := Stats{Backend: "cfgdp", Raced: 1}
	if b.Related != nil {
		// Related-family models have per-speed-class variable blocks the
		// DP's residual-demand state does not represent; like paper-mode
		// models they fall to bnb (solo callers degrade, the portfolio
		// drops the DP from the race).
		return nil, st, fmt.Errorf("%w (cfgdp solves bag-constrained models only, got a related-family model)", ErrUnsupported)
	}
	if b.Mode != cfgmilp.ModeDecomposed {
		return nil, st, fmt.Errorf("%w (cfgdp solves decomposed-mode models only, got %s)", ErrUnsupported, b.Mode)
	}
	sp := b.Space
	if len(sp.Patterns) == 0 || sp.Patterns[0].NumJobs != 0 {
		return nil, st, fmt.Errorf("%w (pattern space lacks the empty pattern)", ErrUnsupported)
	}
	d := newDPSolver(b, lim.maxStates(), bk.tick, lim.Arena)
	workers := lim.Workers
	if workers < 1 {
		workers = 1
	}
	found, err := d.dfsRoot(ctx, workers)
	st.States = d.states
	st.Workers = workers
	st.Steals = d.steals
	st.SpecUsed = d.specUsed
	if err != nil {
		return nil, st, err
	}
	if !found {
		return nil, st, fmt.Errorf("%w (configuration DP exhausted %d states)", ErrInfeasible, d.states)
	}
	return &cfgmilp.Plan{Space: sp, XCount: d.xs}, st, nil
}

// dpSolver carries the immutable demand data and the mutable search
// state of one Solve call.
type dpSolver struct {
	sp *pattern.Space
	m  int

	// capFx is the exact pattern-capacity bound (classify.Info.TCapFx);
	// it is also the empty pattern's area headroom.
	capFx numeric.Fx
	// slotDemand concatenates the MLPrio and XTotals demand counts;
	// contrib holds every pattern's per-row contribution (ChiPrio /
	// XMult) as one flat array with stride nSlot — one allocation, cache
	// friendly, and the setup cost stays negligible next to a single
	// branch-and-bound node even on tiny models.
	nSlot      int
	slotDemand []int
	contrib    []int16
	// avoidDemand holds the SmallPrioBags counts; avoids (stride nAvoid)
	// reports whether a pattern avoids the k-th bag (contributes one
	// machine).
	nAvoid      int
	avoidDemand []int
	avoids      []bool
	// headroom[p] is max(0, capFx - height_p), the area a machine of
	// pattern p offers to small jobs.
	headroom []numeric.Fx
	// area is the total small-job area demand.
	area numeric.Fx
	// order is the DFS exploration order over the non-empty patterns:
	// slot-richest first (then enumeration order), so machines that must
	// host many slots are committed early and the aggregate supply bound
	// below prunes hard.
	order []int
	// sufMax (stride nSlot, indexed by order position) is the largest
	// slot-row-k contribution of any pattern at order position >= i (the
	// empty pattern contributes nothing); sufJobs[i] is the largest slot
	// count of any such pattern.
	sufMax  []int16
	sufJobs []int

	maxStates int64
	states    int64
	tick      tickFunc

	// xs is the multiplicity vector under construction; on success it is
	// the returned plan.
	xs []int
	// slotBuf/avoidBuf are per-depth scratch residual vectors (strides
	// nSlot/nAvoid), so the recursion allocates nothing per state.
	slotBuf  []int
	avoidBuf []int
	// slotRes/avoidRes are the root residuals (the demands themselves).
	slotRes  []int
	avoidRes []int

	infeasible map[string]struct{}
	keyBuf     []byte

	// Parallel-mode fields, nil/zero for sequential solves. memoMu
	// guards worker reads of infeasible against main-loop inserts;
	// writeLog records the hash of every inserted key so speculative
	// subtree results can be validated (see cfgdp_parallel.go); steals
	// and specUsed are utilization telemetry.
	memoMu   *sync.RWMutex
	writeLog []uint64
	steals   int64
	specUsed int64
}

// newDPSolver builds the solver's demand tables and scratch buffers.
// When arena is non-nil every buffer that dies with the solve comes from
// it; xs stays heap-allocated because a successful Plan retains it, and
// the infeasibility memo stays a plain map for the same reason the
// memoMinStates gate exists (easy solves never touch it).
func newDPSolver(b *cfgmilp.Built, maxStates int64, tick tickFunc, arena *scratch.Arena) *dpSolver {
	sp := b.Space
	info := b.View.Info
	dem := &b.Demand
	nPat := len(sp.Patterns)
	nSlot := len(dem.MLPrio) + len(dem.XTotals)
	nAvoid := len(dem.SmallPrioBags)

	d := &dpSolver{
		sp:          sp,
		m:           dem.Machines,
		capFx:       info.TCapFx,
		nSlot:       nSlot,
		slotDemand:  arena.Ints(nSlot),
		nAvoid:      nAvoid,
		avoidDemand: arena.Ints(nAvoid),
		contrib:     arena.Int16s(nPat * nSlot),
		avoids:      arena.Bools(nPat * nAvoid),
		headroom:    arena.Fxs(nPat),
		area:        dem.SmallAreaFx,
		maxStates:   maxStates,
		tick:        tick,
		xs:          make([]int, nPat),
		infeasible:  make(map[string]struct{}),
	}
	for k, row := range dem.MLPrio {
		d.slotDemand[k] = row.Count
	}
	for k, row := range dem.XTotals {
		d.slotDemand[len(dem.MLPrio)+k] = row.Count
	}
	for k, row := range dem.SmallPrioBags {
		d.avoidDemand[k] = row.Count
	}
	for p := range sp.Patterns {
		pat := &sp.Patterns[p]
		row := d.contrib[p*nSlot : (p+1)*nSlot]
		for k, dr := range dem.MLPrio {
			row[k] = int16(pat.ChiPrio(dr.Bag, dr.SizeIdx))
		}
		for k, dr := range dem.XTotals {
			row[len(dem.MLPrio)+k] = int16(sp.XMult(pat, dr.SizeIdx))
		}
		av := d.avoids[p*nAvoid : (p+1)*nAvoid]
		for k, dr := range dem.SmallPrioBags {
			av[k] = !pat.ChiBag(dr.Bag)
		}
		if h := d.capFx - pat.HeightFx; h > 0 {
			d.headroom[p] = h
		}
	}
	// Exploration order: slot-richest patterns first, ties by
	// enumeration index — deterministic, and part of the backend's
	// contract (it decides which feasible plan is "first").
	d.order = arena.Ints(nPat - 1)
	for p := 1; p < nPat; p++ {
		d.order[p-1] = p
	}
	sort.SliceStable(d.order, func(a, b int) bool {
		na, nb := sp.Patterns[d.order[a]].NumJobs, sp.Patterns[d.order[b]].NumJobs
		if na != nb {
			return na > nb
		}
		return d.order[a] < d.order[b]
	})
	// Suffix maxima over order positions >= i, for the supply-bound
	// prunings.
	depth := len(d.order)
	d.sufMax = arena.Int16s((depth + 1) * nSlot)
	d.sufJobs = arena.Ints(depth + 1)
	for i := depth - 1; i >= 0; i-- {
		row := d.sufMax[i*nSlot : (i+1)*nSlot]
		copy(row, d.sufMax[(i+1)*nSlot:(i+2)*nSlot])
		for k, c := range d.contrib[d.order[i]*nSlot : d.order[i]*nSlot+nSlot] {
			if c > row[k] {
				row[k] = c
			}
		}
		d.sufJobs[i] = sp.Patterns[d.order[i]].NumJobs // sorted: suffix max
	}
	// Per-depth scratch residuals.
	d.slotBuf = arena.Ints((depth + 1) * nSlot)
	d.avoidBuf = arena.Ints((depth + 1) * nAvoid)
	d.slotRes = arena.Ints(nSlot)
	copy(d.slotRes, d.slotDemand)
	d.avoidRes = arena.Ints(nAvoid)
	copy(d.avoidRes, d.avoidDemand)
	return d
}

// dfs explores multiplicities for the patterns at order positions
// i..end given `left` unassigned machines and the (clamped) residual
// demands. It returns whether a feasible completion exists; on true,
// d.xs holds it (d.xs[0] is the empty-pattern count).
func (d *dpSolver) dfs(ctx context.Context, i, left int, slots, avoid []int, area numeric.Fx) (bool, error) {
	d.states++
	if d.states > d.maxStates {
		return false, errDPLimit(d.maxStates)
	}
	if d.states%dpTickInterval == 0 {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		if d.tick != nil {
			if err := d.tick(d.states * dpStateCost); err != nil {
				return false, err
			}
		}
	}

	if i == len(d.order) {
		// Leaf: the remaining machines run the empty pattern, which
		// supplies no slots, avoids every bag, and offers full headroom.
		for _, r := range slots {
			if r > 0 {
				return false, nil
			}
		}
		for _, r := range avoid {
			if r > left {
				return false, nil
			}
		}
		if area > d.capFx.MulInt(left) {
			return false, nil
		}
		d.xs[0] = left
		return true, nil
	}

	// Supply bounds: can the remaining patterns on the remaining machines
	// still meet the residuals? (The empty pattern keeps avoidance and
	// area suppliable whenever the counts fit.)
	totalRes := 0
	suf := d.sufMax[i*d.nSlot : (i+1)*d.nSlot]
	for k, r := range slots {
		if r > left*int(suf[k]) {
			return false, nil
		}
		totalRes += r
	}
	if totalRes > left*d.sufJobs[i] {
		return false, nil
	}
	for _, r := range avoid {
		if r > left {
			return false, nil
		}
	}
	if area > d.capFx.MulInt(left) {
		return false, nil
	}
	if _, dead := d.infeasible[string(d.stateKey(i, left, slots, avoid, area))]; dead { // no-alloc lookup
		return false, nil
	}

	// Dominance cap: copies of this pattern beyond the residual slot
	// demand it can still serve are never better than empty machines.
	p := d.order[i]
	row := d.contrib[p*d.nSlot : (p+1)*d.nSlot]
	av := d.avoids[p*d.nAvoid : (p+1)*d.nAvoid]
	maxC := 0
	for k, c := range row {
		if c > 0 && slots[k] > 0 {
			if need := (slots[k] + int(c) - 1) / int(c); need > maxC {
				maxC = need
			}
		}
	}
	if maxC > left {
		maxC = left
	}

	childSlots := d.slotBuf[i*d.nSlot : (i+1)*d.nSlot]
	childAvoid := d.avoidBuf[i*d.nAvoid : (i+1)*d.nAvoid]
	for c := maxC; c >= 0; c-- {
		d.xs[p] = c
		for k, r := range slots {
			if r -= c * int(row[k]); r > 0 {
				childSlots[k] = r
			} else {
				childSlots[k] = 0
			}
		}
		for k, r := range avoid {
			if av[k] {
				r -= c
			}
			if r > 0 {
				childAvoid[k] = r
			} else {
				childAvoid[k] = 0
			}
		}
		childArea := area - d.headroom[p].MulInt(c)
		if childArea < 0 {
			childArea = 0
		}
		found, err := d.dfs(ctx, i+1, left-c, childSlots, childAvoid, childArea)
		if err != nil {
			return false, err
		}
		if found {
			return true, nil
		}
	}
	d.xs[p] = 0
	// Memoize the proven-infeasible state — but only once the search is
	// demonstrably non-trivial: easy models finish in a few hundred
	// states and should not pay map-insert allocations for a cache that
	// will never be read. The gate is a deterministic state count, so the
	// explored tree (and the found plan) is unchanged either way. The key
	// is re-serialized here: the recursion above reused the shared key
	// buffer, and (i, left, slots, avoid, area) are unchanged by the loop.
	if d.states > memoMinStates {
		d.memoInsert(string(d.stateKey(i, left, slots, avoid, area)))
	}
	return false, nil
}

// memoInsert records a proven-infeasible state. In parallel mode the
// insert happens under the memo lock and is logged so in-flight
// speculative subtrees that visited the state can be invalidated;
// sequential solves take the direct path.
func (d *dpSolver) memoInsert(key string) {
	if d.memoMu == nil {
		d.infeasible[key] = struct{}{}
		return
	}
	d.memoMu.Lock()
	d.infeasible[key] = struct{}{}
	d.writeLog = append(d.writeLog, dpKeyHash(key))
	d.memoMu.Unlock()
}

// memoMinStates is the state count below which infeasible states are not
// memoized; see dfs.
const memoMinStates = 256

// errDPLimit is the DP's budget-exhaustion error; the parallel adoption
// replay must surface the byte-identical error the recursion produces.
func errDPLimit(maxStates int64) error {
	return fmt.Errorf("%w (configuration DP exceeded %d states)", ErrLimit, maxStates)
}

// stateKey serializes a residual state for the infeasibility memo into
// the solver's reusable buffer. The clamped residual vector (plus
// pattern index and machines left) fully determines the subproblem, so
// equal keys mean equal outcomes.
func (d *dpSolver) stateKey(i, left int, slots, avoid []int, area numeric.Fx) []byte {
	d.keyBuf = appendStateKey(d.keyBuf[:0], i, left, slots, avoid, area)
	return d.keyBuf
}

// appendStateKey is the shared state-key encoding; speculative workers
// use it with their own buffers and must match the main loop byte for
// byte.
func appendStateKey(buf []byte, i, left int, slots, avoid []int, area numeric.Fx) []byte {
	buf = binary.AppendUvarint(buf, uint64(i))
	buf = binary.AppendUvarint(buf, uint64(left))
	for _, r := range slots {
		buf = binary.AppendUvarint(buf, uint64(r))
	}
	for _, r := range avoid {
		buf = binary.AppendUvarint(buf, uint64(r))
	}
	buf = binary.AppendUvarint(buf, uint64(area))
	return buf
}

// maxStates resolves the DP state budget: an explicit MaxStates wins;
// otherwise the budget mirrors the bnb node budget at the logical-time
// exchange rate (so the priority-cap ladder's short rungs shorten the DP
// exactly as they shorten branch-and-bound), falling back to
// DefaultMaxStates.
func (l Limits) maxStates() int64 {
	if l.MaxStates > 0 {
		return l.MaxStates
	}
	if l.MILP.MaxNodes > 0 {
		return int64(l.MILP.MaxNodes) * (bnbNodeCost / dpStateCost)
	}
	return DefaultMaxStates
}
