package oracle

import (
	"context"
	"fmt"

	"repro/internal/cfgmilp"
	"repro/internal/milp"
)

// BnB is the LP-simplex branch-and-bound backend: it solves the
// materialized MILP of the Built model with internal/milp, exactly as the
// pipeline did before the oracle layer existed. It handles both cfgmilp
// modes and arbitrary pattern spaces; its work is bounded by the
// deterministic Limits.MILP.MaxNodes budget (plus the wall-clock
// TimeLimit backstop, the one load-dependent limit in the pipeline).
type BnB struct {
	// tick, when set by the portfolio, is the race clock: it receives the
	// cumulative logical work after every expanded node and aborts the
	// solve by returning a non-nil error.
	tick tickFunc
}

// Name returns "bnb".
func (BnB) Name() string { return "bnb" }

// Solve runs branch and bound on the model. The configuration program is
// a pure feasibility problem, so the first integer-feasible point wins
// (StopAtFirst is forced on).
func (bk BnB) Solve(ctx context.Context, b *cfgmilp.Built, lim Limits) (*cfgmilp.Plan, Stats, error) {
	st := Stats{Backend: "bnb", Raced: 1}
	opt := lim.MILP
	opt.StopAtFirst = true
	opt.Workers = lim.Workers
	st.Workers = lim.Workers
	if st.Workers < 1 {
		st.Workers = 1
	}
	var seenNodes, seenPivots int
	if bk.tick != nil {
		// Any definitive outcome costs at least one node, so the node
		// surcharge is a sound lower bound on the final logical time:
		// when a sub-node-cost finisher has already posted, abort before
		// paying for any solver setup.
		if err := bk.tick(bnbLogical(1, 0)); err != nil {
			return nil, st, err
		}
		prev := opt.Progress
		opt.Progress = func(nodes, pivots int) error {
			seenNodes, seenPivots = nodes, pivots
			if prev != nil {
				if err := prev(nodes, pivots); err != nil {
					return err
				}
			}
			return bk.tick(bnbLogical(nodes, pivots))
		}
	}
	sol, err := milp.Solve(ctx, b.Model, opt)
	if err != nil {
		// Cancellation or a race abort: milp discards the incumbent and
		// the work counts, so report the last counts the progress hook
		// saw.
		st.Nodes, st.Pivots = seenNodes, seenPivots
		return nil, st, err
	}
	st.Nodes, st.Pivots = sol.Nodes, sol.Pivots
	st.Steals, st.SpecUsed = int64(sol.Steals), int64(sol.SpecUsed)
	switch sol.Status {
	case milp.StatusOptimal, milp.StatusFeasible:
		return b.Decode(sol), st, nil
	case milp.StatusInfeasible:
		return nil, st, fmt.Errorf("%w (branch and bound exhausted the search space)", ErrInfeasible)
	default:
		return nil, st, fmt.Errorf("%w (bnb stopped after %d nodes)", ErrLimit, sol.Nodes)
	}
}
