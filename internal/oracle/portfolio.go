package oracle

import (
	"context"
	"errors"
	"fmt"
	"math"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cfgmilp"
)

// Logical-time exchange rates of the race clock, in abstract work units
// roughly proportional to real cost: one simplex pivot (a dense tableau
// sweep) is worth ~32 DP states (a few dozen integer operations each),
// and each branch-and-bound node pays a fixed surcharge for its problem
// clone and feasibility checks. All rates are powers of two so logical
// times are exact int64 products. The rates are part of the
// deterministic contract: changing them changes which backend wins close
// races — everywhere, reproducibly.
const (
	bnbNodeCost int64 = 1024
	lpPivotCost int64 = 128
	dpStateCost int64 = 4
)

// bnbLogical is the branch-and-bound backend's logical clock: cumulative
// pivots dominate (node costs vary hugely; pivot counts track them), with
// a per-node surcharge. Monotone in (nodes, pivots), so in-flight ticks
// never exceed the finisher's posted time.
func bnbLogical(nodes, pivots int) int64 {
	return int64(nodes)*bnbNodeCost + int64(pivots)*lpPivotCost
}

// tickFunc is the race clock hook a raced backend calls with its
// cumulative logical work; a non-nil return aborts the backend's solve.
type tickFunc func(logical int64) error

// errOutraced aborts a raced backend whose logical work has provably
// exceeded the best finisher's logical time.
var errOutraced = errors.New("oracle: outraced")

// parallelRaceThreshold is the pattern count above which the race runs
// its backends on concurrent goroutines. Below it the whole solve is
// microseconds-scale and goroutine spawn/join would dominate, so the
// backends run sequentially — with the identical adjudication rule, so
// the outcome is the same either way (only the wall-clock accounting of
// losers differs).
const parallelRaceThreshold = 256

// Portfolio races its backends on one model and returns the winning
// outcome.
//
// # Determinism
//
// A naive race ("first goroutine to return wins") would make the solver
// nondeterministic: which backend finishes first in wall-clock depends
// on machine load. The portfolio instead adjudicates in *logical time*:
// every backend counts its own deterministic work units (bnb nodes and
// simplex pivots, DP states, converted at the fixed exchange rates
// above), a finisher with a definitive outcome — a feasible plan or a
// proof of infeasibility — posts its logical finish time, and the winner
// is the definitive finisher with the smallest logical time, ties broken
// by position in the backend list. Since each backend's outcome and work
// count are deterministic, the winner — and with it the returned plan —
// is a pure function of the model and limits, independent of scheduling.
//
// Cancellation stays real: a running backend polls the posted deadline
// on its work clock — per simplex pivot, per DP state batch — and aborts
// as soon as its own logical time exceeds it. At that point it cannot
// win anymore (its finish time could only be larger), so killing it
// cannot change the adjudication. Backends whose outcome is not
// definitive (work-budget limits, unsupported model shapes) drop out of
// the race without posting a deadline and without disqualifying the
// others.
//
// Execution strategy is a pure performance choice with no effect on the
// result: above parallelRaceThreshold patterns the backends run on
// concurrent goroutines (losers burn at most the winner's logical time
// plus one poll interval, concurrently); below it they run sequentially
// in list order, where a later backend starts with the deadline already
// posted and so aborts at its very first tick when it has already lost.
//
// The one caveat is inherited from bnb: its wall-clock TimeLimit
// backstop can turn a would-be definitive outcome into a limit outcome
// under extreme load, the same caveat sequential solves have (see
// core.Options.Speculate); on the instances of this repo's experiment
// suite the deterministic node budget always binds first.
type Portfolio struct {
	// Backends is the raced set, in tie-break order.
	Backends []Backend
}

// Name returns "portfolio".
func (Portfolio) Name() string { return "portfolio" }

// raceOutcome is one backend's result plus its race bookkeeping.
type raceOutcome struct {
	plan       *cfgmilp.Plan
	stats      Stats
	err        error
	logical    int64 // logical finish time; valid when definitive
	definitive bool
	elapsed    time.Duration
}

// finish fills the race bookkeeping of a completed backend call.
func (o *raceOutcome) finish() {
	if o.err == nil || errors.Is(o.err, ErrInfeasible) {
		o.definitive = true
		o.logical = bnbLogical(o.stats.Nodes, o.stats.Pivots) + o.stats.States*dpStateCost
	}
}

// Solve races the backends on b and returns the deterministic winner's
// outcome. See the type documentation for the adjudication rules.
func (p Portfolio) Solve(ctx context.Context, b *cfgmilp.Built, lim Limits) (*cfgmilp.Plan, Stats, error) {
	if len(p.Backends) == 0 {
		return nil, Stats{Backend: "portfolio"}, fmt.Errorf("%w (portfolio has no backends)", ErrUnsupported)
	}
	if len(p.Backends) == 1 {
		return p.Backends[0].Solve(ctx, b, lim)
	}
	var outs []raceOutcome
	if b.PatternCount() > parallelRaceThreshold {
		outs = p.raceParallel(ctx, b, lim)
	} else {
		outs = p.raceSequential(ctx, b, lim)
	}
	return p.adjudicate(ctx, outs)
}

// raceParallel runs every backend on its own goroutine against a shared
// atomic deadline.
func (p Portfolio) raceParallel(ctx context.Context, b *cfgmilp.Built, lim Limits) []raceOutcome {
	var deadline atomic.Int64
	deadline.Store(math.MaxInt64)
	post := func(t int64) {
		for {
			cur := deadline.Load()
			if t >= cur || deadline.CompareAndSwap(cur, t) {
				return
			}
		}
	}
	outs := make([]raceOutcome, len(p.Backends))
	var wg sync.WaitGroup
	for i, bk := range p.Backends {
		i, bk := i, bk
		blim := lim
		if i > 0 {
			// The scratch arena is single-goroutine; only the first
			// raced backend may use it.
			blim.Arena = nil
		}
		wg.Add(1)
		go func() {
			defer wg.Done()
			tick := func(logical int64) error {
				if logical > deadline.Load() {
					return errOutraced
				}
				return nil
			}
			start := time.Now()
			plan, st, err := withTick(bk, tick).Solve(ctx, b, blim)
			o := raceOutcome{plan: plan, stats: st, err: err, elapsed: time.Since(start)}
			o.finish()
			if o.definitive {
				post(o.logical)
			}
			outs[i] = o
		}()
	}
	wg.Wait()
	return outs
}

// raceSequential runs the backends one after another in list order
// against the same deadline rule. A backend that starts after a faster
// finisher posted aborts at its first tick, so small models pay no
// goroutine overhead and almost nothing for the losers.
func (p Portfolio) raceSequential(ctx context.Context, b *cfgmilp.Built, lim Limits) []raceOutcome {
	deadline := int64(math.MaxInt64)
	outs := make([]raceOutcome, len(p.Backends))
	for i, bk := range p.Backends {
		blim := lim
		if i > 0 {
			// Mirror raceParallel: one arena user per race, so the
			// allocation profile does not depend on the race strategy.
			blim.Arena = nil
		}
		tick := func(logical int64) error {
			if logical > deadline {
				return errOutraced
			}
			return nil
		}
		start := time.Now()
		plan, st, err := withTick(bk, tick).Solve(ctx, b, blim)
		o := raceOutcome{plan: plan, stats: st, err: err, elapsed: time.Since(start)}
		o.finish()
		if o.definitive && o.logical < deadline {
			deadline = o.logical
		}
		outs[i] = o
	}
	return outs
}

// adjudicate picks the deterministic winner: the smallest logical finish
// time among definitive outcomes, earliest backend on ties.
func (p Portfolio) adjudicate(ctx context.Context, outs []raceOutcome) (*cfgmilp.Plan, Stats, error) {
	agg := Stats{Backend: "portfolio", Raced: len(p.Backends)}
	if err := ctx.Err(); err != nil {
		return nil, agg, err
	}
	winner := -1
	for i := range outs {
		if outs[i].definitive && (winner < 0 || outs[i].logical < outs[winner].logical) {
			winner = i
		}
		// Utilization telemetry sums over the whole raced set: worker
		// lanes are a shared resource, so the solve's speculative
		// activity is the union of every backend's.
		agg.Steals += outs[i].stats.Steals
		agg.SpecUsed += outs[i].stats.SpecUsed
		if outs[i].stats.Workers > agg.Workers {
			agg.Workers = outs[i].stats.Workers
		}
	}
	if winner < 0 {
		// Nobody decided the model. Surface a limit if any backend hit
		// one (the pipeline's degradation ladder reacts to it), else the
		// first backend's error.
		for i := range outs {
			agg.LoserNodes += outs[i].stats.Nodes
			agg.LoserStates += outs[i].stats.States
			agg.LoserTime += outs[i].elapsed
		}
		for i := range outs {
			if errors.Is(outs[i].err, ErrLimit) {
				return nil, agg, outs[i].err
			}
		}
		return nil, agg, outs[0].err
	}

	win := &outs[winner]
	agg.Backend = win.stats.Backend
	agg.Nodes = win.stats.Nodes
	agg.Pivots = win.stats.Pivots
	agg.States = win.stats.States
	for i := range outs {
		if i == winner {
			continue
		}
		agg.LoserNodes += outs[i].stats.Nodes
		agg.LoserStates += outs[i].stats.States
		agg.LoserTime += outs[i].elapsed
	}
	return win.plan, agg, win.err
}

// withTick returns a copy of bk wired to the race clock. Backends
// unknown to the oracle package race untimed: they can still win, but
// only by finishing with less logical work than every timed backend.
func withTick(bk Backend, t tickFunc) Backend {
	switch v := bk.(type) {
	case BnB:
		v.tick = t
		return v
	case CfgDP:
		v.tick = t
		return v
	default:
		return bk
	}
}
