package oracle

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"repro/internal/cfgmilp"
	"repro/internal/workload"
)

// stripUtilization zeroes the load-dependent telemetry so the remaining
// Stats can be compared bit-for-bit across worker counts.
func stripUtilization(st Stats) Stats {
	st.Workers = 0
	st.Steals = 0
	st.SpecUsed = 0
	st.LoserNodes = 0
	st.LoserStates = 0
	st.LoserTime = 0
	return st
}

// TestOracleWorkersBitIdentical solves assorted models with every
// backend at workers 1, 2, 4 and 8 and requires the identical plan,
// stats (minus utilization telemetry) and error surface.
func TestOracleWorkersBitIdentical(t *testing.T) {
	specs := []workload.Spec{
		{Family: workload.Bimodal, Machines: 5, Jobs: 20, Bags: 8, Seed: 37},
		{Family: workload.Adversarial, Machines: 8, Jobs: 40, Bags: 10, Seed: 3},
		{Family: workload.Geometric, Machines: 6, Jobs: 28, Bags: 6, Seed: 11},
		{Family: workload.SmallHeavy, Machines: 7, Jobs: 30, Bags: 7, Seed: 5},
	}
	backends := []Backend{BnB{}, CfgDP{}, For(Selection{Backend: KindPortfolio})}
	for _, spec := range specs {
		built := buildModel(t, cfgmilp.ModeDecomposed, spec)
		for _, bk := range backends {
			base := Limits{MILP: defaultMILP()}
			wantPlan, wantStats, wantErr := bk.Solve(context.Background(), built, base)
			for _, workers := range []int{2, 4, 8} {
				lim := base
				lim.Workers = workers
				plan, st, err := bk.Solve(context.Background(), built, lim)
				if (err == nil) != (wantErr == nil) || (err != nil && err.Error() != wantErr.Error()) {
					t.Fatalf("%s/%s workers=%d: err %v, want %v", spec.Family, bk.Name(), workers, err, wantErr)
				}
				if (plan == nil) != (wantPlan == nil) {
					t.Fatalf("%s/%s workers=%d: plan presence differs", spec.Family, bk.Name(), workers)
				}
				if plan != nil && !reflect.DeepEqual(plan.XCount, wantPlan.XCount) {
					t.Fatalf("%s/%s workers=%d: plan differs\n got %v\nwant %v", spec.Family, bk.Name(), workers, plan.XCount, wantPlan.XCount)
				}
				if got, want := stripUtilization(st), stripUtilization(wantStats); got != want {
					t.Fatalf("%s/%s workers=%d: stats differ\n got %+v\nwant %+v", spec.Family, bk.Name(), workers, got, want)
				}
			}
		}
	}
}

// TestCfgDPWorkersInfeasibleAndLimit checks the parallel DP on the two
// non-plan outcomes: a proof of infeasibility must report the identical
// exhausted state count, and a state-budget limit must surface the
// identical error at the identical count.
func TestCfgDPWorkersInfeasibleAndLimit(t *testing.T) {
	built := buildModel(t, cfgmilp.ModeDecomposed, workload.Spec{
		Family: workload.Adversarial, Machines: 8, Jobs: 40, Bags: 10, Seed: 3,
	})
	for _, maxStates := range []int64{0, 4096, 512, 64, 1} {
		base := Limits{MaxStates: maxStates}
		_, wantStats, wantErr := CfgDP{}.Solve(context.Background(), built, base)
		for _, workers := range []int{2, 4, 8} {
			lim := base
			lim.Workers = workers
			_, st, err := CfgDP{}.Solve(context.Background(), built, lim)
			if (err == nil) != (wantErr == nil) || (err != nil && err.Error() != wantErr.Error()) {
				t.Fatalf("maxStates=%d workers=%d: err %v, want %v", maxStates, workers, err, wantErr)
			}
			if st.States != wantStats.States {
				t.Fatalf("maxStates=%d workers=%d: %d states, want %d", maxStates, workers, st.States, wantStats.States)
			}
		}
	}
}

// TestCfgDPWorkersRepeatedDeterministic re-runs the same parallel solve
// many times: scheduling noise must never leak into the result.
func TestCfgDPWorkersRepeatedDeterministic(t *testing.T) {
	built := buildModel(t, cfgmilp.ModeDecomposed, testSpec())
	lim := Limits{Workers: 4}
	wantPlan, wantStats, err := CfgDP{}.Solve(context.Background(), built, lim)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		plan, st, err := CfgDP{}.Solve(context.Background(), built, lim)
		if err != nil {
			t.Fatalf("run %d: %v", i, err)
		}
		if !reflect.DeepEqual(plan.XCount, wantPlan.XCount) {
			t.Fatalf("run %d: plan differs", i)
		}
		if st.States != wantStats.States {
			t.Fatalf("run %d: %d states, want %d", i, st.States, wantStats.States)
		}
	}
}

// TestBnBWorkersErrorPathStats checks that a raced, aborted parallel
// bnb solve reports the same progress-hook counts as sequential (the
// error path feeds the ladder's stats).
func TestBnBWorkersErrorPathStats(t *testing.T) {
	built := buildModel(t, cfgmilp.ModeDecomposed, testSpec())
	abort := errors.New("raced out")
	run := func(workers int) (Stats, error) {
		bk := BnB{tick: func(logical int64) error {
			if logical > 3*bnbNodeCost {
				return abort
			}
			return nil
		}}
		lim := Limits{MILP: defaultMILP(), Workers: workers}
		_, st, err := bk.Solve(context.Background(), built, lim)
		return st, err
	}
	wantStats, wantErr := run(1)
	for _, workers := range []int{2, 4, 8} {
		st, err := run(workers)
		if !errors.Is(err, wantErr) && err != wantErr {
			t.Fatalf("workers=%d: err %v, want %v", workers, err, wantErr)
		}
		if st.Nodes != wantStats.Nodes || st.Pivots != wantStats.Pivots {
			t.Fatalf("workers=%d: aborted at (%d nodes, %d pivots), want (%d, %d)",
				workers, st.Nodes, st.Pivots, wantStats.Nodes, wantStats.Pivots)
		}
	}
}
