package oracle

import (
	"context"
	"reflect"
	"testing"

	"repro/internal/cfgmilp"
	"repro/internal/scratch"
)

// TestCfgDPArenaReducesAllocs pins the point of Limits.Arena: repeated
// DP solves with a pooled arena must allocate substantially less than
// cold solves, and the results must be bit-identical with and without
// it. The comparison is relative (not an absolute ceiling) so the test
// is stable under the race detector's allocation overhead.
func TestCfgDPArenaReducesAllocs(t *testing.T) {
	built := buildModel(t, cfgmilp.ModeDecomposed, testSpec())

	wantPlan, wantStats, err := CfgDP{}.Solve(context.Background(), built, Limits{})
	if err != nil {
		t.Fatal(err)
	}
	ar := new(scratch.Arena)
	plan, st, err := CfgDP{}.Solve(context.Background(), built, Limits{Arena: ar})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(plan.XCount, wantPlan.XCount) {
		t.Fatalf("arena solve changed the plan:\n got %v\nwant %v", plan.XCount, wantPlan.XCount)
	}
	if got, want := stripUtilization(st), stripUtilization(wantStats); got != want {
		t.Fatalf("arena solve changed the stats:\n got %+v\nwant %+v", got, want)
	}

	cold := testing.AllocsPerRun(50, func() {
		if _, _, err := (CfgDP{}).Solve(context.Background(), built, Limits{}); err != nil {
			t.Fatal(err)
		}
	})
	warm := testing.AllocsPerRun(50, func() {
		ar.Reset()
		if _, _, err := (CfgDP{}).Solve(context.Background(), built, Limits{Arena: ar}); err != nil {
			t.Fatal(err)
		}
	})
	if warm >= cold {
		t.Fatalf("arena solve allocates %.0f allocs/op, cold solve %.0f — arena buys nothing", warm, cold)
	}
	// The arena absorbs the solver's table and scratch allocations; what
	// remains is the retained plan (xs), the memo map and small fixed
	// overhead. Require at least a quarter of the cold allocations gone
	// so a silent un-wiring of the arena fails loudly.
	if warm > 0.75*cold {
		t.Fatalf("arena solve allocates %.0f allocs/op vs %.0f cold: expected >= 25%% reduction", warm, cold)
	}
}
