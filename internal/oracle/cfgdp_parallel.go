// Speculative parallelism for the configuration DP.
//
// The DP explores root-pattern multiplicities c = maxC..0 in a fixed
// order; each sibling subtree (c fixed, depth >= 1) is a deterministic
// function of its residual state and of the infeasibility memo contents
// at the time it runs. Helper lanes therefore evaluate upcoming sibling
// subtrees speculatively while the main lane walks the exact sequential
// order. A speculative run is adoptable only when it is provably
// identical to what the inline recursion would have computed:
//
//   - the worker aborts on ANY memo hit (shared map or its own written
//     states), so its trajectory used no memo entries at all — and a
//     trajectory the sequential solve would have pruned differently can
//     only arise from an entry the worker visited-and-missed;
//   - the worker records a hashed read-set of every visited state, and
//     the main lane keeps an append-only log of the hashes of every key
//     it inserts; at adoption the subtree is valid iff no key written
//     since the task's snapshot is in the worker's read-set (hash
//     collisions only over-invalidate, never under-invalidate);
//   - on adoption the main lane replays the subtree's observable
//     effects exactly: the state counter advances by the worker's
//     count, the every-64-states context poll and race-clock tick fire
//     at the same absolute counts, the state budget errors at the same
//     state, and the worker's would-be memo writes are applied with the
//     real memoMinStates gate evaluated at their true absolute counts.
//
// The found plan, the state count, every race-clock tick and the error
// surface are thus bit-identical to the sequential solve for any worker
// count; only wall-clock time and the utilization telemetry change.
package oracle

import (
	"context"
	"sync"
	"sync/atomic"

	"repro/internal/numeric"
)

// Speculative task outcomes.
const (
	specExhausted = iota // subtree fully explored, no feasible completion
	specFound            // feasible completion found; xs holds it
	specLimited          // relative state count hit the solve's budget
	specAborted          // memo hit / shutdown / overtaken: not adoptable
)

// dpWrite is one would-be memo insert recorded by a worker: the key and
// the worker-relative state count at which the sequential solve would
// have performed it.
type dpWrite struct {
	rel int64
	key string
}

// dpSpec is one speculative sibling-subtree evaluation. The fields
// above done are written by the worker before the done store (release)
// and read by the main lane after observing done (acquire).
type dpSpec struct {
	c      int
	gen    int   // len(writeLog) snapshot at task start
	status int
	rel    int64
	xs     []int
	writes []dpWrite
	reads  map[uint64]struct{}
	done   atomic.Bool
}

// dpCoord coordinates the helper lanes of one parallel cfgdp solve.
type dpCoord struct {
	ctx context.Context
	d   *dpSolver

	mu      sync.Mutex
	cond    *sync.Cond
	pending []int // unclaimed sibling multiplicities, descending
	tasks   map[int]*dpSpec
	steals  int64

	stopped atomic.Bool
	mainCur atomic.Int64 // sibling the main lane is processing
	wg      sync.WaitGroup
}

// dpKeyHash is FNV-1a over a state key; used for worker read-sets and
// the main lane's write log.
func dpKeyHash[T string | []byte](key T) uint64 {
	h := uint64(1469598103934665603)
	for i := 0; i < len(key); i++ {
		h ^= uint64(key[i])
		h *= 1099511628211
	}
	return h
}

// dfsRoot runs the DP with the given lane count. workers <= 1 (or a
// model with no non-empty patterns) is the plain sequential recursion.
func (d *dpSolver) dfsRoot(ctx context.Context, workers int) (bool, error) {
	if workers <= 1 || len(d.order) == 0 {
		return d.dfs(ctx, 0, d.m, d.slotRes, d.avoidRes, d.area)
	}

	// Mirror of the dfs(0, ...) root bookkeeping: state count, budget,
	// poll/tick, supply bounds, memo (empty here), dominance cap.
	slots, avoid, area, left := d.slotRes, d.avoidRes, d.area, d.m
	d.states++
	if d.states > d.maxStates {
		return false, errDPLimit(d.maxStates)
	}
	if d.states%dpTickInterval == 0 {
		if err := ctx.Err(); err != nil {
			return false, err
		}
		if d.tick != nil {
			if err := d.tick(d.states * dpStateCost); err != nil {
				return false, err
			}
		}
	}
	totalRes := 0
	suf := d.sufMax[:d.nSlot]
	for k, r := range slots {
		if r > left*int(suf[k]) {
			return false, nil
		}
		totalRes += r
	}
	if totalRes > left*d.sufJobs[0] {
		return false, nil
	}
	for _, r := range avoid {
		if r > left {
			return false, nil
		}
	}
	if area > d.capFx.MulInt(left) {
		return false, nil
	}
	p := d.order[0]
	row := d.contrib[p*d.nSlot : (p+1)*d.nSlot]
	av := d.avoids[p*d.nAvoid : (p+1)*d.nAvoid]
	maxC := 0
	for k, c := range row {
		if c > 0 && slots[k] > 0 {
			if need := (slots[k] + int(c) - 1) / int(c); need > maxC {
				maxC = need
			}
		}
	}
	if maxC > left {
		maxC = left
	}

	// Publish the sibling subtrees and spawn the helper lanes. The
	// memo lock goes live here: from now on every main-lane insert is
	// logged and every worker read is guarded.
	d.memoMu = new(sync.RWMutex)
	co := &dpCoord{ctx: ctx, d: d, tasks: make(map[int]*dpSpec, maxC+1)}
	co.cond = sync.NewCond(&co.mu)
	co.mainCur.Store(int64(maxC) + 1)
	co.pending = make([]int, 0, maxC+1)
	for c := maxC; c >= 0; c-- {
		co.pending = append(co.pending, c)
	}
	helpers := workers - 1
	if helpers > maxC+1 {
		helpers = maxC + 1
	}
	co.wg.Add(helpers)
	for i := 0; i < helpers; i++ {
		go co.runWorker()
	}
	defer co.shutdown()

	childSlots := d.slotBuf[:d.nSlot]
	childAvoid := d.avoidBuf[:d.nAvoid]
	for c := maxC; c >= 0; c-- {
		co.mainCur.Store(int64(c))
		sp := co.takeForMain(c)
		if sp != nil && sp.done.Load() {
			if ok, found, err := d.adopt(ctx, c, sp); ok {
				if err != nil {
					return false, err
				}
				if found {
					return true, nil
				}
				continue
			}
		}
		// No adoptable speculation: run the exact inline loop body.
		d.xs[p] = c
		for k, r := range slots {
			if r -= c * int(row[k]); r > 0 {
				childSlots[k] = r
			} else {
				childSlots[k] = 0
			}
		}
		for k, r := range avoid {
			if av[k] {
				r -= c
			}
			if r > 0 {
				childAvoid[k] = r
			} else {
				childAvoid[k] = 0
			}
		}
		childArea := area - d.headroom[p].MulInt(c)
		if childArea < 0 {
			childArea = 0
		}
		found, err := d.dfs(ctx, 1, left-c, childSlots, childAvoid, childArea)
		if err != nil {
			return false, err
		}
		if found {
			return true, nil
		}
	}
	d.xs[p] = 0
	if d.states > memoMinStates {
		d.memoInsert(string(d.stateKey(0, left, slots, avoid, area)))
	}
	return false, nil
}

// adopt applies a completed speculative subtree to the main lane's
// state if it is provably identical to the inline computation. ok
// reports whether the result was adopted; if not, the caller must run
// the subtree inline.
func (d *dpSolver) adopt(ctx context.Context, c int, sp *dpSpec) (ok, found bool, err error) {
	if sp.status == specAborted {
		return false, false, nil
	}
	// Invalid if the main lane memoized any state this subtree visited
	// (the sequential recursion would have pruned there). writeLog is
	// appended only by this goroutine, so the slice read is safe.
	for _, h := range d.writeLog[sp.gen:] {
		if _, hit := sp.reads[h]; hit {
			return false, false, nil
		}
	}
	d.specUsed++
	base := d.states
	if sp.status == specLimited {
		// The worker explored maxStates subtree states without
		// finishing, so the sequential solve exhausts its budget inside
		// this subtree (base >= 1) — replay ticks up to the budget and
		// surface the identical error.
		return true, false, d.replayAdvance(ctx, d.maxStates)
	}
	if err := d.replayAdvance(ctx, sp.rel); err != nil {
		return true, false, err
	}
	for _, w := range sp.writes {
		if base+w.rel > memoMinStates {
			d.memoInsert(w.key)
		}
	}
	if sp.status == specFound {
		copy(d.xs, sp.xs)
		d.xs[d.order[0]] = c
		return true, true, nil
	}
	return true, false, nil
}

// replayAdvance advances the state counter by rel adopted states,
// replaying the budget check and the every-dpTickInterval context poll
// and race-clock tick at the same absolute counts the inline recursion
// would have produced.
func (d *dpSolver) replayAdvance(ctx context.Context, rel int64) error {
	target := d.states + rel
	limit := target
	if limit > d.maxStates {
		limit = d.maxStates
	}
	s := d.states - d.states%dpTickInterval + dpTickInterval
	for ; s <= limit; s += dpTickInterval {
		d.states = s
		if err := ctx.Err(); err != nil {
			return err
		}
		if d.tick != nil {
			if err := d.tick(s * dpStateCost); err != nil {
				return err
			}
		}
	}
	if target > d.maxStates {
		d.states = d.maxStates + 1
		return errDPLimit(d.maxStates)
	}
	d.states = target
	return nil
}

// takeForMain claims sibling c for the main lane. A nil return means no
// worker started it (it was still pending) and the main lane must run
// it inline; otherwise the returned task may still be in flight.
func (co *dpCoord) takeForMain(c int) *dpSpec {
	co.mu.Lock()
	defer co.mu.Unlock()
	if len(co.pending) > 0 && co.pending[0] == c {
		co.pending = co.pending[1:]
		return nil
	}
	return co.tasks[c]
}

func (co *dpCoord) shutdown() {
	co.stopped.Store(true)
	co.mu.Lock()
	co.cond.Broadcast()
	co.mu.Unlock()
	co.wg.Wait()
	co.d.steals = co.steals
}

// runWorker is one helper lane: claim the front-most unclaimed sibling
// (the one the main lane will need soonest), evaluate its subtree
// speculatively, publish, repeat.
func (co *dpCoord) runWorker() {
	defer co.wg.Done()
	d := co.d
	depth := len(d.order)
	w := &dpWorker{
		d:        d,
		co:       co,
		slotBuf:  make([]int, (depth+1)*d.nSlot),
		avoidBuf: make([]int, (depth+1)*d.nAvoid),
		xs:       make([]int, len(d.xs)),
	}
	for {
		co.mu.Lock()
		for len(co.pending) == 0 && !co.stopped.Load() {
			co.cond.Wait()
		}
		if co.stopped.Load() {
			co.mu.Unlock()
			return
		}
		c := co.pending[0]
		co.pending = co.pending[1:]
		sp := &dpSpec{c: c}
		co.tasks[c] = sp
		co.steals++
		co.mu.Unlock()
		w.run(sp)
	}
}

// dpWorker is the per-lane reusable evaluation state. Buffers mirror
// the solver's per-depth scratch; read-set, writes and (on a find) xs
// are handed off to the task, so those are allocated per run.
type dpWorker struct {
	d        *dpSolver
	co       *dpCoord
	slotBuf  []int
	avoidBuf []int
	xs       []int
	keyBuf   []byte
	curC     int
	rel      int64
	status   int

	reads   map[uint64]struct{}
	overlay map[uint64]struct{}
	writes  []dpWrite
}

// run evaluates the sibling subtree for sp.c from the root residuals.
func (w *dpWorker) run(sp *dpSpec) {
	d := w.d
	d.memoMu.RLock()
	sp.gen = len(d.writeLog)
	d.memoMu.RUnlock()

	w.curC = sp.c
	w.rel = 0
	w.status = specExhausted
	w.reads = make(map[uint64]struct{})
	w.overlay = make(map[uint64]struct{})
	w.writes = nil

	// Child residuals of the root for multiplicity c, computed exactly
	// as the root loop does.
	p := d.order[0]
	c := sp.c
	row := d.contrib[p*d.nSlot : (p+1)*d.nSlot]
	av := d.avoids[p*d.nAvoid : (p+1)*d.nAvoid]
	childSlots := w.slotBuf[:d.nSlot]
	childAvoid := w.avoidBuf[:d.nAvoid]
	for k, r := range d.slotRes {
		if r -= c * int(row[k]); r > 0 {
			childSlots[k] = r
		} else {
			childSlots[k] = 0
		}
	}
	for k, r := range d.avoidRes {
		if av[k] {
			r -= c
		}
		if r > 0 {
			childAvoid[k] = r
		} else {
			childAvoid[k] = 0
		}
	}
	childArea := d.area - d.headroom[p].MulInt(c)
	if childArea < 0 {
		childArea = 0
	}

	found, ok := w.dfs(1, d.m-c, childSlots, childAvoid, childArea)
	if ok && found {
		w.status = specFound
		sp.xs = append([]int(nil), w.xs...)
	}
	sp.status = w.status
	sp.rel = w.rel
	sp.reads = w.reads
	sp.writes = w.writes
	sp.done.Store(true)
}

// dfs mirrors dpSolver.dfs over worker-private state. The second return
// is false when the evaluation stopped early (budget, abort); w.status
// says why.
func (w *dpWorker) dfs(i, left int, slots, avoid []int, area numeric.Fx) (bool, bool) {
	d := w.d
	w.rel++
	if w.rel > d.maxStates {
		w.status = specLimited
		return false, false
	}
	if w.rel%dpTickInterval == 0 {
		if w.co.stopped.Load() || w.co.ctx.Err() != nil || w.co.mainCur.Load() <= int64(w.curC) {
			w.status = specAborted
			return false, false
		}
	}

	if i == len(d.order) {
		for _, r := range slots {
			if r > 0 {
				return false, true
			}
		}
		for _, r := range avoid {
			if r > left {
				return false, true
			}
		}
		if area > d.capFx.MulInt(left) {
			return false, true
		}
		w.xs[0] = left
		return true, true
	}

	totalRes := 0
	suf := d.sufMax[i*d.nSlot : (i+1)*d.nSlot]
	for k, r := range slots {
		if r > left*int(suf[k]) {
			return false, true
		}
		totalRes += r
	}
	if totalRes > left*d.sufJobs[i] {
		return false, true
	}
	for _, r := range avoid {
		if r > left {
			return false, true
		}
	}
	if area > d.capFx.MulInt(left) {
		return false, true
	}
	w.keyBuf = appendStateKey(w.keyBuf[:0], i, left, slots, avoid, area)
	d.memoMu.RLock()
	_, dead := d.infeasible[string(w.keyBuf)]
	d.memoMu.RUnlock()
	h := dpKeyHash(w.keyBuf)
	if dead {
		// A memo hit would prune here, but whether the sequential
		// recursion sees this entry depends on timing — abandon the
		// speculation rather than risk divergence.
		w.status = specAborted
		return false, false
	}
	if _, own := w.overlay[h]; own {
		// Same for a state this subtree itself proved infeasible: the
		// inline run may or may not have memoized it (the gate depends
		// on the absolute state count).
		w.status = specAborted
		return false, false
	}
	w.reads[h] = struct{}{}

	p := d.order[i]
	row := d.contrib[p*d.nSlot : (p+1)*d.nSlot]
	av := d.avoids[p*d.nAvoid : (p+1)*d.nAvoid]
	maxC := 0
	for k, c := range row {
		if c > 0 && slots[k] > 0 {
			if need := (slots[k] + int(c) - 1) / int(c); need > maxC {
				maxC = need
			}
		}
	}
	if maxC > left {
		maxC = left
	}

	childSlots := w.slotBuf[i*d.nSlot : (i+1)*d.nSlot]
	childAvoid := w.avoidBuf[i*d.nAvoid : (i+1)*d.nAvoid]
	for c := maxC; c >= 0; c-- {
		w.xs[p] = c
		for k, r := range slots {
			if r -= c * int(row[k]); r > 0 {
				childSlots[k] = r
			} else {
				childSlots[k] = 0
			}
		}
		for k, r := range avoid {
			if av[k] {
				r -= c
			}
			if r > 0 {
				childAvoid[k] = r
			} else {
				childAvoid[k] = 0
			}
		}
		childArea := area - d.headroom[p].MulInt(c)
		if childArea < 0 {
			childArea = 0
		}
		found, ok := w.dfs(i+1, left-c, childSlots, childAvoid, childArea)
		if !ok {
			return false, false
		}
		if found {
			return true, true
		}
	}
	w.xs[p] = 0
	// Record the would-be memo insert; the adoption replay applies it
	// with the real memoMinStates gate at the true absolute count.
	w.keyBuf = appendStateKey(w.keyBuf[:0], i, left, slots, avoid, area)
	key := string(w.keyBuf)
	w.writes = append(w.writes, dpWrite{rel: w.rel, key: key})
	w.overlay[dpKeyHash(key)] = struct{}{}
	return false, true
}
