package oracle

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"testing"

	"repro/internal/cfgmilp"
	"repro/internal/classify"
	"repro/internal/greedy"
	"repro/internal/milp"
	"repro/internal/pattern"
	"repro/internal/round"
	"repro/internal/sched"
	"repro/internal/transform"
	"repro/internal/workload"
)

// buildModel constructs the configuration program of one workload
// instance at its bag-LPT makespan guess, exactly as the pipeline would.
func buildModel(t *testing.T, mode cfgmilp.Mode, spec workload.Spec) *cfgmilp.Built {
	t.Helper()
	in := workload.MustGenerate(spec)
	ub, err := greedy.BagLPT(in)
	if err != nil {
		t.Fatal(err)
	}
	scaled, _ := round.ScaleRound(in, ub.Makespan(), 0.5)
	info, err := classify.Classify(scaled, 0.5, classify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := transform.Apply(scaled, info)
	sp, err := pattern.Enumerate(context.Background(), tr.Inst, tr.View, tr.Priority, pattern.Options{})
	if err != nil {
		t.Fatal(err)
	}
	built, err := cfgmilp.Build(context.Background(), tr.Inst, tr.View, tr.Priority, sp, cfgmilp.BuildOptions{Mode: mode})
	if err != nil {
		t.Fatal(err)
	}
	return built
}

func testSpec() workload.Spec {
	return workload.Spec{Family: workload.Bimodal, Machines: 5, Jobs: 20, Bags: 8, Seed: 37}
}

func TestParseKindRoundTrip(t *testing.T) {
	for _, k := range []Kind{KindBnB, KindCfgDP, KindPortfolio} {
		got, err := ParseKind(k.String())
		if err != nil || got != k {
			t.Errorf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := ParseKind("simplex"); err == nil {
		t.Error("ParseKind accepted an unknown backend name")
	}
}

func TestForComposition(t *testing.T) {
	if _, ok := For(Selection{}).(BnB); !ok {
		t.Errorf("zero selection resolved to %T, want BnB", For(Selection{}))
	}
	if _, ok := For(Selection{Backend: KindCfgDP}).(CfgDP); !ok {
		t.Error("cfgdp selection did not resolve to CfgDP")
	}
	pf, ok := For(Selection{Backend: KindPortfolio}).(Portfolio)
	if !ok || len(pf.Backends) != 2 {
		t.Fatalf("portfolio selection resolved to %T with %d backends", For(Selection{Backend: KindPortfolio}), len(pf.Backends))
	}
	if pf.Backends[0].Name() != "cfgdp" || pf.Backends[1].Name() != "bnb" {
		t.Errorf("default portfolio order = [%s %s], want [cfgdp bnb]", pf.Backends[0].Name(), pf.Backends[1].Name())
	}
	// A self-referential portfolio must not recurse.
	nested := For(Selection{Backend: KindPortfolio, Portfolio: []Kind{KindPortfolio, KindBnB}})
	if pf, ok := nested.(Portfolio); !ok || len(pf.Backends) != 1 {
		t.Errorf("nested portfolio resolved to %T", nested)
	}
}

// TestBackendsAgreeOnFeasibility runs every backend on the same feasible
// decomposed model and checks that each returns a plan satisfying the
// demand block.
func TestBackendsAgreeOnFeasibility(t *testing.T) {
	built := buildModel(t, cfgmilp.ModeDecomposed, testSpec())
	for _, bk := range []Backend{BnB{}, CfgDP{}, For(Selection{Backend: KindPortfolio}).(Portfolio)} {
		plan, st, err := bk.Solve(context.Background(), built, Limits{})
		if err != nil {
			t.Fatalf("%s: %v", bk.Name(), err)
		}
		verifyPlan(t, bk.Name(), built, plan)
		if st.Backend == "" {
			t.Errorf("%s: stats missing backend attribution", bk.Name())
		}
	}
}

// verifyPlan checks a plan against the backend-neutral demand block: the
// oracle-layer exactness contract, as integer inequalities.
func verifyPlan(t *testing.T, name string, b *cfgmilp.Built, plan *cfgmilp.Plan) {
	t.Helper()
	sp := b.Space
	total := 0
	for p, c := range plan.XCount {
		if c < 0 {
			t.Fatalf("%s: negative multiplicity x[%d] = %d", name, p, c)
		}
		total += c
	}
	if total > b.Demand.Machines {
		t.Fatalf("%s: plan uses %d machines, instance has %d", name, total, b.Demand.Machines)
	}
	for _, row := range b.Demand.MLPrio {
		got := 0
		for p, c := range plan.XCount {
			got += c * sp.Patterns[p].ChiPrio(row.Bag, row.SizeIdx)
		}
		if got < row.Count {
			t.Errorf("%s: priority slot (bag %d, size %d) covered %d < %d", name, row.Bag, row.SizeIdx, got, row.Count)
		}
	}
	for _, row := range b.Demand.XTotals {
		got := 0
		for p, c := range plan.XCount {
			got += c * sp.XMult(&sp.Patterns[p], row.SizeIdx)
		}
		if got < row.Count {
			t.Errorf("%s: X slots of size %d covered %d < %d", name, row.SizeIdx, got, row.Count)
		}
	}
	for _, row := range b.Demand.SmallPrioBags {
		got := b.Demand.Machines - total // empty machines avoid every bag
		for p, c := range plan.XCount {
			if !sp.Patterns[p].ChiBag(row.Bag) {
				got += c
			}
		}
		if got < row.Count {
			t.Errorf("%s: bag %d avoidance covered %d < %d", name, row.Bag, got, row.Count)
		}
	}
}

func TestCfgDPRejectsPaperMode(t *testing.T) {
	built := buildModel(t, cfgmilp.ModePaper, testSpec())
	_, _, err := CfgDP{}.Solve(context.Background(), built, Limits{})
	if !errors.Is(err, ErrUnsupported) {
		t.Fatalf("cfgdp on a paper-mode model returned %v, want ErrUnsupported", err)
	}
	// The portfolio must still decide the model through bnb.
	plan, st, err := For(Selection{Backend: KindPortfolio}).Solve(context.Background(), built, Limits{})
	if err != nil {
		t.Fatalf("portfolio on paper-mode model: %v", err)
	}
	if st.Backend != "bnb" {
		t.Errorf("paper-mode race won by %q, want bnb", st.Backend)
	}
	verifyPlan(t, "portfolio/paper", built, plan)
}

func TestCfgDPProvesInfeasibility(t *testing.T) {
	// Eight unit jobs of one bag on two machines: at most one job of the
	// bag per machine, so every guess is infeasible. Build the model at a
	// guess that survives classification but cannot be covered.
	in := sched.NewInstance(2)
	for i := 0; i < 8; i++ {
		in.AddJob(1, 0)
	}
	scaled, _ := round.ScaleRound(in, 4, 0.5)
	info, err := classify.Classify(scaled, 0.5, classify.Options{})
	if err != nil {
		t.Fatal(err)
	}
	tr := transform.Apply(scaled, info)
	sp, err := pattern.Enumerate(context.Background(), tr.Inst, tr.View, tr.Priority, pattern.Options{})
	if err != nil {
		t.Fatal(err)
	}
	built, err := cfgmilp.Build(context.Background(), tr.Inst, tr.View, tr.Priority, sp, cfgmilp.BuildOptions{})
	if err != nil {
		// Structural infeasibility at build time is equally fine for the
		// EPTAS; this test wants the DP-level proof, so require a model.
		t.Skipf("model infeasible at build time: %v", err)
	}
	_, _, dpErr := CfgDP{}.Solve(context.Background(), built, Limits{})
	if !errors.Is(dpErr, ErrInfeasible) {
		t.Fatalf("cfgdp returned %v, want ErrInfeasible", dpErr)
	}
	_, _, bnbErr := BnB{}.Solve(context.Background(), built, Limits{MILP: defaultMILP()})
	if !errors.Is(bnbErr, ErrInfeasible) {
		t.Fatalf("bnb returned %v, want ErrInfeasible", bnbErr)
	}
}

func TestCfgDPStateBudget(t *testing.T) {
	built := buildModel(t, cfgmilp.ModeDecomposed, workload.Spec{
		Family: workload.Adversarial, Machines: 8, Jobs: 40, Bags: 10, Seed: 3,
	})
	_, st, err := CfgDP{}.Solve(context.Background(), built, Limits{MaxStates: 1})
	if !errors.Is(err, ErrLimit) {
		t.Fatalf("cfgdp with a 1-state budget returned %v, want ErrLimit", err)
	}
	if st.States < 1 {
		t.Errorf("stats report %d states", st.States)
	}
}

func TestCfgDPCancellation(t *testing.T) {
	built := buildModel(t, cfgmilp.ModeDecomposed, testSpec())
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := (CfgDP{}).Solve(ctx, built, Limits{}); !errors.Is(err, context.Canceled) {
		// Tiny solves may finish before the first poll interval; both
		// outcomes are acceptable, but an unrelated error is not.
		if err != nil && !errors.Is(err, ErrInfeasible) {
			t.Fatalf("canceled cfgdp returned %v", err)
		}
	}
}

// TestPortfolioDeterministicUnderRepetition runs the same race many times
// concurrently with the scheduler perturbed by the concurrency itself;
// every run must return the identical winner, plan and work counts.
func TestPortfolioDeterministicUnderRepetition(t *testing.T) {
	built := buildModel(t, cfgmilp.ModeDecomposed, testSpec())
	pf := For(Selection{Backend: KindPortfolio})
	type run struct {
		plan  *cfgmilp.Plan
		stats Stats
		err   error
	}
	const n = 16
	runs := make([]run, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			plan, st, err := pf.Solve(context.Background(), built, Limits{MILP: defaultMILP()})
			runs[i] = run{plan: plan, stats: st, err: err}
		}(i)
	}
	wg.Wait()
	for i := 0; i < n; i++ {
		if runs[i].err != nil {
			t.Fatalf("run %d: %v", i, runs[i].err)
		}
		if runs[i].stats.Backend != runs[0].stats.Backend {
			t.Fatalf("run %d won by %q, run 0 by %q — the race is not deterministic",
				i, runs[i].stats.Backend, runs[0].stats.Backend)
		}
		if !reflect.DeepEqual(runs[i].plan.XCount, runs[0].plan.XCount) {
			t.Fatalf("run %d returned a different plan than run 0", i)
		}
		if runs[i].stats.Nodes != runs[0].stats.Nodes || runs[i].stats.States != runs[0].stats.States {
			t.Fatalf("run %d winner work (%d nodes, %d states) differs from run 0 (%d, %d)",
				i, runs[i].stats.Nodes, runs[i].stats.States, runs[0].stats.Nodes, runs[0].stats.States)
		}
	}
}

// defaultMILP mirrors the pipeline's resolved branch-and-bound limits.
func defaultMILP() milp.Options {
	return milp.Options{MaxNodes: 500, StopAtFirst: true}
}
