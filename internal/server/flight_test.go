package server

import (
	"context"
	"testing"

	"repro/internal/batch"
)

// TestFlightLeaderPanic: a leader whose fn panics must release the key
// (followers see a zero, unadmitted outcome instead of wedging on done)
// and the next request must lead afresh.
func TestFlightLeaderPanic(t *testing.T) {
	f := newFlight()
	var key [32]byte
	key[0] = 9
	func() {
		defer func() {
			if recover() == nil {
				t.Fatal("panic did not propagate out of flight.do")
			}
		}()
		f.do(context.Background(), key, func() (batch.Outcome, bool) { panic("handler bug") })
	}()

	f.mu.Lock()
	leaked := len(f.m)
	f.mu.Unlock()
	if leaked != 0 {
		t.Fatalf("panicked leader left %d in-flight entries", leaked)
	}
	ran := false
	out, admitted, shared := f.do(context.Background(), key, func() (batch.Outcome, bool) {
		ran = true
		return batch.Outcome{}, true
	})
	if !ran || !admitted || shared || out.Err != nil {
		t.Fatalf("fresh lead after panic: ran=%v admitted=%v shared=%v err=%v", ran, admitted, shared, out.Err)
	}
}
