package server

import (
	"net/http"
	"strings"
	"testing"
	"time"

	"repro/internal/plan"
)

// trainSlowModel teaches the server's cost model that every eps rung
// for the test instance's size takes latency, so tight deadlines force
// the planner down the ladder deterministically.
func trainSlowModel(s *Server, jobs int, latency time.Duration) {
	size := plan.SizeClass(jobs)
	for _, eps := range append([]float64{0.25}, plan.EpsGrid...) {
		s.Planner().Observe(plan.Key{Family: "bags", Size: size, Rung: plan.RungEPTAS,
			EpsIdx: plan.EpsIndex(eps), Backend: "bnb", Workers: 1}, latency)
		s.Planner().Observe(plan.Key{Family: "bags", Size: size, Rung: plan.RungEPTAS,
			EpsIdx: plan.EpsIndex(eps), Backend: "cfgdp", Workers: 1}, latency)
	}
}

// TestAdaptiveSolveColdModel: an adaptive request against a cold model
// keeps the requested configuration and answers bit-identically to the
// plain request, with the quality block reporting the eptas rung.
func TestAdaptiveSolveColdModel(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	in := testInstance(t)

	status, plainDoc := postJSON(t, ts.URL+"/v1/solve", map[string]any{"instance": in, "eps": 0.25})
	if status != http.StatusOK {
		t.Fatalf("plain status %d: %v", status, plainDoc)
	}
	status, doc := postJSON(t, ts.URL+"/v1/solve", map[string]any{
		"instance": in,
		"spec": map[string]any{
			"eps": 0.25, "no_cache": true, "adaptive": true, "deadline_ms": 60000,
		},
	})
	if status != http.StatusOK {
		t.Fatalf("adaptive status %d: %v", status, doc)
	}
	if doc["makespan"] != plainDoc["makespan"] {
		t.Fatalf("cold-model adaptive diverged: %v vs %v", doc["makespan"], plainDoc["makespan"])
	}
	q := doc["quality"].(map[string]any)
	if q["rung"] != plan.RungEPTAS || q["eps_used"].(float64) != 0.25 {
		t.Fatalf("quality %v", q)
	}
	if q["degraded"] == true {
		t.Fatalf("cold model must not degrade: %v", q)
	}
	if b := q["bound"].(float64); b != 1.25 && b != 1 {
		t.Fatalf("bound %v, want 1.25 (or 1 if optimal)", b)
	}
}

// TestAdaptiveDegradesAndCounts: a trained model plus a tight deadline
// degrades to the bag-LPT rung, reports its documented bound, and the
// SLO counters show up in /v1/stats.
func TestAdaptiveDegradesAndCounts(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	in := testInstance(t)
	trainSlowModel(s, len(in.Jobs), 200*time.Millisecond)

	status, doc := postJSON(t, ts.URL+"/v1/solve", map[string]any{
		"instance": in, "eps": 0.25, "adaptive": true, "deadline_ms": 5,
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %v", status, doc)
	}
	q := doc["quality"].(map[string]any)
	if q["rung"] != plan.RungLPT || q["degraded"] != true {
		t.Fatalf("tight deadline must degrade to baglpt: %v", q)
	}
	wantBound := plan.HeuristicBound("bags", in.Machines, plan.RungLPT)
	if b := q["bound"].(float64); b != wantBound && b != 1 {
		t.Fatalf("bound %v, want %g (or 1 if optimal)", b, wantBound)
	}
	if doc["makespan"].(float64) > wantBound*doc["lower_bound"].(float64) {
		t.Fatalf("answer violates its bound: %v > %g*%v", doc["makespan"], wantBound, doc["lower_bound"])
	}

	status, stats := getJSON(t, ts.URL+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats status %d", status)
	}
	p := stats["plan"].(map[string]any)
	if p["adaptive_solves"].(float64) < 1 || p["degraded"].(float64) < 1 {
		t.Fatalf("SLO counters missing the degrade: %v", p)
	}
	if p["observations"].(float64) < 1 || p["model_cells"].(float64) < 1 {
		t.Fatalf("model counters empty: %v", p)
	}
}

// TestAdaptiveUnattainable422: a quality floor no rung can meet within
// the deadline refuses with 422 and the "unattainable" wording.
func TestAdaptiveUnattainable422(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	in := testInstance(t)
	trainSlowModel(s, len(in.Jobs), time.Second)

	status, doc := postJSON(t, ts.URL+"/v1/solve", map[string]any{
		"instance": in, "eps": 0.25, "adaptive": true,
		"deadline_ms": 2, "min_quality": 1.3,
	})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status %d, want 422: %v", status, doc)
	}
	if msg := doc["error"].(string); !strings.Contains(msg, "unattainable") {
		t.Fatalf("error %q must say unattainable", msg)
	}
	if s.unattainable.Load() != 1 {
		t.Fatalf("unattainable counter = %d", s.unattainable.Load())
	}
}

// TestSpecValidation: the new SLO knobs are validated like the legacy
// ones — nonsense values are 400s, not silent defaults.
func TestSpecValidation(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	in := testInstance(t)
	for _, body := range []map[string]any{
		{"instance": in, "deadline_ms": -1},
		{"instance": in, "min_quality": 0.5},
	} {
		status, doc := postJSON(t, ts.URL+"/v1/solve", body)
		if status != http.StatusBadRequest {
			t.Fatalf("body %v: status %d, want 400 (%v)", body, status, doc)
		}
	}
}

// TestObservationFeedsServerModel: plain (non-adaptive) solves teach
// the shared model, so adaptive requests benefit without opting in.
func TestObservationFeedsServerModel(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1})
	in := testInstance(t)
	status, doc := postJSON(t, ts.URL+"/v1/solve", map[string]any{"instance": in, "eps": 0.5})
	if status != http.StatusOK {
		t.Fatalf("status %d: %v", status, doc)
	}
	if st := s.Planner().Snapshot(); st.Observations < 1 {
		t.Fatalf("plain solve did not feed the model: %+v", st)
	}
}
