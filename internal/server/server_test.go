package server

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/workload"
)

// newTestServer starts the service under httptest with a small worker
// pool and a shared cache.
func newTestServer(t *testing.T, cfg Config) (*Server, *httptest.Server) {
	t.Helper()
	s := New(cfg)
	ts := httptest.NewServer(s.Handler())
	t.Cleanup(ts.Close)
	return s, ts
}

func testInstance(t *testing.T) *sched.Instance {
	t.Helper()
	in := sched.NewInstance(4)
	sizes := []float64{0.9, 0.85, 0.8, 0.7, 0.6, 0.55, 0.5, 0.4, 0.3, 0.25, 0.2, 0.1}
	for i, size := range sizes {
		in.AddJob(size, i%6)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	return in
}

// postJSON posts body and returns the status and decoded JSON document.
func postJSON(t *testing.T, url string, body any) (int, map[string]any) {
	t.Helper()
	raw, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, doc
}

func getJSON(t *testing.T, url string) (int, map[string]any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var doc map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&doc); err != nil {
		t.Fatalf("decoding response: %v", err)
	}
	return resp.StatusCode, doc
}

func TestSolveEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	in := testInstance(t)
	want, err := core.Solve(in, core.Options{Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}

	status, doc := postJSON(t, ts.URL+"/v1/solve", map[string]any{"instance": in, "eps": 0.5})
	if status != http.StatusOK {
		t.Fatalf("status %d, body %v", status, doc)
	}
	if got := doc["makespan"].(float64); got != want.Makespan {
		t.Fatalf("makespan %.17g, want %.17g", got, want.Makespan)
	}
	if got := doc["lower_bound"].(float64); got != want.LowerBound {
		t.Fatalf("lower_bound %.17g, want %.17g", got, want.LowerBound)
	}
	asg := doc["assignment"].([]any)
	if len(asg) != len(in.Jobs) {
		t.Fatalf("assignment length %d, want %d", len(asg), len(in.Jobs))
	}
	for i, m := range want.Schedule.Machine {
		if int(asg[i].(float64)) != m {
			t.Fatalf("assignment[%d] = %v, want %d", i, asg[i], m)
		}
	}
	if _, ok := doc["elapsed_us"]; !ok {
		t.Fatalf("response missing elapsed_us: %v", doc)
	}
}

// TestSolveWarmCacheIdentical replays one request and checks the second
// response is bit-identical and served from the shared cache.
func TestSolveWarmCacheIdentical(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	req := map[string]any{"instance": testInstance(t), "eps": 0.4}
	status, cold := postJSON(t, ts.URL+"/v1/solve", req)
	if status != http.StatusOK {
		t.Fatalf("cold status %d: %v", status, cold)
	}
	status, warm := postJSON(t, ts.URL+"/v1/solve", req)
	if status != http.StatusOK {
		t.Fatalf("warm status %d: %v", status, warm)
	}
	if cold["makespan"] != warm["makespan"] || !reflect.DeepEqual(cold["assignment"], warm["assignment"]) {
		t.Fatalf("warm response differs from cold:\n%v\nvs\n%v", warm, cold)
	}
	if hits := s.Cache().Stats().Hits; hits == 0 {
		t.Fatalf("warm replay produced no shared-cache hits")
	}
	if warm["cache_misses"].(float64) != 0 {
		t.Fatalf("warm solve reported %v cache misses, want 0", warm["cache_misses"])
	}
}

func TestSolveBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	in := testInstance(t)
	cases := []struct {
		name string
		body string
	}{
		{"malformed JSON", `{"instance": `},
		{"unknown field", `{"instanec": {}}`},
		{"missing instance", `{"eps": 0.5}`},
		{"bad eps", mustJSON(map[string]any{"instance": in, "eps": 1.5})},
		{"bad backend", mustJSON(map[string]any{"instance": in, "backend": "gurobi"})},
		{"negative timeout", mustJSON(map[string]any{"instance": in, "timeout_ms": -1})},
		{"invalid instance", `{"instance": {"machines": 0, "jobs": []}}`},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			resp, err := http.Post(ts.URL+"/v1/solve", "application/json", bytes.NewReader([]byte(tc.body)))
			if err != nil {
				t.Fatal(err)
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusBadRequest {
				t.Fatalf("status %d, want 400", resp.StatusCode)
			}
		})
	}

	// Wrong method is routed by the mux itself.
	resp, err := http.Get(ts.URL + "/v1/solve")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/solve status %d, want 405", resp.StatusCode)
	}
}

func mustJSON(v any) string {
	b, err := json.Marshal(v)
	if err != nil {
		panic(err)
	}
	return string(b)
}

// TestSolveDeadline: a 1ms budget on an instance that takes tens of
// milliseconds cold must propagate down the context plumbing and come
// back as 504. The instance must be well past Go's ~10ms async
// preemption threshold: on a GOMAXPROCS=1 machine the deadline timer
// cannot fire while the solver goroutine is CPU-bound, so a too-fast
// solve would nondeterministically beat its own deadline.
func TestSolveDeadline(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	in := workload.MustGenerate(workload.Spec{Family: workload.Bimodal, Machines: 24, Jobs: 3000, Bags: 20, Seed: 7})
	status, doc := postJSON(t, ts.URL+"/v1/solve", map[string]any{
		"instance": in, "eps": 0.02, "timeout_ms": 1, "no_cache": true,
	})
	if status != http.StatusGatewayTimeout {
		t.Fatalf("status %d (%v), want 504", status, doc)
	}
	if s.timeouts.Load() == 0 {
		t.Fatalf("timeout not counted")
	}
}

// TestSolveInfeasible: a well-formed instance that cannot be scheduled
// (a bag with more jobs than machines) is a 422, not a 400 or 500.
func TestSolveInfeasible(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	in := sched.NewInstance(2)
	for i := 0; i < 3; i++ {
		in.AddJob(0.5, 0) // three jobs of one bag on two machines
	}
	status, doc := postJSON(t, ts.URL+"/v1/solve", map[string]any{"instance": in})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("status %d (%v), want 422", status, doc)
	}
}

func TestBatchEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	in := testInstance(t)
	in2 := sched.NewInstance(3)
	for i, size := range []float64{0.9, 0.8, 0.7, 0.5, 0.4, 0.2} {
		in2.AddJob(size, i%3)
	}
	want1, err := core.Solve(in, core.Options{Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	want2, err := core.Solve(in2, core.Options{Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}

	// The duplicate of in exercises coalescing/caching inside one batch.
	status, doc := postJSON(t, ts.URL+"/v1/batch", map[string]any{
		"instances": []any{in, in2, in},
	})
	if status != http.StatusOK {
		t.Fatalf("status %d: %v", status, doc)
	}
	outs := doc["outcomes"].([]any)
	if len(outs) != 3 {
		t.Fatalf("%d outcomes, want 3", len(outs))
	}
	wantMk := []float64{want1.Makespan, want2.Makespan, want1.Makespan}
	for i, o := range outs {
		om := o.(map[string]any)
		if errStr, ok := om["error"]; ok {
			t.Fatalf("outcome %d failed: %v", i, errStr)
		}
		if got := om["makespan"].(float64); got != wantMk[i] {
			t.Fatalf("outcome %d makespan %.17g, want %.17g", i, got, wantMk[i])
		}
	}

	status, _ = postJSON(t, ts.URL+"/v1/batch", map[string]any{"instances": []any{}})
	if status != http.StatusBadRequest {
		t.Fatalf("empty batch status %d, want 400", status)
	}
}

// TestBatchWiderThanAdmission: a single batch larger than the whole
// admission window (workers+depth) on an otherwise idle server must
// complete every item — the handler's bounded fan-out queues excess
// items inside the request instead of racing them all into 'queue
// full' rejections.
func TestBatchWiderThanAdmission(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 0})
	instances := make([]any, 6)
	for i := range instances {
		in := sched.NewInstance(3)
		for j, size := range []float64{0.9, 0.8, 0.7, 0.6, 0.5, 0.4} {
			in.AddJob(size+float64(i)/100, j%3)
		}
		instances[i] = in
	}
	status, doc := postJSON(t, ts.URL+"/v1/batch", map[string]any{"instances": instances})
	if status != http.StatusOK {
		t.Fatalf("status %d: %v", status, doc)
	}
	for i, o := range doc["outcomes"].([]any) {
		om := o.(map[string]any)
		if errStr, ok := om["error"]; ok {
			t.Fatalf("outcome %d failed on an idle server: %v", i, errStr)
		}
	}
}

func TestHealthz(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	status, doc := getJSON(t, ts.URL+"/healthz")
	if status != http.StatusOK || doc["status"] != "ok" {
		t.Fatalf("healthz = %d %v", status, doc)
	}
}

func TestStatsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	in := testInstance(t)
	for i := 0; i < 3; i++ {
		if status, doc := postJSON(t, ts.URL+"/v1/solve", map[string]any{"instance": in}); status != http.StatusOK {
			t.Fatalf("solve %d: %d %v", i, status, doc)
		}
	}
	status, doc := getJSON(t, ts.URL+"/v1/stats?window=2")
	if status != http.StatusOK {
		t.Fatalf("stats status %d", status)
	}
	srv := doc["server"].(map[string]any)
	if got := srv["solves"].(float64); got != 3 {
		t.Fatalf("solves = %v, want 3", got)
	}
	cache := doc["cache"].(map[string]any)
	if cache["hits"].(float64) == 0 || cache["misses"].(float64) == 0 {
		t.Fatalf("cache saw no traffic: %v", cache)
	}
	lat := doc["latency"].(map[string]any)
	if lat["count"].(float64) != 3 {
		t.Fatalf("latency count = %v, want 3", lat["count"])
	}
	win := doc["window"].(map[string]any)
	if win["count"].(float64) != 2 {
		t.Fatalf("window count = %v, want 2", win["count"])
	}

	if status, _ := getJSON(t, ts.URL+"/v1/stats?window=bogus"); status != http.StatusBadRequest {
		t.Fatalf("bogus window status %d, want 400", status)
	}
}

func TestMetricsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	if status, doc := postJSON(t, ts.URL+"/v1/solve", map[string]any{"instance": testInstance(t)}); status != http.StatusOK {
		t.Fatalf("solve: %d %v", status, doc)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("metrics status %d", resp.StatusCode)
	}
	for _, want := range []string{
		"bagsched_requests_total",
		"bagsched_solves_total 1",
		"bagsched_cache_misses_total",
		"bagsched_queue_running 0",
		"bagsched_solve_latency_p50_microseconds",
	} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("metrics output missing %q", want)
		}
	}
}

// TestAdmissionControl fills the one worker slot and zero-depth queue
// with a blocked solve, then checks the next request bounces with 503.
func TestAdmissionControl(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 1, QueueDepth: 0})
	release := make(chan struct{})
	defer close(release)
	blockedIn := testInstance(t)
	opt := core.Options{Eps: 0.5}
	opt.MILP.Progress = func(nodes, pivots int) error {
		<-release
		return nil
	}
	go s.queue.Do(context.Background(), batch.Task{Instance: blockedIn, Options: opt})
	deadline := time.Now().Add(5 * time.Second)
	for s.queue.Running() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("blocker never started")
		}
		time.Sleep(time.Millisecond)
	}

	status, doc := postJSON(t, ts.URL+"/v1/solve", map[string]any{"instance": testInstance(t)})
	if status != http.StatusServiceUnavailable {
		t.Fatalf("status %d (%v), want 503", status, doc)
	}
	if s.queue.Rejected() == 0 {
		t.Fatal("rejection not counted")
	}
}

// TestSharedCacheHammer is the serving-layer race test: 32 concurrent
// clients replay the committed fixture corpus against one server (one
// shared cache), and every response must be bit-identical to the same
// request solved with the shared cache bypassed. Run under -race this
// doubles as the data-race check on the cache, flight group and queue.
func TestSharedCacheHammer(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 4})
	all, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.json"))
	if err != nil || len(all) == 0 {
		t.Fatalf("no fixtures: %v", err)
	}
	var files []string
	for _, f := range all {
		// Skip churn traces (base+deltas documents, not plain instances).
		if strings.HasPrefix(filepath.Base(f), "churn_") {
			continue
		}
		files = append(files, f)
	}
	type fixture struct {
		name string
		in   *sched.Instance
		fam  string
		want float64
	}
	var fixtures []fixture
	for _, path := range files {
		raw, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		var in sched.Instance
		if err := json.Unmarshal(raw, &in); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		// Speed fixtures must be solved as the related family; the bag
		// default rejects them.
		fam := "bags"
		if !in.Uniform() {
			fam = "related"
		}
		// The no-shared-cache reference, served by the same process.
		status, doc := postJSON(t, ts.URL+"/v1/solve", map[string]any{"instance": &in, "family": fam, "no_cache": true})
		if status != http.StatusOK {
			t.Fatalf("%s baseline: %d %v", path, status, doc)
		}
		fixtures = append(fixtures, fixture{filepath.Base(path), &in, fam, doc["makespan"].(float64)})
	}

	const clients = 32
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			for i, f := range fixtures {
				// Stagger the corpus so clients overlap on different
				// fixtures at different times.
				f = fixtures[(i+c)%len(fixtures)]
				status, doc := postJSON(t, ts.URL+"/v1/solve", map[string]any{"instance": f.in, "family": f.fam})
				if status == http.StatusServiceUnavailable {
					continue // admission shedding is legal under the hammer
				}
				if status != http.StatusOK {
					t.Errorf("client %d %s: status %d (%v)", c, f.name, status, doc)
					return
				}
				if got := doc["makespan"].(float64); got != f.want {
					t.Errorf("client %d %s: makespan %.17g, want %.17g (cached vs uncached must be bit-identical)",
						c, f.name, got, f.want)
					return
				}
			}
		}(c)
	}
	wg.Wait()
}

// TestFlightCoalesces drives the flight group directly: one leader
// blocks inside fn, followers pile in, and fn must have run exactly
// once when everyone returns the same outcome.
func TestFlightCoalesces(t *testing.T) {
	f := newFlight()
	var key [32]byte
	key[0] = 1
	runs := 0
	entered := make(chan struct{})
	release := make(chan struct{})
	res := &core.Result{Makespan: 42}

	outs := make(chan batch.Outcome, 5)
	shareds := make(chan bool, 5)
	lead := func() (batch.Outcome, bool) {
		runs++
		close(entered)
		<-release
		return batch.Outcome{Result: res}, true
	}
	go func() {
		out, _, shared := f.do(context.Background(), key, lead)
		outs <- out
		shareds <- shared
	}()
	<-entered
	for i := 0; i < 4; i++ {
		go func() {
			out, _, shared := f.do(context.Background(), key, func() (batch.Outcome, bool) {
				t.Error("follower ran fn")
				return batch.Outcome{}, true
			})
			outs <- out
			shareds <- shared
		}()
	}
	// Followers must be waiting on the leader, not running fn. Give the
	// goroutines a moment to join before releasing.
	time.Sleep(10 * time.Millisecond)
	close(release)

	sharedCount := 0
	for i := 0; i < 5; i++ {
		out := <-outs
		if out.Result != res {
			t.Fatalf("outcome %d is not the leader's result: %+v", i, out)
		}
		if <-shareds {
			sharedCount++
		}
	}
	if runs != 1 {
		t.Fatalf("fn ran %d times, want 1", runs)
	}
	if sharedCount != 4 {
		t.Fatalf("%d shared outcomes, want 4", sharedCount)
	}
}

func TestLatencyRing(t *testing.T) {
	l := NewLatencyRing(4)
	if sum := l.Percentiles(0); sum.Count != 0 {
		t.Fatalf("empty ring summary %+v", sum)
	}
	for _, ms := range []int64{10, 20, 30, 40, 50, 60} { // wraps: keeps 30..60
		l.Record(time.Duration(ms) * time.Millisecond)
	}
	all := l.Percentiles(0)
	if all.Count != 4 || all.Total != 6 {
		t.Fatalf("summary %+v, want count 4 of total 6", all)
	}
	if all.Max != 60000 || all.P50 != 40000 {
		t.Fatalf("summary %+v, want max 60000us p50 40000us", all)
	}
	last2 := l.Percentiles(2)
	if last2.Count != 2 || last2.P50 != 50000 || last2.Max != 60000 {
		t.Fatalf("window summary %+v, want the last two samples", last2)
	}
}

func TestStatsPayloadShape(t *testing.T) {
	s := New(Config{Workers: 2})
	payload := s.statsPayload(8)
	raw, err := json.Marshal(payload)
	if err != nil {
		t.Fatal(err)
	}
	for _, key := range []string{"uptime_s", "server", "cache", "latency", "window"} {
		if !bytes.Contains(raw, []byte(fmt.Sprintf("%q", key))) {
			t.Errorf("stats payload missing %q: %s", key, raw)
		}
	}
}

// relatedTestInstance is a small uniformly-related instance (singleton
// bags, two speed classes).
func relatedTestInstance(t *testing.T) *sched.Instance {
	t.Helper()
	in := sched.NewRelatedInstance([]float64{1, 1, 2, 4})
	sizes := []float64{2.5, 1.8, 1.1, 0.9, 0.6, 0.4, 0.3, 0.2}
	for i, size := range sizes {
		in.AddJob(size, i)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	return in
}

// TestFamilyField pins the per-request problem-family selection: a
// related instance solves under family=related, is rejected by the bag
// default (422: well-formed body, unsolvable as asked), an unknown
// family is a 400 client error, and the per-family counters in
// /v1/stats attribute the solve to the right family.
func TestFamilyField(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	rel := relatedTestInstance(t)

	status, doc := postJSON(t, ts.URL+"/v1/solve", map[string]any{"instance": rel, "family": "related"})
	if status != http.StatusOK {
		t.Fatalf("family=related: status %d (%v)", status, doc)
	}
	if doc["makespan"].(float64) <= 0 {
		t.Fatalf("family=related: missing makespan in %v", doc)
	}

	status, doc = postJSON(t, ts.URL+"/v1/solve", map[string]any{"instance": rel})
	if status != http.StatusUnprocessableEntity {
		t.Fatalf("bag default on a speed instance: status %d (%v), want 422", status, doc)
	}

	status, doc = postJSON(t, ts.URL+"/v1/solve", map[string]any{"instance": rel, "family": "nope"})
	if status != http.StatusBadRequest {
		t.Fatalf("unknown family: status %d (%v), want 400", status, doc)
	}

	// A bags solve for contrast, then check the per-family attribution.
	status, doc = postJSON(t, ts.URL+"/v1/solve", map[string]any{"instance": testInstance(t)})
	if status != http.StatusOK {
		t.Fatalf("bags solve: status %d (%v)", status, doc)
	}

	status, stats := getJSON(t, ts.URL+"/v1/stats?window=8")
	if status != http.StatusOK {
		t.Fatalf("stats: %d", status)
	}
	fams, ok := stats["families"].(map[string]any)
	if !ok {
		t.Fatalf("stats payload has no families section: %v", stats)
	}
	for name, want := range map[string]float64{"related": 1, "bags": 1, "identical": 0} {
		fs, ok := fams[name].(map[string]any)
		if !ok {
			t.Fatalf("families section missing %q: %v", name, fams)
		}
		if got := fs["solves"].(float64); got != want {
			t.Errorf("families[%q].solves = %v, want %v", name, got, want)
		}
		if _, ok := fs["latency"]; !ok {
			t.Errorf("families[%q] has no latency digest", name)
		}
		if _, ok := fs["window"]; !ok {
			t.Errorf("families[%q] has no window digest (requested window=8)", name)
		}
	}

	// The family must also separate coalescing and metrics exposure.
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	raw, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Contains(raw, []byte(`bagsched_family_solves_total{family="related"} 1`)) {
		t.Errorf("metrics missing the related family counter:\n%s", raw)
	}
}

// TestResolveEndpoint: solve, feed the response's prior facts into
// /v1/resolve, and check the incremental answer is bit-identical to a
// from-scratch solve of the post-delta instance — and that the resolve
// shows up in the stats counters.
func TestResolveEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 2})
	in := testInstance(t)

	status, prior := postJSON(t, ts.URL+"/v1/solve", map[string]any{"instance": in, "eps": 0.5})
	if status != http.StatusOK {
		t.Fatalf("prior solve: status %d (%v)", status, prior)
	}
	priorGuess, _ := prior["final_guess"].(float64) // omitted when 0

	delta := sched.Delta{Resize: []sched.Resize{{ID: in.Jobs[0].ID, Size: 0.95}}}
	status, doc := postJSON(t, ts.URL+"/v1/resolve", map[string]any{
		"instance":       in,
		"delta":          delta,
		"prior_makespan": prior["makespan"],
		"prior_guess":    priorGuess,
		"eps":            0.5,
	})
	if status != http.StatusOK {
		t.Fatalf("resolve: status %d (%v)", status, doc)
	}

	post, _, err := delta.Apply(in)
	if err != nil {
		t.Fatal(err)
	}
	want, err := core.Solve(post, core.Options{Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if got := doc["makespan"].(float64); got != want.Makespan {
		t.Fatalf("resolve makespan %.17g, want from-scratch %.17g", got, want.Makespan)
	}
	asg := doc["assignment"].([]any)
	for i, m := range want.Schedule.Machine {
		if int(asg[i].(float64)) != m {
			t.Fatalf("assignment[%d] = %v, want %d", i, asg[i], m)
		}
	}

	status, stats := getJSON(t, ts.URL+"/v1/stats")
	if status != http.StatusOK {
		t.Fatalf("stats: %d", status)
	}
	server := stats["server"].(map[string]any)
	if server["resolves"].(float64) != 1 {
		t.Fatalf("stats report %v resolves, want 1", server["resolves"])
	}
}

// TestResolveRepairEndpoint: with "repair" and a prior assignment, a
// small resize is absorbed by the placement repair (no search) and the
// response carries the repair counters.
func TestResolveRepairEndpoint(t *testing.T) {
	s, ts := newTestServer(t, Config{Workers: 2})
	// The repair instance from the core tests: bag-LPT is suboptimal, so
	// the solve does not short-circuit on a provably optimal fallback.
	in := sched.NewInstance(2)
	in.AddJob(3, 0)
	in.AddJob(3, 1)
	in.AddJob(2, 2)
	in.AddJob(2, 3)
	in.AddJob(2, 4)

	status, prior := postJSON(t, ts.URL+"/v1/solve", map[string]any{"instance": in, "eps": 0.33})
	if status != http.StatusOK {
		t.Fatalf("prior solve: status %d (%v)", status, prior)
	}
	priorGuess, _ := prior["final_guess"].(float64)

	delta := sched.Delta{Resize: []sched.Resize{{ID: in.Jobs[4].ID, Size: 2.1}}}
	status, doc := postJSON(t, ts.URL+"/v1/resolve", map[string]any{
		"instance":         in,
		"delta":            delta,
		"prior_makespan":   prior["makespan"],
		"prior_guess":      priorGuess,
		"prior_assignment": prior["assignment"],
		"repair":           true,
		"eps":              0.33,
	})
	if status != http.StatusOK {
		t.Fatalf("resolve: status %d (%v)", status, doc)
	}
	if doc["repaired"] != true {
		t.Fatalf("repair fast path did not engage: %v", doc)
	}
	if doc["guesses"].(float64) != 0 {
		t.Fatalf("repaired resolve reports %v guesses, want 0", doc["guesses"])
	}
	if doc["repair_kept"].(float64) != 4 || doc["repair_moved"].(float64) != 1 {
		t.Fatalf("repair counters kept=%v moved=%v, want 4/1", doc["repair_kept"], doc["repair_moved"])
	}
	if got := s.repairs.Load(); got != 1 {
		t.Fatalf("server counted %d repairs, want 1", got)
	}
}

// TestResolveBadRequests covers the resolve-specific 400s (the shared
// knob validation is covered by TestSolveBadRequests) and the 422 of a
// well-formed but inapplicable delta.
func TestResolveBadRequests(t *testing.T) {
	_, ts := newTestServer(t, Config{Workers: 1})
	in := testInstance(t)
	base := func() map[string]any {
		return map[string]any{"instance": in, "delta": sched.Delta{}, "prior_makespan": 1.0}
	}
	cases := []struct {
		name   string
		mutate func(map[string]any)
		status int
	}{
		{"negative prior makespan", func(m map[string]any) { m["prior_makespan"] = -1.0 }, http.StatusBadRequest},
		{"assignment length mismatch", func(m map[string]any) { m["prior_assignment"] = []int{0} }, http.StatusBadRequest},
		{"repair without assignment", func(m map[string]any) { m["repair"] = true }, http.StatusBadRequest},
		{"unknown field", func(m map[string]any) { m["nope"] = 1 }, http.StatusBadRequest},
		{"inapplicable delta", func(m map[string]any) {
			m["delta"] = sched.Delta{Remove: []sched.JobID{9999}}
		}, http.StatusUnprocessableEntity},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			body := base()
			tc.mutate(body)
			status, doc := postJSON(t, ts.URL+"/v1/resolve", body)
			if status != tc.status {
				t.Fatalf("status %d (%v), want %d", status, doc, tc.status)
			}
		})
	}
}
