// Package server is the long-running solve service: an HTTP/JSON front
// end that shares one bounded cross-request memo cache (internal/memo)
// and one admission-controlled worker queue (internal/batch) across all
// requests, so repeated and overlapping workloads stop re-paying the
// EPTAS guess-enumeration cost.
//
// Endpoints:
//
//	POST /v1/solve   {"instance": {...}, "eps": 0.5, "backend": "bnb",
//	                  "family": "bags", "timeout_ms": 1000,
//	                  "no_cache": false, "oracle_workers": 4,
//	                  "deadline_ms": 50, "min_quality": 1.5,
//	                  "adaptive": true}
//	                 — the solve knobs can also arrive nested under
//	                 "spec", which wins wholesale over the flat fields
//	POST /v1/batch   {"instances": [{...}, ...], "eps": 0.5, ...}
//	POST /v1/resolve {"instance": {...}, "delta": {"resize": [...]},
//	                  "prior_makespan": 3.2, "prior_guess": 3.1,
//	                  "prior_assignment": [0,1,...], "repair": false, ...}
//	GET  /v1/stats   cache/queue/latency counters, per-family solve
//	                 counts and latencies; ?window=N adds percentiles
//	                 over the last N solves
//	GET  /healthz    liveness
//	GET  /metrics    Prometheus-style text metrics
//	GET  /debug/vars expvar (includes the same stats payload after
//	                 PublishExpvar)
//
// Request lifecycle: decode and validate (400 on malformed bodies),
// derive the per-request deadline (timeout_ms clamped to the server
// maximum, 504 when it expires), coalesce with identical in-flight
// requests (one solve, many responses), then run through the shared
// queue — admission control rejects work beyond workers+depth with 503
// instead of queueing unboundedly. Every admitted solve uses the shared
// cache (unless the request opts out with no_cache), so the service
// converges to serving hot workloads from memory.
//
// Determinism under caching: responses are bit-identical with the cache
// on, off, cold or warm — the cache is a latency optimization, never a
// semantic one. The differential tests at the repository root and in
// this package enforce that corpus-wide.
package server

import (
	"context"
	"crypto/sha256"
	"encoding/json"
	"errors"
	"expvar"
	"fmt"
	"math"
	"net/http"
	"runtime"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/family"
	"repro/internal/memo"
	"repro/internal/oracle"
	"repro/internal/plan"
	"repro/internal/sched"
	"repro/internal/wire"
)

// Defaults for Config zero values.
const (
	DefaultEps        = 0.5
	DefaultCacheBytes = 64 << 20
	DefaultMaxBody    = 8 << 20
	DefaultMaxTimeout = 2 * time.Minute
)

// Config configures a Server; zero values select the defaults above.
type Config struct {
	// Workers bounds concurrent solves (<= 0 selects GOMAXPROCS).
	Workers int
	// QueueDepth bounds admitted-but-waiting solves (< 0 selects 4x
	// workers; 0 disables queueing). Work beyond Workers+QueueDepth is
	// rejected with 503.
	QueueDepth int
	// Cache is the shared cross-request memo; nil builds one bounded to
	// CacheBytes.
	Cache *memo.Cache
	// CacheBytes bounds the cache built when Cache is nil (<= 0 selects
	// DefaultCacheBytes).
	CacheBytes int64
	// Eps is the accuracy used when a request does not set one.
	Eps float64
	// Backend is the oracle backend used when a request does not set
	// one.
	Backend oracle.Kind
	// MaxBodyBytes bounds request bodies (<= 0 selects DefaultMaxBody).
	MaxBodyBytes int64
	// DefaultTimeout bounds solves whose request sets no timeout_ms
	// (0 = bounded only by MaxTimeout).
	DefaultTimeout time.Duration
	// MaxTimeout clamps per-request timeouts (<= 0 selects
	// DefaultMaxTimeout).
	MaxTimeout time.Duration
	// MaxOracleWorkers clamps the per-request "oracle_workers" knob
	// (<= 0 selects GOMAXPROCS/Workers — see New). The clamp is tied to
	// admission: the queue already admits up to Workers concurrent
	// solves, so granting each solve many extra oracle lanes multiplies
	// the worst-case CPU demand; the cap keeps total lanes bounded by
	// roughly one machine's worth. Results are bit-identical at any
	// clamp (oracle workers never change answers).
	MaxOracleWorkers int
	// Planner is the latency cost model behind SLO-aware ("adaptive")
	// requests; nil builds a fresh one. Every successful solve feeds it
	// (observation never changes answers), and adaptive requests consult
	// it at admission to pick the cheapest configuration predicted to
	// meet their deadline. Share one model across restarts by exporting
	// and importing it alongside the cache snapshot (see plan.Export).
	Planner *plan.Model
}

// Server is the solve service. Create with New; serve via Handler.
type Server struct {
	cfg     Config
	cache   *memo.Cache
	queue   *batch.Queue
	flight  *flight
	lat     *LatencyRing
	planner *plan.Model
	// fams tracks per-problem-family solve counts and latencies, keyed
	// by family name; built once in New for every registered family.
	fams  map[string]*famStats
	start time.Time

	requests    atomic.Int64 // HTTP requests accepted into a handler
	solves      atomic.Int64 // successful solve responses (incl. batch items)
	solveErrors atomic.Int64 // failed solves (solver errors, not 4xx decode)
	coalesced   atomic.Int64 // solves served by joining an identical in-flight request
	timeouts    atomic.Int64 // solves aborted by per-request deadlines
	resolves    atomic.Int64 // successful incremental re-solves (subset of solves)
	repairs     atomic.Int64 // re-solves answered by the placement-repair fast path

	// SLO-aware serving counters: adaptive-mode solves, how many of them
	// answered from a rung coarser than requested, how many ran
	// best-effort (nothing was predicted to fit the deadline and no
	// quality floor forced a refusal), and how many were refused as
	// unattainable (422).
	adaptiveSolves atomic.Int64
	degraded       atomic.Int64
	bestEffort     atomic.Int64
	unattainable   atomic.Int64

	// Oracle worker utilization over all successful solves: how many ran
	// with more than one lane, how many speculative work units helper
	// lanes claimed (steals), and how many of those the main lane
	// adopted (busy/useful). Telemetry only — per-solve values are
	// load-dependent and never part of any response payload.
	oracleParallelSolves atomic.Int64
	oracleSteals         atomic.Int64
	oracleSpecUsed       atomic.Int64

	// Cache snapshot warm-start counters (see RecordSnapshot): how many
	// snapshot imports ran, how many entries they loaded into the shared
	// cache and how many they skipped (already present, over budget, or
	// undecodable).
	snapshotLoads   atomic.Int64
	snapshotEntries atomic.Int64
	snapshotSkipped atomic.Int64
}

// RecordSnapshot notes one cache snapshot import (a warm start) so it
// shows up in /v1/stats and /metrics alongside the cache counters.
func (s *Server) RecordSnapshot(loaded, skipped int) {
	s.snapshotLoads.Add(1)
	s.snapshotEntries.Add(int64(loaded))
	s.snapshotSkipped.Add(int64(skipped))
}

// New returns a service with one shared cache and one shared queue for
// its whole lifetime.
func New(cfg Config) *Server {
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Eps == 0 {
		cfg.Eps = DefaultEps
	}
	if cfg.CacheBytes <= 0 {
		cfg.CacheBytes = DefaultCacheBytes
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBody
	}
	if cfg.MaxTimeout <= 0 {
		cfg.MaxTimeout = DefaultMaxTimeout
	}
	if cfg.MaxOracleWorkers <= 0 {
		// Tie the lane budget to admission: with Workers solves running
		// concurrently, give each at most its fair share of the machine
		// (at least 1, i.e. requests can never be rejected for asking).
		cfg.MaxOracleWorkers = runtime.GOMAXPROCS(0) / cfg.Workers
		if cfg.MaxOracleWorkers < 1 {
			cfg.MaxOracleWorkers = 1
		}
	}
	cache := cfg.Cache
	if cache == nil {
		cache = memo.New(cfg.CacheBytes)
	}
	planner := cfg.Planner
	if planner == nil {
		planner = plan.NewModel()
	}
	fams := make(map[string]*famStats, len(family.List()))
	for _, f := range family.List() {
		fams[f.Name()] = &famStats{lat: NewLatencyRing(1 << 12)}
	}
	return &Server{
		cfg:     cfg,
		cache:   cache,
		queue:   batch.NewQueue(cfg.Workers, cfg.QueueDepth),
		flight:  newFlight(),
		lat:     NewLatencyRing(1 << 14),
		planner: planner,
		fams:    fams,
		start:   time.Now(),
	}
}

// famStats is the per-family slice of the serving metrics.
type famStats struct {
	solves atomic.Int64
	lat    *LatencyRing
}

// Cache returns the shared cross-request memo.
func (s *Server) Cache() *memo.Cache { return s.cache }

// Planner returns the shared latency cost model (never nil). The serve
// command exports it on shutdown next to the cache snapshot.
func (s *Server) Planner() *plan.Model { return s.planner }

// Workers reports the effective worker count; QueueDepth the effective
// admission queue depth.
func (s *Server) Workers() int    { return s.queue.Workers() }
func (s *Server) QueueDepth() int { return s.queue.Depth() }

// Handler returns the service's HTTP routes.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", s.handleSolve)
	mux.HandleFunc("POST /v1/batch", s.handleBatch)
	mux.HandleFunc("POST /v1/resolve", s.handleResolve)
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.Handle("GET /debug/vars", expvar.Handler())
	return mux
}

var expvarOnce sync.Once

// PublishExpvar exposes the stats payload under the expvar key
// "bagsched" (visible at GET /debug/vars). Only the first server in a
// process publishes; later calls are no-ops (the expvar registry is
// global and write-once).
func (s *Server) PublishExpvar() {
	expvarOnce.Do(func() {
		expvar.Publish("bagsched", expvar.Func(func() any { return s.statsPayload(0) }))
	})
}

// The request/response document types live in internal/wire — the
// transport-neutral codec shared with the shard router — so this file
// only keeps the HTTP plumbing around them.

// spec is one decoded, validated solve: the instance, the resolved
// solver options, the family name (for the per-family counters) and the
// coalescing key.
type spec struct {
	in  *sched.Instance
	opt core.Options
	fam string
	key [sha256.Size]byte
}

// resolve validates a request's solve spec and builds the solve spec.
// A non-nil error is a client error (400).
func (s *Server) resolve(in *sched.Instance, req wire.SolveSpec) (*spec, error) {
	if in == nil {
		return nil, errors.New("missing \"instance\"")
	}
	if req.OracleWorkers < 0 {
		return nil, fmt.Errorf("\"oracle_workers\" must be >= 0, got %d", req.OracleWorkers)
	}
	oracleWorkers := req.OracleWorkers
	if oracleWorkers > s.cfg.MaxOracleWorkers {
		oracleWorkers = s.cfg.MaxOracleWorkers
	}
	eps := req.Eps
	if eps == 0 {
		eps = s.cfg.Eps
	}
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("\"eps\" must be in (0,1), got %g", eps)
	}
	if req.DeadlineMS < 0 {
		return nil, fmt.Errorf("\"deadline_ms\" must be >= 0, got %d", req.DeadlineMS)
	}
	if req.MinQuality != 0 && req.MinQuality < 1 {
		return nil, fmt.Errorf("\"min_quality\" must be 0 (no floor) or >= 1, got %g", req.MinQuality)
	}
	backend := s.cfg.Backend
	if req.Backend != "" {
		var err error
		backend, err = oracle.ParseKind(req.Backend)
		if err != nil {
			return nil, err
		}
	}
	fam, err := family.Parse(req.Family)
	if err != nil {
		return nil, err
	}
	opt := core.Options{Eps: eps, Family: fam, Oracle: oracle.Selection{Backend: backend}, OracleWorkers: oracleWorkers}
	if !req.NoCache {
		opt.Cache = s.cache
	}
	// Every solve feeds the cost model (observation is result-transparent);
	// only adaptive requests consult it.
	opt.Planner = s.planner
	opt.Adaptive = req.Adaptive
	opt.MinQuality = req.MinQuality
	if req.DeadlineMS > 0 {
		opt.Deadline = time.Duration(req.DeadlineMS) * time.Millisecond
	}
	if req.Adaptive && req.Backend == "" {
		// No pinned backend: let the planner pick among the family's
		// exact backends by predicted latency (portfolio is excluded —
		// it is itself a meta-strategy).
		opt.PlanBackends = planCandidates(fam.Name(), backend)
	}

	h := sha256.New()
	b, err := json.Marshal(in)
	if err != nil {
		return nil, err
	}
	h.Write(b)
	// The family is part of the coalescing identity: the same instance
	// solved as different families is different work with different
	// answers. The clamped worker count is hashed too — responses would
	// coalesce correctly across worker counts (results are identical by
	// contract), but every resolved knob goes into the key so coalescing
	// never has to argue from that contract. The SLO knobs are hashed
	// because adaptive requests with different budgets may legitimately
	// get different answers.
	fmt.Fprintf(h, "|%x|%d|%s|%v|%d|%x|%x|%v", math.Float64bits(eps), backend, fam.Name(),
		req.NoCache, oracleWorkers, req.DeadlineMS, math.Float64bits(req.MinQuality), req.Adaptive)
	sp := &spec{in: in, opt: opt, fam: fam.Name()}
	h.Sum(sp.key[:0])
	return sp, nil
}

// planCandidates lists the oracle backends the planner may pick among
// for an adaptive request that pinned none, cheapest-predicted first
// preference left to the model: the server default first, then the
// family's other exact backends. The configuration-DP oracle only
// understands identical speeds, so related-machines requests stay on
// branch-and-bound; the portfolio meta-backend is never auto-picked.
func planCandidates(familyName string, def oracle.Kind) []oracle.Kind {
	cands := []oracle.Kind{}
	add := func(k oracle.Kind) {
		if k == oracle.KindPortfolio {
			return
		}
		for _, c := range cands {
			if c == k {
				return
			}
		}
		cands = append(cands, k)
	}
	add(def)
	add(oracle.KindBnB)
	if familyName != "related" {
		add(oracle.KindCfgDP)
	}
	if len(cands) == 0 {
		cands = append(cands, oracle.KindBnB)
	}
	return cands
}

// solveContext derives the per-request solve context from the client
// connection, the requested timeout and (when set) the SLO deadline —
// whichever bound is tighter wins.
func (s *Server) solveContext(r *http.Request, req wire.SolveSpec) (context.Context, context.CancelFunc, error) {
	if req.TimeoutMS < 0 {
		return nil, nil, fmt.Errorf("\"timeout_ms\" must be >= 0, got %d", req.TimeoutMS)
	}
	timeout := s.cfg.DefaultTimeout
	if req.TimeoutMS > 0 {
		timeout = time.Duration(req.TimeoutMS) * time.Millisecond
	}
	if timeout <= 0 || timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	if d := time.Duration(req.DeadlineMS) * time.Millisecond; d > 0 && d < timeout {
		timeout = d
	}
	ctx, cancel := context.WithTimeout(r.Context(), timeout)
	return ctx, cancel, nil
}

// solveOne runs one spec through coalescing, admission and the queue.
// The task is sp's work — a plain solve, or an incremental re-solve
// when it carries Prior and Delta.
func (s *Server) solveOne(ctx context.Context, sp *spec, task batch.Task) (out batch.Outcome, admitted, shared bool) {
	out, admitted, shared = s.flight.do(ctx, sp.key, func() (batch.Outcome, bool) {
		return s.queue.Do(ctx, task)
	})
	if shared {
		s.coalesced.Add(1)
	}
	return out, admitted, shared
}

// solveTask is the queue task of a plain (non-resolve) spec.
func (sp *spec) solveTask() batch.Task {
	return batch.Task{Instance: sp.in, Options: sp.opt}
}

func (s *Server) handleSolve(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req wire.SolveRequest
	if !s.decode(w, r, &req) {
		return
	}
	rspec := req.EffectiveSpec()
	sp, err := s.resolve(req.Instance, rspec)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, wire.ErrorResponse{Error: err.Error()})
		return
	}
	ctx, cancel, err := s.solveContext(r, rspec)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, wire.ErrorResponse{Error: err.Error()})
		return
	}
	defer cancel()

	start := time.Now()
	out, admitted, shared := s.solveOne(ctx, sp, sp.solveTask())
	elapsed := time.Since(start)
	if !admitted {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, wire.ErrorResponse{Error: "queue full"})
		return
	}
	if out.Err != nil {
		s.writeSolveError(w, out.Err)
		return
	}
	s.solves.Add(1)
	s.lat.Record(elapsed)
	s.recordFamily(sp.fam, elapsed)
	s.recordOracle(out.Result.Stats)
	s.recordQuality(sp.opt.Adaptive, out.Result.Quality)
	writeJSON(w, http.StatusOK, wire.FromResult(out.Result, shared, elapsed))
}

// resolveDelta validates a resolve request and builds its spec plus the
// reconstructed prior result the warm solve starts from. The spec's
// coalescing key covers everything the spec of a plain solve covers and
// the resolve's own identity on top — the delta and every prior fact —
// so identical concurrent re-solves coalesce while a resolve never
// shares an outcome with the plain solve of the same instance. A
// non-nil error is a client error (400).
func (s *Server) resolveDelta(req *wire.ResolveRequest) (*spec, *core.Result, error) {
	sp, err := s.resolve(req.Instance, req.EffectiveSpec())
	if err != nil {
		return nil, nil, err
	}
	if req.PriorMakespan < 0 || req.PriorGuess < 0 {
		return nil, nil, errors.New("\"prior_makespan\" and \"prior_guess\" must be >= 0")
	}
	if n := len(req.PriorAssignment); n != 0 && n != len(req.Instance.Jobs) {
		return nil, nil, fmt.Errorf("\"prior_assignment\" has %d entries for %d jobs", n, len(req.Instance.Jobs))
	}
	if req.Repair && len(req.PriorAssignment) == 0 {
		return nil, nil, errors.New("\"repair\" needs \"prior_assignment\"")
	}
	sp.opt.Repair = req.Repair

	prior := &core.Result{Input: req.Instance, Makespan: req.PriorMakespan, Options: sp.opt}
	prior.Stats.FinalGuess = req.PriorGuess
	if len(req.PriorAssignment) > 0 {
		prior.Schedule = &sched.Schedule{Inst: req.Instance, Machine: req.PriorAssignment}
	}

	h := sha256.New()
	h.Write(sp.key[:])
	db, err := json.Marshal(req.Delta)
	if err != nil {
		return nil, nil, err
	}
	h.Write(db)
	fmt.Fprintf(h, "|resolve|%x|%x|%v|%v", math.Float64bits(req.PriorMakespan),
		math.Float64bits(req.PriorGuess), req.Repair, req.PriorAssignment)
	h.Sum(sp.key[:0])
	return sp, prior, nil
}

func (s *Server) handleResolve(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req wire.ResolveRequest
	if !s.decode(w, r, &req) {
		return
	}
	sp, prior, err := s.resolveDelta(&req)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, wire.ErrorResponse{Error: err.Error()})
		return
	}
	ctx, cancel, err := s.solveContext(r, req.EffectiveSpec())
	if err != nil {
		writeJSON(w, http.StatusBadRequest, wire.ErrorResponse{Error: err.Error()})
		return
	}
	defer cancel()

	start := time.Now()
	out, admitted, shared := s.solveOne(ctx, sp, batch.Task{Options: sp.opt, Prior: prior, Delta: &req.Delta})
	elapsed := time.Since(start)
	if !admitted {
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable, wire.ErrorResponse{Error: "queue full"})
		return
	}
	if out.Err != nil {
		s.writeSolveError(w, out.Err)
		return
	}
	s.solves.Add(1)
	s.resolves.Add(1)
	if out.Result.Stats.Repaired {
		s.repairs.Add(1)
	}
	s.lat.Record(elapsed)
	s.recordFamily(sp.fam, elapsed)
	s.recordOracle(out.Result.Stats)
	s.recordQuality(sp.opt.Adaptive, out.Result.Quality)
	writeJSON(w, http.StatusOK, wire.FromResolveResult(out.Result, shared, elapsed))
}

// recordFamily feeds the per-family counters of one successful solve.
func (s *Server) recordFamily(fam string, elapsed time.Duration) {
	if fs, ok := s.fams[fam]; ok {
		fs.solves.Add(1)
		fs.lat.Record(elapsed)
	}
}

// recordQuality feeds the SLO-aware serving counters of one successful
// solve.
func (s *Server) recordQuality(adaptive bool, q core.Quality) {
	if adaptive {
		s.adaptiveSolves.Add(1)
	}
	if q.Degraded {
		s.degraded.Add(1)
	}
	if q.BestEffort {
		s.bestEffort.Add(1)
	}
}

// recordOracle feeds the oracle worker-utilization counters of one
// successful solve.
func (s *Server) recordOracle(st core.Stats) {
	if st.OracleWorkers > 1 {
		s.oracleParallelSolves.Add(1)
	}
	s.oracleSteals.Add(st.OracleSteals)
	s.oracleSpecUsed.Add(st.OracleSpecUsed)
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	var req wire.BatchRequest
	if !s.decode(w, r, &req) {
		return
	}
	if len(req.Instances) == 0 {
		writeJSON(w, http.StatusBadRequest, wire.ErrorResponse{Error: "missing \"instances\""})
		return
	}
	bspec := req.EffectiveSpec()
	specs := make([]*spec, len(req.Instances))
	for i, in := range req.Instances {
		sp, err := s.resolve(in, bspec)
		if err != nil {
			writeJSON(w, http.StatusBadRequest, wire.ErrorResponse{Error: fmt.Sprintf("instance %d: %v", i, err)})
			return
		}
		specs[i] = sp
	}
	ctx, cancel, err := s.solveContext(r, bspec)
	if err != nil {
		writeJSON(w, http.StatusBadRequest, wire.ErrorResponse{Error: err.Error()})
		return
	}
	defer cancel()

	start := time.Now()
	items := make([]wire.BatchItem, len(specs))
	// Fan out at most one item per worker slot: a batch wider than the
	// whole admission window (workers+depth) must not race itself into
	// 'queue full' on an idle server — excess items wait here, inside
	// the request, while still competing fairly with concurrent /v1/solve
	// traffic at the admission gate below.
	fanout := make(chan struct{}, s.queue.Workers())
	var wg sync.WaitGroup
	for i, sp := range specs {
		wg.Add(1)
		go func(i int, sp *spec) {
			defer wg.Done()
			select {
			case fanout <- struct{}{}:
			case <-ctx.Done():
				s.countSolveError(ctx.Err())
				items[i] = wire.BatchItem{Error: ctx.Err().Error()}
				return
			}
			defer func() { <-fanout }()
			itemStart := time.Now()
			out, admitted, shared := s.solveOne(ctx, sp, sp.solveTask())
			itemElapsed := time.Since(itemStart)
			switch {
			case !admitted:
				items[i] = wire.BatchItem{Error: "queue full"}
			case out.Err != nil:
				s.countSolveError(out.Err)
				items[i] = wire.BatchItem{Error: out.Err.Error()}
			default:
				s.solves.Add(1)
				s.lat.Record(itemElapsed)
				s.recordFamily(sp.fam, itemElapsed)
				s.recordOracle(out.Result.Stats)
				s.recordQuality(sp.opt.Adaptive, out.Result.Quality)
				items[i] = wire.BatchItem{SolveResult: wire.FromResult(out.Result, shared, itemElapsed)}
			}
		}(i, sp)
	}
	wg.Wait()
	writeJSON(w, http.StatusOK, wire.BatchResponse{Outcomes: items, ElapsedUS: time.Since(start).Microseconds()})
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	window := 0
	if v := r.URL.Query().Get("window"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeJSON(w, http.StatusBadRequest, wire.ErrorResponse{Error: "\"window\" must be a positive integer"})
			return
		}
		window = n
	}
	writeJSON(w, http.StatusOK, s.statsPayload(window))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"status":   "ok",
		"uptime_s": time.Since(s.start).Seconds(),
	})
}

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	cs := s.cache.Stats()
	all := s.lat.Percentiles(0)
	type metric struct {
		name, typ string
		value     int64
	}
	for _, m := range []metric{
		{"bagsched_requests_total", "counter", s.requests.Load()},
		{"bagsched_solves_total", "counter", s.solves.Load()},
		{"bagsched_solve_errors_total", "counter", s.solveErrors.Load()},
		{"bagsched_solves_coalesced_total", "counter", s.coalesced.Load()},
		{"bagsched_solves_rejected_total", "counter", s.queue.Rejected()},
		{"bagsched_solve_timeouts_total", "counter", s.timeouts.Load()},
		{"bagsched_resolves_total", "counter", s.resolves.Load()},
		{"bagsched_resolves_repaired_total", "counter", s.repairs.Load()},
		{"bagsched_queue_running", "gauge", s.queue.Running()},
		{"bagsched_queue_queued", "gauge", s.queue.Queued()},
		{"bagsched_cache_hits_total", "counter", cs.Hits},
		{"bagsched_cache_misses_total", "counter", cs.Misses},
		{"bagsched_cache_evictions_total", "counter", cs.Evictions},
		{"bagsched_cache_entries", "gauge", int64(cs.Entries)},
		{"bagsched_cache_cost_bytes", "gauge", cs.Cost},
		{"bagsched_cache_max_cost_bytes", "gauge", cs.MaxCost},
		{"bagsched_solve_latency_p50_microseconds", "gauge", all.P50},
		{"bagsched_solve_latency_p90_microseconds", "gauge", all.P90},
		{"bagsched_solve_latency_p99_microseconds", "gauge", all.P99},
		{"bagsched_oracle_parallel_solves_total", "counter", s.oracleParallelSolves.Load()},
		{"bagsched_oracle_worker_steals_total", "counter", s.oracleSteals.Load()},
		{"bagsched_oracle_worker_adopted_total", "counter", s.oracleSpecUsed.Load()},
		{"bagsched_snapshot_loads_total", "counter", s.snapshotLoads.Load()},
		{"bagsched_snapshot_entries_loaded_total", "counter", s.snapshotEntries.Load()},
		{"bagsched_snapshot_entries_skipped_total", "counter", s.snapshotSkipped.Load()},
		{"bagsched_adaptive_solves_total", "counter", s.adaptiveSolves.Load()},
		{"bagsched_degraded_solves_total", "counter", s.degraded.Load()},
		{"bagsched_best_effort_solves_total", "counter", s.bestEffort.Load()},
		{"bagsched_unattainable_total", "counter", s.unattainable.Load()},
		{"bagsched_plan_model_cells", "gauge", int64(s.planner.Snapshot().Cells)},
		{"bagsched_plan_model_observations", "counter", int64(s.planner.Snapshot().Observations)},
	} {
		fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", m.name, m.typ, m.name, m.value)
	}
	fmt.Fprintf(w, "# TYPE bagsched_family_solves_total counter\n")
	for _, f := range family.List() {
		fs := s.fams[f.Name()]
		fmt.Fprintf(w, "bagsched_family_solves_total{family=%q} %d\n", f.Name(), fs.solves.Load())
	}
	fmt.Fprintf(w, "# TYPE bagsched_family_solve_latency_p50_microseconds gauge\n")
	for _, f := range family.List() {
		fs := s.fams[f.Name()]
		fmt.Fprintf(w, "bagsched_family_solve_latency_p50_microseconds{family=%q} %d\n", f.Name(), fs.lat.Percentiles(0).P50)
	}
}

// statsPayload builds the GET /v1/stats (and expvar) document. window >
// 0 adds percentiles over the last window recorded solves — the load
// driver uses this to compare cold and warm replay passes.
func (s *Server) statsPayload(window int) map[string]any {
	cs := s.cache.Stats()
	payload := map[string]any{
		"uptime_s": time.Since(s.start).Seconds(),
		"server": map[string]any{
			"requests":     s.requests.Load(),
			"solves":       s.solves.Load(),
			"solve_errors": s.solveErrors.Load(),
			"coalesced":    s.coalesced.Load(),
			"rejected":     s.queue.Rejected(),
			"timeouts":     s.timeouts.Load(),
			"resolves":     s.resolves.Load(),
			"repaired":     s.repairs.Load(),
			"active":       s.queue.Running(),
			"queued":       s.queue.Queued(),
			"workers":      s.queue.Workers(),
			"queue_depth":  s.queue.Depth(),
		},
		"cache": map[string]any{
			"hits":             cs.Hits,
			"misses":           cs.Misses,
			"inflight_waits":   cs.Waits,
			"evictions":        cs.Evictions,
			"entries":          cs.Entries,
			"negative_entries": cs.Negative,
			"cost_bytes":       cs.Cost,
			"max_cost_bytes":   cs.MaxCost,
		},
		"latency": s.lat.Percentiles(0),
		"snapshot": map[string]any{
			"loads":           s.snapshotLoads.Load(),
			"entries_loaded":  s.snapshotEntries.Load(),
			"entries_skipped": s.snapshotSkipped.Load(),
		},
		"plan": func() map[string]any {
			ps := s.planner.Snapshot()
			return map[string]any{
				"adaptive_solves": s.adaptiveSolves.Load(),
				"degraded":        s.degraded.Load(),
				"best_effort":     s.bestEffort.Load(),
				"unattainable":    s.unattainable.Load(),
				"model_cells":     ps.Cells,
				"model_version":   ps.Version,
				"observations":    ps.Observations,
			}
		}(),
		"oracle_workers": map[string]any{
			"max_per_solve":   s.cfg.MaxOracleWorkers,
			"parallel_solves": s.oracleParallelSolves.Load(),
			"steals":          s.oracleSteals.Load(),
			"adopted":         s.oracleSpecUsed.Load(),
		},
	}
	families := make(map[string]any, len(s.fams))
	for _, f := range family.List() {
		fs := s.fams[f.Name()]
		fam := map[string]any{
			"solves":  fs.solves.Load(),
			"latency": fs.lat.Percentiles(0),
		}
		if window > 0 {
			fam["window"] = fs.lat.Percentiles(window)
		}
		families[f.Name()] = fam
	}
	payload["families"] = families
	if window > 0 {
		payload["window"] = s.lat.Percentiles(window)
	}
	return payload
}

// decode reads a JSON body strictly via the shared wire codec (unknown
// fields and trailing data are errors) and answers 400 itself when the
// body is malformed.
func (s *Server) decode(w http.ResponseWriter, r *http.Request, dst any) bool {
	body := http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	if err := wire.Decode(body, dst); err != nil {
		writeJSON(w, http.StatusBadRequest, wire.ErrorResponse{Error: err.Error()})
		return false
	}
	return true
}

// writeSolveError maps a solve error to its status: 422 "unattainable"
// when the planner refused an adaptive request whose quality floor no
// rung can meet within its deadline, 504 for the per-request deadline,
// 499-ish client cancellation reported as 503 (the client is gone
// either way), anything else 422 — the body was well-formed but the
// instance cannot be solved as asked (e.g. an infeasible bag).
func (s *Server) writeSolveError(w http.ResponseWriter, err error) {
	s.countSolveError(err)
	switch {
	case errors.Is(err, plan.ErrUnattainable):
		s.unattainable.Add(1)
		writeJSON(w, http.StatusUnprocessableEntity, wire.ErrorResponse{Error: "unattainable: " + err.Error()})
	case errors.Is(err, context.DeadlineExceeded):
		writeJSON(w, http.StatusGatewayTimeout, wire.ErrorResponse{Error: "solve deadline exceeded"})
	case errors.Is(err, context.Canceled):
		writeJSON(w, http.StatusServiceUnavailable, wire.ErrorResponse{Error: "request canceled"})
	default:
		writeJSON(w, http.StatusUnprocessableEntity, wire.ErrorResponse{Error: err.Error()})
	}
}

func (s *Server) countSolveError(err error) {
	s.solveErrors.Add(1)
	if errors.Is(err, context.DeadlineExceeded) {
		s.timeouts.Add(1)
	}
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	wire.Encode(w, v) //nolint:errcheck // the client may be gone; nothing to do
}
