package server

import (
	"sort"
	"sync"
	"time"
)

// LatencyRing records the most recent solve latencies in a fixed-size
// ring and reports percentiles over the whole buffer or over the last
// window entries. The load driver replays a workload pass, then asks
// for percentiles over exactly that pass's window — comparing a cold
// pass against a warm one without the server having to know where one
// pass ends and the next begins.
type LatencyRing struct {
	mu    sync.Mutex
	buf   []int64 // microseconds, ring-ordered
	next  int     // next write position
	total int64   // lifetime recorded count
}

// LatencySummary is a percentile digest on the wire (microseconds).
type LatencySummary struct {
	// Count is the number of samples summarized; Total is the lifetime
	// number recorded (Total > Count once the ring has wrapped or a
	// window was requested).
	Count int   `json:"count"`
	Total int64 `json:"total"`
	P50   int64 `json:"p50_us"`
	P90   int64 `json:"p90_us"`
	P99   int64 `json:"p99_us"`
	Max   int64 `json:"max_us"`
}

func NewLatencyRing(capacity int) *LatencyRing {
	return &LatencyRing{buf: make([]int64, 0, capacity)}
}

func (l *LatencyRing) Record(d time.Duration) {
	us := d.Microseconds()
	l.mu.Lock()
	if len(l.buf) < cap(l.buf) {
		l.buf = append(l.buf, us)
	} else {
		l.buf[l.next] = us
	}
	l.next = (l.next + 1) % cap(l.buf)
	l.total++
	l.mu.Unlock()
}

// percentiles digests the last window samples (window <= 0 or larger
// than the buffer: every buffered sample).
func (l *LatencyRing) Percentiles(window int) LatencySummary {
	l.mu.Lock()
	n := len(l.buf)
	if window <= 0 || window > n {
		window = n
	}
	samples := make([]int64, 0, window)
	// Walk backwards from the most recent write.
	for i := 1; i <= window; i++ {
		samples = append(samples, l.buf[((l.next-i)%n+n)%n])
	}
	total := l.total
	l.mu.Unlock()

	sum := LatencySummary{Count: len(samples), Total: total}
	if len(samples) == 0 {
		return sum
	}
	sort.Slice(samples, func(i, j int) bool { return samples[i] < samples[j] })
	at := func(q float64) int64 {
		idx := int(q*float64(len(samples))+0.5) - 1
		if idx < 0 {
			idx = 0
		}
		if idx >= len(samples) {
			idx = len(samples) - 1
		}
		return samples[idx]
	}
	sum.P50, sum.P90, sum.P99 = at(0.50), at(0.90), at(0.99)
	sum.Max = samples[len(samples)-1]
	return sum
}
