package server

import (
	"context"
	"crypto/sha256"
	"sync"

	"repro/internal/batch"
	"repro/internal/memo"
)

// flight coalesces identical concurrent solve requests: the first
// request with a given key becomes the leader and runs the solve; every
// request that arrives while it is in flight waits for the leader's
// outcome instead of entering the queue. Entries live only while the
// leader runs — this is deduplication of concurrent work, not response
// caching (cross-request result reuse happens one layer down, in the
// shared guess memo, where it is bounded and accounted).
//
// Solves are deterministic functions of the request spec, so sharing an
// outcome is result-transparent; a follower's response differs only in
// its coalesced/elapsed bookkeeping fields.
type flight struct {
	mu sync.Mutex
	m  map[[sha256.Size]byte]*flightCall
}

// flightCall is one in-flight solve. out/admitted are written by the
// leader before done is closed and read by followers after.
type flightCall struct {
	done     chan struct{}
	out      batch.Outcome
	admitted bool
}

func newFlight() *flight {
	return &flight{m: make(map[[sha256.Size]byte]*flightCall)}
}

// do runs fn for key, or joins an identical in-flight run. shared
// reports that this call received the leader's outcome rather than
// leading (a follower whose own ctx dies mid-wait got nothing and is
// not counted as shared). A leader outcome that is merely the leader's
// own cancellation is not shared either — the follower retries with
// its own context, mirroring the abandonment semantics of the memo
// cache one layer down.
func (f *flight) do(ctx context.Context, key [sha256.Size]byte, fn func() (batch.Outcome, bool)) (out batch.Outcome, admitted, shared bool) {
	for {
		f.mu.Lock()
		if c, ok := f.m[key]; ok {
			f.mu.Unlock()
			select {
			case <-c.done:
			case <-ctx.Done():
				return batch.Outcome{Err: ctx.Err()}, true, false
			}
			if c.admitted && memo.IsCancellation(c.out.Err) {
				// The leader was canceled; its outcome says nothing
				// about the request. Try again under our own context.
				continue
			}
			return c.out, c.admitted, true
		}
		c := &flightCall{done: make(chan struct{})}
		f.m[key] = c
		f.mu.Unlock()

		// The entry is removed and done closed even if fn panics (the
		// leader branch always returns, so the defer fires exactly
		// once): a recovered handler panic must not leave the key
		// claimed forever with followers wedged on done. Followers then
		// observe the zero outcome — admitted=false, which they treat
		// as an admission rejection and surface as a retryable error.
		defer func() {
			f.mu.Lock()
			delete(f.m, key)
			f.mu.Unlock()
			close(c.done)
		}()
		c.out, c.admitted = fn()
		return c.out, c.admitted, false
	}
}
