package experiments

import (
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/workload"
)

func init() {
	register("T1", runT1)
	register("T2", runT2)
}

// runT1 verifies Theorem 1's quality guarantee against exact optima: for
// every eps the EPTAS stays within 1+O(eps) of OPT.
func runT1(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "T1",
		Title:  "Theorem 1 (quality) — EPTAS vs exact optimum",
		Claim:  "the EPTAS returns a feasible schedule of makespan at most (1+O(eps))*OPT",
		Header: []string{"eps", "instances", "avg ratio", "max ratio", "within 1+eps", "within 1+2eps"},
	}
	seeds := cfg.seeds(8, 3)
	families := []workload.Family{workload.Uniform, workload.Bimodal, workload.Geometric, workload.SmallHeavy}
	for _, eps := range []float64{0.75, 0.5, 0.4, 0.33} {
		var ratios []float64
		within1, within2 := 0, 0
		for _, fam := range families {
			for seed := 0; seed < seeds; seed++ {
				in := workload.MustGenerate(workload.Spec{
					Family: fam, Machines: 3, Jobs: 11, Bags: 4, Seed: int64(100 + seed),
				})
				ex, err := baselines.Exact(in, baselines.ExactOptions{TimeLimit: 20 * time.Second})
				if err != nil {
					return nil, err
				}
				if !ex.Proven {
					continue
				}
				res, err := core.Solve(in, core.Options{Eps: eps, Speculate: 1})
				if err != nil {
					return nil, err
				}
				if err := res.Schedule.Validate(); err != nil {
					return nil, fmt.Errorf("T1: invalid EPTAS schedule: %w", err)
				}
				r := res.Makespan / ex.Makespan
				ratios = append(ratios, r)
				if r <= 1+eps+1e-9 {
					within1++
				}
				if r <= 1+2*eps+1e-9 {
					within2++
				}
			}
		}
		t.Rows = append(t.Rows, []string{
			f3(eps), d(len(ratios)), f4(mean(ratios)), f4(maxOf(ratios)),
			fmt.Sprintf("%d/%d", within1, len(ratios)),
			fmt.Sprintf("%d/%d", within2, len(ratios)),
		})
	}
	t.Notes = append(t.Notes, "OPT computed by exact branch and bound (n=11, m=3). The paper's guarantee is 1+O(eps); the measured constant is small.")
	return t, nil
}

// runT2 verifies Theorem 1's running-time shape: the EPTAS cost grows
// polynomially in n and stays flat in the number of bags b, while the
// Das–Wiese-style configuration program (every bag priority) blows up
// with b.
func runT2(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "T2",
		Title:  "Theorem 1 (running time) — EPTAS is f(1/eps)*poly(n), flat in #bags",
		Claim:  "EPTAS time grows mildly with n and is independent of b; the PTAS-style all-priority configuration program degrades as b grows",
		Header: []string{"sweep", "n", "m", "b", "EPTAS time", "EPTAS patterns", "DW time", "DW patterns", "DW ok"},
	}
	eps := 0.5
	// Sweep n at fixed bag structure.
	nSweep := []int{20, 40, 80, 160}
	if cfg.Quick {
		nSweep = []int{20, 40}
	}
	for _, n := range nSweep {
		in := workload.MustGenerate(workload.Spec{
			Family: workload.Bimodal, Machines: n / 5, Jobs: n, Bags: n / 4, Seed: 5,
		})
		elapsed, res, err := timeEPTAS(in, core.Options{Eps: eps})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			"n", d(n), d(n / 5), d(in.NumBags),
			ms(elapsed), d(res.Stats.Patterns), "-", "-", "-",
		})
	}
	// Sweep b with machines scaling alongside (m = b keeps the
	// per-machine structure constant), comparing against the
	// all-priority program on the manylarge family (two large jobs per
	// bag): the DW pattern space grows combinatorially with b, the
	// EPTAS's does not.
	bSweep := []int{4, 6, 8, 10, 12, 16}
	if cfg.Quick {
		bSweep = []int{4, 6, 8}
	}
	for _, b := range bSweep {
		in := workload.MustGenerate(workload.Spec{
			Family: workload.ManyLarge, Machines: b, Bags: b, Seed: 5,
		})
		elapsed, res, err := timeEPTAS(in, core.Options{Eps: eps})
		if err != nil {
			return nil, err
		}
		dwElapsed, dwRes, err := timeEPTAS(in, core.Options{Eps: eps, AllPriority: true, PatternLimit: 400000})
		if err != nil {
			return nil, err
		}
		t.Rows = append(t.Rows, []string{
			"b", d(len(in.Jobs)), d(b), d(in.NumBags),
			ms(elapsed), d(res.Stats.Patterns),
			ms(dwElapsed), d(dwRes.Stats.Patterns), yes(!dwRes.Stats.Fallback),
		})
	}
	t.Notes = append(t.Notes,
		"DW = configuration program with every bag priority and no transformation (the PTAS strategy). 'DW ok' is false when its pattern space exceeded the limit and it fell back to bag-LPT.",
		"The EPTAS pattern count depends only on eps-derived constants, not on n or b (Lemma 6).")
	return t, nil
}

// timeEPTAS times one solve with speculation pinned off, so the reported
// wall-clock measures the paper's sequential algorithm and stays
// comparable across machines and with previously recorded tables (EX-S1
// measures the parallel paths separately).
func timeEPTAS(in *sched.Instance, opt core.Options) (float64, *core.Result, error) {
	if opt.Speculate == 0 {
		opt.Speculate = 1
	}
	start := time.Now()
	res, err := core.Solve(in, opt)
	return time.Since(start).Seconds(), res, err
}

func mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

func maxOf(xs []float64) float64 {
	m := 0.0
	for _, x := range xs {
		if x > m {
			m = x
		}
	}
	return m
}
