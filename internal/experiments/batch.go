package experiments

import (
	"fmt"
	"runtime"
	"time"

	"repro/internal/batch"
	"repro/internal/core"
	"repro/internal/workload"
)

func init() {
	register("S1", runS1)
}

// runS1 measures batch-solving throughput against the worker count: a
// fleet of bimodal instances (the EX-T2 family) is solved sequentially
// and on pools of growing size, reporting wall-clock, speedup and
// per-core throughput, and verifying that every per-instance makespan is
// identical to the sequential path.
func runS1(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "S1",
		Title:  "Batch-solving throughput per worker count",
		Claim:  "independent EPTAS solves parallelize across cores with no change to any result (the dual-approximation search is pure per instance)",
		Header: []string{"workers", "instances", "wall", "speedup", "inst/s", "inst/s/worker", "deterministic"},
	}
	n := 32
	if cfg.Quick {
		n = 8
	}
	tasks := make([]batch.Task, n)
	for i := range tasks {
		in, err := workload.Generate(workload.Spec{
			Family: workload.Bimodal, Machines: 6, Jobs: 24, Bags: 8, Seed: int64(500 + i),
		})
		if err != nil {
			return nil, err
		}
		tasks[i] = batch.Task{Instance: in, Options: core.Options{Eps: 0.5, Speculate: 1}}
	}

	// Sequential reference: one worker, strictly ordered.
	baseStart := time.Now()
	base := batch.NewPool(1).Solve(tasks)
	baseWall := time.Since(baseStart).Seconds()
	for i, o := range base {
		if o.Err != nil {
			return nil, fmt.Errorf("S1: sequential instance %d: %w", i, o.Err)
		}
	}

	maxW := runtime.GOMAXPROCS(0)
	var counts []int
	for w := 2; w < maxW; w *= 2 {
		counts = append(counts, w)
	}
	if maxW > 1 {
		counts = append(counts, maxW)
	}
	// The baseline run doubles as the workers=1 row.
	addRow := func(w int, wall float64, identical bool) {
		t.Rows = append(t.Rows, []string{
			d(w), d(n), ms(wall),
			fmt.Sprintf("%.2fx", baseWall/wall),
			fmt.Sprintf("%.1f", float64(n)/wall),
			fmt.Sprintf("%.1f", float64(n)/wall/float64(w)),
			yes(identical),
		})
	}
	addRow(1, baseWall, true)
	for _, w := range counts {
		start := time.Now()
		outs := batch.NewPool(w).Solve(tasks)
		wall := time.Since(start).Seconds()
		identical := true
		for i, o := range outs {
			if o.Err != nil {
				return nil, fmt.Errorf("S1: workers=%d instance %d: %w", w, i, o.Err)
			}
			if o.Result.Makespan != base[i].Result.Makespan {
				identical = false
			}
		}
		addRow(w, wall, identical)
	}
	t.Notes = append(t.Notes,
		fmt.Sprintf("GOMAXPROCS=%d. Speedup is relative to the one-worker pool over the same task list; 'deterministic' verifies per-instance makespans are byte-identical across worker counts.", maxW),
		"In-solve speculation is pinned off (Speculate=1) so the sweep isolates instance-level parallelism.")
	return t, nil
}
