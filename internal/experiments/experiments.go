// Package experiments implements the EX evaluation suite defined in
// DESIGN.md. The paper is a theory contribution with no experimental
// tables, so each experiment empirically verifies one theorem, lemma or
// figure of the paper on synthetic workloads; cmd/experiments regenerates
// every table and EXPERIMENTS.md records the results.
package experiments

import (
	"fmt"
	"sort"
	"strings"
)

// Config tunes the suite.
type Config struct {
	// Quick shrinks instance sizes and seed counts for fast runs.
	Quick bool
	// Seeds is the number of random seeds per cell (0 means default).
	Seeds int
}

func (c Config) seeds(def, quick int) int {
	if c.Seeds > 0 {
		return c.Seeds
	}
	if c.Quick {
		return quick
	}
	return def
}

// Table is one rendered experiment.
type Table struct {
	// ID is the experiment identifier (e.g. "T1").
	ID string
	// Title is a one-line description.
	Title string
	// Claim states the paper claim being verified.
	Claim string
	// Header and Rows hold the tabular results.
	Header []string
	Rows   [][]string
	// Notes hold free-form observations appended after the table.
	Notes []string
}

// Markdown renders the table as GitHub-flavoured markdown.
func (t *Table) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "## EX-%s — %s\n\n", t.ID, t.Title)
	fmt.Fprintf(&b, "*Claim:* %s\n\n", t.Claim)
	b.WriteString("| " + strings.Join(t.Header, " | ") + " |\n")
	seps := make([]string, len(t.Header))
	for i := range seps {
		seps[i] = "---"
	}
	b.WriteString("| " + strings.Join(seps, " | ") + " |\n")
	for _, row := range t.Rows {
		b.WriteString("| " + strings.Join(row, " | ") + " |\n")
	}
	for _, n := range t.Notes {
		b.WriteString("\n" + n + "\n")
	}
	return b.String()
}

// Runner executes one experiment.
type Runner func(Config) (*Table, error)

// registry maps experiment ids to runners, populated by the per-topic
// files in this package.
var registry = map[string]Runner{}

func register(id string, r Runner) { registry[id] = r }

// IDs returns all experiment identifiers in a stable order.
func IDs() []string {
	ids := make([]string, 0, len(registry))
	for id := range registry {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	return ids
}

// Run executes the experiment with the given id.
func Run(id string, cfg Config) (*Table, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("experiments: unknown experiment %q (have %v)", id, IDs())
	}
	return r(cfg)
}

// formatting helpers shared by the experiment files.

func f3(x float64) string { return fmt.Sprintf("%.3f", x) }
func f4(x float64) string { return fmt.Sprintf("%.4f", x) }
func d(x int) string      { return fmt.Sprintf("%d", x) }
func ms(sec float64) string {
	return fmt.Sprintf("%.1fms", sec*1000)
}
func yes(b bool) string {
	if b {
		return "yes"
	}
	return "no"
}
