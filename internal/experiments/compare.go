package experiments

import (
	"time"

	"repro/internal/baselines"
	"repro/internal/cfgmilp"
	"repro/internal/core"
	"repro/internal/milp"
	"repro/internal/sched"
	"repro/internal/workload"
)

func init() {
	register("B1", runB1)
	register("A1", runA1)
	register("A2", runA2)
}

// runB1 compares all algorithms across the workload families, reporting
// makespan ratios to the combinatorial lower bound.
func runB1(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "B1",
		Title:  "Algorithm comparison across workload families",
		Claim:  "the EPTAS dominates or matches the heuristics on every family (motivating Section 1.1's fault-tolerant placement setting)",
		Header: []string{"family", "EPTAS(0.5)", "EPTAS(0.33)", "bag-LPT", "LPT", "greedy", "round-robin"},
	}
	seeds := cfg.seeds(3, 1)
	n, m, b := 40, 8, 10
	if cfg.Quick {
		n, m, b = 24, 6, 8
	}
	for _, fam := range workload.Families() {
		sums := make([]float64, 6)
		counts := 0
		for seed := 0; seed < seeds; seed++ {
			in := workload.MustGenerate(workload.Spec{Family: fam, Machines: m, Jobs: n, Bags: b, Seed: int64(200 + seed)})
			lb := sched.LowerBound(in)
			if lb <= 0 {
				continue
			}
			r1, err := core.Solve(in, core.Options{Eps: 0.5, Speculate: 1})
			if err != nil {
				return nil, err
			}
			r2, err := core.Solve(in, core.Options{Eps: 0.33, Speculate: 1})
			if err != nil {
				return nil, err
			}
			bl, err := baselines.BagLPT(in)
			if err != nil {
				return nil, err
			}
			lpt, err := baselines.LPT(in)
			if err != nil {
				return nil, err
			}
			gr, err := baselines.Greedy(in)
			if err != nil {
				return nil, err
			}
			rr, err := baselines.RoundRobin(in)
			if err != nil {
				return nil, err
			}
			for i, mk := range []float64{
				r1.Makespan, r2.Makespan, bl.Makespan(), lpt.Makespan(), gr.Makespan(), rr.Makespan(),
			} {
				sums[i] += mk / lb
			}
			counts++
		}
		row := []string{string(fam)}
		for _, s := range sums {
			row = append(row, f3(s/float64(counts)))
		}
		t.Rows = append(t.Rows, row)
	}
	t.Notes = append(t.Notes, "Cells are average makespan / combinatorial lower bound (1.000 means provably optimal); lower is better.")
	return t, nil
}

// runA1 is the model ablation: the faithful paper MILP (with y variables
// and the constraint (7) integral subset) versus the decomposed x-only
// model, on instances small enough for both.
func runA1(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "A1",
		Title:  "Ablation — paper MILP vs decomposed MILP",
		Claim:  "both model flavours land in the same quality band; the decomposed model is much cheaper because it avoids the per-pattern y block",
		Header: []string{"instance", "mode", "makespan/LB", "integer vars", "MILP nodes", "time"},
	}
	seeds := cfg.seeds(3, 2)
	for seed := 0; seed < seeds; seed++ {
		in := workload.MustGenerate(workload.Spec{
			Family: workload.Bimodal, Machines: 4, Jobs: 16, Bags: 5, Seed: int64(300 + seed),
		})
		lb := sched.LowerBound(in)
		for _, mode := range []cfgmilp.Mode{cfgmilp.ModeDecomposed, cfgmilp.ModePaper} {
			start := time.Now()
			res, err := core.Solve(in, core.Options{
				Eps:       0.5,
				Mode:      mode,
				MILP:      milpOptions(mode),
				Speculate: 1,
			})
			if err != nil {
				return nil, err
			}
			t.Rows = append(t.Rows, []string{
				workload.Spec{Family: workload.Bimodal, Machines: 4, Jobs: 16, Bags: 5, Seed: int64(300 + seed)}.Name(),
				mode.String(),
				f3(res.Makespan / lb),
				d(res.Stats.IntegerVars),
				d(res.Stats.MILPNodes),
				ms(time.Since(start).Seconds()),
			})
		}
	}
	return t, nil
}

func milpOptions(mode cfgmilp.Mode) (o milp.Options) {
	if mode == cfgmilp.ModePaper {
		o.MaxNodes = 4000
	}
	return o
}

// runA2 ablates the branch-and-bound rounding heuristic: without it, the
// configuration program needs real tree search; with it, most guesses are
// decided at the root node.
func runA2(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "A2",
		Title:  "Ablation — largest-remainder rounding heuristic in the MILP",
		Claim:  "the sum-preserving rounding heuristic decides most feasibility MILPs at the root; disabling it multiplies the node count (and can push hard guesses into the solver's budget)",
		Header: []string{"instance", "rounding", "makespan/LB", "MILP nodes", "failed guesses", "time"},
	}
	seeds := cfg.seeds(3, 2)
	for seed := 0; seed < seeds; seed++ {
		spec := workload.Spec{
			Family: workload.Uniform, Machines: 7, Jobs: 35, Bags: 12, Seed: int64(400 + seed),
		}
		in := workload.MustGenerate(spec)
		lb := sched.LowerBound(in)
		for _, disable := range []bool{false, true} {
			start := time.Now()
			res, err := core.Solve(in, core.Options{
				Eps:       0.5,
				MILP:      milp.Options{DisableRounding: disable},
				Speculate: 1,
			})
			if err != nil {
				return nil, err
			}
			label := "on"
			if disable {
				label = "off"
			}
			t.Rows = append(t.Rows, []string{
				spec.Name(), label,
				f3(res.Makespan / lb),
				d(res.Stats.MILPNodes),
				d(res.Stats.FailedGuesses),
				ms(time.Since(start).Seconds()),
			})
		}
	}
	return t, nil
}
