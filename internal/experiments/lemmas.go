package experiments

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/cfgmilp"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/greedy"
	"repro/internal/pattern"
	"repro/internal/round"
	"repro/internal/sched"
	"repro/internal/transform"
	"repro/internal/workload"
)

func init() {
	register("L1", runL1)
	register("L6", runL6)
	register("L7", runL7)
	register("L8", runL8)
	register("L9", runL9)
	register("L11", runL11)
}

// runL1 verifies the Lemma 1 band selection: the chosen medium band's
// area is at most ~eps^2 * m (times the 1+eps rounding slack).
func runL1(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "L1",
		Title:  "Lemma 1 — medium band selection",
		Claim:  "there is k <= 1/eps^2 with band area sum{p_j in [eps^{k+1}, eps^k)} <= eps^2 * m (we measure against eps^2*(1+eps)*m after rounding)",
		Header: []string{"family", "eps", "k", "band area", "bound", "ok"},
	}
	for _, fam := range workload.Families() {
		for _, eps := range []float64{0.5, 0.33} {
			in := workload.MustGenerate(workload.Spec{Family: fam, Machines: 8, Jobs: 48, Bags: 12, Seed: 3})
			ub, err := greedy.BagLPT(in)
			if err != nil {
				return nil, err
			}
			scaled, _ := round.ScaleRound(in, ub.Makespan(), eps)
			info, err := classify.Classify(scaled, eps, classify.Options{})
			if err != nil {
				return nil, err
			}
			bound := eps * eps * (1 + eps) * float64(in.Machines)
			t.Rows = append(t.Rows, []string{
				string(fam), f3(eps), d(info.K), f4(info.BandArea), f4(bound), yes(info.BandArea <= bound+1e-9),
			})
		}
	}
	return t, nil
}

// runL6 verifies the Lemma 6 shape: the MILP's pattern count and integer
// dimension are functions of eps only — they grow as eps shrinks and stay
// flat as n grows.
func runL6(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "L6",
		Title:  "Lemma 6 — MILP size is a function of eps, not of n",
		Claim:  "the number of patterns and integral variables is bounded by a function of 1/eps alone (2^{O(poly(1/eps))}); doubling n leaves it unchanged",
		Header: []string{"eps", "n", "patterns", "integer vars", "priority bags", "q", "d"},
	}
	epsSweep := []float64{0.75, 0.6, 0.5, 0.4}
	if !cfg.Quick {
		epsSweep = append(epsSweep, 0.35)
	}
	for _, eps := range epsSweep {
		for _, n := range []int{24, 48} {
			in := workload.MustGenerate(workload.Spec{Family: workload.Bimodal, Machines: 8, Jobs: n, Bags: 10, Seed: 9})
			ub, err := greedy.BagLPT(in)
			if err != nil {
				return nil, err
			}
			// Build (but do not solve) the model: L6 is about its size.
			scaled, _ := round.ScaleRound(in, ub.Makespan(), eps)
			info, err := classify.Classify(scaled, eps, classify.Options{})
			if err != nil {
				return nil, err
			}
			tr := transform.Apply(scaled, info)
			sp, err := pattern.Enumerate(context.Background(), tr.Inst, tr.View, tr.Priority, pattern.Options{Limit: 2_000_000})
			if err != nil {
				return nil, fmt.Errorf("L6: enumerate eps=%g n=%d: %w", eps, n, err)
			}
			built, err := cfgmilp.Build(context.Background(), tr.Inst, tr.View, tr.Priority, sp, cfgmilp.BuildOptions{Mode: cfgmilp.ModeDecomposed})
			if err != nil {
				return nil, fmt.Errorf("L6: build eps=%g n=%d: %w", eps, n, err)
			}
			t.Rows = append(t.Rows, []string{
				f3(eps), d(n), d(len(sp.Patterns)), d(built.IntegerVars),
				d(countBool(tr.Priority)), d(info.Q), d(info.D),
			})
		}
	}
	t.Notes = append(t.Notes, "Pattern counts vary slightly with n only because the instance realizes different subsets of the eps-bounded size/bag universe; the eps-driven growth dominates.")
	return t, nil
}

func prioOf(pr *core.PipelineResult) []bool {
	if pr.Transformed != nil {
		return pr.Transformed.Priority
	}
	return pr.Info.Priority
}

func countBool(bs []bool) int {
	n := 0
	for _, b := range bs {
		if b {
			n++
		}
	}
	return n
}

// runL7 measures the Lemma 7 swap repair: X-slot conflicts occur, every
// one is repaired by a same-size swap (load vector unchanged), and the
// generic fallback stays unused.
func runL7(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "L7",
		Title:  "Lemma 7 — same-size swap repair of X-slot conflicts",
		Claim:  "conflicts created when filling anonymous X slots are repaired in polynomial time by swapping equal-size jobs, leaving machine loads unchanged",
		Header: []string{"family", "runs", "X conflicts", "swap repairs", "origin moves", "generic moves"},
	}
	seeds := cfg.seeds(5, 2)
	for _, fam := range workload.Families() {
		var conflicts, swaps, origin, generic int
		runs := 0
		for seed := 0; seed < seeds; seed++ {
			in := workload.MustGenerate(workload.Spec{Family: fam, Machines: 16, Jobs: 50, Bags: 25, Seed: int64(40 + seed)})
			ub, err := greedy.BagLPT(in)
			if err != nil {
				return nil, err
			}
			pr, err := core.RunPipeline(in, ub.Makespan(), core.Options{Eps: 0.5, BPrimeOverride: 2})
			if err != nil {
				continue
			}
			runs++
			conflicts += pr.PlaceStats.XConflicts
			swaps += pr.PlaceStats.SwapRepairs
			origin += pr.PlaceStats.OriginMoves
			generic += pr.PlaceStats.GenericMoves
		}
		t.Rows = append(t.Rows, []string{string(fam), d(runs), d(conflicts), d(swaps), d(origin), d(generic)})
	}
	t.Notes = append(t.Notes, "Generic moves are the safety-net repair; the Lemma 7/11 machinery should leave (almost) nothing for it.")
	return t, nil
}

// runL8 verifies the Lemma 8 bag-LPT bounds on random inputs: final
// spread <= pmax and max load <= h + A/m' + pmax.
func runL8(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "L8",
		Title:  "Lemma 8 — bag-LPT balance bounds",
		Claim:  "bag-LPT on m' equal-height machines keeps any two machines within pmax of each other and the maximum at most h + A/m' + pmax",
		Header: []string{"machines", "bags", "trials", "max spread / pmax", "worst slack to bound", "ok"},
	}
	trials := cfg.seeds(200, 50)
	rng := rand.New(rand.NewSource(77))
	for _, m := range []int{4, 8, 16} {
		for _, nBags := range []int{2, 6, 12} {
			worstSpread, worstSlack := 0.0, math.Inf(1)
			ok := true
			for trial := 0; trial < trials; trial++ {
				h := rng.Float64()
				loads := make([]float64, m)
				for i := range loads {
					loads[i] = h
				}
				pmax, area := 0.0, 0.0
				bags := make([][]greedy.Item, nBags)
				key := 0
				for b := range bags {
					cnt := 1 + rng.Intn(m)
					for k := 0; k < cnt; k++ {
						size := rng.Float64() * 0.3
						bags[b] = append(bags[b], greedy.Item{Key: key, Size: size})
						key++
						if size > pmax {
							pmax = size
						}
						area += size
					}
				}
				if _, err := greedy.AssignBagLPT(loads, bags); err != nil {
					return nil, err
				}
				minL, maxL := loads[0], loads[0]
				for _, l := range loads {
					minL = math.Min(minL, l)
					maxL = math.Max(maxL, l)
				}
				spread := maxL - minL
				bound := h + area/float64(m) + pmax
				if pmax > 0 && spread/pmax > worstSpread {
					worstSpread = spread / pmax
				}
				if s := bound - maxL; s < worstSlack {
					worstSlack = s
				}
				if spread > pmax+1e-9 || maxL > bound+1e-9 {
					ok = false
				}
			}
			t.Rows = append(t.Rows, []string{
				d(m), d(nBags), d(trials), f4(worstSpread), f4(worstSlack), yes(ok),
			})
		}
	}
	return t, nil
}

// runL9 measures the small-job placement height (Lemmas 8-10 combined):
// the schedule of the transformed instance stays within 1+O(eps) of the
// guess.
func runL9(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "L9",
		Title:  "Lemmas 9/10 — small-job placement keeps height 1+O(eps)",
		Claim:  "after group-bag-LPT and per-group bag-LPT the transformed schedule has makespan at most (1+O(eps)) * guess; the MILP height bound is T = 1+2eps+eps^2",
		Header: []string{"family", "eps", "guess-relative height", "T", "height <= T+2eps"},
	}
	for _, fam := range workload.Families() {
		for _, eps := range []float64{0.5, 0.4} {
			in := workload.MustGenerate(workload.Spec{Family: fam, Machines: 12, Jobs: 48, Bags: 24, Seed: 13})
			ub, err := greedy.BagLPT(in)
			if err != nil {
				return nil, err
			}
			pr, err := core.RunPipeline(in, ub.Makespan(), core.Options{Eps: eps})
			if err != nil {
				t.Rows = append(t.Rows, []string{string(fam), f3(eps), "rejected", f4(1 + 2*eps + eps*eps), "-"})
				continue
			}
			h := pr.Placed.Makespan() // sizes are guess-relative
			tt := pr.Info.T
			t.Rows = append(t.Rows, []string{
				string(fam), f3(eps), f4(h), f4(tt), yes(h <= tt+2*eps+1e-9),
			})
		}
	}
	t.Notes = append(t.Notes, "Heights are measured on the transformed, scaled instance, so 1.0 corresponds to the makespan guess (the bag-LPT upper bound here).")
	return t, nil
}

// runL11 measures the Lemma 11 repair work across many runs: origin
// chasing fixes the swap-induced conflicts and the final schedule is
// always feasible.
func runL11(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "L11",
		Title:  "Lemma 11 — origin-chasing conflict repair",
		Claim:  "conflicts between priority small and priority large jobs (caused by Lemma 7 swaps) are repaired in polynomial time with bounded height increase; the final schedule is always feasible",
		Header: []string{"family", "runs", "accepted", "origin moves", "generic moves", "all valid"},
	}
	seeds := cfg.seeds(6, 2)
	for _, fam := range workload.Families() {
		runs, accepted, origin, generic := 0, 0, 0, 0
		valid := true
		for seed := 0; seed < seeds; seed++ {
			in := workload.MustGenerate(workload.Spec{Family: fam, Machines: 20, Jobs: 70, Bags: 35, Seed: int64(60 + seed)})
			ub, err := greedy.BagLPT(in)
			if err != nil {
				return nil, err
			}
			runs++
			pr, err := core.RunPipeline(in, ub.Makespan()*1.02, core.Options{Eps: 0.5, BPrimeOverride: 2})
			if err != nil {
				continue
			}
			accepted++
			origin += pr.PlaceStats.OriginMoves
			generic += pr.PlaceStats.GenericMoves
			if err := pr.Final.Validate(); err != nil {
				valid = false
			}
		}
		t.Rows = append(t.Rows, []string{string(fam), d(runs), d(accepted), d(origin), d(generic), yes(valid)})
	}
	return t, nil
}

var _ = sched.LowerBound // keep the import for helpers below if unused
