package experiments

import (
	"fmt"
	"time"

	"repro/internal/baselines"
	"repro/internal/classify"
	"repro/internal/core"
	"repro/internal/greedy"
	"repro/internal/round"
	"repro/internal/sched"
	"repro/internal/transform"
	"repro/internal/workload"
)

func init() {
	register("F1", runF1)
	register("F2", runF2)
	register("F3", runF3)
}

// runF1 reproduces Figure 1: a large-job placement that is "efficient"
// (fits within (1+eps)OPT) can still force the small jobs to blow up the
// makespan, so the scheme must pick the right large-job placement.
func runF1(cfg Config) (*Table, error) {
	machines := 4
	if !cfg.Quick {
		machines = 8
	}
	in := workload.MustGenerate(workload.Spec{Family: workload.Adversarial, Machines: machines})

	t := &Table{
		ID:     "F1",
		Title:  "Figure 1 — large-job placement decides the makespan",
		Claim:  "packing large jobs tightly (still within (1+eps)OPT of large-job height) forces small jobs to overflow, while OPT and the EPTAS spread them",
		Header: []string{"placement", "makespan", "ratio vs OPT"},
	}

	ex, err := baselines.Exact(in, baselines.ExactOptions{TimeLimit: 20 * time.Second})
	if err != nil {
		return nil, err
	}
	opt := ex.Makespan
	t.Rows = append(t.Rows, []string{"optimal (exact B&B)", f4(opt), f3(1)})

	res, err := core.Solve(in, core.Options{Eps: 0.3, Speculate: 1})
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"EPTAS (eps=0.3)", f4(res.Makespan), f3(res.Makespan / opt)})

	stacked, err := stackedLargeDemo(in, 0.2)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"figure-1 stacked large jobs", f4(stacked.Makespan()), f3(stacked.Makespan() / opt)})

	bl, err := baselines.BagLPT(in)
	if err != nil {
		return nil, err
	}
	t.Rows = append(t.Rows, []string{"bag-LPT", f4(bl.Makespan()), f3(bl.Makespan() / opt)})

	t.Notes = append(t.Notes,
		fmt.Sprintf("Instance: %s (Figure-1 family, OPT packs each machine to ~1.0 per unit guess).", workload.Spec{Family: workload.Adversarial, Machines: machines}.Name()),
		"The stacked placement is feasible and its large-job height is within 20% of OPT, yet the final makespan blows up exactly as Figure 1 depicts.")
	return t, nil
}

// stackedLargeDemo builds the pathological placement of Figure 1: large
// jobs are first-fit packed onto as few machines as possible (allowed up
// to (1+slack)*LB), then the small jobs are placed with bag-LPT.
func stackedLargeDemo(in *sched.Instance, slack float64) (*sched.Schedule, error) {
	lb := sched.LowerBound(in)
	capacity := (1 + slack) * lb
	s := sched.NewSchedule(in)
	loads := make([]float64, in.Machines)
	bagOn := make([]map[int]bool, in.Machines)
	for i := range bagOn {
		bagOn[i] = make(map[int]bool)
	}
	// Large jobs: at least half the lower bound.
	var smallIdx []int
	for _, ji := range in.SortedJobIdxDesc() {
		job := in.Jobs[ji]
		if job.Size < lb/2 {
			smallIdx = append(smallIdx, ji)
			continue
		}
		placed := false
		for m := 0; m < in.Machines; m++ {
			if bagOn[m][job.Bag] || loads[m]+job.Size > capacity {
				continue
			}
			s.Machine[ji] = m
			loads[m] += job.Size
			bagOn[m][job.Bag] = true
			placed = true
			break
		}
		if !placed {
			// Least-loaded conflict-free machine.
			best := -1
			for m := 0; m < in.Machines; m++ {
				if bagOn[m][job.Bag] {
					continue
				}
				if best < 0 || loads[m] < loads[best] {
					best = m
				}
			}
			if best < 0 {
				return nil, fmt.Errorf("experiments: stacked demo stuck on job %d", ji)
			}
			s.Machine[ji] = best
			loads[best] += job.Size
			bagOn[best][job.Bag] = true
		}
	}
	// Small jobs by bag-LPT on the induced loads.
	byBag := make(map[int][]greedy.Item)
	var bagOrder []int
	for _, ji := range smallIdx {
		b := in.Jobs[ji].Bag
		if _, ok := byBag[b]; !ok {
			bagOrder = append(bagOrder, b)
		}
		byBag[b] = append(byBag[b], greedy.Item{Key: ji, Size: in.Jobs[ji].Size})
	}
	bags := make([][]greedy.Item, 0, len(bagOrder))
	for _, b := range bagOrder {
		bags = append(bags, byBag[b])
	}
	asg, err := greedy.AssignBagLPT(loads, bags)
	if err != nil {
		return nil, err
	}
	for bi, items := range bags {
		for ii, it := range items {
			s.Machine[it.Key] = asg[bi][ii]
		}
	}
	return s, nil
}

// runF2 reproduces Figure 2: the instance transformation splits every
// non-priority bag into a large-only and a small-only bag and adds one
// filler per large/medium job.
func runF2(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "F2",
		Title:  "Figure 2 — instance transformation accounting",
		Claim:  "every non-priority bag splits in two (large-only + small-only); #fillers equals #large+#medium jobs of split bags; the job count at most doubles",
		Header: []string{"family", "bags I", "bags I'", "jobs I", "jobs I'", "fillers", "dropped medium", "fillers==ML of split bags", "jobs I' <= 2*jobs I"},
	}
	n := 60
	if cfg.Quick {
		n = 30
	}
	for _, fam := range workload.Families() {
		// Many small bags so that non-priority bags exist; the priority
		// constant is capped (see classify.Options.BPrimeOverride).
		in := workload.MustGenerate(workload.Spec{Family: fam, Machines: n / 3, Jobs: n, Bags: n / 2, Seed: 11})
		// Scale by the bag-LPT makespan so sizes are ~OPT-relative.
		ub, err := greedy.BagLPT(in)
		if err != nil {
			return nil, err
		}
		scaled, _ := round.ScaleRound(in, ub.Makespan(), 0.5)
		info, err := classify.Classify(scaled, 0.5, classify.Options{BPrimeOverride: 2})
		if err != nil {
			return nil, err
		}
		tr := transform.Apply(scaled, info)
		fillers, dropped, mlSplit := 0, 0, 0
		for j := range tr.Inst.Jobs {
			if tr.FillerBag[j] >= 0 {
				fillers++
			}
		}
		for b, list := range tr.DroppedMedium {
			dropped += len(list)
			_ = b
		}
		// ML jobs of split bags that have small jobs.
		hasSmall := make(map[int]bool)
		for j, job := range scaled.Jobs {
			if info.JobClass[j] == classify.Small && !info.Priority[job.Bag] {
				hasSmall[job.Bag] = true
			}
		}
		for j, job := range scaled.Jobs {
			if info.JobClass[j] != classify.Small && !info.Priority[job.Bag] && hasSmall[job.Bag] {
				mlSplit++
			}
		}
		t.Rows = append(t.Rows, []string{
			string(fam),
			d(in.NumBags), d(tr.Inst.NumBags),
			d(len(in.Jobs)), d(len(tr.Inst.Jobs)),
			d(fillers), d(dropped),
			yes(fillers == mlSplit),
			yes(len(tr.Inst.Jobs) <= 2*len(in.Jobs)),
		})
	}
	return t, nil
}

// runF3 verifies Lemma 2 constructively (the situation depicted in
// Figure 3): from any feasible schedule S of I we build the schedule S'
// of I' from the lemma's proof and check its makespan is at most
// (1+eps)*C.
func runF3(cfg Config) (*Table, error) {
	t := &Table{
		ID:     "F3",
		Title:  "Figure 3 / Lemma 2 — transformation costs at most a (1+eps) factor",
		Claim:  "if I has a schedule of makespan C then I' has one of makespan (1+eps)C; the proof's construction achieves it",
		Header: []string{"family", "eps", "C (schedule of I)", "makespan S' of I'", "ratio", "bound 1+eps", "ok"},
	}
	seeds := cfg.seeds(3, 1)
	for _, fam := range workload.Families() {
		for seed := 0; seed < seeds; seed++ {
			for _, eps := range []float64{0.5, 0.33} {
				in := workload.MustGenerate(workload.Spec{Family: fam, Machines: 12, Jobs: 36, Bags: 18, Seed: int64(21 + seed)})
				s, err := greedy.BagLPT(in)
				if err != nil {
					return nil, err
				}
				c := s.Makespan()
				scaled, _ := round.ScaleRound(in, c, eps)
				info, err := classify.Classify(scaled, eps, classify.Options{BPrimeOverride: 2})
				if err != nil {
					return nil, err
				}
				tr := transform.Apply(scaled, info)
				sPrime, err := lemma2Construct(tr, s)
				if err != nil {
					return nil, err
				}
				mk := sPrime.Makespan()
				// The schedule of I scaled by C has makespan <= 1 in
				// rounded terms (1+eps); the lemma bound is relative to
				// the rounded schedule's height.
				base := scaledMakespan(tr, s)
				ratio := mk / base
				ok := ratio <= 1+eps+1e-9
				if seed == 0 {
					t.Rows = append(t.Rows, []string{
						string(fam), f3(eps), f4(base), f4(mk), f4(ratio), f4(1 + eps), yes(ok),
					})
				}
				if !ok {
					t.Notes = append(t.Notes, fmt.Sprintf("VIOLATION: %s seed %d eps %.2f ratio %.4f", fam, seed, eps, ratio))
				}
			}
		}
	}
	t.Notes = append(t.Notes, fmt.Sprintf("Checked %d (family, seed, eps) combinations; rows show seed 0.", len(workload.Families())*seeds*2))
	return t, nil
}

// lemma2Construct builds S' from S exactly as in the proof of Lemma 2:
// every surviving job keeps its machine and every filler goes to the
// machine of the large/medium job it substitutes. Dropped medium jobs of
// I simply disappear (they are not jobs of I').
func lemma2Construct(tr *transform.Transformed, s *sched.Schedule) (*sched.Schedule, error) {
	out := sched.NewSchedule(tr.Inst)
	for j := range tr.Inst.Jobs {
		switch {
		case tr.OrigJob[j] >= 0:
			out.Machine[j] = s.Machine[tr.OrigJob[j]]
		case tr.FillerFor[j] >= 0:
			out.Machine[j] = s.Machine[tr.FillerFor[j]]
		default:
			return nil, fmt.Errorf("experiments: job %d has neither origin nor filler source", j)
		}
	}
	if err := out.Validate(); err != nil {
		return nil, fmt.Errorf("experiments: lemma-2 construction infeasible: %w", err)
	}
	return out, nil
}

// scaledMakespan computes the makespan of schedule s of the original
// instance measured in the scaled+rounded sizes of tr.Orig.
func scaledMakespan(tr *transform.Transformed, s *sched.Schedule) float64 {
	loads := make([]float64, tr.Orig.Machines)
	for j, m := range s.Machine {
		loads[m] += tr.Orig.Jobs[j].Size
	}
	max := 0.0
	for _, l := range loads {
		if l > max {
			max = l
		}
	}
	return max
}
