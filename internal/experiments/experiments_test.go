package experiments

import (
	"strings"
	"testing"
)

func TestTableMarkdownRendering(t *testing.T) {
	tbl := &Table{
		ID:     "X0",
		Title:  "demo",
		Claim:  "a claim",
		Header: []string{"a", "b"},
		Rows:   [][]string{{"1", "2"}, {"3", "4"}},
		Notes:  []string{"note one"},
	}
	md := tbl.Markdown()
	for _, want := range []string{
		"## EX-X0 — demo",
		"*Claim:* a claim",
		"| a | b |",
		"| --- | --- |",
		"| 1 | 2 |",
		"note one",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestRegistryComplete(t *testing.T) {
	want := []string{"A1", "A2", "B1", "F1", "F2", "F3", "L1", "L11", "L6", "L7", "L8", "L9", "S1", "T1", "T2"}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("registry has %v, want %v", got, want)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if _, err := Run("nope", Config{}); err == nil {
		t.Error("unknown experiment accepted")
	}
}

func TestConfigSeeds(t *testing.T) {
	if (Config{}).seeds(5, 2) != 5 {
		t.Error("default seeds wrong")
	}
	if (Config{Quick: true}).seeds(5, 2) != 2 {
		t.Error("quick seeds wrong")
	}
	if (Config{Seeds: 9}).seeds(5, 2) != 9 {
		t.Error("override seeds wrong")
	}
}

// TestQuickExperimentsRun executes the cheap experiments end to end in
// quick mode; the expensive ones (T1, T2, F1, B1) are covered by
// cmd/experiments runs and the benchmark harness.
func TestQuickExperimentsRun(t *testing.T) {
	if testing.Short() {
		t.Skip("experiment runs are not short")
	}
	for _, id := range []string{"F2", "F3", "L1", "L6", "L8", "S1"} {
		id := id
		t.Run(id, func(t *testing.T) {
			tbl, err := Run(id, Config{Quick: true, Seeds: 1})
			if err != nil {
				t.Fatalf("experiment %s: %v", id, err)
			}
			if len(tbl.Rows) == 0 {
				t.Errorf("experiment %s produced no rows", id)
			}
			// Every boolean verdict column must be "yes".
			for _, row := range tbl.Rows {
				for _, cell := range row {
					if cell == "no" {
						t.Errorf("experiment %s has a failing verdict: %v", id, row)
					}
				}
			}
		})
	}
}
