package greedy

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/sched"
)

func TestAssignBagLPTSingleBag(t *testing.T) {
	loads := []float64{0, 0, 0}
	bags := [][]Item{{{Key: 0, Size: 3}, {Key: 1, Size: 2}, {Key: 2, Size: 1}}}
	asg, err := AssignBagLPT(loads, bags)
	if err != nil {
		t.Fatal(err)
	}
	// Largest job to first machine, etc.; all machines equal load order.
	if asg[0][0] != 0 || asg[0][1] != 1 || asg[0][2] != 2 {
		t.Errorf("assignment = %v", asg)
	}
	if loads[0] != 3 || loads[1] != 2 || loads[2] != 1 {
		t.Errorf("loads = %v", loads)
	}
}

func TestAssignBagLPTBalances(t *testing.T) {
	loads := []float64{0, 0}
	bags := [][]Item{
		{{Key: 0, Size: 4}, {Key: 1, Size: 1}},
		{{Key: 2, Size: 3}, {Key: 3, Size: 3}},
	}
	_, err := AssignBagLPT(loads, bags)
	if err != nil {
		t.Fatal(err)
	}
	// After bag 0: loads 4,1. Bag 1 (3,3): lower machine first -> 4,4... wait
	// machine 1 (load 1) gets first job: 4; machine 0 gets 3 -> 7? No:
	// both jobs size 3: m1 gets 3 (ties by index), m0 gets 3 -> 7,4.
	// Lemma 8: spread <= pmax = 3. |7-4| = 3 ok.
	if math.Abs(loads[0]-loads[1]) > 3+1e-9 {
		t.Errorf("spread too large: %v", loads)
	}
}

func TestAssignBagLPTDistinctMachinesPerBag(t *testing.T) {
	loads := make([]float64, 4)
	bags := [][]Item{{{Key: 0, Size: 1}, {Key: 1, Size: 1}, {Key: 2, Size: 1}, {Key: 3, Size: 1}}}
	asg, err := AssignBagLPT(loads, bags)
	if err != nil {
		t.Fatal(err)
	}
	seen := map[int]bool{}
	for _, m := range asg[0] {
		if seen[m] {
			t.Fatalf("bag reused machine %d", m)
		}
		seen[m] = true
	}
}

func TestAssignBagLPTOverfullBag(t *testing.T) {
	loads := []float64{0}
	bags := [][]Item{{{Key: 0, Size: 1}, {Key: 1, Size: 1}}}
	if _, err := AssignBagLPT(loads, bags); err == nil {
		t.Error("expected error for bag larger than machine count")
	}
}

// TestLemma8Property verifies both Lemma 8 bounds on random inputs:
// spread <= pmax, and max load <= h + area/m + pmax.
func TestLemma8Property(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(8)
		h := rng.Float64() * 2
		loads := make([]float64, m)
		for i := range loads {
			loads[i] = h
		}
		nBags := rng.Intn(6)
		bags := make([][]Item, nBags)
		pmax, area := 0.0, 0.0
		key := 0
		for b := range bags {
			cnt := 1 + rng.Intn(m)
			for k := 0; k < cnt; k++ {
				s := rng.Float64()
				bags[b] = append(bags[b], Item{Key: key, Size: s})
				key++
				area += s
				if s > pmax {
					pmax = s
				}
			}
		}
		if _, err := AssignBagLPT(loads, bags); err != nil {
			return false
		}
		minL, maxL := loads[0], loads[0]
		for _, l := range loads {
			minL = math.Min(minL, l)
			maxL = math.Max(maxL, l)
		}
		if maxL-minL > pmax+1e-9 {
			return false
		}
		return maxL <= h+area/float64(m)+pmax+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// TestLemma8UnequalStartHeights: when machines start at different
// heights, bag-LPT still produces a schedule whose spread is bounded by
// the initial spread or pmax (loads grow closer, as remarked after the
// lemma).
func TestLemma8UnequalStartHeights(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		m := 2 + rng.Intn(5)
		loads := make([]float64, m)
		initSpread := 0.0
		for i := range loads {
			loads[i] = rng.Float64() * 3
		}
		minL, maxL := loads[0], loads[0]
		for _, l := range loads {
			minL = math.Min(minL, l)
			maxL = math.Max(maxL, l)
		}
		initSpread = maxL - minL
		pmax := 0.0
		var bags [][]Item
		key := 0
		for b := 0; b < 3; b++ {
			var bag []Item
			for k := 0; k < m; k++ {
				s := rng.Float64() * 0.5
				bag = append(bag, Item{Key: key, Size: s})
				key++
				if s > pmax {
					pmax = s
				}
			}
			bags = append(bags, bag)
		}
		if _, err := AssignBagLPT(loads, bags); err != nil {
			t.Fatal(err)
		}
		minL, maxL = loads[0], loads[0]
		for _, l := range loads {
			minL = math.Min(minL, l)
			maxL = math.Max(maxL, l)
		}
		if maxL-minL > math.Max(initSpread, pmax)+1e-9 {
			t.Fatalf("trial %d: spread %.4f exceeds max(init %.4f, pmax %.4f)",
				trial, maxL-minL, initSpread, pmax)
		}
	}
}

func TestAssignGroupBagLPTCounts(t *testing.T) {
	groups := []*Group{
		{Machines: []int{0, 1}, Area: 0},
		{Machines: []int{2, 3, 4}, Area: 6},
	}
	bags := [][]Item{{
		{Key: 0, Size: 5}, {Key: 1, Size: 4}, {Key: 2, Size: 3}, {Key: 3, Size: 2}, {Key: 4, Size: 1},
	}}
	asg, err := AssignGroupBagLPT(groups, bags)
	if err != nil {
		t.Fatal(err)
	}
	// Group 0 (avg 0) gets the 2 largest, group 1 the remaining 3.
	countG0 := 0
	for i, g := range asg[0] {
		if g == 0 {
			countG0++
			if bags[0][i].Size < 4 {
				t.Errorf("group 0 received small item %v", bags[0][i])
			}
		}
	}
	if countG0 != 2 {
		t.Errorf("group 0 received %d items, want 2", countG0)
	}
}

func TestAssignGroupBagLPTTooMany(t *testing.T) {
	groups := []*Group{{Machines: []int{0}}}
	bags := [][]Item{{{Key: 0, Size: 1}, {Key: 1, Size: 1}}}
	if _, err := AssignGroupBagLPT(groups, bags); err == nil {
		t.Error("expected error when a bag exceeds total machines")
	}
}

func TestAssignGroupBagLPTUpdatesAreas(t *testing.T) {
	groups := []*Group{
		{Machines: []int{0}, Area: 0},
		{Machines: []int{1}, Area: 0},
	}
	bags := [][]Item{
		{{Key: 0, Size: 10}},
		{{Key: 1, Size: 1}},
	}
	asg, err := AssignGroupBagLPT(groups, bags)
	if err != nil {
		t.Fatal(err)
	}
	if asg[0][0] != 0 {
		t.Fatalf("first item to group %d, want 0", asg[0][0])
	}
	// Second bag must go to the now-lighter group 1.
	if asg[1][0] != 1 {
		t.Errorf("second item to group %d, want 1", asg[1][0])
	}
}

func TestListSchedule(t *testing.T) {
	in := sched.NewInstance(2)
	in.AddJob(3, 0)
	in.AddJob(2, 0)
	in.AddJob(1, 1)
	s, err := ListSchedule(in, []int{0, 1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Validate(); err != nil {
		t.Fatal(err)
	}
	// Job 1 (bag 0) cannot share with job 0: machines differ.
	if s.Machine[0] == s.Machine[1] {
		t.Error("bag conflict in list schedule")
	}
}

func TestListScheduleInfeasible(t *testing.T) {
	in := sched.NewInstance(1)
	in.AddJob(1, 0)
	in.AddJob(1, 0)
	if _, err := ListSchedule(in, []int{0, 1}); err == nil {
		t.Error("expected failure: bag larger than machine count")
	}
}

func TestBagLPTFeasibleAndBounded(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 2 + rng.Intn(6)
		in := sched.NewInstance(m)
		nBags := 1 + rng.Intn(8)
		for b := 0; b < nBags; b++ {
			cnt := 1 + rng.Intn(m)
			for k := 0; k < cnt; k++ {
				in.AddJob(0.05+rng.Float64(), b)
			}
		}
		s, err := BagLPT(in)
		if err != nil {
			return false
		}
		if s.Validate() != nil {
			return false
		}
		// Global sanity: makespan is at least the LB and at most
		// area/m + nBags*pmax (each bag adds at most pmax spread).
		lb := sched.LowerBound(in)
		ub := in.TotalArea()/float64(m) + float64(nBags)*in.MaxJobSize()
		mk := s.Makespan()
		return mk >= lb-1e-9 && mk <= ub+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestBagLPTInfeasibleInstance(t *testing.T) {
	in := sched.NewInstance(1)
	in.AddJob(1, 0)
	in.AddJob(1, 0)
	if _, err := BagLPT(in); err == nil {
		t.Error("expected infeasibility error")
	}
}
