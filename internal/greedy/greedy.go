// Package greedy implements the list-scheduling primitives the paper builds
// its small-job placement on: bag-LPT (Section 4, Lemma 8), group-bag-LPT
// (Section 4.1, Lemma 9) and least-loaded feasible list scheduling.
//
// The primitives are expressed over abstract items so they can be reused
// both by the EPTAS placer (on machine groups with reserved heights) and by
// the standalone baseline algorithms.
package greedy

import (
	"fmt"
	"sort"

	"repro/internal/sched"
)

// Item is a job handle: Key identifies the job to the caller, Size is its
// processing time.
type Item struct {
	Key  int
	Size float64
}

// sortItemsDesc orders items by decreasing size, ties by increasing key.
func sortItemsDesc(items []Item) {
	sort.SliceStable(items, func(a, b int) bool {
		if items[a].Size != items[b].Size {
			return items[a].Size > items[b].Size
		}
		return items[a].Key < items[b].Key
	})
}

// AssignBagLPT runs the paper's bag-LPT on a group of machines: for each
// bag in order, the bag's items are sorted by decreasing size, machines by
// increasing current load, and the j-th item goes to the j-th machine.
// Bags with fewer items than machines are implicitly padded with zero-size
// dummy jobs (the tail machines receive nothing).
//
// loads is modified in place. The result is parallel to bags: result[b][i]
// is the machine index (into loads) of bags[b][i]. Every bag must have at
// most len(loads) items; within a bag each item lands on a distinct
// machine, so the placement is conflict-free by construction (Lemma 8's
// precondition is that any item may run on any machine of the group).
func AssignBagLPT(loads []float64, bags [][]Item) ([][]int, error) {
	m := len(loads)
	result := make([][]int, len(bags))
	order := make([]int, m)
	for b, bag := range bags {
		if len(bag) > m {
			return nil, fmt.Errorf("greedy: bag %d has %d items for %d machines", b, len(bag), m)
		}
		items := make([]Item, len(bag))
		copy(items, bag)
		sortItemsDesc(items)
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			if loads[order[a]] != loads[order[b]] {
				return loads[order[a]] < loads[order[b]]
			}
			return order[a] < order[b]
		})
		asg := make([]int, len(bag))
		// items is the sorted view; map back to the original positions.
		pos := sortedPositions(bag, items)
		for j, it := range items {
			mach := order[j]
			loads[mach] += it.Size
			asg[pos[j]] = mach
		}
		result[b] = asg
	}
	return result, nil
}

// sortedPositions returns, for each element of sorted, the index of the
// corresponding element in orig. Duplicate (Size, Key) pairs cannot occur
// for distinct jobs because keys are unique within a bag.
func sortedPositions(orig, sorted []Item) []int {
	byKey := make(map[int]int, len(orig))
	for i, it := range orig {
		byKey[it.Key] = i
	}
	pos := make([]int, len(sorted))
	for j, it := range sorted {
		pos[j] = byKey[it.Key]
	}
	return pos
}

// Group is a set of machines treated as one bucket by group-bag-LPT.
type Group struct {
	// Machines are global machine indices belonging to the group.
	Machines []int
	// Area is the total load currently on the group's machines.
	Area float64
}

// avg returns the group's average machine load.
func (g *Group) avg() float64 {
	if len(g.Machines) == 0 {
		return 0
	}
	return g.Area / float64(len(g.Machines))
}

// AssignGroupBagLPT runs the paper's group-bag-LPT: for each bag in order,
// its items are sorted by decreasing size and the groups by increasing
// average load; the first |M_1| items go to the first group, the next
// |M_2| to the second, and so on. Group areas are updated between bags.
//
// The result is parallel to bags: result[b][i] is the group index (into
// groups) of bags[b][i]. The total number of items in any single bag must
// not exceed the total number of machines.
func AssignGroupBagLPT(groups []*Group, bags [][]Item) ([][]int, error) {
	totalMachines := 0
	for _, g := range groups {
		totalMachines += len(g.Machines)
	}
	result := make([][]int, len(bags))
	for b, bag := range bags {
		if len(bag) > totalMachines {
			return nil, fmt.Errorf("greedy: bag %d has %d items for %d machines total", b, len(bag), totalMachines)
		}
		items := make([]Item, len(bag))
		copy(items, bag)
		sortItemsDesc(items)
		order := make([]int, len(groups))
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(x, y int) bool {
			ax, ay := groups[order[x]].avg(), groups[order[y]].avg()
			if ax != ay {
				return ax < ay
			}
			return order[x] < order[y]
		})
		asg := make([]int, len(bag))
		pos := sortedPositions(bag, items)
		next := 0
		for _, gi := range order {
			g := groups[gi]
			take := len(g.Machines)
			for t := 0; t < take && next < len(items); t++ {
				g.Area += items[next].Size
				asg[pos[next]] = gi
				next++
			}
			if next == len(items) {
				break
			}
		}
		result[b] = asg
	}
	return result, nil
}

// ListSchedule assigns the jobs of in, in the given index order, each to
// the least-loaded machine that holds no job of the same bag. It fails
// only if some bag has more jobs than machines.
func ListSchedule(in *sched.Instance, order []int) (*sched.Schedule, error) {
	s := sched.NewSchedule(in)
	loads := make([]float64, in.Machines)
	bagOn := make([]map[int]bool, in.Machines)
	for i := range bagOn {
		bagOn[i] = make(map[int]bool)
	}
	for _, ji := range order {
		job := in.Jobs[ji]
		best := -1
		for m := 0; m < in.Machines; m++ {
			if bagOn[m][job.Bag] {
				continue
			}
			if best < 0 || loads[m] < loads[best] {
				best = m
			}
		}
		if best < 0 {
			return nil, fmt.Errorf("greedy: no conflict-free machine for job %d (bag %d)", ji, job.Bag)
		}
		s.Machine[ji] = best
		loads[best] += job.Size
		bagOn[best][job.Bag] = true
	}
	return s, nil
}

// BagLPT schedules a whole instance with the paper's bag-LPT applied
// globally: bags are processed in decreasing order of total area, and each
// bag's jobs are spread over the machines sorted by load. The schedule is
// conflict-free whenever every bag has at most m jobs.
func BagLPT(in *sched.Instance) (*sched.Schedule, error) {
	if err := in.Feasible(); err != nil {
		return nil, err
	}
	byBag := in.JobsByBag()
	bagOrder := make([]int, in.NumBags)
	areas := make([]float64, in.NumBags)
	for b := range bagOrder {
		bagOrder[b] = b
		for _, ji := range byBag[b] {
			areas[b] += in.Jobs[ji].Size
		}
	}
	sort.SliceStable(bagOrder, func(a, b int) bool {
		if areas[bagOrder[a]] != areas[bagOrder[b]] {
			return areas[bagOrder[a]] > areas[bagOrder[b]]
		}
		return bagOrder[a] < bagOrder[b]
	})
	bags := make([][]Item, 0, in.NumBags)
	for _, b := range bagOrder {
		items := make([]Item, 0, len(byBag[b]))
		for _, ji := range byBag[b] {
			items = append(items, Item{Key: ji, Size: in.Jobs[ji].Size})
		}
		bags = append(bags, items)
	}
	loads := make([]float64, in.Machines)
	asg, err := AssignBagLPT(loads, bags)
	if err != nil {
		return nil, err
	}
	s := sched.NewSchedule(in)
	for bi, bag := range bags {
		for i, it := range bag {
			s.Machine[it.Key] = asg[bi][i]
		}
	}
	return s, nil
}

// SpeedLPT schedules an instance on uniformly related machines: jobs in
// decreasing size order, each to the machine minimizing its completion
// time (load+size)/speed, ties by machine index. Bag constraints are
// ignored (the related family uses singleton bags), so the schedule is
// always conflict-free for such instances.
func SpeedLPT(in *sched.Instance) (*sched.Schedule, error) {
	s := sched.NewSchedule(in)
	loads := make([]float64, in.Machines)
	for _, ji := range in.SortedJobIdxDesc() {
		size := in.Jobs[ji].Size
		best, bestT := -1, 0.0
		for m := 0; m < in.Machines; m++ {
			t := (loads[m] + size) / in.Speed(m)
			if best < 0 || t < bestT {
				best, bestT = m, t
			}
		}
		s.Machine[ji] = best
		loads[best] += size
	}
	return s, nil
}
