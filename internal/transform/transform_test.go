package transform

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/classify"
	"repro/internal/greedy"
	"repro/internal/round"
	"repro/internal/sched"
	"repro/internal/workload"
)

// prep scales an instance by its bag-LPT makespan, rounds, classifies
// with a small priority cap (so non-priority bags exist) and transforms.
func prep(t *testing.T, in *sched.Instance, eps float64) (*Transformed, *classify.Info) {
	t.Helper()
	ub, err := greedy.BagLPT(in)
	if err != nil {
		t.Fatal(err)
	}
	scaled, _ := round.ScaleRound(in, ub.Makespan(), eps)
	info, err := classify.Classify(scaled, eps, classify.Options{BPrimeOverride: 2})
	if err != nil {
		t.Fatal(err)
	}
	return Apply(scaled, info), info
}

func testInstance(seed int64) *sched.Instance {
	return workload.MustGenerate(workload.Spec{
		Family: workload.Uniform, Machines: 10, Jobs: 40, Bags: 20, Seed: seed,
	})
}

func TestApplyInvariants(t *testing.T) {
	tr, info := prep(t, testInstance(1), 0.5)
	if err := tr.Inst.Validate(); err != nil {
		t.Fatalf("transformed instance invalid: %v", err)
	}
	if err := tr.Inst.Feasible(); err != nil {
		t.Fatalf("transformed instance infeasible: %v", err)
	}
	// Priority bags copied unchanged: same job multiset.
	origCount := make(map[int]int)
	for _, job := range tr.Orig.Jobs {
		if info.Priority[job.Bag] {
			origCount[job.Bag]++
		}
	}
	newCount := make(map[int]int)
	for _, job := range tr.Inst.Jobs {
		if job.Bag < tr.Orig.NumBags && info.Priority[job.Bag] {
			newCount[job.Bag]++
		}
	}
	for b, c := range origCount {
		if newCount[b] != c {
			t.Errorf("priority bag %d: %d jobs became %d", b, c, newCount[b])
		}
	}
	// Job count at most doubles (Lemma 2's observation).
	if len(tr.Inst.Jobs) > 2*len(tr.Orig.Jobs) {
		t.Errorf("job count %d > 2*%d", len(tr.Inst.Jobs), len(tr.Orig.Jobs))
	}
}

func TestNoMediumInNonPriorityBags(t *testing.T) {
	for seed := int64(1); seed <= 5; seed++ {
		tr, info := prep(t, testInstance(seed), 0.5)
		for j, job := range tr.Inst.Jobs {
			if tr.Priority[job.Bag] {
				continue
			}
			if info.ClassOf(job.Size) == classify.Medium {
				t.Fatalf("seed %d: medium job %d in non-priority bag %d", seed, j, job.Bag)
			}
		}
	}
}

func TestSplitBagsSeparateClasses(t *testing.T) {
	tr, info := prep(t, testInstance(2), 0.5)
	for j, job := range tr.Inst.Jobs {
		if tr.Priority[job.Bag] {
			continue
		}
		cls := info.ClassOf(job.Size)
		if job.Bag >= tr.Orig.NumBags {
			// B'_l bags hold only large jobs.
			if cls != classify.Large {
				t.Errorf("job %d (class %v) in large-only bag %d", j, cls, job.Bag)
			}
		} else if cls != classify.Small {
			// Remaining non-priority original bags hold only small jobs.
			t.Errorf("job %d (class %v) left in small-only bag %d", j, cls, job.Bag)
		}
	}
}

func TestFillerAccounting(t *testing.T) {
	tr, info := prep(t, testInstance(3), 0.5)
	// Count fillers per split bag and ML jobs per split bag (with smalls).
	fillers := make(map[int]int)
	for j := range tr.Inst.Jobs {
		if tr.FillerBag[j] >= 0 {
			fillers[tr.FillerBag[j]]++
			if tr.OrigJob[j] != -1 {
				t.Errorf("filler %d has an orig job", j)
			}
			if tr.FillerFor[j] < 0 {
				t.Errorf("filler %d lacks a source job", j)
			}
			// Fillers are small.
			if info.ClassOf(tr.Inst.Jobs[j].Size) != classify.Small {
				t.Errorf("filler %d is not small", j)
			}
		}
	}
	hasSmall := make(map[int]bool)
	mlCount := make(map[int]int)
	for j, job := range tr.Orig.Jobs {
		if info.Priority[job.Bag] {
			continue
		}
		if info.JobClass[j] == classify.Small {
			hasSmall[job.Bag] = true
		} else {
			mlCount[job.Bag]++
		}
	}
	for b, c := range mlCount {
		want := 0
		if hasSmall[b] {
			want = c
		}
		if fillers[b] != want {
			t.Errorf("bag %d: %d fillers, want %d", b, fillers[b], want)
		}
	}
}

func TestLemma2ConstructionBound(t *testing.T) {
	// Build S' from a feasible S per the Lemma 2 proof and verify the
	// (1+eps) bound, for several seeds and eps values.
	for seed := int64(1); seed <= 6; seed++ {
		for _, eps := range []float64{0.5, 0.33} {
			in := testInstance(seed)
			s, err := greedy.BagLPT(in)
			if err != nil {
				t.Fatal(err)
			}
			ubMk := s.Makespan()
			scaled, _ := round.ScaleRound(in, ubMk, eps)
			info, err := classify.Classify(scaled, eps, classify.Options{BPrimeOverride: 2})
			if err != nil {
				t.Fatal(err)
			}
			tr := Apply(scaled, info)
			// Makespan of s in scaled sizes.
			loads := make([]float64, scaled.Machines)
			for j, m := range s.Machine {
				loads[m] += scaled.Jobs[j].Size
			}
			c := 0.0
			for _, l := range loads {
				c = math.Max(c, l)
			}
			// S' per the proof.
			sp := sched.NewSchedule(tr.Inst)
			for j := range tr.Inst.Jobs {
				if tr.OrigJob[j] >= 0 {
					sp.Machine[j] = s.Machine[tr.OrigJob[j]]
				} else {
					sp.Machine[j] = s.Machine[tr.FillerFor[j]]
				}
			}
			if err := sp.Validate(); err != nil {
				t.Fatalf("seed %d eps %g: S' infeasible: %v", seed, eps, err)
			}
			if mk := sp.Makespan(); mk > (1+eps)*c+1e-9 {
				t.Errorf("seed %d eps %g: S' makespan %g > (1+eps)*%g", seed, eps, mk, c)
			}
		}
	}
}

func TestLiftRoundTrip(t *testing.T) {
	// A feasible schedule of I' must lift to a feasible schedule of I
	// covering every original job.
	prop := func(seed int64) bool {
		in := workload.MustGenerate(workload.Spec{
			Family: workload.Uniform, Machines: 8, Jobs: 30, Bags: 15,
			Seed: 1 + (seed%1000+1000)%1000,
		})
		tr, _ := prepQuiet(in, 0.5)
		if tr == nil {
			return true
		}
		sPrime, err := greedy.BagLPT(tr.Inst)
		if err != nil {
			return true // transformed instance may be infeasible for LPT only if bags > m
		}
		lifted, _, err := tr.Lift(sPrime)
		if err != nil {
			return false
		}
		return lifted.Validate() == nil && len(lifted.Machine) == len(in.Jobs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func prepQuiet(in *sched.Instance, eps float64) (*Transformed, *classify.Info) {
	ub, err := greedy.BagLPT(in)
	if err != nil {
		return nil, nil
	}
	scaled, _ := round.ScaleRound(in, ub.Makespan(), eps)
	info, err := classify.Classify(scaled, eps, classify.Options{BPrimeOverride: 2})
	if err != nil {
		return nil, nil
	}
	return Apply(scaled, info), info
}

func TestLiftInsertsAllMediums(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		in := testInstance(seed)
		tr, _ := prep(t, in, 0.5)
		dropped := 0
		for _, l := range tr.DroppedMedium {
			dropped += len(l)
		}
		sPrime, err := greedy.BagLPT(tr.Inst)
		if err != nil {
			t.Fatal(err)
		}
		lifted, stats, err := tr.Lift(sPrime)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if stats.MediumInserted != dropped {
			t.Errorf("seed %d: inserted %d mediums, dropped %d", seed, stats.MediumInserted, dropped)
		}
		if err := lifted.Validate(); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestLiftRejectsForeignSchedule(t *testing.T) {
	in := testInstance(1)
	tr, _ := prep(t, in, 0.5)
	other := sched.NewSchedule(in)
	if _, _, err := tr.Lift(other); err == nil {
		t.Error("expected error for schedule of the wrong instance")
	}
}

func TestLiftBoundsHeightIncrease(t *testing.T) {
	// The lift's height increase over S' comes only from medium
	// insertion (<= 2eps per the paper, measured here loosely) — filler
	// swaps never increase the receiving machine's load.
	rng := rand.New(rand.NewSource(4))
	for trial := 0; trial < 10; trial++ {
		in := workload.MustGenerate(workload.Spec{
			Family: workload.Geometric, Machines: 8, Jobs: 32, Bags: 16, Seed: rng.Int63n(1000),
		})
		tr, info := prep(t, in, 0.5)
		sPrime, err := greedy.BagLPT(tr.Inst)
		if err != nil {
			t.Fatal(err)
		}
		before := sPrime.Makespan()
		lifted, stats, err := tr.Lift(sPrime)
		if err != nil {
			t.Fatal(err)
		}
		// Measure lifted makespan in scaled sizes.
		loads := make([]float64, in.Machines)
		for j, m := range lifted.Machine {
			loads[m] += tr.Orig.Jobs[j].Size
		}
		after := 0.0
		for _, l := range loads {
			after = math.Max(after, l)
		}
		// Allowed: medium insertion adds at most cap * eps^K per machine
		// plus filler-swap slack of one pmax (a real small replacing a
		// filler of equal-or-larger size never increases load; the
		// fallback may add one small job).
		epsK := math.Pow(0.5, float64(info.K))
		allow := float64(stats.MachineCap)*epsK + info.SmallThreshold()
		if after > before+allow+1e-9 {
			t.Errorf("trial %d: lift grew makespan %.4f -> %.4f (allow %.4f)", trial, before, after, allow)
		}
	}
}
