// Package transform implements the instance transformation of Section 2.2
// of the paper and its inverse.
//
// Apply splits every non-priority bag B_l of an instance I into a bag B'_l
// holding its large jobs and the remaining bag B_l holding its small jobs
// plus one "filler" job (of size pmax, the largest small size in B_l) per
// large or medium job; the medium jobs of non-priority bags are removed
// entirely. The result is the modified instance I' in which non-priority
// bags contain either only large or only small jobs (Lemma 2: any makespan
// C solution of I induces a makespan (1+eps)C solution of I').
//
// Lift inverts the transformation on a solution S' of I': it re-inserts
// the removed medium jobs via an integral max-flow (Lemma 3, adding at
// most 2*eps height), then swaps real small jobs with filler jobs so that
// only fillers conflict, and deletes the fillers (Lemma 4, no height
// increase beyond S').
package transform

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/classify"
	"repro/internal/flow"
	"repro/internal/numeric"
	"repro/internal/sched"
)

// Transformed couples an original instance with its modified version and
// the bookkeeping needed to lift solutions back.
type Transformed struct {
	// Orig is the input instance (scaled and rounded).
	Orig *sched.Instance
	// Info is the classification of Orig.
	Info *classify.Info
	// Inst is the modified instance I'.
	Inst *sched.Instance
	// OrigJob maps a job index of Inst to its job index in Orig, or -1
	// for filler jobs.
	OrigJob []int
	// FillerBag maps a filler job index of Inst to its bag in Inst
	// (equal to the original bag id); -1 for non-filler jobs.
	FillerBag []int
	// FillerFor maps a filler job index of Inst to the Orig job index of
	// the large/medium job it substitutes; -1 for non-filler jobs.
	FillerFor []int
	// LargeBagOf maps an original bag id to the id of the new bag B'_l
	// holding its large jobs, or -1 when the bag was not split.
	LargeBagOf []int
	// OrigBagOf maps a bag id of Inst to the original bag id it derives
	// from (identity for ids < Orig.NumBags).
	OrigBagOf []int
	// DroppedMedium lists, per original bag, the Orig job indices of the
	// medium jobs that were removed (non-empty only for split bags).
	DroppedMedium [][]int
	// Priority reports priority status per bag of Inst: original bags
	// keep their flag, new B'_l bags are non-priority.
	Priority []bool
	// View is the exact numeric view of Inst (size-table indices and
	// fixed-point sizes per job), built during Apply without any float64
	// searches: copied jobs inherit the original job's index, fillers the
	// index of the bag's pmax job.
	View *classify.View
}

// Apply performs the Section 2.2 transformation. Priority bags are copied
// unchanged. Every non-priority bag is split as described in the package
// comment. (The paper leaves bags without small jobs unmodified; we split
// them uniformly — they receive no fillers, and their medium jobs are
// re-inserted by Lift exactly like the paper's Lemma 3 — which preserves
// the invariant that all medium jobs of I' belong to priority bags.)
func Apply(in *sched.Instance, info *classify.Info) *Transformed {
	t := &Transformed{
		Orig:          in,
		Info:          info,
		Inst:          sched.NewInstance(in.Machines),
		LargeBagOf:    make([]int, in.NumBags),
		DroppedMedium: make([][]int, in.NumBags),
	}
	for b := range t.LargeBagOf {
		t.LargeBagOf[b] = -1
	}
	t.Inst.NumBags = in.NumBags
	t.OrigBagOf = make([]int, in.NumBags)
	for b := range t.OrigBagOf {
		t.OrigBagOf[b] = b
	}

	// Largest small size per bag (pmax for fillers), with its size-table
	// index for the numeric view.
	pmax := make([]float64, in.NumBags)
	pmaxIdx := make([]int, in.NumBags)
	hasSmall := make([]bool, in.NumBags)
	for j, job := range in.Jobs {
		if info.JobClass[j] == classify.Small {
			hasSmall[job.Bag] = true
			if job.Size > pmax[job.Bag] {
				pmax[job.Bag] = job.Size
				pmaxIdx[job.Bag] = info.JobSize[j]
			}
		}
	}

	t.View = &classify.View{Info: info}
	addJob := func(origIdx int, size float64, bag int, fillerFor, sizeIdx int) {
		idx := len(t.Inst.Jobs)
		t.Inst.Jobs = append(t.Inst.Jobs, sched.Job{ID: sched.JobID(idx), Size: size, Bag: bag})
		if bag >= t.Inst.NumBags {
			t.Inst.NumBags = bag + 1
		}
		t.View.JobIdx = append(t.View.JobIdx, sizeIdx)
		t.View.JobFx = append(t.View.JobFx, numeric.FromFloat(size))
		if fillerFor >= 0 {
			t.OrigJob = append(t.OrigJob, -1)
			t.FillerBag = append(t.FillerBag, bag)
			t.FillerFor = append(t.FillerFor, fillerFor)
		} else {
			t.OrigJob = append(t.OrigJob, origIdx)
			t.FillerBag = append(t.FillerBag, -1)
			t.FillerFor = append(t.FillerFor, -1)
		}
	}

	newBag := func(origBag int) int {
		if t.LargeBagOf[origBag] >= 0 {
			return t.LargeBagOf[origBag]
		}
		id := t.Inst.NumBags
		t.Inst.NumBags = id + 1
		t.LargeBagOf[origBag] = id
		t.OrigBagOf = append(t.OrigBagOf, origBag)
		return id
	}

	for j, job := range in.Jobs {
		b := job.Bag
		if info.Priority[b] {
			addJob(j, job.Size, b, -1, info.JobSize[j])
			continue
		}
		switch info.JobClass[j] {
		case classify.Small:
			addJob(j, job.Size, b, -1, info.JobSize[j])
		case classify.Large:
			addJob(j, job.Size, newBag(b), -1, info.JobSize[j])
			if hasSmall[b] {
				addJob(-1, pmax[b], b, j, pmaxIdx[b])
			}
		case classify.Medium:
			t.DroppedMedium[b] = append(t.DroppedMedium[b], j)
			if hasSmall[b] {
				addJob(-1, pmax[b], b, j, pmaxIdx[b])
			}
		}
	}

	t.Priority = make([]bool, t.Inst.NumBags)
	for b := 0; b < in.NumBags; b++ {
		t.Priority[b] = info.Priority[b]
	}
	// New B'_l bags stay non-priority.
	return t
}

// LiftStats reports what the lift had to do.
type LiftStats struct {
	// MediumInserted is the number of dropped medium jobs re-inserted.
	MediumInserted int
	// MachineCap is the final per-machine capacity of the Lemma 3 flow.
	MachineCap int
	// FillerSwaps is the number of Lemma 4 swaps performed.
	FillerSwaps int
	// FallbackMoves counts conflicts resolved by the generic fallback
	// (least-loaded free machine) instead of a filler swap.
	FallbackMoves int
}

// Lift converts a feasible solution of Inst into a feasible solution of
// Orig. The returned schedule assigns every job of Orig.
func (t *Transformed) Lift(s *sched.Schedule) (*sched.Schedule, LiftStats, error) {
	var stats LiftStats
	if s.Inst != t.Inst {
		return nil, stats, fmt.Errorf("transform: schedule does not belong to the transformed instance")
	}
	m := t.Orig.Machines

	// Machine assignment for every Orig job; -1 until known.
	asg := make([]int, len(t.Orig.Jobs))
	for i := range asg {
		asg[i] = -1
	}
	for j, mach := range s.Machine {
		if oj := t.OrigJob[j]; oj >= 0 {
			asg[oj] = mach
		}
	}

	// Step 1 (Lemma 3): re-insert dropped medium jobs with an integral
	// max-flow. For each split bag l, its mediums may use any machine
	// without a job of B'_l; edge capacity 1 enforces at most one medium
	// of a bag per machine; the per-machine sink capacity starts at the
	// paper's ceil(total/((1-eps)m)) and grows until the flow saturates.
	mediumBags := make([]int, 0)
	totalMedium := 0
	for b, list := range t.DroppedMedium {
		if len(list) > 0 {
			mediumBags = append(mediumBags, b)
			totalMedium += len(list)
		}
	}
	medAssign := make(map[int]int) // Orig job idx -> machine
	if totalMedium > 0 {
		// Machines blocked per bag: those holding a job of B'_l.
		blocked := make(map[int]map[int]bool, len(mediumBags))
		for _, b := range mediumBags {
			blocked[b] = make(map[int]bool)
		}
		for j, mach := range s.Machine {
			bag := t.Inst.Jobs[j].Bag
			ob := t.OrigBagOf[bag]
			if bag >= t.Orig.NumBags { // a B'_l bag
				if bl, ok := blocked[ob]; ok {
					bl[mach] = true
				}
			}
		}
		capStart := int(math.Ceil(float64(totalMedium) / math.Max(1, (1-t.Info.Eps)*float64(m))))
		if capStart < 1 {
			capStart = 1
		}
		solved := false
		for c := capStart; c <= totalMedium; c++ {
			g := flow.NewGraph(2 + len(mediumBags) + m)
			src, sink := 0, 1
			bagNode := func(i int) int { return 2 + i }
			machNode := func(i int) int { return 2 + len(mediumBags) + i }
			type edgeRef struct {
				bagIdx  int
				machine int
				e       *flow.Edge
			}
			var refs []edgeRef
			for i, b := range mediumBags {
				if _, err := g.AddEdge(src, bagNode(i), len(t.DroppedMedium[b])); err != nil {
					return nil, stats, err
				}
				for mach := 0; mach < m; mach++ {
					if blocked[b][mach] {
						continue
					}
					e, err := g.AddEdge(bagNode(i), machNode(mach), 1)
					if err != nil {
						return nil, stats, err
					}
					refs = append(refs, edgeRef{bagIdx: i, machine: mach, e: e})
				}
			}
			for mach := 0; mach < m; mach++ {
				if _, err := g.AddEdge(machNode(mach), sink, c); err != nil {
					return nil, stats, err
				}
			}
			val, err := g.MaxFlow(src, sink)
			if err != nil {
				return nil, stats, err
			}
			if val < totalMedium {
				continue
			}
			// Decode: each saturated bag->machine edge hosts one medium.
			next := make([]int, len(mediumBags)) // next medium per bag
			for _, r := range refs {
				if r.e.Flow() <= 0 {
					continue
				}
				b := mediumBags[r.bagIdx]
				job := t.DroppedMedium[b][next[r.bagIdx]]
				next[r.bagIdx]++
				medAssign[job] = r.machine
				asg[job] = r.machine
			}
			stats.MachineCap = c
			stats.MediumInserted = totalMedium
			solved = true
			break
		}
		if !solved {
			return nil, stats, fmt.Errorf("transform: lemma 3 flow infeasible for %d medium jobs", totalMedium)
		}
	}

	// Step 2 (Lemma 4): in the merged-bag view, resolve conflicts between
	// a real small job of bag l and a large/medium job of the same
	// original bag by swapping the small job with a filler located on a
	// machine free of bag-l large/medium jobs; then delete the fillers
	// (they are not jobs of Orig).
	//
	// heavy[l] = set of machines holding a large job of B'_l or an
	// inserted medium of l.
	heavy := make(map[int]map[int]bool)
	markHeavy := func(b, mach int) {
		if heavy[b] == nil {
			heavy[b] = make(map[int]bool)
		}
		heavy[b][mach] = true
	}
	for j, mach := range s.Machine {
		bag := t.Inst.Jobs[j].Bag
		if bag >= t.Orig.NumBags {
			markHeavy(t.OrigBagOf[bag], mach)
		}
	}
	for job, mach := range medAssign {
		markHeavy(t.Orig.Jobs[job].Bag, mach)
	}

	// Fillers per bag, with their machines (from s).
	fillers := make(map[int][]int) // bag -> Inst job idxs (fillers)
	for j := range t.Inst.Jobs {
		if t.FillerBag[j] >= 0 {
			fillers[t.FillerBag[j]] = append(fillers[t.FillerBag[j]], j)
		}
	}
	// Loads of the merged schedule (for fallback target choice), on Inst
	// sizes plus inserted mediums.
	loads := s.Loads()
	for job, mach := range medAssign {
		loads[mach] += t.Orig.Jobs[job].Size
	}

	for b, hv := range heavy {
		if len(hv) == 0 {
			continue
		}
		// Real small jobs of bag b and their machines.
		fillerMach := make(map[int]int) // filler Inst idx -> machine
		usedFiller := make(map[int]bool)
		for _, fj := range fillers[b] {
			fillerMach[fj] = s.Machine[fj]
		}
		for j, mach := range s.Machine {
			if t.Inst.Jobs[j].Bag != b || t.FillerBag[j] >= 0 {
				continue
			}
			oj := t.OrigJob[j]
			if oj < 0 || !hv[mach] {
				continue
			}
			// Conflict: real small job oj on a heavy machine. Find a
			// filler of bag b on a non-heavy machine and swap.
			swapped := false
			keys := make([]int, 0, len(fillerMach))
			for fj := range fillerMach {
				keys = append(keys, fj)
			}
			sort.Ints(keys)
			for _, fj := range keys {
				fm := fillerMach[fj]
				if usedFiller[fj] || hv[fm] {
					continue
				}
				// Swap: small -> fm, filler -> mach (deleted later).
				asg[oj] = fm
				loads[fm] += t.Inst.Jobs[j].Size - t.Inst.Jobs[fj].Size
				loads[mach] += t.Inst.Jobs[fj].Size - t.Inst.Jobs[j].Size
				fillerMach[fj] = mach
				usedFiller[fj] = true
				stats.FillerSwaps++
				swapped = true
				break
			}
			if !swapped {
				// Fallback: least-loaded machine with no job of the
				// merged bag b at all.
				target := t.freeMachine(b, asg, loads)
				if target < 0 {
					return nil, stats, fmt.Errorf("transform: no free machine for small job %d of bag %d", oj, b)
				}
				loads[target] += t.Inst.Jobs[j].Size
				loads[mach] -= t.Inst.Jobs[j].Size
				asg[oj] = target
				stats.FallbackMoves++
			}
		}
	}

	out := &sched.Schedule{Inst: t.Orig, Machine: asg}
	if err := out.Validate(); err != nil {
		return nil, stats, fmt.Errorf("transform: lifted schedule invalid: %w", err)
	}
	return out, stats, nil
}

// freeMachine returns the least-loaded machine with no job of original
// bag b under the partial assignment asg, or -1 if none exists.
func (t *Transformed) freeMachine(b int, asg []int, loads []float64) int {
	used := make([]bool, t.Orig.Machines)
	for oj, mach := range asg {
		if mach >= 0 && t.Orig.Jobs[oj].Bag == b {
			used[mach] = true
		}
	}
	best := -1
	for mach := 0; mach < t.Orig.Machines; mach++ {
		if used[mach] {
			continue
		}
		if best < 0 || loads[mach] < loads[best] {
			best = mach
		}
	}
	return best
}
