package workload

import (
	"reflect"
	"testing"
)

func TestRelatedFamilies(t *testing.T) {
	got := RelatedFamilies()
	if !reflect.DeepEqual(got, []Family{RelatedFew, RelatedSkew}) {
		t.Fatalf("RelatedFamilies() = %v", got)
	}
	// Related generators are deliberately not in the bag-family list:
	// the corpus-wide bag differential tests iterate Families().
	for _, f := range Families() {
		if f == RelatedFew || f == RelatedSkew {
			t.Fatalf("%s leaked into the bag-family list", f)
		}
	}
}

func TestRelatedGenerators(t *testing.T) {
	for _, fam := range RelatedFamilies() {
		in := MustGenerate(Spec{Family: fam, Machines: 6, Jobs: 20, Seed: 3})
		if err := in.Validate(); err != nil {
			t.Fatalf("%s: %v", fam, err)
		}
		if in.Uniform() {
			t.Errorf("%s: generated uniform speeds; the generator exists to exercise the related family", fam)
		}
		if len(in.Speeds) != 6 || len(in.Jobs) != 20 {
			t.Errorf("%s: %d speeds, %d jobs", fam, len(in.Speeds), len(in.Jobs))
		}
		if in.NumBags != len(in.Jobs) {
			t.Errorf("%s: NumBags = %d, want singleton bags (%d)", fam, in.NumBags, len(in.Jobs))
		}
		for i, j := range in.Jobs {
			if j.Bag != i {
				t.Fatalf("%s: job %d in bag %d, want singleton bags", fam, i, j.Bag)
			}
		}
		// Seed determinism.
		again := MustGenerate(Spec{Family: fam, Machines: 6, Jobs: 20, Seed: 3})
		if !reflect.DeepEqual(in, again) {
			t.Errorf("%s: generation is not deterministic", fam)
		}
	}
}
