package workload

import (
	"math/rand"

	"repro/internal/sched"
)

// Related-machines generator families. Their instances carry machine
// speeds and singleton bags; solve them with the related problem family
// (bagsched.FamilyRelated), not the bag-constrained default — they are
// deliberately excluded from Families() because the bag solver rejects
// instances with distinct speeds.
const (
	// RelatedFew spreads machines over a handful of well-separated
	// speed classes (1x/2x/4x, dealt round-robin) with uniform job
	// sizes — the regime the few-distinct-speeds scheme targets.
	RelatedFew Family = "relatedfew"
	// RelatedSkew concentrates most of the capacity on a few fast
	// machines (8x) above a fleet of unit-speed ones, with a bimodal
	// size mix whose large jobs only finish in time on the fast tier.
	RelatedSkew Family = "relatedskew"
)

// RelatedFamilies lists the related-machines generators in a stable
// order.
func RelatedFamilies() []Family {
	return []Family{RelatedFew, RelatedSkew}
}

// relatedFew deals speeds 1, 2, 4 round-robin over the machines and
// draws sizes uniformly; every job gets its own bag so the instance is
// also feasible under the bag validator.
func relatedFew(spec Spec, rng *rand.Rand) *sched.Instance {
	speeds := make([]float64, spec.Machines)
	classes := []float64{1, 2, 4}
	for m := range speeds {
		speeds[m] = classes[m%len(classes)]
	}
	in := sched.NewRelatedInstance(speeds)
	for i := 0; i < spec.Jobs; i++ {
		in.AddJob(0.1+0.9*rng.Float64(), i)
	}
	in.NumBags = len(in.Jobs)
	return in
}

// relatedSkew puts a quarter of the machines (at least one) at speed 8
// over unit-speed stragglers; a quarter of the jobs are large (sized so
// only a fast machine finishes them within a reasonable makespan), the
// rest small filler.
func relatedSkew(spec Spec, rng *rand.Rand) *sched.Instance {
	speeds := make([]float64, spec.Machines)
	for m := range speeds {
		speeds[m] = 1
	}
	fast := spec.Machines / 4
	if fast == 0 {
		fast = 1
	}
	for m := 0; m < fast; m++ {
		speeds[m] = 8
	}
	in := sched.NewRelatedInstance(speeds)
	for i := 0; i < spec.Jobs; i++ {
		var size float64
		if rng.Float64() < 0.25 {
			size = 3 + 3*rng.Float64() // fast-tier work
		} else {
			size = 0.05 + 0.3*rng.Float64() // filler
		}
		in.AddJob(size, i)
	}
	in.NumBags = len(in.Jobs)
	return in
}
