package workload

import (
	"fmt"
	"math/rand"

	"repro/internal/sched"
)

// ChurnSpec describes a churn trace: a base instance from one of the
// workload families plus a deterministic stream of deltas over it — the
// arrive/depart/resize churn a dynamic workload applies between solves.
type ChurnSpec struct {
	// Base generates the starting instance.
	Base Spec
	// Steps is the number of deltas in the trace (>= 1).
	Steps int
	// Frac is the fraction of the current jobs each step edits
	// (defaults to 0.1; every step edits at least one job).
	Frac float64
	// Jitter bounds a resize relative to the prior size: new sizes are
	// drawn from [1-Jitter, 1+Jitter] times the old (defaults to 0.05).
	// Small jitters tend to stay within the solver's rounding classes,
	// which is exactly the regime where incremental re-solves reuse
	// prior per-guess work.
	Jitter float64
	// Structural mixes arrivals, departures, bag moves and machine
	// additions into the stream; without it every step is pure resizes
	// (the low-churn regime).
	Structural bool
	// Seed drives the churn stream (independent of Base.Seed).
	Seed int64
}

// GenerateChurn builds the trace. The same spec always yields the same
// trace, and every prefix of the trace applies cleanly: each step's
// delta is validated against (and keeps feasible) the instance the
// preceding steps produce.
func GenerateChurn(spec ChurnSpec) (*sched.Trace, error) {
	if spec.Steps < 1 {
		return nil, fmt.Errorf("workload: churn trace needs at least 1 step")
	}
	if spec.Frac <= 0 {
		spec.Frac = 0.1
	}
	if spec.Jitter <= 0 {
		spec.Jitter = 0.05
	}
	base, err := Generate(spec.Base)
	if err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	nextID := 0
	for _, j := range base.Jobs {
		if int(j.ID) >= nextID {
			nextID = int(j.ID) + 1
		}
	}
	cur := base
	steps := make([]sched.Delta, 0, spec.Steps)
	for s := 0; s < spec.Steps; s++ {
		d := churnStep(rng, cur, spec, s, &nextID)
		post, _, err := d.Apply(cur)
		if err == nil {
			err = post.Feasible()
		}
		if err != nil && d.Machines != 0 {
			// A machine removal can strand a crowded bag; retry the same
			// step without the machine edit.
			d.Machines, d.AddSpeeds = 0, nil
			post, _, err = d.Apply(cur)
			if err == nil {
				err = post.Feasible()
			}
		}
		if err != nil {
			return nil, fmt.Errorf("workload: churn step %d: %w", s, err)
		}
		steps = append(steps, d)
		cur = post
	}
	return &sched.Trace{Base: base, Steps: steps}, nil
}

// MustGenerateChurn is GenerateChurn for tests and benchmarks; it
// panics on error.
func MustGenerateChurn(spec ChurnSpec) *sched.Trace {
	tr, err := GenerateChurn(spec)
	if err != nil {
		panic(err)
	}
	return tr
}

// churnStep builds one delta against cur. Structural steps cycle
// through machine adds and removals on top of the job churn; plain
// steps are resize-only.
func churnStep(rng *rand.Rand, cur *sched.Instance, spec ChurnSpec, step int, nextID *int) sched.Delta {
	edits := int(spec.Frac*float64(len(cur.Jobs)) + 0.5)
	if edits < 1 {
		edits = 1
	}
	var d sched.Delta
	if !spec.Structural {
		for _, idx := range pickJobs(rng, len(cur.Jobs), edits) {
			d.Resize = append(d.Resize, resizeOf(rng, cur.Jobs[idx], spec.Jitter))
		}
		return d
	}

	// Structural mix: roughly a third departures, a third arrivals, the
	// rest resizes, plus one bag move; machine count breathes every
	// other step (grow on 1 mod 4, shrink on 3 mod 4 — GenerateChurn
	// drops the shrink if it would strand a bag).
	removes := edits / 3
	if removes < 1 {
		removes = 1
	}
	adds := edits / 3
	if adds < 1 {
		adds = 1
	}
	resizes := edits - removes - adds
	if resizes < 1 {
		resizes = 1
	}
	picked := pickJobs(rng, len(cur.Jobs), removes+resizes+1)
	counts := cur.BagCounts()
	for _, idx := range picked[:removes] {
		d.Remove = append(d.Remove, cur.Jobs[idx].ID)
		counts[cur.Jobs[idx].Bag]--
	}
	for _, idx := range picked[removes : removes+resizes] {
		d.Resize = append(d.Resize, resizeOf(rng, cur.Jobs[idx], spec.Jitter))
	}
	// One bag move per step, into a bag with a spare machine.
	if len(picked) > removes+resizes && cur.NumBags > 1 {
		j := cur.Jobs[picked[removes+resizes]]
		for tries := 0; tries < 8; tries++ {
			b := rng.Intn(cur.NumBags)
			if b != j.Bag && counts[b] < cur.Machines {
				d.Rebag = append(d.Rebag, sched.Rebag{ID: j.ID, Bag: b})
				counts[j.Bag]--
				counts[b]++
				break
			}
		}
	}
	// Arrivals land in bags with spare machines, sized like the base
	// family's small-to-medium jobs.
	for k := 0; k < adds; k++ {
		bag := -1
		for tries := 0; tries < 8; tries++ {
			b := rng.Intn(cur.NumBags)
			if counts[b] < cur.Machines {
				bag = b
				break
			}
		}
		if bag < 0 {
			continue // every probed bag full; skip this arrival
		}
		counts[bag]++
		d.Add = append(d.Add, sched.Job{
			ID:   sched.JobID(*nextID),
			Size: 0.05 + 0.45*rng.Float64(),
			Bag:  bag,
		})
		*nextID++
	}
	switch step % 4 {
	case 1:
		d.Machines = 1
		if !cur.Uniform() {
			d.AddSpeeds = []float64{1}
		}
	case 3:
		if cur.Machines > 2 {
			d.Machines = -1
		}
	}
	return d
}

// pickJobs draws k distinct indices from [0, n) in deterministic order.
func pickJobs(rng *rand.Rand, n, k int) []int {
	if k > n {
		k = n
	}
	return rng.Perm(n)[:k]
}

func resizeOf(rng *rand.Rand, j sched.Job, jitter float64) sched.Resize {
	factor := 1 + jitter*(2*rng.Float64()-1)
	return sched.Resize{ID: j.ID, Size: j.Size * factor}
}
