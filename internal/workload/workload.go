// Package workload generates deterministic synthetic instances for the
// experiment suite. The paper has no published datasets (it is a theory
// paper), so these families are designed to exercise every code path of
// the EPTAS: mixes of large/medium/small jobs, few and many bags, and the
// adversarial large-job placement of the paper's Figure 1.
package workload

import (
	"fmt"
	"math/rand"
	"sort"

	"repro/internal/sched"
)

// Family names a generator.
type Family string

const (
	// Uniform draws sizes uniformly from [minSize, maxSize].
	Uniform Family = "uniform"
	// Bimodal mixes a fraction of large jobs with many small ones.
	Bimodal Family = "bimodal"
	// Geometric draws sizes as powers of 2 with geometric frequencies.
	Geometric Family = "geometric"
	// Unit makes all jobs size 1 (pure cardinality constraints).
	Unit Family = "unit"
	// Adversarial is the paper's Figure 1 family: per machine-pair, two
	// large jobs from one bag plus small jobs that only fit if the large
	// jobs are spread correctly.
	Adversarial Family = "adversarial"
	// SmallHeavy is dominated by small jobs in many bags.
	SmallHeavy Family = "smallheavy"
	// Skewed gives a few bags most of the jobs.
	Skewed Family = "skewed"
	// ManyLarge gives every bag two large jobs from a tiny size palette.
	// It maximizes pressure on large-job placement: schemes that track
	// every bag individually (the Das–Wiese configuration program) see
	// their pattern space grow combinatorially with the bag count, while
	// the EPTAS's priority mechanism keeps it flat (EX-T2).
	ManyLarge Family = "manylarge"
)

// Families lists the bag-constrained generator families in a stable
// order. The related-machines generators (instances with speeds) are
// listed separately by RelatedFamilies: the bag solver rejects their
// instances, so the corpus-wide bag tests must not iterate them.
func Families() []Family {
	return []Family{Uniform, Bimodal, Geometric, Unit, Adversarial, SmallHeavy, Skewed, ManyLarge}
}

// Spec describes an instance to generate.
type Spec struct {
	// Family selects the generator.
	Family Family
	// Machines is the machine count (>= 1).
	Machines int
	// Jobs is the approximate job count (exact for most families).
	Jobs int
	// Bags is the bag count; generators keep every bag below Machines
	// jobs so instances stay feasible.
	Bags int
	// Seed drives the deterministic RNG.
	Seed int64
}

// Name returns a compact label for tables and benchmarks.
func (s Spec) Name() string {
	return fmt.Sprintf("%s/m%d/n%d/b%d", s.Family, s.Machines, s.Jobs, s.Bags)
}

// Generate builds the instance. The same spec always yields the same
// instance.
func Generate(spec Spec) (*sched.Instance, error) {
	if spec.Machines < 1 {
		return nil, fmt.Errorf("workload: need at least 1 machine")
	}
	if spec.Bags < 1 {
		spec.Bags = 1
	}
	// Keep the instance feasible: every bag holds at most Machines jobs,
	// so the bag count must cover the job count.
	if minBags := (spec.Jobs + spec.Machines - 1) / spec.Machines; spec.Bags < minBags {
		spec.Bags = minBags
	}
	rng := rand.New(rand.NewSource(spec.Seed))
	var in *sched.Instance
	switch spec.Family {
	case Uniform:
		in = uniform(spec, rng)
	case Bimodal:
		in = bimodal(spec, rng)
	case Geometric:
		in = geometric(spec, rng)
	case Unit:
		in = unit(spec, rng)
	case Adversarial:
		in = adversarial(spec)
	case SmallHeavy:
		in = smallHeavy(spec, rng)
	case Skewed:
		in = skewed(spec, rng)
	case ManyLarge:
		in = manyLarge(spec, rng)
	case RelatedFew:
		in = relatedFew(spec, rng)
	case RelatedSkew:
		in = relatedSkew(spec, rng)
	default:
		return nil, fmt.Errorf("workload: unknown family %q", spec.Family)
	}
	if err := in.Validate(); err != nil {
		return nil, fmt.Errorf("workload: generated invalid instance: %w", err)
	}
	if err := in.Feasible(); err != nil {
		return nil, fmt.Errorf("workload: generated infeasible instance: %w", err)
	}
	return in, nil
}

// MustGenerate is Generate for tests and benchmarks; it panics on error.
func MustGenerate(spec Spec) *sched.Instance {
	in, err := Generate(spec)
	if err != nil {
		panic(err)
	}
	return in
}

// bagSequence deals bag indices so that no bag exceeds the machine count;
// it cycles through bags round-robin with random interleave.
type bagSequence struct {
	rng    *rand.Rand
	counts []int
	limit  int
}

func newBagSequence(rng *rand.Rand, bags, machines int) *bagSequence {
	return &bagSequence{rng: rng, counts: make([]int, bags), limit: machines}
}

func (b *bagSequence) next() int {
	for tries := 0; tries < 8; tries++ {
		bag := b.rng.Intn(len(b.counts))
		if b.counts[bag] < b.limit {
			b.counts[bag]++
			return bag
		}
	}
	// Fall back to the first bag with room.
	for bag, c := range b.counts {
		if c < b.limit {
			b.counts[bag]++
			return bag
		}
	}
	// All bags full: open a new bag to preserve feasibility.
	b.counts = append(b.counts, 1)
	return len(b.counts) - 1
}

func uniform(spec Spec, rng *rand.Rand) *sched.Instance {
	in := sched.NewInstance(spec.Machines)
	in.NumBags = spec.Bags
	seq := newBagSequence(rng, spec.Bags, spec.Machines)
	for i := 0; i < spec.Jobs; i++ {
		size := 0.1 + 0.9*rng.Float64()
		in.AddJob(size, seq.next())
	}
	return in
}

func bimodal(spec Spec, rng *rand.Rand) *sched.Instance {
	in := sched.NewInstance(spec.Machines)
	in.NumBags = spec.Bags
	seq := newBagSequence(rng, spec.Bags, spec.Machines)
	for i := 0; i < spec.Jobs; i++ {
		var size float64
		if rng.Float64() < 0.25 {
			size = 0.7 + 0.3*rng.Float64() // large mode
		} else {
			size = 0.05 + 0.1*rng.Float64() // small mode
		}
		in.AddJob(size, seq.next())
	}
	return in
}

func geometric(spec Spec, rng *rand.Rand) *sched.Instance {
	in := sched.NewInstance(spec.Machines)
	in.NumBags = spec.Bags
	seq := newBagSequence(rng, spec.Bags, spec.Machines)
	for i := 0; i < spec.Jobs; i++ {
		// Size 2^-d with d geometric: many small, few large.
		d := 0
		for d < 5 && rng.Float64() < 0.55 {
			d++
		}
		size := 1.0
		for k := 0; k < d; k++ {
			size /= 2
		}
		in.AddJob(size, seq.next())
	}
	return in
}

func unit(spec Spec, rng *rand.Rand) *sched.Instance {
	in := sched.NewInstance(spec.Machines)
	in.NumBags = spec.Bags
	seq := newBagSequence(rng, spec.Bags, spec.Machines)
	for i := 0; i < spec.Jobs; i++ {
		in.AddJob(1, seq.next())
	}
	return in
}

// adversarial reproduces Figure 1 of the paper, tiled over machine pairs:
// per pair, two large jobs (0.6 and 0.55) from two different bags — so
// placing them together is feasible — plus small jobs of size 0.2 from a
// per-pair bag. Stacking the large jobs forces the small jobs (which need
// pairwise-distinct machines) to pile on top, well above OPT; spreading
// the large jobs packs each machine to about 1.0. Spec.Jobs and Spec.Bags
// are derived from Machines for this family.
func adversarial(spec Spec) *sched.Instance {
	in := sched.NewInstance(spec.Machines)
	pairs := spec.Machines / 2
	if pairs == 0 {
		pairs = 1
		in.Machines = 2
	}
	smallsPerPair := 4
	if in.Machines < smallsPerPair {
		smallsPerPair = in.Machines
	}
	bag := 2 // bags 0 and 1 hold the large jobs across all pairs
	for p := 0; p < pairs; p++ {
		in.AddJob(0.6, 0)
		in.AddJob(0.55, 1)
		smallBag := bag
		bag++
		// Small jobs of 0.2: fits as (0.6+0.2+0.2 | 0.55+0.2+0.2)
		// = (1.0 | 0.95), but stacking 0.6+0.55 forces 1.15+.
		for k := 0; k < smallsPerPair; k++ {
			in.AddJob(0.2, smallBag)
		}
	}
	in.NumBags = bag
	return in
}

func smallHeavy(spec Spec, rng *rand.Rand) *sched.Instance {
	in := sched.NewInstance(spec.Machines)
	in.NumBags = spec.Bags
	seq := newBagSequence(rng, spec.Bags, spec.Machines)
	nLarge := spec.Jobs / 10
	for i := 0; i < nLarge; i++ {
		in.AddJob(0.5+0.5*rng.Float64(), seq.next())
	}
	for i := nLarge; i < spec.Jobs; i++ {
		in.AddJob(0.01+0.05*rng.Float64(), seq.next())
	}
	return in
}

func manyLarge(spec Spec, rng *rand.Rand) *sched.Instance {
	in := sched.NewInstance(spec.Machines)
	in.NumBags = spec.Bags
	palette := []float64{0.8, 0.64, 0.52}
	perBag := 2
	if spec.Machines < perBag {
		// Found by FuzzSolveEPTAS: two jobs per bag is infeasible on a
		// single machine.
		perBag = spec.Machines
	}
	for b := 0; b < spec.Bags; b++ {
		for k := 0; k < perBag; k++ {
			in.AddJob(palette[rng.Intn(len(palette))], b)
		}
	}
	return in
}

func skewed(spec Spec, rng *rand.Rand) *sched.Instance {
	in := sched.NewInstance(spec.Machines)
	in.NumBags = spec.Bags
	if spec.Bags < 2 {
		// Degenerate shape (found by FuzzSolveEPTAS): with a single bag
		// there is nothing to skew — the bag holds every job. Generate
		// has already ensured Jobs <= Machines in this case.
		for i := 0; i < spec.Jobs; i++ {
			in.AddJob(0.1+0.6*rng.Float64(), 0)
		}
		return in
	}
	// First two bags get half the jobs (capped by machines), the rest is
	// spread.
	counts := make([]int, spec.Bags)
	heavy := spec.Jobs / 2
	if heavy > 2*spec.Machines {
		heavy = 2 * spec.Machines
	}
	for i := 0; i < heavy; i++ {
		counts[i%2]++
	}
	rest := spec.Jobs - heavy
	seq := newBagSequence(rng, spec.Bags, spec.Machines)
	seq.counts[0], seq.counts[1] = counts[0], counts[1]
	bagsOf := make([]int, 0, spec.Jobs)
	for b := 0; b < 2; b++ {
		for k := 0; k < counts[b]; k++ {
			bagsOf = append(bagsOf, b)
		}
	}
	for i := 0; i < rest; i++ {
		bagsOf = append(bagsOf, seq.next())
	}
	sort.Ints(bagsOf) // deterministic layout
	for _, b := range bagsOf {
		in.AddJob(0.1+0.6*rng.Float64(), b)
	}
	return in
}
