package workload

import (
	"bytes"
	"reflect"
	"testing"

	"repro/internal/sched"
)

func churnSpec(structural bool) ChurnSpec {
	return ChurnSpec{
		Base:       Spec{Family: Bimodal, Machines: 6, Jobs: 24, Bags: 8, Seed: 11},
		Steps:      8,
		Frac:       0.1,
		Jitter:     0.03,
		Structural: structural,
		Seed:       21,
	}
}

// TestGenerateChurnDeterministic: the same spec yields the same trace,
// and every prefix applies cleanly to a feasible instance.
func TestGenerateChurnDeterministic(t *testing.T) {
	for _, structural := range []bool{false, true} {
		tr := MustGenerateChurn(churnSpec(structural))
		again := MustGenerateChurn(churnSpec(structural))
		if !reflect.DeepEqual(tr, again) {
			t.Fatalf("structural=%v: trace is not deterministic", structural)
		}
		if len(tr.Steps) != 8 {
			t.Fatalf("structural=%v: %d steps, want 8", structural, len(tr.Steps))
		}
		cur := tr.Base
		for i, d := range tr.Steps {
			post, churn, err := d.Apply(cur)
			if err != nil {
				t.Fatalf("structural=%v: step %d does not apply: %v", structural, i, err)
			}
			if err := post.Feasible(); err != nil {
				t.Fatalf("structural=%v: step %d leaves an infeasible instance: %v", structural, i, err)
			}
			if len(churn.PriorIndex) != len(post.Jobs) {
				t.Fatalf("structural=%v: step %d churn map covers %d of %d jobs",
					structural, i, len(churn.PriorIndex), len(post.Jobs))
			}
			cur = post
		}
	}
}

// TestGenerateChurnShapes: resize-only traces touch sizes and nothing
// else; structural traces exercise every edit kind.
func TestGenerateChurnShapes(t *testing.T) {
	low := MustGenerateChurn(churnSpec(false))
	for i, d := range low.Steps {
		if len(d.Add)+len(d.Remove)+len(d.Rebag) != 0 || d.Machines != 0 {
			t.Fatalf("resize-only trace has structural edits at step %d: %+v", i, d)
		}
		if len(d.Resize) == 0 {
			t.Fatalf("resize-only trace has an empty step %d", i)
		}
	}
	high := MustGenerateChurn(churnSpec(true))
	var adds, removes, rebags, machines int
	for _, d := range high.Steps {
		adds += len(d.Add)
		removes += len(d.Remove)
		rebags += len(d.Rebag)
		if d.Machines != 0 {
			machines++
		}
	}
	if adds == 0 || removes == 0 || rebags == 0 || machines == 0 {
		t.Fatalf("structural trace misses an edit kind: adds=%d removes=%d rebags=%d machine-steps=%d",
			adds, removes, rebags, machines)
	}
}

// TestTraceRoundTrip pins the on-disk format the committed
// testdata/churn_*.json fixtures use.
func TestTraceRoundTrip(t *testing.T) {
	tr := MustGenerateChurn(churnSpec(true))
	var buf bytes.Buffer
	if err := sched.WriteTrace(&buf, tr); err != nil {
		t.Fatal(err)
	}
	back, err := sched.ReadTrace(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(tr.Steps, back.Steps) {
		t.Fatal("trace steps changed through serialization")
	}
	if len(back.Base.Jobs) != len(tr.Base.Jobs) || back.Base.Machines != tr.Base.Machines {
		t.Fatal("trace base changed through serialization")
	}
}
