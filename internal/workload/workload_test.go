package workload

import (
	"testing"
)

func TestAllFamiliesGenerateValidInstances(t *testing.T) {
	for _, fam := range Families() {
		fam := fam
		t.Run(string(fam), func(t *testing.T) {
			in, err := Generate(Spec{Family: fam, Machines: 6, Jobs: 30, Bags: 8, Seed: 1})
			if err != nil {
				t.Fatal(err)
			}
			if err := in.Validate(); err != nil {
				t.Fatal(err)
			}
			if err := in.Feasible(); err != nil {
				t.Fatal(err)
			}
			if len(in.Jobs) == 0 {
				t.Error("no jobs generated")
			}
		})
	}
}

func TestDeterminism(t *testing.T) {
	for _, fam := range Families() {
		a := MustGenerate(Spec{Family: fam, Machines: 5, Jobs: 25, Bags: 7, Seed: 42})
		b := MustGenerate(Spec{Family: fam, Machines: 5, Jobs: 25, Bags: 7, Seed: 42})
		if len(a.Jobs) != len(b.Jobs) {
			t.Fatalf("%s: job counts differ", fam)
		}
		for i := range a.Jobs {
			if a.Jobs[i] != b.Jobs[i] {
				t.Fatalf("%s: job %d differs", fam, i)
			}
		}
	}
}

func TestSeedsDiffer(t *testing.T) {
	a := MustGenerate(Spec{Family: Uniform, Machines: 5, Jobs: 25, Bags: 7, Seed: 1})
	b := MustGenerate(Spec{Family: Uniform, Machines: 5, Jobs: 25, Bags: 7, Seed: 2})
	same := true
	for i := range a.Jobs {
		if a.Jobs[i].Size != b.Jobs[i].Size {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical instances")
	}
}

func TestJobCountRespected(t *testing.T) {
	for _, fam := range Families() {
		if fam == Adversarial || fam == ManyLarge {
			continue // these derive their size from Machines/Bags
		}
		in := MustGenerate(Spec{Family: fam, Machines: 8, Jobs: 33, Bags: 10, Seed: 5})
		if len(in.Jobs) != 33 {
			t.Errorf("%s: %d jobs, want 33", fam, len(in.Jobs))
		}
	}
}

func TestBagsAutoExtendForFeasibility(t *testing.T) {
	// 30 jobs on 3 machines need at least 10 bags.
	in := MustGenerate(Spec{Family: Uniform, Machines: 3, Jobs: 30, Bags: 2, Seed: 1})
	if err := in.Feasible(); err != nil {
		t.Fatal(err)
	}
	if in.NumBags < 10 {
		t.Errorf("bags = %d, want >= 10", in.NumBags)
	}
}

func TestAdversarialShape(t *testing.T) {
	in := MustGenerate(Spec{Family: Adversarial, Machines: 6})
	// Per pair: 2 large + 4 small.
	pairs := 3
	if len(in.Jobs) != pairs*6 {
		t.Errorf("jobs = %d, want %d", len(in.Jobs), pairs*6)
	}
	large, small := 0, 0
	for _, j := range in.Jobs {
		switch j.Size {
		case 0.6, 0.55:
			large++
		case 0.2:
			small++
		default:
			t.Errorf("unexpected size %g", j.Size)
		}
	}
	if large != 2*pairs || small != 4*pairs {
		t.Errorf("large=%d small=%d", large, small)
	}
}

func TestAdversarialMinimumMachines(t *testing.T) {
	in := MustGenerate(Spec{Family: Adversarial, Machines: 1})
	if in.Machines < 2 {
		t.Errorf("machines = %d, want >= 2", in.Machines)
	}
	if err := in.Feasible(); err != nil {
		t.Fatal(err)
	}
}

func TestUnknownFamily(t *testing.T) {
	if _, err := Generate(Spec{Family: "nope", Machines: 2, Jobs: 4}); err == nil {
		t.Error("unknown family accepted")
	}
}

func TestZeroMachinesRejected(t *testing.T) {
	if _, err := Generate(Spec{Family: Uniform, Machines: 0, Jobs: 4}); err == nil {
		t.Error("zero machines accepted")
	}
}

func TestSpecName(t *testing.T) {
	s := Spec{Family: Uniform, Machines: 4, Jobs: 10, Bags: 3}
	if s.Name() != "uniform/m4/n10/b3" {
		t.Errorf("Name = %q", s.Name())
	}
}

func TestUnitSizes(t *testing.T) {
	in := MustGenerate(Spec{Family: Unit, Machines: 4, Jobs: 12, Bags: 4, Seed: 1})
	for _, j := range in.Jobs {
		if j.Size != 1 {
			t.Fatalf("unit family produced size %g", j.Size)
		}
	}
}

func TestManyLargeShape(t *testing.T) {
	in := MustGenerate(Spec{Family: ManyLarge, Machines: 8, Bags: 12, Seed: 1})
	if len(in.Jobs) != 24 {
		t.Fatalf("jobs = %d, want 24 (two per bag)", len(in.Jobs))
	}
	counts := in.BagCounts()
	for b, c := range counts {
		if c != 2 {
			t.Errorf("bag %d has %d jobs, want 2", b, c)
		}
	}
	for _, j := range in.Jobs {
		if j.Size < 0.5 {
			t.Errorf("manylarge produced non-large size %g", j.Size)
		}
	}
}

func TestSmallHeavyComposition(t *testing.T) {
	in := MustGenerate(Spec{Family: SmallHeavy, Machines: 8, Jobs: 50, Bags: 12, Seed: 1})
	large := 0
	for _, j := range in.Jobs {
		if j.Size >= 0.5 {
			large++
		}
	}
	if large == 0 || large > len(in.Jobs)/4 {
		t.Errorf("smallheavy large count = %d of %d", large, len(in.Jobs))
	}
}
