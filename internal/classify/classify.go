// Package classify implements the job and bag classification of Section 2
// of the paper: the Lemma 1 selection of the medium band exponent k, the
// large/medium/small job classes, large bags, size-restricted bags B^s_l
// and the Definition 2 selection of priority bags.
package classify

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/numeric"
	"repro/internal/sched"
)

// Class is a job size class relative to the chosen band exponent k.
type Class int

const (
	// Small jobs have size < eps^(k+1).
	Small Class = iota
	// Medium jobs have eps^(k+1) <= size < eps^k.
	Medium
	// Large jobs have size >= eps^k.
	Large
)

// String returns the class name.
func (c Class) String() string {
	switch c {
	case Small:
		return "small"
	case Medium:
		return "medium"
	case Large:
		return "large"
	default:
		return fmt.Sprintf("class(%d)", int(c))
	}
}

// Info is the classification of a scaled-and-rounded instance. All derived
// parameters of the EPTAS live here.
type Info struct {
	// Eps is the accuracy parameter.
	Eps float64
	// K is the Lemma 1 band exponent: the medium band is
	// [eps^(K+1), eps^K).
	K int
	// BandArea is the total size of jobs inside the chosen medium band.
	BandArea float64
	// T = 1 + 2*eps + eps^2 is the relaxed optimal height after the
	// instance transformation (Lemma 2).
	T float64
	// Q = floor(T / eps^(K+1)) bounds the number of medium and large
	// jobs on any machine of a height-T schedule.
	Q int
	// D is the number of distinct large job sizes present.
	D int
	// BPrime is the Definition 2 constant (d*q+1)*q capped at the number
	// of bags: per large size, the BPrime fullest size-restricted bags
	// are priority.
	BPrime int
	// Sigma = eps^(2K+11) is the constraint (7) threshold: small jobs of
	// priority bags larger than Sigma get integral MILP variables.
	Sigma float64

	// TCapFx is the exact fixed-point pattern-capacity bound,
	// numeric.Cap(T + Tol): for grid heights h, hFx <= TCapFx holds
	// exactly when h <= T+Tol held on the float path. The tolerance band
	// is folded in here once; every downstream capacity check is an exact
	// integer comparison.
	TCapFx numeric.Fx
	// SigmaCapFx is the exact form of the constraint (7) threshold,
	// numeric.Cap(Sigma + Tol).
	SigmaCapFx numeric.Fx

	// Sizes lists the distinct job sizes in decreasing order.
	Sizes []float64
	// SizesFx mirrors Sizes on the numeric.Fx grid (exact, since every
	// post-Scale size is a grid value).
	SizesFx []numeric.Fx
	// SizeClass[i] is the class of Sizes[i].
	SizeClass []Class
	// JobSize[j] is the index into Sizes of job j's size.
	JobSize []int
	// JobClass[j] is the class of job j.
	JobClass []Class

	// Counts[b][i] is the number of jobs of bag b with size index i.
	Counts [][]int
	// LargeBag[b] reports whether bag b holds at least eps*m medium or
	// large jobs.
	LargeBag []bool
	// Priority[b] reports whether bag b is a priority bag.
	Priority []bool
}

// Options tunes classification.
type Options struct {
	// AllPriority forces every bag to be a priority bag. This disables
	// the paper's priority selection and yields the Das–Wiese-style
	// configuration program whose size grows with the number of bags.
	AllPriority bool
	// BPrimeOverride, when positive, caps the Definition 2 constant b'
	// below its theoretical value (d*q+1)*q. The theoretical constant
	// exceeds any moderate bag count for practical eps, which makes the
	// priority set cover every bag and the instance transformation a
	// no-op; capping it exercises the non-priority machinery (bag
	// splitting, X slots, Lemma 3/4/7 repairs) at the cost of the formal
	// guarantee. Quality remains verified empirically (EX suite).
	BPrimeOverride int
}

// thresholds returns (eps^k, eps^(k+1)).
func thresholds(eps float64, k int) (float64, float64) {
	return math.Pow(eps, float64(k)), math.Pow(eps, float64(k+1))
}

// Classify analyses a scaled-and-rounded instance (sizes are expected to
// be at most ~1+eps, i.e. relative to a makespan guess of 1).
func Classify(in *sched.Instance, eps float64, opt Options) (*Info, error) {
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("classify: eps must be in (0,1), got %g", eps)
	}
	info := &Info{Eps: eps, T: 1 + 2*eps + eps*eps}

	// Lemma 1: pick the smallest k in {1..ceil(1/eps^2)} whose band area
	// sum{p_j : p_j in [eps^(k+1), eps^k)} is at most eps^2*(1+eps)*m.
	// Existence follows by pigeonhole when the guess is correct (the
	// bands are disjoint and the total area is at most (1+eps)*m); if no
	// band qualifies (guess below OPT), the minimizer is used. Taking
	// the smallest qualifying k keeps the derived constants q and d — and
	// with them the pattern space — as small as possible.
	kMax := int(math.Ceil(1 / (eps * eps)))
	target := eps * eps * (1 + eps) * float64(in.Machines)
	bestK, bestArea := -1, math.Inf(1)
	minK, minArea := 1, math.Inf(1)
	for k := 1; k <= kMax; k++ {
		hi, lo := thresholds(eps, k)
		area := 0.0
		for _, j := range in.Jobs {
			if j.Size >= lo-numeric.Tol && j.Size < hi-numeric.Tol {
				area += j.Size
			}
		}
		if area < minArea {
			minK, minArea = k, area
		}
		if area <= target+numeric.Tol {
			bestK, bestArea = k, area
			break
		}
	}
	if bestK < 0 {
		bestK, bestArea = minK, minArea
	}
	info.K = bestK
	info.BandArea = bestArea
	epsK, epsK1 := thresholds(eps, bestK)
	info.Q = int(math.Floor(info.T/epsK1 + numeric.Tol))
	info.Sigma = math.Pow(eps, float64(2*bestK+11))
	info.TCapFx = numeric.Cap(info.T + numeric.Tol)
	info.SigmaCapFx = numeric.Cap(info.Sigma + numeric.Tol)

	// Distinct sizes, decreasing.
	info.Sizes = distinctSizesDesc(in)
	info.SizesFx = make([]numeric.Fx, len(info.Sizes))
	for i, s := range info.Sizes {
		info.SizesFx[i] = numeric.FromFloat(s)
	}
	info.SizeClass = make([]Class, len(info.Sizes))
	for i, s := range info.Sizes {
		info.SizeClass[i] = classOf(s, epsK, epsK1)
		if info.SizeClass[i] == Large {
			info.D++
		}
	}
	info.JobSize = make([]int, len(in.Jobs))
	info.JobClass = make([]Class, len(in.Jobs))
	for j, job := range in.Jobs {
		idx := findSize(info.Sizes, job.Size)
		info.JobSize[j] = idx
		info.JobClass[j] = info.SizeClass[idx]
	}

	// Size-restricted bag counts.
	info.Counts = make([][]int, in.NumBags)
	for b := range info.Counts {
		info.Counts[b] = make([]int, len(info.Sizes))
	}
	for j, job := range in.Jobs {
		info.Counts[job.Bag][info.JobSize[j]]++
	}

	// Large bags: at least eps*m medium-or-large jobs.
	info.LargeBag = make([]bool, in.NumBags)
	mlPerBag := make([]int, in.NumBags)
	for j, job := range in.Jobs {
		if info.JobClass[j] != Small {
			mlPerBag[job.Bag]++
		}
	}
	threshold := eps * float64(in.Machines)
	for b, c := range mlPerBag {
		if float64(c) >= threshold && c > 0 {
			info.LargeBag[b] = true
		}
	}

	// Priority bags (Definition 2): per large size s, the b' bags with
	// the most size-s jobs, plus every large bag. The theoretical
	// b' = (d*q+1)*q is capped by the number of bags present.
	info.BPrime = (info.D*info.Q + 1) * info.Q
	if opt.BPrimeOverride > 0 && info.BPrime > opt.BPrimeOverride {
		info.BPrime = opt.BPrimeOverride
	}
	if info.BPrime > in.NumBags {
		info.BPrime = in.NumBags
	}
	info.Priority = make([]bool, in.NumBags)
	if opt.AllPriority {
		for b := range info.Priority {
			info.Priority[b] = true
		}
		return info, nil
	}
	copy(info.Priority, boolsFrom(info.LargeBag))
	for si, cls := range info.SizeClass {
		if cls != Large {
			continue
		}
		order := make([]int, 0, in.NumBags)
		for b := 0; b < in.NumBags; b++ {
			if info.Counts[b][si] > 0 {
				order = append(order, b)
			}
		}
		sort.SliceStable(order, func(a, c int) bool {
			ca, cc := info.Counts[order[a]][si], info.Counts[order[c]][si]
			if ca != cc {
				return ca > cc
			}
			return order[a] < order[c]
		})
		for rank, b := range order {
			if rank >= info.BPrime {
				break
			}
			info.Priority[b] = true
		}
	}
	return info, nil
}

// ClassOf returns the class of an arbitrary size under this
// classification's thresholds. It is used for jobs created after
// classification (filler jobs of the instance transformation).
func (info *Info) ClassOf(size float64) Class {
	epsK, epsK1 := thresholds(info.Eps, info.K)
	return classOf(size, epsK, epsK1)
}

// LargeThreshold returns eps^K, the minimum large size.
func (info *Info) LargeThreshold() float64 {
	t, _ := thresholds(info.Eps, info.K)
	return t
}

// SmallThreshold returns eps^(K+1), the supremum of small sizes.
func (info *Info) SmallThreshold() float64 {
	_, t := thresholds(info.Eps, info.K)
	return t
}

func classOf(size, epsK, epsK1 float64) Class {
	switch {
	case size >= epsK-numeric.Tol:
		return Large
	case size >= epsK1-numeric.Tol:
		return Medium
	default:
		return Small
	}
}

// distinctSizesDesc returns the distinct job sizes of in in decreasing
// order, merging sizes equal within tolerance.
func distinctSizesDesc(in *sched.Instance) []float64 {
	sizes := make([]float64, 0, len(in.Jobs))
	for _, j := range in.Jobs {
		sizes = append(sizes, j.Size)
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(sizes)))
	out := sizes[:0]
	for _, s := range sizes {
		if len(out) == 0 || !numeric.Eq(out[len(out)-1], s) {
			out = append(out, s)
		}
	}
	res := make([]float64, len(out))
	copy(res, out)
	return res
}

// findSize locates size in the decreasing slice sizes within tolerance.
func findSize(sizes []float64, size float64) int {
	lo, hi := 0, len(sizes)-1
	for lo <= hi {
		mid := (lo + hi) / 2
		switch {
		case numeric.Eq(sizes[mid], size):
			return mid
		case sizes[mid] > size:
			lo = mid + 1
		default:
			hi = mid - 1
		}
	}
	// Fallback linear scan (defensive; should not happen).
	for i, s := range sizes {
		if numeric.Eq(s, size) {
			return i
		}
	}
	return -1
}

func boolsFrom(src []bool) []bool {
	out := make([]bool, len(src))
	copy(out, src)
	return out
}
