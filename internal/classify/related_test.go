package classify

import (
	"math"
	"testing"

	"repro/internal/numeric"
	"repro/internal/sched"
)

// relInstance is a scaled related instance (sizes already divided by the
// guess): speeds 4,1,1 → classes {4},{1,1}; with eps=0.5 the large
// threshold is 0.5*1 = 0.5, so 1.2/0.9/0.9 are large and 0.3/0.1 small.
func relInstance() *sched.Instance {
	in := sched.NewRelatedInstance([]float64{1, 4, 1})
	for i, size := range []float64{1.2, 0.9, 0.9, 0.3, 0.1} {
		in.AddJob(size, i)
	}
	return in
}

func TestRelatedClassify(t *testing.T) {
	in := relInstance()
	info, err := Related(in, 0.5)
	if err != nil {
		t.Fatal(err)
	}

	// Speed classes: distinct speeds, decreasing, with machine mapping.
	if len(info.Speeds) != 2 || info.Speeds[0] != 4 || info.Speeds[1] != 1 {
		t.Fatalf("Speeds = %v, want [4 1]", info.Speeds)
	}
	if info.MachClass[0] != 1 || info.MachClass[1] != 0 || info.MachClass[2] != 1 {
		t.Errorf("MachClass = %v, want [1 0 1]", info.MachClass)
	}
	if info.ClassCount[0] != 1 || info.ClassCount[1] != 2 {
		t.Errorf("ClassCount = %v, want [1 2]", info.ClassCount)
	}

	// Capacities: s*(1+eps) as floats, Cap-folded on the grid.
	for k, s := range info.Speeds {
		if want := s * 1.5; info.Cap[k] != want {
			t.Errorf("Cap[%d] = %g, want %g", k, info.Cap[k], want)
		}
		if info.CapFx[k] < numeric.FromFloat(info.Cap[k]) {
			t.Errorf("CapFx[%d] below its float capacity", k)
		}
	}
	if info.LargeThreshold != 0.5 {
		t.Errorf("LargeThreshold = %g, want eps*sMin = 0.5", info.LargeThreshold)
	}

	// Large size table: decreasing, distinct, with counts and job map.
	if len(info.Sizes) != 2 || info.Sizes[0] != 1.2 || info.Sizes[1] != 0.9 {
		t.Fatalf("Sizes = %v, want [1.2 0.9]", info.Sizes)
	}
	if info.SizeCount[0] != 1 || info.SizeCount[1] != 2 {
		t.Errorf("SizeCount = %v, want [1 2]", info.SizeCount)
	}
	wantJobSize := []int{0, 1, 1, -1, -1}
	for j, want := range wantJobSize {
		if info.JobSize[j] != want {
			t.Errorf("JobSize[%d] = %d, want %d", j, info.JobSize[j], want)
		}
	}
	if info.NLarge != 3 {
		t.Errorf("NLarge = %d, want 3", info.NLarge)
	}
	if math.Abs(info.SmallArea-0.4) > 1e-9 {
		t.Errorf("SmallArea = %g, want 0.4", info.SmallArea)
	}
	if info.SmallArea != info.SmallAreaFx.Float() {
		t.Error("SmallArea is not the lossless lift of SmallAreaFx")
	}
}

// TestRelatedClassifyUnitSpeeds: nil Speeds degenerates to one
// unit-speed class.
func TestRelatedClassifyUnitSpeeds(t *testing.T) {
	in := sched.NewInstance(3)
	in.AddJob(0.8, 0)
	in.AddJob(0.1, 1)
	info, err := Related(in, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Speeds) != 1 || info.Speeds[0] != 1 {
		t.Fatalf("Speeds = %v, want [1]", info.Speeds)
	}
	if info.ClassCount[0] != 3 {
		t.Errorf("ClassCount = %v, want [3]", info.ClassCount)
	}
}

func TestRelatedClassifyBadEps(t *testing.T) {
	for _, eps := range []float64{0, -0.5, 1, 2} {
		if _, err := Related(relInstance(), eps); err == nil {
			t.Errorf("eps=%g accepted", eps)
		}
	}
}
