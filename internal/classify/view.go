package classify

import (
	"fmt"

	"repro/internal/numeric"
	"repro/internal/sched"
)

// View is the exact numeric view of one instance under a classification:
// each job resolved to its exponent index in the shared size table and to
// its exact fixed-point size. It is what the post-rounding stages
// (pattern, cfgmilp, placer) operate on instead of re-deriving indices by
// tolerant float64 searches per job.
//
// JobIdx feeds table lookups (size class, slot identity, per-index
// coefficients); JobFx feeds load and area accounting. The two can differ
// at the last grid steps: the size table merges sizes equal within
// numeric.Tol, and JobIdx points at the merged representative while JobFx
// keeps the job's own grid value — exactly mirroring the float path,
// where slot identities used the table and loads used Job.Size.
type View struct {
	// Info is the classification the view is relative to.
	Info *Info
	// JobIdx[j] indexes Info.Sizes / Info.SizesFx for job j of the viewed
	// instance.
	JobIdx []int
	// JobFx[j] is the exact fixed-point size of job j (the Fx form of
	// Jobs[j].Size, which is a grid value post-Scale).
	JobFx []numeric.Fx
}

// Class returns the size class of job j.
func (v *View) Class(j int) Class { return v.Info.SizeClass[v.JobIdx[j]] }

// ViewOf resolves every job of in against the classification's size
// table and returns the numeric view. in must draw its sizes from the
// instance Classify analysed (the scaled-rounded instance or its
// Section 2.2 transformation); a job whose size is missing from the
// table is an error.
func (info *Info) ViewOf(in *sched.Instance) (*View, error) {
	v := &View{
		Info:   info,
		JobIdx: make([]int, len(in.Jobs)),
		JobFx:  make([]numeric.Fx, len(in.Jobs)),
	}
	for j, job := range in.Jobs {
		si := findSize(info.Sizes, job.Size)
		if si < 0 {
			return nil, fmt.Errorf("classify: job %d size %g missing from size table", j, job.Size)
		}
		v.JobIdx[j] = si
		v.JobFx[j] = numeric.FromFloat(job.Size)
	}
	return v, nil
}
