package classify

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/round"
	"repro/internal/sched"
)

// roundedInstance builds an instance with sizes rounded to powers of
// (1+eps), as Classify expects.
func roundedInstance(machines int, eps float64, sizes []float64, bags []int) *sched.Instance {
	in := sched.NewInstance(machines)
	for i, s := range sizes {
		v, _ := round.UpGeometric(s, eps)
		in.AddJob(v, bags[i])
	}
	return in
}

func TestClassifyRejectsBadEps(t *testing.T) {
	in := sched.NewInstance(2)
	for _, eps := range []float64{0, -1, 1, 2} {
		if _, err := Classify(in, eps, Options{}); err == nil {
			t.Errorf("eps=%g accepted", eps)
		}
	}
}

func TestClassesPartitionBySize(t *testing.T) {
	eps := 0.5
	in := roundedInstance(4, eps,
		[]float64{1.0, 0.6, 0.3, 0.26, 0.1, 0.01},
		[]int{0, 1, 2, 3, 0, 1})
	info, err := Classify(in, eps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	epsK := math.Pow(eps, float64(info.K))
	epsK1 := math.Pow(eps, float64(info.K+1))
	for j, job := range in.Jobs {
		var want Class
		switch {
		case job.Size >= epsK-1e-9:
			want = Large
		case job.Size >= epsK1-1e-9:
			want = Medium
		default:
			want = Small
		}
		if info.JobClass[j] != want {
			t.Errorf("job %d size %g: class %v, want %v (k=%d)", j, job.Size, info.JobClass[j], want, info.K)
		}
	}
}

func TestLemma1BandBound(t *testing.T) {
	// Property: for random rounded instances whose total area fits on m
	// machines with makespan ~1, the selected band area respects the
	// eps^2*(1+eps)*m bound.
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		eps := []float64{0.5, 0.33, 0.25}[rng.Intn(3)]
		m := 2 + rng.Intn(8)
		in := sched.NewInstance(m)
		area := 0.0
		bag := 0
		budget := float64(m) // total area <= m (OPT <= 1 possible-ish)
		for area < budget*0.9 {
			s := math.Pow(rng.Float64(), 2) // skew toward small
			if s < 1e-4 {
				s = 1e-4
			}
			if area+s > budget {
				break
			}
			v, _ := round.UpGeometric(s, eps)
			in.AddJob(v, bag%64)
			bag++
			area += s
		}
		if len(in.Jobs) == 0 {
			return true
		}
		info, err := Classify(in, eps, Options{})
		if err != nil {
			return false
		}
		bound := eps * eps * (1 + eps) * float64(m)
		return info.BandArea <= bound+1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestSmallestQualifyingK(t *testing.T) {
	// Band k=1 is empty, so k must be 1 even if higher bands are empty
	// too (smallest qualifying k wins, keeping q small).
	eps := 0.5
	in := roundedInstance(4, eps, []float64{1.0, 1.0, 0.05}, []int{0, 1, 2})
	info, err := Classify(in, eps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.K != 1 {
		t.Errorf("K = %d, want 1", info.K)
	}
}

func TestDerivedParameters(t *testing.T) {
	eps := 0.5
	in := roundedInstance(4, eps, []float64{1.0, 0.3, 0.1}, []int{0, 1, 2})
	info, err := Classify(in, eps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if info.T != 1+2*eps+eps*eps {
		t.Errorf("T = %g", info.T)
	}
	wantQ := int(math.Floor(info.T / math.Pow(eps, float64(info.K+1))))
	if info.Q != wantQ {
		t.Errorf("Q = %d, want %d", info.Q, wantQ)
	}
	wantSigma := math.Pow(eps, float64(2*info.K+11))
	if math.Abs(info.Sigma-wantSigma) > 1e-15 {
		t.Errorf("Sigma = %g, want %g", info.Sigma, wantSigma)
	}
	if info.BPrime != (info.D*info.Q+1)*info.Q && info.BPrime != in.NumBags {
		t.Errorf("BPrime = %d", info.BPrime)
	}
}

func TestLargeBagDetection(t *testing.T) {
	eps := 0.5
	// m=4: eps*m = 2 medium/large jobs marks a large bag.
	in := sched.NewInstance(4)
	v, _ := round.UpGeometric(0.9, eps)
	in.AddJob(v, 0)
	in.AddJob(v, 0) // bag 0: two large jobs -> large bag
	in.AddJob(v, 1) // bag 1: one large job  -> small bag
	w, _ := round.UpGeometric(0.01, eps)
	in.AddJob(w, 2) // bag 2: small jobs only
	in.AddJob(w, 2)
	in.AddJob(w, 2)
	info, err := Classify(in, eps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !info.LargeBag[0] || info.LargeBag[1] || info.LargeBag[2] {
		t.Errorf("LargeBag = %v", info.LargeBag)
	}
	if !info.Priority[0] {
		t.Error("large bag must be priority")
	}
}

func TestPrioritySelectionOrder(t *testing.T) {
	eps := 0.5
	// With BPrimeOverride=1, only the fullest bag per large size is
	// priority.
	in := sched.NewInstance(16)
	v, _ := round.UpGeometric(0.9, eps)
	for i := 0; i < 3; i++ {
		in.AddJob(v, 0) // bag 0: 3 large jobs... but 3 >= eps*m=8? no
	}
	in.AddJob(v, 1) // bag 1: 1 large job
	info, err := Classify(in, eps, Options{BPrimeOverride: 1})
	if err != nil {
		t.Fatal(err)
	}
	if !info.Priority[0] {
		t.Error("bag 0 (fullest) must be priority")
	}
	if info.Priority[1] {
		t.Error("bag 1 must not be priority under BPrimeOverride=1")
	}
}

func TestAllPriorityOption(t *testing.T) {
	eps := 0.5
	in := roundedInstance(4, eps, []float64{1, 0.5, 0.1}, []int{0, 1, 2})
	info, err := Classify(in, eps, Options{AllPriority: true})
	if err != nil {
		t.Fatal(err)
	}
	for b, p := range info.Priority {
		if !p {
			t.Errorf("bag %d not priority in AllPriority mode", b)
		}
	}
}

func TestCountsTable(t *testing.T) {
	eps := 0.5
	in := roundedInstance(4, eps, []float64{1, 1, 0.5, 0.1}, []int{0, 0, 1, 0})
	info, err := Classify(in, eps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for b := range info.Counts {
		for _, c := range info.Counts[b] {
			total += c
		}
	}
	if total != len(in.Jobs) {
		t.Errorf("counts cover %d jobs, want %d", total, len(in.Jobs))
	}
	// Bag 0 has two jobs of the same (largest) size.
	si0 := info.JobSize[0]
	if info.Counts[0][si0] != 2 {
		t.Errorf("Counts[0][%d] = %d, want 2", si0, info.Counts[0][si0])
	}
}

func TestClassOfMatchesJobClass(t *testing.T) {
	eps := 0.4
	in := roundedInstance(4, eps, []float64{1, 0.37, 0.14, 0.02}, []int{0, 1, 2, 3})
	info, err := Classify(in, eps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for j, job := range in.Jobs {
		if info.ClassOf(job.Size) != info.JobClass[j] {
			t.Errorf("ClassOf(%g) = %v, JobClass = %v", job.Size, info.ClassOf(job.Size), info.JobClass[j])
		}
	}
}

func TestSizesTableSortedDistinct(t *testing.T) {
	eps := 0.5
	in := roundedInstance(4, eps, []float64{1, 1, 0.5, 0.5, 0.1}, []int{0, 1, 2, 3, 0})
	info, err := Classify(in, eps, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(info.Sizes); i++ {
		if info.Sizes[i] >= info.Sizes[i-1] {
			t.Errorf("Sizes not strictly decreasing: %v", info.Sizes)
		}
	}
	for j := range in.Jobs {
		si := info.JobSize[j]
		if math.Abs(info.Sizes[si]-in.Jobs[j].Size) > 1e-9 {
			t.Errorf("job %d mapped to wrong size", j)
		}
	}
}
