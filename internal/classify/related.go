package classify

import (
	"fmt"
	"sort"

	"repro/internal/numeric"
	"repro/internal/sched"
)

// RelInfo is the classification of a scaled-and-rounded uniformly
// related instance (Q || Cmax, the related problem family): machines
// grouped into speed classes with exact fixed-point capacities, jobs
// split into large and small against a global threshold tied to the
// slowest speed. It plays the role Info plays for the bag-constrained
// family — everything the related decision path (pattern.EnumerateRelated,
// cfgmilp.BuildRelated, placer.PlaceRelated) needs lives here.
type RelInfo struct {
	// Eps is the accuracy parameter.
	Eps float64
	// Speeds lists the distinct machine speeds in decreasing order; a
	// speed class is one entry.
	Speeds []float64
	// MachClass[m] is the speed class index of machine m.
	MachClass []int
	// ClassCount[k] is the number of machines in class k.
	ClassCount []int
	// Cap[k] = Speeds[k] * (1+eps) is the per-machine load capacity of
	// class k for an accepted guess (sizes are scaled by 1/guess, so a
	// machine of speed s finishes load s within the guess; the (1+eps)
	// slack absorbs geometric rounding). CapFx folds the tolerance band
	// into an exact integer bound (numeric.Cap), making every
	// downstream capacity check an int64 comparison.
	Cap   []float64
	CapFx []numeric.Fx
	// LargeThreshold = eps * min(Speeds): jobs at least this size are
	// large everywhere (on the slowest machine they occupy an eps
	// fraction of capacity), so configuration slots account for them
	// on every class.
	LargeThreshold float64
	// Sizes lists the distinct large job sizes in decreasing order;
	// SizesFx mirrors them on the exact grid.
	Sizes   []float64
	SizesFx []numeric.Fx
	// SizeCount[i] is the number of large jobs of size Sizes[i].
	SizeCount []int
	// JobSize[j] indexes Sizes for large job j, -1 for small jobs.
	JobSize []int
	// JobFx[j] is the exact fixed-point size of job j.
	JobFx []numeric.Fx
	// NLarge is the number of large jobs; SmallAreaFx is the exact
	// total size of the small jobs, SmallArea its lossless float lift.
	NLarge      int
	SmallAreaFx numeric.Fx
	SmallArea   float64
}

// Related classifies a scaled-and-rounded related-machines instance
// (sizes divided by the makespan guess and grid-quantized; speeds
// untouched). The speed profile is read through Instance.Speed, so a
// nil Speeds vector degenerates to one unit-speed class.
func Related(in *sched.Instance, eps float64) (*RelInfo, error) {
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("classify: eps must be in (0,1), got %g", eps)
	}
	info := &RelInfo{Eps: eps}

	// Distinct speeds, decreasing. Speeds are caller inputs (not grid
	// values), compared exactly: two machines form one class only when
	// their declared speeds are identical.
	speeds := make([]float64, in.Machines)
	for m := 0; m < in.Machines; m++ {
		speeds[m] = in.Speed(m)
	}
	distinct := append([]float64(nil), speeds...)
	sort.Sort(sort.Reverse(sort.Float64Slice(distinct)))
	for _, s := range distinct {
		if n := len(info.Speeds); n == 0 || info.Speeds[n-1] != s {
			info.Speeds = append(info.Speeds, s)
		}
	}
	info.MachClass = make([]int, in.Machines)
	info.ClassCount = make([]int, len(info.Speeds))
	for m, s := range speeds {
		k := sort.Search(len(info.Speeds), func(i int) bool { return info.Speeds[i] <= s })
		info.MachClass[m] = k
		info.ClassCount[k]++
	}
	info.Cap = make([]float64, len(info.Speeds))
	info.CapFx = make([]numeric.Fx, len(info.Speeds))
	for k, s := range info.Speeds {
		info.Cap[k] = s * (1 + eps)
		info.CapFx[k] = numeric.Cap(info.Cap[k] + numeric.Tol)
	}
	sMin := info.Speeds[len(info.Speeds)-1]
	info.LargeThreshold = eps * sMin

	// Large sizes, decreasing; small jobs accumulate into the area
	// right-hand side in exact fixed point.
	largeSizes := make([]float64, 0, len(in.Jobs))
	for _, j := range in.Jobs {
		if j.Size >= info.LargeThreshold-numeric.Tol {
			largeSizes = append(largeSizes, j.Size)
		}
	}
	sort.Sort(sort.Reverse(sort.Float64Slice(largeSizes)))
	for _, s := range largeSizes {
		if n := len(info.Sizes); n == 0 || !numeric.Eq(info.Sizes[n-1], s) {
			info.Sizes = append(info.Sizes, s)
		}
	}
	info.SizesFx = make([]numeric.Fx, len(info.Sizes))
	for i, s := range info.Sizes {
		info.SizesFx[i] = numeric.FromFloat(s)
	}
	info.SizeCount = make([]int, len(info.Sizes))
	info.JobSize = make([]int, len(in.Jobs))
	info.JobFx = make([]numeric.Fx, len(in.Jobs))
	for j, job := range in.Jobs {
		info.JobFx[j] = numeric.FromFloat(job.Size)
		if job.Size >= info.LargeThreshold-numeric.Tol {
			si := findSize(info.Sizes, job.Size)
			if si < 0 {
				return nil, fmt.Errorf("classify: large job %d size %g missing from size table", j, job.Size)
			}
			info.JobSize[j] = si
			info.SizeCount[si]++
			info.NLarge++
		} else {
			info.JobSize[j] = -1
			info.SmallAreaFx += info.JobFx[j]
		}
	}
	info.SmallArea = info.SmallAreaFx.Float()
	return info, nil
}
