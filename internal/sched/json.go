package sched

import (
	"encoding/json"
	"fmt"
	"io"
)

// instanceJSON is the wire format for instances.
type instanceJSON struct {
	Machines int       `json:"machines"`
	NumBags  int       `json:"num_bags"`
	Speeds   []float64 `json:"speeds,omitempty"`
	Jobs     []jobJSON `json:"jobs"`
}

type jobJSON struct {
	ID   int     `json:"id"`
	Size float64 `json:"size"`
	Bag  int     `json:"bag"`
}

// MarshalJSON encodes the instance in a stable, self-describing format.
func (in *Instance) MarshalJSON() ([]byte, error) {
	w := instanceJSON{Machines: in.Machines, NumBags: in.NumBags, Speeds: in.Speeds, Jobs: make([]jobJSON, len(in.Jobs))}
	for i, j := range in.Jobs {
		w.Jobs[i] = jobJSON{ID: int(j.ID), Size: j.Size, Bag: j.Bag}
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes an instance and validates it.
func (in *Instance) UnmarshalJSON(data []byte) error {
	var w instanceJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	in.Machines = w.Machines
	in.NumBags = w.NumBags
	in.Speeds = w.Speeds
	in.Jobs = make([]Job, len(w.Jobs))
	for i, j := range w.Jobs {
		in.Jobs[i] = Job{ID: JobID(j.ID), Size: j.Size, Bag: j.Bag}
		if j.Bag >= in.NumBags {
			in.NumBags = j.Bag + 1
		}
	}
	return in.Validate()
}

// ReadInstance decodes a JSON instance from r.
func ReadInstance(r io.Reader) (*Instance, error) {
	var in Instance
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("sched: decoding instance: %w", err)
	}
	return &in, nil
}

// WriteInstance encodes the instance as indented JSON to w.
func WriteInstance(w io.Writer, in *Instance) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(in)
}

// scheduleJSON is the wire format for schedules.
type scheduleJSON struct {
	Machines   int       `json:"machines"`
	Assignment []int     `json:"assignment"`
	Makespan   float64   `json:"makespan"`
	Loads      []float64 `json:"loads"`
}

// MarshalJSON encodes the schedule together with derived statistics.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	w := scheduleJSON{
		Machines:   s.Inst.Machines,
		Assignment: s.Machine,
		Makespan:   s.Makespan(),
		Loads:      s.Loads(),
	}
	return json.Marshal(w)
}

// WriteSchedule encodes the schedule as indented JSON to w.
func WriteSchedule(w io.Writer, s *Schedule) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}
