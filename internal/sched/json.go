package sched

import (
	"encoding/json"
	"fmt"
	"io"
)

// instanceJSON is the wire format for instances.
type instanceJSON struct {
	Machines int       `json:"machines"`
	NumBags  int       `json:"num_bags"`
	Speeds   []float64 `json:"speeds,omitempty"`
	Jobs     []jobJSON `json:"jobs"`
}

type jobJSON struct {
	ID   int     `json:"id"`
	Size float64 `json:"size"`
	Bag  int     `json:"bag"`
}

// MarshalJSON encodes the instance in a stable, self-describing format.
func (in *Instance) MarshalJSON() ([]byte, error) {
	w := instanceJSON{Machines: in.Machines, NumBags: in.NumBags, Speeds: in.Speeds, Jobs: make([]jobJSON, len(in.Jobs))}
	for i, j := range in.Jobs {
		w.Jobs[i] = jobJSON{ID: int(j.ID), Size: j.Size, Bag: j.Bag}
	}
	return json.Marshal(w)
}

// UnmarshalJSON decodes an instance and validates it.
func (in *Instance) UnmarshalJSON(data []byte) error {
	var w instanceJSON
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	in.Machines = w.Machines
	in.NumBags = w.NumBags
	in.Speeds = w.Speeds
	in.Jobs = make([]Job, len(w.Jobs))
	for i, j := range w.Jobs {
		in.Jobs[i] = Job{ID: JobID(j.ID), Size: j.Size, Bag: j.Bag}
		if j.Bag >= in.NumBags {
			in.NumBags = j.Bag + 1
		}
	}
	return in.Validate()
}

// ReadInstance decodes a JSON instance from r.
func ReadInstance(r io.Reader) (*Instance, error) {
	var in Instance
	dec := json.NewDecoder(r)
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("sched: decoding instance: %w", err)
	}
	return &in, nil
}

// ReadDelta decodes a JSON delta from r — the same document the wire
// layer's "delta" field carries. Unknown fields are errors, so a typo'd
// edit kind fails loudly instead of silently changing nothing.
func ReadDelta(r io.Reader) (*Delta, error) {
	var d Delta
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&d); err != nil {
		return nil, fmt.Errorf("sched: decoding delta: %w", err)
	}
	return &d, nil
}

// WriteInstance encodes the instance as indented JSON to w.
func WriteInstance(w io.Writer, in *Instance) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(in)
}

// scheduleJSON is the wire format for schedules.
type scheduleJSON struct {
	Machines   int       `json:"machines"`
	Assignment []int     `json:"assignment"`
	Makespan   float64   `json:"makespan"`
	Loads      []float64 `json:"loads"`
}

// MarshalJSON encodes the schedule together with derived statistics.
func (s *Schedule) MarshalJSON() ([]byte, error) {
	w := scheduleJSON{
		Machines:   s.Inst.Machines,
		Assignment: s.Machine,
		Makespan:   s.Makespan(),
		Loads:      s.Loads(),
	}
	return json.Marshal(w)
}

// WriteSchedule encodes the schedule as indented JSON to w.
func WriteSchedule(w io.Writer, s *Schedule) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(s)
}

// Trace is a churn trace: a base instance plus an ordered stream of
// deltas — the replay unit of the incremental re-solve tests,
// benchmarks and the churn-replay driver. Committed traces live under
// testdata/churn_*.json (the churn_ prefix keeps them out of the
// plain-instance corpus globs).
type Trace struct {
	Base  *Instance `json:"base"`
	Steps []Delta   `json:"steps"`
}

// ReadTrace decodes a JSON churn trace from r. Unknown fields are
// errors; the base instance is validated and there must be at least one
// step.
func ReadTrace(r io.Reader) (*Trace, error) {
	var tr Trace
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&tr); err != nil {
		return nil, fmt.Errorf("sched: decoding trace: %w", err)
	}
	if tr.Base == nil {
		return nil, fmt.Errorf("sched: trace has no base instance")
	}
	if len(tr.Steps) == 0 {
		return nil, fmt.Errorf("sched: trace has no steps")
	}
	return &tr, nil
}

// WriteTrace encodes the trace as indented JSON to w.
func WriteTrace(w io.Writer, tr *Trace) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(tr)
}
