// Package sched defines the core problem types for machine scheduling with
// bag-constraints (P | bags | Cmax): instances, schedules, feasibility
// checks, load accounting and combinatorial lower bounds.
//
// An instance consists of m identical machines and a set of jobs, each with
// a positive processing time and a bag index. A schedule assigns every job
// to a machine; it is feasible when no machine holds two jobs of the same
// bag. The makespan is the maximum machine load.
package sched

import (
	"fmt"
	"sort"

	"repro/internal/numeric"
)

// JobID identifies a job within an instance. IDs are stable across clones
// and transformations so solutions can be mapped back to the original
// instance.
type JobID int

// Job is a single unit of work.
type Job struct {
	// ID is the job's stable identity within its instance.
	ID JobID
	// Size is the processing time; it must be positive.
	Size float64
	// Bag is the index of the bag containing this job, in [0, NumBags).
	Bag int
}

// Instance is a bag-constrained scheduling instance.
type Instance struct {
	// Jobs holds all jobs. Job IDs are unique but need not be dense.
	Jobs []Job
	// NumBags is the number of bags; every job's Bag is < NumBags.
	NumBags int
	// Machines is the number of machines, at least 1.
	Machines int
	// Speeds, when non-nil, gives each machine a positive speed: machine
	// m finishes load L in time L/Speeds[m] (the uniformly related
	// machines model, Q||Cmax). Nil means identical machines (all speeds
	// 1), the bag-constrained model of the paper. Which problem families
	// accept speed instances is decided by internal/family.
	Speeds []float64
}

// NewInstance returns an empty instance with the given machine count.
func NewInstance(machines int) *Instance {
	return &Instance{Machines: machines}
}

// NewRelatedInstance returns an empty uniformly-related-machines
// instance with one machine per entry of speeds.
func NewRelatedInstance(speeds []float64) *Instance {
	return &Instance{Machines: len(speeds), Speeds: append([]float64(nil), speeds...)}
}

// Speed returns machine m's speed (1 for identical machines).
func (in *Instance) Speed(m int) float64 {
	if in.Speeds == nil {
		return 1
	}
	return in.Speeds[m]
}

// Uniform reports whether all machines run at the same speed.
func (in *Instance) Uniform() bool {
	for _, s := range in.Speeds {
		if s != in.Speeds[0] {
			return false
		}
	}
	return true
}

// AddJob appends a job with the given size and bag, extending NumBags if
// needed, and returns its index in Jobs.
func (in *Instance) AddJob(size float64, bag int) int {
	idx := len(in.Jobs)
	in.Jobs = append(in.Jobs, Job{ID: JobID(idx), Size: size, Bag: bag})
	if bag >= in.NumBags {
		in.NumBags = bag + 1
	}
	return idx
}

// Clone returns a deep copy of the instance.
func (in *Instance) Clone() *Instance {
	out := &Instance{
		Jobs:     make([]Job, len(in.Jobs)),
		NumBags:  in.NumBags,
		Machines: in.Machines,
	}
	copy(out.Jobs, in.Jobs)
	if in.Speeds != nil {
		out.Speeds = append([]float64(nil), in.Speeds...)
	}
	return out
}

// Validate checks structural well-formedness: at least one machine,
// positive job sizes and bag indices in range. It does not check
// feasibility; see Feasible.
func (in *Instance) Validate() error {
	if in.Machines < 1 {
		return fmt.Errorf("sched: instance has %d machines, need at least 1", in.Machines)
	}
	if in.Speeds != nil {
		if len(in.Speeds) != in.Machines {
			return fmt.Errorf("sched: instance has %d speeds for %d machines", len(in.Speeds), in.Machines)
		}
		for m, s := range in.Speeds {
			if s <= 0 {
				return fmt.Errorf("sched: machine %d has non-positive speed %g", m, s)
			}
		}
	}
	seen := make(map[JobID]bool, len(in.Jobs))
	for i, j := range in.Jobs {
		if j.Size <= 0 {
			return fmt.Errorf("sched: job %d (id %d) has non-positive size %g", i, j.ID, j.Size)
		}
		if j.Bag < 0 || j.Bag >= in.NumBags {
			return fmt.Errorf("sched: job %d (id %d) has bag %d outside [0,%d)", i, j.ID, j.Bag, in.NumBags)
		}
		if seen[j.ID] {
			return fmt.Errorf("sched: duplicate job id %d", j.ID)
		}
		seen[j.ID] = true
	}
	return nil
}

// Feasible reports whether any feasible schedule exists: every bag must
// hold at most Machines jobs (its jobs need pairwise-distinct machines).
func (in *Instance) Feasible() error {
	counts := in.BagCounts()
	for b, c := range counts {
		if c > in.Machines {
			return fmt.Errorf("sched: bag %d has %d jobs but only %d machines", b, c, in.Machines)
		}
	}
	return nil
}

// TotalArea returns the sum of all job sizes.
func (in *Instance) TotalArea() float64 {
	sizes := make([]float64, len(in.Jobs))
	for i, j := range in.Jobs {
		sizes[i] = j.Size
	}
	return numeric.Sum(sizes)
}

// MaxJobSize returns the largest job size, or 0 if there are no jobs.
func (in *Instance) MaxJobSize() float64 {
	var m float64
	for _, j := range in.Jobs {
		if j.Size > m {
			m = j.Size
		}
	}
	return m
}

// BagCounts returns the number of jobs per bag.
func (in *Instance) BagCounts() []int {
	counts := make([]int, in.NumBags)
	for _, j := range in.Jobs {
		counts[j.Bag]++
	}
	return counts
}

// JobsByBag returns, for each bag, the indices (into Jobs) of its jobs in
// input order.
func (in *Instance) JobsByBag() [][]int {
	byBag := make([][]int, in.NumBags)
	for i, j := range in.Jobs {
		byBag[j.Bag] = append(byBag[j.Bag], i)
	}
	return byBag
}

// SortedJobIdxDesc returns job indices sorted by decreasing size, ties
// broken by increasing job ID for determinism.
func (in *Instance) SortedJobIdxDesc() []int {
	idx := make([]int, len(in.Jobs))
	for i := range idx {
		idx[i] = i
	}
	sort.SliceStable(idx, func(a, b int) bool {
		ja, jb := in.Jobs[idx[a]], in.Jobs[idx[b]]
		if ja.Size != jb.Size {
			return ja.Size > jb.Size
		}
		return ja.ID < jb.ID
	})
	return idx
}

// LowerBound returns a combinatorial lower bound on the optimal makespan:
// the maximum of the largest job, the average machine area, and, when there
// are more jobs than machines, the classical pairing bound p_(m) + p_(m+1)
// (some machine must hold two of the m+1 largest jobs).
func LowerBound(in *Instance) float64 {
	if len(in.Jobs) == 0 {
		return 0
	}
	lb := in.MaxJobSize()
	if avg := in.TotalArea() / float64(in.Machines); avg > lb {
		lb = avg
	}
	if len(in.Jobs) > in.Machines {
		idx := in.SortedJobIdxDesc()
		pair := in.Jobs[idx[in.Machines-1]].Size + in.Jobs[idx[in.Machines]].Size
		if pair > lb {
			lb = pair
		}
	}
	return lb
}

// Schedule is an assignment of every job of an instance to a machine.
type Schedule struct {
	// Inst is the instance being scheduled.
	Inst *Instance
	// Machine[i] is the machine of job i (index into Inst.Jobs), in
	// [0, Inst.Machines).
	Machine []int
}

// NewSchedule returns a schedule for in with all assignments set to -1
// (unassigned). Unassigned jobs make the schedule invalid.
func NewSchedule(in *Instance) *Schedule {
	m := make([]int, len(in.Jobs))
	for i := range m {
		m[i] = -1
	}
	return &Schedule{Inst: in, Machine: m}
}

// Clone returns a deep copy sharing the same instance.
func (s *Schedule) Clone() *Schedule {
	m := make([]int, len(s.Machine))
	copy(m, s.Machine)
	return &Schedule{Inst: s.Inst, Machine: m}
}

// Loads returns the per-machine load vector.
func (s *Schedule) Loads() []float64 {
	loads := make([]float64, s.Inst.Machines)
	for i, m := range s.Machine {
		if m >= 0 {
			loads[m] += s.Inst.Jobs[i].Size
		}
	}
	return loads
}

// Makespan returns the maximum machine completion time: the maximum
// load for identical machines, the maximum of load/speed when the
// instance carries machine speeds.
func (s *Schedule) Makespan() float64 {
	loads := s.Loads()
	if s.Inst.Speeds == nil {
		return numeric.MaxFloat(loads)
	}
	var ms float64
	for m, l := range loads {
		if t := l / s.Inst.Speeds[m]; t > ms {
			ms = t
		}
	}
	return ms
}

// Conflict is a violation of the bag-constraint: two jobs of one bag on
// one machine.
type Conflict struct {
	// JobA and JobB are indices into Inst.Jobs with JobA < JobB.
	JobA, JobB int
	// Machine is the shared machine.
	Machine int
	// Bag is the shared bag.
	Bag int
}

// Conflicts returns all bag-constraint violations, one per offending job
// pair, in deterministic order.
func (s *Schedule) Conflicts() []Conflict {
	// seen[(machine,bag)] = first job index observed there.
	type key struct{ machine, bag int }
	var out []Conflict
	seen := make(map[key][]int)
	for i, m := range s.Machine {
		if m < 0 {
			continue
		}
		k := key{m, s.Inst.Jobs[i].Bag}
		seen[k] = append(seen[k], i)
	}
	for k, jobs := range seen {
		for a := 0; a < len(jobs); a++ {
			for b := a + 1; b < len(jobs); b++ {
				out = append(out, Conflict{JobA: jobs[a], JobB: jobs[b], Machine: k.machine, Bag: k.bag})
			}
		}
	}
	sort.Slice(out, func(a, b int) bool {
		if out[a].JobA != out[b].JobA {
			return out[a].JobA < out[b].JobA
		}
		return out[a].JobB < out[b].JobB
	})
	return out
}

// Validate checks that every job is assigned to a machine in range and
// that no bag-constraint is violated.
func (s *Schedule) Validate() error {
	if len(s.Machine) != len(s.Inst.Jobs) {
		return fmt.Errorf("sched: schedule covers %d jobs, instance has %d", len(s.Machine), len(s.Inst.Jobs))
	}
	for i, m := range s.Machine {
		if m < 0 || m >= s.Inst.Machines {
			return fmt.Errorf("sched: job %d assigned to machine %d outside [0,%d)", i, m, s.Inst.Machines)
		}
	}
	if c := s.Conflicts(); len(c) > 0 {
		return fmt.Errorf("sched: %d bag-constraint violations, first: jobs %d,%d (bag %d) on machine %d",
			len(c), c[0].JobA, c[0].JobB, c[0].Bag, c[0].Machine)
	}
	return nil
}

// BagsOnMachine returns, per machine, the set of bags present.
func (s *Schedule) BagsOnMachine() []map[int]int {
	out := make([]map[int]int, s.Inst.Machines)
	for i := range out {
		out[i] = make(map[int]int)
	}
	for i, m := range s.Machine {
		if m >= 0 {
			out[m][s.Inst.Jobs[i].Bag]++
		}
	}
	return out
}

// JobsOnMachine returns, per machine, the job indices assigned to it in
// input order.
func (s *Schedule) JobsOnMachine() [][]int {
	out := make([][]int, s.Inst.Machines)
	for i, m := range s.Machine {
		if m >= 0 {
			out[m] = append(out[m], i)
		}
	}
	return out
}
