package sched

import (
	"bytes"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func mkInstance(machines int, jobs ...Job) *Instance {
	in := NewInstance(machines)
	for _, j := range jobs {
		in.AddJob(j.Size, j.Bag)
	}
	return in
}

func TestAddJobExtendsBags(t *testing.T) {
	in := NewInstance(2)
	in.AddJob(1, 0)
	in.AddJob(1, 4)
	if in.NumBags != 5 {
		t.Errorf("NumBags = %d, want 5", in.NumBags)
	}
	if in.Jobs[1].ID != 1 {
		t.Errorf("job ID = %d, want 1", in.Jobs[1].ID)
	}
}

func TestValidate(t *testing.T) {
	tests := []struct {
		name    string
		mutate  func(*Instance)
		wantErr bool
	}{
		{"valid", func(in *Instance) {}, false},
		{"zero machines", func(in *Instance) { in.Machines = 0 }, true},
		{"negative size", func(in *Instance) { in.Jobs[0].Size = -1 }, true},
		{"zero size", func(in *Instance) { in.Jobs[0].Size = 0 }, true},
		{"bag out of range", func(in *Instance) { in.Jobs[0].Bag = 99 }, true},
		{"negative bag", func(in *Instance) { in.Jobs[0].Bag = -1 }, true},
		{"duplicate id", func(in *Instance) { in.Jobs[1].ID = in.Jobs[0].ID }, true},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			in := mkInstance(2, Job{Size: 1, Bag: 0}, Job{Size: 2, Bag: 1})
			tt.mutate(in)
			err := in.Validate()
			if (err != nil) != tt.wantErr {
				t.Errorf("Validate() err = %v, wantErr = %v", err, tt.wantErr)
			}
		})
	}
}

func TestFeasible(t *testing.T) {
	in := mkInstance(2, Job{Size: 1, Bag: 0}, Job{Size: 1, Bag: 0}, Job{Size: 1, Bag: 0})
	if err := in.Feasible(); err == nil {
		t.Error("expected infeasibility: bag 0 has 3 jobs, 2 machines")
	}
	in2 := mkInstance(3, Job{Size: 1, Bag: 0}, Job{Size: 1, Bag: 0}, Job{Size: 1, Bag: 0})
	if err := in2.Feasible(); err != nil {
		t.Errorf("unexpected infeasibility: %v", err)
	}
}

func TestAggregates(t *testing.T) {
	in := mkInstance(4,
		Job{Size: 1, Bag: 0}, Job{Size: 2, Bag: 0}, Job{Size: 3, Bag: 1})
	if got := in.TotalArea(); got != 6 {
		t.Errorf("TotalArea = %g", got)
	}
	if got := in.MaxJobSize(); got != 3 {
		t.Errorf("MaxJobSize = %g", got)
	}
	if got := in.BagCounts(); got[0] != 2 || got[1] != 1 {
		t.Errorf("BagCounts = %v", got)
	}
	byBag := in.JobsByBag()
	if len(byBag[0]) != 2 || byBag[0][0] != 0 || byBag[0][1] != 1 || byBag[1][0] != 2 {
		t.Errorf("JobsByBag = %v", byBag)
	}
}

func TestSortedJobIdxDesc(t *testing.T) {
	in := mkInstance(2, Job{Size: 1, Bag: 0}, Job{Size: 3, Bag: 0}, Job{Size: 3, Bag: 1}, Job{Size: 2, Bag: 1})
	got := in.SortedJobIdxDesc()
	want := []int{1, 2, 3, 0} // 3 (id1), 3 (id2), 2, 1
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("SortedJobIdxDesc = %v, want %v", got, want)
		}
	}
}

func TestLowerBound(t *testing.T) {
	tests := []struct {
		name string
		in   *Instance
		want float64
	}{
		{"empty", NewInstance(3), 0},
		{"max job dominates", mkInstance(4, Job{Size: 10, Bag: 0}, Job{Size: 1, Bag: 1}), 10},
		{"area dominates", mkInstance(2, Job{Size: 3, Bag: 0}, Job{Size: 3, Bag: 1}, Job{Size: 3, Bag: 2}, Job{Size: 3, Bag: 3}), 6},
		{"pairing dominates", mkInstance(2,
			Job{Size: 4, Bag: 0}, Job{Size: 4, Bag: 1}, Job{Size: 3.5, Bag: 2}), 7.5},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := LowerBound(tt.in); got != tt.want {
				t.Errorf("LowerBound = %g, want %g", got, tt.want)
			}
		})
	}
}

func TestScheduleLoadsAndMakespan(t *testing.T) {
	in := mkInstance(2, Job{Size: 1, Bag: 0}, Job{Size: 2, Bag: 1}, Job{Size: 4, Bag: 0})
	s := NewSchedule(in)
	s.Machine = []int{0, 0, 1}
	loads := s.Loads()
	if loads[0] != 3 || loads[1] != 4 {
		t.Errorf("Loads = %v", loads)
	}
	if s.Makespan() != 4 {
		t.Errorf("Makespan = %g", s.Makespan())
	}
}

func TestScheduleConflicts(t *testing.T) {
	in := mkInstance(2, Job{Size: 1, Bag: 0}, Job{Size: 2, Bag: 0}, Job{Size: 1, Bag: 1})
	s := NewSchedule(in)
	s.Machine = []int{0, 0, 0}
	cs := s.Conflicts()
	if len(cs) != 1 {
		t.Fatalf("Conflicts = %v, want 1", cs)
	}
	if cs[0].JobA != 0 || cs[0].JobB != 1 || cs[0].Bag != 0 || cs[0].Machine != 0 {
		t.Errorf("conflict = %+v", cs[0])
	}
	if err := s.Validate(); err == nil {
		t.Error("Validate should fail on conflicting schedule")
	}
	s.Machine = []int{0, 1, 0}
	if err := s.Validate(); err != nil {
		t.Errorf("Validate: %v", err)
	}
}

func TestScheduleValidateUnassigned(t *testing.T) {
	in := mkInstance(2, Job{Size: 1, Bag: 0})
	s := NewSchedule(in)
	if err := s.Validate(); err == nil {
		t.Error("unassigned job should fail validation")
	}
	s.Machine[0] = 5
	if err := s.Validate(); err == nil {
		t.Error("machine out of range should fail validation")
	}
}

func TestTripleConflictCount(t *testing.T) {
	in := mkInstance(2, Job{Size: 1, Bag: 0}, Job{Size: 1, Bag: 0}, Job{Size: 1, Bag: 0})
	in.Machines = 2
	s := NewSchedule(in)
	s.Machine = []int{0, 0, 0}
	if got := len(s.Conflicts()); got != 3 { // C(3,2) pairs
		t.Errorf("conflicts = %d, want 3", got)
	}
}

func TestCloneIndependence(t *testing.T) {
	in := mkInstance(2, Job{Size: 1, Bag: 0})
	cl := in.Clone()
	cl.Jobs[0].Size = 99
	if in.Jobs[0].Size == 99 {
		t.Error("Clone shares job storage")
	}
	s := NewSchedule(in)
	s.Machine[0] = 0
	sc := s.Clone()
	sc.Machine[0] = 1
	if s.Machine[0] == 1 {
		t.Error("Schedule.Clone shares assignment storage")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	in := mkInstance(3, Job{Size: 1.5, Bag: 0}, Job{Size: 2.25, Bag: 2})
	var buf bytes.Buffer
	if err := WriteInstance(&buf, in); err != nil {
		t.Fatal(err)
	}
	got, err := ReadInstance(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Machines != in.Machines || got.NumBags != in.NumBags || len(got.Jobs) != len(in.Jobs) {
		t.Fatalf("round trip mismatch: %+v vs %+v", got, in)
	}
	for i := range got.Jobs {
		if got.Jobs[i] != in.Jobs[i] {
			t.Errorf("job %d = %+v, want %+v", i, got.Jobs[i], in.Jobs[i])
		}
	}
}

func TestJSONRejectsInvalid(t *testing.T) {
	bad := bytes.NewBufferString(`{"machines": 0, "jobs": []}`)
	if _, err := ReadInstance(bad); err == nil {
		t.Error("expected error for zero machines")
	}
	bad2 := bytes.NewBufferString(`{"machines": 2, "jobs": [{"id":0,"size":-1,"bag":0}]}`)
	if _, err := ReadInstance(bad2); err == nil {
		t.Error("expected error for negative size")
	}
}

func TestScheduleJSONHasStats(t *testing.T) {
	in := mkInstance(2, Job{Size: 1, Bag: 0}, Job{Size: 2, Bag: 1})
	s := NewSchedule(in)
	s.Machine = []int{0, 1}
	var buf bytes.Buffer
	if err := WriteSchedule(&buf, s); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"makespan", "loads", "assignment"} {
		if !bytes.Contains(buf.Bytes(), []byte(want)) {
			t.Errorf("schedule JSON missing %q: %s", want, out)
		}
	}
}

// Property: Loads sums to total area and Makespan >= LowerBound holds for
// any valid random schedule.
func TestScheduleInvariantsProperty(t *testing.T) {
	prop := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := 1 + rng.Intn(5)
		in := NewInstance(m)
		n := rng.Intn(20)
		for i := 0; i < n; i++ {
			in.AddJob(0.1+rng.Float64(), rng.Intn(6))
		}
		s := NewSchedule(in)
		for i := range s.Machine {
			s.Machine[i] = rng.Intn(m)
		}
		loads := s.Loads()
		sum := 0.0
		for _, l := range loads {
			sum += l
		}
		if math.Abs(sum-in.TotalArea()) > 1e-9 {
			return false
		}
		// A valid (conflict-free, fully assigned) schedule's makespan is
		// at least the area and max-job bounds.
		if len(s.Conflicts()) == 0 && n > 0 {
			if s.Makespan()+1e-9 < in.TotalArea()/float64(m) {
				return false
			}
			if s.Makespan()+1e-9 < in.MaxJobSize() {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}
