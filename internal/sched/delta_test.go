package sched

import (
	"strings"
	"testing"
)

func deltaBase() *Instance {
	in := NewInstance(3)
	in.AddJob(4, 0) // id 0
	in.AddJob(3, 1) // id 1
	in.AddJob(2, 0) // id 2
	in.AddJob(1, 2) // id 3
	return in
}

func TestDeltaApplyEdits(t *testing.T) {
	base := deltaBase()
	d := Delta{
		Remove: []JobID{1},
		Resize: []Resize{{ID: 0, Size: 5}},
		Rebag:  []Rebag{{ID: 3, Bag: 4}},
		Add:    []Job{{ID: 10, Size: 2.5, Bag: 1}},
	}
	post, churn, err := d.Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if base.Jobs[0].Size != 4 || len(base.Jobs) != 4 {
		t.Fatal("Apply mutated its base")
	}
	if len(post.Jobs) != 4 {
		t.Fatalf("post has %d jobs, want 4", len(post.Jobs))
	}
	if post.Jobs[0].Size != 5 || post.Jobs[0].ID != 0 {
		t.Errorf("resize missing: %+v", post.Jobs[0])
	}
	if post.Jobs[2].Bag != 4 || post.NumBags != 5 {
		t.Errorf("rebag missing: %+v numBags=%d", post.Jobs[2], post.NumBags)
	}
	if post.Jobs[3].ID != 10 {
		t.Errorf("add missing: %+v", post.Jobs[3])
	}
	wantPrior := []int{0, 2, 3, -1}
	wantChanged := []bool{true, false, true, true}
	for i := range wantPrior {
		if churn.PriorIndex[i] != wantPrior[i] || churn.Changed[i] != wantChanged[i] {
			t.Errorf("churn[%d] = (%d,%v), want (%d,%v)",
				i, churn.PriorIndex[i], churn.Changed[i], wantPrior[i], wantChanged[i])
		}
	}
	if err := post.Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestDeltaApplyMachines(t *testing.T) {
	post, _, err := (&Delta{Machines: 2}).Apply(deltaBase())
	if err != nil {
		t.Fatal(err)
	}
	if post.Machines != 5 {
		t.Errorf("machines = %d, want 5", post.Machines)
	}
	post, _, err = (&Delta{Machines: -2}).Apply(deltaBase())
	if err != nil {
		t.Fatal(err)
	}
	if post.Machines != 1 {
		t.Errorf("machines = %d, want 1", post.Machines)
	}
	if _, _, err := (&Delta{Machines: -3}).Apply(deltaBase()); err == nil {
		t.Error("emptying the machine set must fail")
	}
}

func TestDeltaApplySpeeds(t *testing.T) {
	base := NewRelatedInstance([]float64{1, 2, 4})
	base.AddJob(3, 0)
	post, _, err := (&Delta{Machines: 1, AddSpeeds: []float64{8}}).Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(post.Speeds) != 4 || post.Speeds[3] != 8 {
		t.Errorf("speeds = %v", post.Speeds)
	}
	post, _, err = (&Delta{Machines: -1}).Apply(base)
	if err != nil {
		t.Fatal(err)
	}
	if len(post.Speeds) != 2 {
		t.Errorf("speeds = %v, want 2 entries", post.Speeds)
	}
	if _, _, err := (&Delta{Machines: 1}).Apply(base); err == nil {
		t.Error("adding a machine to a speed instance without a speed must fail")
	}
	if _, _, err := (&Delta{AddSpeeds: []float64{1}}).Apply(deltaBase()); err == nil {
		t.Error("speeds on an identical-machines delta must fail")
	}
}

func TestDeltaApplyRejectsBadEdits(t *testing.T) {
	for name, d := range map[string]Delta{
		"remove-unknown":   {Remove: []JobID{99}},
		"remove-twice":     {Remove: []JobID{1, 1}},
		"resize-unknown":   {Resize: []Resize{{ID: 99, Size: 1}}},
		"resize-removed":   {Remove: []JobID{1}, Resize: []Resize{{ID: 1, Size: 1}}},
		"resize-nonpos":    {Resize: []Resize{{ID: 1, Size: 0}}},
		"resize-twice":     {Resize: []Resize{{ID: 1, Size: 1}, {ID: 1, Size: 2}}},
		"rebag-unknown":    {Rebag: []Rebag{{ID: 99, Bag: 0}}},
		"rebag-negative":   {Rebag: []Rebag{{ID: 1, Bag: -1}}},
		"add-existing-id":  {Add: []Job{{ID: 1, Size: 1, Bag: 0}}},
		"add-nonpos-size":  {Add: []Job{{ID: 10, Size: 0, Bag: 0}}},
		"add-negative-bag": {Add: []Job{{ID: 10, Size: 1, Bag: -1}}},
	} {
		if _, _, err := d.Apply(deltaBase()); err == nil {
			t.Errorf("%s: expected error", name)
		}
	}
}

func TestDeltaApplyReaddRemovedID(t *testing.T) {
	// Removing a job frees its ID for re-adding (a resize expressed as
	// remove+add).
	d := Delta{Remove: []JobID{2}, Add: []Job{{ID: 2, Size: 9, Bag: 0}}}
	post, churn, err := d.Apply(deltaBase())
	if err != nil {
		t.Fatal(err)
	}
	last := post.Jobs[len(post.Jobs)-1]
	if last.ID != 2 || last.Size != 9 {
		t.Errorf("re-added job = %+v", last)
	}
	if churn.PriorIndex[len(post.Jobs)-1] != -1 {
		t.Error("re-added job must count as new")
	}
}

func TestDeltaEmptyAndJobs(t *testing.T) {
	var d Delta
	if !d.Empty() || d.Jobs() != 0 {
		t.Error("zero delta must be empty")
	}
	d = Delta{Resize: []Resize{{ID: 0, Size: 1}}, Machines: 0}
	if d.Empty() || d.Jobs() != 1 {
		t.Errorf("delta Empty=%v Jobs=%d", d.Empty(), d.Jobs())
	}
	if (&Delta{Machines: 1}).Empty() {
		t.Error("machine delta must not be empty")
	}
}

func TestDeltaApplyValidatesPost(t *testing.T) {
	// Bag 0 gets 3 jobs on 2 machines after a machine removal — still
	// structurally valid; structural invalidity comes from elsewhere.
	// Here: a rebag beyond any sane bag keeps Validate happy (bags
	// extend), so force invalidity via duplicate IDs in the base.
	base := deltaBase()
	base.Jobs[1].ID = 0 // duplicate
	if _, _, err := (&Delta{}).Apply(base); err == nil || !strings.Contains(err.Error(), "duplicate") {
		t.Errorf("expected duplicate-id error, got %v", err)
	}
}
