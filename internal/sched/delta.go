package sched

import "fmt"

// Delta describes an incremental change to an instance: the job and
// machine churn a dynamic workload applies between two solves. Deltas
// are data (JSON-encodable for the wire layer) and are applied
// functionally — Apply never mutates the base instance.
type Delta struct {
	// Add appends new jobs. Every added job must carry an ID that is
	// unique within the post-delta instance; sizes must be positive.
	Add []Job `json:"add,omitempty"`
	// Remove deletes jobs by ID. The remaining jobs keep their input
	// order.
	Remove []JobID `json:"remove,omitempty"`
	// Resize replaces the size of existing jobs.
	Resize []Resize `json:"resize,omitempty"`
	// Rebag moves existing jobs to a different bag, extending the bag
	// count if needed.
	Rebag []Rebag `json:"rebag,omitempty"`
	// Machines adjusts the machine count (positive adds, negative
	// removes; the count must stay at least 1). When the base instance
	// carries machine speeds, added machines take their speeds from
	// AddSpeeds and removed machines are dropped from the top of the
	// speed vector.
	Machines int `json:"machines,omitempty"`
	// AddSpeeds gives the speeds of added machines on speed-carrying
	// instances; its length must equal Machines when positive. Ignored
	// (and must be empty) on identical-machine instances.
	AddSpeeds []float64 `json:"add_speeds,omitempty"`
}

// Resize is one job-size replacement.
type Resize struct {
	ID   JobID   `json:"id"`
	Size float64 `json:"size"`
}

// Rebag is one job-to-bag move.
type Rebag struct {
	ID  JobID `json:"id"`
	Bag int   `json:"bag"`
}

// Empty reports whether the delta changes nothing.
func (d *Delta) Empty() bool {
	return len(d.Add) == 0 && len(d.Remove) == 0 && len(d.Resize) == 0 &&
		len(d.Rebag) == 0 && d.Machines == 0
}

// Jobs returns the number of job-level edits (adds + removes + resizes
// + rebags) — the churn size drivers and stats report.
func (d *Delta) Jobs() int {
	return len(d.Add) + len(d.Remove) + len(d.Resize) + len(d.Rebag)
}

// Churn maps a post-delta instance back onto its base: which jobs
// survived unchanged (and where they were), and which are new or
// edited. The placement-repair fast path uses it to carry unchanged
// assignments over and re-place only the churned jobs.
type Churn struct {
	// PriorIndex[i] is the index in the base instance of post-delta job
	// i, or -1 for jobs added by the delta.
	PriorIndex []int
	// Changed[i] reports that post-delta job i was added, resized or
	// rebagged — its prior machine (if any) may no longer be valid.
	Changed []bool
}

// Apply returns the post-delta instance and the churn map. The base
// instance is never modified. Edits are applied remove → resize →
// rebag → add → machines; an edit naming an unknown or duplicate job
// ID, a non-positive size, a negative bag, or a machine adjustment
// that empties the instance is an error.
func (d *Delta) Apply(base *Instance) (*Instance, *Churn, error) {
	byID := make(map[JobID]int, len(base.Jobs))
	for i, j := range base.Jobs {
		if _, dup := byID[j.ID]; dup {
			return nil, nil, fmt.Errorf("sched: delta base has duplicate job id %d", j.ID)
		}
		byID[j.ID] = i
	}

	removed := make(map[JobID]bool, len(d.Remove))
	for _, id := range d.Remove {
		if _, ok := byID[id]; !ok {
			return nil, nil, fmt.Errorf("sched: delta removes unknown job id %d", id)
		}
		if removed[id] {
			return nil, nil, fmt.Errorf("sched: delta removes job id %d twice", id)
		}
		removed[id] = true
	}

	resized := make(map[JobID]float64, len(d.Resize))
	for _, r := range d.Resize {
		if _, ok := byID[r.ID]; !ok {
			return nil, nil, fmt.Errorf("sched: delta resizes unknown job id %d", r.ID)
		}
		if removed[r.ID] {
			return nil, nil, fmt.Errorf("sched: delta resizes removed job id %d", r.ID)
		}
		if r.Size <= 0 {
			return nil, nil, fmt.Errorf("sched: delta resizes job id %d to non-positive size %g", r.ID, r.Size)
		}
		if _, dup := resized[r.ID]; dup {
			return nil, nil, fmt.Errorf("sched: delta resizes job id %d twice", r.ID)
		}
		resized[r.ID] = r.Size
	}

	rebagged := make(map[JobID]int, len(d.Rebag))
	for _, r := range d.Rebag {
		if _, ok := byID[r.ID]; !ok {
			return nil, nil, fmt.Errorf("sched: delta rebags unknown job id %d", r.ID)
		}
		if removed[r.ID] {
			return nil, nil, fmt.Errorf("sched: delta rebags removed job id %d", r.ID)
		}
		if r.Bag < 0 {
			return nil, nil, fmt.Errorf("sched: delta rebags job id %d to negative bag %d", r.ID, r.Bag)
		}
		if _, dup := rebagged[r.ID]; dup {
			return nil, nil, fmt.Errorf("sched: delta rebags job id %d twice", r.ID)
		}
		rebagged[r.ID] = r.Bag
	}

	post := &Instance{
		NumBags:  base.NumBags,
		Machines: base.Machines + d.Machines,
	}
	if post.Machines < 1 {
		return nil, nil, fmt.Errorf("sched: delta leaves %d machines, need at least 1", post.Machines)
	}
	churn := &Churn{}

	appendJob := func(j Job, prior int, changed bool) {
		post.Jobs = append(post.Jobs, j)
		churn.PriorIndex = append(churn.PriorIndex, prior)
		churn.Changed = append(churn.Changed, changed)
		if j.Bag >= post.NumBags {
			post.NumBags = j.Bag + 1
		}
	}

	for i, j := range base.Jobs {
		if removed[j.ID] {
			continue
		}
		changed := false
		if sz, ok := resized[j.ID]; ok {
			j.Size = sz
			changed = true
		}
		if bag, ok := rebagged[j.ID]; ok {
			j.Bag = bag
			changed = true
		}
		appendJob(j, i, changed)
	}
	for _, j := range d.Add {
		if _, clash := byID[j.ID]; clash && !removed[j.ID] {
			return nil, nil, fmt.Errorf("sched: delta adds job id %d already present", j.ID)
		}
		if j.Size <= 0 {
			return nil, nil, fmt.Errorf("sched: delta adds job id %d with non-positive size %g", j.ID, j.Size)
		}
		if j.Bag < 0 {
			return nil, nil, fmt.Errorf("sched: delta adds job id %d with negative bag %d", j.ID, j.Bag)
		}
		appendJob(j, -1, true)
	}

	if base.Speeds != nil {
		switch {
		case d.Machines > 0:
			if len(d.AddSpeeds) != d.Machines {
				return nil, nil, fmt.Errorf("sched: delta adds %d machines to a speed instance but carries %d speeds", d.Machines, len(d.AddSpeeds))
			}
			for i, s := range d.AddSpeeds {
				if s <= 0 {
					return nil, nil, fmt.Errorf("sched: delta adds machine with non-positive speed %g (entry %d)", s, i)
				}
			}
			post.Speeds = append(append([]float64(nil), base.Speeds...), d.AddSpeeds...)
		case d.Machines < 0:
			post.Speeds = append([]float64(nil), base.Speeds[:post.Machines]...)
		default:
			post.Speeds = append([]float64(nil), base.Speeds...)
		}
	} else if len(d.AddSpeeds) > 0 {
		return nil, nil, fmt.Errorf("sched: delta carries machine speeds for an identical-machines instance")
	}

	if err := post.Validate(); err != nil {
		return nil, nil, fmt.Errorf("sched: post-delta instance invalid: %w", err)
	}
	return post, churn, nil
}
