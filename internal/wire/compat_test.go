package wire

import (
	"bytes"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// The golden bodies under testdata/ are the compatibility contract of
// the request redesign: legacy flat-field bodies written against the
// pre-SolveSpec API must keep decoding to exactly the same knobs, the
// nested "spec" form must win wholesale over flat fields, and
// re-encoding a legacy request must not leak any of the new SLO fields
// into the document.

func readGolden(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("testdata", name))
	if err != nil {
		t.Fatal(err)
	}
	return data
}

var wantLegacySpec = SolveSpec{
	Eps:           0.2,
	Backend:       "cfgdp",
	Family:        "identical",
	TimeoutMS:     250,
	NoCache:       true,
	OracleWorkers: 2,
}

func TestGoldenLegacySolveDecodes(t *testing.T) {
	var req SolveRequest
	if err := Unmarshal(readGolden(t, "solve_legacy.json"), &req); err != nil {
		t.Fatal(err)
	}
	if req.Instance == nil || req.Instance.Machines != 2 || len(req.Instance.Jobs) != 3 {
		t.Fatalf("instance lost in decode: %+v", req.Instance)
	}
	if req.Spec != nil {
		t.Fatal("legacy body must not materialize a nested spec")
	}
	if got := req.EffectiveSpec(); got != wantLegacySpec {
		t.Fatalf("legacy flat fields decoded to %+v, want %+v", got, wantLegacySpec)
	}
}

func TestGoldenNestedSpecWinsWholesale(t *testing.T) {
	var req SolveRequest
	if err := Unmarshal(readGolden(t, "solve_spec.json"), &req); err != nil {
		t.Fatal(err)
	}
	// The body also carries flat eps/backend decoys; the nested block
	// replaces them wholesale, it does not merge.
	if got := req.EffectiveSpec(); got != wantLegacySpec {
		t.Fatalf("nested spec resolved to %+v, want %+v", got, wantLegacySpec)
	}
	if req.Eps != 0.9 || req.Backend != "bnb" {
		t.Fatalf("flat decoys should still decode (they are just ignored): %+v", req.SolveSpec)
	}
}

func TestGoldenSLOSpecDecodes(t *testing.T) {
	var req SolveRequest
	if err := Unmarshal(readGolden(t, "solve_slo.json"), &req); err != nil {
		t.Fatal(err)
	}
	got := req.EffectiveSpec()
	if got.DeadlineMS != 20 || got.MinQuality != 1.5 || !got.Adaptive {
		t.Fatalf("SLO fields lost: %+v", got)
	}
	if got.Eps != 0.1 || got.Family != "bags" {
		t.Fatalf("spec knobs lost: %+v", got)
	}
}

func TestGoldenLegacyBatchDecodes(t *testing.T) {
	var req BatchRequest
	if err := Unmarshal(readGolden(t, "batch_legacy.json"), &req); err != nil {
		t.Fatal(err)
	}
	if len(req.Instances) != 2 {
		t.Fatalf("instances lost: %d", len(req.Instances))
	}
	want := SolveSpec{Eps: 0.3, Backend: "bnb", Family: "bags", TimeoutMS: 100, OracleWorkers: 1}
	if got := req.EffectiveSpec(); got != want {
		t.Fatalf("batch flat fields decoded to %+v, want %+v", got, want)
	}
	// Item views inherit the batch spec.
	if it := req.Item(1); it.EffectiveSpec() != want || it.Instance != req.Instances[1] {
		t.Fatalf("item view %+v", it)
	}
}

func TestGoldenLegacyResolveDecodes(t *testing.T) {
	var req ResolveRequest
	if err := Unmarshal(readGolden(t, "resolve_legacy.json"), &req); err != nil {
		t.Fatal(err)
	}
	if req.PriorMakespan != 3.5 || req.PriorGuess != 3.5 || !req.Repair ||
		len(req.PriorAssignment) != 2 || len(req.Delta.Add) != 1 {
		t.Fatalf("resolve extras lost: %+v", req)
	}
	want := wantLegacySpec
	want.Family = "bags"
	if got := req.EffectiveSpec(); got != want {
		t.Fatalf("resolve flat fields decoded to %+v, want %+v", got, want)
	}
}

// TestLegacyEncodeByteCompatible proves the embedded-spec redesign did
// not change how legacy requests serialize: a request that uses only
// pre-redesign knobs encodes byte-identically to the golden captured
// from the flat-field era (the three new SLO fields are omitempty, the
// nested "spec" block is absent when nil). Regenerate with
// WIRE_UPDATE_GOLDEN=1 go test ./internal/wire/ — and eyeball the diff.
func TestLegacyEncodeByteCompatible(t *testing.T) {
	var req SolveRequest
	if err := Unmarshal(readGolden(t, "solve_legacy.json"), &req); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := Encode(&buf, &req); err != nil {
		t.Fatal(err)
	}
	golden := filepath.Join("testdata", "solve_legacy_encoded.golden")
	if os.Getenv("WIRE_UPDATE_GOLDEN") != "" {
		if err := os.WriteFile(golden, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(buf.Bytes(), want) {
		t.Fatalf("legacy encoding drifted from golden:\ngot:\n%s\nwant:\n%s", buf.Bytes(), want)
	}
	for _, banned := range []string{`"deadline_ms"`, `"min_quality"`, `"adaptive"`, `"spec"`} {
		if bytes.Contains(buf.Bytes(), []byte(banned)) {
			t.Fatalf("legacy encoding leaked new field %s:\n%s", banned, buf.Bytes())
		}
	}
	// And the round trip is lossless.
	var back SolveRequest
	if err := Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(back.EffectiveSpec(), req.EffectiveSpec()) {
		t.Fatalf("round trip lost knobs: %+v vs %+v", back.EffectiveSpec(), req.EffectiveSpec())
	}
}
