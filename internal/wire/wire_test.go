package wire

import (
	"bytes"
	"errors"
	"strings"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
)

func TestDecodeStrict(t *testing.T) {
	var req SolveRequest
	good := `{"instance": {"machines": 2, "jobs": []}, "eps": 0.5}`
	if err := Decode(strings.NewReader(good), &req); err != nil {
		t.Fatal(err)
	}
	if req.Instance == nil || req.Instance.Machines != 2 || req.Eps != 0.5 {
		t.Fatalf("decoded %+v", req)
	}
	if err := Decode(strings.NewReader(`{"epss": 0.5}`), &SolveRequest{}); err == nil {
		t.Fatal("unknown field accepted")
	}
	if err := Decode(strings.NewReader(good+` {}`), &SolveRequest{}); !errors.Is(err, ErrTrailingData) {
		t.Fatalf("trailing data: got %v, want ErrTrailingData", err)
	}
	if err := Unmarshal([]byte(good), &SolveRequest{}); err != nil {
		t.Fatalf("Unmarshal: %v", err)
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	in := &BatchResponse{
		Outcomes: []BatchItem{
			{SolveResult: &SolveResult{Makespan: 1.5, Assignment: []int{0, 1}, Backend: "bnb"}},
			{Error: "queue full"},
		},
		ElapsedUS: 42,
	}
	var buf bytes.Buffer
	if err := Encode(&buf, in); err != nil {
		t.Fatal(err)
	}
	var out BatchResponse
	if err := Decode(&buf, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Outcomes) != 2 || out.Outcomes[0].Makespan != 1.5 || out.Outcomes[1].Error != "queue full" || out.ElapsedUS != 42 {
		t.Fatalf("round trip lost data: %+v", out)
	}
	// An error item must not materialize a result and vice versa.
	if out.Outcomes[1].SolveResult != nil {
		t.Fatal("error item decoded with a non-nil result")
	}
}

func TestBatchItemView(t *testing.T) {
	b := &BatchRequest{
		Instances: []*sched.Instance{sched.NewInstance(2), sched.NewInstance(3)},
		SolveSpec: SolveSpec{
			Eps:           0.25,
			Backend:       "cfgdp",
			Family:        "identical",
			TimeoutMS:     100,
			NoCache:       true,
			OracleWorkers: 2,
		},
	}
	it := b.Item(1)
	if it.Instance != b.Instances[1] || it.Eps != 0.25 || it.Backend != "cfgdp" ||
		it.Family != "identical" || it.TimeoutMS != 100 || !it.NoCache || it.OracleWorkers != 2 {
		t.Fatalf("item view %+v", it)
	}
}

func TestFromResult(t *testing.T) {
	in := sched.NewInstance(2)
	in.AddJob(1.0, 0)
	in.AddJob(0.5, 1)
	res := &core.Result{
		Makespan:   1.0,
		LowerBound: 0.75,
		Schedule:   &sched.Schedule{Inst: in, Machine: []int{0, 1}},
		Stats: core.Stats{
			Guesses: 4, CacheHits: 1, CacheMisses: 3,
			Fallback: false, OracleBackend: "portfolio",
		},
	}
	sr := FromResult(res, true, 1500*time.Microsecond)
	if sr.Makespan != 1.0 || sr.LowerBound != 0.75 || sr.Guesses != 4 ||
		sr.CacheHits != 1 || sr.CacheMisses != 3 || sr.Backend != "portfolio" ||
		!sr.Coalesced || sr.ElapsedUS != 1500 {
		t.Fatalf("shaped %+v", sr)
	}
	if len(sr.Assignment) != 2 || len(sr.Loads) != 2 {
		t.Fatalf("assignment/loads %v / %v", sr.Assignment, sr.Loads)
	}
}
