// Package wire is the transport-neutral solve-request/response codec of
// the serving layer: the request and response document types and their
// strict JSON encoding, shared by the HTTP front end (internal/server),
// the shard router (internal/shard) and any future gRPC gateway. The
// documents carry no transport state — a router can decode a request,
// split or re-route it, and re-encode it byte-compatibly.
//
// Decoding is strict everywhere: unknown fields and trailing data are
// errors, so a typo'd knob fails loudly instead of silently selecting a
// default, and every front end rejects exactly the same bodies.
package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
)

// SolveRequest is the body of POST /v1/solve (and the per-item unit a
// router hashes to pick a replica).
type SolveRequest struct {
	// Instance is the instance to schedule (required).
	Instance *sched.Instance `json:"instance"`
	// Eps overrides the server's default accuracy (0 keeps the default).
	Eps float64 `json:"eps"`
	// Backend overrides the oracle backend ("bnb", "cfgdp",
	// "portfolio"; empty keeps the default).
	Backend string `json:"backend"`
	// Family selects the problem family ("bags", "identical",
	// "related"; empty selects bags, the bag-constrained default).
	Family string `json:"family"`
	// TimeoutMS bounds this solve's wall clock; clamped to the server
	// maximum. 0 selects the server default.
	TimeoutMS int64 `json:"timeout_ms"`
	// NoCache bypasses the shared cache for this solve (it still gets a
	// private per-solve memo, exactly like the CLI). Used by the
	// differential tests and the load driver's baseline mode.
	NoCache bool `json:"no_cache"`
	// OracleWorkers asks for concurrent lanes inside each oracle solve;
	// clamped to the server's maximum. 0 or 1 is sequential. Responses
	// are bit-identical at any value — the knob trades CPU for latency.
	OracleWorkers int `json:"oracle_workers"`
}

// BatchRequest is the body of POST /v1/batch; the scalar fields apply
// to every instance.
type BatchRequest struct {
	Instances     []*sched.Instance `json:"instances"`
	Eps           float64           `json:"eps"`
	Backend       string            `json:"backend"`
	Family        string            `json:"family"`
	TimeoutMS     int64             `json:"timeout_ms"`
	NoCache       bool              `json:"no_cache"`
	OracleWorkers int               `json:"oracle_workers"`
}

// Item returns the solve-request view of one batch element, for front
// ends (the shard router) that handle batch items individually.
func (b *BatchRequest) Item(i int) SolveRequest {
	return SolveRequest{
		Instance:      b.Instances[i],
		Eps:           b.Eps,
		Backend:       b.Backend,
		Family:        b.Family,
		TimeoutMS:     b.TimeoutMS,
		NoCache:       b.NoCache,
		OracleWorkers: b.OracleWorkers,
	}
}

// SolveResult is one solved instance on the wire.
type SolveResult struct {
	Makespan    float64   `json:"makespan"`
	LowerBound  float64   `json:"lower_bound"`
	Assignment  []int     `json:"assignment"`
	Loads       []float64 `json:"loads"`
	Guesses     int       `json:"guesses"`
	CacheHits   int       `json:"cache_hits"`
	CacheMisses int       `json:"cache_misses"`
	Fallback    bool      `json:"fallback,omitempty"`
	Backend     string    `json:"backend,omitempty"`
	Coalesced   bool      `json:"coalesced,omitempty"`
	ElapsedUS   int64     `json:"elapsed_us"`
}

// BatchItem is one batch outcome: exactly one of the embedded result
// and Error is meaningful.
type BatchItem struct {
	*SolveResult
	Error string `json:"error,omitempty"`
}

// BatchResponse is the body of a successful POST /v1/batch response,
// outcomes in input order.
type BatchResponse struct {
	Outcomes  []BatchItem `json:"outcomes"`
	ElapsedUS int64       `json:"elapsed_us"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// FromResult shapes one successful solver outcome for the wire.
func FromResult(res *core.Result, coalesced bool, elapsed time.Duration) *SolveResult {
	return &SolveResult{
		Makespan:    res.Makespan,
		LowerBound:  res.LowerBound,
		Assignment:  res.Schedule.Machine,
		Loads:       res.Schedule.Loads(),
		Guesses:     res.Stats.Guesses,
		CacheHits:   res.Stats.CacheHits,
		CacheMisses: res.Stats.CacheMisses,
		Fallback:    res.Stats.Fallback,
		Backend:     res.Stats.OracleBackend,
		Coalesced:   coalesced,
		ElapsedUS:   elapsed.Microseconds(),
	}
}

// ErrTrailingData reports well-formed JSON followed by more input.
var ErrTrailingData = errors.New("wire: trailing data after JSON body")

// Decode reads one strict JSON document from r into dst: unknown fields
// and trailing data are errors. Transport limits (maximum body size)
// are the caller's job — wrap r before decoding.
func Decode(r io.Reader, dst any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return err
	}
	if dec.More() {
		return ErrTrailingData
	}
	return nil
}

// Unmarshal is Decode over a byte slice.
func Unmarshal(data []byte, dst any) error {
	return Decode(bytes.NewReader(data), dst)
}

// Encode writes v to w as indented JSON, the canonical response
// encoding of every front end.
func Encode(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	return nil
}
