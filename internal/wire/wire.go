// Package wire is the transport-neutral solve-request/response codec of
// the serving layer: the request and response document types and their
// strict JSON encoding, shared by the HTTP front end (internal/server),
// the shard router (internal/shard) and any future gRPC gateway. The
// documents carry no transport state — a router can decode a request,
// split or re-route it, and re-encode it byte-compatibly.
//
// All three request bodies share one solve-configuration block,
// SolveSpec. It is embedded, so the legacy flat fields ("eps",
// "backend", ...) keep decoding exactly as before, and it can also be
// sent nested under "spec", which then wins wholesale over any flat
// fields. Every successful response carries a Quality block reporting
// which rung of the degradation ladder answered and the approximation
// bound it guarantees.
//
// Decoding is strict everywhere: unknown fields and trailing data are
// errors, so a typo'd knob fails loudly instead of silently selecting a
// default, and every front end rejects exactly the same bodies.
package wire

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
)

// SolveSpec is the shared solve-configuration block of every request:
// what accuracy, which family and backend, how much time, and — for
// SLO-aware serving — the deadline, quality floor and adaptive switch.
// Zero values always mean "server default".
type SolveSpec struct {
	// Eps overrides the server's default accuracy (0 keeps the default).
	Eps float64 `json:"eps"`
	// Backend overrides the oracle backend ("bnb", "cfgdp",
	// "portfolio"; empty keeps the default — and, under "adaptive",
	// additionally lets the planner pick the cheapest predicted
	// backend per request).
	Backend string `json:"backend"`
	// Family selects the problem family ("bags", "identical",
	// "related"; empty selects bags, the bag-constrained default).
	Family string `json:"family"`
	// TimeoutMS bounds this solve's wall clock; clamped to the server
	// maximum. 0 selects the server default.
	TimeoutMS int64 `json:"timeout_ms"`
	// NoCache bypasses the shared cache for this solve (it still gets a
	// private per-solve memo, exactly like the CLI). Used by the
	// differential tests and the load driver's baseline mode.
	NoCache bool `json:"no_cache"`
	// OracleWorkers asks for concurrent lanes inside each oracle solve;
	// clamped to the server's maximum. 0 or 1 is sequential. Responses
	// are bit-identical at any value — the knob trades CPU for latency.
	OracleWorkers int `json:"oracle_workers"`
	// DeadlineMS is the request's latency budget for SLO-aware serving.
	// It bounds the solve like timeout_ms (whichever is tighter wins)
	// and, under "adaptive", is the budget the planner fits a
	// configuration into. 0 means no deadline.
	DeadlineMS int64 `json:"deadline_ms,omitempty"`
	// MinQuality is the worst acceptable approximation bound (e.g. 1.5).
	// When no ladder rung meets both the floor and the deadline the
	// server refuses with 422 "unattainable" instead of degrading
	// further. 0 means no floor. Only meaningful with "adaptive".
	MinQuality float64 `json:"min_quality,omitempty"`
	// Adaptive enables admission-time planning: the server may coarsen
	// eps, switch the backend, or answer with a bounded heuristic to
	// meet the deadline, reporting what it did in the response's
	// "quality" block. Off, the request runs exactly as specified.
	Adaptive bool `json:"adaptive,omitempty"`
}

// SolveRequest is the body of POST /v1/solve (and the per-item unit a
// router hashes to pick a replica). The solve knobs arrive either flat
// (the embedded SolveSpec — the legacy encoding) or nested under
// "spec"; use EffectiveSpec to read them.
type SolveRequest struct {
	// Instance is the instance to schedule (required).
	Instance *sched.Instance `json:"instance"`
	SolveSpec
	// Spec is the nested form of the solve knobs. When present it wins
	// wholesale — flat fields are ignored, not merged.
	Spec *SolveSpec `json:"spec,omitempty"`
}

// EffectiveSpec resolves the request's solve knobs: the nested "spec"
// block when present, the flat legacy fields otherwise.
func (r *SolveRequest) EffectiveSpec() SolveSpec {
	if r.Spec != nil {
		return *r.Spec
	}
	return r.SolveSpec
}

// BatchRequest is the body of POST /v1/batch; the spec applies to
// every instance.
type BatchRequest struct {
	Instances []*sched.Instance `json:"instances"`
	SolveSpec
	// Spec is the nested form of the solve knobs; when present it wins
	// wholesale over the flat fields.
	Spec *SolveSpec `json:"spec,omitempty"`
}

// EffectiveSpec resolves the batch's solve knobs; see
// SolveRequest.EffectiveSpec.
func (b *BatchRequest) EffectiveSpec() SolveSpec {
	if b.Spec != nil {
		return *b.Spec
	}
	return b.SolveSpec
}

// Item returns the solve-request view of one batch element, for front
// ends (the shard router) that handle batch items individually.
func (b *BatchRequest) Item(i int) SolveRequest {
	return SolveRequest{Instance: b.Instances[i], SolveSpec: b.EffectiveSpec()}
}

// Quality reports what a response actually guarantees: which rung of
// the degradation ladder answered and its approximation bound. Present
// on every successful response, adaptive or not.
type Quality struct {
	// Rung names what produced the schedule: "eptas" for a full search,
	// "baglpt"/"greedy" for heuristic answers, "repair" for the
	// placement-repair fast path of /v1/resolve.
	Rung string `json:"rung"`
	// EpsUsed is the accuracy the search ran at — under adaptive
	// serving possibly coarser than requested; 0 for heuristic rungs.
	EpsUsed float64 `json:"eps_used"`
	// BackendUsed is the oracle backend that decided the last accepted
	// guess (empty when no search ran).
	BackendUsed string `json:"backend_used,omitempty"`
	// Bound is the worst-case approximation guarantee of this answer:
	// 1+eps_used for eptas and repair rungs, the family's documented
	// heuristic bound otherwise, exactly 1 when provably optimal.
	Bound float64 `json:"bound"`
	// Degraded reports an answer coarser than the request — the planner
	// chose a lower rung, or the search fell back to its heuristic
	// upper bound.
	Degraded bool `json:"degraded,omitempty"`
	// BestEffort reports that no configuration was predicted to meet
	// the deadline and (absent a quality floor) the cheapest rung
	// answered anyway.
	BestEffort bool `json:"best_effort,omitempty"`
	// PlannerUS is the admission-time planning overhead in
	// microseconds; PredictedUS the planner's latency estimate for the
	// chosen configuration (compare with elapsed_us for
	// predicted-vs-actual). Both 0 when adaptive was off.
	PlannerUS   int64 `json:"planner_us,omitempty"`
	PredictedUS int64 `json:"predicted_us,omitempty"`
	// ModelVersion is the cost-model version the planning decision was
	// keyed by (0 when adaptive was off).
	ModelVersion uint64 `json:"model_version,omitempty"`
}

// SolveResult is one solved instance on the wire.
type SolveResult struct {
	Makespan    float64   `json:"makespan"`
	LowerBound  float64   `json:"lower_bound"`
	Assignment  []int     `json:"assignment"`
	Loads       []float64 `json:"loads"`
	Guesses     int       `json:"guesses"`
	CacheHits   int       `json:"cache_hits"`
	CacheMisses int       `json:"cache_misses"`
	// FinalGuess is the smallest accepted makespan guess of the search
	// (0 when none was accepted). Feed it back as "prior_guess" of a
	// later /v1/resolve to seed the warm search at the exact boundary.
	FinalGuess float64 `json:"final_guess,omitempty"`
	Fallback   bool    `json:"fallback,omitempty"`
	Backend    string  `json:"backend,omitempty"`
	Coalesced  bool    `json:"coalesced,omitempty"`
	ElapsedUS  int64   `json:"elapsed_us"`
	// Quality reports the rung that answered and its bound.
	Quality Quality `json:"quality"`
}

// ResolveRequest is the body of POST /v1/resolve: an incremental
// re-solve of a previously solved instance. The server is stateless, so
// the request carries the prior solve's facts explicitly: the pre-delta
// instance, the prior makespan (warm-search seed), optionally the exact
// accepted guess (tighter seed) and the prior assignment (enables the
// repair fast path). Cross-request memo reuse needs nothing from the
// client — the server's shared cache already holds the prior solve's
// per-guess entries when it answered the prior solve.
type ResolveRequest struct {
	// Instance is the pre-delta instance the prior result solved
	// (required).
	Instance *sched.Instance `json:"instance"`
	// Delta is the edit to apply (see the sched.Delta JSON grammar:
	// "add", "remove", "resize", "rebag", "machines", "add_speeds").
	Delta sched.Delta `json:"delta"`
	// PriorMakespan is the prior solve's makespan; it seeds the warm
	// search (0 degrades to a cold search).
	PriorMakespan float64 `json:"prior_makespan"`
	// PriorGuess is the prior solve's final accepted guess
	// ("final_guess" of its response); when set it seeds the warm search
	// at the exact acceptance boundary.
	PriorGuess float64 `json:"prior_guess,omitempty"`
	// PriorAssignment is the prior schedule's machine per job (the
	// "assignment" of the prior response). Required for repair; ignored
	// otherwise.
	PriorAssignment []int `json:"prior_assignment,omitempty"`
	// Repair enables the placement-repair fast path: absorb the delta by
	// re-placing only churned jobs when the result stays within
	// (1+eps) of the post-delta lower bound. Repaired responses are not
	// bit-identical to a from-scratch solve (the certificate holds
	// instead); off by default.
	Repair bool `json:"repair,omitempty"`

	// The solve knobs, flat (legacy) or nested under "spec", exactly as
	// in SolveRequest.
	SolveSpec
	Spec *SolveSpec `json:"spec,omitempty"`
}

// EffectiveSpec resolves the re-solve's solve knobs; see
// SolveRequest.EffectiveSpec.
func (r *ResolveRequest) EffectiveSpec() SolveSpec {
	if r.Spec != nil {
		return *r.Spec
	}
	return r.SolveSpec
}

// ResolveResult is the body of a successful POST /v1/resolve response:
// a SolveResult for the post-delta instance plus the repair outcome.
type ResolveResult struct {
	SolveResult
	// Repaired reports that the placement-repair fast path answered
	// (no search ran); the repair counters below describe it.
	Repaired        bool `json:"repaired,omitempty"`
	RepairKept      int  `json:"repair_kept,omitempty"`
	RepairMoved     int  `json:"repair_moved,omitempty"`
	RepairDisplaced int  `json:"repair_displaced,omitempty"`
}

// BatchItem is one batch outcome: exactly one of the embedded result
// and Error is meaningful.
type BatchItem struct {
	*SolveResult
	Error string `json:"error,omitempty"`
}

// BatchResponse is the body of a successful POST /v1/batch response,
// outcomes in input order.
type BatchResponse struct {
	Outcomes  []BatchItem `json:"outcomes"`
	ElapsedUS int64       `json:"elapsed_us"`
}

// ErrorResponse is the body of every non-2xx response.
type ErrorResponse struct {
	Error string `json:"error"`
}

// FromQuality shapes a solve's quality report for the wire.
func FromQuality(q core.Quality) Quality {
	return Quality{
		Rung:         q.Rung,
		EpsUsed:      q.EpsUsed,
		BackendUsed:  q.BackendUsed,
		Bound:        q.Bound,
		Degraded:     q.Degraded,
		BestEffort:   q.BestEffort,
		PlannerUS:    q.PlannerTime.Microseconds(),
		PredictedUS:  q.Predicted.Microseconds(),
		ModelVersion: q.ModelVersion,
	}
}

// FromResult shapes one successful solver outcome for the wire.
func FromResult(res *core.Result, coalesced bool, elapsed time.Duration) *SolveResult {
	return &SolveResult{
		Makespan:    res.Makespan,
		LowerBound:  res.LowerBound,
		Assignment:  res.Schedule.Machine,
		Loads:       res.Schedule.Loads(),
		Guesses:     res.Stats.Guesses,
		CacheHits:   res.Stats.CacheHits,
		CacheMisses: res.Stats.CacheMisses,
		FinalGuess:  res.Stats.FinalGuess,
		Fallback:    res.Stats.Fallback,
		Backend:     res.Stats.OracleBackend,
		Coalesced:   coalesced,
		ElapsedUS:   elapsed.Microseconds(),
		Quality:     FromQuality(res.Quality),
	}
}

// FromResolveResult shapes one successful incremental re-solve outcome
// for the wire.
func FromResolveResult(res *core.Result, coalesced bool, elapsed time.Duration) *ResolveResult {
	return &ResolveResult{
		SolveResult:     *FromResult(res, coalesced, elapsed),
		Repaired:        res.Stats.Repaired,
		RepairKept:      res.Stats.RepairStats.Kept,
		RepairMoved:     res.Stats.RepairStats.Moved,
		RepairDisplaced: res.Stats.RepairStats.Displaced,
	}
}

// ErrTrailingData reports well-formed JSON followed by more input.
var ErrTrailingData = errors.New("wire: trailing data after JSON body")

// Decode reads one strict JSON document from r into dst: unknown fields
// and trailing data are errors. Transport limits (maximum body size)
// are the caller's job — wrap r before decoding.
func Decode(r io.Reader, dst any) error {
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(dst); err != nil {
		return err
	}
	if dec.More() {
		return ErrTrailingData
	}
	return nil
}

// Unmarshal is Decode over a byte slice.
func Unmarshal(data []byte, dst any) error {
	return Decode(bytes.NewReader(data), dst)
}

// Encode writes v to w as indented JSON, the canonical response
// encoding of every front end.
func Encode(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(v); err != nil {
		return fmt.Errorf("wire: encode: %w", err)
	}
	return nil
}
