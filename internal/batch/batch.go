// Package batch solves many bag-constrained scheduling instances
// concurrently on a bounded worker pool.
//
// Each EPTAS solve is independent and CPU-bound, so a batch of instances
// parallelizes perfectly across cores without touching the approximation
// guarantee: every instance is solved by exactly the same deterministic
// search it would get from core.Solve, and results are returned in input
// order. This is the architectural seam later sharding and caching layers
// build on — a Pool is the unit that a front-end shards requests onto.
package batch

import (
	"context"
	"runtime"
	"sync"

	"repro/internal/core"
	"repro/internal/sched"
)

// Task is one instance to solve together with its solver options. A
// task with Delta set is an incremental re-solve instead: Prior is the
// prior result (Instance is ignored) and the solve runs
// core.ResolveContext, warm-started from it.
type Task struct {
	// Instance is the instance to schedule. It is not modified.
	Instance *sched.Instance
	// Options configures the solve; Options.Eps must be set.
	Options core.Options
	// Prior and Delta select the incremental re-solve path: Delta is
	// applied to Prior.Input and solved warm-started from Prior. Both
	// must be set together.
	Prior *core.Result
	Delta *sched.Delta
}

// Outcome pairs the result of one task with its error. Exactly one of
// Result and Err is non-nil.
type Outcome struct {
	Result *core.Result
	Err    error
}

// Pool solves batches of instances on a fixed number of workers. A Pool
// is cheap, stateless between calls, and safe for concurrent use; the
// worker count only bounds per-call concurrency.
type Pool struct {
	workers int
}

// NewPool returns a pool with the given worker count; values <= 0 select
// GOMAXPROCS workers.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Pool{workers: workers}
}

// Workers reports the pool's worker count.
func (p *Pool) Workers() int { return p.workers }

// Solve solves every task and returns the outcomes in input order,
// regardless of completion order. Tasks are distributed over the pool's
// workers; each individual solve runs exactly the code path of a direct
// core.Solve call and produces identical results as long as per-guess
// MILP solves are decided by their deterministic node budgets rather
// than the wall-clock time-limit backstop (see core.Options.Speculate
// for the same caveat; on this repo's experiment instances the node
// budget always binds first).
func (p *Pool) Solve(tasks []Task) []Outcome {
	return p.SolveContext(context.Background(), tasks)
}

// SolveContext is Solve under a context. The context is shared by every
// task: when it is canceled or expires, unfinished solves abort promptly
// (their Outcome.Err is ctx.Err()) while already-finished outcomes are
// kept, so a deadline caps the whole batch's wall-clock time.
func (p *Pool) SolveContext(ctx context.Context, tasks []Task) []Outcome {
	out := make([]Outcome, len(tasks))
	if len(tasks) == 0 {
		return out
	}
	workers := p.workers
	if workers > len(tasks) {
		workers = len(tasks)
	}
	// In-solve speculation is suppressed only when the batch alone can
	// keep every core busy; a batch narrower than the machine leaves the
	// solver's own parallelism to use the idle cores.
	saturated := workers > 1 && workers >= runtime.GOMAXPROCS(0)
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				out[i] = solveOne(ctx, tasks[i], saturated)
			}
		}()
	}
	for i := range tasks {
		idx <- i
	}
	close(idx)
	wg.Wait()
	return out
}

// solveOne runs one task. When the batch saturates the machine on its
// own and the task does not ask for a specific speculation level,
// in-solve speculation is disabled: instance-level parallelism already
// fills every core, and speculative pipelines would only burn cycles on
// discarded guesses. A batch with fewer effective workers than cores
// keeps the solver's default, so in-solve speculation uses the idle
// cores. Speculation is result-transparent, so this choice changes
// throughput only, never results.
func solveOne(ctx context.Context, t Task, saturated bool) Outcome {
	opt := t.Options
	if opt.Speculate == 0 && saturated {
		opt.Speculate = 1
	}
	var res *core.Result
	var err error
	if t.Delta != nil {
		res, err = core.ResolveContext(ctx, t.Prior, *t.Delta, opt)
	} else {
		res, err = core.SolveContext(ctx, t.Instance, opt)
	}
	if err != nil {
		return Outcome{Err: err}
	}
	return Outcome{Result: res}
}
