package batch

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"repro/internal/core"
	"repro/internal/sched"
)

func queueInstance(t *testing.T) *sched.Instance {
	t.Helper()
	in := sched.NewInstance(3)
	sizes := []float64{0.9, 0.8, 0.7, 0.6, 0.5, 0.4, 0.3, 0.2}
	for i, s := range sizes {
		in.AddJob(s, i%4)
	}
	if err := in.Validate(); err != nil {
		t.Fatal(err)
	}
	return in
}

func TestQueueSolves(t *testing.T) {
	q := NewQueue(2, 2)
	in := queueInstance(t)
	want, err := core.Solve(in, core.Options{Eps: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			out, admitted := q.Do(context.Background(), Task{Instance: in, Options: core.Options{Eps: 0.5}})
			if !admitted {
				// Admission rejections are legal under contention; they
				// must come with no outcome at all.
				if out.Result != nil || out.Err != nil {
					t.Errorf("rejected Do returned an outcome: %+v", out)
				}
				return
			}
			if out.Err != nil {
				t.Errorf("admitted Do failed: %v", out.Err)
				return
			}
			if out.Result.Makespan != want.Makespan {
				t.Errorf("makespan %.17g, want %.17g", out.Result.Makespan, want.Makespan)
			}
		}()
	}
	wg.Wait()
	if q.Queued() != 0 || q.Running() != 0 {
		t.Fatalf("gauges not drained: queued=%d running=%d", q.Queued(), q.Running())
	}
}

// blockingTask returns a task whose solve blocks deterministically
// inside the MILP oracle (on the Progress hook) until release is
// closed, keeping its worker slot occupied for as long as the test
// needs.
func blockingTask(in *sched.Instance, release <-chan struct{}) Task {
	opt := core.Options{Eps: 0.5}
	opt.MILP.Progress = func(nodes, pivots int) error {
		<-release
		return nil
	}
	return Task{Instance: in, Options: opt}
}

// TestQueueAdmissionRejects fills every worker slot and the whole queue
// with blocked solves, then checks the next arrival is refused at
// admission immediately.
func TestQueueAdmissionRejects(t *testing.T) {
	q := NewQueue(1, 1)
	in := queueInstance(t)

	// Occupy the single worker slot (blocked inside the oracle) and the
	// single queue slot (waiting for the worker).
	block := make(chan struct{})
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			q.Do(context.Background(), blockingTask(in, block))
		}()
	}
	// Wait for both to be admitted (one running, one queued).
	deadline := time.Now().Add(5 * time.Second)
	for q.Running()+q.Queued() < 2 {
		if time.Now().After(deadline) {
			t.Fatalf("occupants not admitted: running=%d queued=%d", q.Running(), q.Queued())
		}
		time.Sleep(time.Millisecond)
	}

	out, admitted := q.Do(context.Background(), Task{Instance: in, Options: core.Options{Eps: 0.5}})
	if admitted {
		t.Fatalf("third solve admitted with a full queue: %+v", out)
	}
	if q.Rejected() != 1 {
		t.Fatalf("Rejected() = %d, want 1", q.Rejected())
	}
	close(block)
	wg.Wait()
}

// TestQueueContextWhileQueued: a context that dies while the task waits
// for a worker slot returns ctx.Err() as an admitted outcome.
func TestQueueContextWhileQueued(t *testing.T) {
	q := NewQueue(1, 1)
	in := queueInstance(t)
	block := make(chan struct{})
	done := make(chan struct{})
	go func() {
		defer close(done)
		q.Do(context.Background(), blockingTask(in, block))
	}()
	deadline := time.Now().Add(5 * time.Second)
	for q.Running() < 1 {
		if time.Now().After(deadline) {
			t.Fatal("occupant never started running")
		}
		time.Sleep(time.Millisecond)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	out, admitted := q.Do(ctx, Task{Instance: in, Options: core.Options{Eps: 0.5}})
	if !admitted {
		t.Fatalf("second solve should queue, not be rejected")
	}
	if !errors.Is(out.Err, context.DeadlineExceeded) {
		t.Fatalf("queued solve error = %v, want DeadlineExceeded", out.Err)
	}
	close(block)
	<-done
}

func TestQueueDefaults(t *testing.T) {
	q := NewQueue(0, -1)
	if q.Workers() < 1 {
		t.Fatalf("Workers() = %d", q.Workers())
	}
	if q.Depth() != 4*q.Workers() {
		t.Fatalf("Depth() = %d, want 4x workers (%d)", q.Depth(), 4*q.Workers())
	}
}
