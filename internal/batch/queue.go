package batch

import (
	"context"
	"runtime"
	"sync/atomic"
)

// Queue is the long-lived, admission-controlled sibling of Pool: where a
// Pool parallelizes one caller's batch, a Queue is shared by many
// concurrent callers (the solver service's requests) and bounds both the
// number of solves running at once and the number allowed to wait. Work
// beyond workers+depth is rejected at admission instead of queueing
// without bound — under overload the service sheds load with an
// immediate "try again" rather than letting latency grow until every
// client times out.
//
// A Queue is safe for concurrent use. The zero value is not usable; see
// NewQueue.
type Queue struct {
	workers   int
	depth     int
	saturated bool
	// slots holds one token per running solve; admit holds one token per
	// admitted (queued or running) solve.
	slots chan struct{}
	admit chan struct{}

	queued   atomic.Int64
	running  atomic.Int64
	rejected atomic.Int64
}

// NewQueue returns a queue running at most workers concurrent solves
// (<= 0 selects GOMAXPROCS) and admitting at most depth additional
// waiting solves (< 0 selects 4x workers; 0 disables queueing, so every
// solve beyond the worker count is rejected).
func NewQueue(workers, depth int) *Queue {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if depth < 0 {
		depth = 4 * workers
	}
	return &Queue{
		workers: workers,
		depth:   depth,
		// Mirrors Pool: when the queue's own concurrency can saturate
		// the machine, per-solve speculative guess evaluation only burns
		// cycles, so solveOne suppresses it for tasks that don't pick a
		// level explicitly.
		saturated: workers > 1 && workers >= runtime.GOMAXPROCS(0),
		slots:     make(chan struct{}, workers),
		admit:     make(chan struct{}, workers+depth),
	}
}

// Workers reports the maximum number of concurrent solves.
func (q *Queue) Workers() int { return q.workers }

// Depth reports the maximum number of admitted-but-waiting solves.
func (q *Queue) Depth() int { return q.depth }

// Queued reports the number of admitted solves waiting for a worker
// slot.
func (q *Queue) Queued() int64 { return q.queued.Load() }

// Running reports the number of solves currently executing.
func (q *Queue) Running() int64 { return q.running.Load() }

// Rejected reports the total number of solves refused at admission.
func (q *Queue) Rejected() int64 { return q.rejected.Load() }

// Do solves one task through the queue. admitted=false means the task
// was refused at admission (workers+depth solves already in the system)
// without any work done — the service maps this to 503. An admitted
// task waits for a worker slot (or its context) and then solves exactly
// like Pool does; a context that dies while waiting yields
// Outcome{Err: ctx.Err()} with admitted=true.
func (q *Queue) Do(ctx context.Context, t Task) (out Outcome, admitted bool) {
	select {
	case q.admit <- struct{}{}:
	default:
		q.rejected.Add(1)
		return Outcome{}, false
	}
	defer func() { <-q.admit }()

	q.queued.Add(1)
	select {
	case q.slots <- struct{}{}:
	case <-ctx.Done():
		q.queued.Add(-1)
		return Outcome{Err: ctx.Err()}, true
	}
	q.queued.Add(-1)
	q.running.Add(1)
	defer func() {
		q.running.Add(-1)
		<-q.slots
	}()
	return solveOne(ctx, t, q.saturated), true
}
