package batch

import (
	"reflect"
	"runtime"
	"sync"
	"testing"

	"repro/internal/core"
	"repro/internal/sched"
	"repro/internal/workload"
)

func batchTasks(t testing.TB, n int) []Task {
	t.Helper()
	tasks := make([]Task, n)
	for i := range tasks {
		in, err := workload.Generate(workload.Spec{
			Family: workload.Bimodal, Machines: 6, Jobs: 24, Bags: 8, Seed: int64(i + 1),
		})
		if err != nil {
			t.Fatal(err)
		}
		tasks[i] = Task{Instance: in, Options: core.Options{Eps: 0.5}}
	}
	return tasks
}

// TestSolveInputOrder checks that outcomes line up with their tasks in
// input order regardless of completion order.
func TestSolveInputOrder(t *testing.T) {
	tasks := batchTasks(t, 16)
	out := NewPool(4).Solve(tasks)
	if len(out) != len(tasks) {
		t.Fatalf("got %d outcomes for %d tasks", len(out), len(tasks))
	}
	for i, o := range out {
		if o.Err != nil {
			t.Fatalf("task %d: %v", i, o.Err)
		}
		if o.Result.Schedule.Inst != tasks[i].Instance {
			t.Errorf("outcome %d does not belong to task %d", i, i)
		}
	}
}

// TestSolveMatchesSequential checks the pool's core guarantee: every
// per-instance result is bit-for-bit identical to a direct sequential
// core.Solve call.
func TestSolveMatchesSequential(t *testing.T) {
	tasks := batchTasks(t, 16)
	out := NewPool(0).Solve(tasks)
	for i, task := range tasks {
		want, err := core.Solve(task.Instance, core.Options{Eps: 0.5, Speculate: 1})
		if err != nil {
			t.Fatal(err)
		}
		got := out[i]
		if got.Err != nil {
			t.Fatalf("task %d: %v", i, got.Err)
		}
		if got.Result.Makespan != want.Makespan {
			t.Errorf("task %d: makespan %v (pool) != %v (sequential)", i, got.Result.Makespan, want.Makespan)
		}
		if !reflect.DeepEqual(got.Result.Stats.Decision(), want.Stats.Decision()) {
			t.Errorf("task %d: stats diverge:\npool %+v\nseq  %+v", i, got.Result.Stats.Decision(), want.Stats.Decision())
		}
		for j := range want.Schedule.Machine {
			if got.Result.Schedule.Machine[j] != want.Schedule.Machine[j] {
				t.Errorf("task %d: job %d assignment differs", i, j)
				break
			}
		}
	}
}

// TestSolveErrorPropagation checks that a bad task mid-batch yields an
// error in its slot without disturbing its neighbours.
func TestSolveErrorPropagation(t *testing.T) {
	tasks := batchTasks(t, 5)
	// An infeasible instance: more jobs in one bag than machines.
	bad := sched.NewInstance(2)
	for i := 0; i < 3; i++ {
		bad.AddJob(1, 0)
	}
	tasks[2] = Task{Instance: bad, Options: core.Options{Eps: 0.5}}
	out := NewPool(3).Solve(tasks)
	for i, o := range out {
		if i == 2 {
			if o.Err == nil {
				t.Error("infeasible task 2 produced no error")
			}
			if o.Result != nil {
				t.Error("infeasible task 2 produced a result")
			}
			continue
		}
		if o.Err != nil {
			t.Errorf("task %d: %v", i, o.Err)
		}
	}
}

// TestSolveEmptyAndSmall covers the degenerate shapes: empty batch, a
// batch smaller than the worker count, and a single-worker pool.
func TestSolveEmptyAndSmall(t *testing.T) {
	if out := NewPool(8).Solve(nil); len(out) != 0 {
		t.Errorf("empty batch produced %d outcomes", len(out))
	}
	out := NewPool(8).Solve(batchTasks(t, 2))
	for i, o := range out {
		if o.Err != nil {
			t.Errorf("task %d: %v", i, o.Err)
		}
	}
	out = NewPool(1).Solve(batchTasks(t, 3))
	for i, o := range out {
		if o.Err != nil {
			t.Errorf("task %d: %v", i, o.Err)
		}
	}
}

// TestNewPoolWorkers checks worker-count defaulting.
func TestNewPoolWorkers(t *testing.T) {
	if got := NewPool(3).Workers(); got != 3 {
		t.Errorf("NewPool(3).Workers() = %d", got)
	}
	for _, w := range []int{0, -1} {
		if got := NewPool(w).Workers(); got != runtime.GOMAXPROCS(0) {
			t.Errorf("NewPool(%d).Workers() = %d, want GOMAXPROCS", w, got)
		}
	}
}

// TestPoolConcurrentUse checks that one Pool serves overlapping Solve
// calls safely (exercised under -race).
func TestPoolConcurrentUse(t *testing.T) {
	p := NewPool(4)
	tasks := batchTasks(t, 6)
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for _, o := range p.Solve(tasks) {
				if o.Err != nil {
					t.Error(o.Err)
				}
			}
		}()
	}
	wg.Wait()
}
