package shard

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/sched"
	"repro/internal/wire"
)

func TestRingDeterministicAndBalanced(t *testing.T) {
	r1, err := NewRing(4, 64)
	if err != nil {
		t.Fatal(err)
	}
	r2, _ := NewRing(4, 64)
	counts := make([]int, 4)
	for k := uint64(0); k < 10000; k++ {
		key := mix64(k * 0x9e3779b97f4a7c15)
		a, b := r1.Lookup(key), r2.Lookup(key)
		if a != b {
			t.Fatalf("ring lookup not deterministic: %d vs %d for key %x", a, b, key)
		}
		counts[a]++
	}
	for i, c := range counts {
		// 1/4 share ±60% — vnode placement is hashed, not perfectly even.
		if c < 1000 || c > 4000 {
			t.Fatalf("replica %d owns %d/10000 keys — ring badly unbalanced (%v)", i, c, counts)
		}
	}
}

func TestRingSequenceDistinct(t *testing.T) {
	r, err := NewRing(5, 16)
	if err != nil {
		t.Fatal(err)
	}
	for k := uint64(0); k < 100; k++ {
		key := mix64(k)
		seq := r.Sequence(key)
		if len(seq) != 5 {
			t.Fatalf("sequence %v misses replicas", seq)
		}
		if seq[0] != r.Lookup(key) {
			t.Fatalf("sequence head %d != lookup %d", seq[0], r.Lookup(key))
		}
		seen := map[int]bool{}
		for _, i := range seq {
			if seen[i] {
				t.Fatalf("sequence %v repeats replica %d", seq, i)
			}
			seen[i] = true
		}
	}
}

func testInstance(machines, jobs int) *sched.Instance {
	in := sched.NewInstance(machines)
	for j := 0; j < jobs; j++ {
		in.AddJob(0.25+0.5*float64(j%7)/7, j%3)
	}
	return in
}

func TestRouteKeyStability(t *testing.T) {
	a := &wire.SolveRequest{Instance: testInstance(4, 12), SolveSpec: wire.SolveSpec{Eps: 0.5}}
	b := &wire.SolveRequest{Instance: testInstance(4, 12), SolveSpec: wire.SolveSpec{Eps: 0.5}}
	ka, err := RouteKey(a, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	kb, _ := RouteKey(b, 0.5)
	if ka != kb {
		t.Fatalf("equal requests routed differently: %x vs %x", ka, kb)
	}
	// A knob-less request must route like its explicit-default twin.
	c := &wire.SolveRequest{Instance: testInstance(4, 12)}
	if kc, _ := RouteKey(c, 0.5); kc != ka {
		t.Fatalf("default-eps request routed differently: %x vs %x", kc, ka)
	}
	// Changed knobs are different cache lines and may move.
	if kd, _ := RouteKey(&wire.SolveRequest{Instance: testInstance(4, 12), SolveSpec: wire.SolveSpec{Eps: 0.25}}, 0.5); kd == ka {
		t.Fatal("eps change did not move the route key (astronomically unlikely)")
	}
	if ke, _ := RouteKey(&wire.SolveRequest{Instance: testInstance(4, 12), SolveSpec: wire.SolveSpec{Eps: 0.5, Backend: "cfgdp"}}, 0.5); ke == ka {
		t.Fatal("backend change did not move the route key")
	}
}

func TestRouteKeyRejectsBadRequests(t *testing.T) {
	if _, err := RouteKey(&wire.SolveRequest{}, 0.5); err == nil {
		t.Fatal("missing instance accepted")
	}
	if _, err := RouteKey(&wire.SolveRequest{Instance: testInstance(2, 2), SolveSpec: wire.SolveSpec{Eps: 1.5}}, 0.5); err == nil {
		t.Fatal("bad eps accepted")
	}
	if _, err := RouteKey(&wire.SolveRequest{Instance: testInstance(2, 2), SolveSpec: wire.SolveSpec{Family: "nope"}}, 0.5); err == nil {
		t.Fatal("bad family accepted")
	}
}

// echoReplica answers /v1/solve with its own id in the backend field
// and /healthz with 200, counting solve hits.
func echoReplica(id string, hits *atomic.Int64, fail *atomic.Bool) *httptest.Server {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", func(w http.ResponseWriter, r *http.Request) {
		if fail != nil && fail.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			fmt.Fprintf(w, `{"error": "queue full"}`)
			return
		}
		hits.Add(1)
		w.Header().Set("Content-Type", "application/json")
		fmt.Fprintf(w, `{"makespan": 1, "lower_bound": 1, "assignment": [], "loads": [], "guesses": 0, "cache_hits": 0, "cache_misses": 0, "backend": %q, "elapsed_us": 1}`, id)
	})
	mux.HandleFunc("POST /v1/batch", func(w http.ResponseWriter, r *http.Request) {
		var req wire.BatchRequest
		if err := wire.Decode(r.Body, &req); err != nil {
			w.WriteHeader(http.StatusBadRequest)
			return
		}
		hits.Add(int64(len(req.Instances)))
		items := make([]wire.BatchItem, len(req.Instances))
		for i := range items {
			items[i] = wire.BatchItem{SolveResult: &wire.SolveResult{
				Makespan: float64(len(req.Instances[i].Jobs)), Backend: id, ElapsedUS: 1,
			}}
		}
		wire.Encode(w, wire.BatchResponse{Outcomes: items}) //nolint:errcheck
	})
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		if fail != nil && fail.Load() {
			w.WriteHeader(http.StatusServiceUnavailable)
			return
		}
		fmt.Fprint(w, `{"status": "ok"}`)
	})
	return httptest.NewServer(mux)
}

func newTestRouter(t *testing.T, cfg Config) *Router {
	t.Helper()
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = -1 // no background loop in tests unless asked
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = -1
	}
	rt, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	t.Cleanup(rt.Close)
	return rt
}

func solveVia(t *testing.T, h http.Handler, req *wire.SolveRequest) (*wire.SolveResult, int) {
	t.Helper()
	var body bytes.Buffer
	if err := wire.Encode(&body, req); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/solve", &body))
	if rec.Code != http.StatusOK {
		return nil, rec.Code
	}
	var res wire.SolveResult
	if err := wire.Unmarshal(rec.Body.Bytes(), &res); err != nil {
		t.Fatalf("bad solve response: %v\n%s", err, rec.Body.String())
	}
	return &res, rec.Code
}

func TestRouterStickyRouting(t *testing.T) {
	var hits [3]atomic.Int64
	var urls []string
	for i := range hits {
		srv := echoReplica(fmt.Sprintf("rep%d", i), &hits[i], nil)
		defer srv.Close()
		urls = append(urls, srv.URL)
	}
	rt := newTestRouter(t, Config{Replicas: urls})
	h := rt.Handler()

	// The same instance must hit the same replica every time; different
	// instances must spread.
	first := ""
	for round := 0; round < 5; round++ {
		res, code := solveVia(t, h, &wire.SolveRequest{Instance: testInstance(4, 12)})
		if code != http.StatusOK {
			t.Fatalf("solve status %d", code)
		}
		if first == "" {
			first = res.Backend
		} else if res.Backend != first {
			t.Fatalf("request moved replicas: %s then %s", first, res.Backend)
		}
	}
	servers := map[string]bool{}
	for j := 0; j < 40; j++ {
		res, _ := solveVia(t, h, &wire.SolveRequest{Instance: testInstance(3+j%5, 4+j)})
		servers[res.Backend] = true
	}
	if len(servers) < 2 {
		t.Fatalf("40 distinct instances all routed to %v — ring not spreading", servers)
	}
}

func TestRouterFallbackOnSaturation(t *testing.T) {
	var hits [2]atomic.Int64
	var fail0 atomic.Bool
	s0 := echoReplica("rep0", &hits[0], &fail0)
	defer s0.Close()
	s1 := echoReplica("rep1", &hits[1], nil)
	defer s1.Close()
	rt := newTestRouter(t, Config{Replicas: []string{s0.URL, s1.URL}})
	h := rt.Handler()

	// Find an instance owned by replica 0.
	var owned *wire.SolveRequest
	for j := 0; j < 100; j++ {
		req := &wire.SolveRequest{Instance: testInstance(2+j%4, 3+j)}
		key, err := RouteKey(req, rt.cfg.Eps)
		if err != nil {
			t.Fatal(err)
		}
		if rt.ring.Lookup(key) == 0 {
			owned = req
			break
		}
	}
	if owned == nil {
		t.Fatal("no instance routed to replica 0 in 100 tries")
	}
	fail0.Store(true)
	res, code := solveVia(t, h, owned)
	if code != http.StatusOK || res.Backend != "rep1" {
		t.Fatalf("saturated owner not failed over: code=%d res=%+v", code, res)
	}
	if rt.fallbackRetries.Load() == 0 {
		t.Fatal("fallback retry not counted")
	}
	// Once the owner recovers (and a health probe sees it), traffic
	// returns to it.
	fail0.Store(false)
	rt.checkAll()
	res, _ = solveVia(t, h, owned)
	if res.Backend != "rep0" {
		t.Fatalf("recovered owner not reinstated: %+v", res)
	}
}

func TestRouterFallbackOnDeadReplica(t *testing.T) {
	var hits [2]atomic.Int64
	s0 := echoReplica("rep0", &hits[0], nil)
	s1 := echoReplica("rep1", &hits[1], nil)
	defer s1.Close()
	rt := newTestRouter(t, Config{Replicas: []string{s0.URL, s1.URL}})
	s0.Close() // replica 0 is gone entirely
	h := rt.Handler()
	for j := 0; j < 10; j++ {
		res, code := solveVia(t, h, &wire.SolveRequest{Instance: testInstance(2+j, 3+j)})
		if code != http.StatusOK || res.Backend != "rep1" {
			t.Fatalf("dead-replica traffic not rerouted: code=%d res=%+v", code, res)
		}
	}
	if rt.healthy[0].Load() {
		t.Fatal("transport failure did not mark the replica unhealthy")
	}
}

func TestRouterBatchSplitMerge(t *testing.T) {
	var hits [3]atomic.Int64
	var urls []string
	for i := range hits {
		srv := echoReplica(fmt.Sprintf("rep%d", i), &hits[i], nil)
		defer srv.Close()
		urls = append(urls, srv.URL)
	}
	rt := newTestRouter(t, Config{Replicas: urls})
	h := rt.Handler()

	req := wire.BatchRequest{SolveSpec: wire.SolveSpec{Eps: 0.5}}
	for j := 0; j < 12; j++ {
		req.Instances = append(req.Instances, testInstance(2+j%4, j+1))
	}
	var body bytes.Buffer
	if err := wire.Encode(&body, req); err != nil {
		t.Fatal(err)
	}
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/batch", &body))
	if rec.Code != http.StatusOK {
		t.Fatalf("batch status %d: %s", rec.Code, rec.Body.String())
	}
	var resp wire.BatchResponse
	if err := wire.Unmarshal(rec.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Outcomes) != 12 {
		t.Fatalf("%d outcomes, want 12", len(resp.Outcomes))
	}
	// The echo replica answers makespan = job count, which identifies the
	// original item — merge order must be input order.
	reps := map[string]bool{}
	for j, out := range resp.Outcomes {
		if out.Error != "" || out.SolveResult == nil {
			t.Fatalf("outcome %d errored: %+v", j, out)
		}
		if int(out.Makespan) != j+1 {
			t.Fatalf("outcome %d has makespan %g — merge order broken", j, out.Makespan)
		}
		reps[out.Backend] = true
	}
	if len(reps) < 2 {
		t.Fatalf("batch items all landed on %v — split not spreading", reps)
	}
	var total int64
	for i := range hits {
		total += hits[i].Load()
	}
	if total != 12 {
		t.Fatalf("replicas saw %d items, want 12", total)
	}
}

func TestRouterRandomPolicySpreads(t *testing.T) {
	var hits [4]atomic.Int64
	var urls []string
	for i := range hits {
		srv := echoReplica(fmt.Sprintf("rep%d", i), &hits[i], nil)
		defer srv.Close()
		urls = append(urls, srv.URL)
	}
	rt := newTestRouter(t, Config{Replicas: urls, Policy: PolicyRandom, Seed: 7})
	h := rt.Handler()
	// One hot instance: random routing must spread it over replicas —
	// exactly the cache-locality failure the hash policy exists to avoid.
	servers := map[string]bool{}
	for j := 0; j < 40; j++ {
		res, _ := solveVia(t, h, &wire.SolveRequest{Instance: testInstance(4, 12)})
		servers[res.Backend] = true
	}
	if len(servers) < 3 {
		t.Fatalf("random policy used only %v in 40 requests", servers)
	}
}

func TestRouterRejectsBadBodies(t *testing.T) {
	var hits atomic.Int64
	srv := echoReplica("rep0", &hits, nil)
	defer srv.Close()
	rt := newTestRouter(t, Config{Replicas: []string{srv.URL}})
	h := rt.Handler()
	for _, body := range []string{``, `{`, `{"epss": 1}`, `{"eps": 0.5}`} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodPost, "/v1/solve", strings.NewReader(body)))
		if rec.Code != http.StatusBadRequest {
			t.Fatalf("body %q: status %d, want 400", body, rec.Code)
		}
	}
	if hits.Load() != 0 {
		t.Fatal("malformed bodies reached a replica")
	}
	if rt.routeErrors.Load() != 4 {
		t.Fatalf("route errors %d, want 4", rt.routeErrors.Load())
	}
}

func TestRouterStatsAndMetrics(t *testing.T) {
	var hits atomic.Int64
	srv := echoReplica("rep0", &hits, nil)
	defer srv.Close()
	rt := newTestRouter(t, Config{Replicas: []string{srv.URL}})
	h := rt.Handler()
	if _, code := solveVia(t, h, &wire.SolveRequest{Instance: testInstance(2, 3)}); code != http.StatusOK {
		t.Fatalf("solve status %d", code)
	}

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/v1/stats?window=1", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("stats status %d", rec.Code)
	}
	for _, want := range []string{`"routed": 1`, `"fallback_retries": 0`, `"policy": "hash"`, `"window"`, `"healthy": true`} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Fatalf("stats payload missing %s:\n%s", want, rec.Body.String())
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/metrics", nil))
	for _, want := range []string{
		"bagsched_router_routed_total 1",
		"bagsched_router_fallback_retries_total 0",
		"bagsched_router_replica_healthy{replica=",
		"bagsched_router_replica_routed_total{replica=",
	} {
		if !strings.Contains(rec.Body.String(), want) {
			t.Fatalf("metrics missing %s:\n%s", want, rec.Body.String())
		}
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/healthz", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("healthz status %d", rec.Code)
	}
}

func TestRouterHealthLoop(t *testing.T) {
	var hits atomic.Int64
	var fail atomic.Bool
	srv := echoReplica("rep0", &hits, &fail)
	defer srv.Close()
	rt, err := New(Config{Replicas: []string{srv.URL}, HealthInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	rt.Start()
	defer rt.Close()
	fail.Store(true)
	deadline := time.Now().Add(2 * time.Second)
	for rt.healthy[0].Load() {
		if time.Now().After(deadline) {
			t.Fatal("health loop never marked the failing replica down")
		}
		time.Sleep(5 * time.Millisecond)
	}
	fail.Store(false)
	for !rt.healthy[0].Load() {
		if time.Now().After(deadline) {
			t.Fatal("health loop never re-admitted the recovered replica")
		}
		time.Sleep(5 * time.Millisecond)
	}
}
