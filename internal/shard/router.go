package shard

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/server"
	"repro/internal/wire"
)

// Policy selects how the router picks a replica for a request.
type Policy string

const (
	// PolicyHash (default) routes by consistent hash of the solve
	// signature, so signature-equivalent requests always land on the
	// replica that already holds the memo entry.
	PolicyHash Policy = "hash"
	// PolicyRandom routes uniformly at random. Kept for the
	// routed-vs-random ablation in the load driver — it is the baseline
	// that shows what the hash ring buys.
	PolicyRandom Policy = "random"
)

// ParsePolicy parses a CLI policy name; the empty string selects
// PolicyHash.
func ParsePolicy(s string) (Policy, error) {
	switch Policy(s) {
	case "", PolicyHash:
		return PolicyHash, nil
	case PolicyRandom:
		return PolicyRandom, nil
	}
	return "", fmt.Errorf("shard: unknown policy %q (want %q or %q)", s, PolicyHash, PolicyRandom)
}

// Defaults for Config zero values.
const (
	DefaultHealthInterval = time.Second
	DefaultRetryBackoff   = 25 * time.Millisecond
	DefaultMaxBody        = 8 << 20
)

// Config configures a Router; zero values select the defaults above.
type Config struct {
	// Replicas are the base URLs of the fronted solve replicas
	// (required, at least one).
	Replicas []string
	// VNodes is the virtual-node count per replica (<= 0 selects
	// DefaultVNodes).
	VNodes int
	// Policy selects replica placement (empty selects PolicyHash).
	Policy Policy
	// Eps mirrors the replicas' default accuracy for route-key
	// computation (0 selects server.DefaultEps). It never changes what a
	// replica computes — only where a knob-less request routes.
	Eps float64
	// MaxBodyBytes bounds request bodies (<= 0 selects DefaultMaxBody).
	MaxBodyBytes int64
	// HealthInterval is the background health-check period (0 selects
	// DefaultHealthInterval; < 0 disables the background loop — health
	// is then tracked passively from forward outcomes only).
	HealthInterval time.Duration
	// RetryBackoff is the base delay before each fallback attempt,
	// growing linearly per attempt (0 selects DefaultRetryBackoff; < 0
	// disables the delay).
	RetryBackoff time.Duration
	// Client performs the forwards (nil selects a fresh http.Client).
	Client *http.Client
	// Seed seeds the random policy so ablation runs are reproducible.
	Seed int64
}

// Router fronts N solve replicas behind the single-server HTTP surface:
// it decodes each request with the shared wire codec, hashes it to a
// replica, forwards, and falls back to the next distinct replica of the
// ring sequence (with backoff) when a replica is down or saturated.
type Router struct {
	cfg    Config
	ring   *Ring
	client *http.Client
	lat    *server.LatencyRing
	start  time.Time

	healthy []atomic.Bool
	perRep  []atomic.Int64 // successful forwards per replica

	requests        atomic.Int64 // requests accepted into a forwarding handler
	routed          atomic.Int64 // successfully forwarded solve/batch groups
	fallbackRetries atomic.Int64 // forwards retried on a fallback replica
	routeErrors     atomic.Int64 // requests rejected before any forward (bad body/key)

	rngMu sync.Mutex
	rng   *rand.Rand

	started  atomic.Bool
	stopOnce sync.Once
	stopCh   chan struct{}
	done     chan struct{}
}

// New validates cfg and builds the router. Start begins health checks;
// Close stops them.
func New(cfg Config) (*Router, error) {
	if len(cfg.Replicas) == 0 {
		return nil, fmt.Errorf("shard: no replicas configured")
	}
	policy, err := ParsePolicy(string(cfg.Policy))
	if err != nil {
		return nil, err
	}
	cfg.Policy = policy
	if cfg.Eps == 0 {
		cfg.Eps = server.DefaultEps
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = DefaultMaxBody
	}
	if cfg.HealthInterval == 0 {
		cfg.HealthInterval = DefaultHealthInterval
	}
	if cfg.RetryBackoff == 0 {
		cfg.RetryBackoff = DefaultRetryBackoff
	}
	ring, err := NewRing(len(cfg.Replicas), cfg.VNodes)
	if err != nil {
		return nil, err
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{}
	}
	rt := &Router{
		cfg:     cfg,
		ring:    ring,
		client:  client,
		lat:     server.NewLatencyRing(1 << 14),
		start:   time.Now(),
		healthy: make([]atomic.Bool, len(cfg.Replicas)),
		perRep:  make([]atomic.Int64, len(cfg.Replicas)),
		rng:     rand.New(rand.NewSource(cfg.Seed)),
		stopCh:  make(chan struct{}),
		done:    make(chan struct{}),
	}
	// Replicas start healthy: the first forward or health tick corrects
	// the optimism, and a cold router must not reject traffic.
	for i := range rt.healthy {
		rt.healthy[i].Store(true)
	}
	return rt, nil
}

// Start launches the background health-check loop (a no-op when the
// interval is negative). Call Close to stop it.
func (rt *Router) Start() {
	rt.started.Store(true)
	if rt.cfg.HealthInterval < 0 {
		close(rt.done)
		return
	}
	go func() {
		defer close(rt.done)
		ticker := time.NewTicker(rt.cfg.HealthInterval)
		defer ticker.Stop()
		rt.checkAll()
		for {
			select {
			case <-rt.stopCh:
				return
			case <-ticker.C:
				rt.checkAll()
			}
		}
	}()
}

// Close stops the health-check loop. It does not wait for in-flight
// forwards, and is safe to call whether or not Start ever ran.
func (rt *Router) Close() {
	rt.stopOnce.Do(func() { close(rt.stopCh) })
	if rt.started.Load() {
		<-rt.done
	}
}

// checkAll probes every replica's /healthz once, concurrently.
func (rt *Router) checkAll() {
	var wg sync.WaitGroup
	for i := range rt.cfg.Replicas {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			rt.healthy[i].Store(rt.probe(i))
		}(i)
	}
	wg.Wait()
}

func (rt *Router) probe(i int) bool {
	ctx, cancel := context.WithTimeout(context.Background(), rt.probeTimeout())
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, rt.cfg.Replicas[i]+"/healthz", nil)
	if err != nil {
		return false
	}
	resp, err := rt.client.Do(req)
	if err != nil {
		return false
	}
	io.Copy(io.Discard, resp.Body) //nolint:errcheck
	resp.Body.Close()
	return resp.StatusCode == http.StatusOK
}

func (rt *Router) probeTimeout() time.Duration {
	if rt.cfg.HealthInterval > 0 && rt.cfg.HealthInterval < time.Second {
		return rt.cfg.HealthInterval
	}
	return time.Second
}

// Handler returns the router's HTTP routes — the same surface as a
// single replica, so clients and drivers point at either unchanged.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/solve", rt.handleSolve)
	mux.HandleFunc("POST /v1/batch", rt.handleBatch)
	mux.HandleFunc("GET /v1/stats", rt.handleStats)
	mux.HandleFunc("GET /healthz", rt.handleHealthz)
	mux.HandleFunc("GET /metrics", rt.handleMetrics)
	return mux
}

// sequenceFor returns the replica attempt order for one route key under
// the configured policy: the ring sequence for hash routing, a seeded
// random permutation for the ablation baseline. Unhealthy replicas sink
// to the back of the order (kept as last resorts: when everything is
// marked down, trying is better than failing).
func (rt *Router) sequenceFor(key uint64) []int {
	var seq []int
	switch rt.cfg.Policy {
	case PolicyRandom:
		rt.rngMu.Lock()
		seq = rt.rng.Perm(len(rt.cfg.Replicas))
		rt.rngMu.Unlock()
	default:
		seq = rt.ring.Sequence(key)
	}
	ordered := make([]int, 0, len(seq))
	for _, i := range seq {
		if rt.healthy[i].Load() {
			ordered = append(ordered, i)
		}
	}
	for _, i := range seq {
		if !rt.healthy[i].Load() {
			ordered = append(ordered, i)
		}
	}
	return ordered
}

// forward POSTs body to one replica and returns the response. A
// transport error marks the replica unhealthy immediately (the health
// loop re-admits it when /healthz recovers).
func (rt *Router) forward(ctx context.Context, replica int, path string, body []byte) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, rt.cfg.Replicas[replica]+path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := rt.client.Do(req)
	if err != nil {
		rt.healthy[replica].Store(false)
		return nil, err
	}
	return resp, nil
}

// retryable reports whether a replica response should be retried on a
// fallback replica: only saturation (503) — any other status is the
// request's own answer, identical on every replica.
func retryable(status int) bool { return status == http.StatusServiceUnavailable }

// trySequence forwards body along the attempt order until a
// non-retryable response, backing off linearly between attempts. It
// returns the final response (body fully read) and the replica that
// produced it.
func (rt *Router) trySequence(ctx context.Context, seq []int, path string, body []byte) (status int, respBody []byte, replica int, err error) {
	var lastErr error
	for attempt, rep := range seq {
		if attempt > 0 {
			rt.fallbackRetries.Add(1)
			if d := rt.cfg.RetryBackoff; d > 0 {
				select {
				case <-time.After(time.Duration(attempt) * d):
				case <-ctx.Done():
					return 0, nil, -1, ctx.Err()
				}
			}
		}
		resp, ferr := rt.forward(ctx, rep, path, body)
		if ferr != nil {
			lastErr = ferr
			if ctx.Err() != nil {
				return 0, nil, -1, ctx.Err()
			}
			continue
		}
		b, rerr := io.ReadAll(resp.Body)
		resp.Body.Close()
		if rerr != nil {
			lastErr = rerr
			continue
		}
		if retryable(resp.StatusCode) && attempt < len(seq)-1 {
			lastErr = fmt.Errorf("replica %s: %s", rt.cfg.Replicas[rep], http.StatusText(resp.StatusCode))
			continue
		}
		return resp.StatusCode, b, rep, nil
	}
	if lastErr == nil {
		lastErr = fmt.Errorf("shard: no replica available")
	}
	return 0, nil, -1, lastErr
}

func (rt *Router) handleSolve(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	var req wire.SolveRequest
	if err := wire.Unmarshal(body, &req); err != nil {
		rt.rejectBadRequest(w, err)
		return
	}
	key, err := RouteKey(&req, rt.cfg.Eps)
	if err != nil {
		rt.rejectBadRequest(w, err)
		return
	}
	start := time.Now()
	status, respBody, rep, err := rt.trySequence(r.Context(), rt.sequenceFor(key), "/v1/solve", body)
	if err != nil {
		writeWire(w, http.StatusBadGateway, wire.ErrorResponse{Error: err.Error()})
		return
	}
	if status == http.StatusOK {
		rt.routed.Add(1)
		rt.perRep[rep].Add(1)
		rt.lat.Record(time.Since(start))
	}
	copyResponse(w, status, respBody)
}

func (rt *Router) handleBatch(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	body, ok := rt.readBody(w, r)
	if !ok {
		return
	}
	var req wire.BatchRequest
	if err := wire.Unmarshal(body, &req); err != nil {
		rt.rejectBadRequest(w, err)
		return
	}
	if len(req.Instances) == 0 {
		rt.rejectBadRequest(w, fmt.Errorf("missing \"instances\""))
		return
	}
	// Group items by owning replica, preserving input positions, then
	// forward one sub-batch per replica concurrently and merge outcomes
	// back into input order.
	groups := make(map[int][]int)
	for i := range req.Instances {
		item := req.Item(i)
		key, err := RouteKey(&item, rt.cfg.Eps)
		if err != nil {
			rt.rejectBadRequest(w, fmt.Errorf("instance %d: %w", i, err))
			return
		}
		owner := rt.sequenceFor(key)[0]
		groups[owner] = append(groups[owner], i)
	}

	start := time.Now()
	outcomes := make([]wire.BatchItem, len(req.Instances))
	var wg sync.WaitGroup
	for owner, idxs := range groups {
		wg.Add(1)
		go func(owner int, idxs []int) {
			defer wg.Done()
			rt.forwardGroup(r.Context(), &req, owner, idxs, outcomes)
		}(owner, idxs)
	}
	wg.Wait()
	writeWire(w, http.StatusOK, wire.BatchResponse{Outcomes: outcomes, ElapsedUS: time.Since(start).Microseconds()})
}

// forwardGroup sends the sub-batch holding idxs to owner (falling back
// along the ring on failure) and scatters its outcomes into out.
func (rt *Router) forwardGroup(ctx context.Context, req *wire.BatchRequest, owner int, idxs []int, out []wire.BatchItem) {
	// Forward the resolved spec flat — replicas running the legacy flat
	// decoding and ones understanding the nested "spec" form both read
	// it identically.
	sub := wire.BatchRequest{SolveSpec: req.EffectiveSpec()}
	for _, i := range idxs {
		sub.Instances = append(sub.Instances, req.Instances[i])
	}
	var buf bytes.Buffer
	if err := wire.Encode(&buf, sub); err != nil {
		for _, i := range idxs {
			out[i] = wire.BatchItem{Error: err.Error()}
		}
		return
	}
	// Fallback order: the owner first, then the remaining replicas in
	// index order — any distinct replica serves identically.
	seq := make([]int, 0, len(rt.cfg.Replicas))
	seq = append(seq, owner)
	for i := range rt.cfg.Replicas {
		if i != owner {
			seq = append(seq, i)
		}
	}
	status, respBody, rep, err := rt.trySequence(ctx, seq, "/v1/batch", buf.Bytes())
	if err != nil {
		for _, i := range idxs {
			out[i] = wire.BatchItem{Error: err.Error()}
		}
		return
	}
	if status != http.StatusOK {
		var er wire.ErrorResponse
		msg := http.StatusText(status)
		if wire.Unmarshal(respBody, &er) == nil && er.Error != "" {
			msg = er.Error
		}
		for _, i := range idxs {
			out[i] = wire.BatchItem{Error: msg}
		}
		return
	}
	var br wire.BatchResponse
	if err := wire.Unmarshal(respBody, &br); err != nil || len(br.Outcomes) != len(idxs) {
		for _, i := range idxs {
			out[i] = wire.BatchItem{Error: fmt.Sprintf("shard: bad sub-batch response from %s", rt.cfg.Replicas[rep])}
		}
		return
	}
	rt.routed.Add(1)
	rt.perRep[rep].Add(1)
	for j, i := range idxs {
		out[i] = br.Outcomes[j]
	}
}

func (rt *Router) handleStats(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	window := 0
	if v := r.URL.Query().Get("window"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeWire(w, http.StatusBadRequest, wire.ErrorResponse{Error: "\"window\" must be a positive integer"})
			return
		}
		window = n
	}
	writeWire(w, http.StatusOK, rt.statsPayload(window))
}

func (rt *Router) statsPayload(window int) map[string]any {
	replicas := make([]map[string]any, len(rt.cfg.Replicas))
	for i, url := range rt.cfg.Replicas {
		replicas[i] = map[string]any{
			"url":     url,
			"healthy": rt.healthy[i].Load(),
			"routed":  rt.perRep[i].Load(),
		}
	}
	payload := map[string]any{
		"uptime_s": time.Since(rt.start).Seconds(),
		"router": map[string]any{
			"policy": string(rt.cfg.Policy),
			"vnodes_per_replica": func() int {
				if rt.cfg.VNodes > 0 {
					return rt.cfg.VNodes
				}
				return DefaultVNodes
			}(),
			"requests":         rt.requests.Load(),
			"routed":           rt.routed.Load(),
			"fallback_retries": rt.fallbackRetries.Load(),
			"route_errors":     rt.routeErrors.Load(),
		},
		"replicas": replicas,
		"latency":  rt.lat.Percentiles(0),
	}
	if window > 0 {
		payload["window"] = rt.lat.Percentiles(window)
	}
	return payload
}

func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	healthy := 0
	for i := range rt.healthy {
		if rt.healthy[i].Load() {
			healthy++
		}
	}
	status := http.StatusOK
	if healthy == 0 {
		status = http.StatusServiceUnavailable
	}
	writeWire(w, status, map[string]any{
		"status":           map[bool]string{true: "ok", false: "no healthy replicas"}[healthy > 0],
		"uptime_s":         time.Since(rt.start).Seconds(),
		"replicas":         len(rt.cfg.Replicas),
		"healthy_replicas": healthy,
	})
}

func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	rt.requests.Add(1)
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	all := rt.lat.Percentiles(0)
	type metric struct {
		name, typ string
		value     int64
	}
	for _, m := range []metric{
		{"bagsched_router_requests_total", "counter", rt.requests.Load()},
		{"bagsched_router_routed_total", "counter", rt.routed.Load()},
		{"bagsched_router_fallback_retries_total", "counter", rt.fallbackRetries.Load()},
		{"bagsched_router_route_errors_total", "counter", rt.routeErrors.Load()},
		{"bagsched_router_latency_p50_microseconds", "gauge", all.P50},
		{"bagsched_router_latency_p90_microseconds", "gauge", all.P90},
		{"bagsched_router_latency_p99_microseconds", "gauge", all.P99},
	} {
		fmt.Fprintf(w, "# TYPE %s %s\n%s %d\n", m.name, m.typ, m.name, m.value)
	}
	fmt.Fprintf(w, "# TYPE bagsched_router_replica_healthy gauge\n")
	for i, url := range rt.cfg.Replicas {
		v := int64(0)
		if rt.healthy[i].Load() {
			v = 1
		}
		fmt.Fprintf(w, "bagsched_router_replica_healthy{replica=%q} %d\n", url, v)
	}
	fmt.Fprintf(w, "# TYPE bagsched_router_replica_routed_total counter\n")
	for i, url := range rt.cfg.Replicas {
		fmt.Fprintf(w, "bagsched_router_replica_routed_total{replica=%q} %d\n", url, rt.perRep[i].Load())
	}
}

func (rt *Router) readBody(w http.ResponseWriter, r *http.Request) ([]byte, bool) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, rt.cfg.MaxBodyBytes))
	if err != nil {
		rt.rejectBadRequest(w, err)
		return nil, false
	}
	return body, true
}

func (rt *Router) rejectBadRequest(w http.ResponseWriter, err error) {
	rt.routeErrors.Add(1)
	writeWire(w, http.StatusBadRequest, wire.ErrorResponse{Error: err.Error()})
}

func copyResponse(w http.ResponseWriter, status int, body []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	w.Write(body) //nolint:errcheck // the client may be gone
}

func writeWire(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	wire.Encode(w, v) //nolint:errcheck // the client may be gone
}
