package shard

import (
	"fmt"
	"math"

	"repro/internal/family"
	"repro/internal/numeric"
	"repro/internal/round"
	"repro/internal/wire"
)

// RouteKey hashes a solve request to its point on the ring. The key is
// built exactly like the memo identity: the instance is scaled by the
// family lower bound and geometrically rounded at the request's
// accuracy, and the resulting numeric.Key signature is mixed with every
// resolved solver knob that partitions the cache (family, eps, backend,
// cache opt-out). Requests that would share a memo entry therefore
// always share a route key; requests under different knobs spread
// independently.
//
// defaultEps is the accuracy the replicas apply when the request sets
// none — the router must mirror it, or a knob-less request and its
// explicit-eps twin would route differently while hitting the same
// cache line.
func RouteKey(req *wire.SolveRequest, defaultEps float64) (uint64, error) {
	if req.Instance == nil {
		return 0, fmt.Errorf("shard: missing instance")
	}
	eps := req.Eps
	if eps == 0 {
		eps = defaultEps
	}
	if eps <= 0 || eps >= 1 {
		return 0, fmt.Errorf("shard: eps %g outside (0,1)", eps)
	}
	fam, err := family.Parse(req.Family)
	if err != nil {
		return 0, err
	}

	in := req.Instance
	h := mix64(uint64(in.Machines)*0x9e3779b97f4a7c15 + uint64(len(in.Jobs)))
	// The signature of the first binary-search guess: scale by the family
	// lower bound and round. Any deterministic target works for routing —
	// equal instances under equal knobs must map to equal keys, and they
	// do because the lower bound is itself a pure function of the
	// instance. Degenerate instances (no jobs, zero lower bound) skip the
	// signature and route on the shape hash alone.
	if lb := fam.LowerBound(in); lb > 0 && len(in.Jobs) > 0 {
		_, exps := round.ScaleRound(in, lb, eps)
		k := numeric.KeyOf(in.Machines, exps)
		h = mix64(h ^ k.H0)
		h = mix64(h + k.H1)
		h = mix64(h ^ uint64(uint32(k.M))<<32 ^ uint64(uint32(k.N)))
	}
	h = mix64(h ^ hashString(fam.Name()))
	h = mix64(h ^ math.Float64bits(eps))
	h = mix64(h ^ hashString(req.Backend))
	if req.NoCache {
		h = mix64(h + 1)
	}
	return h, nil
}

// hashString is 64-bit FNV-1a, finalized by mix64 at the call sites.
func hashString(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h = (h ^ uint64(s[i])) * 1099511628211
	}
	return h
}
